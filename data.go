package tgminer

import (
	"io"
	"os"

	"tgminer/internal/dataset"
	"tgminer/internal/sysgen"
)

// Corpus is a named collection of temporal graphs sharing one dictionary.
type Corpus = dataset.Corpus

// ReadCorpus parses the text dataset format (see WriteCorpus), interning
// labels into dict (a fresh Dict if nil).
func ReadCorpus(r io.Reader, dict *Dict) (*Corpus, error) {
	return dataset.Read(r, dict)
}

// WriteCorpus serializes a corpus in the line-oriented text format:
//
//	g <name>
//	v <node-id> <label>
//	e <src> <dst> <timestamp>
func WriteCorpus(w io.Writer, c *Corpus) error {
	return dataset.Write(w, c)
}

// LoadCorpusFile reads a dataset file.
func LoadCorpusFile(path string, dict *Dict) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpus(f, dict)
}

// SaveCorpusFile writes a dataset file.
func SaveCorpusFile(path string, c *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCorpus(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyntheticConfig configures synthetic syscall-activity generation (the
// corpus shaped like the paper's Table 1; see internal/sysgen).
type SyntheticConfig = sysgen.Config

// SyntheticDataset is a generated training corpus.
type SyntheticDataset = sysgen.Dataset

// TimelineConfig configures test-timeline generation.
type TimelineConfig = sysgen.TimelineConfig

// Timeline is a generated test graph with ground-truth behavior intervals.
type Timeline = sysgen.Timeline

// TruthInstance is one embedded ground-truth behavior occurrence.
type TruthInstance = sysgen.TruthInstance

// BehaviorSpec describes one of the 12 paper behaviors.
type BehaviorSpec = sysgen.Spec

// Behaviors returns the 12 behavior specifications of the paper's Table 1.
func Behaviors() []BehaviorSpec { return sysgen.Specs() }

// GenerateSynthetic builds a training corpus of behavior instances plus
// background graphs.
func GenerateSynthetic(cfg SyntheticConfig) *SyntheticDataset {
	return sysgen.Generate(cfg)
}

// GenerateTestTimeline builds a large test graph with embedded behavior
// instances and ground truth.
func GenerateTestTimeline(cfg TimelineConfig, dict *Dict) *Timeline {
	return sysgen.GenerateTimeline(cfg, dict)
}

// TruthIntervalsOf extracts the ground-truth intervals of one behavior from
// a timeline.
func TruthIntervalsOf(tl *Timeline, behavior string) []Interval {
	var out []Interval
	for _, inst := range tl.Truth {
		if inst.Behavior == behavior {
			out = append(out, Interval{Start: inst.Start, End: inst.End})
		}
	}
	return out
}
