// Command tglint is the repo's static-analysis gate: it runs the custom
// invariant analyzers of internal/analysis (generation-snapshot access
// discipline, published-length capture, checked position arithmetic,
// context-first cancellation, JSON wire compatibility, nilness) over the
// packages matching its arguments, and by default also runs the stock
// `go vet` passes (copylocks, lostcancel, and the rest of vet's suite) so
// one command is the whole gate:
//
//	go run ./cmd/tglint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 the tree failed to load.
// Diagnostics inside a declaration annotated
// `// tglint:ignore <analyzer> <reason>` are suppressed; see
// internal/analysis/doc.go for the invariant catalog and the annotation
// grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"tgminer/internal/analysis"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the analyzers in the suite and exit")
		runVet  = flag.Bool("vet", true, "also run the stock `go vet` passes")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		verbose = flag.Bool("v", false, "report the packages checked")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			summary := strings.SplitN(a.Doc, "\n", 2)[0]
			fmt.Printf("%-14s %s\n", a.Name, summary)
		}
		return
	}

	suite := analysis.All
	if *only != "" {
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tglint: unknown analyzer %q (see tglint -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "tglint: checking %s\n", p.ImportPath)
		}
	}

	failed := false
	for _, d := range analysis.RunAll(pkgs, suite) {
		fmt.Println(d)
		failed = true
	}

	if *runVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				fmt.Fprintf(os.Stderr, "tglint: go vet: %v\n", err)
				os.Exit(2)
			}
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
