// Command tgminerd serves a live TGMiner engine over HTTP/JSON: many
// producers POST event batches to /v1/events under reader-lag/retention
// admission control while consumers evaluate the three query families of
// the paper via /v1/query/{temporal,ntemp,nodeset}, streamed as NDJSON.
// GET /v1/statsz exposes the engine and server counters.
//
// Usage:
//
//	tgminerd -addr 127.0.0.1:7171 -shards 4 \
//	         -soft-lag 50000 -hard-bytes 268435456 -hard-policy evict
//
// SIGINT/SIGTERM drain cooperatively: the listener stops, in-flight
// queries get -grace to finish (then are cancelled, returning partial
// results with a terminal error line), and the process exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"tgminer"
	"tgminer/internal/cmdutil"
	"tgminer/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "listen address (use :0 for an ephemeral port; the bound address is logged)")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS); producers are hashed by source entity")
	compactEvery := flag.Int("compact-every", 0, "tail-merge compaction threshold in edges (0 = engine default)")
	maxQueries := flag.Int("max-queries", 0, "concurrent query cap (0 = 2x GOMAXPROCS)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "default per-query deadline when the request sends none")
	cacheEntries := flag.Int("cache", 256, "result-cache entries (negative disables the cache)")
	softLag := flag.Int("soft-lag", 0, "shed ingest (429) when any shard's oldest reader lags this many edges (0 = off)")
	hardLag := flag.Int("hard-lag", 0, "hard reader-lag watermark in edges (0 = off)")
	softBytes := flag.Int("soft-bytes", 0, "shed ingest (429) when any shard retains this many bytes (0 = off)")
	hardBytes := flag.Int("hard-bytes", 0, "hard retained-bytes watermark (0 = off)")
	hardPolicy := flag.String("hard-policy", "reject", "hard retained-bytes response: reject (429) or evict (drop the oldest slice of the window)")
	evictFraction := flag.Float64("evict-fraction", 0.25, "fraction of the live time window dropped per evict-on-pressure firing")
	retryAfter := flag.Duration("retry-after", 0, "cap on the Retry-After hint sent with 429s; shed responses project a shorter hint from observed pressure decay (0 = server default)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace: how long in-flight queries may finish before being cancelled")
	flag.Parse()

	if err := run(*addr, *shards, *compactEvery, *maxQueries, *queryTimeout, *cacheEntries,
		serve.Watermarks{
			SoftLagEdges: *softLag, HardLagEdges: *hardLag,
			SoftRetainedBytes: *softBytes, HardRetainedBytes: *hardBytes,
			HardPolicy: *hardPolicy, EvictFraction: *evictFraction, RetryAfter: *retryAfter,
		}, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "tgminerd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards, compactEvery, maxQueries int, queryTimeout time.Duration,
	cacheEntries int, wm serve.Watermarks, grace time.Duration) error {
	if p := wm.HardPolicy; p != "reject" && p != "evict" {
		return fmt.Errorf("unknown -hard-policy %q (want reject or evict)", p)
	}
	eng := tgminer.NewLiveEngine(nil, tgminer.LiveOptions{Shards: shards, CompactEvery: compactEvery})
	srv := serve.New(serve.Config{
		Engine:               eng,
		MaxConcurrentQueries: maxQueries,
		DefaultQueryTimeout:  queryTimeout,
		CacheEntries:         cacheEntries,
		Watermarks:           wm,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("tgminerd: %d shard(s), serving on http://%s", eng.Shards(), ln.Addr())

	// SIGINT and SIGTERM take the same cooperative path (cmdutil): stop
	// accepting, drain in-flight queries for the grace period, then cancel
	// the stragglers so they flush partial results, and exit 130.
	ctx, _, stop := cmdutil.SignalContext(0)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("tgminerd: shutdown signal; draining in-flight queries (grace %s)", grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(graceCtx); err != nil {
		// Grace expired with queries still streaming: cancel them so each
		// terminates with its partial matches and an error line, then give
		// the flushes a moment before closing the sockets outright.
		log.Printf("tgminerd: grace expired; cancelling in-flight queries")
		srv.CancelQueries()
		finalCtx, cancelFinal := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelFinal()
		if err := hs.Shutdown(finalCtx); err != nil {
			hs.Close()
		}
	}
	log.Printf("tgminerd: drained; bye")
	os.Exit(130)
	return nil
}
