package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tgminer"
	"tgminer/internal/gspan"
	"tgminer/internal/serve"
	"tgminer/internal/tgraph"
)

// TestTGMinerdSmoke is the end-to-end smoke check the CI serve job runs:
// build the real binary, start it on an ephemeral port, ingest a small
// corpus over HTTP, run one query per family and diff the answers against
// the offline library on the same events, then SIGTERM it and require a
// clean cooperative drain with exit status 130.
func TestTGMinerdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the tgminerd binary")
	}
	bin := filepath.Join(t.TempDir(), "tgminerd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building tgminerd: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-shards", "2", "-grace", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its bound address; with :0 that is the only way to
	// find the port. Keep draining stderr afterwards so the child never
	// blocks on a full pipe, and keep the tail for the drain assertions.
	var logMu sync.Mutex
	var logs strings.Builder
	logText := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logs.String()
	}
	addrc := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		re := regexp.MustCompile(`serving on http://(\S+)`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logs.WriteString(line + "\n")
			logMu.Unlock()
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case <-time.After(20 * time.Second):
		t.Fatalf("tgminerd never logged its address; logs:\n%s", logText())
	}

	// A tiny three-label corpus: proc#k -> file#k -> sock#k per session.
	var events []serve.Event
	for k := 0; k < 25; k++ {
		t0 := int64(10 * k)
		events = append(events,
			serve.Event{Time: t0 + 1, Src: fmt.Sprintf("proc#%d", k), Dst: fmt.Sprintf("file#%d", k), SrcLabel: "proc", DstLabel: "file"},
			serve.Event{Time: t0 + 2, Src: fmt.Sprintf("file#%d", k), Dst: fmt.Sprintf("sock#%d", k), SrcLabel: "file", DstLabel: "sock"},
		)
	}
	post := func(path string, v any) (int, []byte) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp.StatusCode, out.Bytes()
	}
	if code, body := post("/v1/events", serve.IngestRequest{Events: events}); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}

	// Offline reference: the same events through the library directly.
	eng := tgminer.NewLiveEngine(nil, tgminer.LiveOptions{Shards: 2})
	for _, ev := range events {
		eng.NodeWithLabel(ev.Src, ev.SrcLabel)
		eng.NodeWithLabel(ev.Dst, ev.DstLabel)
		if err := eng.Append(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	labels := make([]tgraph.Label, 3)
	for i, n := range []string{"proc", "file", "sock"} {
		var ok bool
		if labels[i], ok = eng.LookupLabel(n); !ok {
			t.Fatalf("label %q missing offline", n)
		}
	}
	tp, err := tgraph.NewPattern(labels, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	sopts := tgminer.SearchOptions{Window: 5}
	offline := map[string]tgminer.SearchResult{}
	if offline["temporal"], err = eng.FindTemporalContext(ctx, tp, sopts); err != nil {
		t.Fatal(err)
	}
	np := &tgminer.NonTemporalPattern{Labels: labels, E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	if offline["ntemp"], err = eng.FindNonTemporalContext(ctx, np, sopts); err != nil {
		t.Fatal(err)
	}
	if offline["nodeset"], err = eng.FindLabelSetContext(ctx, &tgminer.LabelSetQuery{Labels: labels}, sopts); err != nil {
		t.Fatal(err)
	}

	for family, want := range offline {
		req := serve.QueryRequest{Window: 5}
		if family == "nodeset" {
			req.Labels = []string{"proc", "file", "sock"}
		} else {
			req.Nodes = []string{"proc", "file", "sock"}
			req.Edges = []serve.QueryEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
		}
		code, body := post("/v1/query/"+family, req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", family, code, body)
		}
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		var done serve.QueryDone
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
			t.Fatalf("%s: bad terminal line %q: %v", family, lines[len(lines)-1], err)
		}
		if !done.Done || done.Error != "" {
			t.Fatalf("%s: incomplete answer: %+v", family, done)
		}
		if done.Matches != len(want.Matches) || done.Truncated != want.Truncated {
			t.Fatalf("%s: served %d matches (truncated=%v), offline %d (truncated=%v)",
				family, done.Matches, done.Truncated, len(want.Matches), want.Truncated)
		}
		if len(want.Matches) == 0 {
			t.Fatalf("%s: offline reference found nothing — vacuous diff", family)
		}
		for i, m := range want.Matches {
			var got serve.MatchRecord
			if err := json.Unmarshal([]byte(lines[i]), &got); err != nil {
				t.Fatalf("%s: line %d %q: %v", family, i, lines[i], err)
			}
			if got.Start != m.Start || got.End != m.End {
				t.Fatalf("%s: match %d = [%d,%d], offline [%d,%d]", family, i, got.Start, got.End, m.Start, m.End)
			}
		}
	}

	var stz serve.StatszResponse
	if code, body := func() (int, []byte) {
		resp, err := http.Get(base + "/v1/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp.StatusCode, out.Bytes()
	}(); code != http.StatusOK || json.Unmarshal(body, &stz) != nil {
		t.Fatalf("statsz: status %d: %s", code, body)
	} else if stz.Server.IngestEvents != int64(len(events)) || stz.Stats.LiveEdges != len(events) {
		t.Fatalf("statsz counters off: %s", body)
	}

	// SIGTERM must take the cooperative drain path and exit 130. Read
	// stderr to EOF before reaping: Wait closes the pipe on process exit
	// and can discard the buffered tail — including the drain line — while
	// the scanner goroutine is still behind it.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("tgminerd stderr never hit EOF after SIGTERM; logs:\n%s", logText())
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGTERM: %v (logs:\n%s)", err, logText())
	}
	if !strings.Contains(logText(), "drained") {
		t.Fatalf("no drain log line after SIGTERM; logs:\n%s", logText())
	}
}
