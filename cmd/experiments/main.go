// Command experiments regenerates every table and figure of the TGMiner
// paper's evaluation (Section 6) on the synthetic corpus. Each experiment
// prints measured values alongside the paper's reported numbers.
//
// Usage:
//
//	experiments                 # all experiments at quick scale
//	experiments -only table2    # one experiment
//	experiments -full           # paper-sized run (hours)
//	experiments -list           # list experiment names
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tgminer/internal/cmdutil"
	"tgminer/internal/experiments"
	"tgminer/internal/experiments/serveload"
)

var names = []string{
	"table1", "table2", "table3",
	"figure10", "figure11", "figure12", "figure13", "figure14", "figure15", "figure16",
	"parallel", "sharded", "livemine", "serve", "constraints",
}

func main() {
	only := flag.String("only", "", "run only the named experiments (comma-separated)")
	full := flag.Bool("full", false, "paper-scale run (hours) instead of quick scale")
	list := flag.Bool("list", false, "list experiment names and exit")
	includeSlow := flag.Bool("include-slow", false, "run SupPrune on medium/large classes in figure13")
	workerSweep := flag.String("workers", "", "comma-separated worker counts for the parallel experiment (default 1,2,4,8)")
	shardSweep := flag.String("shards", "", "comma-separated shard counts for the sharded ingest experiment (default 1,2,4,8)")
	timeout := flag.Duration("timeout", 0, "overall deadline (e.g. 10m); 0 = none. Ctrl-C also cancels cooperatively")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	// Ctrl-C or the deadline cancels the context-aware mining entry points
	// at seed granularity; completed experiments stay printed. A second
	// Ctrl-C force-kills (see cmdutil.SignalContext).
	ctx, _, stop := cmdutil.SignalContext(*timeout)
	defer stop()
	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	} else {
		for _, n := range names {
			selected[n] = true
		}
	}

	fmt.Printf("generating corpus (scale=%s)...\n", scale.Name)
	start := time.Now()
	env := experiments.NewEnv(scale)
	fmt.Printf("corpus ready in %s\n\n", time.Since(start).Round(time.Millisecond))

	// skipped flips when cancellation actually cost us an experiment; a
	// deadline expiring after the last experiment finished is a success.
	skipped := false
	run := func(name string, fn func() (interface{ Render() string }, error)) {
		if !selected[name] {
			return
		}
		if ctx.Err() != nil {
			skipped = true
			return
		}
		t0 := time.Now()
		res, err := fn()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "%s: cancelled (%v); earlier experiments above are complete\n", name, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() (interface{ Render() string }, error) {
		return experiments.Table1(env), nil
	})
	run("table2", func() (interface{ Render() string }, error) {
		return experiments.Table2(ctx, env)
	})
	run("figure10", func() (interface{ Render() string }, error) {
		return experiments.Figure10(ctx, env, "")
	})
	run("figure11", func() (interface{ Render() string }, error) {
		return experiments.Figure11(ctx, env, nil)
	})
	run("figure12", func() (interface{ Render() string }, error) {
		return experiments.Figure12(ctx, env, nil)
	})
	run("figure13", func() (interface{ Render() string }, error) {
		return experiments.Figure13(ctx, env, *includeSlow)
	})
	run("figure14", func() (interface{ Render() string }, error) {
		return experiments.Figure14(ctx, env, nil)
	})
	run("table3", func() (interface{ Render() string }, error) {
		return experiments.Table3(ctx, env)
	})
	run("figure15", func() (interface{ Render() string }, error) {
		return experiments.Figure15(ctx, env, nil)
	})
	run("figure16", func() (interface{ Render() string }, error) {
		return experiments.Figure16(ctx, env, nil)
	})
	run("parallel", func() (interface{ Render() string }, error) {
		return experiments.ParallelScaling(ctx, env, parseWorkers(*workerSweep))
	})
	run("sharded", func() (interface{ Render() string }, error) {
		events := 50000
		if *full {
			events = 500000
		}
		return experiments.ShardedIngest(ctx, parseCounts("shards", *shardSweep), events)
	})
	run("livemine", func() (interface{ Render() string }, error) {
		return experiments.LiveMine(ctx, env)
	})
	run("constraints", func() (interface{ Render() string }, error) {
		return experiments.ConstraintExhibit(ctx, env)
	})
	run("serve", func() (interface{ Render() string }, error) {
		window := 600 * time.Millisecond
		if *full {
			window = 5 * time.Second
		}
		return serveload.ServeLoad(ctx, nil, window)
	})
	if skipped {
		fmt.Fprintf(os.Stderr, "experiments: cancelled (%v); completed experiments above\n", context.Cause(ctx))
		os.Exit(130)
	}
}

// parseWorkers turns "1,2,4" into worker counts; empty means the default
// sweep.
func parseWorkers(s string) []int { return parseCounts("workers", s) }

// parseCounts turns "1,2,4" into positive counts; empty means the default
// sweep. Invalid input is fatal rather than skipped so a recorded sweep
// never silently differs from the one requested.
func parseCounts(flagName, s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: invalid -%s entry %q (want positive integers, e.g. 1,2,4)\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, w)
	}
	return out
}
