// Command tgquery evaluates behavior queries against a test timeline: it
// re-discovers the top-k queries from training data, runs them over the
// test graph, and (when ground truth is available) reports precision and
// recall per the paper's Section 6.2.
//
// Usage:
//
//	tgquery -pos data/sshd-login.tg -neg data/background.tg \
//	        -test data/timeline.tg -truth data/truth.tsv -behavior sshd-login
//
// The -mode flag selects the query family: "temporal" (TGMiner, default),
// "ntemp" (collapsed non-temporal patterns), or "nodeset" (label multiset),
// matching the three systems of the paper's Table 2.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tgminer"
	"tgminer/internal/cmdutil"
)

func main() {
	posPath := flag.String("pos", "", "positive (behavior) dataset file")
	negPath := flag.String("neg", "", "negative (background) dataset file")
	testPath := flag.String("test", "", "test timeline dataset file")
	truthPath := flag.String("truth", "", "ground truth TSV (optional)")
	behavior := flag.String("behavior", "", "behavior name for ground-truth filtering")
	size := flag.Int("size", 6, "query size in edges")
	top := flag.Int("top", 5, "number of queries to evaluate (union of matches)")
	window := flag.Int64("window", 0, "match window in ticks (default: from truth file, else unbounded)")
	minGap := flag.Int64("min-gap", 0, "temporal mode: minimum gap in ticks between consecutive hops (0 = unbounded)")
	maxGap := flag.Int64("max-gap", 0, "temporal mode: maximum gap in ticks between consecutive hops (0 = unbounded)")
	mode := flag.String("mode", "temporal", "query family: temporal, ntemp, nodeset")
	timeout := flag.Duration("timeout", 0, "overall deadline (e.g. 30s); 0 = none. Ctrl-C also cancels; partial results are reported")
	flag.Parse()

	if *posPath == "" || *negPath == "" || *testPath == "" {
		fmt.Fprintln(os.Stderr, "tgquery: -pos, -neg and -test are required")
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT cancels the context-aware mining/search entry points
	// cooperatively: partial results are printed before exiting. A second
	// SIGINT kills the process the usual way (see cmdutil.SignalContext).
	ctx, sigCtx, stop := cmdutil.SignalContext(*timeout)
	defer stop()
	err := run(ctx, sigCtx, *timeout, *posPath, *negPath, *testPath, *truthPath, *behavior, *mode, *size, *top, *window, *minGap, *maxGap)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "tgquery: cancelled:", err)
		os.Exit(130)
	default:
		fmt.Fprintln(os.Stderr, "tgquery:", err)
		os.Exit(1)
	}
}

func run(ctx, sigCtx context.Context, timeout time.Duration, posPath, negPath, testPath, truthPath, behavior, mode string, size, top int, window, minGap, maxGap int64) error {
	if (minGap != 0 || maxGap != 0) && mode != "temporal" && mode != "" {
		return fmt.Errorf("-min-gap/-max-gap apply only to -mode temporal (got %q)", mode)
	}
	dict := tgminer.NewDict()
	pos, err := tgminer.LoadCorpusFile(posPath, dict)
	if err != nil {
		return fmt.Errorf("loading positives: %w", err)
	}
	neg, err := tgminer.LoadCorpusFile(negPath, dict)
	if err != nil {
		return fmt.Errorf("loading negatives: %w", err)
	}
	test, err := tgminer.LoadCorpusFile(testPath, dict)
	if err != nil {
		return fmt.Errorf("loading test graph: %w", err)
	}
	if len(test.Graphs) != 1 {
		return fmt.Errorf("test file must contain exactly one graph, got %d", len(test.Graphs))
	}

	var truth []tgminer.Interval
	if truthPath != "" {
		var tw int64
		truth, tw, err = loadTruth(truthPath, behavior)
		if err != nil {
			return err
		}
		if window == 0 {
			window = tw
		}
	}

	all := append(append([]*tgminer.Graph{}, pos.Graphs...), neg.Graphs...)
	interest := tgminer.NewInterest(all, dict, nil)
	qopts := tgminer.QueryOptions{QuerySize: size, TopK: top, Interest: interest}
	eng := tgminer.NewEngine(test.Graphs[0])
	sopts := tgminer.SearchOptions{Window: window}

	var union tgminer.SearchResult
	var interrupted error
	switch mode {
	case "temporal", "":
		bq, err := tgminer.DiscoverQueriesContext(ctx, pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			if bq == nil || len(bq.Queries) == 0 {
				return err
			}
			// Cancelled mid-mine: evaluate the partial query set anyway so
			// the operator sees what the interrupted run found. The dead
			// deadline context would kill every search immediately, so
			// evaluation re-arms a fresh budget of the same size on the
			// signal-only parent: a -timeout run is bounded by 2x the
			// requested deadline overall, and Ctrl-C still cancels the
			// evaluation phase cooperatively (after a SIGINT, sigCtx is
			// already dead and evaluation is skipped straight away).
			interrupted = err
			ctx = sigCtx
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			fmt.Printf("mining interrupted (%v); continuing with partial queries\n", err)
		}
		fmt.Printf("discovered %d temporal queries (F* = %.4f)\n", len(bq.Queries), bq.BestScore)
		results := make([]tgminer.SearchResult, len(bq.Queries))
		for i, q := range bq.Queries {
			// -min-gap/-max-gap constrain every hop after the anchor; the
			// constraint set sizes per query since query sizes can differ.
			qsopts := sopts
			if minGap != 0 || maxGap != 0 {
				hops := make([]tgminer.HopConstraint, q.NumEdges())
				for h := 1; h < len(hops); h++ {
					hops[h] = tgminer.HopConstraint{MinGap: minGap, MaxGap: maxGap}
				}
				qsopts.Constraints = &tgminer.TemporalConstraints{Hops: hops}
				if err := qsopts.Constraints.Validate(q.NumEdges()); err != nil {
					return err
				}
			}
			var serr error
			results[i], serr = eng.FindTemporalContext(ctx, q, qsopts)
			fmt.Printf("query #%d: %d matches%s\n", i+1, len(results[i].Matches),
				truncNote(results[i].Truncated))
			if serr != nil {
				interrupted = serr
				fmt.Printf("search interrupted (%v); reporting partial matches\n", serr)
				results = results[:i+1]
				break
			}
		}
		union = tgminer.UnionMatches(results...)
	case "ntemp":
		// Discovery itself is still coarse-grained, but evaluation is
		// context-aware: a cancel mid-search returns the partial matches
		// found so far.
		nq, err := tgminer.DiscoverNonTemporalQueries(pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			return err
		}
		fmt.Printf("discovered %d non-temporal queries\n", len(nq))
		results := make([]tgminer.SearchResult, 0, len(nq))
		for i, q := range nq {
			r, serr := eng.FindNonTemporalContext(ctx, q, sopts)
			results = append(results, r)
			fmt.Printf("query #%d: %d matches%s\n", i+1, len(r.Matches),
				truncNote(r.Truncated))
			if serr != nil {
				interrupted = serr
				fmt.Printf("search interrupted (%v); reporting partial matches\n", serr)
				break
			}
		}
		union = tgminer.UnionMatches(results...)
	case "nodeset":
		lq, err := tgminer.DiscoverLabelSetQuery(pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			return err
		}
		labels := make([]string, len(lq.Labels))
		for i, l := range lq.Labels {
			labels[i] = dict.Name(l)
		}
		fmt.Printf("label-set query: %v\n", labels)
		var serr error
		union, serr = eng.FindLabelSetContext(ctx, lq, sopts)
		if serr != nil {
			interrupted = serr
			fmt.Printf("search interrupted (%v); reporting partial matches\n", serr)
		}
	default:
		return fmt.Errorf("unknown mode %q (want temporal, ntemp, or nodeset)", mode)
	}
	fmt.Printf("union: %d distinct identified instances%s\n", len(union.Matches), truncNote(union.Truncated))

	if truth != nil {
		m := tgminer.Evaluate(union.Matches, truth)
		fmt.Printf("precision = %.1f%%  recall = %.1f%%  (correct %d / identified %d; discovered %d / instances %d)\n",
			100*m.Precision(), 100*m.Recall(), m.Correct, m.Identified, m.Discovered, m.Instances)
	}
	return interrupted
}

func truncNote(t bool) string {
	if t {
		return " (truncated)"
	}
	return ""
}

// loadTruth parses the tggen truth.tsv: lines "behavior <TAB> start <TAB>
// end" with an optional "window=N" on the header comment.
func loadTruth(path, behavior string) ([]tgminer.Interval, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var out []tgminer.Interval
	var window int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "window="); i >= 0 {
				if w, err := strconv.ParseInt(strings.TrimSpace(line[i+len("window="):]), 10, 64); err == nil {
					window = w
				}
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("truth: malformed line %q", line)
		}
		if behavior != "" && fields[0] != behavior {
			continue
		}
		start, err1 := strconv.ParseInt(fields[1], 10, 64)
		end, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, 0, fmt.Errorf("truth: bad interval in %q", line)
		}
		out = append(out, tgminer.Interval{Start: start, End: end})
	}
	return out, window, sc.Err()
}
