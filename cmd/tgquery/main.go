// Command tgquery evaluates behavior queries against a test timeline: it
// re-discovers the top-k queries from training data, runs them over the
// test graph, and (when ground truth is available) reports precision and
// recall per the paper's Section 6.2.
//
// Usage:
//
//	tgquery -pos data/sshd-login.tg -neg data/background.tg \
//	        -test data/timeline.tg -truth data/truth.tsv -behavior sshd-login
//
// The -mode flag selects the query family: "temporal" (TGMiner, default),
// "ntemp" (collapsed non-temporal patterns), or "nodeset" (label multiset),
// matching the three systems of the paper's Table 2.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tgminer"
)

func main() {
	posPath := flag.String("pos", "", "positive (behavior) dataset file")
	negPath := flag.String("neg", "", "negative (background) dataset file")
	testPath := flag.String("test", "", "test timeline dataset file")
	truthPath := flag.String("truth", "", "ground truth TSV (optional)")
	behavior := flag.String("behavior", "", "behavior name for ground-truth filtering")
	size := flag.Int("size", 6, "query size in edges")
	top := flag.Int("top", 5, "number of queries to evaluate (union of matches)")
	window := flag.Int64("window", 0, "match window in ticks (default: from truth file, else unbounded)")
	mode := flag.String("mode", "temporal", "query family: temporal, ntemp, nodeset")
	flag.Parse()

	if *posPath == "" || *negPath == "" || *testPath == "" {
		fmt.Fprintln(os.Stderr, "tgquery: -pos, -neg and -test are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*posPath, *negPath, *testPath, *truthPath, *behavior, *mode, *size, *top, *window); err != nil {
		fmt.Fprintln(os.Stderr, "tgquery:", err)
		os.Exit(1)
	}
}

func run(posPath, negPath, testPath, truthPath, behavior, mode string, size, top int, window int64) error {
	dict := tgminer.NewDict()
	pos, err := tgminer.LoadCorpusFile(posPath, dict)
	if err != nil {
		return fmt.Errorf("loading positives: %w", err)
	}
	neg, err := tgminer.LoadCorpusFile(negPath, dict)
	if err != nil {
		return fmt.Errorf("loading negatives: %w", err)
	}
	test, err := tgminer.LoadCorpusFile(testPath, dict)
	if err != nil {
		return fmt.Errorf("loading test graph: %w", err)
	}
	if len(test.Graphs) != 1 {
		return fmt.Errorf("test file must contain exactly one graph, got %d", len(test.Graphs))
	}

	var truth []tgminer.Interval
	if truthPath != "" {
		var tw int64
		truth, tw, err = loadTruth(truthPath, behavior)
		if err != nil {
			return err
		}
		if window == 0 {
			window = tw
		}
	}

	all := append(append([]*tgminer.Graph{}, pos.Graphs...), neg.Graphs...)
	interest := tgminer.NewInterest(all, dict, nil)
	qopts := tgminer.QueryOptions{QuerySize: size, TopK: top, Interest: interest}
	eng := tgminer.NewEngine(test.Graphs[0])
	sopts := tgminer.SearchOptions{Window: window}

	var union tgminer.SearchResult
	switch mode {
	case "temporal", "":
		bq, err := tgminer.DiscoverQueries(pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			return err
		}
		fmt.Printf("discovered %d temporal queries (F* = %.4f)\n", len(bq.Queries), bq.BestScore)
		results := make([]tgminer.SearchResult, len(bq.Queries))
		for i, q := range bq.Queries {
			results[i] = eng.FindTemporal(q, sopts)
			fmt.Printf("query #%d: %d matches%s\n", i+1, len(results[i].Matches),
				truncNote(results[i].Truncated))
		}
		union = tgminer.UnionMatches(results...)
	case "ntemp":
		nq, err := tgminer.DiscoverNonTemporalQueries(pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			return err
		}
		fmt.Printf("discovered %d non-temporal queries\n", len(nq))
		results := make([]tgminer.SearchResult, len(nq))
		for i, q := range nq {
			results[i] = eng.FindNonTemporal(q, sopts)
			fmt.Printf("query #%d: %d matches%s\n", i+1, len(results[i].Matches),
				truncNote(results[i].Truncated))
		}
		union = tgminer.UnionMatches(results...)
	case "nodeset":
		lq, err := tgminer.DiscoverLabelSetQuery(pos.Graphs, neg.Graphs, qopts)
		if err != nil {
			return err
		}
		labels := make([]string, len(lq.Labels))
		for i, l := range lq.Labels {
			labels[i] = dict.Name(l)
		}
		fmt.Printf("label-set query: %v\n", labels)
		union = eng.FindLabelSet(lq, sopts)
	default:
		return fmt.Errorf("unknown mode %q (want temporal, ntemp, or nodeset)", mode)
	}
	fmt.Printf("union: %d distinct identified instances%s\n", len(union.Matches), truncNote(union.Truncated))

	if truth != nil {
		m := tgminer.Evaluate(union.Matches, truth)
		fmt.Printf("precision = %.1f%%  recall = %.1f%%  (correct %d / identified %d; discovered %d / instances %d)\n",
			100*m.Precision(), 100*m.Recall(), m.Correct, m.Identified, m.Discovered, m.Instances)
	}
	return nil
}

func truncNote(t bool) string {
	if t {
		return " (truncated)"
	}
	return ""
}

// loadTruth parses the tggen truth.tsv: lines "behavior <TAB> start <TAB>
// end" with an optional "window=N" on the header comment.
func loadTruth(path, behavior string) ([]tgminer.Interval, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var out []tgminer.Interval
	var window int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "window="); i >= 0 {
				if w, err := strconv.ParseInt(strings.TrimSpace(line[i+len("window="):]), 10, 64); err == nil {
					window = w
				}
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("truth: malformed line %q", line)
		}
		if behavior != "" && fields[0] != behavior {
			continue
		}
		start, err1 := strconv.ParseInt(fields[1], 10, 64)
		end, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, 0, fmt.Errorf("truth: bad interval in %q", line)
		}
		out = append(out, tgminer.Interval{Start: start, End: end})
	}
	return out, window, sc.Err()
}
