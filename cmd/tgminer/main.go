// Command tgminer mines discriminative temporal graph patterns from a
// positive and a negative dataset file, printing the top behavior queries.
//
// Usage:
//
//	tgminer -pos data/sshd-login.tg -neg data/background.tg -size 6 -top 5
//	tgminer -pos p.tg -neg n.tg -algo prunevf2 -score g-test -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tgminer"
)

func main() {
	posPath := flag.String("pos", "", "positive (behavior) dataset file")
	negPath := flag.String("neg", "", "negative (background) dataset file")
	size := flag.Int("size", 6, "behavior query size in edges")
	top := flag.Int("top", 5, "number of queries to print")
	algo := flag.String("algo", "tgminer", "algorithm: tgminer, subprune, supprune, prunegi, prunevf2, linearscan, exhaustive")
	scoreName := flag.String("score", "log-ratio", "score function: log-ratio, g-test, info-gain")
	stats := flag.Bool("stats", false, "print mining statistics")
	flag.Parse()

	if *posPath == "" || *negPath == "" {
		fmt.Fprintln(os.Stderr, "tgminer: -pos and -neg are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*posPath, *negPath, *size, *top, *algo, *scoreName, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tgminer:", err)
		os.Exit(1)
	}
}

func run(posPath, negPath string, size, top int, algo, scoreName string, stats bool) error {
	dict := tgminer.NewDict()
	pos, err := tgminer.LoadCorpusFile(posPath, dict)
	if err != nil {
		return fmt.Errorf("loading positives: %w", err)
	}
	neg, err := tgminer.LoadCorpusFile(negPath, dict)
	if err != nil {
		return fmt.Errorf("loading negatives: %w", err)
	}
	fmt.Printf("mining %d positive vs %d negative graphs (size=%d, algo=%s, score=%s)\n",
		len(pos.Graphs), len(neg.Graphs), size, algo, scoreName)

	all := append(append([]*tgminer.Graph{}, pos.Graphs...), neg.Graphs...)
	interest := tgminer.NewInterest(all, dict, nil)

	start := time.Now()
	res, err := tgminer.Mine(pos.Graphs, neg.Graphs, tgminer.MineOptions{
		Algorithm: tgminer.Algorithm(algo),
		ScoreFunc: scoreName,
		MaxEdges:  size,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("best score F* = %.4f (%d tied patterns) in %s\n", res.BestScore, res.TieCount, elapsed)

	bq, err := tgminer.DiscoverQueries(pos.Graphs, neg.Graphs, tgminer.QueryOptions{
		QuerySize: size, TopK: top,
		Algorithm: tgminer.Algorithm(algo),
		Interest:  interest,
	})
	if err != nil {
		return err
	}
	for i, q := range bq.Queries {
		fmt.Printf("\nquery #%d (%d edges):\n  %s\n", i+1, q.NumEdges(), tgminer.FormatPattern(q, dict))
	}
	if stats {
		fmt.Printf("\nstats: %s\n", res.Stats)
	}
	return nil
}
