// Command tggen generates synthetic syscall-activity datasets shaped like
// the TGMiner paper's evaluation corpus (Table 1): per-behavior training
// files, a background file, and a test timeline with ground truth.
//
// Usage:
//
//	tggen -out data/ -scale 0.25 -graphs 20 -background 100 -instances 200
//	tggen -out data/ -behaviors sshd-login,scp-download
//
// Outputs, under -out:
//
//	<behavior>.tg     positive training graphs, one file per behavior
//	background.tg     background (negative) training graphs
//	timeline.tg       test graph (single large temporal graph)
//	truth.tsv         ground-truth intervals: behavior <TAB> start <TAB> end
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tgminer"
)

func main() {
	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.25, "size scale factor (1.0 = paper sizes)")
	graphs := flag.Int("graphs", 20, "training graphs per behavior (paper: 100)")
	background := flag.Int("background", 100, "background graphs (paper: 10000)")
	instances := flag.Int("instances", 200, "test timeline instances (paper: 10000)")
	behaviors := flag.String("behaviors", "", "comma-separated behavior subset (default: all 12)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var names []string
	if *behaviors != "" {
		names = strings.Split(*behaviors, ",")
	}
	if err := run(*out, *scale, *graphs, *background, *instances, names, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tggen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, graphs, background, instances int, behaviors []string, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ds := tgminer.GenerateSynthetic(tgminer.SyntheticConfig{
		Scale:             scale,
		GraphsPerBehavior: graphs,
		BackgroundGraphs:  background,
		Seed:              seed,
		Behaviors:         behaviors,
	})
	for _, bd := range ds.Behaviors {
		c := &tgminer.Corpus{Dict: ds.Dict}
		for i, g := range bd.Graphs {
			c.Add(fmt.Sprintf("%s-%03d", bd.Spec.Name, i), g)
		}
		path := filepath.Join(out, bd.Spec.Name+".tg")
		if err := tgminer.SaveCorpusFile(path, c); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d graphs)\n", path, len(bd.Graphs))
	}
	bg := &tgminer.Corpus{Dict: ds.Dict}
	for i, g := range ds.Background {
		bg.Add(fmt.Sprintf("background-%05d", i), g)
	}
	bgPath := filepath.Join(out, "background.tg")
	if err := tgminer.SaveCorpusFile(bgPath, bg); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d graphs)\n", bgPath, len(ds.Background))

	tl := tgminer.GenerateTestTimeline(tgminer.TimelineConfig{
		Instances: instances,
		Scale:     scale,
		Seed:      seed + 1000,
		Behaviors: behaviors,
	}, ds.Dict)
	tc := &tgminer.Corpus{Dict: ds.Dict}
	tc.Add("timeline", tl.Graph)
	tlPath := filepath.Join(out, "timeline.tg")
	if err := tgminer.SaveCorpusFile(tlPath, tc); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, %d edges, window %d)\n",
		tlPath, tl.Graph.NumNodes(), tl.Graph.NumEdges(), tl.Window)

	truthPath := filepath.Join(out, "truth.tsv")
	f, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "# behavior\tstart\tend\twindow=%d\n", tl.Window)
	for _, inst := range tl.Truth {
		fmt.Fprintf(f, "%s\t%d\t%d\n", inst.Behavior, inst.Start, inst.End)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d instances)\n", truthPath, len(tl.Truth))
	return nil
}
