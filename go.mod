module tgminer

go 1.23
