module tgminer

go 1.22
