package tgminer_test

import (
	"fmt"

	"tgminer"
)

// buildLoginGraphs constructs a tiny training set: positives read the key
// file before opening the socket; negatives do the reverse.
func buildLoginGraphs(dict *tgminer.Dict) (pos, neg []*tgminer.Graph) {
	for i := 0; i < 3; i++ {
		gb := tgminer.NewGraphBuilder(dict)
		_ = gb.AddEvent("proc:shell", "proc:ssh", 1)
		_ = gb.AddEvent("proc:ssh", "file:key", 2)
		_ = gb.AddEvent("proc:ssh", "sock:22", 3)
		g, _ := gb.Finalize()
		pos = append(pos, g)

		gb2 := tgminer.NewGraphBuilder(dict)
		_ = gb2.AddEvent("proc:shell", "proc:ssh", 1)
		_ = gb2.AddEvent("proc:ssh", "sock:22", 2)
		_ = gb2.AddEvent("proc:ssh", "file:key", 3)
		g2, _ := gb2.Finalize()
		neg = append(neg, g2)
	}
	return pos, neg
}

// ExampleMine finds the most discriminative temporal pattern separating two
// behaviors with identical topology but different event order.
func ExampleMine() {
	dict := tgminer.NewDict()
	pos, neg := buildLoginGraphs(dict)
	res, err := tgminer.Mine(pos, neg, tgminer.MineOptions{MaxEdges: 2})
	if err != nil {
		panic(err)
	}
	best := res.Best[0]
	fmt.Printf("pos freq %.0f, neg freq %.0f\n", best.PosFreq, best.NegFreq)
	// Output:
	// pos freq 1, neg freq 0
}

// ExampleDiscoverQueries runs the full behavior-query pipeline and checks
// the query against a fresh graph.
func ExampleDiscoverQueries() {
	dict := tgminer.NewDict()
	pos, neg := buildLoginGraphs(dict)
	interest := tgminer.NewInterest(append(append([]*tgminer.Graph{}, pos...), neg...), dict, nil)
	bq, err := tgminer.DiscoverQueries(pos, neg, tgminer.QueryOptions{
		QuerySize: 2, TopK: 1, Interest: interest,
	})
	if err != nil {
		panic(err)
	}
	eng := tgminer.NewEngine(pos[0])
	res := eng.FindTemporal(bq.Queries[0], tgminer.SearchOptions{})
	fmt.Printf("queries: %d, matches in a positive graph: %d\n", len(bq.Queries), len(res.Matches))
	// Output:
	// queries: 1, matches in a positive graph: 1
}

// ExampleEvaluate scores identified instances against ground truth with the
// paper's containment semantics.
func ExampleEvaluate() {
	matches := []tgminer.Match{{Start: 5, End: 9}, {Start: 40, End: 60}}
	truth := []tgminer.Interval{{Start: 0, End: 10}, {Start: 20, End: 30}}
	m := tgminer.Evaluate(matches, truth)
	fmt.Printf("precision %.2f recall %.2f\n", m.Precision(), m.Recall())
	// Output:
	// precision 0.50 recall 0.50
}

// ExampleGraphBuilder_Sequentialize shows the Section 5 concurrent-edge
// handling: duplicate timestamps are given an artificial total order.
func ExampleGraphBuilder_Sequentialize() {
	gb := tgminer.NewGraphBuilder(nil)
	_ = gb.AddEvent("proc:a", "file:x", 7)
	_ = gb.AddEvent("proc:b", "file:x", 7) // concurrent
	g, err := gb.Sequentialize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("edges: %d, times: %d %d\n", g.NumEdges(), g.EdgeAt(0).Time, g.EdgeAt(1).Time)
	// Output:
	// edges: 2, times: 0 1
}
