package tgminer

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"tgminer/internal/core"
	"tgminer/internal/gspan"
	"tgminer/internal/miner"
	"tgminer/internal/nodeset"
	"tgminer/internal/rank"
	"tgminer/internal/score"
)

// Algorithm selects a mining algorithm variant (Section 6.1 of the paper).
type Algorithm string

// Mining algorithm variants. TGMiner is the full algorithm; the others are
// the paper's efficiency baselines, exposed for ablation studies.
const (
	AlgoTGMiner    Algorithm = "tgminer"
	AlgoSubPrune   Algorithm = "subprune"
	AlgoSupPrune   Algorithm = "supprune"
	AlgoPruneGI    Algorithm = "prunegi"
	AlgoPruneVF2   Algorithm = "prunevf2"
	AlgoLinearScan Algorithm = "linearscan"
	AlgoExhaustive Algorithm = "exhaustive"
)

func (a Algorithm) options() (miner.Options, error) {
	switch a {
	case AlgoTGMiner, "":
		return miner.TGMinerOptions(), nil
	case AlgoSubPrune:
		return miner.SubPruneOptions(), nil
	case AlgoSupPrune:
		return miner.SupPruneOptions(), nil
	case AlgoPruneGI:
		return miner.PruneGIOptions(), nil
	case AlgoPruneVF2:
		return miner.PruneVF2Options(), nil
	case AlgoLinearScan:
		return miner.LinearScanOptions(), nil
	case AlgoExhaustive:
		return miner.ExhaustiveOptions(), nil
	default:
		return miner.Options{}, fmt.Errorf("tgminer: unknown algorithm %q", a)
	}
}

// MineOptions configures Mine.
type MineOptions struct {
	// Algorithm selects the variant (default AlgoTGMiner).
	Algorithm Algorithm
	// ScoreFunc names the discriminative score function: "log-ratio"
	// (default), "g-test", or "info-gain".
	ScoreFunc string
	// MaxEdges bounds pattern size (default 6).
	MaxEdges int
	// MaxResults caps retained tied best patterns (default 512). When the
	// tie count exceeds the cap, the patterns with the smallest canonical
	// keys are kept, so the retained subset is deterministic.
	MaxResults int
	// Parallelism is the number of workers mining seeds concurrently
	// (default runtime.GOMAXPROCS(0); 1 forces the sequential search).
	// Parallel runs return the same BestScore, TieCount, and best-pattern
	// set as sequential runs; only Stats counters may vary.
	Parallelism int
}

// MinedPattern is a discovered pattern with its statistics.
type MinedPattern struct {
	Pattern *Pattern
	Score   float64
	PosFreq float64
	NegFreq float64
}

// MineStats are search counters (see the paper's Table 3).
type MineStats = miner.Stats

// MineResult is the outcome of Mine.
type MineResult struct {
	// Best holds the maximum-score patterns (ties), up to MaxResults.
	Best []MinedPattern
	// BestScore is F*.
	BestScore float64
	// TieCount is the exact number of maximum-score patterns found.
	TieCount int
	// Stats are the search counters.
	Stats MineStats
}

// Mine finds the most discriminative T-connected temporal patterns
// distinguishing pos from neg. It is a compatibility wrapper over
// MineContext with a background (non-cancellable) context.
func Mine(pos, neg []*Graph, opts MineOptions) (*MineResult, error) {
	return MineContext(context.Background(), pos, neg, opts)
}

// MineContext is Mine under a context: cancel it or give it a deadline and
// the seed-level worker pool stops cooperatively (within at most one seed's
// branch per worker). On cancellation the partial MineResult mined so far is
// returned together with ctx.Err(); each seed's branch is either wholly
// explored or untouched, so partial results are sound lower bounds.
func MineContext(ctx context.Context, pos, neg []*Graph, opts MineOptions) (*MineResult, error) {
	mo, err := opts.minerOptions()
	if err != nil {
		return nil, err
	}
	res, err := miner.MineContext(ctx, pos, neg, mo)
	if res == nil {
		return nil, err
	}
	out := &MineResult{BestScore: res.BestScore, TieCount: res.TieCount, Stats: res.Stats}
	for _, sp := range res.Best {
		out.Best = append(out.Best, MinedPattern{
			Pattern: sp.Pattern, Score: sp.Score, PosFreq: sp.PosFreq, NegFreq: sp.NegFreq,
		})
	}
	return out, err
}

// minerOptions lowers MineOptions onto the internal miner configuration.
func (opts MineOptions) minerOptions() (miner.Options, error) {
	mo, err := opts.Algorithm.options()
	if err != nil {
		return miner.Options{}, err
	}
	if opts.ScoreFunc != "" {
		f, err := score.ByName(opts.ScoreFunc)
		if err != nil {
			return miner.Options{}, err
		}
		mo.Score = f
	}
	if opts.MaxEdges > 0 {
		mo.MaxEdges = opts.MaxEdges
	}
	if opts.MaxResults > 0 {
		mo.MaxResults = opts.MaxResults
	}
	if opts.Parallelism > 0 {
		mo.Parallelism = opts.Parallelism
	}
	return mo, nil
}

// MineSessionStats reports seed-reuse accounting for the most recent
// session round: dirty/skipped/injected/explored seed counts, carried
// pruning-registry entries, and the warm-start F*.
type MineSessionStats = miner.SessionStats

// DriftKind classifies a drift alert between consecutive session rounds.
type DriftKind string

// Drift alert kinds.
const (
	// DriftNewPattern: a pattern entered the tied best set this round.
	DriftNewPattern DriftKind = "new-pattern"
	// DriftDroppedPattern: a pattern left the tied best set this round.
	DriftDroppedPattern DriftKind = "dropped-pattern"
	// DriftSupportDecay: a retained best pattern's positive support fell.
	DriftSupportDecay DriftKind = "support-decay"
	// DriftScoreShift: the best score F* itself moved.
	DriftScoreShift DriftKind = "score-shift"
)

// DriftAlert describes one change in the mined best set between two
// consecutive session rounds — the signal a continuous-monitoring deployment
// watches: behavior queries appearing, disappearing, or losing support as
// the live graphs evolve.
type DriftAlert struct {
	Kind DriftKind
	// Key is the canonical key of the pattern concerned (empty for
	// DriftScoreShift, which concerns F* itself).
	Key string
	// Pattern is the pattern concerned (the new, dropped, or decayed one);
	// nil for DriftScoreShift.
	Pattern *Pattern
	// Before and After hold the changing quantity: positive support for
	// DriftSupportDecay, F* for DriftScoreShift, and the pattern's score
	// for DriftNewPattern (Before 0) and DriftDroppedPattern (After 0).
	Before, After float64
}

// MineSession mines repeatedly over an evolving graph set, making warm
// re-mines dramatically cheaper than batch Mine calls by caching per-seed
// exploration outcomes between rounds.
//
// A seed (a single-edge pattern and its embedding lists) is re-explored
// only when *dirty*: some graph supporting it changed content, its
// embedding lists changed, or its cached outcome cannot be proven
// complete under the new threshold. Clean seeds replay their cached
// contribution in O(1), and the previous round's surviving best score
// warm-starts the shared pruning threshold before any worker runs — which
// is safe because that score is still achieved on the current data, so the
// threshold stays a valid lower bound of the true F* and can only
// under-prune. Results are byte-identical (Best, BestScore, TieCount) to a
// cold Mine over the same data; only Stats counters differ. See
// internal/miner's incremental documentation for the full invalidation
// model and its proof obligations.
//
// Options are fixed at construction. Methods are safe for concurrent use;
// rounds serialize, and each round parallelizes internally per
// MineOptions.Parallelism.
type MineSession struct {
	mu    sync.Mutex
	ses   *miner.Session
	prev  *MineResult
	drift []DriftAlert
}

// NewMineSession creates a continuous-mining session with fixed options.
func NewMineSession(opts MineOptions) (*MineSession, error) {
	mo, err := opts.minerOptions()
	if err != nil {
		return nil, err
	}
	return &MineSession{ses: miner.NewSession(mo)}, nil
}

// Mine runs one session round with a background context.
func (s *MineSession) Mine(pos, neg []*Graph) (*MineResult, error) {
	return s.MineContext(context.Background(), pos, neg)
}

// MineContext runs one session round over the current graph sets. Graphs
// are matched to the previous round positionally: index i of pos (and neg)
// should be the same evolving graph each round — unchanged graphs are
// recognized by pointer or content stamp, changed ones dirty exactly the
// seeds they support. Cancellation has MineContext semantics (partial
// result + ctx.Err()); a cancelled round leaves the session caches as of
// the last complete round, and drift is not updated.
func (s *MineSession) MineContext(ctx context.Context, pos, neg []*Graph) (*MineResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.ses.MineContext(ctx, pos, neg)
	if res == nil {
		return nil, err
	}
	out := &MineResult{BestScore: res.BestScore, TieCount: res.TieCount, Stats: res.Stats}
	for _, sp := range res.Best {
		out.Best = append(out.Best, MinedPattern{
			Pattern: sp.Pattern, Score: sp.Score, PosFreq: sp.PosFreq, NegFreq: sp.NegFreq,
		})
	}
	if err == nil {
		s.drift = driftAlerts(s.prev, out)
		s.prev = out
	}
	return out, err
}

// MineLive runs one session round over live engines with a background
// context.
func (s *MineSession) MineLive(pos, neg []*LiveEngine) (*MineResult, error) {
	return s.MineLiveContext(context.Background(), pos, neg)
}

// MineLiveContext runs one session round treating each LiveEngine as one
// evolving temporal graph: engine i's current edge set (captured via
// MineSnapshot's cached generation cut) is graph i of the corpus. Engines
// that ingested nothing since the previous round reuse both their snapshot
// and every cached seed outcome they support.
func (s *MineSession) MineLiveContext(ctx context.Context, pos, neg []*LiveEngine) (*MineResult, error) {
	pg := make([]*Graph, len(pos))
	for i, le := range pos {
		pg[i] = le.MineSnapshot()
	}
	ng := make([]*Graph, len(neg))
	for i, le := range neg {
		ng[i] = le.MineSnapshot()
	}
	return s.MineContext(ctx, pg, ng)
}

// Stats returns reuse accounting for the most recent complete round.
func (s *MineSession) Stats() MineSessionStats {
	return s.ses.Stats()
}

// Drift returns the alerts comparing the last complete round's best set
// with the round before it (nil after the first round).
func (s *MineSession) Drift() []DriftAlert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drift
}

// driftAlerts diffs two consecutive rounds' best sets.
func driftAlerts(prev, cur *MineResult) []DriftAlert {
	if prev == nil {
		return nil
	}
	var alerts []DriftAlert
	if prev.BestScore != cur.BestScore {
		alerts = append(alerts, DriftAlert{
			Kind: DriftScoreShift, Before: prev.BestScore, After: cur.BestScore,
		})
	}
	old := make(map[string]MinedPattern, len(prev.Best))
	for _, mp := range prev.Best {
		old[mp.Pattern.Key()] = mp
	}
	seen := make(map[string]bool, len(cur.Best))
	for _, mp := range cur.Best {
		k := mp.Pattern.Key()
		seen[k] = true
		before, ok := old[k]
		switch {
		case !ok:
			alerts = append(alerts, DriftAlert{
				Kind: DriftNewPattern, Key: k, Pattern: mp.Pattern, After: mp.Score,
			})
		case mp.PosFreq < before.PosFreq:
			alerts = append(alerts, DriftAlert{
				Kind: DriftSupportDecay, Key: k, Pattern: mp.Pattern,
				Before: before.PosFreq, After: mp.PosFreq,
			})
		}
	}
	for k, mp := range old {
		if !seen[k] {
			alerts = append(alerts, DriftAlert{
				Kind: DriftDroppedPattern, Key: k, Pattern: mp.Pattern, Before: mp.Score,
			})
		}
	}
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].Kind != alerts[j].Kind {
			return alerts[i].Kind < alerts[j].Kind
		}
		return alerts[i].Key < alerts[j].Key
	})
	return alerts
}

// TopKResult is the outcome of MineTopK.
type TopKResult struct {
	// Patterns are the K highest-scoring distinct patterns, best first.
	Patterns []MinedPattern
	// Threshold is the K-th best score (the final pruning bound).
	Threshold float64
	Stats     MineStats
}

// MineTopK returns the K highest-scoring T-connected temporal patterns, a
// ranked shortlist rather than the paper's tied-maximum set. Exact: only
// upper-bound pruning is applied (the subgraph/supergraph prunings preserve
// just the maximum, so they are disabled here; see internal/miner). It is a
// compatibility wrapper over MineTopKContext with a background context.
func MineTopK(pos, neg []*Graph, k int, opts MineOptions) (*TopKResult, error) {
	return MineTopKContext(context.Background(), pos, neg, k, opts)
}

// MineTopKContext is MineTopK under a context. Like MineContext, the search
// parallelizes over seeds (MineOptions.Parallelism workers sharing the
// K-th-best threshold atomically) and returns the identical shortlist at
// every worker count; cancellation returns the partial shortlist together
// with ctx.Err().
func MineTopKContext(ctx context.Context, pos, neg []*Graph, k int, opts MineOptions) (*TopKResult, error) {
	mo, err := opts.minerOptions()
	if err != nil {
		return nil, err
	}
	res, err := miner.MineTopKContext(ctx, pos, neg, k, mo)
	if res == nil {
		return nil, err
	}
	out := &TopKResult{Threshold: res.Threshold, Stats: res.Stats}
	for _, sp := range res.Patterns {
		out.Patterns = append(out.Patterns, MinedPattern{
			Pattern: sp.Pattern, Score: sp.Score, PosFreq: sp.PosFreq, NegFreq: sp.NegFreq,
		})
	}
	return out, err
}

// Interest is the Appendix M domain-knowledge ranking function.
type Interest = rank.Interest

// NewInterest builds the ranking function over training graphs. Labels
// whose names contain any blacklist substring score zero; nil uses the
// paper's default blacklist.
func NewInterest(graphs []*Graph, dict *Dict, blacklistSubstrings []string) *Interest {
	return rank.NewInterest(graphs, dict, blacklistSubstrings)
}

// QueryOptions configures DiscoverQueries.
type QueryOptions struct {
	// QuerySize is the number of edges per query (default 6).
	QuerySize int
	// TopK is the number of queries returned (default 5).
	TopK int
	// Algorithm selects the mining variant (default AlgoTGMiner).
	Algorithm Algorithm
	// Interest ranks tied patterns; optional.
	Interest *Interest
	// Parallelism is the number of mining workers (default
	// runtime.GOMAXPROCS(0); results are identical at any level).
	Parallelism int
}

// BehaviorQueries is the result of query discovery.
type BehaviorQueries struct {
	// Queries are the top-k behavior queries, best first.
	Queries []*Pattern
	// BestScore is the maximum discriminative score.
	BestScore float64
	// Stats are the mining counters.
	Stats MineStats
}

// DiscoverQueries runs the full pipeline of the paper's Figure 2: mine,
// rank ties by interest, return the top-k behavior queries. It is a
// compatibility wrapper over DiscoverQueriesContext with a background
// context.
func DiscoverQueries(pos, neg []*Graph, opts QueryOptions) (*BehaviorQueries, error) {
	return DiscoverQueriesContext(context.Background(), pos, neg, opts)
}

// DiscoverQueriesContext is DiscoverQueries under a context. A cancelled or
// expired context stops mining at seed granularity; the queries built from
// the partial mining result are returned together with ctx.Err(), so a
// deadline-bounded discovery still yields usable (if possibly sub-optimal)
// behavior queries.
func DiscoverQueriesContext(ctx context.Context, pos, neg []*Graph, opts QueryOptions) (*BehaviorQueries, error) {
	mo, err := opts.Algorithm.options()
	if err != nil {
		return nil, err
	}
	if opts.Parallelism > 0 {
		mo.Parallelism = opts.Parallelism
	}
	bq, err := core.DiscoverQueriesContext(ctx, pos, neg, core.QueryConfig{
		QuerySize: opts.QuerySize,
		TopK:      opts.TopK,
		Miner:     &mo,
		Interest:  opts.Interest,
	})
	if bq == nil {
		return nil, err
	}
	return &BehaviorQueries{Queries: bq.Queries, BestScore: bq.BestScore, Stats: bq.Mining.Stats}, err
}

// NonTemporalPattern is a collapsed (order-free) graph pattern, the query
// type of the paper's Ntemp baseline.
type NonTemporalPattern = gspan.Pattern

// NonTemporalPatternFromGraph collapses a temporal graph into an order-free
// query pattern: timestamps are dropped and parallel edges merge. The Ntemp
// counterpart of PatternFromGraph, for writing non-temporal queries by hand
// (build the shape with a GraphBuilder sharing the engine's Dict, then
// collapse) instead of mining them.
func NonTemporalPatternFromGraph(g *Graph) *NonTemporalPattern {
	return gspan.PatternFromTemporal(g)
}

// DiscoverNonTemporalQueries runs the Ntemp baseline pipeline.
func DiscoverNonTemporalQueries(pos, neg []*Graph, opts QueryOptions) ([]*NonTemporalPattern, error) {
	nq, err := core.DiscoverNonTemporalQueries(pos, neg, core.QueryConfig{
		QuerySize: opts.QuerySize,
		TopK:      opts.TopK,
		Interest:  opts.Interest,
	})
	if err != nil {
		return nil, err
	}
	return nq.Queries, nil
}

// LabelSetQuery is a NodeSet baseline query: a label multiset.
type LabelSetQuery = nodeset.Query

// DiscoverLabelSetQuery runs the NodeSet baseline pipeline.
func DiscoverLabelSetQuery(pos, neg []*Graph, opts QueryOptions) (*LabelSetQuery, error) {
	return core.DiscoverNodeSetQuery(pos, neg, core.QueryConfig{
		QuerySize: opts.QuerySize,
		TopK:      opts.TopK,
	}, opts.Interest)
}
