// Benchmarks regenerating every table and figure of the TGMiner paper
// (Section 6) at a scaled-down size, plus micro-benchmarks and ablations
// for the design choices called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigureN corresponds to the same-numbered
// exhibit in the paper; cmd/experiments prints the full rendered output.
package tgminer

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"tgminer/internal/experiments"
	"tgminer/internal/miner"
	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
	"tgminer/internal/vf2"
)

// benchScale is smaller than experiments.Quick so the whole bench suite
// stays fast; drivers and data paths are identical.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Name = "bench"
	s.GraphsPerBehavior = 8
	s.BackgroundGraphs = 24
	s.TestInstances = 36
	s.MaxPatternEdges = 6
	return s
}

var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal = experiments.NewEnv(benchScale())
		benchEnvVal.Timeline() // include index build outside timed loops
		benchEnvVal.Interest()
	})
	return benchEnvVal
}

func BenchmarkTable1TrainingData(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(env)
		if len(res.Rows) == 0 {
			b.Fatal("empty table 1")
		}
	}
}

func BenchmarkTable2QueryAccuracy(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		prec, _ := res.Averages()
		if prec[2] == 0 {
			b.Fatal("degenerate TGMiner precision")
		}
	}
}

func BenchmarkTable3PruningTriggers(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(context.Background(), env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Patterns(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(context.Background(), env, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11QuerySize(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(context.Background(), env, []int{2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12TrainingAmount(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(context.Background(), env, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13Mining* times one full mining run per algorithm over the
// paper's size classes (the content of Figure 13's bar charts).
func benchmarkMiningAlgo(b *testing.B, algo Algorithm, behavior string) {
	env := benchEnv(b)
	pos := env.Data.ByName(behavior)
	if pos == nil {
		b.Fatalf("behavior %s missing", behavior)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Parallelism pinned to 1: Figure 13 compares algorithms on the
		// paper's single-threaded search; BenchmarkMineParallel sweeps
		// worker counts explicitly.
		res, err := Mine(pos, env.Data.Background, MineOptions{
			Algorithm: algo, MaxEdges: benchScale().MaxPatternEdges, Parallelism: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.TieCount == 0 {
			b.Fatal("no patterns")
		}
	}
}

func BenchmarkFigure13MiningSmallTGMiner(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoTGMiner, "bzip2-decompress")
}
func BenchmarkFigure13MiningSmallPruneGI(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoPruneGI, "bzip2-decompress")
}
func BenchmarkFigure13MiningSmallSubPrune(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoSubPrune, "bzip2-decompress")
}
func BenchmarkFigure13MiningSmallLinearScan(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoLinearScan, "bzip2-decompress")
}
func BenchmarkFigure13MiningSmallPruneVF2(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoPruneVF2, "bzip2-decompress")
}
func BenchmarkFigure13MiningSmallSupPrune(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoSupPrune, "bzip2-decompress")
}

func BenchmarkFigure13MiningMediumTGMiner(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoTGMiner, "ssh-login")
}
func BenchmarkFigure13MiningMediumPruneVF2(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoPruneVF2, "ssh-login")
}
func BenchmarkFigure13MiningLargeTGMiner(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoTGMiner, "sshd-login")
}
func BenchmarkFigure13MiningLargePruneVF2(b *testing.B) {
	benchmarkMiningAlgo(b, AlgoPruneVF2, "sshd-login")
}

// BenchmarkMineParallel sweeps Options.Parallelism over the bench-scale
// workload. Results are identical at every worker count (asserted by
// internal/miner's equivalence tests); the sweep measures wall clock only.
// On a single-core host the worker pool adds scheduling overhead but no
// speedup — record BENCH trajectories on multi-core hardware.
func BenchmarkMineParallel(b *testing.B) {
	env := benchEnv(b)
	pos := env.Data.ByName("sshd-login")
	if pos == nil {
		b.Fatal("behavior sshd-login missing")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Mine(pos, env.Data.Background, MineOptions{
					MaxEdges: benchScale().MaxPatternEdges, Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.TieCount == 0 {
					b.Fatal("no patterns")
				}
			}
		})
	}
}

func BenchmarkFigure14MaxPatternSize(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14(context.Background(), env, []int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15TrainingScaling(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure15(context.Background(), env, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure16Synthetic(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure16(context.Background(), env, []int{2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks and ablations --------------------------------------

// randomishPatternPair builds a (sub, super) pattern pair for subgraph-test
// benchmarks.
func patternPair(edges int) (*tgraph.Pattern, *tgraph.Pattern) {
	sub := tgraph.SingleEdgePattern(0, 1, false)
	for sub.NumEdges() < edges {
		sub = sub.GrowForward(tgraph.NodeID(sub.NumNodes()-1), tgraph.Label(sub.NumNodes()%3))
	}
	super := sub
	for i := 0; i < edges; i++ {
		super = super.GrowForward(tgraph.NodeID(i%super.NumNodes()), tgraph.Label(i%3))
	}
	return sub, super
}

// BenchmarkSubgraphTestSeqcode vs VF2 is the ablation behind Section 4.3:
// sequence-encoded tests against the modified-VF2 baseline.
func BenchmarkSubgraphTestSeqcode(b *testing.B) {
	sub, super := patternPair(10)
	var tester seqcode.Tester
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tester.Test(sub, super); !ok {
			b.Fatal("embed failed")
		}
	}
}

func BenchmarkSubgraphTestVF2(b *testing.B) {
	sub, super := patternPair(10)
	var tester vf2.Tester
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tester.Test(sub, super); !ok {
			b.Fatal("embed failed")
		}
	}
}

// adversarialMissPair builds a test that must FAIL, on a label-ambiguous
// host: the sub pattern needs a final edge label the host lacks, which the
// sequence encoding rejects via its O(n) label-sequence pre-test while
// plain state-space search backtracks over combinatorially many partial
// embeddings first. Mining workloads are dominated by such misses.
func adversarialMissPair(k, m int) (*tgraph.Pattern, *tgraph.Pattern) {
	// sub: k parallel A->B edges between distinct same-label nodes, then
	// one A->C edge. Labels: A=0, B=1, C=2.
	sub := tgraph.SingleEdgePattern(0, 1, false)
	for sub.NumEdges() < k {
		sub = sub.GrowBackward(0, 1) // new A -> the B node
	}
	sub = sub.GrowForward(0, 2) // A -> C (label 2 absent from host)
	// host: m A->B edges among distinct same-label nodes; no C at all.
	super := tgraph.SingleEdgePattern(0, 1, false)
	for super.NumEdges() < m {
		super = super.GrowBackward(0, 1)
	}
	return sub, super
}

func BenchmarkSubgraphTestMissSeqcode(b *testing.B) {
	sub, super := adversarialMissPair(8, 18)
	var tester seqcode.Tester
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tester.Test(sub, super); ok {
			b.Fatal("impossible embed succeeded")
		}
	}
}

func BenchmarkSubgraphTestMissVF2(b *testing.B) {
	sub, super := adversarialMissPair(8, 18)
	var tester vf2.Tester
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tester.Test(sub, super); ok {
			b.Fatal("impossible embed succeeded")
		}
	}
}

// BenchmarkResidualEquivalence ablates Lemma 6: integer comparison vs
// linear scan, measured end-to-end through mining configs.
func BenchmarkResidualEquivalenceInteger(b *testing.B) {
	env := benchEnv(b)
	pos := env.Data.ByName("ftp-download")
	opts := miner.TGMinerOptions()
	opts.MaxEdges = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := miner.Mine(pos, env.Data.Background, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResidualEquivalenceLinearScan(b *testing.B) {
	env := benchEnv(b)
	pos := env.Data.ByName("ftp-download")
	opts := miner.LinearScanOptions()
	opts.MaxEdges = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := miner.Mine(pos, env.Data.Background, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporalSearch measures behavior-query evaluation over the test
// timeline (the paper's online search step, delegated to [38]).
func BenchmarkTemporalSearch(b *testing.B) {
	env := benchEnv(b)
	tl, _ := env.Timeline()
	pos := env.Data.ByName("wget-download")
	bq, err := DiscoverQueries(pos, env.Data.Background, QueryOptions{
		QuerySize: 4, TopK: 1, Interest: env.Interest(),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(tl.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.FindTemporal(bq.Queries[0], SearchOptions{Window: tl.Window})
		if len(res.Matches) == 0 {
			b.Fatal("no matches")
		}
	}
}

// buildStreamHost builds a host whose A->B, B->C chain repeats `pairs`
// times, so the 2-edge query A->B,B->C has ~pairs^2/2 distinct matches —
// the knob BenchmarkStreamTemporal turns to show stream memory does not
// scale with match count.
func buildStreamHost(b *testing.B, pairs int) (*Engine, *Pattern) {
	b.Helper()
	dict := NewDict()
	gb := NewGraphBuilder(dict)
	t := int64(0)
	for i := 0; i < pairs; i++ {
		if err := gb.AddEvent("a", "b", t); err != nil {
			b.Fatal(err)
		}
		t++
		if err := gb.AddEvent("b", "c", t); err != nil {
			b.Fatal(err)
		}
		t++
	}
	g, err := gb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	pb := NewGraphBuilder(dict)
	_ = pb.AddEvent("a", "b", 0)
	_ = pb.AddEvent("b", "c", 1)
	pg, err := pb.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(g), PatternFromGraph(pg)
}

// BenchmarkStreamTemporal measures Engine.Stream across match counts
// spanning two orders of magnitude. The acceptance property of the v2
// streaming API is that allocs/op stay flat as matches grow (the stream
// holds O(matches per root) scratch, no match buffer); contrast with
// BenchmarkFindTemporalCollect, whose result slice necessarily scales.
func BenchmarkStreamTemporal(b *testing.B) {
	for _, pairs := range []int{8, 32, 128} {
		eng, p := buildStreamHost(b, pairs)
		matches := len(eng.FindTemporal(p, SearchOptions{}).Matches)
		b.Run(fmt.Sprintf("matches=%d", matches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, err := range eng.Stream(context.Background(), p, SearchOptions{}) {
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != matches {
					b.Fatalf("streamed %d matches, want %d", n, matches)
				}
			}
		})
	}
}

// BenchmarkLiveAppendUnderStreams measures LiveEngine append throughput
// while 0, 1, or 4 goroutines continuously range StreamTemporal against the
// same engine. This is the acceptance benchmark for lock-free live reads: a
// lock-based engine serializes appends behind every in-flight stream, so
// throughput collapses as consumers are added; with immutable generation
// snapshots appends are independent of the number (and speed) of readers.
func BenchmarkLiveAppendUnderStreams(b *testing.B) {
	for _, streams := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			dict := NewDict()
			live := NewLiveEngine(dict, LiveOptions{})
			t := int64(0)
			emit := func() {
				t++
				if err := live.Append("a", "b", t); err != nil {
					b.Fatal(err)
				}
			}
			// Pre-fill so streams have matches to chew on.
			for i := 0; i < 4096; i++ {
				emit()
			}
			pb := NewGraphBuilder(dict)
			_ = pb.AddEvent("a", "b", 0)
			pg, err := pb.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			query := PatternFromGraph(pg)
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			for s := 0; s < streams; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ctx.Err() == nil {
						for _, err := range live.Stream(ctx, query, SearchOptions{Limit: 256}) {
							if err != nil {
								break
							}
						}
					}
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				emit()
				if i%1024 == 1023 {
					live.EvictBefore(t - 8192) // bounded sliding window
				}
			}
			b.StopTimer()
			cancel()
			wg.Wait()
		})
	}
}

// BenchmarkFindTemporalCollect is the batch-collection counterpart of
// BenchmarkStreamTemporal: same hosts, materialized results.
func BenchmarkFindTemporalCollect(b *testing.B) {
	for _, pairs := range []int{8, 32, 128} {
		eng, p := buildStreamHost(b, pairs)
		matches := len(eng.FindTemporal(p, SearchOptions{}).Matches)
		b.Run(fmt.Sprintf("matches=%d", matches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := eng.FindTemporal(p, SearchOptions{})
				if len(res.Matches) != matches {
					b.Fatalf("%d matches, want %d", len(res.Matches), matches)
				}
			}
		})
	}
}

// BenchmarkGrowthEnumeration measures raw pattern-space exploration without
// any pruning (the Theorem 1 machinery).
func BenchmarkGrowthEnumeration(b *testing.B) {
	env := benchEnv(b)
	pos := env.Data.ByName("gzip-decompress")
	opts := miner.ExhaustiveOptions()
	opts.MaxEdges = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := miner.Mine(pos, env.Data.Background, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental mining ---------------------------------------------------

// incCorpus builds the continuous-mining benchmark corpus — 50 behavior and
// 50 background graphs, so one graph is 1% of the set — plus an extended
// variant of every graph (two appended events between existing nodes).
// Dirty rounds toggle a graph between its base and extended variant, which
// changes its content stamp every round while keeping the corpus size
// constant across benchmark iterations.
type incCorpus struct {
	pos, neg       []*Graph
	extPos, extNeg []*Graph
}

var (
	incCorpusOnce sync.Once
	incCorpusVal  incCorpus
)

func incBenchCorpus(b *testing.B) incCorpus {
	b.Helper()
	incCorpusOnce.Do(func() {
		ds := GenerateSynthetic(SyntheticConfig{
			Scale: 0.25, GraphsPerBehavior: 50, BackgroundGraphs: 50, Seed: 7,
			Behaviors: []string{"sshd-login"},
		})
		extend := func(gs []*Graph) []*Graph {
			out := make([]*Graph, len(gs))
			for i, g := range gs {
				last := g.EdgeAt(g.NumEdges() - 1).Time
				n := tgraph.NodeID(g.NumNodes() - 1)
				ext, err := g.ExtendSorted(nil, []tgraph.Edge{
					{Src: 0, Dst: n, Time: last + 1},
					{Src: n, Dst: 0, Time: last + 2},
				})
				if err != nil {
					panic(err)
				}
				out[i] = ext
			}
			return out
		}
		incCorpusVal = incCorpus{
			pos: ds.Behaviors[0].Graphs, neg: ds.Background,
			extPos: extend(ds.Behaviors[0].Graphs), extNeg: extend(ds.Background),
		}
	})
	return incCorpusVal
}

// BenchmarkMineIncremental compares batch re-mining (cold) against a
// MineSession (warm) over an evolving 100-graph corpus at several dirty
// fractions. warm-1pct-bg is the acceptance case — one background graph
// (1% of the corpus) ingests new events between re-mines; warm-1pct-pos is
// the honest worst case, where the updated graph is a behavior graph whose
// content supports the discriminative seeds, so those seeds re-explore.
func BenchmarkMineIncremental(b *testing.B) {
	c := incBenchCorpus(b)
	opts := MineOptions{MaxEdges: 4, Parallelism: 1}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Mine(c.pos, c.neg, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.TieCount == 0 {
				b.Fatal("no patterns")
			}
		}
	})

	warm := func(dirtyPos, dirtyNeg int) func(b *testing.B) {
		return func(b *testing.B) {
			ses, err := NewMineSession(opts)
			if err != nil {
				b.Fatal(err)
			}
			pos := append([]*Graph(nil), c.pos...)
			neg := append([]*Graph(nil), c.neg...)
			if _, err := ses.Mine(pos, neg); err != nil {
				b.Fatal(err) // prime the cache outside the timed loop
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < dirtyPos; j++ {
					if i%2 == 0 {
						pos[j] = c.extPos[j]
					} else {
						pos[j] = c.pos[j]
					}
				}
				for j := 0; j < dirtyNeg; j++ {
					if i%2 == 0 {
						neg[j] = c.extNeg[j]
					} else {
						neg[j] = c.neg[j]
					}
				}
				res, err := ses.Mine(pos, neg)
				if err != nil {
					b.Fatal(err)
				}
				if res.TieCount == 0 {
					b.Fatal("no patterns")
				}
			}
		}
	}
	b.Run("warm-clean", warm(0, 0))
	b.Run("warm-1pct-bg", warm(0, 1))
	b.Run("warm-1pct-pos", warm(1, 0))
	b.Run("warm-10pct", warm(5, 5))
	b.Run("warm-50pct", warm(25, 25))
}

// BenchmarkSyntheticGeneration measures corpus generation throughput.
func BenchmarkSyntheticGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds := GenerateSynthetic(SyntheticConfig{
			Scale: 0.25, GraphsPerBehavior: 4, BackgroundGraphs: 8, Seed: int64(i),
			Behaviors: []string{"sshd-login"},
		})
		if len(ds.Behaviors) != 1 {
			b.Fatal("bad dataset")
		}
	}
}
