package tgminer

import (
	"bytes"
	"testing"
)

// buildBehaviorGraphs creates tiny positive/negative sets through the
// public API.
func buildBehaviorGraphs(t *testing.T, dict *Dict) (pos, neg []*Graph) {
	t.Helper()
	for i := 0; i < 4; i++ {
		gb := NewGraphBuilder(dict)
		if err := gb.AddEvent("proc:shell", "proc:ssh", 1); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent("proc:ssh", "file:key", 2); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent("proc:ssh", "sock:22", 3); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent("proc:ssh", "file:noise", int64(4+i)); err != nil {
			t.Fatal(err)
		}
		g, err := gb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		pos = append(pos, g)
	}
	for i := 0; i < 4; i++ {
		gb := NewGraphBuilder(dict)
		// Same vocabulary, reversed order: key read happens after socket.
		if err := gb.AddEvent("proc:shell", "proc:ssh", 1); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent("proc:ssh", "sock:22", 2); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent("proc:ssh", "file:key", 3); err != nil {
			t.Fatal(err)
		}
		g, err := gb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		neg = append(neg, g)
	}
	return pos, neg
}

func TestPublicMine(t *testing.T) {
	dict := NewDict()
	pos, neg := buildBehaviorGraphs(t, dict)
	res, err := Mine(pos, neg, MineOptions{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 || res.TieCount == 0 {
		t.Fatal("no patterns found")
	}
	for _, mp := range res.Best {
		if mp.PosFreq != 1 || mp.NegFreq != 0 {
			t.Errorf("best pattern frequencies %v/%v, want 1/0", mp.PosFreq, mp.NegFreq)
		}
	}
	if res.Stats.PatternsExplored == 0 {
		t.Errorf("stats not collected")
	}
}

func TestPublicMineAlgorithms(t *testing.T) {
	dict := NewDict()
	pos, neg := buildBehaviorGraphs(t, dict)
	var ref float64
	for i, algo := range []Algorithm{AlgoTGMiner, AlgoSubPrune, AlgoSupPrune, AlgoPruneGI,
		AlgoPruneVF2, AlgoLinearScan, AlgoExhaustive} {
		res, err := Mine(pos, neg, MineOptions{Algorithm: algo, MaxEdges: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if i == 0 {
			ref = res.BestScore
		} else if res.BestScore != ref {
			t.Errorf("%s best score %v != %v", algo, res.BestScore, ref)
		}
	}
	if _, err := Mine(pos, neg, MineOptions{Algorithm: "nope"}); err == nil {
		t.Errorf("unknown algorithm accepted")
	}
	if _, err := Mine(pos, neg, MineOptions{ScoreFunc: "nope"}); err == nil {
		t.Errorf("unknown score accepted")
	}
}

func TestPublicMineTopK(t *testing.T) {
	dict := NewDict()
	pos, neg := buildBehaviorGraphs(t, dict)
	res, err := MineTopK(pos, neg, 5, MineOptions{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 || len(res.Patterns) > 5 {
		t.Fatalf("patterns = %d, want 1..5", len(res.Patterns))
	}
	// Best of top-K agrees with Mine.
	ref, err := Mine(pos, neg, MineOptions{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns[0].Score != ref.BestScore {
		t.Errorf("top-1 score %v != best score %v", res.Patterns[0].Score, ref.BestScore)
	}
	if _, err := MineTopK(nil, neg, 5, MineOptions{}); err == nil {
		t.Errorf("empty positive set accepted")
	}
}

func TestPublicDiscoverAndSearch(t *testing.T) {
	dict := NewDict()
	pos, neg := buildBehaviorGraphs(t, dict)
	in := NewInterest(append(append([]*Graph{}, pos...), neg...), dict, nil)
	bq, err := DiscoverQueries(pos, neg, QueryOptions{QuerySize: 3, TopK: 2, Interest: in})
	if err != nil {
		t.Fatal(err)
	}
	if len(bq.Queries) == 0 {
		t.Fatal("no queries")
	}
	// Search the first positive graph for the first query: must match.
	eng := NewEngine(pos[0])
	res := eng.FindTemporal(bq.Queries[0], SearchOptions{})
	if len(res.Matches) == 0 {
		t.Errorf("query does not match its own training graph")
	}
	// And must not match the reversed-order negatives.
	engN := NewEngine(neg[0])
	resN := engN.FindTemporal(bq.Queries[0], SearchOptions{})
	if len(resN.Matches) != 0 {
		t.Errorf("query matches negative graph: %v", resN.Matches)
	}
}

func TestPublicBaselineQueries(t *testing.T) {
	dict := NewDict()
	pos, neg := buildBehaviorGraphs(t, dict)
	nq, err := DiscoverNonTemporalQueries(pos, neg, QueryOptions{QuerySize: 2, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nq) == 0 {
		t.Fatal("no ntemp queries")
	}
	lq, err := DiscoverLabelSetQuery(pos, neg, QueryOptions{QuerySize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(lq.Labels) != 3 {
		t.Errorf("label query size = %d", len(lq.Labels))
	}
	eng := NewEngine(pos[0])
	if r := eng.FindNonTemporal(nq[0], SearchOptions{}); len(r.Matches) == 0 {
		t.Errorf("ntemp query missed its training graph")
	}
}

func TestPublicCorpusRoundTrip(t *testing.T) {
	dict := NewDict()
	pos, _ := buildBehaviorGraphs(t, dict)
	c := &Corpus{Dict: dict}
	for i, g := range pos {
		c.Add("g"+string(rune('a'+i)), g)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Graphs) != len(pos) {
		t.Errorf("round trip lost graphs: %d vs %d", len(back.Graphs), len(pos))
	}
}

func TestPublicSynthetic(t *testing.T) {
	ds := GenerateSynthetic(SyntheticConfig{
		Scale: 0.2, GraphsPerBehavior: 2, BackgroundGraphs: 2, Seed: 5,
		Behaviors: []string{"bzip2-decompress"},
	})
	if len(ds.Behaviors) != 1 || len(ds.Background) != 2 {
		t.Fatalf("synthetic generation wrong shape")
	}
	tl := GenerateTestTimeline(TimelineConfig{
		Instances: 4, Scale: 0.2, Seed: 6, Behaviors: []string{"bzip2-decompress"},
	}, ds.Dict)
	truth := TruthIntervalsOf(tl, "bzip2-decompress")
	if len(truth) != 4 {
		t.Errorf("truth intervals = %d, want 4", len(truth))
	}
	if len(Behaviors()) != 12 {
		t.Errorf("Behaviors() = %d, want 12", len(Behaviors()))
	}
}

func TestPublicEvaluate(t *testing.T) {
	m := Evaluate([]Match{{Start: 1, End: 2}}, []Interval{{Start: 0, End: 5}})
	if m.Precision() != 1 || m.Recall() != 1 {
		t.Errorf("metrics: %v/%v", m.Precision(), m.Recall())
	}
	u := UnionMatches(
		SearchResult{Matches: []Match{{Start: 1, End: 2}}},
		SearchResult{Matches: []Match{{Start: 1, End: 2}, {Start: 3, End: 4}}},
	)
	if len(u.Matches) != 2 {
		t.Errorf("union = %v", u.Matches)
	}
}

func TestGraphBuilderLabelsAndSequentialize(t *testing.T) {
	gb := NewGraphBuilder(nil)
	gb.NodeWithLabel("pid-101", "proc:worker")
	gb.NodeWithLabel("pid-102", "proc:worker")
	if err := gb.AddEvent("pid-101", "pid-102", 7); err != nil {
		t.Fatal(err)
	}
	// Concurrent event: same timestamp; Finalize must fail, Sequentialize
	// must succeed.
	if err := gb.AddEvent("pid-102", "pid-101", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := gb.Finalize(); err == nil {
		t.Errorf("Finalize accepted duplicate timestamps")
	}
	gb2 := NewGraphBuilder(nil)
	gb2.NodeWithLabel("pid-101", "proc:worker")
	gb2.NodeWithLabel("pid-102", "proc:worker")
	_ = gb2.AddEvent("pid-101", "pid-102", 7)
	_ = gb2.AddEvent("pid-102", "pid-101", 7)
	g, err := gb2.Sequentialize()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("sequentialized edges = %d", g.NumEdges())
	}
	if FormatPattern(nil, nil) == "" {
		t.Errorf("FormatPattern(nil) empty")
	}
}
