// Monitor: the continuous-monitoring scenario of the v2 API — mine a
// behavior query with a deadline, then watch a live, ever-growing event
// stream for it with a LiveEngine and streamed matches.
//
// The deployment setting of the paper (Section 6) is exactly this shape:
// syscall events never stop arriving, so the engine must ingest
// incrementally, keep a sliding window of recent history, and report
// matches as they are found rather than after a batch completes.
//
// Run:
//
//	go run ./examples/monitor
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"tgminer"
)

func main() {
	dict := tgminer.NewDict()

	// Train exactly as in examples/quickstart: key read BEFORE socket open
	// is the behavior; the reverse order is background.
	var pos, neg []*tgminer.Graph
	for i := 0; i < 5; i++ {
		gb := tgminer.NewGraphBuilder(dict)
		check(gb.AddEvent("proc:shell", "proc:ssh", 1))
		check(gb.AddEvent("proc:ssh", "file:~/.ssh/id_rsa", 2))
		check(gb.AddEvent("proc:ssh", "sock:tcp:22", 3))
		g, err := gb.Finalize()
		check(err)
		pos = append(pos, g)

		nb := tgminer.NewGraphBuilder(dict)
		check(nb.AddEvent("proc:shell", "proc:ssh", 1))
		check(nb.AddEvent("proc:ssh", "sock:tcp:22", 2))
		check(nb.AddEvent("proc:ssh", "file:~/.ssh/id_rsa", 3))
		g, err = nb.Finalize()
		check(err)
		neg = append(neg, g)
	}

	// Discovery under a deadline: a production pipeline never hands the
	// miner an unbounded time budget. On timeout the partial queries mined
	// so far come back together with ctx.Err().
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bq, err := tgminer.DiscoverQueriesContext(ctx, pos, neg, tgminer.QueryOptions{QuerySize: 3, TopK: 1})
	if err != nil {
		log.Printf("discovery interrupted (%v); using partial queries", err)
	}
	if bq == nil || len(bq.Queries) == 0 {
		log.Fatal("no behavior query discovered")
	}
	query := bq.Queries[0]
	fmt.Printf("watching for:\n  %s\n\n", tgminer.FormatPattern(query, dict))

	// The live engine ingests the event stream incrementally. CompactEvery
	// folds the append-only tail into CSR indexes every N events; the
	// engine answers identically at any setting.
	live := tgminer.NewLiveEngine(dict, tgminer.LiveOptions{CompactEvery: 64})

	// Simulate an event stream: background noise with the target behavior
	// woven in twice.
	t := int64(0)
	emit := func(src, dst string) {
		t++
		check(live.Append(src, dst, t))
	}
	emit("proc:cron", "proc:sh")
	emit("proc:sh", "file:/var/log/syslog")
	emit("proc:shell", "proc:ssh") // behavior instance 1 begins
	emit("proc:ssh", "file:~/.ssh/id_rsa")
	emit("proc:ssh", "sock:tcp:22")
	emit("proc:sh", "file:/tmp/a")
	emit("proc:shell", "proc:ssh") // behavior instance 2 begins (same entities, later times)
	emit("proc:ssh", "file:~/.ssh/id_rsa")
	emit("proc:ssh", "sock:tcp:22")

	// Stream matches as the search finds them: memory stays flat no matter
	// how many matches the window holds. The monitoring phase gets its own
	// context — the mining deadline above may already have expired, and an
	// expired context would end the stream before the first match.
	//
	// Live reads are lock-free generation snapshots, so mutating the engine
	// from inside the consumer loop is safe: here the stream alerts and
	// ages out everything before each alert in one pass (the eviction
	// becomes visible to the next query; this running stream keeps seeing
	// the consistent edge set it started with).
	monCtx := context.Background()
	fmt.Println("live matches (streamed, evict-as-you-alert):")
	for m, err := range live.Stream(monCtx, query, tgminer.SearchOptions{Window: 6}) {
		if err != nil {
			log.Printf("stream ended early: %v", err)
			break
		}
		fmt.Printf("  behavior instance in ticks [%d, %d]\n", m.Start, m.End)
		live.EvictBefore(m.Start)
	}

	// Slide the retention window forward: everything before tick 6 ages
	// out, so only the second instance can still match.
	live.EvictBefore(6)
	res := live.FindTemporal(query, tgminer.SearchOptions{Window: 6})
	fmt.Printf("\nafter EvictBefore(6): %d match(es) remain\n", len(res.Matches))
	for _, m := range res.Matches {
		fmt.Printf("  behavior instance in ticks [%d, %d]\n", m.Start, m.End)
	}

	// The baseline query families run on the live engine too (PR 3): an
	// order-free variant of the same shape, and the label multiset of its
	// entities — both answer exactly as a static engine over the same
	// window would.
	np := tgminer.NonTemporalPatternFromGraph(mustShape(dict))
	nres := live.FindNonTemporal(np, tgminer.SearchOptions{Window: 6})
	fmt.Printf("\nnon-temporal (order-free) query: %d match(es)\n", len(nres.Matches))
	lq := &tgminer.LabelSetQuery{Labels: []tgminer.Label{
		dict.Intern("proc:ssh"), dict.Intern("file:~/.ssh/id_rsa"), dict.Intern("sock:tcp:22"),
	}}
	lres := live.FindLabelSet(lq, tgminer.SearchOptions{Window: 6})
	fmt.Printf("label-set (NodeSet) query: %d match(es)\n", len(lres.Matches))

	// Stats shows retention and compaction behavior for operators: how
	// much history sits in the CSR base vs the append-only tail, how far
	// the eviction floor has advanced, and whether compactions have been
	// incremental merges or reclaiming rebuilds — aggregated across the
	// engine's ingest shards (LiveOptions.Shards, default GOMAXPROCS:
	// events partition by source entity so concurrent producers append in
	// parallel; queries answer identically at any shard count). The new
	// memory accounting shows what the engine retains and whether a slow
	// reader is pinning old storage (OldestReaderLag counts edges appended
	// since the oldest running query pinned its snapshot). Stats is an
	// O(1) read — the retained-bytes figure is a counter the writer
	// maintains incrementally, not a walk over the engine — so polling it
	// on every batch (as tgminerd's admission control does) costs nothing.
	st := live.Stats()
	fmt.Printf("\nengine stats: %d nodes, %d live edges (base %d + tail %d - evicted %d), %d compaction(s) (%d merged)\n",
		st.Nodes, st.LiveEdges, st.BaseEdges, st.TailLen, st.Floor, st.Compactions, st.Merges)
	fmt.Printf("  %d shard(s), ~%d KiB retained, %d active reader(s), oldest reader %d edge(s) behind\n",
		live.Shards(), st.RetainedBytes/1024, st.ActiveReaders, st.OldestReaderLag)
	for i, ss := range live.ShardStats() {
		fmt.Printf("  shard %d: %d live edge(s), %d compaction(s)\n", i, ss.LiveEdges, ss.Compactions)
	}

	// LiveStats marshals to the same stable JSON representation tgminerd's
	// GET /v1/statsz serves (field names pinned by
	// TestLiveStatsJSONRoundTrip), so a scraper built against the daemon
	// reads this example's output — and vice versa — unchanged.
	j, err := json.Marshal(st)
	check(err)
	fmt.Printf("\nas served by tgminerd /v1/statsz: %s\n", j)
}

// mustShape builds the behavior shape used for the non-temporal query.
func mustShape(dict *tgminer.Dict) *tgminer.Graph {
	sb := tgminer.NewGraphBuilder(dict)
	check(sb.AddEvent("proc:shell", "proc:ssh", 1))
	check(sb.AddEvent("proc:ssh", "file:~/.ssh/id_rsa", 2))
	check(sb.AddEvent("proc:ssh", "sock:tcp:22", 3))
	g, err := sb.Finalize()
	check(err)
	return g
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
