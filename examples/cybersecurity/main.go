// Cybersecurity: the paper's Example 1 end to end. An analyst wants to
// detect information-stealing activity — someone logging into a host over
// ssh and exfiltrating files — but cannot write the query by hand because
// syscall logs only contain low-level entities.
//
// This example runs the full Figure 2 pipeline on synthetic syscall
// activity: collect behavior instances in a "closed environment"
// (GenerateSynthetic), mine discriminative temporal patterns for sshd-login
// and scp-download, then sweep a week-long monitoring timeline for matches
// and score them against ground truth.
//
// Run:
//
//	go run ./examples/cybersecurity
package main

import (
	"fmt"
	"log"

	"tgminer"
)

func main() {
	behaviors := []string{"sshd-login", "scp-download", "ssh-login"}

	// Step 1: closed-environment collection (paper Figure 2, left).
	fmt.Println("collecting closed-environment syscall logs...")
	ds := tgminer.GenerateSynthetic(tgminer.SyntheticConfig{
		Scale:             0.3,
		GraphsPerBehavior: 12,
		BackgroundGraphs:  30,
		Seed:              42,
		Behaviors:         behaviors,
	})

	// Step 2: a week of monitoring data with ground truth for scoring.
	fmt.Println("collecting monitoring timeline...")
	tl := tgminer.GenerateTestTimeline(tgminer.TimelineConfig{
		Instances: 45,
		Scale:     0.3,
		Seed:      43,
		Behaviors: behaviors,
	}, ds.Dict)
	fmt.Printf("timeline: %d nodes, %d edges, %d embedded behavior instances\n\n",
		tl.Graph.NumNodes(), tl.Graph.NumEdges(), len(tl.Truth))

	// Step 3: mine behavior queries per target behavior and hunt.
	var all []*tgminer.Graph
	for _, b := range ds.Behaviors {
		all = append(all, b.Graphs...)
	}
	all = append(all, ds.Background...)
	interest := tgminer.NewInterest(all, ds.Dict, nil)
	eng := tgminer.NewEngine(tl.Graph)

	for _, target := range []string{"sshd-login", "scp-download"} {
		var pos []*tgminer.Graph
		for _, b := range ds.Behaviors {
			if b.Spec.Name == target {
				pos = b.Graphs
			}
		}
		bq, err := tgminer.DiscoverQueries(pos, ds.Background, tgminer.QueryOptions{
			QuerySize: 5, TopK: 5, Interest: interest,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", target)
		fmt.Printf("mined %d queries (F* = %.2f); top query:\n  %s\n",
			len(bq.Queries), bq.BestScore, tgminer.FormatPattern(bq.Queries[0], ds.Dict))

		results := make([]tgminer.SearchResult, len(bq.Queries))
		for i, q := range bq.Queries {
			results[i] = eng.FindTemporal(q, tgminer.SearchOptions{Window: tl.Window})
		}
		union := tgminer.UnionMatches(results...)
		truth := tgminer.TruthIntervalsOf(tl, target)
		m := tgminer.Evaluate(union.Matches, truth)
		fmt.Printf("identified %d instances: precision %.1f%%, recall %.1f%% (%d true occurrences)\n\n",
			m.Identified, 100*m.Precision(), 100*m.Recall(), m.Instances)
	}

	fmt.Println("an analyst would now alert on, e.g., sshd-login matches outside business hours")
}
