// Urban computing: the paper's Example 3. City data sources produce event
// nodes (traffic jams, sickness reports, production drops) linked by
// spatio-temporal proximity edges. Domain experts ask causal questions —
// "are these anomalies caused by river pollution?" — whose signatures are
// temporal dependency patterns between events.
//
// Positive episodes follow a river-pollution cascade: a chemical discharge
// upstream precedes water-quality alerts, which precede sickness reports
// and crop-yield drops downstream. Negative episodes contain the same
// event types co-occurring without the cascade order (e.g., seasonal flu
// plus unrelated traffic).
//
// Run:
//
//	go run ./examples/urban
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tgminer"
)

func pollutionEpisode(dict *tgminer.Dict, rng *rand.Rand) *tgminer.Graph {
	gb := tgminer.NewGraphBuilder(dict)
	t := int64(0)
	next := func() int64 { t += int64(1 + rng.Intn(2)); return t }
	ev := func(src, dst string) {
		if err := gb.AddEvent(src, dst, next()); err != nil {
			log.Fatal(err)
		}
	}
	district := rng.Intn(3)
	// The cascade, in causal order down the river.
	ev("event:chem-discharge:upstream", "event:water-quality-alert:mid")
	ev("event:water-quality-alert:mid", fmt.Sprintf("event:sickness-spike:district%d", district))
	ev("event:water-quality-alert:mid", "event:fishkill:mid")
	ev(fmt.Sprintf("event:sickness-spike:district%d", district), "event:hospital-load:city")
	ev("event:fishkill:mid", "event:crop-yield-drop:downstream")
	addNoise(gb, rng, &t)
	g, err := gb.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func fluEpisode(dict *tgminer.Dict, rng *rand.Rand) *tgminer.Graph {
	gb := tgminer.NewGraphBuilder(dict)
	t := int64(0)
	next := func() int64 { t += int64(1 + rng.Intn(2)); return t }
	ev := func(src, dst string) {
		if err := gb.AddEvent(src, dst, next()); err != nil {
			log.Fatal(err)
		}
	}
	district := rng.Intn(3)
	// Same vocabulary, no pollution cascade: sickness first, water alerts
	// later and independent.
	ev(fmt.Sprintf("event:sickness-spike:district%d", district), "event:hospital-load:city")
	ev("event:hospital-load:city", fmt.Sprintf("event:sickness-spike:district%d", (district+1)%3))
	ev("event:crop-yield-drop:downstream", "event:market-price-rise:city")
	ev("event:water-quality-alert:mid", "event:fishkill:mid")
	addNoise(gb, rng, &t)
	g, err := gb.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func addNoise(gb *tgminer.GraphBuilder, rng *rand.Rand, t *int64) {
	for i := 0; i < 2+rng.Intn(4); i++ {
		*t += int64(1 + rng.Intn(2))
		if err := gb.AddEvent(
			fmt.Sprintf("event:traffic-jam:road%d", rng.Intn(4)),
			fmt.Sprintf("event:transit-delay:line%d", rng.Intn(3)), *t); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	dict := tgminer.NewDict()
	rng := rand.New(rand.NewSource(11))

	var pollution, flu []*tgminer.Graph
	for i := 0; i < 12; i++ {
		pollution = append(pollution, pollutionEpisode(dict, rng))
		flu = append(flu, fluEpisode(dict, rng))
	}

	interest := tgminer.NewInterest(append(append([]*tgminer.Graph{}, pollution...), flu...), dict, nil)
	bq, err := tgminer.DiscoverQueries(pollution, flu, tgminer.QueryOptions{
		QuerySize: 3, TopK: 3, Interest: interest,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discriminative temporal signature of RIVER POLLUTION episodes:")
	for i, q := range bq.Queries {
		fmt.Printf("  #%d %s\n", i+1, tgminer.FormatPattern(q, dict))
	}

	// Validate on held-out episodes.
	query := bq.Queries[0]
	tp, fp := 0, 0
	const n = 15
	for i := 0; i < n; i++ {
		if eng := tgminer.NewEngine(pollutionEpisode(dict, rng)); len(eng.FindTemporal(query, tgminer.SearchOptions{}).Matches) > 0 {
			tp++
		}
		if eng := tgminer.NewEngine(fluEpisode(dict, rng)); len(eng.FindTemporal(query, tgminer.SearchOptions{}).Matches) > 0 {
			fp++
		}
	}
	fmt.Printf("\nheld-out validation: %d/%d pollution episodes matched, %d/%d flu episodes matched\n",
		tp, n, fp, n)
	fmt.Println("(want: high on pollution, zero on flu)")
}
