// Quickstart: mine a discriminative temporal pattern from hand-built
// temporal graphs and use it as a behavior query.
//
// The positive graphs capture a tiny "remote login" behavior: a shell
// spawns an ssh client, which reads a key file and then opens a socket —
// in that order. The negative graphs contain the same entities but the
// socket is opened before the key is read. Only the temporal order
// separates the two, which is exactly what TGMiner mines for.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tgminer"
)

func main() {
	dict := tgminer.NewDict()

	// Positive set: key read happens BEFORE the socket opens.
	var pos []*tgminer.Graph
	for i := 0; i < 5; i++ {
		gb := tgminer.NewGraphBuilder(dict)
		check(gb.AddEvent("proc:shell", "proc:ssh", 1))
		check(gb.AddEvent("proc:ssh", "file:~/.ssh/id_rsa", 2))
		check(gb.AddEvent("proc:ssh", "sock:tcp:22", 3))
		check(gb.AddEvent("proc:ssh", fmt.Sprintf("file:/tmp/scratch-%d", i), 4)) // noise
		g, err := gb.Finalize()
		check(err)
		pos = append(pos, g)
	}

	// Negative set: same entities, socket first (a different behavior).
	var neg []*tgminer.Graph
	for i := 0; i < 5; i++ {
		gb := tgminer.NewGraphBuilder(dict)
		check(gb.AddEvent("proc:shell", "proc:ssh", 1))
		check(gb.AddEvent("proc:ssh", "sock:tcp:22", 2))
		check(gb.AddEvent("proc:ssh", "file:~/.ssh/id_rsa", 3))
		g, err := gb.Finalize()
		check(err)
		neg = append(neg, g)
	}

	// Mine the most discriminative temporal patterns.
	res, err := tgminer.Mine(pos, neg, tgminer.MineOptions{MaxEdges: 3})
	check(err)
	fmt.Printf("best discriminative score F* = %.3f (%d tied patterns)\n\n", res.BestScore, res.TieCount)

	// Build ranked behavior queries (Appendix M ranking).
	interest := tgminer.NewInterest(append(append([]*tgminer.Graph{}, pos...), neg...), dict, nil)
	bq, err := tgminer.DiscoverQueries(pos, neg, tgminer.QueryOptions{
		QuerySize: 3, TopK: 2, Interest: interest,
	})
	check(err)
	for i, q := range bq.Queries {
		fmt.Printf("behavior query #%d:\n  %s\n\n", i+1, tgminer.FormatPattern(q, dict))
	}

	// Use the first query to search a "monitoring log" (here: one positive
	// graph followed by one negative).
	eng := tgminer.NewEngine(pos[0])
	found := eng.FindTemporal(bq.Queries[0], tgminer.SearchOptions{})
	fmt.Printf("matches in a positive graph: %d (want >0)\n", len(found.Matches))

	engNeg := tgminer.NewEngine(neg[0])
	foundNeg := engNeg.FindTemporal(bq.Queries[0], tgminer.SearchOptions{})
	fmt.Printf("matches in a negative graph: %d (want 0)\n", len(foundNeg.Matches))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
