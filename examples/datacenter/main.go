// Datacenter monitoring: the paper's Example 2. Monitoring tools emit
// performance alerts (nodes) linked by dependency edges with timestamps.
// Operators want high-level diagnoses ("disk failure" vs "abnormal
// workload"), but both produce overlapping alert sets — only the order in
// which alerts trigger each other distinguishes them.
//
// Positive episodes: a failing disk first raises io-latency, which cascades
// into query pileups and CPU pressure. Negative episodes: an abnormal
// workload raises full-table-scan counts first, and io-latency only
// appears downstream. Same alerts, different temporal cascade.
//
// Run:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tgminer"
)

// episode emits one alert-cascade temporal graph.
func episode(dict *tgminer.Dict, rng *rand.Rand, diskFailure bool) *tgminer.Graph {
	gb := tgminer.NewGraphBuilder(dict)
	t := int64(1)
	next := func() int64 { t += int64(1 + rng.Intn(3)); return t }
	ev := func(src, dst string) {
		if err := gb.AddEvent(src, dst, next()); err != nil {
			log.Fatal(err)
		}
	}
	if diskFailure {
		// Disk failure cascade: smart-error -> io-latency -> slow-queries
		// -> cpu-high, connection pileup at the end.
		ev("alert:smart-error:sdb", "alert:io-latency:db1")
		ev("alert:io-latency:db1", "alert:slow-queries:db1")
		ev("alert:slow-queries:db1", "alert:full-table-scan:db1")
		ev("alert:slow-queries:db1", "alert:cpu-high:db1")
		ev("alert:cpu-high:db1", "alert:conn-pool-exhausted:app1")
	} else {
		// Workload anomaly: scans spike first; io-latency is a consequence.
		ev("alert:full-table-scan:db1", "alert:slow-queries:db1")
		ev("alert:slow-queries:db1", "alert:cpu-high:db1")
		ev("alert:cpu-high:db1", "alert:io-latency:db1")
		ev("alert:slow-queries:db1", "alert:conn-pool-exhausted:app1")
	}
	// Ambient noise alerts in both kinds of episodes.
	for i := 0; i < 3+rng.Intn(3); i++ {
		ev(fmt.Sprintf("alert:gc-pause:app%d", rng.Intn(3)),
			fmt.Sprintf("alert:latency-spike:svc%d", rng.Intn(3)))
	}
	g, err := gb.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	dict := tgminer.NewDict()
	rng := rand.New(rand.NewSource(7))

	var diskEpisodes, workloadEpisodes []*tgminer.Graph
	for i := 0; i < 10; i++ {
		diskEpisodes = append(diskEpisodes, episode(dict, rng, true))
		workloadEpisodes = append(workloadEpisodes, episode(dict, rng, false))
	}

	// Mine: what alert cascade is characteristic of disk failure?
	interest := tgminer.NewInterest(append(append([]*tgminer.Graph{}, diskEpisodes...),
		workloadEpisodes...), dict, nil)
	bq, err := tgminer.DiscoverQueries(diskEpisodes, workloadEpisodes, tgminer.QueryOptions{
		QuerySize: 3, TopK: 3, Interest: interest,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discriminative cascade for DISK FAILURE (vs workload anomaly):")
	for i, q := range bq.Queries {
		fmt.Printf("  #%d %s\n", i+1, tgminer.FormatPattern(q, dict))
	}

	// Classify fresh episodes with the top query.
	query := bq.Queries[0]
	correct := 0
	total := 0
	for i := 0; i < 20; i++ {
		isDisk := i%2 == 0
		g := episode(dict, rng, isDisk)
		eng := tgminer.NewEngine(g)
		matched := len(eng.FindTemporal(query, tgminer.SearchOptions{}).Matches) > 0
		if matched == isDisk {
			correct++
		}
		total++
	}
	fmt.Printf("\nclassified %d fresh episodes: %d/%d correct\n", total, correct, total)
}
