// Package tgminer is a Go implementation of TGMiner (Zong et al.,
// "Behavior Query Discovery in System-Generated Temporal Graphs",
// VLDB 2015): discriminative temporal graph pattern mining for building
// behavior queries over system monitoring data.
//
// # Overview
//
// System monitoring data (e.g. syscall logs) form temporal graphs: nodes
// are system entities (processes, files, sockets) and directed edges are
// their timestamped interactions. Given a positive set of temporal graphs
// (instances of a target behavior such as "sshd-login") and a negative set
// (background activity), Mine finds the T-connected temporal graph patterns
// with the maximum discriminative score; DiscoverQueries ranks the tied
// winners with domain knowledge and returns the top-k as behavior queries;
// Engine evaluates those queries against large test graphs.
//
// # Quick start
//
//	pos, neg := ... // []*tgminer.Graph
//	res, err := tgminer.Mine(pos, neg, tgminer.MineOptions{MaxEdges: 6})
//	queries, err := tgminer.DiscoverQueries(pos, neg, tgminer.QueryOptions{Dict: dict})
//	eng := tgminer.NewEngine(testGraph)
//	matches := eng.FindTemporal(queries.Queries[0], tgminer.SearchOptions{Window: w})
//
// # Context, streaming, and live ingestion (v2)
//
// Production pipelines use the context-aware forms: MineContext,
// MineTopKContext, DiscoverQueriesContext, and Engine.FindTemporalContext
// accept a context.Context and stop cooperatively at seed granularity,
// returning the partial result found so far together with ctx.Err(). The
// non-context functions above are thin compatibility wrappers passing
// context.Background().
//
// Engine.Stream yields matches as the backtracking search finds them, as an
// iter.Seq2[Match, error] whose scratch memory does not scale with the
// match count:
//
//	for m, err := range eng.Stream(ctx, q, tgminer.SearchOptions{Window: w}) {
//		if err != nil { break } // ctx.Err() or ErrTruncated
//		alert(m)
//	}
//
// Temporal queries accept per-hop constraints (SearchOptions.Constraints):
// min/max gaps to the previous hop, time windows relative to the match
// start, optional hops, and bounded repetition — the paper's "B follows A
// within 30 seconds" rules. Pattern + constraints compile into one automaton
// program every engine drives, with guards pruning the indexed search rather
// than post-filtering; see TemporalConstraints and HopConstraint.
//
// For a graph that never stops growing — the paper's monitoring deployment —
// LiveEngine ingests events incrementally (Append), keeps a sliding window
// (EvictBefore), periodically compacts its append-only tail into CSR
// indexes, and answers every query of all three families (temporal,
// non-temporal, label-set) identically to a static Engine over the same
// edge set. Its reads are lock-free: each query runs against the immutable
// generation snapshot current when it started, so long-lived streams never
// block ingestion and the engine may be mutated from inside a consumer
// loop.
//
// See examples/ for full runnable pipelines (examples/monitor covers the
// live scenario), and internal/experiments for the code regenerating every
// table and figure of the paper.
package tgminer

import (
	"fmt"

	"tgminer/internal/tgraph"
)

// Label is an interned node label identifier.
type Label = tgraph.Label

// NodeID identifies a node within one graph or pattern.
type NodeID = tgraph.NodeID

// Edge is a directed timestamped edge of a temporal graph.
type Edge = tgraph.Edge

// PEdge is a pattern edge; its timestamp is its position in the pattern's
// edge sequence.
type PEdge = tgraph.PEdge

// Graph is an immutable temporal graph with totally ordered edges.
type Graph = tgraph.Graph

// Pattern is a temporal graph pattern (timestamps aligned to 1..|E|).
type Pattern = tgraph.Pattern

// Dict interns label strings shared across a dataset.
type Dict = tgraph.Dict

// NewDict returns an empty label dictionary.
func NewDict() *Dict { return tgraph.NewDict() }

// GraphBuilder assembles temporal graphs from string-labeled nodes.
type GraphBuilder struct {
	b     tgraph.Builder
	dict  *Dict
	nodes map[string]NodeID
}

// NewGraphBuilder returns a builder interning labels into dict (a fresh
// Dict if nil).
func NewGraphBuilder(dict *Dict) *GraphBuilder {
	if dict == nil {
		dict = NewDict()
	}
	return &GraphBuilder{dict: dict, nodes: make(map[string]NodeID)}
}

// Dict returns the builder's label dictionary.
func (gb *GraphBuilder) Dict() *Dict { return gb.dict }

// Node returns the node for the given entity name, creating it on first
// use. The entity name doubles as its label.
func (gb *GraphBuilder) Node(name string) NodeID {
	if v, ok := gb.nodes[name]; ok {
		return v
	}
	v := gb.b.AddNode(gb.dict.Intern(name))
	gb.nodes[name] = v
	return v
}

// NodeWithLabel adds a node whose entity identity is name but whose label
// is label (several entities may share a label).
func (gb *GraphBuilder) NodeWithLabel(name, label string) NodeID {
	if v, ok := gb.nodes[name]; ok {
		return v
	}
	v := gb.b.AddNode(gb.dict.Intern(label))
	gb.nodes[name] = v
	return v
}

// AddEvent records a directed interaction src -> dst at time t, creating
// nodes as needed.
func (gb *GraphBuilder) AddEvent(src, dst string, t int64) error {
	return gb.b.AddEdge(gb.Node(src), gb.Node(dst), t)
}

// Finalize validates the total edge order and returns the graph.
func (gb *GraphBuilder) Finalize() (*Graph, error) {
	return gb.b.Finalize()
}

// Sequentialize imposes an artificial total order on concurrent events
// (Section 5 of the paper) and returns the graph.
func (gb *GraphBuilder) Sequentialize() (*Graph, error) {
	return gb.b.Sequentialize()
}

// PatternFromGraph reinterprets a temporal graph as a behavior-query
// pattern by aligning its edge timestamps to 1..|E|. Useful for writing
// queries by hand (build the query shape with a GraphBuilder sharing the
// engine's Dict, then convert) instead of mining them.
func PatternFromGraph(g *Graph) *Pattern { return tgraph.PatternFromGraph(g) }

// FormatPattern renders a pattern with human-readable labels.
func FormatPattern(p *Pattern, dict *Dict) string {
	if p == nil || dict == nil {
		return fmt.Sprintf("%v", p)
	}
	return p.Format(dict)
}
