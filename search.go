package tgminer

import (
	"context"
	"iter"

	"tgminer/internal/search"
)

// ErrTruncated terminates a match stream whose SearchOptions.Limit was
// reached: the final stream element is (zero Match, ErrTruncated). Further
// matches may exist in the host graph.
var ErrTruncated = search.ErrTruncated

// Match is one identified behavior instance: the time interval spanned by a
// query match.
type Match = search.Match

// Interval is a ground-truth occurrence interval.
type Interval = search.Interval

// Metrics are precision/recall statistics per the paper's Section 6.2.
type Metrics = search.Metrics

// TemporalConstraints attaches per-hop temporal constraints to a temporal
// behavior query: time windows relative to the match start, min/max gaps to
// the previous hop, optional hops, and bounded Kleene repetition. Hops[i]
// constrains pattern edge i; a nil value (or empty Hops) is the plain
// order-preserving semantics. The pattern + constraints compile into an
// automaton program that every engine (static, live, sharded) drives, with
// the guards pruning the indexed search rather than post-filtering. Use
// Validate to check a constraint set against a pattern's edge count before
// running.
type TemporalConstraints = search.Constraints

// HopConstraint is one hop's constraint fields; see TemporalConstraints.
// The paper's cybersecurity rule "B follows A within 30 seconds" is
// HopConstraint{MaxGap: 30} on B's hop.
type HopConstraint = search.HopConstraint

// SearchOptions bounds a query run.
type SearchOptions struct {
	// Window is the maximum time span of a match (the paper uses the
	// longest observed behavior duration; 0 = unbounded).
	Window int64
	// Limit caps distinct matches returned (default 100000). The
	// Truncated flag is exact — it is set only when a further distinct
	// match genuinely exists beyond the cap, which the search runs on to
	// establish; use a context deadline, not Limit, as a hard work bound.
	Limit int
	// Constraints attaches per-hop temporal constraints to TEMPORAL
	// queries (FindTemporal*, Stream); nil is unconstrained. Non-temporal
	// and label-set queries ignore it. Invalid constraints surface as the
	// stream's terminal error (FindTemporalContext returns it; the
	// background-context FindTemporal silently returns no matches — use
	// TemporalConstraints.Validate up front when that matters).
	Constraints *TemporalConstraints
}

// SearchResult is a query outcome.
type SearchResult struct {
	Matches   []Match
	Truncated bool
}

// Engine indexes one large temporal graph for behavior-query evaluation.
type Engine struct {
	e *search.Engine
}

// NewEngine indexes the host graph.
func NewEngine(g *Graph) *Engine {
	return &Engine{e: search.NewEngine(g)}
}

func (o SearchOptions) internal() search.Options {
	return search.Options{Window: o.Window, Limit: o.Limit, Constraints: o.Constraints}
}

// FindTemporal evaluates a temporal behavior query (order-preserving). It
// is a compatibility wrapper that collects FindTemporalContext with a
// background context; callers that need cancellation, deadlines, or
// constant-memory consumption should use FindTemporalContext or Stream.
func (eng *Engine) FindTemporal(p *Pattern, opts SearchOptions) SearchResult {
	r, _ := eng.FindTemporalContext(context.Background(), p, opts)
	return r
}

// FindTemporalContext evaluates a temporal behavior query under a context,
// collecting the match stream into a deduplicated, (Start, End)-sorted
// result. On cancellation the matches found so far are returned together
// with ctx.Err().
func (eng *Engine) FindTemporalContext(ctx context.Context, p *Pattern, opts SearchOptions) (SearchResult, error) {
	r, err := eng.e.FindTemporalContext(ctx, p, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}

// Stream evaluates a temporal behavior query and yields each distinct match
// interval as the backtracking search discovers it (ascending Start), with
// scratch memory independent of the match count — the form a monitoring
// pipeline over a continuously growing graph wants.
//
// Every regular element is (match, nil). The stream either ends silently
// (search exhausted), or its final element carries a non-nil error:
// ctx.Err() after cancellation, or ErrTruncated once SearchOptions.Limit
// matches were yielded. Breaking out of the range loop at any point is safe
// and releases the engine's pooled scratch immediately.
func (eng *Engine) Stream(ctx context.Context, p *Pattern, opts SearchOptions) iter.Seq2[Match, error] {
	return eng.e.StreamTemporal(ctx, p, opts.internal())
}

// FindNonTemporal evaluates an Ntemp query (order-free). It is the
// background-context compatibility form of FindNonTemporalContext.
func (eng *Engine) FindNonTemporal(p *NonTemporalPattern, opts SearchOptions) SearchResult {
	r, _ := eng.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindNonTemporalContext evaluates an Ntemp query (order-free) under a
// context, with the same cooperative-cancellation semantics as
// FindTemporalContext: on cancellation the matches found so far are
// returned together with ctx.Err().
func (eng *Engine) FindNonTemporalContext(ctx context.Context, p *NonTemporalPattern, opts SearchOptions) (SearchResult, error) {
	r, err := eng.e.FindNonTemporalContext(ctx, p, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}

// FindLabelSet evaluates a NodeSet query (label multiset within window).
// It is the background-context compatibility form of FindLabelSetContext.
func (eng *Engine) FindLabelSet(q *LabelSetQuery, opts SearchOptions) SearchResult {
	r, _ := eng.FindLabelSetContext(context.Background(), q, opts)
	return r
}

// FindLabelSetContext evaluates a NodeSet query under a context, returning
// partial matches plus ctx.Err() on cancellation.
func (eng *Engine) FindLabelSetContext(ctx context.Context, q *LabelSetQuery, opts SearchOptions) (SearchResult, error) {
	r, err := eng.e.FindLabelSetContext(ctx, q.Labels, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}

// UnionMatches merges match sets, deduplicating intervals (the paper
// evaluates the union of its top-5 queries).
func UnionMatches(results ...SearchResult) SearchResult {
	rs := make([]search.Result, len(results))
	for i, r := range results {
		rs[i] = search.Result{Matches: r.Matches, Truncated: r.Truncated}
	}
	u := search.Union(rs...)
	return SearchResult{Matches: u.Matches, Truncated: u.Truncated}
}

// Evaluate scores matches against ground-truth intervals: a match is
// correct when fully contained in a truth interval; an instance is
// discovered when it contains a correct match.
func Evaluate(matches []Match, truth []Interval) Metrics {
	return search.Evaluate(matches, truth)
}
