package tgminer

import (
	"context"
	"iter"
	"strconv"
	"sync"

	"tgminer/internal/search"
	"tgminer/internal/tgraph"
)

// LiveOptions configures a LiveEngine.
type LiveOptions struct {
	// CompactEvery is the minimum number of appended edges before a
	// shard's append-only tail is folded into its CSR base indexes
	// (default 4096; negative disables automatic compaction, leaving it to
	// explicit Compact calls). Compaction is normally an incremental
	// tail-merge — O(tail + touched lists), independent of the base size —
	// with a reclaiming full rebuild as the fallback; each shard compacts
	// on its own schedule.
	CompactEvery int

	// Shards is the number of independent ingest shards (0 = GOMAXPROCS,
	// 1 = a single unsharded engine, the pre-sharding behavior). Events
	// partition by their SOURCE entity, so producers whose entities hash
	// to different shards append fully in parallel instead of serializing
	// on one writer mutex. Queries are answered by a cross-shard planner
	// and are byte-identical at every shard count (differentially
	// tested); shard only for multi-writer ingest throughput — a single
	// producer gains nothing. See the README's sharding subsection for
	// the consistency model.
	Shards int
}

// LiveEngine is an incrementally growing temporal-graph engine for
// continuous monitoring: the scenario of the paper's deployment setting,
// where the syscall graph never stops growing and the immutable NewEngine
// would have to be rebuilt from scratch per batch.
//
// Events append in strictly increasing timestamp order (sequentialize
// concurrent events upstream, as GraphBuilder.Sequentialize does for batch
// graphs) into an append-only tail over the compacted CSR base; EvictBefore
// implements sliding-window retention in O(log E). All three query families
// — temporal (FindTemporal/FindTemporalContext/Stream), non-temporal
// (FindNonTemporal/FindNonTemporalContext), and label-set
// (FindLabelSet/FindLabelSetContext) — answer exactly as a static Engine
// built over the equivalent edge set would, including across compaction
// boundaries.
//
// A LiveEngine is safe for concurrent use and its reads are lock-free:
// every query runs against an immutable snapshot pinned when it started. A
// long-lived Stream therefore observes one consistent edge set for its
// whole lifetime and never stalls ingestion — Append, EvictBefore, and
// Compact proceed concurrently (and may safely be called from inside the
// consumer loop; their effects become visible to the next query, not the
// running stream).
//
// Multi-writer ingestion shards by source entity (LiveOptions.Shards,
// default GOMAXPROCS): each shard has its own writer mutex, generation
// chain, compaction schedule, and eviction floor, so concurrent producers
// scale with cores instead of serializing. Entity identity is shard-aware
// by construction — NodeIDs are global and every shard registers every
// entity under the same ID, so the name→NodeID dictionary below needs no
// per-shard remapping and an entity appearing as the destination of an
// event owned by a foreign shard resolves consistently. Queries pin one
// snapshot per shard (per-shard prefix consistency: each shard contributes
// a prefix of its own append history, with no cross-shard barrier) and the
// planner merges per-shard results back into the exact single-engine
// answer; for that equivalence timestamps must stay globally unique, the
// same strictly-increasing contract Append already documents.
//
// One sharp edge: the label Dict itself is not synchronized. Appending a
// never-seen entity interns its label, so building query patterns against
// the same Dict (e.g. with a GraphBuilder) concurrently with Append races.
// Author queries before ingestion starts, or serialize Dict access
// externally; queries already built are safe to run at any time.
type LiveEngine struct {
	mu    sync.Mutex // guards nodes; the live engine has its own locks
	live  *search.ShardedLive
	dict  *Dict
	nodes map[string]NodeID

	snapMu    sync.Mutex // guards the MineSnapshot cache below
	snapGraph *Graph
	snapKey   mineSnapKey
}

// mineSnapKey identifies a live engine's edge-set generation. Appends
// strictly increase LastTime, evictions shrink NumEdges, and new entities
// grow NumNodes, so no two distinct live edge sets of one engine ever share
// a key.
type mineSnapKey struct {
	nodes, edges int
	lastTime     int64
}

// NewLiveEngine returns an empty live engine interning labels into dict (a
// fresh Dict if nil). Patterns evaluated against the engine must use the
// same Dict.
func NewLiveEngine(dict *Dict, opts LiveOptions) *LiveEngine {
	if dict == nil {
		dict = NewDict()
	}
	return &LiveEngine{
		live:  search.NewSharded(search.LiveOptions{CompactEvery: opts.CompactEvery, Shards: opts.Shards}),
		dict:  dict,
		nodes: make(map[string]NodeID),
	}
}

// Dict returns the engine's label dictionary.
func (le *LiveEngine) Dict() *Dict { return le.dict }

// Shards reports the number of ingest shards.
func (le *LiveEngine) Shards() int { return le.live.Shards() }

// Node returns the node for the given entity name, creating it on first
// use. The entity name doubles as its label.
func (le *LiveEngine) Node(name string) NodeID {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.nodeLocked(name, name)
}

// NodeWithLabel adds a node whose entity identity is name but whose label
// is label (several entities may share a label).
func (le *LiveEngine) NodeWithLabel(name, label string) NodeID {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.nodeLocked(name, label)
}

func (le *LiveEngine) nodeLocked(name, label string) NodeID {
	if v, ok := le.nodes[name]; ok {
		return v
	}
	v := le.live.AddNode(le.dict.Intern(label))
	le.nodes[name] = v
	return v
}

// Append records a directed interaction src -> dst at time t, creating
// nodes as needed. Timestamps must be strictly increasing across appends.
// The event lands on src's shard; concurrent Appends whose sources hash to
// different shards proceed in parallel.
func (le *LiveEngine) Append(src, dst string, t int64) error {
	le.mu.Lock()
	s := le.nodeLocked(src, src)
	d := le.nodeLocked(dst, dst)
	le.mu.Unlock()
	return le.live.Append(s, d, t)
}

// EvictBefore drops every edge with timestamp < t on every shard
// (sliding-window retention). O(log E) per shard — it advances a floor
// position queries skip; the space itself is reclaimed once a shard's
// evicted prefix reaches half its edge array and a compaction rebuilds
// (see Stats to observe retention). Nodes are retained so identities stay
// stable.
func (le *LiveEngine) EvictBefore(t int64) { le.live.EvictBefore(t) }

// Compact folds every shard's append-only tail into its CSR indexes now
// instead of waiting for the CompactEvery threshold. Compaction is
// normally an incremental merge — the existing CSR base is extended with
// the (already indexed, already position-sorted) tail segment in O(tail +
// touched lists), not rebuilt — and falls back to a full rebuild that
// reclaims the evicted prefix once that prefix reaches half the edge
// array. Stats reports which path compactions took.
func (le *LiveEngine) Compact() { le.live.Compact() }

// LiveStats describes live-engine retention and compaction state at one
// instant: how much of the edge set sits in the compacted CSR base versus
// the append-only tail, how far sliding-window eviction has advanced
// (Floor counts evicted-but-not-yet-reclaimed edges), how many compactions
// ran — Merges of them incremental tail-merges, the rest reclaiming
// rebuilds — plus memory accounting: RetainedBytes approximates the
// storage the current generation holds, ActiveReaders counts in-flight
// queries, and OldestReaderLag is how many edges have arrived since the
// oldest still-running query pinned its snapshot (a paused stream consumer
// pinning old storage shows up here). All counts are edges unless stated
// otherwise. Every field is O(1) to produce: RetainedBytes is a
// writer-maintained incremental counter (not a recomputed walk), and only
// ActiveReaders/OldestReaderLag come from the fixed-size reader table.
// LiveStats marshals to JSON with stable lowerCamel field names — the
// representation tgminerd's /v1/statsz endpoint and examples/monitor share.
type LiveStats = search.LiveStats

// Stats reports the engine's current retention and compaction state,
// aggregated across shards: edge counts, floors, compaction counters, and
// retained bytes sum; Nodes is the global entity count (the node table is
// replicated per shard, and RetainedBytes honestly includes that);
// LastTime is the global maximum; ActiveReaders and OldestReaderLag take
// the per-shard maximum, since one query registers on every shard. O(shards)
// — cheap enough to call per ingest batch, which is exactly what tgminerd's
// admission control does. Use ShardStats for the per-shard breakdown (e.g.
// to spot a hot shard or a reader pinning one shard's old storage).
func (le *LiveEngine) Stats() LiveStats { return le.live.Stats() }

// ShardStats reports each ingest shard's retention and compaction state.
func (le *LiveEngine) ShardStats() []LiveStats { return le.live.ShardStats() }

// NumNodes reports the number of distinct entities seen.
func (le *LiveEngine) NumNodes() int { return le.live.NumNodes() }

// NumEdges reports the number of live (non-evicted) events across shards.
func (le *LiveEngine) NumEdges() int { return le.live.NumEdges() }

// LastTime reports the largest appended timestamp (-1 when empty).
func (le *LiveEngine) LastTime() int64 { return le.live.LastTime() }

// Snapshot materializes an immutable Engine over the current live edge set
// (the time-merged union of every shard's live events), for running many
// queries against one consistent state. Like all reads it is lock-free;
// on a single-shard engine right after a compaction the CSR base is shared
// directly with no copying.
func (le *LiveEngine) Snapshot() *Engine { return &Engine{e: le.live.Snapshot()} }

// MineSnapshot returns the engine's current live edge set as one immutable
// temporal graph for mining, cached per generation: if nothing was appended
// or evicted since the last call, the identical *Graph pointer is returned,
// which lets an incremental MineSession recognize the engine as unchanged
// in O(1) and replay every cached seed it supports. Like Snapshot, the cut
// is lock-free and consistent; the small cache check serializes only
// concurrent MineSnapshot callers.
func (le *LiveEngine) MineSnapshot() *Graph {
	le.snapMu.Lock()
	defer le.snapMu.Unlock()
	key := le.mineSnapKeyNow()
	if le.snapGraph != nil && key == le.snapKey {
		return le.snapGraph
	}
	g := le.live.Snapshot().Graph()
	// Only cache when the engine did not move during the cut; a torn key
	// under concurrent ingest just means the next call rebuilds.
	if le.mineSnapKeyNow() == key {
		le.snapGraph, le.snapKey = g, key
	}
	return g
}

func (le *LiveEngine) mineSnapKeyNow() mineSnapKey {
	return mineSnapKey{nodes: le.live.NumNodes(), edges: le.live.NumEdges(), lastTime: le.live.LastTime()}
}

// GenerationCut returns a stable key identifying the engine's current live
// edge set, one component per ingest shard: two equal cut strings read from
// the same engine — at any two instants — denote byte-identical live edge
// sets on every shard, so any query answer computed under one cut may be
// replayed verbatim whenever the same cut is observed again (this is what
// makes tgminerd's result cache exactly "a replay at the same per-shard
// generation cut"). The converse is not promised: internal reorganization
// (a compaction) changes the cut without changing the edge set — a
// harmless cache miss, never a stale hit. Lock-free: one atomic generation
// load per shard, the same per-shard prefix-consistent capture a query
// pins.
//
// The string is opaque; compare it only for equality and do not persist it
// across engine restarts.
func (le *LiveEngine) GenerationCut() string {
	keys := le.live.CutKey()
	// Worst case ~3 numbers * 20 digits per shard; typical cuts are short.
	buf := make([]byte, 0, 16*len(keys))
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, '/')
		}
		buf = strconv.AppendInt(buf, int64(k.Compactions), 36)
		buf = append(buf, '.')
		buf = strconv.AppendInt(buf, int64(k.Floor), 36)
		buf = append(buf, '.')
		buf = strconv.AppendInt(buf, int64(k.End), 36)
	}
	return string(buf)
}

// LookupLabel resolves a label name to its interned Label under the
// engine's ingest lock, reporting false for a name the engine has never
// seen. Unlike Dict.Lookup — which must not run concurrently with Append
// (interning mutates the Dict; see the type comment's sharp edge) —
// LookupLabel serializes with the engine's own interning, so a serving
// tier can build query patterns while producers keep appending. A label
// the engine does not know cannot appear on any edge, so callers may
// short-circuit such queries to zero matches.
func (le *LiveEngine) LookupLabel(name string) (Label, bool) {
	le.mu.Lock()
	defer le.mu.Unlock()
	l := le.dict.Lookup(name)
	return l, l != tgraph.NoLabel
}

// FindTemporal evaluates a temporal behavior query against the live edge
// set (compatibility form of FindTemporalContext).
func (le *LiveEngine) FindTemporal(p *Pattern, opts SearchOptions) SearchResult {
	r, _ := le.FindTemporalContext(context.Background(), p, opts)
	return r
}

// FindTemporalContext evaluates a temporal behavior query against the live
// edge set under a context, with Engine.FindTemporalContext semantics.
func (le *LiveEngine) FindTemporalContext(ctx context.Context, p *Pattern, opts SearchOptions) (SearchResult, error) {
	r, err := le.live.FindTemporalContext(ctx, p, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}

// Stream evaluates a temporal behavior query against the live edge set,
// yielding matches as they are found, with Engine.Stream semantics. The
// stream runs lock-free against the per-shard snapshot cut pinned when it
// started: it sees one consistent edge set no matter how long the consumer
// takes, appends are never blocked by a slow (or paused) consumer, and
// mutating the engine from inside the loop body is safe — evict-as-you-alert
// needs no Snapshot detour:
//
//	for m, err := range le.Stream(ctx, q, opts) {
//		if err != nil { break }
//		alert(m); le.EvictBefore(m.End) // visible to the next query
//	}
//
// On a sharded engine the planner fans the root loop out across shards and
// merges the per-shard streams back into ascending-start order, so the
// yield order matches the single-shard engine exactly.
func (le *LiveEngine) Stream(ctx context.Context, p *Pattern, opts SearchOptions) iter.Seq2[Match, error] {
	return le.live.StreamTemporal(ctx, p, opts.internal())
}

// FindNonTemporal evaluates an Ntemp (order-free) query against the live
// edge set (compatibility form of FindNonTemporalContext).
func (le *LiveEngine) FindNonTemporal(p *NonTemporalPattern, opts SearchOptions) SearchResult {
	r, _ := le.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindNonTemporalContext evaluates an Ntemp (order-free) query against the
// live edge set under a context, with Engine.FindNonTemporalContext
// semantics. Lock-free: the query runs against the snapshot cut pinned at
// the call.
func (le *LiveEngine) FindNonTemporalContext(ctx context.Context, p *NonTemporalPattern, opts SearchOptions) (SearchResult, error) {
	r, err := le.live.FindNonTemporalContext(ctx, p, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}

// FindLabelSet evaluates a NodeSet query (label multiset within window)
// against the live edge set (compatibility form of FindLabelSetContext).
func (le *LiveEngine) FindLabelSet(q *LabelSetQuery, opts SearchOptions) SearchResult {
	r, _ := le.FindLabelSetContext(context.Background(), q, opts)
	return r
}

// FindLabelSetContext evaluates a NodeSet query against the live edge set
// under a context, with Engine.FindLabelSetContext semantics. Lock-free:
// the sweep runs against the snapshot cut pinned at the call.
func (le *LiveEngine) FindLabelSetContext(ctx context.Context, q *LabelSetQuery, opts SearchOptions) (SearchResult, error) {
	r, err := le.live.FindLabelSetContext(ctx, q.Labels, opts.internal())
	return SearchResult{Matches: r.Matches, Truncated: r.Truncated}, err
}
