package tgminer

import (
	"context"
	"errors"
	"testing"
)

// chainGraph builds A->B->C ... event chains through the facade builder.
func chainEngine(t *testing.T) (*Engine, *Pattern, *Dict) {
	t.Helper()
	dict := NewDict()
	gb := NewGraphBuilder(dict)
	events := [][2]string{
		{"sshd", "bash"}, {"bash", "ls"}, {"sshd", "bash2"},
		{"bash2", "ls"}, {"sshd", "bash"}, {"bash", "ls"},
	}
	for i, ev := range events {
		if err := gb.AddEvent(ev[0], ev[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := gb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	pb := NewGraphBuilder(dict)
	_ = pb.AddEvent("sshd", "bash", 0)
	_ = pb.AddEvent("bash", "ls", 1)
	pg, err := pb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	p := PatternFromGraph(pg)
	return NewEngine(g), p, dict
}

// TestEngineStreamEqualsFindTemporal is the facade-level acceptance check:
// collecting Engine.Stream reproduces Engine.FindTemporal byte for byte.
func TestEngineStreamEqualsFindTemporal(t *testing.T) {
	eng, p, _ := chainEngine(t)
	want := eng.FindTemporal(p, SearchOptions{})
	if len(want.Matches) == 0 {
		t.Fatal("no matches in fixture")
	}
	var got []Match
	for m, err := range eng.Stream(context.Background(), p, SearchOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	res, err := eng.FindTemporalContext(context.Background(), p, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Matches) || len(res.Matches) != len(want.Matches) {
		t.Fatalf("stream %d, context %d, find %d matches", len(got), len(res.Matches), len(want.Matches))
	}
	for i := range res.Matches {
		if res.Matches[i] != want.Matches[i] {
			t.Fatalf("context collector diverges at %d: %v != %v", i, res.Matches[i], want.Matches[i])
		}
	}
}

func TestEngineStreamTruncates(t *testing.T) {
	eng, p, _ := chainEngine(t)
	n := 0
	sawTrunc := false
	for _, err := range eng.Stream(context.Background(), p, SearchOptions{Limit: 1}) {
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatal(err)
			}
			sawTrunc = true
			continue
		}
		n++
	}
	if n != 1 || !sawTrunc {
		t.Fatalf("limit 1: %d matches, truncated=%v", n, sawTrunc)
	}
}

// TestLiveEngineMatchesStatic feeds the same event log into a LiveEngine
// (with forced tiny compaction) and a batch GraphBuilder+NewEngine, and
// requires identical query results.
func TestLiveEngineMatchesStatic(t *testing.T) {
	dict := NewDict()
	le := NewLiveEngine(dict, LiveOptions{CompactEvery: 3})
	gb := NewGraphBuilder(dict)
	events := [][2]string{
		{"sshd", "bash"}, {"bash", "ls"}, {"sshd", "bash2"}, {"bash2", "ls"},
		{"sshd", "bash"}, {"bash", "ls"}, {"cron", "sh"}, {"sh", "ls"},
	}
	for i, ev := range events {
		if err := le.Append(ev[0], ev[1], int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEvent(ev[0], ev[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := gb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	static := NewEngine(g)

	pb := NewGraphBuilder(dict)
	_ = pb.AddEvent("sshd", "bash", 0)
	_ = pb.AddEvent("bash", "ls", 1)
	pg, err := pb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	p := PatternFromGraph(pg)

	want := static.FindTemporal(p, SearchOptions{})
	got := le.FindTemporal(p, SearchOptions{})
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("live %v != static %v", got.Matches, want.Matches)
	}
	for i := range got.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Fatalf("live %v != static %v", got.Matches, want.Matches)
		}
	}

	// Streaming against the live engine agrees too.
	var streamed []Match
	for m, err := range le.Stream(context.Background(), p, SearchOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, m)
	}
	if len(streamed) != len(want.Matches) {
		t.Fatalf("live stream %v != static %v", streamed, want.Matches)
	}

	// The other two query families answer identically on the live engine.
	np := NonTemporalPatternFromGraph(pg)
	wantN := static.FindNonTemporal(np, SearchOptions{})
	gotN := le.FindNonTemporal(np, SearchOptions{})
	if len(gotN.Matches) != len(wantN.Matches) {
		t.Fatalf("live non-temporal %v != static %v", gotN.Matches, wantN.Matches)
	}
	for i := range gotN.Matches {
		if gotN.Matches[i] != wantN.Matches[i] {
			t.Fatalf("live non-temporal %v != static %v", gotN.Matches, wantN.Matches)
		}
	}
	lq := &LabelSetQuery{Labels: []Label{dict.Intern("sshd"), dict.Intern("ls")}}
	wantL := static.FindLabelSet(lq, SearchOptions{Window: 4})
	gotL := le.FindLabelSet(lq, SearchOptions{Window: 4})
	if len(gotL.Matches) != len(wantL.Matches) {
		t.Fatalf("live label-set %v != static %v", gotL.Matches, wantL.Matches)
	}
	for i := range gotL.Matches {
		if gotL.Matches[i] != wantL.Matches[i] {
			t.Fatalf("live label-set %v != static %v", gotL.Matches, wantL.Matches)
		}
	}

	// Snapshot and eviction remain consistent.
	snap := le.Snapshot()
	if sres := snap.FindTemporal(p, SearchOptions{}); len(sres.Matches) != len(want.Matches) {
		t.Fatalf("snapshot %v != static %v", sres.Matches, want.Matches)
	}
	le.EvictBefore(4)
	after := le.FindTemporal(p, SearchOptions{})
	for _, m := range after.Matches {
		if m.Start < 4 {
			t.Fatalf("evicted event matched: %v", m)
		}
	}
}

// TestQueryFamilyContextForms checks the v2 context forms of the
// non-temporal and label-set families on both engines: a dead context
// surfaces as ctx.Err(), a live one answers like the compatibility form.
func TestQueryFamilyContextForms(t *testing.T) {
	eng, p, dict := chainEngine(t)
	gb := NewGraphBuilder(dict)
	_ = gb.AddEvent("sshd", "bash", 0)
	_ = gb.AddEvent("bash", "ls", 1)
	pg, err := gb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	np := NonTemporalPatternFromGraph(pg)
	lq := &LabelSetQuery{Labels: []Label{dict.Intern("sshd"), dict.Intern("ls")}}
	_ = p

	if res, err := eng.FindNonTemporalContext(context.Background(), np, SearchOptions{}); err != nil || len(res.Matches) == 0 {
		t.Fatalf("FindNonTemporalContext: %v / %v", res, err)
	}
	if res, err := eng.FindLabelSetContext(context.Background(), lq, SearchOptions{Window: 4}); err != nil || len(res.Matches) == 0 {
		t.Fatalf("FindLabelSetContext: %v / %v", res, err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.FindNonTemporalContext(cancelled, np, SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("non-temporal cancelled err = %v", err)
	}
	if _, err := eng.FindLabelSetContext(cancelled, lq, SearchOptions{Window: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("label-set cancelled err = %v", err)
	}
	// Regression: cancellation surfaces even when the queried labels never
	// occur (no events, so the sweep loop never polls).
	absent := &LabelSetQuery{Labels: []Label{dict.Intern("zz-absent-label")}}
	if _, err := eng.FindLabelSetContext(cancelled, absent, SearchOptions{Window: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("label-set cancelled (no events) err = %v", err)
	}

	// Same surface on a live engine.
	le := NewLiveEngine(dict, LiveOptions{CompactEvery: 2})
	for i, ev := range [][2]string{{"sshd", "bash"}, {"bash", "ls"}, {"sshd", "bash"}} {
		if err := le.Append(ev[0], ev[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := le.FindNonTemporalContext(context.Background(), np, SearchOptions{}); err != nil || len(res.Matches) == 0 {
		t.Fatalf("live FindNonTemporalContext: %v / %v", res, err)
	}
	if res, err := le.FindLabelSetContext(context.Background(), lq, SearchOptions{Window: 4}); err != nil || len(res.Matches) == 0 {
		t.Fatalf("live FindLabelSetContext: %v / %v", res, err)
	}
	if _, err := le.FindNonTemporalContext(cancelled, np, SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("live non-temporal cancelled err = %v", err)
	}
	if _, err := le.FindLabelSetContext(cancelled, lq, SearchOptions{Window: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("live label-set cancelled err = %v", err)
	}
}

func TestLiveEngineRejectsOutOfOrder(t *testing.T) {
	le := NewLiveEngine(nil, LiveOptions{})
	if err := le.Append("a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := le.Append("a", "b", 10); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if err := le.Append("b", "a", 9); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
	if le.NumEdges() != 1 || le.LastTime() != 10 {
		t.Fatalf("engine state after rejects: edges=%d last=%d", le.NumEdges(), le.LastTime())
	}
}

// TestMineContextFacadeCancelled checks partial-result + ctx.Err() semantics
// through the public facade.
func TestMineContextFacadeCancelled(t *testing.T) {
	ds := GenerateSynthetic(SyntheticConfig{
		Scale: 0.25, GraphsPerBehavior: 4, BackgroundGraphs: 8, Seed: 1,
		Behaviors: []string{"gzip-decompress"},
	})
	pos := ds.Behaviors[0].Graphs
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, pos, ds.Background, MineOptions{MaxEdges: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if _, err := MineTopKContext(ctx, pos, ds.Background, 5, MineOptions{MaxEdges: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("topk err = %v", err)
	}
	if _, err := DiscoverQueriesContext(ctx, pos, ds.Background, QueryOptions{QuerySize: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("discover err = %v", err)
	}
	// And an un-cancelled run through the same entry points still succeeds.
	bq, err := DiscoverQueriesContext(context.Background(), pos, ds.Background, QueryOptions{QuerySize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(bq.Queries) == 0 {
		t.Fatal("no queries discovered")
	}
}

// TestLiveEngineStats exercises the operator-facing retention and
// compaction statistics through the facade: base/tail split, eviction
// floor, and the merge-vs-rebuild compaction counters.
func TestLiveEngineStats(t *testing.T) {
	le := NewLiveEngine(nil, LiveOptions{CompactEvery: 4})
	s := le.Stats()
	if s.Nodes != 0 || s.LiveEdges != 0 || s.LastTime != -1 || s.Compactions != 0 {
		t.Fatalf("fresh engine stats %+v", s)
	}
	for i := 0; i < 12; i++ {
		if err := le.Append("a", "b", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s = le.Stats()
	if s.Nodes != 2 || s.LiveEdges != 12 || s.LastTime != 11 {
		t.Fatalf("post-append stats %+v", s)
	}
	if s.BaseEdges+s.TailLen != 12 || s.Floor != 0 {
		t.Fatalf("base/tail split inconsistent: %+v", s)
	}
	// CompactEvery=4 over 12 appends: one initial rebuild, then merges.
	if s.Compactions != 3 || s.Merges != 2 || s.LastCompactTail != 4 {
		t.Fatalf("compaction counters %+v", s)
	}
	// Eviction advances the floor without reclaiming...
	le.EvictBefore(6)
	s = le.Stats()
	if s.LiveEdges != 6 || s.Floor != 6 || s.BaseEdges != 12 {
		t.Fatalf("post-evict stats %+v", s)
	}
	// ...until a compaction sees the dead prefix at half the edge array
	// and rebuilds, rebasing the floor to zero.
	le.Compact()
	s = le.Stats()
	if s.LiveEdges != 6 || s.Floor != 0 || s.BaseEdges != 6 || s.TailLen != 0 {
		t.Fatalf("post-reclaim stats %+v", s)
	}
	if s.Compactions != 4 || s.Merges != 2 {
		t.Fatalf("reclaiming compaction counters %+v", s)
	}
	if s.RetainedBytes <= 0 {
		t.Fatalf("RetainedBytes missing: %+v", s)
	}
}

// TestLiveEngineSharded drives the facade at several explicit shard counts
// through one event history and checks every query family answers
// identically to the single-shard engine, plus the sharded stats surface.
// (TestLiveEngineStats pins the exact single-shard counters; aggregates
// over N shards sum per-shard schedules instead.)
func TestLiveEngineSharded(t *testing.T) {
	dict := NewDict()
	// Distinct sources so the events actually spread across shards.
	events := [][2]string{
		{"sshd", "bash"}, {"bash", "ls"}, {"cron", "sh"}, {"sh", "ls"},
		{"sshd", "bash2"}, {"bash2", "ls"}, {"initd", "bash"}, {"bash", "cat"},
		{"sshd", "bash"}, {"bash", "ls"}, {"cron", "sh"}, {"sh", "cat"},
	}
	build := func(shards int) *LiveEngine {
		le := NewLiveEngine(dict, LiveOptions{CompactEvery: 3, Shards: shards})
		for i, ev := range events {
			if err := le.Append(ev[0], ev[1], int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return le
	}
	single := build(1)
	pb := NewGraphBuilder(dict)
	_ = pb.AddEvent("sshd", "bash", 0)
	_ = pb.AddEvent("bash", "ls", 1)
	pg, err := pb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	p := PatternFromGraph(pg)
	np := NonTemporalPatternFromGraph(pg)
	lq := &LabelSetQuery{Labels: []Label{dict.Intern("sshd"), dict.Intern("ls")}}
	for _, shards := range []int{2, 4} {
		le := build(shards)
		if le.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", le.Shards(), shards)
		}
		if le.NumNodes() != single.NumNodes() || le.NumEdges() != single.NumEdges() {
			t.Fatalf("shards=%d: %d/%d nodes/edges, single %d/%d",
				shards, le.NumNodes(), le.NumEdges(), single.NumNodes(), single.NumEdges())
		}
		for name, got := range map[string]SearchResult{
			"temporal":     le.FindTemporal(p, SearchOptions{Window: 4}),
			"non-temporal": le.FindNonTemporal(np, SearchOptions{Window: 4}),
			"label-set":    le.FindLabelSet(lq, SearchOptions{Window: 4}),
		} {
			var want SearchResult
			switch name {
			case "temporal":
				want = single.FindTemporal(p, SearchOptions{Window: 4})
			case "non-temporal":
				want = single.FindNonTemporal(np, SearchOptions{Window: 4})
			case "label-set":
				want = single.FindLabelSet(lq, SearchOptions{Window: 4})
			}
			if len(got.Matches) != len(want.Matches) || got.Truncated != want.Truncated {
				t.Fatalf("shards=%d %s: %v != single %v", shards, name, got, want)
			}
			for i := range got.Matches {
				if got.Matches[i] != want.Matches[i] {
					t.Fatalf("shards=%d %s: %v != single %v", shards, name, got.Matches, want.Matches)
				}
			}
		}
		per := le.ShardStats()
		if len(per) != shards {
			t.Fatalf("ShardStats: %d entries, want %d", len(per), shards)
		}
		agg := le.Stats()
		sum := 0
		for _, s := range per {
			sum += s.LiveEdges
			if s.Nodes != le.NumNodes() {
				t.Fatalf("shard node table %d != global %d", s.Nodes, le.NumNodes())
			}
		}
		if sum != agg.LiveEdges || agg.LiveEdges != len(events) {
			t.Fatalf("aggregate LiveEdges %d (sum %d), want %d", agg.LiveEdges, sum, len(events))
		}
		// Eviction applies engine-wide.
		le.EvictBefore(6)
		if got := le.NumEdges(); got != len(events)-6 {
			t.Fatalf("post-evict edges %d, want %d", got, len(events)-6)
		}
	}
}
