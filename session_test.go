package tgminer

import (
	"testing"
)

// liveCorpus builds n live engines over a shared dict, each fed the given
// event chain at distinct offsets so timestamps stay strictly increasing.
func liveCorpus(t *testing.T, dict *Dict, n int, events [][2]string) []*LiveEngine {
	t.Helper()
	out := make([]*LiveEngine, n)
	for i := range out {
		le := NewLiveEngine(dict, LiveOptions{Shards: 1})
		for j, ev := range events {
			if err := le.Append(ev[0], ev[1], int64(j)); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = le
	}
	return out
}

func assertSameMineResult(t *testing.T, label string, got, want *MineResult) {
	t.Helper()
	if got.BestScore != want.BestScore || got.TieCount != want.TieCount || len(got.Best) != len(want.Best) {
		t.Fatalf("%s: (score %v ties %d |best| %d) vs cold (score %v ties %d |best| %d)",
			label, got.BestScore, got.TieCount, len(got.Best),
			want.BestScore, want.TieCount, len(want.Best))
	}
	cold := map[string]float64{}
	for _, mp := range want.Best {
		cold[mp.Pattern.Key()] = mp.Score
	}
	for _, mp := range got.Best {
		if sc, ok := cold[mp.Pattern.Key()]; !ok || sc != mp.Score {
			t.Fatalf("%s: pattern %q (score %v) not in cold best set", label, mp.Pattern.Key(), mp.Score)
		}
	}
}

// TestMineSessionLiveMatchesCold drives the continuous-mining facade over
// evolving LiveEngines and checks every round against a cold Mine on the
// same snapshots.
func TestMineSessionLiveMatchesCold(t *testing.T) {
	dict := NewDict()
	pos := liveCorpus(t, dict, 3, [][2]string{
		{"sshd", "bash"}, {"bash", "ls"}, {"bash", "cat"}, {"sshd", "bash"}, {"bash", "ls"},
	})
	neg := liveCorpus(t, dict, 4, [][2]string{
		{"cron", "sh"}, {"sh", "ls"}, {"cron", "sh"}, {"sh", "cat"},
	})
	// Give pos[0] seeds of its own, so mutating pos[1] later leaves some
	// seeds (supported only by pos[0]) provably clean.
	if err := pos[0].Append("sshd", "tar", 50); err != nil {
		t.Fatal(err)
	}
	if err := pos[0].Append("tar", "gzip", 51); err != nil {
		t.Fatal(err)
	}
	opts := MineOptions{MaxEdges: 3, Parallelism: 2}
	ses, err := NewMineSession(opts)
	if err != nil {
		t.Fatal(err)
	}

	coldOf := func() *MineResult {
		pg := make([]*Graph, len(pos))
		for i, le := range pos {
			pg[i] = le.MineSnapshot()
		}
		ng := make([]*Graph, len(neg))
		for i, le := range neg {
			ng[i] = le.MineSnapshot()
		}
		res, err := Mine(pg, ng, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Round 1: cold.
	warm, err := ses.MineLive(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMineResult(t, "round 1", warm, coldOf())
	if ses.Drift() != nil {
		t.Fatal("drift non-nil after first round")
	}

	// Round 2: nothing changed — full reuse, zero dirty seeds.
	warm, err = ses.MineLive(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMineResult(t, "round 2", warm, coldOf())
	if st := ses.Stats(); st.LastDirty != 0 {
		t.Fatalf("unchanged round dirtied %d seeds", st.LastDirty)
	}

	// Round 3: one positive engine ingests; only its seeds go dirty.
	if err := pos[1].Append("bash", "curl", 100); err != nil {
		t.Fatal(err)
	}
	if err := pos[1].Append("curl", "ls", 101); err != nil {
		t.Fatal(err)
	}
	warm, err = ses.MineLive(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMineResult(t, "round 3", warm, coldOf())
	st := ses.Stats()
	if st.LastDirty == 0 || st.LastDirty == st.LastSeeds {
		t.Fatalf("one-engine ingest should dirty some but not all seeds: %d of %d",
			st.LastDirty, st.LastSeeds)
	}

	// Round 4: eviction on a negative engine.
	neg[0].EvictBefore(2)
	warm, err = ses.MineLive(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMineResult(t, "round 4", warm, coldOf())
}

// TestMineSnapshotGenerationCache pins the O(1) unchanged-engine path: the
// same *Graph pointer comes back until the engine moves.
func TestMineSnapshotGenerationCache(t *testing.T) {
	le := NewLiveEngine(nil, LiveOptions{})
	if err := le.Append("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	s1 := le.MineSnapshot()
	if s2 := le.MineSnapshot(); s2 != s1 {
		t.Fatal("unchanged engine returned a new snapshot")
	}
	if err := le.Append("b", "c", 2); err != nil {
		t.Fatal(err)
	}
	s3 := le.MineSnapshot()
	if s3 == s1 {
		t.Fatal("append did not invalidate the mine snapshot")
	}
	if s3.NumEdges() != 2 {
		t.Fatalf("snapshot has %d edges, want 2", s3.NumEdges())
	}
	le.EvictBefore(2)
	if s4 := le.MineSnapshot(); s4 == s3 || s4.NumEdges() != 1 {
		t.Fatal("eviction did not invalidate the mine snapshot")
	}
}

// TestDriftAlerts pins the drift classification between two rounds.
func TestDriftAlerts(t *testing.T) {
	dict := NewDict()
	mk := func(events ...[2]string) *Pattern {
		gb := NewGraphBuilder(dict)
		for i, ev := range events {
			if err := gb.AddEvent(ev[0], ev[1], int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		g, err := gb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return PatternFromGraph(g)
	}
	stay := mk([2]string{"a", "b"}, [2]string{"b", "c"})
	gone := mk([2]string{"a", "b"}, [2]string{"b", "d"})
	born := mk([2]string{"a", "b"}, [2]string{"b", "e"})

	prev := &MineResult{BestScore: 2, Best: []MinedPattern{
		{Pattern: stay, Score: 2, PosFreq: 1.0},
		{Pattern: gone, Score: 2, PosFreq: 0.8},
	}}
	cur := &MineResult{BestScore: 1.5, Best: []MinedPattern{
		{Pattern: stay, Score: 1.5, PosFreq: 0.6}, // support decayed
		{Pattern: born, Score: 1.5, PosFreq: 0.6},
	}}
	alerts := driftAlerts(prev, cur)
	counts := map[DriftKind]int{}
	for _, a := range alerts {
		counts[a.Kind]++
	}
	want := map[DriftKind]int{
		DriftScoreShift: 1, DriftNewPattern: 1, DriftDroppedPattern: 1, DriftSupportDecay: 1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("drift %v: got %d alerts, want %d (all: %+v)", k, counts[k], n, alerts)
		}
	}
	if driftAlerts(nil, cur) != nil {
		t.Fatal("first round should produce no drift")
	}
}
