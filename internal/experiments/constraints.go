package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tgminer/internal/search"
	"tgminer/internal/tgraph"
)

// ConstraintsResult is the temporal-constraints exhibit: the paper's
// cybersecurity motivation (Section 1) phrases behaviors as rules like
// "the file reaches a socket within 30 seconds of the process touching it".
// The exhibit encodes that rule as a per-hop MaxGap constraint, runs it over
// a timeline where most continuations are slower than the rule allows, and
// compares the compiled guard (pruning inside the candidate scan) against
// the only alternative the unconstrained matcher offers: enumerate every
// embedding, then filter spans.
type ConstraintsResult struct {
	Sessions    int
	Fanout      int
	WithinTicks int64

	Unconstrained int // embeddings without the rule
	Constrained   int // embeddings satisfying "within 30s"

	GuardMs      float64 // constrained query, guards pushed into the scan
	PostFilterMs float64 // unconstrained query + span post-filter
}

func (r *ConstraintsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temporal constraints: the paper's \"within %ds\" rule (Section 1)\n", r.WithinTicks)
	fmt.Fprintf(&b, "timeline: %d proc->file sessions, each file fanning out to %d socks over time\n\n", r.Sessions, r.Fanout)
	fmt.Fprintf(&b, "  %-34s %10s %12s\n", "query", "matches", "latency")
	fmt.Fprintf(&b, "  %-34s %10d %10.2fms\n", "unconstrained + span post-filter", r.Constrained, r.PostFilterMs)
	fmt.Fprintf(&b, "  %-34s %10d %10.2fms\n", fmt.Sprintf("maxGap=%d compiled guard", r.WithinTicks), r.Constrained, r.GuardMs)
	fmt.Fprintf(&b, "\n  identical answers; the guard never enumerates the %d embeddings\n", r.Unconstrained)
	if r.GuardMs > 0 {
		fmt.Fprintf(&b, "  the rule rejects (speedup %.1fx)\n", r.PostFilterMs/r.GuardMs)
	}
	return b.String()
}

// ConstraintExhibit builds the rule's timeline and times both evaluation
// strategies. Each session k is one proc#k -> file#k anchor followed by
// Fanout file#k -> sock continuations at growing delays (5, 10, 15, ...
// ticks), so the 30-tick rule admits exactly the first 6 per session and the
// guard's upper bound early-exits each candidate scan there. Both strategies
// must return identical match sets — the exhibit errors out otherwise.
func ConstraintExhibit(ctx context.Context, env *Env) (*ConstraintsResult, error) {
	const fanout = 48
	const within = int64(30)
	const delayStep = int64(5)
	sessions := maxInt(300, int(300*env.Scale.SizeFactor))

	var b tgraph.Builder
	tm := int64(0)
	stride := delayStep*int64(fanout) + 10 // sessions never overlap in time
	for k := 0; k < sessions; k++ {
		base := int64(k) * stride
		proc := b.AddNode(0)
		file := b.AddNode(1)
		tm = base + 1
		if err := b.AddEdge(proc, file, tm); err != nil {
			return nil, err
		}
		for i := 0; i < fanout; i++ {
			sock := b.AddNode(2)
			if err := b.AddEdge(file, sock, base+1+delayStep*int64(i+1)); err != nil {
				return nil, err
			}
		}
	}
	g, err := b.Finalize()
	if err != nil {
		return nil, err
	}
	eng := search.NewEngine(g)
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		return nil, err
	}
	cons := &search.Constraints{Hops: []search.HopConstraint{{}, {MaxGap: within}}}
	limit := search.Options{Limit: sessions*fanout + 1}
	climit := limit
	climit.Constraints = cons

	span := func(res search.Result) []search.Match {
		out := res.Matches[:0:0]
		for _, m := range res.Matches {
			if m.End-m.Start <= within {
				out = append(out, m)
			}
		}
		return out
	}

	res := &ConstraintsResult{Sessions: sessions, Fanout: fanout, WithinTicks: within}
	const rounds = 3
	var guard search.Result
	var filtered []search.Match
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		if guard, err = eng.FindTemporalContext(ctx, p, climit); err != nil {
			return nil, err
		}
	}
	res.GuardMs = float64(time.Since(t0).Microseconds()) / 1000 / rounds
	t0 = time.Now()
	var full search.Result
	for i := 0; i < rounds; i++ {
		if full, err = eng.FindTemporalContext(ctx, p, limit); err != nil {
			return nil, err
		}
		filtered = span(full)
	}
	res.PostFilterMs = float64(time.Since(t0).Microseconds()) / 1000 / rounds

	res.Unconstrained = len(full.Matches)
	res.Constrained = len(guard.Matches)
	if len(filtered) != len(guard.Matches) {
		return nil, fmt.Errorf("constraints exhibit: guard found %d matches, post-filter %d", len(guard.Matches), len(filtered))
	}
	for i := range filtered {
		if filtered[i] != guard.Matches[i] {
			return nil, fmt.Errorf("constraints exhibit: match %d differs: %v vs %v", i, guard.Matches[i], filtered[i])
		}
	}
	return res, nil
}
