// Package serveload is the tgminerd serving-tier load-generator exhibit.
// It lives beside (not inside) internal/experiments because it drives the
// real serve.Server, which fronts the tgminer facade — and the facade's
// in-package bench suite imports internal/experiments, so folding this
// exhibit into that package would close an import cycle.
package serveload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"tgminer"
	"tgminer/internal/experiments"
	"tgminer/internal/serve"
	"tgminer/internal/tgraph"
)

// ServeLoadCell is one measured configuration of the tgminerd load
// generator: K HTTP producers ingesting concurrently with M HTTP consumers
// querying, against a K-shard live engine.
type ServeLoadCell struct {
	Producers int
	Consumers int
	Cache     bool
	// Idle marks the repeated-dashboard regime: producers off, the same
	// query shapes replayed against a quiesced engine — the generation-keyed
	// cache's designed win.
	Idle bool

	Seconds    float64
	Ingested   int     // events appended during the window
	IngestRate float64 // events/sec sustained through HTTP
	Queries    int
	QPS        float64
	P50Ms      float64
	P99Ms      float64
	HitPct     float64 // result-cache hit rate, as reported by /v1/statsz
}

// ServeLoadResult is the tgminerd serving-tier exhibit: per K×M cell, query
// latency and sustained ingest rate with the result cache off, on under
// live ingest, and on against a quiesced engine.
type ServeLoadResult struct {
	Cells []ServeLoadCell
	Cores int
}

// serveLoadSources picks one source entity per shard (probing the facade's
// first-touch NodeID assignment), because the sharded engine's clock
// contract — strictly increasing per shard — requires each producer to own
// its shard's timeline, the PR 5 one-producer-per-partition deployment.
func serveLoadSources(eng *tgminer.LiveEngine, shards int) ([]string, error) {
	srcs := make([]string, shards)
	owned := make([]bool, shards)
	found := 0
	for probe := 0; found < shards; probe++ {
		if probe > 4096 {
			return nil, fmt.Errorf("serve: no source entity found for every shard after %d probes", probe)
		}
		name := fmt.Sprintf("src#%d", probe)
		id := eng.NodeWithLabel(name, "src")
		if s := tgraph.NodeShard(id, shards); !owned[s] {
			owned[s] = true
			srcs[s] = name
			found++
		}
	}
	return srcs, nil
}

// ServeLoad drives a real serve.Server over HTTP at each K×M size (default
// 1×1, 4×4, 8×16) for roughly window per cell, measuring sustained ingest
// rate and query latency percentiles in three regimes per size: cache off,
// cache on under live ingest, and cache on with ingest idle.
func ServeLoad(ctx context.Context, sizes [][2]int, window time.Duration) (*ServeLoadResult, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{1, 1}, {4, 4}, {8, 16}}
	}
	if window <= 0 {
		window = 600 * time.Millisecond
	}
	out := &ServeLoadResult{Cores: runtime.GOMAXPROCS(0)}
	for _, km := range sizes {
		for _, regime := range []struct{ cache, idle bool }{
			{false, false}, {true, false}, {true, true},
		} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cell, err := serveLoadCell(ctx, km[0], km[1], regime.cache, regime.idle, window)
			if err != nil {
				return nil, fmt.Errorf("serve %dx%d (cache=%v idle=%v): %w", km[0], km[1], regime.cache, regime.idle, err)
			}
			out.Cells = append(out.Cells, *cell)
		}
	}
	return out, nil
}

func serveLoadCell(ctx context.Context, producers, consumers int, cache, idle bool, window time.Duration) (*ServeLoadCell, error) {
	const seedPerShard = 2000
	const batch = 100
	eng := tgminer.NewLiveEngine(nil, tgminer.LiveOptions{Shards: producers})
	srcs, err := serveLoadSources(eng, producers)
	if err != nil {
		return nil, err
	}
	// Seed every shard so consumers have matches from the first request.
	// Producer w owns timestamps congruent to w mod producers: strictly
	// increasing per shard, globally unique.
	next := make([]int64, producers)
	for w := 0; w < producers; w++ {
		dst := fmt.Sprintf("dst#%d", w)
		eng.NodeWithLabel(dst, "dst")
		for i := 0; i < seedPerShard; i++ {
			if err := eng.Append(srcs[w], dst, int64(w)+1+int64(i)*int64(producers)); err != nil {
				return nil, err
			}
		}
		next[w] = int64(seedPerShard)
	}

	cacheEntries := -1 // disabled
	if cache {
		cacheEntries = 256
	}
	srv := serve.New(serve.Config{Engine: eng, CacheEntries: cacheEntries})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	post := func(path string, v any) (*http.Response, error) {
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	}

	runCtx, cancel := context.WithTimeout(ctx, window)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, producers+consumers)
	start := time.Now()

	ingested := make([]int, producers)
	if !idle {
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				dst := fmt.Sprintf("dst#%d", w)
				for runCtx.Err() == nil {
					evs := make([]serve.Event, batch)
					for i := range evs {
						evs[i] = serve.Event{Time: int64(w) + 1 + (next[w]+int64(i))*int64(producers), Src: srcs[w], Dst: dst}
					}
					resp, err := post("/v1/events", serve.IngestRequest{Events: evs})
					if err != nil {
						if runCtx.Err() == nil {
							errs <- err
						}
						return
					}
					var ir serve.IngestResponse
					jerr := json.NewDecoder(resp.Body).Decode(&ir)
					resp.Body.Close()
					if jerr != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests) {
						errs <- fmt.Errorf("ingest status %d (%v)", resp.StatusCode, jerr)
						return
					}
					next[w] += int64(ir.Appended)
					ingested[w] += ir.Appended
				}
			}(w)
		}
	}

	// Consumers cycle through four query shapes (distinct windows, so
	// distinct cache keys): a dashboard replaying the same panel set.
	windows := []int64{2, 4, 8, 16}
	latencies := make([][]float64, consumers)
	counts := make([]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; runCtx.Err() == nil; i++ {
				q := serve.QueryRequest{
					Nodes: []string{"src", "dst"}, Edges: []serve.QueryEdge{{Src: 0, Dst: 1}},
					Window: windows[i%len(windows)], Limit: 64,
				}
				t0 := time.Now()
				resp, err := post("/v1/query/temporal", q)
				if err != nil {
					if runCtx.Err() == nil {
						errs <- err
					}
					return
				}
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d (%v)", resp.StatusCode, rerr)
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds()*1000)
				counts[c]++
			}
		}(c)
	}

	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < window {
		elapsed = window
	}
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cell := &ServeLoadCell{
		Producers: producers, Consumers: consumers, Cache: cache, Idle: idle,
		Seconds: elapsed.Seconds(),
	}
	var all []float64
	for c := range latencies {
		all = append(all, latencies[c]...)
		cell.Queries += counts[c]
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no queries completed in %s", window)
	}
	sort.Float64s(all)
	cell.P50Ms = all[len(all)/2]
	cell.P99Ms = all[(len(all)*99)/100]
	cell.QPS = float64(cell.Queries) / elapsed.Seconds()
	for _, n := range ingested {
		cell.Ingested += n
	}
	cell.IngestRate = float64(cell.Ingested) / elapsed.Seconds()

	resp, err := client.Get(ts.URL + "/v1/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var stz serve.StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		return nil, err
	}
	cell.HitPct = stz.Server.CacheHitRate
	return cell, nil
}

// Render prints the serving-tier load matrix.
func (r *ServeLoadResult) Render() string {
	t := &experiments.Table{
		Title:   "tgminerd serving tier: HTTP ingest + query load (K producers x M consumers)",
		Headers: []string{"KxM", "Regime", "Ingest ev/s", "Queries", "q/s", "p50 ms", "p99 ms", "Cache hit%"},
	}
	for _, c := range r.Cells {
		regime := "cache off"
		switch {
		case c.Idle:
			regime = "cache on, idle"
		case c.Cache:
			regime = "cache on, live"
		}
		ingest := fmt.Sprintf("%.0f", c.IngestRate)
		if c.Idle {
			ingest = "-"
		}
		t.AddRow(fmt.Sprintf("%dx%d", c.Producers, c.Consumers), regime, ingest,
			fmt.Sprintf("%d", c.Queries), fmt.Sprintf("%.0f", c.QPS),
			fmt.Sprintf("%.3f", c.P50Ms), fmt.Sprintf("%.3f", c.P99Ms),
			fmt.Sprintf("%.1f", 100*c.HitPct))
	}
	t.AddNote("cache keys include the per-shard generation cut, so under live ingest hits only occur between appends; the 'idle' rows are the repeated-dashboard regime the cache is designed for (%d core(s) here)", r.Cores)
	return t.String()
}
