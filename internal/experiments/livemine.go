package experiments

import (
	"context"
	"fmt"
	"time"

	"tgminer/internal/miner"
	"tgminer/internal/search"
	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// LiveMineRound is one re-mine over the evolving stream set: how much
// changed, how much of the search the incremental session reused, and the
// warm-vs-cold latency for the identical result.
type LiveMineRound struct {
	Name         string
	DirtyStreams int
	Seeds        int
	DirtySeeds   int
	Explored     int
	ReusePct     float64
	WarmSec      float64
	ColdSec      float64
	BestScore    float64
	// Drift vs the previous round's best set.
	NewPatterns     int
	DroppedPatterns int
	ScoreShifted    bool
}

// LiveMineResult is the continuous-mining exhibit: live ingestion streams
// with periodic re-mines, comparing an incremental miner.Session (warm)
// against batch re-mining (cold) on identical data each round. Not a paper
// exhibit — the paper's miner was offline — but its deployment setting
// (Section 1: continuously monitored syscall graphs) made continuous
// re-mining the obvious extension.
type LiveMineResult struct {
	Streams  int
	MaxEdges int
	Rounds   []LiveMineRound
}

// liveStream is one monitored entity's live engine plus the node handles
// needed to keep appending to it.
type liveStream struct {
	l     *search.ShardedLive
	nodes []tgraph.NodeID
}

// replayStream feeds a training graph's events into a fresh live engine.
func replayStream(g *tgraph.Graph) (*liveStream, error) {
	s := &liveStream{l: search.NewSharded(search.LiveOptions{Shards: 1})}
	for _, lb := range g.Labels() {
		s.nodes = append(s.nodes, s.l.AddNode(lb))
	}
	for _, e := range g.Edges() {
		if err := s.l.Append(s.nodes[e.Src], s.nodes[e.Dst], e.Time); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// graph cuts the stream's current live edge set as an immutable graph.
// Unchanged streams produce content-identical cuts, which the session
// recognizes by content stamp and treats as clean.
func (s *liveStream) graph() *tgraph.Graph { return s.l.Snapshot().Graph() }

// ingest appends n fresh events between the stream's first and last
// entities, dirtying every seed the stream supports.
func (s *liveStream) ingest(n int) error {
	t := s.l.LastTime()
	for i := 0; i < n; i++ {
		t++
		if err := s.l.Append(s.nodes[0], s.nodes[len(s.nodes)-1], t); err != nil {
			return err
		}
	}
	return nil
}

// LiveMine replays each behavior graph into its own live ingestion stream
// (background graphs become the negative streams), then alternates ingest
// and re-mine rounds at growing dirty fractions. Every round mines twice —
// warm through one persistent incremental session, cold through a batch
// MineContext — on the same snapshots, verifies the results agree, and
// reports latency, seed reuse, and best-set drift.
//
// The exhibit generates its own corpus (>= 50 streams per class) rather
// than reusing env.Data: at quick scale a full mine finishes in well under
// a millisecond, where the session's fixed bookkeeping (stamps,
// fingerprints, classification) would drown the exploration savings it
// exists to show.
func LiveMine(ctx context.Context, env *Env) (*LiveMineResult, error) {
	n := maxInt(50, env.Scale.GraphsPerBehavior)
	ds := sysgen.Generate(sysgen.Config{
		Scale:             env.Scale.SizeFactor,
		GraphsPerBehavior: n,
		BackgroundGraphs:  n,
		Seed:              env.Scale.Seed + 2000,
		Behaviors:         []string{"sshd-login"},
	})
	posG := ds.Behaviors[0].Graphs
	negG := ds.Background

	posStreams := make([]*liveStream, len(posG))
	for i, g := range posG {
		s, err := replayStream(g)
		if err != nil {
			return nil, err
		}
		posStreams[i] = s
	}
	negStreams := make([]*liveStream, len(negG))
	for i, g := range negG {
		s, err := replayStream(g)
		if err != nil {
			return nil, err
		}
		negStreams[i] = s
	}

	opts := miner.TGMinerOptions()
	opts.MaxEdges = env.Scale.QuerySize
	opts.Parallelism = 1 // stable single-core latency; results are identical at any level
	ses := miner.NewSession(opts)

	out := &LiveMineResult{
		Streams:  len(posStreams) + len(negStreams),
		MaxEdges: opts.MaxEdges,
	}
	// Fractional-dirty rounds ingest into background streams: the realistic
	// continuous-monitoring update (ambient system activity churns, the
	// labeled behavior corpus is stable). Dirtying a behavior stream instead
	// is the seed-granularity worst case — it supports every discriminative
	// seed — so it gets its own honestly-labeled round.
	tenPct := maxInt(1, len(negStreams)/10)
	rounds := []struct {
		name  string
		dirty func() (int, error)
	}{
		{"cold start", func() (int, error) { return 0, nil }},
		{"unchanged", func() (int, error) { return 0, nil }},
		{"1 bg stream", func() (int, error) { return 1, negStreams[0].ingest(3) }},
		{"10% bg", func() (int, error) {
			for i := 0; i < tenPct; i++ {
				if err := negStreams[i].ingest(3); err != nil {
					return 0, err
				}
			}
			return tenPct, nil
		}},
		{"50% bg", func() (int, error) {
			n := maxInt(1, len(negStreams)/2)
			for i := 0; i < n; i++ {
				if err := negStreams[i].ingest(3); err != nil {
					return 0, err
				}
			}
			return n, nil
		}},
		{"1 behavior (worst)", func() (int, error) { return 1, posStreams[0].ingest(3) }},
		{"evict+append", func() (int, error) {
			for i := 0; i < 2 && i < len(posStreams); i++ {
				s := posStreams[i]
				// Slide the window past the stream's first two events.
				cut := s.graph()
				if cut.NumEdges() > 2 {
					s.l.EvictBefore(cut.EdgeAt(2).Time)
				}
			}
			// Streams 0 and 1 evicted; stream 0 also appends.
			return minInt(2, len(posStreams)), posStreams[0].ingest(2)
		}},
	}

	var prevKeys map[string]bool
	var prevBest float64
	for _, r := range rounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dirty, err := r.dirty()
		if err != nil {
			return nil, err
		}
		pos := make([]*tgraph.Graph, len(posStreams))
		for i, s := range posStreams {
			pos[i] = s.graph()
		}
		neg := make([]*tgraph.Graph, len(negStreams))
		for i, s := range negStreams {
			neg[i] = s.graph()
		}

		t0 := time.Now()
		warm, err := ses.MineContext(ctx, pos, neg)
		warmSec := time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		cold, err := miner.MineContext(ctx, pos, neg, opts)
		coldSec := time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		if warm.BestScore != cold.BestScore || warm.TieCount != cold.TieCount || len(warm.Best) != len(cold.Best) {
			return nil, fmt.Errorf("livemine %q: warm (score %v, %d ties) diverges from cold (score %v, %d ties)",
				r.name, warm.BestScore, warm.TieCount, cold.BestScore, cold.TieCount)
		}

		keys := make(map[string]bool, len(warm.Best))
		for _, sp := range warm.Best {
			keys[sp.Pattern.Key()] = true
		}
		row := LiveMineRound{
			Name:         r.name,
			DirtyStreams: dirty,
			WarmSec:      warmSec,
			ColdSec:      coldSec,
			BestScore:    warm.BestScore,
		}
		st := ses.Stats()
		row.Seeds = st.LastSeeds
		row.DirtySeeds = st.LastDirty
		row.Explored = st.LastExplored
		if st.LastSeeds > 0 {
			row.ReusePct = 100 * float64(st.Reused()) / float64(st.LastSeeds)
		}
		if prevKeys != nil {
			for k := range keys {
				if !prevKeys[k] {
					row.NewPatterns++
				}
			}
			for k := range prevKeys {
				if !keys[k] {
					row.DroppedPatterns++
				}
			}
			row.ScoreShifted = warm.BestScore != prevBest
		}
		prevKeys, prevBest = keys, warm.BestScore
		out.Rounds = append(out.Rounds, row)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render prints the continuous-mining rounds.
func (r *LiveMineResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Continuous mining: incremental session vs batch re-mine (%d live streams, maxEdges=%d)",
			r.Streams, r.MaxEdges),
		Headers: []string{"Round", "DirtyStreams", "Seeds", "DirtySeeds", "Reuse", "Warm", "Cold", "Speedup", "Drift"},
	}
	for _, row := range r.Rounds {
		drift := "-"
		if row.NewPatterns > 0 || row.DroppedPatterns > 0 || row.ScoreShifted {
			drift = fmt.Sprintf("+%d/-%d", row.NewPatterns, row.DroppedPatterns)
			if row.ScoreShifted {
				drift += " F*"
			}
		}
		sp := "-"
		if row.WarmSec > 0 {
			sp = ratio(row.ColdSec, row.WarmSec)
		}
		t.AddRow(row.Name, intStr(row.DirtyStreams), intStr(row.Seeds), intStr(row.DirtySeeds),
			fmt.Sprintf("%.0f%%", row.ReusePct), msStr(row.WarmSec), msStr(row.ColdSec), sp, drift)
	}
	t.AddNote("warm and cold results are verified identical every round (Best, BestScore, TieCount); reuse counts clean seeds replayed without exploration; drift is +new/-dropped best patterns and F* shifts vs the previous round")
	return t.String()
}

func msStr(s float64) string { return fmt.Sprintf("%.2fms", s*1000) }
