package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyScale keeps every driver fast enough for unit testing.
func tinyScale() Scale {
	return Scale{
		Name:              "tiny",
		SizeFactor:        0.2,
		GraphsPerBehavior: 6,
		BackgroundGraphs:  12,
		TestInstances:     24,
		QuerySize:         3,
		TopK:              3,
		MaxPatternEdges:   4,
		Behaviors:         []string{"bzip2-decompress", "gzip-decompress", "scp-download", "sshd-login"},
		Seed:              3,
		MatchLimit:        50000,
	}
}

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(tinyScale())
}

func TestTable1(t *testing.T) {
	env := tinyEnv(t)
	res := Table1(env)
	if len(res.Rows) != 5 { // 4 behaviors + background
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows[:4] {
		if row.AvgEdges <= 0 || row.AvgNodes <= 0 || row.Labels <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	// Larger behaviors stay larger under scaling.
	var bzip, sshd Table1Row
	for _, row := range res.Rows {
		switch row.Behavior {
		case "bzip2-decompress":
			bzip = row
		case "sshd-login":
			sshd = row
		}
	}
	if sshd.AvgEdges <= bzip.AvgEdges {
		t.Errorf("sshd (%f) should have more edges than bzip2 (%f)", sshd.AvgEdges, bzip.AvgEdges)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Errorf("render missing title")
	}
}

func TestTable2AndRender(t *testing.T) {
	env := tinyEnv(t)
	res, err := Table2(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	prec, rec := res.Averages()
	// TGMiner must dominate on average precision at any scale.
	if prec[2] < prec[0] || prec[2] < prec[1]-0.05 {
		t.Errorf("TGMiner avg precision %.3f not dominant (NodeSet %.3f, Ntemp %.3f)",
			prec[2], prec[0], prec[1])
	}
	if rec[2] <= 0.4 {
		t.Errorf("TGMiner avg recall %.3f too low", rec[2])
	}
	out := res.Render()
	if !strings.Contains(out, "scp-download") || !strings.Contains(out, "Average") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFigure10(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure10(context.Background(), env, "sshd-login")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	if !strings.Contains(res.Render(), "sshd-login") {
		t.Errorf("render missing behavior name")
	}
	// Unknown behavior falls back to the first available.
	res2, err := Figure10(context.Background(), env, "")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Behavior != "sshd-login" {
		t.Errorf("default behavior = %q", res2.Behavior)
	}
}

func TestFigure11(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure11(context.Background(), env, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Larger queries should not lose precision.
	if res.Points[1].Precision+0.05 < res.Points[0].Precision {
		t.Errorf("precision dropped with size: %v", res.Points)
	}
	if !strings.Contains(res.Render(), "Figure 11") {
		t.Errorf("render missing title")
	}
}

func TestFigure12(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure12(context.Background(), env, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Errorf("render missing title")
	}
}

func TestFigure13(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure13(context.Background(), env, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"small", "medium", "large"} {
		if _, ok := res.Seconds[class]["TGMiner"]; !ok {
			t.Errorf("missing TGMiner time for %s", class)
		}
	}
	if !res.Skipped["medium"]["SupPrune"] || !res.Skipped["large"]["SupPrune"] {
		t.Errorf("SupPrune should be skipped for medium/large by default")
	}
	if res.Skipped["small"]["SupPrune"] {
		t.Errorf("SupPrune should run for small")
	}
	if !strings.Contains(res.Render(), "Figure 13") {
		t.Errorf("render missing title")
	}
}

func TestFigure14(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure14(context.Background(), env, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds["small"]) != 2 {
		t.Fatalf("sweep incomplete: %+v", res.Seconds)
	}
	if !strings.Contains(res.Render(), "Figure 14") {
		t.Errorf("render missing title")
	}
}

func TestTable3(t *testing.T) {
	env := tinyEnv(t)
	res, err := Table3(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for class, rates := range res.Rates {
		if rates[0] < 0 || rates[0] > 1 || rates[1] < 0 || rates[1] > 1 {
			t.Errorf("%s rates out of range: %v", class, rates)
		}
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Errorf("render missing title")
	}
}

func TestFigure15(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure15(context.Background(), env, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds["small"]) != 2 {
		t.Fatalf("sweep incomplete")
	}
	if !strings.Contains(res.Render(), "Figure 15") {
		t.Errorf("render missing title")
	}
}

func TestFigure16(t *testing.T) {
	env := tinyEnv(t)
	res, err := Figure16(context.Background(), env, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	ss := res.Seconds["small"]
	if len(ss) != 2 {
		t.Fatalf("sweep incomplete")
	}
	if !strings.Contains(res.Render(), "SYN-2") {
		t.Errorf("render missing dataset names")
	}
}

func TestScaleHelpers(t *testing.T) {
	q := Quick()
	if q.GraphsPerBehavior <= 0 || q.SizeFactor <= 0 {
		t.Errorf("Quick scale degenerate: %+v", q)
	}
	f := Full()
	if f.GraphsPerBehavior != 100 || f.BackgroundGraphs != 10000 {
		t.Errorf("Full scale wrong: %+v", f)
	}
	h := q.WithFactor(0.5)
	if h.GraphsPerBehavior != q.GraphsPerBehavior/2 {
		t.Errorf("WithFactor: %d", h.GraphsPerBehavior)
	}
}
