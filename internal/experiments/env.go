// Package experiments regenerates every table and figure of the TGMiner
// paper's evaluation (Section 6) on the synthetic corpus of
// internal/sysgen. Each driver returns typed rows and renders a paper-style
// text table; cmd/experiments runs them all, and bench_test.go exposes one
// benchmark per table/figure.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data, scaled sizes); the drivers embed the paper's reported values where
// applicable so the shape comparison — who wins, by how much, where
// saturation happens — is visible in the output.
package experiments

import (
	"sync"

	"tgminer/internal/rank"
	"tgminer/internal/search"
	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// Scale sizes an experiment run. Quick() completes in CI time; Full()
// approaches the paper's data sizes (hours of compute).
type Scale struct {
	Name              string
	SizeFactor        float64
	GraphsPerBehavior int
	BackgroundGraphs  int
	TestInstances     int
	QuerySize         int
	TopK              int
	MaxPatternEdges   int
	Behaviors         []string
	Seed              int64
	// MatchLimit caps matches per query during evaluation.
	MatchLimit int
}

// Quick returns the default scaled-down configuration: every experiment
// finishes in seconds to low minutes.
func Quick() Scale {
	return Scale{
		Name:              "quick",
		SizeFactor:        0.25,
		GraphsPerBehavior: 10,
		BackgroundGraphs:  40,
		TestInstances:     60,
		QuerySize:         4,
		TopK:              5,
		MaxPatternEdges:   8,
		Seed:              1,
		MatchLimit:        200000,
	}
}

// Full returns a configuration approaching the paper's setup (100 graphs
// per behavior, 10,000 background graphs, 10,000 test instances). Running
// all experiments at this scale takes hours.
func Full() Scale {
	return Scale{
		Name:              "full",
		SizeFactor:        1.0,
		GraphsPerBehavior: 100,
		BackgroundGraphs:  10000,
		TestInstances:     10000,
		QuerySize:         6,
		TopK:              5,
		MaxPatternEdges:   45,
		Seed:              1,
		MatchLimit:        1000000,
	}
}

// WithFactor scales the graph counts of s by f (used by the
// training-amount sweeps of Figures 12 and 15).
func (s Scale) WithFactor(f float64) Scale {
	out := s
	out.GraphsPerBehavior = maxInt(1, int(float64(s.GraphsPerBehavior)*f))
	out.BackgroundGraphs = maxInt(1, int(float64(s.BackgroundGraphs)*f))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Env is a generated corpus plus lazily built test machinery shared by the
// experiment drivers.
type Env struct {
	Scale Scale
	Data  *sysgen.Dataset

	timelineOnce sync.Once
	timeline     *sysgen.Timeline
	engine       *search.Engine

	interestOnce sync.Once
	interest     *rank.Interest
}

// NewEnv generates the training corpus for the scale.
func NewEnv(s Scale) *Env {
	ds := sysgen.Generate(sysgen.Config{
		Scale:             s.SizeFactor,
		GraphsPerBehavior: s.GraphsPerBehavior,
		BackgroundGraphs:  s.BackgroundGraphs,
		Seed:              s.Seed,
		Behaviors:         s.Behaviors,
	})
	return &Env{Scale: s, Data: ds}
}

// Timeline lazily generates the test timeline and its search engine.
func (e *Env) Timeline() (*sysgen.Timeline, *search.Engine) {
	e.timelineOnce.Do(func() {
		e.timeline = sysgen.GenerateTimeline(sysgen.TimelineConfig{
			Instances: e.Scale.TestInstances,
			Scale:     e.Scale.SizeFactor,
			Seed:      e.Scale.Seed + 1000,
			Behaviors: e.Scale.Behaviors,
		}, e.Data.Dict)
		e.engine = search.NewEngine(e.timeline.Graph)
	})
	return e.timeline, e.engine
}

// Interest lazily builds the Appendix M ranking function over all training
// graphs (behaviors plus background).
func (e *Env) Interest() *rank.Interest {
	e.interestOnce.Do(func() {
		var all []*tgraph.Graph
		for _, b := range e.Data.Behaviors {
			all = append(all, b.Graphs...)
		}
		all = append(all, e.Data.Background...)
		e.interest = rank.NewInterest(all, e.Data.Dict, nil)
	})
	return e.interest
}

// TruthIntervals extracts the ground-truth intervals of one behavior.
func TruthIntervals(tl *sysgen.Timeline, behavior string) []search.Interval {
	var out []search.Interval
	for _, inst := range tl.Truth {
		if inst.Behavior == behavior {
			out = append(out, search.Interval{Start: inst.Start, End: inst.End})
		}
	}
	return out
}

// BehaviorNames lists the behaviors present in the environment.
func (e *Env) BehaviorNames() []string {
	out := make([]string, len(e.Data.Behaviors))
	for i, b := range e.Data.Behaviors {
		out[i] = b.Spec.Name
	}
	return out
}
