package experiments

import (
	"context"
	"fmt"

	"tgminer/internal/core"
	"tgminer/internal/search"
	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// PaperTable2 holds the paper's reported precision/recall (percent) per
// behavior for NodeSet, Ntemp, and TGMiner, in that order.
var PaperTable2 = map[string][6]float64{
	"bzip2-decompress": {100, 100, 100, 100, 100, 100},
	"gzip-decompress":  {96.6, 100, 100, 100, 100, 100},
	"wget-download":    {96.5, 100, 100, 93.6, 93.4, 93.4},
	"ftp-download":     {100, 100, 100, 100, 96.1, 96.1},
	"scp-download":     {13.8, 59.4, 100, 11.2, 91.3, 91.3},
	"gcc-compile":      {69.7, 81.2, 94.3, 89.2, 89.4, 87.6},
	"g++-compile":      {73.4, 91.3, 95.2, 84.5, 85.3, 85.3},
	"ftpd-login":       {76.6, 81.8, 94.1, 100, 89.7, 86.8},
	"ssh-login":        {33.8, 64.3, 93.9, 78.7, 87.2, 85.9},
	"sshd-login":       {43.4, 59.6, 99.9, 99.8, 99.9, 99.9},
	"apt-get-update":   {50.3, 79.3, 95.9, 47.6, 84.5, 82.4},
	"apt-get-install":  {68.3, 81.7, 95.7, 35.6, 86.3, 83.9},
}

// AccuracyRow is one behavior's evaluation under the three systems.
type AccuracyRow struct {
	Behavior string
	NodeSet  search.Metrics
	Ntemp    search.Metrics
	TGMiner  search.Metrics
}

// Table2Result reproduces Table 2 (query accuracy on different behaviors).
type Table2Result struct {
	Rows  []AccuracyRow
	Scale Scale
}

// Table2 mines all three query families for every behavior and evaluates
// them against the test timeline.
func Table2(ctx context.Context, env *Env) (*Table2Result, error) {
	tl, engine := env.Timeline()
	ev := &core.Evaluator{Engine: engine, Window: tl.Window, Limit: env.Scale.MatchLimit}
	in := env.Interest()
	out := &Table2Result{Scale: env.Scale}
	for _, name := range env.BehaviorNames() {
		pos := env.Data.ByName(name)
		truth := TruthIntervals(tl, name)
		cfg := core.QueryConfig{QuerySize: env.Scale.QuerySize, TopK: env.Scale.TopK, Interest: in}

		bq, err := core.DiscoverQueriesContext(ctx, pos, env.Data.Background, cfg)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", name, err)
		}
		nq, err := core.DiscoverNonTemporalQueries(pos, env.Data.Background, cfg)
		if err != nil {
			return nil, fmt.Errorf("table2 %s ntemp: %w", name, err)
		}
		sq, err := core.DiscoverNodeSetQuery(pos, env.Data.Background, cfg, in)
		if err != nil {
			return nil, fmt.Errorf("table2 %s nodeset: %w", name, err)
		}
		out.Rows = append(out.Rows, AccuracyRow{
			Behavior: name,
			NodeSet:  ev.EvalNodeSet(sq, truth),
			Ntemp:    ev.EvalNonTemporal(nq.Queries, truth),
			TGMiner:  ev.EvalTemporal(bq.Queries, truth),
		})
	}
	return out, nil
}

// Averages returns mean precision and recall per system, in NodeSet, Ntemp,
// TGMiner order.
func (r *Table2Result) Averages() (prec, rec [3]float64) {
	if len(r.Rows) == 0 {
		return
	}
	for _, row := range r.Rows {
		prec[0] += row.NodeSet.Precision()
		prec[1] += row.Ntemp.Precision()
		prec[2] += row.TGMiner.Precision()
		rec[0] += row.NodeSet.Recall()
		rec[1] += row.Ntemp.Recall()
		rec[2] += row.TGMiner.Recall()
	}
	n := float64(len(r.Rows))
	for i := range prec {
		prec[i] /= n
		rec[i] /= n
	}
	return prec, rec
}

// Render produces the paper-style table with paper values alongside.
func (r *Table2Result) Render() string {
	t := &Table{
		Title: "Table 2: Query accuracy on different behaviors (measured% / paper%)",
		Headers: []string{"Behavior",
			"P.NodeSet", "P.Ntemp", "P.TGMiner",
			"R.NodeSet", "R.Ntemp", "R.TGMiner"},
	}
	cell := func(measured float64, paper float64) string {
		return fmt.Sprintf("%s/%.1f", pct(measured), paper)
	}
	for _, row := range r.Rows {
		p := PaperTable2[row.Behavior]
		t.AddRow(row.Behavior,
			cell(row.NodeSet.Precision(), p[0]),
			cell(row.Ntemp.Precision(), p[1]),
			cell(row.TGMiner.Precision(), p[2]),
			cell(row.NodeSet.Recall(), p[3]),
			cell(row.Ntemp.Recall(), p[4]),
			cell(row.TGMiner.Recall(), p[5]))
	}
	prec, rec := r.Averages()
	t.AddRow("Average",
		cell(prec[0], 68.5), cell(prec[1], 83.2), cell(prec[2], 97.4),
		cell(rec[0], 78.4), cell(rec[1], 91.9), cell(rec[2], 91.1))
	t.AddNote("scale=%s: %d graphs/behavior, %d background, %d test instances, query size %d",
		r.Scale.Name, r.Scale.GraphsPerBehavior, r.Scale.BackgroundGraphs,
		r.Scale.TestInstances, r.Scale.QuerySize)
	return t.String()
}

// Figure10Result holds example discovered patterns (paper Figure 10).
type Figure10Result struct {
	Behavior string
	Patterns []string // formatted top patterns
}

// Figure10 formats the top discovered patterns for the given behavior
// (default sshd-login if present).
func Figure10(ctx context.Context, env *Env, behavior string) (*Figure10Result, error) {
	if behavior == "" {
		behavior = "sshd-login"
	}
	pos := env.Data.ByName(behavior)
	if pos == nil {
		names := env.BehaviorNames()
		if len(names) == 0 {
			return nil, fmt.Errorf("figure10: no behaviors in environment")
		}
		behavior = names[0]
		pos = env.Data.ByName(behavior)
	}
	bq, err := core.DiscoverQueriesContext(ctx, pos, env.Data.Background, core.QueryConfig{
		QuerySize: env.Scale.QuerySize, TopK: 3, Interest: env.Interest(),
	})
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{Behavior: behavior}
	for _, q := range bq.Queries {
		out.Patterns = append(out.Patterns, q.Format(env.Data.Dict))
	}
	return out, nil
}

// Render prints the discovered patterns.
func (r *Figure10Result) Render() string {
	s := fmt.Sprintf("Figure 10: discovered discriminative patterns for %s\n", r.Behavior)
	for i, p := range r.Patterns {
		s += fmt.Sprintf("  #%d  %s\n", i+1, p)
	}
	return s
}

// SizePoint is one sweep point of Figure 11.
type SizePoint struct {
	Size      int
	Precision float64
	Recall    float64
}

// Figure11Result reproduces Figure 11 (accuracy vs query size).
type Figure11Result struct {
	Points []SizePoint
	Scale  Scale
}

// Figure11 sweeps query size and reports average precision/recall across
// behaviors.
func Figure11(ctx context.Context, env *Env, sizes []int) (*Figure11Result, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3, 4, 5, 6}
	}
	tl, engine := env.Timeline()
	ev := &core.Evaluator{Engine: engine, Window: tl.Window, Limit: env.Scale.MatchLimit}
	in := env.Interest()
	out := &Figure11Result{Scale: env.Scale}
	for _, size := range sizes {
		var sumP, sumR float64
		n := 0
		for _, name := range env.BehaviorNames() {
			pos := env.Data.ByName(name)
			bq, err := core.DiscoverQueriesContext(ctx, pos, env.Data.Background, core.QueryConfig{
				QuerySize: size, TopK: env.Scale.TopK, Interest: in,
			})
			if err != nil {
				return nil, fmt.Errorf("figure11 %s size %d: %w", name, size, err)
			}
			m := ev.EvalTemporal(bq.Queries, TruthIntervals(tl, name))
			sumP += m.Precision()
			sumR += m.Recall()
			n++
		}
		out.Points = append(out.Points, SizePoint{
			Size: size, Precision: sumP / float64(n), Recall: sumR / float64(n),
		})
	}
	return out, nil
}

// Render prints the sweep.
func (r *Figure11Result) Render() string {
	t := &Table{
		Title:   "Figure 11: Query accuracy with different query sizes (TGMiner)",
		Headers: []string{"QuerySize", "AvgPrecision", "AvgRecall"},
	}
	for _, p := range r.Points {
		t.AddRow(intStr(p.Size), f3(p.Precision), f3(p.Recall))
	}
	t.AddNote("paper: precision rises with size, recall declines slightly; both flatten past size 6")
	return t.String()
}

// FractionPoint is one sweep point of Figure 12.
type FractionPoint struct {
	Fraction  float64
	Precision float64
	Recall    float64
}

// Figure12Result reproduces Figure 12 (accuracy vs training amount).
type Figure12Result struct {
	Points []FractionPoint
	Scale  Scale
}

// Figure12 sweeps the fraction of training data used (first k graphs per
// set, as the paper does) and reports average accuracy.
func Figure12(ctx context.Context, env *Env, fractions []float64) (*Figure12Result, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	tl, engine := env.Timeline()
	ev := &core.Evaluator{Engine: engine, Window: tl.Window, Limit: env.Scale.MatchLimit}
	in := env.Interest()
	out := &Figure12Result{Scale: env.Scale}
	for _, frac := range fractions {
		var sumP, sumR float64
		n := 0
		for _, name := range env.BehaviorNames() {
			pos := takeFraction(env.Data.ByName(name), frac)
			neg := takeFraction(env.Data.Background, frac)
			bq, err := core.DiscoverQueriesContext(ctx, pos, neg, core.QueryConfig{
				QuerySize: env.Scale.QuerySize, TopK: env.Scale.TopK, Interest: in,
			})
			if err != nil {
				return nil, fmt.Errorf("figure12 %s frac %.2f: %w", name, frac, err)
			}
			m := ev.EvalTemporal(bq.Queries, TruthIntervals(tl, name))
			sumP += m.Precision()
			sumR += m.Recall()
			n++
		}
		out.Points = append(out.Points, FractionPoint{
			Fraction: frac, Precision: sumP / float64(n), Recall: sumR / float64(n),
		})
	}
	return out, nil
}

func takeFraction(graphs []*tgraph.Graph, frac float64) []*tgraph.Graph {
	k := int(float64(len(graphs)) * frac)
	if k < 1 {
		k = 1
	}
	if k > len(graphs) {
		k = len(graphs)
	}
	return graphs[:k]
}

// Render prints the sweep.
func (r *Figure12Result) Render() string {
	t := &Table{
		Title:   "Figure 12: Query accuracy with different amounts of used training data",
		Headers: []string{"Fraction", "AvgPrecision", "AvgRecall"},
	}
	for _, p := range r.Points {
		t.AddRow(f3(p.Fraction), f3(p.Precision), f3(p.Recall))
	}
	t.AddNote("paper: precision 91%% -> 97%% from 0.01 to 1.0 with diminishing returns")
	return t.String()
}

// Table1Result reproduces Table 1 (training-data statistics).
type Table1Result struct {
	Rows  []Table1Row
	Scale Scale
}

// Table1Row is one behavior's measured statistics.
type Table1Row struct {
	Behavior  string
	AvgNodes  float64
	AvgEdges  float64
	Labels    int
	SizeClass string
}

// Table1 measures the generated corpus statistics.
func Table1(env *Env) *Table1Result {
	out := &Table1Result{Scale: env.Scale}
	for _, bd := range env.Data.Behaviors {
		var nodes, edges int
		labels := map[tgraph.Label]bool{}
		for _, g := range bd.Graphs {
			nodes += g.NumNodes()
			edges += g.NumEdges()
			for l := range g.EndpointLabels() {
				labels[l] = true
			}
		}
		n := float64(len(bd.Graphs))
		out.Rows = append(out.Rows, Table1Row{
			Behavior:  bd.Spec.Name,
			AvgNodes:  float64(nodes) / n,
			AvgEdges:  float64(edges) / n,
			Labels:    len(labels),
			SizeClass: bd.Spec.Class,
		})
	}
	var nodes, edges int
	labels := map[tgraph.Label]bool{}
	for _, g := range env.Data.Background {
		nodes += g.NumNodes()
		edges += g.NumEdges()
		for l := range g.EndpointLabels() {
			labels[l] = true
		}
	}
	if n := len(env.Data.Background); n > 0 {
		out.Rows = append(out.Rows, Table1Row{
			Behavior: "background",
			AvgNodes: float64(nodes) / float64(n),
			AvgEdges: float64(edges) / float64(n),
			Labels:   len(labels), SizeClass: "-",
		})
	}
	return out
}

// Render prints the statistics with the paper's targets.
func (r *Table1Result) Render() string {
	t := &Table{
		Title:   "Table 1: Statistics in training data (measured, at scale)",
		Headers: []string{"Behavior", "Avg#nodes", "Avg#edges", "#labels", "Size", "Paper(n/e/l)"},
	}
	for _, row := range r.Rows {
		paper := "-"
		if spec, ok := sysgen.SpecByName(row.Behavior); ok {
			paper = fmt.Sprintf("%d/%d/%d", spec.Nodes, spec.Edges, spec.Labels)
		} else if row.Behavior == "background" {
			bg := sysgen.Background()
			paper = fmt.Sprintf("%d/%d/%d", bg.Nodes, bg.Edges, bg.Labels)
		}
		t.AddRow(row.Behavior, fmt.Sprintf("%.1f", row.AvgNodes), fmt.Sprintf("%.1f", row.AvgEdges),
			intStr(row.Labels), row.SizeClass, paper)
	}
	t.AddNote("sizes are scaled by factor %.2f; paper columns are the scale-1.0 targets", r.Scale.SizeFactor)
	return t.String()
}
