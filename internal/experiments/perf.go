package experiments

import (
	"context"
	"fmt"
	"time"

	"tgminer/internal/miner"
	"tgminer/internal/tgraph"
)

// AlgorithmNames lists the mining algorithm variants of Figure 13 in
// display order.
var AlgorithmNames = []string{"TGMiner", "PruneGI", "SubPrune", "LinearScan", "PruneVF2", "SupPrune"}

func optionsFor(name string) miner.Options {
	switch name {
	case "TGMiner":
		return miner.TGMinerOptions()
	case "PruneGI":
		return miner.PruneGIOptions()
	case "SubPrune":
		return miner.SubPruneOptions()
	case "LinearScan":
		return miner.LinearScanOptions()
	case "PruneVF2":
		return miner.PruneVF2Options()
	case "SupPrune":
		return miner.SupPruneOptions()
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %q", name))
	}
}

// SizeClasses lists the paper's behavior size classes in display order.
var SizeClasses = []string{"small", "medium", "large"}

func behaviorsInClass(env *Env, class string) []string {
	var out []string
	for _, bd := range env.Data.Behaviors {
		if bd.Spec.Class == class {
			out = append(out, bd.Spec.Name)
		}
	}
	return out
}

// mineBehavior runs one mining configuration on one behavior and returns
// the elapsed wall time and stats. Unless the caller explicitly sets
// Parallelism, the run is pinned to one worker: the paper exhibits time and
// count a single-threaded search, and letting GOMAXPROCS leak in would mix
// core-count scaling into numbers meant to reproduce it (ParallelScaling is
// the exhibit that sweeps workers on purpose).
func mineBehavior(ctx context.Context, env *Env, behavior string, opts miner.Options, maxEdges int) (time.Duration, miner.Stats, error) {
	opts.MaxEdges = maxEdges
	if opts.Parallelism == 0 {
		opts.Parallelism = 1
	}
	pos := env.Data.ByName(behavior)
	start := time.Now()
	res, err := miner.MineContext(ctx, pos, env.Data.Background, opts)
	if err != nil {
		return 0, miner.Stats{}, err
	}
	return time.Since(start), res.Stats, nil
}

// Figure13Result reproduces Figure 13: mining response time per algorithm
// per behavior size class.
type Figure13Result struct {
	// Seconds[class][algorithm] is the total mining time over the class's
	// behaviors.
	Seconds map[string]map[string]float64
	// Skipped[class][algorithm] marks runs skipped (paper: SupPrune did not
	// finish medium/large within 2 days).
	Skipped map[string]map[string]bool
	Scale   Scale
}

// Figure13 times every algorithm on every behavior class. When includeSlow
// is false, SupPrune is only run on the small class, mirroring the paper's
// DNF entries for medium/large.
func Figure13(ctx context.Context, env *Env, includeSlow bool) (*Figure13Result, error) {
	out := &Figure13Result{
		Seconds: map[string]map[string]float64{},
		Skipped: map[string]map[string]bool{},
		Scale:   env.Scale,
	}
	for _, class := range SizeClasses {
		out.Seconds[class] = map[string]float64{}
		out.Skipped[class] = map[string]bool{}
		behaviors := behaviorsInClass(env, class)
		for _, alg := range AlgorithmNames {
			if alg == "SupPrune" && class != "small" && !includeSlow {
				out.Skipped[class][alg] = true
				continue
			}
			var total time.Duration
			for _, name := range behaviors {
				d, _, err := mineBehavior(ctx, env, name, optionsFor(alg), env.Scale.MaxPatternEdges)
				if err != nil {
					return nil, fmt.Errorf("figure13 %s/%s: %w", alg, name, err)
				}
				total += d
			}
			out.Seconds[class][alg] = total.Seconds()
		}
	}
	return out, nil
}

// Render prints per-class response times with speedup vs TGMiner.
func (r *Figure13Result) Render() string {
	t := &Table{
		Title:   "Figure 13: Mining response time by algorithm and behavior size class",
		Headers: []string{"Class", "Algorithm", "Time", "vs TGMiner"},
	}
	for _, class := range SizeClasses {
		base := r.Seconds[class]["TGMiner"]
		for _, alg := range AlgorithmNames {
			if r.Skipped[class][alg] {
				t.AddRow(class, alg, "skipped (paper: DNF >2 days)", "-")
				continue
			}
			sec, ok := r.Seconds[class][alg]
			if !ok {
				continue
			}
			rel := "-"
			if base > 0 {
				rel = ratio(sec, base)
			}
			t.AddRow(class, alg, secs(sec), rel)
		}
	}
	t.AddNote("paper: TGMiner up to 6x faster than PruneGI, 17x than LinearScan, 32x than PruneVF2, 50x than SubPrune, 4x+ than SupPrune")
	return t.String()
}

// Figure14Result reproduces Figure 14: response time vs the largest pattern
// size allowed.
type Figure14Result struct {
	// Seconds[class] is parallel to Sizes.
	Sizes   []int
	Seconds map[string][]float64
	Scale   Scale
}

// Figure14 sweeps the maximum pattern size (paper: 5..45) for TGMiner on
// each class.
func Figure14(ctx context.Context, env *Env, sizes []int) (*Figure14Result, error) {
	if len(sizes) == 0 {
		if env.Scale.MaxPatternEdges >= 45 {
			sizes = []int{5, 15, 25, 35, 45}
		} else {
			sizes = []int{2, 4, 6, env.Scale.MaxPatternEdges}
		}
	}
	out := &Figure14Result{Sizes: sizes, Seconds: map[string][]float64{}, Scale: env.Scale}
	for _, class := range SizeClasses {
		behaviors := behaviorsInClass(env, class)
		for _, size := range sizes {
			var total time.Duration
			for _, name := range behaviors {
				d, _, err := mineBehavior(ctx, env, name, miner.TGMinerOptions(), size)
				if err != nil {
					return nil, fmt.Errorf("figure14 %s size %d: %w", name, size, err)
				}
				total += d
			}
			out.Seconds[class] = append(out.Seconds[class], total.Seconds())
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *Figure14Result) Render() string {
	t := &Table{
		Title:   "Figure 14: Response time vs largest explorable pattern size (TGMiner)",
		Headers: []string{"MaxSize", "Small", "Medium", "Large"},
	}
	for i, size := range r.Sizes {
		t.AddRow(intStr(size),
			secAt(r.Seconds["small"], i), secAt(r.Seconds["medium"], i), secAt(r.Seconds["large"], i))
	}
	t.AddNote("paper: time grows with max size, saturating once patterns exhaust; size 5 finishes within 10s for all behaviors")
	return t.String()
}

func secAt(xs []float64, i int) string {
	if i >= len(xs) {
		return "-"
	}
	return secs(xs[i])
}

// Table3Result reproduces Table 3: empirical pruning trigger probabilities.
type Table3Result struct {
	// Rates[class] holds subgraph and supergraph trigger rates.
	Rates map[string][2]float64
	Scale Scale
}

// PaperTable3 holds the paper's trigger probabilities (percent).
var PaperTable3 = map[string][2]float64{
	"small":  {71.8, 1.1},
	"medium": {61.0, 8.3},
	"large":  {62.2, 4.2},
}

// Table3 measures pruning trigger probabilities per size class.
func Table3(ctx context.Context, env *Env) (*Table3Result, error) {
	out := &Table3Result{Rates: map[string][2]float64{}, Scale: env.Scale}
	for _, class := range SizeClasses {
		var patterns, sub, sup int64
		for _, name := range behaviorsInClass(env, class) {
			// Trigger probabilities are stats counters, which depend on
			// worker interleaving; mineBehavior pins one worker so the
			// measured rates reproduce the single-threaded search.
			_, stats, err := mineBehavior(ctx, env, name, miner.TGMinerOptions(), env.Scale.MaxPatternEdges)
			if err != nil {
				return nil, fmt.Errorf("table3 %s: %w", name, err)
			}
			patterns += stats.PatternsExplored
			sub += stats.SubgraphPrunes
			sup += stats.SupergraphPrunes
		}
		if patterns > 0 {
			out.Rates[class] = [2]float64{
				float64(sub) / float64(patterns),
				float64(sup) / float64(patterns),
			}
		}
	}
	return out, nil
}

// Render prints trigger rates with the paper values.
func (r *Table3Result) Render() string {
	t := &Table{
		Title:   "Table 3: Empirical probabilities that pruning conditions trigger (measured% / paper%)",
		Headers: []string{"Pruning", "Small", "Medium", "Large"},
	}
	row := func(label string, idx int) []string {
		cells := []string{label}
		for _, class := range SizeClasses {
			p := PaperTable3[class]
			cells = append(cells, fmt.Sprintf("%s/%.1f", pct(r.Rates[class][idx]), p[idx]))
		}
		return cells
	}
	t.AddRow(row("Subgraph pruning", 0)...)
	t.AddRow(row("Supergraph pruning", 1)...)
	t.AddNote("paper: subgraph pruning dominates (62-72%%); supergraph pruning adds 1-8%%")
	return t.String()
}

// Figure15Result reproduces Figure 15: response time vs amount of training
// data.
type Figure15Result struct {
	Fractions []float64
	Seconds   map[string][]float64
	Scale     Scale
}

// Figure15 sweeps the fraction of training data used and times TGMiner per
// class.
func Figure15(ctx context.Context, env *Env, fractions []float64) (*Figure15Result, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	out := &Figure15Result{Fractions: fractions, Seconds: map[string][]float64{}, Scale: env.Scale}
	for _, class := range SizeClasses {
		behaviors := behaviorsInClass(env, class)
		for _, frac := range fractions {
			var total time.Duration
			for _, name := range behaviors {
				pos := takeFraction(env.Data.ByName(name), frac)
				neg := takeFraction(env.Data.Background, frac)
				opts := miner.TGMinerOptions()
				opts.MaxEdges = env.Scale.MaxPatternEdges
				opts.Parallelism = 1 // paper exhibit: single-threaded timing
				start := time.Now()
				if _, err := miner.MineContext(ctx, pos, neg, opts); err != nil {
					return nil, fmt.Errorf("figure15 %s frac %.2f: %w", name, frac, err)
				}
				total += time.Since(start)
			}
			out.Seconds[class] = append(out.Seconds[class], total.Seconds())
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *Figure15Result) Render() string {
	t := &Table{
		Title:   "Figure 15: Response time vs amount of used training data (TGMiner)",
		Headers: []string{"Fraction", "Small", "Medium", "Large"},
	}
	for i, f := range r.Fractions {
		t.AddRow(f3(f),
			secAt(r.Seconds["small"], i), secAt(r.Seconds["medium"], i), secAt(r.Seconds["large"], i))
	}
	t.AddNote("paper: response time scales linearly with training data")
	return t.String()
}

// Figure16Result reproduces Figure 16 / Appendix N: scalability on
// replicated synthetic datasets SYN-2..SYN-10.
type Figure16Result struct {
	Factors []int
	Seconds map[string][]float64
	Scale   Scale
}

// Figure16 replicates the training data k times (SYN-k) and times TGMiner.
func Figure16(ctx context.Context, env *Env, factors []int) (*Figure16Result, error) {
	if len(factors) == 0 {
		factors = []int{2, 4, 6, 8, 10}
	}
	out := &Figure16Result{Factors: factors, Seconds: map[string][]float64{}, Scale: env.Scale}
	for _, class := range SizeClasses {
		behaviors := behaviorsInClass(env, class)
		for _, k := range factors {
			var total time.Duration
			for _, name := range behaviors {
				pos := replicate(env.Data.ByName(name), k)
				neg := replicate(env.Data.Background, k)
				opts := miner.TGMinerOptions()
				opts.MaxEdges = env.Scale.MaxPatternEdges
				opts.Parallelism = 1 // paper exhibit: single-threaded timing
				start := time.Now()
				if _, err := miner.MineContext(ctx, pos, neg, opts); err != nil {
					return nil, fmt.Errorf("figure16 %s SYN-%d: %w", name, k, err)
				}
				total += time.Since(start)
			}
			out.Seconds[class] = append(out.Seconds[class], total.Seconds())
		}
	}
	return out, nil
}

// ParallelResult measures Mine's seed-level parallel scaling. Not a paper
// exhibit — the paper's implementation was single-threaded — but the
// methodology point for BENCH_*.json trajectories: same workload, sweeping
// Options.Parallelism.
type ParallelResult struct {
	Workers []int
	// Seconds[class] is parallel to Workers: total mining time over the
	// class's behaviors at that worker count.
	Seconds map[string][]float64
	Scale   Scale
}

// ParallelScaling times the full TGMiner configuration per size class at
// each worker count (default 1, 2, 4, 8). Results are identical at every
// level; only the wall clock moves.
func ParallelScaling(ctx context.Context, env *Env, workers []int) (*ParallelResult, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	out := &ParallelResult{Workers: workers, Seconds: map[string][]float64{}, Scale: env.Scale}
	for _, class := range SizeClasses {
		behaviors := behaviorsInClass(env, class)
		for _, w := range workers {
			var total time.Duration
			for _, name := range behaviors {
				opts := miner.TGMinerOptions()
				opts.Parallelism = w
				d, _, err := mineBehavior(ctx, env, name, opts, env.Scale.MaxPatternEdges)
				if err != nil {
					return nil, fmt.Errorf("parallel %s x%d: %w", name, w, err)
				}
				total += d
			}
			out.Seconds[class] = append(out.Seconds[class], total.Seconds())
		}
	}
	return out, nil
}

// Render prints the worker sweep with speedup vs one worker.
func (r *ParallelResult) Render() string {
	t := &Table{
		Title:   "Parallel scaling: TGMiner mining time by worker count",
		Headers: []string{"Workers", "Small", "Medium", "Large", "Speedup(small)"},
	}
	for i, w := range r.Workers {
		rel := "-"
		if base := secAtF(r.Seconds["small"], 0); base > 0 {
			if cur := secAtF(r.Seconds["small"], i); cur > 0 {
				rel = ratio(base, cur)
			}
		}
		t.AddRow(intStr(w),
			secAt(r.Seconds["small"], i), secAt(r.Seconds["medium"], i), secAt(r.Seconds["large"], i), rel)
	}
	t.AddNote("results are identical at every worker count; speedup tracks available cores")
	return t.String()
}

func secAtF(xs []float64, i int) float64 {
	if i >= len(xs) {
		return 0
	}
	return xs[i]
}

func replicate(graphs []*tgraph.Graph, k int) []*tgraph.Graph {
	out := make([]*tgraph.Graph, 0, len(graphs)*k)
	for i := 0; i < k; i++ {
		out = append(out, graphs...)
	}
	return out
}

// Render prints the scalability sweep.
func (r *Figure16Result) Render() string {
	t := &Table{
		Title:   "Figure 16: Response time over synthetic replicated datasets (TGMiner)",
		Headers: []string{"Dataset", "Small", "Medium", "Large"},
	}
	for i, k := range r.Factors {
		t.AddRow(fmt.Sprintf("SYN-%d", k),
			secAt(r.Seconds["small"], i), secAt(r.Seconds["medium"], i), secAt(r.Seconds["large"], i))
	}
	t.AddNote("paper: linear scaling; 20M nodes / 80M edges mined within 3 hours")
	return t.String()
}
