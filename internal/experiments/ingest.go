package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tgminer/internal/search"
	"tgminer/internal/tgraph"
)

// ShardedIngestResult measures the sharded live engine's multi-writer
// append scaling: aggregate ingest throughput at each shard count, with
// one writer goroutine per shard appending events whose source entities
// hash to that shard (the intended deployment: one producer per entity
// partition, e.g. per monitored host). Not a paper exhibit — the paper's
// engine was offline — but the BENCH_PR5.json trajectory's interactive
// form: same workload, sweeping LiveOptions.Shards the way the parallel
// exhibit sweeps MineOptions.Parallelism.
type ShardedIngestResult struct {
	Shards          []int
	EventsPerWriter int
	// Seconds, Rate (aggregate appends/sec), and LiveEdges are parallel to
	// Shards; each run ingests shards*EventsPerWriter events total.
	Seconds   []float64
	Rate      []float64
	LiveEdges []int
	Matches   []int
	Cores     int
}

// shardedIngestSources picks one source node per shard by probing
// tgraph.NodeShard, mirroring how a deployment assigns producers to
// partitions.
func shardedIngestSources(l *search.ShardedLive, shards int) ([]tgraph.NodeID, tgraph.NodeID, error) {
	srcs := make([]tgraph.NodeID, shards)
	owned := make([]bool, shards)
	found := 0
	for guard := 0; found < shards; guard++ {
		if guard > 4096 {
			return nil, 0, fmt.Errorf("sharded: no source found for every shard after %d probes", guard)
		}
		v := l.AddNode(0)
		if s := tgraph.NodeShard(v, shards); !owned[s] {
			owned[s] = true
			srcs[s] = v
			found++
		}
	}
	return srcs, l.AddNode(1), nil
}

// ShardedIngest sweeps the shard count (default 1, 2, 4, 8), timing
// shards*eventsPerWriter concurrent appends at each level and sanity
// checking the ingested edge set with a temporal query. Results are
// identical at every shard count (the differential property tests pin
// that); only aggregate throughput moves, bounded by available cores.
func ShardedIngest(ctx context.Context, shardCounts []int, eventsPerWriter int) (*ShardedIngestResult, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	if eventsPerWriter <= 0 {
		eventsPerWriter = 50000
	}
	out := &ShardedIngestResult{
		Shards:          shardCounts,
		EventsPerWriter: eventsPerWriter,
		Cores:           runtime.GOMAXPROCS(0),
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		return nil, err
	}
	for _, shards := range shardCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if shards <= 0 {
			return nil, fmt.Errorf("sharded: invalid shard count %d", shards)
		}
		l := search.NewSharded(search.LiveOptions{Shards: shards})
		srcs, dst, err := shardedIngestSources(l, shards)
		if err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		errs := make(chan error, shards)
		start := time.Now()
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src := srcs[w]
				// Writer w owns timestamps congruent to w mod shards:
				// strictly increasing per shard, globally unique.
				for i := 0; i < eventsPerWriter; i++ {
					if err := l.Append(src, dst, int64(w)+1+int64(i)*int64(shards)); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return nil, fmt.Errorf("sharded x%d: %w", shards, err)
		}
		total := shards * eventsPerWriter
		res, err := l.FindTemporalContext(ctx, p, search.Options{Limit: 16})
		if err != nil {
			return nil, err
		}
		if l.NumEdges() != total {
			return nil, fmt.Errorf("sharded x%d: ingested %d edges, want %d", shards, l.NumEdges(), total)
		}
		out.Seconds = append(out.Seconds, elapsed.Seconds())
		out.Rate = append(out.Rate, float64(total)/elapsed.Seconds())
		out.LiveEdges = append(out.LiveEdges, l.NumEdges())
		out.Matches = append(out.Matches, len(res.Matches))
	}
	return out, nil
}

// Render prints the shard sweep with aggregate throughput and speedup.
func (r *ShardedIngestResult) Render() string {
	t := &Table{
		Title:   "Sharded ingestion: aggregate multi-writer append throughput by shard count",
		Headers: []string{"Shards", "Events", "Wall", "Events/s", "Speedup"},
	}
	for i, s := range r.Shards {
		rel := "-"
		if i < len(r.Rate) && len(r.Rate) > 0 && r.Rate[0] > 0 {
			rel = ratio(r.Rate[i], r.Rate[0])
		}
		t.AddRow(intStr(s), intStr(s*r.EventsPerWriter), secs(r.Seconds[i]),
			fmt.Sprintf("%.0f", r.Rate[i]), rel)
	}
	t.AddNote("queries answer identically at every shard count (differential-tested); speedup tracks available cores (%d here) — on one core the sweep measures sharding overhead only", r.Cores)
	return t.String()
}
