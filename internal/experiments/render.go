package experiments

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", maxInt(4, total-2)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pct(x float64) string      { return fmt.Sprintf("%.1f", 100*x) }
func f3(x float64) string       { return fmt.Sprintf("%.3f", x) }
func secs(d float64) string     { return fmt.Sprintf("%.3fs", d) }
func intStr(x int) string       { return fmt.Sprintf("%d", x) }
func int64Str(x int64) string   { return fmt.Sprintf("%d", x) }
func ratio(a, b float64) string { return fmt.Sprintf("%.1fx", a/b) }
