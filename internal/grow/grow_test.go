package grow

import (
	"math/rand"
	"testing"

	"tgminer/internal/tgraph"
)

// buildGraph builds a small test graph with labels[i] on node i and the
// given edges timestamped by slice order.
func buildGraph(t *testing.T, labels []tgraph.Label, edges [][2]tgraph.NodeID) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for i, e := range edges {
		if err := b.AddEdge(e[0], e[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSeedsBasic(t *testing.T) {
	// Graph: A->B, B->A, A->B (multi-edge).
	g := buildGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}, {1, 0}, {0, 1}})
	seeds := Seeds([]*tgraph.Graph{g}, nil)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2 (A->B and B->A)", len(seeds))
	}
	// Deterministic order: (0,1) before (1,0).
	if seeds[0].Pattern.LabelOf(0) != 0 {
		t.Errorf("seed order not deterministic")
	}
	if len(seeds[0].Pos) != 2 {
		t.Errorf("A->B embeddings = %d, want 2", len(seeds[0].Pos))
	}
	if len(seeds[1].Pos) != 1 {
		t.Errorf("B->A embeddings = %d, want 1", len(seeds[1].Pos))
	}
}

func TestSeedsNegativeOnlyFiltered(t *testing.T) {
	pos := buildGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}})
	neg := buildGraph(t, []tgraph.Label{5, 6}, [][2]tgraph.NodeID{{0, 1}})
	seeds := Seeds([]*tgraph.Graph{pos}, []*tgraph.Graph{neg})
	if len(seeds) != 1 {
		t.Fatalf("got %d seeds, want 1 (negative-only seed must be dropped)", len(seeds))
	}
	if len(seeds[0].Neg) != 0 {
		t.Errorf("unrelated negative embeddings attached: %d", len(seeds[0].Neg))
	}
}

func TestSeedsSelfLoopDistinct(t *testing.T) {
	g := buildGraph(t, []tgraph.Label{0, 0}, [][2]tgraph.NodeID{{0, 0}, {0, 1}})
	seeds := Seeds([]*tgraph.Graph{g}, nil)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2 (loop and non-loop A->A)", len(seeds))
	}
}

func TestExtendForward(t *testing.T) {
	// Chain A->B->C. Seed A->B, extend forward from B with label C.
	g := buildGraph(t, []tgraph.Label{0, 1, 2}, [][2]tgraph.NodeID{{0, 1}, {1, 2}})
	graphs := []*tgraph.Graph{g}
	seeds := Seeds(graphs, nil)
	seed := seeds[0] // A->B
	exts := Extensions(seed.Pattern, graphs, seed.Pos)
	if len(exts) != 1 {
		t.Fatalf("extensions = %v, want exactly 1", exts)
	}
	x := exts[0]
	if x.Kind != tgraph.Forward || x.Src != 1 || x.NewLabel != 2 {
		t.Fatalf("ext = %+v", x)
	}
	child := Extend(x, graphs, seed.Pos)
	if len(child) != 1 {
		t.Fatalf("child embeddings = %d, want 1", len(child))
	}
	if child[0].LastPos != 1 || len(child[0].Nodes) != 3 {
		t.Errorf("child embedding = %+v", child[0])
	}
}

func TestExtendBackwardAndInward(t *testing.T) {
	// A->B, C->B, A->B: seed A->B at pos 0 extends backward (C) and inward
	// (the second parallel A->B).
	g := buildGraph(t, []tgraph.Label{0, 1, 2}, [][2]tgraph.NodeID{{0, 1}, {2, 1}, {0, 1}})
	graphs := []*tgraph.Graph{g}
	seeds := Seeds(graphs, nil)
	var ab Seed
	for _, s := range seeds {
		if s.Pattern.LabelOf(0) == 0 {
			ab = s
		}
	}
	exts := Extensions(ab.Pattern, graphs, ab.Pos)
	var sawBackward, sawInward bool
	for _, x := range exts {
		switch x.Kind {
		case tgraph.Backward:
			sawBackward = true
			if x.NewLabel != 2 || x.Dst != 1 {
				t.Errorf("backward ext = %+v", x)
			}
			child := Extend(x, graphs, ab.Pos)
			if len(child) != 1 {
				t.Errorf("backward child embeddings = %d, want 1 (only from pos-0 parent)", len(child))
			}
		case tgraph.Inward:
			sawInward = true
			if x.Src != 0 || x.Dst != 1 {
				t.Errorf("inward ext = %+v", x)
			}
		}
	}
	if !sawBackward || !sawInward {
		t.Errorf("missing growth kinds in %v", exts)
	}
}

func TestExtendRespectsTemporalOrder(t *testing.T) {
	// B->C at time 0, A->B at time 1. Seed A->B cannot extend to B->C
	// because B->C happens earlier.
	g := buildGraph(t, []tgraph.Label{0, 1, 2}, [][2]tgraph.NodeID{{1, 2}, {0, 1}})
	graphs := []*tgraph.Graph{g}
	seeds := Seeds(graphs, nil)
	for _, s := range seeds {
		if s.Pattern.LabelOf(0) != 0 {
			continue
		}
		exts := Extensions(s.Pattern, graphs, s.Pos)
		if len(exts) != 0 {
			t.Errorf("A->B should have no extensions, got %v", exts)
		}
	}
}

func TestExtendInjectivity(t *testing.T) {
	// Triangle back to the same node: A->B then B->A' where A' is the same
	// node A. Forward growth must not map the new node onto A (that is
	// inward growth instead).
	g := buildGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}, {1, 0}})
	graphs := []*tgraph.Graph{g}
	seeds := Seeds(graphs, nil)
	ab := seeds[0]
	exts := Extensions(ab.Pattern, graphs, ab.Pos)
	if len(exts) != 1 {
		t.Fatalf("exts = %v, want only the inward B->A", exts)
	}
	if exts[0].Kind != tgraph.Inward || exts[0].Src != 1 || exts[0].Dst != 0 {
		t.Errorf("ext = %+v, want inward 1->0", exts[0])
	}
}

func TestFrequencyAndSupport(t *testing.T) {
	g1 := buildGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}, {0, 1}})
	g2 := buildGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}})
	g3 := buildGraph(t, []tgraph.Label{5, 6}, [][2]tgraph.NodeID{{0, 1}})
	graphs := []*tgraph.Graph{g1, g2, g3}
	seeds := Seeds(graphs, nil)
	ab := seeds[0]
	if len(ab.Pos) != 3 {
		t.Fatalf("embeddings = %d, want 3", len(ab.Pos))
	}
	if got := ab.Pos.SupportCount(); got != 2 {
		t.Errorf("SupportCount = %d, want 2", got)
	}
	if got := ab.Pos.Frequency(3); got != 2.0/3.0 {
		t.Errorf("Frequency = %v, want 2/3", got)
	}
	if got := (List{}).Frequency(0); got != 0 {
		t.Errorf("empty Frequency = %v", got)
	}
}

func TestResidualSetDedup(t *testing.T) {
	// Two embeddings with the same (graph, cut) collapse to one residual.
	l := List{
		{GraphID: 0, LastPos: 3, Nodes: []tgraph.NodeID{0, 1}},
		{GraphID: 0, LastPos: 3, Nodes: []tgraph.NodeID{0, 2}},
		{GraphID: 0, LastPos: 5, Nodes: []tgraph.NodeID{0, 1}},
	}
	set := l.ResidualSet()
	if len(set) != 2 {
		t.Fatalf("residual set size = %d, want 2", len(set))
	}
}

// --- Completeness / non-redundancy (Theorem 1) -------------------------

// enumerateDFS explores the entire pattern space reachable from seeds via
// consecutive growth, recording each visited pattern's canonical key.
func enumerateDFS(t *testing.T, graphs []*tgraph.Graph, maxEdges int) map[string]int {
	t.Helper()
	visited := map[string]int{}
	var dfs func(p *tgraph.Pattern, l List)
	dfs = func(p *tgraph.Pattern, l List) {
		visited[p.Key()]++
		if p.NumEdges() >= maxEdges {
			return
		}
		for _, x := range Extensions(p, graphs, l) {
			child := x.Apply(p)
			childEmb := Extend(x, graphs, l)
			if len(childEmb) == 0 {
				t.Fatalf("extension %+v of %v yielded no embeddings", x, p)
			}
			dfs(child, childEmb)
		}
	}
	for _, s := range Seeds(graphs, nil) {
		dfs(s.Pattern, s.Pos)
	}
	return visited
}

// bruteEnumerate lists the canonical keys of every T-connected temporal
// subpattern (up to maxEdges edges) of every graph, by trying all edge
// subsets.
func bruteEnumerate(graphs []*tgraph.Graph, maxEdges int) map[string]bool {
	out := map[string]bool{}
	for _, g := range graphs {
		n := g.NumEdges()
		for mask := 1; mask < (1 << n); mask++ {
			if popcount(mask) > maxEdges {
				continue
			}
			if key, ok := subPatternKey(g, mask); ok {
				out[key] = true
			}
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// subPatternKey builds the pattern induced by the edge subset mask of g,
// returning its canonical key if it is T-connected.
func subPatternKey(g *tgraph.Graph, mask int) (string, bool) {
	var nodes []tgraph.NodeID
	nodeIdx := map[tgraph.NodeID]tgraph.NodeID{}
	var edges []tgraph.PEdge
	for pos := 0; pos < g.NumEdges(); pos++ {
		if mask&(1<<pos) == 0 {
			continue
		}
		e := g.EdgeAt(pos)
		for _, v := range []tgraph.NodeID{e.Src, e.Dst} {
			if _, ok := nodeIdx[v]; !ok {
				nodeIdx[v] = tgraph.NodeID(len(nodes))
				nodes = append(nodes, v)
			}
		}
		edges = append(edges, tgraph.PEdge{Src: nodeIdx[e.Src], Dst: nodeIdx[e.Dst]})
	}
	labels := make([]tgraph.Label, len(nodes))
	for i, v := range nodes {
		labels[i] = g.LabelOf(v)
	}
	p, err := tgraph.NewPattern(labels, edges)
	if err != nil {
		panic(err)
	}
	if !p.IsTConnected() {
		return "", false
	}
	return p.Key(), true
}

func randomGraph(rng *rand.Rand, nodes, edges, labelRange int) *tgraph.Graph {
	var b tgraph.Builder
	for i := 0; i < nodes; i++ {
		b.AddNode(tgraph.Label(rng.Intn(labelRange)))
	}
	for i := 0; i < edges; i++ {
		if err := b.AddEdge(tgraph.NodeID(rng.Intn(nodes)), tgraph.NodeID(rng.Intn(nodes)), int64(i)); err != nil {
			panic(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

func TestTheorem1CompletenessAndNoRepetition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		graphs := []*tgraph.Graph{
			randomGraph(rng, 3+rng.Intn(3), 4+rng.Intn(3), 2),
			randomGraph(rng, 3+rng.Intn(3), 4+rng.Intn(3), 2),
		}
		maxEdges := 6
		visited := enumerateDFS(t, graphs, maxEdges)
		want := bruteEnumerate(graphs, maxEdges)
		// No repetition: every pattern visited exactly once.
		for key, count := range visited {
			if count != 1 {
				t.Fatalf("trial %d: pattern visited %d times", trial, count)
			}
			if !want[key] {
				t.Fatalf("trial %d: DFS visited a pattern brute force did not find", trial)
			}
		}
		// Completeness: every T-connected subpattern visited.
		for key := range want {
			if _, ok := visited[key]; !ok {
				t.Fatalf("trial %d: brute-force pattern missed by DFS (|visited|=%d |want|=%d)",
					trial, len(visited), len(want))
			}
		}
	}
}
