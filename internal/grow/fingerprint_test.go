package grow

import (
	"testing"

	"tgminer/internal/tgraph"
)

func buildChain(t *testing.T, labels []tgraph.Label, edges [][2]tgraph.NodeID) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for i, e := range edges {
		if err := b.AddEdge(e[0], e[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSeedKeyAndFingerprint pins the cross-run seed identity and the
// embedding-list fingerprint the incremental miner caches under.
func TestSeedKeyAndFingerprint(t *testing.T) {
	g1 := buildChain(t, []tgraph.Label{1, 2, 2}, [][2]tgraph.NodeID{{0, 1}, {0, 2}, {1, 1}})
	g2 := buildChain(t, []tgraph.Label{1, 2}, [][2]tgraph.NodeID{{0, 1}})
	seeds := Seeds([]*tgraph.Graph{g1, g2}, nil)
	if len(seeds) != 2 {
		t.Fatalf("want 2 seeds (1->2 and 2 self-loop), got %d", len(seeds))
	}
	keys := map[SeedKey]Seed{}
	for _, s := range seeds {
		keys[s.Key()] = s
	}
	plain, ok := keys[SeedKey{Src: 1, Dst: 2}]
	if !ok {
		t.Fatalf("seed key 1->2 missing; have %v", keys)
	}
	if _, ok := keys[SeedKey{Src: 2, Dst: 2, Loop: true}]; !ok {
		t.Fatalf("self-loop seed key missing; have %v", keys)
	}

	// Fingerprint is deterministic and order/content sensitive.
	if plain.Pos.Fingerprint() != plain.Pos.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	sub := plain.Pos[:len(plain.Pos)-1]
	if sub.Fingerprint() == plain.Pos.Fingerprint() {
		t.Fatal("shorter list fingerprints equal")
	}
	if (List{}).Fingerprint() == plain.Pos.Fingerprint() {
		t.Fatal("empty list fingerprints equal to non-empty")
	}

	// Same occurrences re-enumerated from a content-identical graph set
	// fingerprint identically.
	again := Seeds([]*tgraph.Graph{g1, g2}, nil)
	for i := range again {
		if again[i].Pos.Fingerprint() != seeds[i].Pos.Fingerprint() {
			t.Fatalf("seed %d fingerprint unstable across enumerations", i)
		}
	}

	// SupportGraphs returns distinct graph IDs in order.
	got := plain.Pos.SupportGraphs(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SupportGraphs = %v, want [0 1]", got)
	}
}
