// Package grow implements embedding-list pattern growth for temporal graph
// mining (Section 3 of the TGMiner paper): consecutive growth with the
// forward, backward, and inward growth options, which together explore the
// T-connected pattern space completely and without repetition (Theorem 1).
//
// A pattern's occurrences in a graph set are maintained as embedding lists;
// extending a pattern by one edge filters and extends its embeddings rather
// than re-matching from scratch. Because edges are totally ordered, a new
// pattern edge (timestamp |E|+1) can only match graph edges at positions
// strictly after the embedding's last matched position.
package grow

import (
	"sort"
	"sync"

	"tgminer/internal/residual"
	"tgminer/internal/tgraph"
)

// Embedding is one match of a pattern in a data graph: the node mapping plus
// the position of the graph edge matched by the pattern's final (largest
// timestamp) edge.
type Embedding struct {
	GraphID int32
	LastPos int32
	Nodes   []tgraph.NodeID // pattern node -> graph node
}

// List is the embedding list of one pattern over one graph set, ordered by
// GraphID (ties in arbitrary order).
type List []Embedding

// SupportCount returns the number of distinct graphs containing at least one
// embedding.
func (l List) SupportCount() int {
	n := 0
	last := int32(-1)
	for _, e := range l {
		if e.GraphID != last {
			n++
			last = e.GraphID
		}
	}
	return n
}

// Frequency returns SupportCount()/total, the paper's freq(G, g).
func (l List) Frequency(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(l.SupportCount()) / float64(total)
}

// ResidualSet builds the deduplicated residual graph set of the pattern
// owning this list: one Ref per distinct (graph, cut) pair, per the paper's
// set-union definition of R(G, g).
func (l List) ResidualSet() residual.Set {
	return l.ResidualSetInto(nil)
}

// ResidualSetInto is ResidualSet reusing buf's backing storage when it is
// large enough; the miner recycles residual sets through a per-worker
// freelist, removing the dominant per-pattern allocation of the search.
func (l List) ResidualSetInto(buf residual.Set) residual.Set {
	if cap(buf) < len(l) {
		buf = make(residual.Set, 0, len(l))
	}
	set := buf[:0]
	for _, e := range l {
		set = append(set, residual.Ref{GraphID: e.GraphID, Cut: e.LastPos})
	}
	set.Normalize()
	// Deduplicate identical (GraphID, Cut) pairs: distinct matches sharing a
	// final edge contribute one residual graph.
	out := set[:0]
	for i, r := range set {
		if i == 0 || r != set[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// Ext describes one consecutive-growth step applied to a parent pattern:
// which growth option, which existing pattern nodes participate, and the
// label of the new node if one is introduced. Ext values are comparable and
// identify children uniquely (Lemma 3: a pattern extends into a specific
// larger pattern in at most one way).
type Ext struct {
	Kind     tgraph.GrowthKind
	Src      tgraph.NodeID // existing pattern source (Forward, Inward); -1 otherwise
	Dst      tgraph.NodeID // existing pattern destination (Backward, Inward); -1 otherwise
	NewLabel tgraph.Label  // label of the new node (Forward, Backward); -1 otherwise
}

// Apply grows parent by the extension, returning the child pattern.
func (x Ext) Apply(parent *tgraph.Pattern) *tgraph.Pattern {
	switch x.Kind {
	case tgraph.Forward:
		return parent.GrowForward(x.Src, x.NewLabel)
	case tgraph.Backward:
		return parent.GrowBackward(x.NewLabel, x.Dst)
	default:
		return parent.GrowInward(x.Src, x.Dst)
	}
}

// Less orders extensions deterministically for reproducible DFS order.
func (x Ext) Less(y Ext) bool {
	if x.Kind != y.Kind {
		return x.Kind < y.Kind
	}
	if x.Src != y.Src {
		return x.Src < y.Src
	}
	if x.Dst != y.Dst {
		return x.Dst < y.Dst
	}
	return x.NewLabel < y.NewLabel
}

// Seed is a one-edge pattern together with its embedding lists in the
// positive and negative graph sets.
type Seed struct {
	Pattern *tgraph.Pattern
	Pos     List
	Neg     List
}

// SeedKey identifies a one-edge pattern stably across mining runs: the
// source and destination labels plus whether the edge is a self loop. It is
// the identity incremental mining caches per-seed outcomes under.
type SeedKey struct {
	Src, Dst tgraph.Label
	Loop     bool
}

// Key returns the seed's cross-run identity.
func (s Seed) Key() SeedKey {
	p := s.Pattern
	loop := p.NumNodes() == 1
	if loop {
		return SeedKey{Src: p.LabelOf(0), Dst: p.LabelOf(0), Loop: true}
	}
	return SeedKey{Src: p.LabelOf(0), Dst: p.LabelOf(1)}
}

// Fingerprint hashes the embedding list's (GraphID, LastPos) reference
// pairs with FNV-1a, folding in the length. Two lists over content-equal
// graph sets are identical iff their occurrences coincide, so incremental
// mining combines this fingerprint with per-graph content stamps to decide
// whether a seed's whole exploration subtree is unchanged.
func (l List) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		const prime = 1099511628211
		h ^= v & 0xffffffff
		h *= prime
		h ^= v >> 32
		h *= prime
	}
	mix(uint64(len(l)))
	for _, e := range l {
		mix(uint64(uint32(e.GraphID))<<32 | uint64(uint32(e.LastPos)))
	}
	return h
}

// SupportGraphs appends the distinct GraphIDs with at least one embedding
// to buf (the list is ordered by GraphID, so distinct IDs are adjacent).
func (l List) SupportGraphs(buf []int32) []int32 {
	last := int32(-1)
	for _, e := range l {
		if e.GraphID != last {
			buf = append(buf, e.GraphID)
			last = e.GraphID
		}
	}
	return buf
}

// Seeds enumerates all one-edge patterns occurring in the positive set with
// their embeddings in both sets, ordered deterministically by (source label,
// destination label, self-loop).
func Seeds(pos, neg []*tgraph.Graph) []Seed {
	posEmb := make(map[SeedKey]List)
	for gi, g := range pos {
		collectSeeds(g, int32(gi), func(k SeedKey, e Embedding) {
			posEmb[k] = append(posEmb[k], e)
		})
	}
	negEmb := make(map[SeedKey]List)
	for gi, g := range neg {
		collectSeeds(g, int32(gi), func(k SeedKey, e Embedding) {
			if _, ok := posEmb[k]; ok { // only seeds that exist positively matter
				negEmb[k] = append(negEmb[k], e)
			}
		})
	}
	keys := make([]SeedKey, 0, len(posEmb))
	for k := range posEmb {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return !a.Loop && b.Loop
	})
	out := make([]Seed, 0, len(keys))
	for _, k := range keys {
		out = append(out, Seed{
			Pattern: tgraph.SingleEdgePattern(k.Src, k.Dst, k.Loop),
			Pos:     posEmb[k],
			Neg:     negEmb[k],
		})
	}
	return out
}

func collectSeeds(g *tgraph.Graph, gid int32, emit func(k SeedKey, e Embedding)) {
	for pos, e := range g.Edges() {
		k := SeedKey{Src: g.LabelOf(e.Src), Dst: g.LabelOf(e.Dst), Loop: e.Src == e.Dst}
		var nodes []tgraph.NodeID
		if k.Loop {
			nodes = []tgraph.NodeID{e.Src}
		} else {
			nodes = []tgraph.NodeID{e.Src, e.Dst}
		}
		emit(k, Embedding{GraphID: gid, LastPos: int32(pos), Nodes: nodes})
	}
}

// nodeArenaChunk is the number of NodeIDs handed out per arena chunk. Large
// enough to amortize one chunk allocation over many embeddings, small enough
// that a few straggler embeddings pinning a chunk is cheap. Swept by
// BenchmarkNodeArenaChunk (bench_test.go) on the sshd-login Extend
// workload, Xeon @ 2.10GHz, go1.24, benchtime=2s, 2026-07 (ns/op, B/op,
// allocs/op): 128: 592.3/839/1; 256: 567.0/833/1; 512: 575.3/833/1;
// 1024: 566.7/833/1; 2048: 554.7/832/1. Flat within run-to-run noise from
// 256 up — the chunk allocation is already amortized to ~1 alloc per
// Extend call — so 512 stays: 2048's ~3% edge is inside the noise band
// and quadruples the memory a straggler embedding pins.
const nodeArenaChunk = 512

// nodeArenaChunkSize is the chunk size alloc actually uses; a var only so
// BenchmarkNodeArenaChunk can sweep it single-threadedly. Never written
// outside that benchmark.
var nodeArenaChunkSize = nodeArenaChunk

// nodeArena is a chunked bump allocator for embedding node slices. Allocated
// regions are handed out exactly once and never recycled, so slices stay
// valid (and data-race free) after the arena returns to the pool; only the
// unused tail of the current chunk is reused by later calls.
type nodeArena struct {
	buf []tgraph.NodeID
}

// alloc returns a zeroed-capacity slice of exactly n NodeIDs.
func (a *nodeArena) alloc(n int) []tgraph.NodeID {
	if len(a.buf)+n > cap(a.buf) {
		size := nodeArenaChunkSize
		if n > size {
			size = n
		}
		a.buf = make([]tgraph.NodeID, 0, size)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

var nodeArenaPool = sync.Pool{New: func() any { return new(nodeArena) }}

// extScratch is the reusable per-call workspace of Extensions: the
// deduplication set and the reverse node-mapping buffer, both of which
// otherwise dominate the function's allocation profile.
type extScratch struct {
	seen   map[Ext]struct{}
	revBuf []int32 // graph node -> pattern node + 1 (0 = unmapped)
}

var extScratchPool = sync.Pool{
	New: func() any { return &extScratch{seen: make(map[Ext]struct{})} },
}

// Extensions enumerates the distinct consecutive-growth extensions of the
// pattern that are witnessed by at least one embedding in l over graphs,
// returned in deterministic order. Only extensions witnessed in the positive
// set can raise a pattern's positive frequency above zero, so the miner
// calls this on the positive list only.
//
// Extensions is safe for concurrent use: per-call scratch state comes from
// an internal pool and the returned slice is freshly allocated.
func Extensions(p *tgraph.Pattern, graphs []*tgraph.Graph, l List) []Ext {
	scratch := extScratchPool.Get().(*extScratch)
	seen := scratch.seen
	clear(seen)
	revBuf := scratch.revBuf
	for _, emb := range l {
		g := graphs[emb.GraphID]
		if cap(revBuf) < g.NumNodes() {
			revBuf = make([]int32, g.NumNodes())
		}
		rev := revBuf[:g.NumNodes()]
		for i := range rev {
			rev[i] = 0
		}
		for pv, gv := range emb.Nodes {
			rev[gv] = int32(pv) + 1
		}
		// Candidate edges: incident to any mapped node, strictly after the
		// last matched position. Deduplicate edges seen from both endpoints.
		for _, gv := range emb.Nodes {
			inc := g.Incident(gv)
			start := sort.Search(len(inc), func(i int) bool { return inc[i] > emb.LastPos })
			for _, pos := range inc[start:] {
				e := g.EdgeAt(int(pos))
				sm, dm := rev[e.Src], rev[e.Dst]
				var x Ext
				switch {
				case sm != 0 && dm != 0:
					// Seen from both endpoints; emit only from the source side
					// to avoid double work (unless it is a self loop).
					if e.Src != gv && e.Src != e.Dst {
						continue
					}
					x = Ext{Kind: tgraph.Inward, Src: tgraph.NodeID(sm - 1), Dst: tgraph.NodeID(dm - 1), NewLabel: -1}
				case sm != 0:
					x = Ext{Kind: tgraph.Forward, Src: tgraph.NodeID(sm - 1), Dst: -1, NewLabel: g.LabelOf(e.Dst)}
				case dm != 0:
					x = Ext{Kind: tgraph.Backward, Src: -1, Dst: tgraph.NodeID(dm - 1), NewLabel: g.LabelOf(e.Src)}
				default:
					continue // unreachable: pos came from a mapped node's incident list
				}
				seen[x] = struct{}{}
			}
		}
	}
	out := make([]Ext, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	scratch.revBuf = revBuf
	extScratchPool.Put(scratch)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Extend computes the embedding list of the child pattern obtained by
// applying ext to the parent whose embeddings over graphs are l. Embeddings
// that cannot host the new edge are dropped; embeddings with several
// candidate edges fan out into several child embeddings (one per match).
//
// Child node slices are carved out of a pooled chunk arena rather than
// allocated individually; Extend is safe for concurrent use.
func Extend(ext Ext, graphs []*tgraph.Graph, l List) List {
	out := make(List, 0, len(l))
	arena := nodeArenaPool.Get().(*nodeArena)
	for _, emb := range l {
		g := graphs[emb.GraphID]
		switch ext.Kind {
		case tgraph.Forward:
			src := emb.Nodes[ext.Src]
			forEachIncidentAfter(g, src, emb.LastPos, func(pos int32, e tgraph.Edge) {
				if e.Src != src || e.Src == e.Dst {
					return
				}
				if g.LabelOf(e.Dst) != ext.NewLabel || containsNode(emb.Nodes, e.Dst) {
					return
				}
				nodes := arena.alloc(len(emb.Nodes) + 1)
				copy(nodes, emb.Nodes)
				nodes[len(emb.Nodes)] = e.Dst
				out = append(out, Embedding{GraphID: emb.GraphID, LastPos: pos, Nodes: nodes})
			})
		case tgraph.Backward:
			dst := emb.Nodes[ext.Dst]
			forEachIncidentAfter(g, dst, emb.LastPos, func(pos int32, e tgraph.Edge) {
				if e.Dst != dst || e.Src == e.Dst {
					return
				}
				if g.LabelOf(e.Src) != ext.NewLabel || containsNode(emb.Nodes, e.Src) {
					return
				}
				nodes := arena.alloc(len(emb.Nodes) + 1)
				copy(nodes, emb.Nodes)
				nodes[len(emb.Nodes)] = e.Src
				out = append(out, Embedding{GraphID: emb.GraphID, LastPos: pos, Nodes: nodes})
			})
		default: // Inward
			src := emb.Nodes[ext.Src]
			dst := emb.Nodes[ext.Dst]
			forEachIncidentAfter(g, src, emb.LastPos, func(pos int32, e tgraph.Edge) {
				if e.Src != src || e.Dst != dst {
					return
				}
				out = append(out, Embedding{GraphID: emb.GraphID, LastPos: pos, Nodes: emb.Nodes})
			})
		}
	}
	nodeArenaPool.Put(arena)
	return out
}

func forEachIncidentAfter(g *tgraph.Graph, v tgraph.NodeID, after int32, fn func(pos int32, e tgraph.Edge)) {
	inc := g.Incident(v)
	start := sort.Search(len(inc), func(i int) bool { return inc[i] > after })
	for _, pos := range inc[start:] {
		fn(pos, g.EdgeAt(int(pos)))
	}
}

func containsNode(nodes []tgraph.NodeID, v tgraph.NodeID) bool {
	for _, n := range nodes {
		if n == v {
			return true
		}
	}
	return false
}
