package grow

import (
	"fmt"
	"sync"
	"testing"

	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// benchWorkload builds a sysgen-backed embedding workload: a seed pattern
// with a non-trivial embedding list over a positive set, plus one extension
// of it, so Extend and Extensions benchmarks exercise realistic fan-out.
func benchWorkload(b *testing.B) (graphs []*tgraph.Graph, p *tgraph.Pattern, l List, x Ext) {
	b.Helper()
	ds := sysgen.Generate(sysgen.Config{
		Scale:             0.5,
		GraphsPerBehavior: 8,
		BackgroundGraphs:  0,
		Seed:              7,
		Behaviors:         []string{"sshd-login"},
	})
	graphs = ds.Behaviors[0].Graphs
	seeds := Seeds(graphs, nil)
	// Pick the seed with the largest embedding list so the hot loops do real
	// work, then grow it twice to get a multi-node pattern mid-search.
	best := 0
	for i := range seeds {
		if len(seeds[i].Pos) > len(seeds[best].Pos) {
			best = i
		}
	}
	p, l = seeds[best].Pattern, seeds[best].Pos
	for hop := 0; hop < 2; hop++ {
		exts := Extensions(p, graphs, l)
		if len(exts) == 0 {
			break
		}
		picked := false
		for _, cand := range exts {
			if nl := Extend(cand, graphs, l); len(nl) > 0 {
				p, l, x = cand.Apply(p), nl, cand
				picked = true
				break
			}
		}
		if !picked {
			break
		}
	}
	exts := Extensions(p, graphs, l)
	if len(exts) == 0 {
		b.Fatal("bench workload has no extensions")
	}
	x = exts[0]
	return graphs, p, l, x
}

func BenchmarkExtensions(b *testing.B) {
	graphs, p, l, _ := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Extensions(p, graphs, l); len(out) == 0 {
			b.Fatal("no extensions")
		}
	}
}

func BenchmarkExtend(b *testing.B) {
	graphs, _, l, x := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Extend(x, graphs, l); len(out) == 0 {
			b.Fatal("no child embeddings")
		}
	}
}

func BenchmarkSeeds(b *testing.B) {
	graphs, _, _, _ := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Seeds(graphs, nil); len(out) == 0 {
			b.Fatal("no seeds")
		}
	}
}

// BenchmarkNodeArenaChunk sweeps the embedding-arena chunk size over the
// Extend workload (the arena's only consumer). The winning size and the
// measured curve are committed on the nodeArenaChunk constant in grow.go;
// re-run the sweep when the embedding shape changes materially.
func BenchmarkNodeArenaChunk(b *testing.B) {
	graphs, _, l, x := benchWorkload(b)
	for _, chunk := range []int{128, 256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			old := nodeArenaChunkSize
			nodeArenaChunkSize = chunk
			// Flush arenas sized under the previous setting.
			nodeArenaPool = sync.Pool{New: func() any { return new(nodeArena) }}
			defer func() {
				nodeArenaChunkSize = old
				nodeArenaPool = sync.Pool{New: func() any { return new(nodeArena) }}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := Extend(x, graphs, l); len(out) == 0 {
					b.Fatal("no child embeddings")
				}
			}
		})
	}
}
