// Package score provides discriminative score functions F(x, y) for
// temporal graph pattern mining, where x is a pattern's frequency in the
// positive graph set and y its frequency in the negative set.
//
// Problem 1 of the TGMiner paper requires partial (anti-)monotonicity:
// F decreases in y for fixed x and increases in x for fixed y. The paper's
// adopted function (from Jin et al. [11]) is LogRatio. One-sided variants of
// the G-test and information gain are also provided; as discussed in the
// paper and in the leap-search literature [30], these are the commonly used
// choices and are monotone on the x ≥ y region where discriminative
// patterns live.
//
// Every function exposes the upper bound of Section 4.1: the best score any
// supergraph of a pattern with positive frequency x can reach is
// F(x, 0), because positive frequency can only shrink and negative
// frequency is at least 0 under growth.
package score

import (
	"fmt"
	"math"
)

// Func is a discriminative score function.
type Func interface {
	// Name identifies the function in output and configs.
	Name() string
	// Score evaluates F(x, y) for frequencies x, y in [0, 1].
	Score(x, y float64) float64
	// UpperBound returns F(x, 0), the naive pruning bound of Section 4.1.
	UpperBound(x float64) float64
}

// Epsilon is the smoothing constant used by LogRatio, matching the paper's
// experimental setup (F(x, y) = log(x / (y + ε)), ε = 1e-6).
const Epsilon = 1e-6

// LogRatio is F(x, y) = log(x / (y + ε)), the score function the paper
// adopts from Jin et al. [11]. It satisfies partial (anti-)monotonicity
// everywhere on (0, 1] × [0, 1].
type LogRatio struct{}

// Name implements Func.
func (LogRatio) Name() string { return "log-ratio" }

// Score implements Func. Score(0, y) is -Inf: a pattern absent from the
// positive set can never be discriminative.
func (LogRatio) Score(x, y float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x / (y + Epsilon))
}

// UpperBound implements Func.
func (s LogRatio) UpperBound(x float64) float64 { return s.Score(x, 0) }

// GTest is a one-sided G-test statistic
// F(x, y) = 2 n x ln((x + ε) / (y + ε)) with n normalized away (constant
// factors do not change the argmax). It is decreasing in y everywhere and
// increasing in x on the x ≥ y region.
type GTest struct{}

// Name implements Func.
func (GTest) Name() string { return "g-test" }

// Score implements Func.
func (GTest) Score(x, y float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return 2 * x * math.Log((x+Epsilon)/(y+Epsilon))
}

// UpperBound implements Func.
func (s GTest) UpperBound(x float64) float64 { return s.Score(x, 0) }

// InfoGain is a one-sided information gain: the reduction in class entropy
// obtained by splitting on pattern presence, computed under balanced class
// priors, minus the same quantity with the negative response zeroed so that
// the function is anti-monotone in y.
type InfoGain struct{}

// Name implements Func.
func (InfoGain) Name() string { return "info-gain" }

// Score implements Func. It computes the mutual information between class
// and pattern presence under balanced class priors,
// H(1/2) - [P(f) H(x|f) + P(!f) H(x|!f)], signed negative when the pattern
// is anti-correlated (x < y) so that only positively discriminative patterns
// score high; a small -εy term keeps strict anti-monotonicity in y on
// entropy plateaus.
func (InfoGain) Score(x, y float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	h := func(p float64) float64 {
		if p <= 0 || p >= 1 {
			return 0
		}
		return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	}
	pf := (x + y) / 2 // P(pattern present), balanced priors
	var cond float64
	if pf > 0 {
		cond += pf * h(x/(x+y))
	}
	if pf < 1 {
		cond += (1 - pf) * h((1-x)/((1-x)+(1-y)))
	}
	ig := 1.0 - cond // mutual information, >= 0
	if x < y {
		ig = -ig
	}
	return ig - Epsilon*y
}

// UpperBound implements Func.
func (s InfoGain) UpperBound(x float64) float64 { return s.Score(x, 0) }

// ByName returns the named score function. Valid names: "log-ratio",
// "g-test", "info-gain".
func ByName(name string) (Func, error) {
	switch name {
	case "log-ratio", "logratio", "":
		return LogRatio{}, nil
	case "g-test", "gtest":
		return GTest{}, nil
	case "info-gain", "infogain":
		return InfoGain{}, nil
	default:
		return nil, fmt.Errorf("score: unknown function %q (want log-ratio, g-test, or info-gain)", name)
	}
}
