package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allFuncs() []Func {
	return []Func{LogRatio{}, GTest{}, InfoGain{}}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"log-ratio", "g-test", "info-gain", ""} {
		f, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if f == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if _, err := ByName("chi2"); err == nil {
		t.Errorf("ByName(chi2) succeeded")
	}
}

func TestZeroPositiveFrequencyIsWorst(t *testing.T) {
	for _, f := range allFuncs() {
		if got := f.Score(0, 0); !math.IsInf(got, -1) {
			t.Errorf("%s.Score(0,0) = %v, want -Inf", f.Name(), got)
		}
	}
}

func TestAntiMonotoneInY(t *testing.T) {
	// When x is fixed, smaller y gives a strictly larger score.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := 0.05 + 0.95*rng.Float64()
		y1 := rng.Float64()
		y2 := rng.Float64()
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		if y1 == y2 {
			return true
		}
		for _, fn := range allFuncs() {
			if !(fn.Score(x, y1) > fn.Score(x, y2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInXOnDiscriminativeRegion(t *testing.T) {
	// When y is fixed, larger x gives a larger score, on the x >= y region
	// (LogRatio satisfies this globally).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := rng.Float64() * 0.5
		x1 := y + (1-y)*rng.Float64()
		x2 := y + (1-y)*rng.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if x1 == x2 {
			return true
		}
		for _, fn := range allFuncs() {
			if fn.Score(x1, y) > fn.Score(x2, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogRatioMonotoneInXEverywhere(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := rng.Float64()
		x1 := rng.Float64()
		x2 := rng.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return LogRatio{}.Score(x1, y) <= LogRatio{}.Score(x2, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUpperBoundDominates(t *testing.T) {
	// UpperBound(x) must be >= Score(x', y') for any x' <= x and y' >= 0:
	// this is what makes the Section 4.1 pruning sound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.Float64()
		xSub := x * rng.Float64() // x' <= x
		y := rng.Float64()
		for _, fn := range allFuncs() {
			if fn.Score(xSub, y) > fn.UpperBound(x)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLogRatioKnownValues(t *testing.T) {
	s := LogRatio{}
	if got := s.Score(1, 0); math.Abs(got-math.Log(1/Epsilon)) > 1e-9 {
		t.Errorf("Score(1,0) = %v", got)
	}
	if got := s.Score(0.5, 0.5); got >= 0.01 || got < -0.01 {
		t.Errorf("Score(0.5,0.5) = %v, want ~0", got)
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range allFuncs() {
		if seen[f.Name()] {
			t.Errorf("duplicate name %q", f.Name())
		}
		seen[f.Name()] = true
	}
}
