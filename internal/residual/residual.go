// Package residual implements residual graph sets and their constant-time
// equivalence test from Section 4.4 of the TGMiner paper.
//
// For a pattern match G' inside a data graph G, the residual graph
// R(G, G') consists of the edges of G whose timestamps are strictly larger
// than the largest matched timestamp. Because edges are totally ordered, a
// residual graph of G is fully determined by the position of that largest
// matched edge, so we represent it as (graph id, cut position) and its size
// as |E(G)| - cut - 1.
//
// Lemma 6: for patterns g1 ⊆t g2, R(G, g1) = R(G, g2) iff
// I(G, g1) = I(G, g2), where I sums residual sizes over all matches. This
// lets the miner compare residual sets by comparing two integers.
package residual

import (
	"cmp"
	"slices"

	"tgminer/internal/tgraph"
)

// Ref identifies one residual graph: the suffix of Graphs[GraphID]'s edge
// list starting after position Cut.
type Ref struct {
	GraphID int32
	Cut     int32 // position of the last matched edge in the host graph
}

// Size returns the number of edges in the residual graph referred to by r.
func (r Ref) Size(graphs []*tgraph.Graph) int {
	return graphs[r.GraphID].NumEdges() - int(r.Cut) - 1
}

// Set is a residual graph set: one Ref per pattern match, in no particular
// order. Sets are value-like; Normalize sorts them for canonical comparison.
type Set []Ref

// Normalize sorts the set so that two equal sets compare element-wise.
// slices.SortFunc rather than sort.Slice: this runs once or twice per
// explored pattern, and the interface-based sort allocates per call while
// the generic one does not.
func (s Set) Normalize() {
	slices.SortFunc(s, func(a, b Ref) int {
		if c := cmp.Compare(a.GraphID, b.GraphID); c != 0 {
			return c
		}
		return cmp.Compare(a.Cut, b.Cut)
	})
}

// I computes the integer compression of the set: the sum of residual sizes
// over all matches (Lemma 6).
func (s Set) I(graphs []*tgraph.Graph) int64 {
	var total int64
	for _, r := range s {
		total += int64(r.Size(graphs))
	}
	return total
}

// EqualLinear compares two residual graph sets by explicit linear scan over
// their normalized forms. This is the LinearScan baseline from Section 6.1:
// correct but pays O(n log n + n) per comparison instead of O(1).
func EqualLinear(a, b Set, graphs []*tgraph.Graph) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append(Set(nil), a...)
	bc := append(Set(nil), b...)
	ac.Normalize()
	bc.Normalize()
	for i := range ac {
		// Residual graphs are equivalent iff they are the same edge suffix.
		// Two suffixes of (possibly different) graphs are compared by
		// identity of the suffix: same graph and same cut, or both empty.
		if ac[i] == bc[i] {
			continue
		}
		if ac[i].Size(graphs) == 0 && bc[i].Size(graphs) == 0 {
			continue
		}
		return false
	}
	return true
}

// LabelsIntersectSuffix reports whether any label in ls occurs as an edge
// endpoint in the residual graph referred to by r. It runs in O(|ls|) using
// the host graph's last-occurrence index: label l occurs after cut position
// c iff LastOccurrence(l) > c.
func LabelsIntersectSuffix(r Ref, ls []tgraph.Label, graphs []*tgraph.Graph) bool {
	g := graphs[r.GraphID]
	for _, l := range ls {
		if g.LastOccurrence(l) > r.Cut {
			return true
		}
	}
	return false
}

// SuffixLabelSet materializes the residual node label set of a single
// residual graph. Used by tests and diagnostics; the miner uses
// LabelsIntersectSuffix instead.
func SuffixLabelSet(r Ref, graphs []*tgraph.Graph) map[tgraph.Label]bool {
	g := graphs[r.GraphID]
	out := make(map[tgraph.Label]bool)
	for pos := int(r.Cut) + 1; pos < g.NumEdges(); pos++ {
		e := g.EdgeAt(pos)
		out[g.LabelOf(e.Src)] = true
		out[g.LabelOf(e.Dst)] = true
	}
	return out
}
