package residual

import (
	"testing"

	"tgminer/internal/tgraph"
)

func lineGraph(t *testing.T, n int) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for i := 0; i <= n; i++ {
		b.AddNode(tgraph.Label(i % 3))
	}
	for i := 0; i < n; i++ {
		if err := b.AddEdge(tgraph.NodeID(i), tgraph.NodeID(i+1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRefSize(t *testing.T) {
	g := lineGraph(t, 5)
	graphs := []*tgraph.Graph{g}
	if got := (Ref{GraphID: 0, Cut: 1}).Size(graphs); got != 3 {
		t.Errorf("Size(cut=1) = %d, want 3", got)
	}
	if got := (Ref{GraphID: 0, Cut: 4}).Size(graphs); got != 0 {
		t.Errorf("Size(cut=4) = %d, want 0", got)
	}
}

func TestSetI(t *testing.T) {
	graphs := []*tgraph.Graph{lineGraph(t, 5), lineGraph(t, 3)}
	s := Set{{GraphID: 0, Cut: 0}, {GraphID: 1, Cut: 1}}
	// Sizes: 5-0-1=4 and 3-1-1=1.
	if got := s.I(graphs); got != 5 {
		t.Errorf("I = %d, want 5", got)
	}
}

func TestEqualLinear(t *testing.T) {
	graphs := []*tgraph.Graph{lineGraph(t, 5), lineGraph(t, 5)}
	a := Set{{GraphID: 0, Cut: 2}, {GraphID: 1, Cut: 3}}
	b := Set{{GraphID: 1, Cut: 3}, {GraphID: 0, Cut: 2}} // permuted
	if !EqualLinear(a, b, graphs) {
		t.Errorf("permuted equal sets reported unequal")
	}
	c := Set{{GraphID: 0, Cut: 2}, {GraphID: 1, Cut: 2}}
	if EqualLinear(a, c, graphs) {
		t.Errorf("different cuts reported equal")
	}
	d := Set{{GraphID: 0, Cut: 2}}
	if EqualLinear(a, d, graphs) {
		t.Errorf("different sizes reported equal")
	}
}

func TestEqualLinearEmptySuffixes(t *testing.T) {
	// Two refs pointing at exhausted suffixes of different graphs are both
	// the empty residual graph and must compare equal.
	graphs := []*tgraph.Graph{lineGraph(t, 3), lineGraph(t, 5)}
	a := Set{{GraphID: 0, Cut: 2}} // size 0
	b := Set{{GraphID: 1, Cut: 4}} // size 0
	if !EqualLinear(a, b, graphs) {
		t.Errorf("empty residuals reported unequal")
	}
}

func TestLemma6Agreement(t *testing.T) {
	// For the sets the miner actually compares (one pattern's residual set
	// vs a subpattern's over the same graphs with the subgraph relation),
	// the I-compression agrees with the linear scan. We exercise the
	// equivalence direction: equal sets => equal I; and I differing =>
	// sets differ.
	graphs := []*tgraph.Graph{lineGraph(t, 6), lineGraph(t, 6)}
	a := Set{{GraphID: 0, Cut: 2}, {GraphID: 1, Cut: 4}}
	b := Set{{GraphID: 0, Cut: 2}, {GraphID: 1, Cut: 4}}
	if a.I(graphs) != b.I(graphs) || !EqualLinear(a, b, graphs) {
		t.Errorf("identical sets disagree")
	}
	c := Set{{GraphID: 0, Cut: 3}, {GraphID: 1, Cut: 4}}
	if a.I(graphs) == c.I(graphs) {
		t.Errorf("I failed to separate different cuts in the same graph")
	}
	if EqualLinear(a, c, graphs) {
		t.Errorf("EqualLinear failed to separate different cuts")
	}
}

func TestLabelsIntersectSuffix(t *testing.T) {
	// Line graph labels cycle 0,1,2. Node i has label i%3.
	g := lineGraph(t, 5) // nodes 0..5, edges (i,i+1) at time i
	graphs := []*tgraph.Graph{g}
	// Suffix after cut=3 holds edges 4: nodes 4,5 -> labels 1,2.
	r := Ref{GraphID: 0, Cut: 3}
	if !LabelsIntersectSuffix(r, []tgraph.Label{2}, graphs) {
		t.Errorf("label 2 should appear in suffix")
	}
	if LabelsIntersectSuffix(r, []tgraph.Label{0}, graphs) {
		t.Errorf("label 0 should not appear in suffix after cut 3")
	}
	if LabelsIntersectSuffix(r, nil, graphs) {
		t.Errorf("empty label set intersects")
	}
	// Cross-check against the materialized label set.
	want := SuffixLabelSet(r, graphs)
	for l := tgraph.Label(0); l < 3; l++ {
		got := LabelsIntersectSuffix(r, []tgraph.Label{l}, graphs)
		if got != want[l] {
			t.Errorf("label %d: fast=%v slow=%v", l, got, want[l])
		}
	}
}

func TestSuffixLabelSetFullAndEmpty(t *testing.T) {
	g := lineGraph(t, 4)
	graphs := []*tgraph.Graph{g}
	all := SuffixLabelSet(Ref{GraphID: 0, Cut: -1}, graphs)
	if len(all) != 3 {
		t.Errorf("full suffix labels = %v, want 3 labels", all)
	}
	none := SuffixLabelSet(Ref{GraphID: 0, Cut: 3}, graphs)
	if len(none) != 0 {
		t.Errorf("empty suffix labels = %v", none)
	}
}
