// Package core wires the TGMiner behavior-query discovery pipeline of
// Figure 2 in the paper: from a behavior's positive temporal graphs and the
// background negative set, mine the maximally discriminative patterns,
// rank ties with domain knowledge (Appendix M), and emit the top-k behavior
// queries; plus the equivalent pipelines for the paper's two effectiveness
// baselines (Ntemp and NodeSet) and the query evaluation harness.
package core

import (
	"context"
	"fmt"

	"tgminer/internal/gspan"
	"tgminer/internal/miner"
	"tgminer/internal/nodeset"
	"tgminer/internal/rank"
	"tgminer/internal/search"
	"tgminer/internal/tgraph"
)

// QueryConfig controls query discovery.
type QueryConfig struct {
	// QuerySize is the number of edges per behavior query (default 6,
	// Figure 11 sweeps 1..10). Mining explores patterns up to this size.
	QuerySize int
	// TopK is the number of queries built from the tied best patterns
	// (default 5, per Appendix M).
	TopK int
	// Miner configures the mining algorithm (default TGMinerOptions).
	Miner *miner.Options
	// Interest ranks tied patterns; required for deterministic top-k
	// selection. If nil, ranking falls back to pattern keys.
	Interest *rank.Interest
}

func (c QueryConfig) normalize() QueryConfig {
	if c.QuerySize <= 0 {
		c.QuerySize = 6
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.Miner == nil {
		o := miner.TGMinerOptions()
		c.Miner = &o
	}
	return c
}

// BehaviorQueries is the discovery outcome for one behavior.
type BehaviorQueries struct {
	// Queries are the top-k temporal graph pattern queries, best first.
	Queries []*tgraph.Pattern
	// BestScore is the maximum discriminative score F*.
	BestScore float64
	// Mining is the raw mining result (stats, ties).
	Mining *miner.Result
}

// DiscoverQueries runs the full TGMiner pipeline for one behavior. It is a
// compatibility wrapper over DiscoverQueriesContext with a background
// context.
func DiscoverQueries(pos, neg []*tgraph.Graph, cfg QueryConfig) (*BehaviorQueries, error) {
	return DiscoverQueriesContext(context.Background(), pos, neg, cfg)
}

// DiscoverQueriesContext runs the full TGMiner pipeline for one behavior
// under a context. On cancellation it returns ctx.Err() together with a
// non-nil BehaviorQueries built from the partial mining result — possibly
// with zero Queries if no seed completed before the cancel. The result is
// nil only when mining itself failed (e.g. an empty positive set).
func DiscoverQueriesContext(ctx context.Context, pos, neg []*tgraph.Graph, cfg QueryConfig) (*BehaviorQueries, error) {
	cfg = cfg.normalize()
	opts := *cfg.Miner
	opts.MaxEdges = cfg.QuerySize
	res, err := miner.MineContext(ctx, pos, neg, opts)
	if res == nil {
		// A real mining failure (e.g. empty positive set), as opposed to a
		// cancellation, which yields a partial result alongside ctx.Err().
		return nil, fmt.Errorf("core: mining failed: %w", err)
	}
	return buildQueries(res, cfg), err
}

// buildQueries ranks the mined tie set into the top-k behavior queries.
func buildQueries(res *miner.Result, cfg QueryConfig) *BehaviorQueries {
	cands := make([]*tgraph.Pattern, 0, len(res.Best))
	// Fix the query size: prefer tied patterns with exactly QuerySize edges
	// (the paper evaluates fixed-size queries), falling back to all ties.
	for _, sp := range res.Best {
		if sp.Pattern.NumEdges() == cfg.QuerySize {
			cands = append(cands, sp.Pattern)
		}
	}
	if len(cands) == 0 {
		for _, sp := range res.Best {
			cands = append(cands, sp.Pattern)
		}
	}
	var top []*tgraph.Pattern
	if cfg.Interest != nil {
		top = cfg.Interest.TopK(cands, cfg.TopK)
	} else {
		top = topByKey(cands, cfg.TopK)
	}
	return &BehaviorQueries{Queries: top, BestScore: res.BestScore, Mining: res}
}

func topByKey(cands []*tgraph.Pattern, k int) []*tgraph.Pattern {
	sorted := append([]*tgraph.Pattern(nil), cands...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Key() < sorted[j-1].Key(); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// NonTemporalQueries is the Ntemp pipeline outcome.
type NonTemporalQueries struct {
	Queries   []*gspan.Pattern
	BestScore float64
	Mining    *gspan.Result
}

// DiscoverNonTemporalQueries runs the Ntemp baseline pipeline: collapse
// temporal information, mine discriminative non-temporal patterns, rank
// ties by the same interest score.
func DiscoverNonTemporalQueries(pos, neg []*tgraph.Graph, cfg QueryConfig) (*NonTemporalQueries, error) {
	cfg = cfg.normalize()
	posN := make([]*gspan.Graph, len(pos))
	for i, g := range pos {
		posN[i] = gspan.FromTemporal(g)
	}
	negN := make([]*gspan.Graph, len(neg))
	for i, g := range neg {
		negN[i] = gspan.FromTemporal(g)
	}
	res, err := gspan.Mine(posN, negN, gspan.Options{MaxEdges: cfg.QuerySize})
	if err != nil {
		return nil, fmt.Errorf("core: ntemp mining failed: %w", err)
	}
	cands := make([]*gspan.Pattern, 0, len(res.Best))
	for _, sp := range res.Best {
		if sp.Pattern.NumEdges() == cfg.QuerySize {
			cands = append(cands, sp.Pattern)
		}
	}
	if len(cands) == 0 {
		for _, sp := range res.Best {
			cands = append(cands, sp.Pattern)
		}
	}
	ranked := rankNonTemporal(cands, cfg.Interest)
	if len(ranked) > cfg.TopK {
		ranked = ranked[:cfg.TopK]
	}
	return &NonTemporalQueries{Queries: ranked, BestScore: res.BestScore, Mining: res}, nil
}

func rankNonTemporal(cands []*gspan.Pattern, in *rank.Interest) []*gspan.Pattern {
	type scored struct {
		p *gspan.Pattern
		s float64
	}
	ss := make([]scored, len(cands))
	for i, p := range cands {
		var s float64
		if in != nil {
			for _, l := range p.Labels {
				s += in.LabelScore(l)
			}
		}
		ss[i] = scored{p: p, s: s}
	}
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].s > ss[j-1].s; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	out := make([]*gspan.Pattern, len(ss))
	for i := range ss {
		out[i] = ss[i].p
	}
	return out
}

// DiscoverNodeSetQuery runs the NodeSet baseline: top-k discriminative
// labels under the same score function.
func DiscoverNodeSetQuery(pos, neg []*tgraph.Graph, cfg QueryConfig, in *rank.Interest) (*nodeset.Query, error) {
	cfg = cfg.normalize()
	return nodeset.Mine(pos, neg, nodeset.Options{K: cfg.QuerySize, Interest: in})
}

// Evaluator scores behavior queries against an indexed test graph.
type Evaluator struct {
	Engine *search.Engine
	// Window bounds match spans (the longest observed behavior lifetime).
	Window int64
	// Limit caps matches per query (default from search.Options).
	Limit int
}

// EvalTemporal runs each temporal query, unions the matches (the paper
// evaluates the union of its top-5 queries), and scores them.
func (ev *Evaluator) EvalTemporal(queries []*tgraph.Pattern, truth []search.Interval) search.Metrics {
	results := make([]search.Result, len(queries))
	for i, q := range queries {
		results[i] = ev.Engine.FindTemporal(q, search.Options{Window: ev.Window, Limit: ev.Limit})
	}
	return search.Evaluate(search.Union(results...).Matches, truth)
}

// EvalNonTemporal is the Ntemp counterpart of EvalTemporal.
func (ev *Evaluator) EvalNonTemporal(queries []*gspan.Pattern, truth []search.Interval) search.Metrics {
	results := make([]search.Result, len(queries))
	for i, q := range queries {
		results[i] = ev.Engine.FindNonTemporal(q, search.Options{Window: ev.Window, Limit: ev.Limit})
	}
	return search.Evaluate(search.Union(results...).Matches, truth)
}

// EvalNodeSet scores a NodeSet query.
func (ev *Evaluator) EvalNodeSet(q *nodeset.Query, truth []search.Interval) search.Metrics {
	res := ev.Engine.FindLabelSet(q.Labels, search.Options{Window: ev.Window, Limit: ev.Limit})
	return search.Evaluate(res.Matches, truth)
}
