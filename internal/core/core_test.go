package core

import (
	"testing"

	"tgminer/internal/miner"
	"tgminer/internal/rank"
	"tgminer/internal/search"
	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// pipelineFixture generates a small corpus + timeline shared by the
// integration tests.
type pipelineFixture struct {
	ds       *sysgen.Dataset
	tl       *sysgen.Timeline
	engine   *search.Engine
	interest *rank.Interest
}

func newFixture(t *testing.T, behaviors []string) *pipelineFixture {
	t.Helper()
	cfg := sysgen.Config{
		Scale: 0.3, GraphsPerBehavior: 10, BackgroundGraphs: 20, Seed: 101,
		Behaviors: behaviors,
	}
	ds := sysgen.Generate(cfg)
	tl := sysgen.GenerateTimeline(sysgen.TimelineConfig{
		Instances: 30, Scale: 0.3, Seed: 202, Behaviors: behaviors, Corruption: 0.1,
	}, ds.Dict)
	var all []*tgraph.Graph
	for _, b := range ds.Behaviors {
		all = append(all, b.Graphs...)
	}
	all = append(all, ds.Background...)
	return &pipelineFixture{
		ds:       ds,
		tl:       tl,
		engine:   search.NewEngine(tl.Graph),
		interest: rank.NewInterest(all, ds.Dict, nil),
	}
}

func truthOf(tl *sysgen.Timeline, behavior string) []search.Interval {
	var out []search.Interval
	for _, inst := range tl.Truth {
		if inst.Behavior == behavior {
			out = append(out, search.Interval{Start: inst.Start, End: inst.End})
		}
	}
	return out
}

func TestEndToEndPipelineAccuracy(t *testing.T) {
	behaviors := []string{"bzip2-decompress", "wget-download"}
	fx := newFixture(t, behaviors)
	ev := &Evaluator{Engine: fx.engine, Window: fx.tl.Window}

	for _, name := range behaviors {
		pos := fx.ds.ByName(name)
		bq, err := DiscoverQueries(pos, fx.ds.Background, QueryConfig{
			QuerySize: 4, TopK: 5, Interest: fx.interest,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(bq.Queries) == 0 {
			t.Fatalf("%s: no queries discovered", name)
		}
		for _, q := range bq.Queries {
			if q.NumEdges() > 4 {
				t.Errorf("%s: query has %d edges, max 4", name, q.NumEdges())
			}
		}
		m := ev.EvalTemporal(bq.Queries, truthOf(fx.tl, name))
		if m.Precision() < 0.8 {
			t.Errorf("%s: TGMiner precision = %.2f, want >= 0.8 (metrics %+v)", name, m.Precision(), m)
		}
		if m.Recall() < 0.7 {
			t.Errorf("%s: TGMiner recall = %.2f, want >= 0.7 (metrics %+v)", name, m.Recall(), m)
		}
	}
}

func TestTemporalBeatsNonTemporalOnConfusionPair(t *testing.T) {
	// scp-download vs ssh-login share non-temporal structure; temporal
	// queries must be strictly more precise on scp-download.
	behaviors := []string{"scp-download", "ssh-login"}
	fx := newFixture(t, behaviors)
	ev := &Evaluator{Engine: fx.engine, Window: fx.tl.Window}
	name := "scp-download"
	pos := fx.ds.ByName(name)
	truth := truthOf(fx.tl, name)

	bq, err := DiscoverQueries(pos, fx.ds.Background, QueryConfig{QuerySize: 5, TopK: 5, Interest: fx.interest})
	if err != nil {
		t.Fatal(err)
	}
	tm := ev.EvalTemporal(bq.Queries, truth)

	nq, err := DiscoverNonTemporalQueries(pos, fx.ds.Background, QueryConfig{QuerySize: 5, TopK: 5, Interest: fx.interest})
	if err != nil {
		t.Fatal(err)
	}
	nm := ev.EvalNonTemporal(nq.Queries, truth)

	if tm.Precision() < nm.Precision() {
		t.Errorf("temporal precision %.3f < non-temporal %.3f on confusion pair",
			tm.Precision(), nm.Precision())
	}
	if tm.Precision() < 0.75 {
		t.Errorf("temporal precision %.3f too low (metrics %+v)", tm.Precision(), tm)
	}
}

func TestNodeSetPipeline(t *testing.T) {
	behaviors := []string{"gzip-decompress"}
	fx := newFixture(t, behaviors)
	ev := &Evaluator{Engine: fx.engine, Window: fx.tl.Window}
	pos := fx.ds.ByName("gzip-decompress")
	q, err := DiscoverNodeSetQuery(pos, fx.ds.Background, QueryConfig{QuerySize: 4}, fx.interest)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Labels) != 4 {
		t.Fatalf("query labels = %d, want 4", len(q.Labels))
	}
	m := ev.EvalNodeSet(q, truthOf(fx.tl, "gzip-decompress"))
	// NodeSet is fragile: with only 10 training graphs, unstable noise
	// labels tie with footprint labels at frequency 1 and dilute the query
	// (the same failure mode behind the paper's low NodeSet recall on
	// several behaviors). Require only that the pipeline produces some
	// correct discoveries at this scale.
	if m.Recall() < 0.25 {
		t.Errorf("NodeSet recall = %.2f, want >= 0.25 (%+v)", m.Recall(), m)
	}
	if m.Identified > 0 && m.Precision() < 0.5 {
		t.Errorf("NodeSet precision = %.2f, want >= 0.5 (%+v)", m.Precision(), m)
	}
}

func TestDiscoverQueriesCustomMiner(t *testing.T) {
	fx := newFixture(t, []string{"bzip2-decompress"})
	opts := miner.SubPruneOptions()
	pos := fx.ds.ByName("bzip2-decompress")
	bq, err := DiscoverQueries(pos, fx.ds.Background, QueryConfig{
		QuerySize: 3, TopK: 2, Miner: &opts, Interest: fx.interest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bq.Queries) == 0 || len(bq.Queries) > 2 {
		t.Errorf("queries = %d, want 1..2", len(bq.Queries))
	}
	if bq.Mining.Stats.PatternsExplored == 0 {
		t.Errorf("no mining stats propagated")
	}
}

func TestDiscoverQueriesNoInterestFallback(t *testing.T) {
	fx := newFixture(t, []string{"gzip-decompress"})
	pos := fx.ds.ByName("gzip-decompress")
	bq, err := DiscoverQueries(pos, fx.ds.Background, QueryConfig{QuerySize: 3, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(bq.Queries) == 0 {
		t.Errorf("no queries without interest ranking")
	}
}
