package vf2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
)

func randomPattern(rng *rand.Rand, maxEdges, labelRange int) *tgraph.Pattern {
	p := tgraph.SingleEdgePattern(tgraph.Label(rng.Intn(labelRange)), tgraph.Label(rng.Intn(labelRange)), rng.Intn(8) == 0)
	m := 1 + rng.Intn(maxEdges)
	for p.NumEdges() < m {
		switch rng.Intn(3) {
		case 0:
			p = p.GrowForward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.Label(rng.Intn(labelRange)))
		case 1:
			p = p.GrowBackward(tgraph.Label(rng.Intn(labelRange)), tgraph.NodeID(rng.Intn(p.NumNodes())))
		default:
			p = p.GrowInward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.NodeID(rng.Intn(p.NumNodes())))
		}
	}
	return p
}

func TestVF2AgreesWithSeqcodeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomPattern(rng, 4, 2)
		g2 := randomPattern(rng, 8, 2)
		_, gotVF2 := Subsumes(g1, g2)
		_, gotSeq := seqcode.Subsumes(g1, g2)
		if gotVF2 != gotSeq {
			t.Logf("seed=%d disagreement: vf2=%v seq=%v\n g1=%v\n g2=%v", seed, gotVF2, gotSeq, g1, g2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVF2SelfLoop(t *testing.T) {
	loop := tgraph.SingleEdgePattern(0, 0, true)
	host, err := tgraph.NewPattern([]tgraph.Label{1, 0}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := Subsumes(loop, host)
	if !ok {
		t.Fatalf("self loop not found")
	}
	if m[0] != 1 {
		t.Errorf("mapping = %v, want node 1", m)
	}
	plain := tgraph.SingleEdgePattern(0, 0, false)
	if _, ok := Subsumes(plain, host); ok {
		t.Errorf("two-node A->A pattern matched self-loop-only host")
	}
}

func TestVF2MappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		g1 := randomPattern(rng, 4, 3)
		g2 := g1
		for j := 0; j < rng.Intn(4); j++ {
			g2 = g2.GrowForward(tgraph.NodeID(rng.Intn(g2.NumNodes())), tgraph.Label(rng.Intn(3)))
		}
		m, ok := Subsumes(g1, g2)
		if !ok {
			t.Fatalf("self-embed failed: %v in %v", g1, g2)
		}
		// Injectivity and label preservation.
		seen := map[tgraph.NodeID]bool{}
		for v1, v2 := range m {
			if v2 == -1 {
				continue
			}
			if g1.LabelOf(tgraph.NodeID(v1)) != g2.LabelOf(v2) {
				t.Fatalf("label mismatch in mapping %v", m)
			}
			if seen[v2] {
				t.Fatalf("non-injective mapping %v", m)
			}
			seen[v2] = true
		}
	}
}

func TestVF2TesterCounts(t *testing.T) {
	var tt Tester
	g := tgraph.SingleEdgePattern(0, 1, false)
	h, _ := tgraph.NewPattern([]tgraph.Label{0, 1, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	if _, ok := tt.Test(g, h); !ok {
		t.Fatalf("embed failed")
	}
	if tt.Tests != 1 || tt.States == 0 {
		t.Errorf("stats not recorded: tests=%d states=%d", tt.Tests, tt.States)
	}
	if tt.Name() != "vf2" {
		t.Errorf("Name = %q", tt.Name())
	}
}
