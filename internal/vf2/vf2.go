// Package vf2 implements a modified VF2 subgraph-isomorphism algorithm for
// temporal subgraph tests, the PruneVF2 baseline of the TGMiner paper
// (Section 6.1, baseline 4; Cordella et al. [5] adapted to totally ordered
// edges).
//
// The classic VF2 maps nodes one at a time with feasibility rules; for
// temporal graphs the natural modification matches pattern edges in
// timestamp order, extending the node mapping as new endpoints appear. This
// preserves VF2's state-space search structure (consistency checks on each
// extension, no sequence encoding, no memoization) and is the intended
// slower comparison point for the sequence-test algorithm in
// internal/seqcode.
package vf2

import (
	"tgminer/internal/tgraph"
)

// Tester performs temporal subgraph tests via the modified VF2 search. The
// zero value is ready to use.
type Tester struct {
	// Tests counts Test invocations.
	Tests int64
	// States counts search states expanded (edge-candidate bindings tried).
	States int64
}

// Name identifies the tester in benchmark output.
func (t *Tester) Name() string { return "vf2" }

// CloneTester returns a fresh Tester for a parallel mining worker (the
// miner's optional per-worker instantiation hook).
func (t *Tester) CloneTester() any { return &Tester{} }

// Test reports whether g1 ⊆t g2 and, if so, returns the node mapping from g1
// nodes to g2 nodes (-1 for g1 nodes not incident to any edge).
func (t *Tester) Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	t.Tests++
	return subsumes(g1, g2, &t.States)
}

// Subsumes reports whether g1 ⊆t g2, discarding search statistics.
func Subsumes(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	var n int64
	return subsumes(g1, g2, &n)
}

func subsumes(g1, g2 *tgraph.Pattern, states *int64) ([]tgraph.NodeID, bool) {
	if g1.NumEdges() > g2.NumEdges() || g1.NumNodes() > g2.NumNodes() {
		return nil, false
	}
	s := &state{g1: g1, g2: g2, states: states}
	s.mapping = make([]tgraph.NodeID, g1.NumNodes())
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	s.used = make([]bool, g2.NumNodes())
	if s.match(0, 0) {
		return s.mapping, true
	}
	return nil, false
}

type state struct {
	g1, g2  *tgraph.Pattern
	mapping []tgraph.NodeID
	used    []bool
	states  *int64
}

// match tries to embed g1 edges [i:] into g2 edges at positions >= from.
func (s *state) match(i, from int) bool {
	e1 := s.g1.Edges()
	if i == len(e1) {
		return true
	}
	e2 := s.g2.Edges()
	pe := e1[i]
	// Enough edges must remain in g2 to host the rest of g1.
	limit := len(e2) - (len(e1) - i)
	for p := from; p <= limit; p++ {
		ge := e2[p]
		su, sv, ok := s.feasible(pe, ge)
		if !ok {
			continue
		}
		*s.states++
		if su {
			s.mapping[pe.Src] = ge.Src
			s.used[ge.Src] = true
		}
		if sv {
			s.mapping[pe.Dst] = ge.Dst
			s.used[ge.Dst] = true
		}
		if s.match(i+1, p+1) {
			return true
		}
		if su {
			s.mapping[pe.Src] = -1
			s.used[ge.Src] = false
		}
		if sv {
			s.mapping[pe.Dst] = -1
			s.used[ge.Dst] = false
		}
	}
	return false
}

// feasible checks VF2-style consistency of binding pattern edge pe to graph
// edge ge, returning whether the source and/or destination binding is new.
func (s *state) feasible(pe, ge tgraph.PEdge) (newSrc, newDst, ok bool) {
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	switch {
	case ms != -1 && ms != ge.Src:
		return false, false, false
	case ms == -1:
		if s.used[ge.Src] || s.g1.LabelOf(pe.Src) != s.g2.LabelOf(ge.Src) {
			return false, false, false
		}
		newSrc = true
	}
	// Self-loop in the pattern must map to a self-loop in the graph.
	if pe.Src == pe.Dst {
		if ge.Src != ge.Dst {
			return false, false, false
		}
		return newSrc, false, true
	}
	if ge.Src == ge.Dst {
		// Distinct pattern endpoints cannot share a graph node.
		return false, false, false
	}
	switch {
	case md != -1 && md != ge.Dst:
		return false, false, false
	case md == -1:
		if s.g1.LabelOf(pe.Dst) != s.g2.LabelOf(ge.Dst) {
			return false, false, false
		}
		// ge.Dst may have just been claimed by a new source binding.
		if s.used[ge.Dst] || (newSrc && ge.Src == ge.Dst) {
			return false, false, false
		}
		newDst = true
	}
	return newSrc, newDst, true
}
