// Package gindex implements the graph-index-based temporal subgraph test,
// the PruneGI baseline of the TGMiner paper (Section 6.1, baseline 3): index
// one-edge substructures of the host graph, then join partial matches into
// full matches in timestamp order (after Zong et al. [38]).
//
// The characteristic cost of this baseline — the reason the paper reports it
// 6x slower than the sequence-test algorithm — is that the one-edge index
// must be rebuilt for every discovered pattern the miner tests against, and
// the breadth-first join materializes whole partial-match frontiers instead
// of backtracking.
package gindex

import (
	"tgminer/internal/tgraph"
)

// Tester performs temporal subgraph tests by index-and-join. The zero value
// is ready to use.
type Tester struct {
	// Tests counts Test invocations.
	Tests int64
	// IndexBuilds counts one-edge index constructions (one per Test).
	IndexBuilds int64
	// PartialMatches counts the total partial matches materialized.
	PartialMatches int64
}

// Name identifies the tester in benchmark output.
func (t *Tester) Name() string { return "gindex" }

// CloneTester returns a fresh Tester for a parallel mining worker (the
// miner's optional per-worker instantiation hook).
func (t *Tester) CloneTester() any { return &Tester{} }

type labelPair struct {
	src, dst tgraph.Label
}

// partial is one partial match after joining a prefix of the pattern's edge
// sequence.
type partial struct {
	mapping []tgraph.NodeID // g1 node -> g2 node (-1 unset)
	used    map[tgraph.NodeID]bool
	lastPos int
}

// Test reports whether g1 ⊆t g2 and returns the node mapping if so.
func (t *Tester) Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	t.Tests++
	if g1.NumEdges() > g2.NumEdges() || g1.NumNodes() > g2.NumNodes() {
		return nil, false
	}
	if g1.NumEdges() == 0 {
		m := make([]tgraph.NodeID, g1.NumNodes())
		for i := range m {
			m[i] = -1
		}
		return m, true
	}

	// Build the one-edge substructure index for the host pattern. The index
	// is rebuilt per test: in the mining loop the host is a freshly
	// discovered pattern, so there is nothing to reuse (this is the
	// overhead the paper attributes to PruneGI).
	t.IndexBuilds++
	index := make(map[labelPair][]int, g2.NumEdges())
	for pos, e := range g2.Edges() {
		lp := labelPair{src: g2.LabelOf(e.Src), dst: g2.LabelOf(e.Dst)}
		index[lp] = append(index[lp], pos)
	}

	// Seed the frontier with matches of the first pattern edge.
	first := g1.EdgeAt(0)
	frontier := make([]partial, 0, 8)
	for _, pos := range index[labelPair{src: g1.LabelOf(first.Src), dst: g1.LabelOf(first.Dst)}] {
		ge := g2.EdgeAt(pos)
		if (first.Src == first.Dst) != (ge.Src == ge.Dst) {
			continue
		}
		m := make([]tgraph.NodeID, g1.NumNodes())
		for i := range m {
			m[i] = -1
		}
		m[first.Src] = ge.Src
		m[first.Dst] = ge.Dst
		used := map[tgraph.NodeID]bool{ge.Src: true, ge.Dst: true}
		frontier = append(frontier, partial{mapping: m, used: used, lastPos: pos})
	}
	t.PartialMatches += int64(len(frontier))

	// Join one pattern edge at a time, breadth first.
	for i := 1; i < g1.NumEdges() && len(frontier) > 0; i++ {
		pe := g1.EdgeAt(i)
		cands := index[labelPair{src: g1.LabelOf(pe.Src), dst: g1.LabelOf(pe.Dst)}]
		next := make([]partial, 0, len(frontier))
		seen := make(map[string]bool)
		for _, pm := range frontier {
			for _, pos := range cands {
				if pos <= pm.lastPos {
					continue
				}
				np, ok := join(g1, g2, pm, pe, pos)
				if !ok {
					continue
				}
				k := stateKey(np.mapping, np.lastPos)
				if seen[k] {
					continue
				}
				seen[k] = true
				next = append(next, np)
			}
		}
		frontier = next
		t.PartialMatches += int64(len(frontier))
	}
	if len(frontier) == 0 {
		return nil, false
	}
	return frontier[0].mapping, true
}

// join extends partial match pm with pattern edge pe matched to host edge at
// pos, or reports failure.
func join(g1, g2 *tgraph.Pattern, pm partial, pe tgraph.PEdge, pos int) (partial, bool) {
	ge := g2.EdgeAt(pos)
	if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
		return partial{}, false
	}
	ms, md := pm.mapping[pe.Src], pm.mapping[pe.Dst]
	if ms != -1 && ms != ge.Src {
		return partial{}, false
	}
	if md != -1 && md != ge.Dst {
		return partial{}, false
	}
	if ms == -1 && pm.used[ge.Src] {
		return partial{}, false
	}
	if md == -1 && pe.Src != pe.Dst && pm.used[ge.Dst] {
		return partial{}, false
	}
	if ms == -1 && md == -1 && pe.Src != pe.Dst && ge.Src == ge.Dst {
		return partial{}, false
	}
	nm := append([]tgraph.NodeID(nil), pm.mapping...)
	nu := make(map[tgraph.NodeID]bool, len(pm.used)+2)
	for k := range pm.used {
		nu[k] = true
	}
	nm[pe.Src] = ge.Src
	nu[ge.Src] = true
	nm[pe.Dst] = ge.Dst
	nu[ge.Dst] = true
	return partial{mapping: nm, used: nu, lastPos: pos}, true
}

func stateKey(mapping []tgraph.NodeID, lastPos int) string {
	buf := make([]byte, 0, 4*len(mapping)+4)
	for _, v := range mapping {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	buf = append(buf, byte(lastPos), byte(lastPos>>8), byte(lastPos>>16), byte(lastPos>>24))
	return string(buf)
}
