package gindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
)

func randomPattern(rng *rand.Rand, maxEdges, labelRange int) *tgraph.Pattern {
	p := tgraph.SingleEdgePattern(tgraph.Label(rng.Intn(labelRange)), tgraph.Label(rng.Intn(labelRange)), rng.Intn(8) == 0)
	m := 1 + rng.Intn(maxEdges)
	for p.NumEdges() < m {
		switch rng.Intn(3) {
		case 0:
			p = p.GrowForward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.Label(rng.Intn(labelRange)))
		case 1:
			p = p.GrowBackward(tgraph.Label(rng.Intn(labelRange)), tgraph.NodeID(rng.Intn(p.NumNodes())))
		default:
			p = p.GrowInward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.NodeID(rng.Intn(p.NumNodes())))
		}
	}
	return p
}

func TestGIndexAgreesWithSeqcodeQuick(t *testing.T) {
	var tester Tester
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomPattern(rng, 4, 2)
		g2 := randomPattern(rng, 8, 2)
		_, gotGI := tester.Test(g1, g2)
		_, gotSeq := seqcode.Subsumes(g1, g2)
		if gotGI != gotSeq {
			t.Logf("seed=%d disagreement: gindex=%v seq=%v\n g1=%v\n g2=%v", seed, gotGI, gotSeq, g1, g2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGIndexMappingValid(t *testing.T) {
	var tester Tester
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 150; i++ {
		g1 := randomPattern(rng, 4, 3)
		g2 := g1
		for j := 0; j < rng.Intn(5); j++ {
			g2 = g2.GrowBackward(tgraph.Label(rng.Intn(3)), tgraph.NodeID(rng.Intn(g2.NumNodes())))
		}
		m, ok := tester.Test(g1, g2)
		if !ok {
			t.Fatalf("self-embed failed: %v in %v", g1, g2)
		}
		seen := map[tgraph.NodeID]bool{}
		for v1, v2 := range m {
			if v2 == -1 {
				continue
			}
			if g1.LabelOf(tgraph.NodeID(v1)) != g2.LabelOf(v2) {
				t.Fatalf("label mismatch in mapping %v", m)
			}
			if seen[v2] {
				t.Fatalf("non-injective mapping %v", m)
			}
			seen[v2] = true
		}
	}
}

func TestGIndexStats(t *testing.T) {
	var tester Tester
	g := tgraph.SingleEdgePattern(0, 1, false)
	h, _ := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if _, ok := tester.Test(g, h); !ok {
		t.Fatalf("embed failed")
	}
	if tester.Tests != 1 || tester.IndexBuilds != 1 || tester.PartialMatches == 0 {
		t.Errorf("stats: %+v", tester)
	}
	if tester.Name() != "gindex" {
		t.Errorf("Name = %q", tester.Name())
	}
}

func TestGIndexEmptyPattern(t *testing.T) {
	var tester Tester
	empty, _ := tgraph.NewPattern([]tgraph.Label{0}, nil)
	host := tgraph.SingleEdgePattern(0, 1, false)
	if _, ok := tester.Test(empty, host); !ok {
		t.Errorf("empty pattern should embed")
	}
}
