package dataset

import (
	"bytes"
	"strings"
	"testing"

	"tgminer/internal/tgraph"
)

func sampleCorpus(t *testing.T) *Corpus {
	t.Helper()
	dict := tgraph.NewDict()
	c := &Corpus{Dict: dict}
	var b tgraph.Builder
	b.AddNode(dict.Intern("proc:a"))
	b.AddNode(dict.Intern("file:x"))
	if err := b.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 9); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	c.Add("sample-1", g)

	var b2 tgraph.Builder
	b2.AddNode(dict.Intern("proc:b"))
	b2.AddNode(dict.Intern("file:y"))
	if err := b2.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	g2, err := b2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	c.Add("sample-2", g2)
	return c
}

func TestRoundTrip(t *testing.T) {
	c := sampleCorpus(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Graphs) != 2 {
		t.Fatalf("graphs = %d, want 2", len(got.Graphs))
	}
	if got.Names[0] != "sample-1" || got.Names[1] != "sample-2" {
		t.Errorf("names = %v", got.Names)
	}
	g := got.Graphs[0]
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("graph shape: V=%d E=%d", g.NumNodes(), g.NumEdges())
	}
	if got.Dict.Name(g.LabelOf(0)) != "proc:a" {
		t.Errorf("label round trip failed: %q", got.Dict.Name(g.LabelOf(0)))
	}
	if g.EdgeAt(0).Time != 5 || g.EdgeAt(1).Time != 9 {
		t.Errorf("edge times: %v %v", g.EdgeAt(0), g.EdgeAt(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"v before g":     "v 0 foo\n",
		"e before g":     "e 0 1 2\n",
		"bad g":          "g\n",
		"bad v arity":    "g a\nv 0\n",
		"bad v id":       "g a\nv x foo\n",
		"non-dense v":    "g a\nv 1 foo\n",
		"bad e arity":    "g a\nv 0 foo\ne 0 1\n",
		"bad e fields":   "g a\nv 0 foo\ne x y z\n",
		"edge bad node":  "g a\nv 0 foo\ne 0 5 1\n",
		"unknown record": "z 1 2\n",
		"dup timestamps": "g a\nv 0 foo\nv 1 bar\ne 0 1 3\ne 1 0 3\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input), nil); err == nil {
			t.Errorf("%s: Read succeeded, want error", name)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	input := "# header\n\ng a\n# inner\nv 0 foo\nv 1 bar\n\ne 0 1 0\n"
	c, err := Read(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Graphs) != 1 || c.Graphs[0].NumEdges() != 1 {
		t.Errorf("parsed %d graphs", len(c.Graphs))
	}
}

func TestWriteRejectsWhitespaceLabels(t *testing.T) {
	dict := tgraph.NewDict()
	c := &Corpus{Dict: dict}
	var b tgraph.Builder
	b.AddNode(dict.Intern("bad label"))
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	c.Add("g1", g)
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Errorf("Write accepted whitespace label")
	}
}

func TestFilter(t *testing.T) {
	c := sampleCorpus(t)
	got := c.Filter(func(name string) bool { return name == "sample-2" })
	if len(got) != 1 || got[0].NumEdges() != 1 {
		t.Errorf("Filter returned %d graphs", len(got))
	}
}

func TestSharedDictAcrossReads(t *testing.T) {
	c := sampleCorpus(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	dict := tgraph.NewDict()
	first, err := Read(bytes.NewReader(buf.Bytes()), dict)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Read(bytes.NewReader(buf.Bytes()), dict)
	if err != nil {
		t.Fatal(err)
	}
	// Same dict: labels must be identical across the two reads.
	if first.Graphs[0].LabelOf(0) != second.Graphs[0].LabelOf(0) {
		t.Errorf("shared dict produced different labels")
	}
}
