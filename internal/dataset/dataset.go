// Package dataset provides containers and a line-oriented text format for
// temporal graph corpora, so behavior training sets and test timelines can
// be generated once (cmd/tggen), mined offline (cmd/tgminer), and queried
// later (cmd/tgquery) — mirroring the paper's pipeline of Figure 2.
//
// Format (one file, any number of graphs):
//
//	# comment
//	g <name>
//	v <node-id> <label>
//	e <src-id> <dst-id> <timestamp>
//
// Node ids are dense and 0-based within each graph; labels are
// whitespace-free strings; timestamps are non-negative integers, unique
// within a graph.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tgminer/internal/tgraph"
)

// Corpus is a named collection of temporal graphs sharing one label
// dictionary.
type Corpus struct {
	Dict   *tgraph.Dict
	Graphs []*tgraph.Graph
	Names  []string
}

// Add appends a graph with a name.
func (c *Corpus) Add(name string, g *tgraph.Graph) {
	c.Graphs = append(c.Graphs, g)
	c.Names = append(c.Names, name)
}

// Filter returns the graphs whose name passes keep.
func (c *Corpus) Filter(keep func(name string) bool) []*tgraph.Graph {
	var out []*tgraph.Graph
	for i, g := range c.Graphs {
		if keep(c.Names[i]) {
			out = append(out, g)
		}
	}
	return out
}

// Write serializes the corpus.
func Write(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# tgminer dataset v1")
	for i, g := range c.Graphs {
		name := c.Names[i]
		if name == "" {
			name = strconv.Itoa(i)
		}
		if strings.ContainsAny(name, " \t\n") {
			return fmt.Errorf("dataset: graph name %q contains whitespace", name)
		}
		fmt.Fprintf(bw, "g %s\n", name)
		for v := 0; v < g.NumNodes(); v++ {
			label := c.Dict.Name(g.LabelOf(tgraph.NodeID(v)))
			if strings.ContainsAny(label, " \t\n") {
				return fmt.Errorf("dataset: label %q contains whitespace", label)
			}
			fmt.Fprintf(bw, "v %d %s\n", v, label)
		}
		for _, e := range g.Edges() {
			fmt.Fprintf(bw, "e %d %d %d\n", e.Src, e.Dst, e.Time)
		}
	}
	return bw.Flush()
}

// Read parses a corpus, interning labels into dict (a new Dict if nil).
func Read(r io.Reader, dict *tgraph.Dict) (*Corpus, error) {
	if dict == nil {
		dict = tgraph.NewDict()
	}
	c := &Corpus{Dict: dict}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var cur *tgraph.Builder
	var curName string
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		g, err := cur.Finalize()
		if err != nil {
			return fmt.Errorf("dataset: graph %q: %w", curName, err)
		}
		c.Add(curName, g)
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dataset: line %d: want 'g <name>'", lineNo)
			}
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &tgraph.Builder{}
			curName = fields[1]
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("dataset: line %d: 'v' before 'g'", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: want 'v <id> <label>'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad node id: %w", lineNo, err)
			}
			if id != cur.NumNodes() {
				return nil, fmt.Errorf("dataset: line %d: node ids must be dense and ordered (got %d, want %d)", lineNo, id, cur.NumNodes())
			}
			cur.AddNode(dict.Intern(fields[2]))
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("dataset: line %d: 'e' before 'g'", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: want 'e <src> <dst> <time>'", lineNo)
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			ts, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad edge fields", lineNo)
			}
			if err := cur.AddEdge(tgraph.NodeID(src), tgraph.NodeID(dst), ts); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return c, nil
}
