// Package rank implements the domain-knowledge pattern ranking of
// Appendix M of the TGMiner paper: when multiple discriminative patterns tie
// at the maximum score, they are ordered by interest, where a node label's
// interest is the reciprocal of its frequency in the training data
// (interest(l) = 1/freq(l)), blacklisted labels (temp files, caches, proc
// counters) contribute zero, and a pattern's interest is the sum over its
// nodes. The top-k patterns become behavior queries.
package rank

import (
	"sort"
	"strings"

	"tgminer/internal/tgraph"
)

// Interest scores labels by rarity over a training corpus.
type Interest struct {
	freq      map[tgraph.Label]int
	blacklist map[tgraph.Label]bool
	total     int
}

// DefaultBlacklistSubstrings mirror the paper's examples: labels carrying
// little security information are zeroed.
var DefaultBlacklistSubstrings = []string{
	"TmpFile", "CacheFile", "/proc/stat", "/proc/meminfo", "/tmp/", "/dev/null",
}

// NewInterest counts label frequencies (number of graphs containing each
// label) over the training graphs and compiles the blacklist from dict
// names containing any of the given substrings. A nil substring list uses
// DefaultBlacklistSubstrings.
func NewInterest(graphs []*tgraph.Graph, dict *tgraph.Dict, blacklistSubstrings []string) *Interest {
	if blacklistSubstrings == nil {
		blacklistSubstrings = DefaultBlacklistSubstrings
	}
	in := &Interest{
		freq:      make(map[tgraph.Label]int),
		blacklist: make(map[tgraph.Label]bool),
		total:     len(graphs),
	}
	for _, g := range graphs {
		for l := range g.EndpointLabels() {
			in.freq[l]++
		}
	}
	for i, name := range dict.Names() {
		for _, sub := range blacklistSubstrings {
			if strings.Contains(name, sub) {
				in.blacklist[tgraph.Label(i)] = true
				break
			}
		}
	}
	return in
}

// LabelScore returns interest(l) = 1/freq(l), or 0 for blacklisted or
// unseen labels.
func (in *Interest) LabelScore(l tgraph.Label) float64 {
	if in.blacklist[l] {
		return 0
	}
	f := in.freq[l]
	if f == 0 {
		return 0
	}
	return 1 / float64(f)
}

// PatternScore sums LabelScore over the pattern's nodes.
func (in *Interest) PatternScore(p *tgraph.Pattern) float64 {
	var s float64
	for _, l := range p.Labels() {
		s += in.LabelScore(l)
	}
	return s
}

// Blacklisted reports whether l is blacklisted.
func (in *Interest) Blacklisted(l tgraph.Label) bool { return in.blacklist[l] }

// TopK stably orders the patterns by descending interest (ties broken by
// fewer nodes, then canonical key for determinism) and returns the first k.
func (in *Interest) TopK(patterns []*tgraph.Pattern, k int) []*tgraph.Pattern {
	type scored struct {
		p   *tgraph.Pattern
		s   float64
		key string
	}
	ss := make([]scored, len(patterns))
	for i, p := range patterns {
		ss[i] = scored{p: p, s: in.PatternScore(p), key: p.Key()}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		if ss[i].p.NumNodes() != ss[j].p.NumNodes() {
			return ss[i].p.NumNodes() < ss[j].p.NumNodes()
		}
		return ss[i].key < ss[j].key
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]*tgraph.Pattern, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].p
	}
	return out
}

// TopKLabels returns the k most discriminative labels by the given scoring
// function (used by the NodeSet baseline), skipping blacklisted labels,
// deterministically ordered.
func (in *Interest) TopKLabels(labels []tgraph.Label, scores []float64, k int) []tgraph.Label {
	type ls struct {
		l tgraph.Label
		s float64
	}
	var all []ls
	for i, l := range labels {
		if in.blacklist[l] {
			continue
		}
		all = append(all, ls{l: l, s: scores[i]})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].l < all[j].l
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]tgraph.Label, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].l
	}
	return out
}
