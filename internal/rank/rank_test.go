package rank

import (
	"testing"

	"tgminer/internal/tgraph"
)

func buildGraph(t *testing.T, dict *tgraph.Dict, labelNames []string, edges [][2]int) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, n := range labelNames {
		b.AddNode(dict.Intern(n))
	}
	for i, e := range edges {
		if err := b.AddEdge(tgraph.NodeID(e[0]), tgraph.NodeID(e[1]), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelScoreReciprocalFrequency(t *testing.T) {
	dict := tgraph.NewDict()
	g1 := buildGraph(t, dict, []string{"proc:a", "file:x"}, [][2]int{{0, 1}})
	g2 := buildGraph(t, dict, []string{"proc:a", "file:y"}, [][2]int{{0, 1}})
	in := NewInterest([]*tgraph.Graph{g1, g2}, dict, nil)
	a := dict.Lookup("proc:a")
	x := dict.Lookup("file:x")
	if got := in.LabelScore(a); got != 0.5 {
		t.Errorf("LabelScore(proc:a) = %v, want 0.5 (in 2 graphs)", got)
	}
	if got := in.LabelScore(x); got != 1.0 {
		t.Errorf("LabelScore(file:x) = %v, want 1.0 (in 1 graph)", got)
	}
	if got := in.LabelScore(tgraph.Label(999)); got != 0 {
		t.Errorf("LabelScore(unseen) = %v, want 0", got)
	}
}

func TestBlacklist(t *testing.T) {
	dict := tgraph.NewDict()
	g := buildGraph(t, dict, []string{"file:/tmp/scratch", "proc:a"}, [][2]int{{0, 1}})
	in := NewInterest([]*tgraph.Graph{g}, dict, nil)
	tmp := dict.Lookup("file:/tmp/scratch")
	if !in.Blacklisted(tmp) {
		t.Errorf("tmp file not blacklisted")
	}
	if got := in.LabelScore(tmp); got != 0 {
		t.Errorf("blacklisted score = %v, want 0", got)
	}
	// Custom blacklist.
	in2 := NewInterest([]*tgraph.Graph{g}, dict, []string{"proc:"})
	if !in2.Blacklisted(dict.Lookup("proc:a")) {
		t.Errorf("custom blacklist ignored")
	}
}

func TestPatternScoreAndTopK(t *testing.T) {
	dict := tgraph.NewDict()
	g1 := buildGraph(t, dict, []string{"common", "rare1"}, [][2]int{{0, 1}})
	g2 := buildGraph(t, dict, []string{"common", "rare2"}, [][2]int{{0, 1}})
	in := NewInterest([]*tgraph.Graph{g1, g2}, dict, []string{})

	common, rare1 := dict.Lookup("common"), dict.Lookup("rare1")
	pRare, _ := tgraph.NewPattern([]tgraph.Label{common, rare1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	pCommon, _ := tgraph.NewPattern([]tgraph.Label{common, common}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if in.PatternScore(pRare) <= in.PatternScore(pCommon) {
		t.Errorf("rare-label pattern should outrank common-label pattern")
	}
	top := in.TopK([]*tgraph.Pattern{pCommon, pRare}, 1)
	if len(top) != 1 || !top[0].Equal(pRare) {
		t.Errorf("TopK did not select the rare pattern")
	}
	all := in.TopK([]*tgraph.Pattern{pCommon, pRare}, 10)
	if len(all) != 2 {
		t.Errorf("TopK(10) = %d patterns, want 2", len(all))
	}
}

func TestTopKLabels(t *testing.T) {
	dict := tgraph.NewDict()
	g := buildGraph(t, dict, []string{"a", "b", "file:/tmp/x"}, [][2]int{{0, 1}, {1, 2}})
	in := NewInterest([]*tgraph.Graph{g}, dict, nil)
	labels := []tgraph.Label{dict.Lookup("a"), dict.Lookup("b"), dict.Lookup("file:/tmp/x")}
	scores := []float64{1.0, 3.0, 99.0}
	top := in.TopKLabels(labels, scores, 2)
	if len(top) != 2 {
		t.Fatalf("TopKLabels = %v", top)
	}
	// Blacklisted /tmp/x must be excluded despite its top score.
	if top[0] != dict.Lookup("b") || top[1] != dict.Lookup("a") {
		t.Errorf("TopKLabels order = %v", top)
	}
}
