package gspan

import (
	"math/rand"
	"testing"

	"tgminer/internal/tgraph"
)

func tGraph(t *testing.T, labels []tgraph.Label, edges [][3]int64) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(tgraph.NodeID(e[0]), tgraph.NodeID(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromTemporalCollapsesMultiEdges(t *testing.T) {
	g := tGraph(t, []tgraph.Label{0, 1}, [][3]int64{{0, 1, 1}, {0, 1, 2}, {1, 0, 3}})
	ng := FromTemporal(g)
	if ng.NumEdges() != 2 {
		t.Errorf("collapsed edges = %d, want 2", ng.NumEdges())
	}
	if !ng.HasEdge(0, 1) || !ng.HasEdge(1, 0) {
		t.Errorf("expected both directions present")
	}
}

func TestIsomorphicPermuted(t *testing.T) {
	p := &Pattern{Labels: []tgraph.Label{0, 1, 2}, E: []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	q := &Pattern{Labels: []tgraph.Label{2, 0, 1}, E: []Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 0}}}
	if !p.Isomorphic(q) {
		t.Errorf("permuted isomorphic patterns reported non-isomorphic")
	}
	if p.invariant() != q.invariant() {
		t.Errorf("isomorphic patterns have different invariants")
	}
	r := &Pattern{Labels: []tgraph.Label{0, 1, 2}, E: []Edge{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}}}
	if p.Isomorphic(r) {
		t.Errorf("non-isomorphic patterns reported isomorphic")
	}
}

func TestIsomorphicDirectionMatters(t *testing.T) {
	p := &Pattern{Labels: []tgraph.Label{0, 0}, E: []Edge{{Src: 0, Dst: 1}}}
	q := &Pattern{Labels: []tgraph.Label{0, 0}, E: []Edge{{Src: 1, Dst: 0}}}
	// Same-label endpoints: A->A is isomorphic to A->A regardless of node ids.
	if !p.Isomorphic(q) {
		t.Errorf("A->A patterns should be isomorphic")
	}
	p2 := &Pattern{Labels: []tgraph.Label{0, 1}, E: []Edge{{Src: 0, Dst: 1}}}
	q2 := &Pattern{Labels: []tgraph.Label{0, 1}, E: []Edge{{Src: 1, Dst: 0}}}
	if p2.Isomorphic(q2) {
		t.Errorf("A->B vs B->A should differ")
	}
}

func TestMineFindsDiscriminativeEdge(t *testing.T) {
	// Positive graphs contain A->B->C; negatives only A->B.
	var pos, neg []*Graph
	for i := 0; i < 4; i++ {
		pos = append(pos, FromTemporal(tGraph(t, []tgraph.Label{0, 1, 2}, [][3]int64{{0, 1, 1}, {1, 2, 2}})))
		neg = append(neg, FromTemporal(tGraph(t, []tgraph.Label{0, 1}, [][3]int64{{0, 1, 1}})))
	}
	res, err := Mine(pos, neg, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no patterns")
	}
	for _, sp := range res.Best {
		if sp.PosFreq != 1 || sp.NegFreq != 0 {
			t.Errorf("best pattern freq = %v/%v, want 1/0", sp.PosFreq, sp.NegFreq)
		}
		// Every best pattern must include the discriminative B->C edge.
		found := false
		for _, e := range sp.Pattern.E {
			if sp.Pattern.Labels[e.Src] == 1 && sp.Pattern.Labels[e.Dst] == 2 {
				found = true
			}
		}
		if !found {
			t.Errorf("best pattern lacks B->C: %+v", sp.Pattern)
		}
	}
}

func TestMineIgnoresTemporalOrder(t *testing.T) {
	// Two positive graphs with the same topology but different edge order
	// give identical non-temporal mining input: the miner cannot tell them
	// apart (this is exactly why Ntemp loses precision in the paper).
	g1 := tGraph(t, []tgraph.Label{0, 1, 2}, [][3]int64{{0, 1, 1}, {1, 2, 2}})
	g2 := tGraph(t, []tgraph.Label{0, 1, 2}, [][3]int64{{1, 2, 1}, {0, 1, 2}})
	pos := []*Graph{FromTemporal(g1)}
	neg := []*Graph{FromTemporal(g2)}
	res, err := Mine(pos, neg, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Best possible is freq 1/1 everywhere: nothing discriminative exists.
	for _, sp := range res.Best {
		if sp.NegFreq == 0 {
			t.Errorf("found 'discriminative' pattern in temporally-distinct, topologically-equal graphs: %+v", sp.Pattern)
		}
	}
}

func TestMineEmptyPositive(t *testing.T) {
	if _, err := Mine(nil, nil, Options{}); err == nil {
		t.Errorf("expected error for empty positive set")
	}
}

func TestMineDupSkipping(t *testing.T) {
	// A triangle reachable from three seed edges: dedup must kick in.
	g := FromTemporal(tGraph(t, []tgraph.Label{0, 0, 0},
		[][3]int64{{0, 1, 1}, {1, 2, 2}, {2, 0, 3}}))
	res, err := Mine([]*Graph{g}, nil, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DupSkipped == 0 {
		t.Errorf("expected duplicate candidates to be skipped, got 0")
	}
}

// bruteCountConnected enumerates connected sub-patterns (up to maxE edges)
// of the graph by edge subsets and counts isomorphism classes.
func bruteCountConnected(g *Graph, maxE int) int {
	edges := g.Edges()
	n := len(edges)
	var classes []*Pattern
	for mask := 1; mask < (1 << n); mask++ {
		cnt := 0
		for x := mask; x != 0; x &= x - 1 {
			cnt++
		}
		if cnt > maxE {
			continue
		}
		p := inducedPattern(g, mask)
		if p == nil || !connected(p) {
			continue
		}
		dup := false
		for _, q := range classes {
			if p.Isomorphic(q) {
				dup = true
				break
			}
		}
		if !dup {
			classes = append(classes, p)
		}
	}
	return len(classes)
}

func inducedPattern(g *Graph, mask int) *Pattern {
	idx := map[tgraph.NodeID]tgraph.NodeID{}
	var labels []tgraph.Label
	var pedges []Edge
	for pos, e := range g.Edges() {
		if mask&(1<<pos) == 0 {
			continue
		}
		for _, v := range []tgraph.NodeID{e.Src, e.Dst} {
			if _, ok := idx[v]; !ok {
				idx[v] = tgraph.NodeID(len(labels))
				labels = append(labels, g.LabelOf(v))
			}
		}
		pedges = append(pedges, Edge{Src: idx[e.Src], Dst: idx[e.Dst]})
	}
	return &Pattern{Labels: labels, E: pedges}
}

func connected(p *Pattern) bool {
	if p.NumNodes() == 0 {
		return false
	}
	adj := map[tgraph.NodeID][]tgraph.NodeID{}
	for _, e := range p.E {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	seen := map[tgraph.NodeID]bool{0: true}
	stack := []tgraph.NodeID{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == p.NumNodes()
}

func TestMineEnumerationCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		var b tgraph.Builder
		nNodes := 3 + rng.Intn(2)
		for i := 0; i < nNodes; i++ {
			b.AddNode(tgraph.Label(rng.Intn(2)))
		}
		nEdges := 3 + rng.Intn(3)
		for i := 0; i < nEdges; i++ {
			if err := b.AddEdge(tgraph.NodeID(rng.Intn(nNodes)), tgraph.NodeID(rng.Intn(nNodes)), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		tg, err := b.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		g := FromTemporal(tg)
		res, err := Mine([]*Graph{g}, nil, Options{MaxEdges: 6})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCountConnected(g, 6)
		if int(res.Explored) != want {
			t.Errorf("trial %d: explored %d patterns, brute force says %d", trial, res.Explored, want)
		}
	}
}
