package gspan

import (
	"errors"
	"sort"
	"time"

	"tgminer/internal/score"
	"tgminer/internal/tgraph"
)

// Options configures non-temporal discriminative mining.
type Options struct {
	// Score is the discriminative score function (default score.LogRatio).
	Score score.Func
	// MaxEdges bounds pattern size (default 6).
	MaxEdges int
	// MaxResults caps retained tied best patterns (default 512).
	MaxResults int
	// MinSupport is the minimum positive frequency a pattern needs to be
	// extended (default 0.5). Without the temporal-order constraints of
	// TGMiner, the collapsed pattern space of large graphs is intractable
	// to search exhaustively; the paper's Ntemp baseline relies on GAIA's
	// approximate evolutionary search [11], for which a support floor is
	// the standard stand-in. Set to a negative value to disable.
	MinSupport float64
}

func (o Options) normalize() Options {
	if o.Score == nil {
		o.Score = score.LogRatio{}
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 6
	}
	if o.MaxResults <= 0 {
		o.MaxResults = 512
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.5
	}
	return o
}

// ScoredPattern is a discovered non-temporal pattern with its statistics.
type ScoredPattern struct {
	Pattern *Pattern
	Score   float64
	PosFreq float64
	NegFreq float64
}

// Result is the outcome of a mining run.
type Result struct {
	Best       []ScoredPattern
	BestScore  float64
	TieCount   int
	Explored   int64
	DupSkipped int64
	Elapsed    time.Duration
}

// ErrNoPositiveGraphs is returned when the positive set is empty.
var ErrNoPositiveGraphs = errors.New("gspan: positive graph set is empty")

// embedding is an injective node mapping from pattern nodes to graph nodes.
// Because graphs are simple, the node mapping determines the edge mapping.
type embedding struct {
	graphID int32
	nodes   []tgraph.NodeID
}

// Mine searches for the connected non-temporal patterns with maximum
// discriminative score, exploring by one-edge extensions with upper-bound
// pruning (F(x, 0) < F*).
func Mine(pos, neg []*Graph, opts Options) (*Result, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	opts = opts.normalize()
	start := time.Now()
	s := &miner{pos: pos, neg: neg, opts: opts, fstar: -1e308, visited: map[string][]*Pattern{}}
	seeds := s.seeds()
	// High-support seeds first: primes F* so the upper-bound condition can
	// prune low-support branches immediately (see internal/miner for the
	// same strategy).
	sort.SliceStable(seeds, func(i, j int) bool {
		return support(seeds[i].pos) > support(seeds[j].pos)
	})
	for _, seed := range seeds {
		s.dfs(seed.pat, seed.pos, seed.neg)
	}
	return &Result{
		Best:       s.best,
		BestScore:  s.fstar,
		TieCount:   s.tieCount,
		Explored:   s.explored,
		DupSkipped: s.dups,
		Elapsed:    time.Since(start),
	}, nil
}

type miner struct {
	pos, neg []*Graph
	opts     Options
	fstar    float64
	best     []ScoredPattern
	tieCount int
	visited  map[string][]*Pattern
	explored int64
	dups     int64
}

type seedEntry struct {
	pat      *Pattern
	pos, neg []embedding
}

func (m *miner) seeds() []seedEntry {
	type key struct {
		src, dst tgraph.Label
		loop     bool
	}
	posEmb := map[key][]embedding{}
	collect := func(graphs []*Graph, sink map[key][]embedding, requirePos bool) {
		for gi, g := range graphs {
			for _, e := range g.Edges() {
				k := key{src: g.LabelOf(e.Src), dst: g.LabelOf(e.Dst), loop: e.Src == e.Dst}
				if requirePos {
					if _, ok := posEmb[k]; !ok {
						continue
					}
				}
				var nodes []tgraph.NodeID
				if k.loop {
					nodes = []tgraph.NodeID{e.Src}
				} else {
					nodes = []tgraph.NodeID{e.Src, e.Dst}
				}
				sink[k] = append(sink[k], embedding{graphID: int32(gi), nodes: nodes})
			}
		}
	}
	collect(m.pos, posEmb, false)
	negEmb := map[key][]embedding{}
	collect(m.neg, negEmb, true)
	keys := make([]key, 0, len(posEmb))
	for k := range posEmb {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return !a.loop && b.loop
	})
	out := make([]seedEntry, 0, len(keys))
	for _, k := range keys {
		var pat *Pattern
		if k.loop {
			pat = &Pattern{Labels: []tgraph.Label{k.src}, E: []Edge{{Src: 0, Dst: 0}}}
		} else {
			pat = &Pattern{Labels: []tgraph.Label{k.src, k.dst}, E: []Edge{{Src: 0, Dst: 1}}}
		}
		out = append(out, seedEntry{pat: pat, pos: posEmb[k], neg: negEmb[k]})
	}
	return out
}

func support(embs []embedding) int {
	n := 0
	last := int32(-1)
	for _, e := range embs {
		if e.graphID != last {
			n++
			last = e.graphID
		}
	}
	return n
}

// markVisited records the pattern; it reports false if an isomorphic pattern
// was already explored.
func (m *miner) markVisited(p *Pattern) bool {
	inv := p.invariant()
	for _, q := range m.visited[inv] {
		if p.Isomorphic(q) {
			return false
		}
	}
	m.visited[inv] = append(m.visited[inv], p)
	return true
}

func (m *miner) dfs(p *Pattern, posE, negE []embedding) {
	if !m.markVisited(p) {
		m.dups++
		return
	}
	m.explored++
	x := float64(support(posE)) / float64(len(m.pos))
	var y float64
	if len(m.neg) > 0 {
		y = float64(support(negE)) / float64(len(m.neg))
	}
	sc := m.opts.Score.Score(x, y)
	switch {
	case sc > m.fstar:
		m.fstar = sc
		m.best = m.best[:0]
		m.best = append(m.best, ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
		m.tieCount = 1
	case sc == m.fstar:
		m.tieCount++
		if len(m.best) < m.opts.MaxResults {
			m.best = append(m.best, ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
		}
	}
	if p.NumEdges() >= m.opts.MaxEdges {
		return
	}
	if x < m.opts.MinSupport {
		return
	}
	if m.opts.Score.UpperBound(x) < m.fstar {
		return
	}
	for _, xt := range m.extensions(p, posE) {
		child := xt.apply(p)
		childPos := m.extend(xt, m.pos, posE)
		childNeg := m.extend(xt, m.neg, negE)
		m.dfs(child, childPos, childNeg)
	}
}

// ext is a one-edge extension of a non-temporal pattern.
type ext struct {
	srcNode  tgraph.NodeID // existing pattern node, or -1
	dstNode  tgraph.NodeID // existing pattern node, or -1
	newLabel tgraph.Label  // label of the new node when one side is -1
}

func (x ext) apply(p *Pattern) *Pattern {
	labels := append([]tgraph.Label(nil), p.Labels...)
	edges := append([]Edge(nil), p.E...)
	switch {
	case x.srcNode >= 0 && x.dstNode >= 0:
		edges = append(edges, Edge{Src: x.srcNode, Dst: x.dstNode})
	case x.srcNode >= 0:
		labels = append(labels, x.newLabel)
		edges = append(edges, Edge{Src: x.srcNode, Dst: tgraph.NodeID(len(labels) - 1)})
	default:
		labels = append(labels, x.newLabel)
		edges = append(edges, Edge{Src: tgraph.NodeID(len(labels) - 1), Dst: x.dstNode})
	}
	return &Pattern{Labels: labels, E: edges}
}

// extensions enumerates distinct one-edge extensions witnessed by positive
// embeddings, in deterministic order.
func (m *miner) extensions(p *Pattern, posE []embedding) []ext {
	seen := map[ext]bool{}
	for _, emb := range posE {
		g := m.pos[emb.graphID]
		rev := map[tgraph.NodeID]tgraph.NodeID{}
		for pv, gv := range emb.nodes {
			rev[gv] = tgraph.NodeID(pv)
		}
		for pv, gv := range emb.nodes {
			for _, w := range g.Out(gv) {
				if pw, ok := rev[w]; ok {
					if !p.HasEdge(tgraph.NodeID(pv), pw) {
						seen[ext{srcNode: tgraph.NodeID(pv), dstNode: pw, newLabel: -1}] = true
					}
				} else {
					seen[ext{srcNode: tgraph.NodeID(pv), dstNode: -1, newLabel: g.LabelOf(w)}] = true
				}
			}
			for _, w := range g.In(gv) {
				if _, ok := rev[w]; !ok {
					seen[ext{srcNode: -1, dstNode: tgraph.NodeID(pv), newLabel: g.LabelOf(w)}] = true
				}
			}
		}
	}
	out := make([]ext, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.srcNode != b.srcNode {
			return a.srcNode < b.srcNode
		}
		if a.dstNode != b.dstNode {
			return a.dstNode < b.dstNode
		}
		return a.newLabel < b.newLabel
	})
	return out
}

// extend filters/extends embeddings for the child pattern produced by x.
func (m *miner) extend(x ext, graphs []*Graph, embs []embedding) []embedding {
	var out []embedding
	for _, emb := range embs {
		g := graphs[emb.graphID]
		switch {
		case x.srcNode >= 0 && x.dstNode >= 0:
			if g.HasEdge(emb.nodes[x.srcNode], emb.nodes[x.dstNode]) {
				out = append(out, emb)
			}
		case x.srcNode >= 0:
			gv := emb.nodes[x.srcNode]
			for _, w := range g.Out(gv) {
				if g.LabelOf(w) != x.newLabel || containsNode(emb.nodes, w) {
					continue
				}
				nodes := make([]tgraph.NodeID, len(emb.nodes)+1)
				copy(nodes, emb.nodes)
				nodes[len(emb.nodes)] = w
				out = append(out, embedding{graphID: emb.graphID, nodes: nodes})
			}
		default:
			gv := emb.nodes[x.dstNode]
			for _, w := range g.In(gv) {
				if g.LabelOf(w) != x.newLabel || containsNode(emb.nodes, w) {
					continue
				}
				nodes := make([]tgraph.NodeID, len(emb.nodes)+1)
				copy(nodes, emb.nodes)
				nodes[len(emb.nodes)] = w
				out = append(out, embedding{graphID: emb.graphID, nodes: nodes})
			}
		}
	}
	return out
}

func containsNode(nodes []tgraph.NodeID, v tgraph.NodeID) bool {
	for _, n := range nodes {
		if n == v {
			return true
		}
	}
	return false
}
