// Package gspan implements discriminative non-temporal graph pattern
// mining, the Ntemp baseline of the TGMiner paper (Section 6.1): temporal
// information is discarded, multi-edges are collapsed, and discriminative
// patterns are mined over the resulting directed node-labeled simple graphs
// in the style of gSpan/GAIA [11, 31].
//
// Pattern enumeration is embedding-driven (like gSpan's rightmost-path
// growth, every connected pattern reachable by one-edge extensions is
// visited) with duplicate candidates eliminated by isomorphism checks under
// an invariant hash — the bookkeeping role canonical DFS codes play in
// gSpan. The paper's argument that non-temporal mining both loses precision
// (Table 2) and cannot exploit temporal pruning applies unchanged.
package gspan

import (
	"sort"

	"tgminer/internal/tgraph"
)

// Edge is a directed edge of a non-temporal graph or pattern.
type Edge struct {
	Src tgraph.NodeID
	Dst tgraph.NodeID
}

// Graph is a directed node-labeled simple graph (no multi-edges; self-loops
// allowed, at most one per node).
type Graph struct {
	labels []tgraph.Label
	edges  []Edge
	out    map[tgraph.NodeID][]tgraph.NodeID
	in     map[tgraph.NodeID][]tgraph.NodeID
	hasEdg map[[2]tgraph.NodeID]bool
}

// FromTemporal collapses a temporal graph: timestamps are dropped and
// parallel edges (same source and destination) merge into one.
func FromTemporal(g *tgraph.Graph) *Graph {
	labels := append([]tgraph.Label(nil), g.Labels()...)
	seen := make(map[[2]tgraph.NodeID]bool, g.NumEdges())
	edges := make([]Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		k := [2]tgraph.NodeID{e.Src, e.Dst}
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, Edge{Src: e.Src, Dst: e.Dst})
	}
	return newGraph(labels, edges)
}

// NewGraph builds a simple graph from explicit labels and edges; duplicate
// edges collapse.
func NewGraph(labels []tgraph.Label, edges []Edge) *Graph {
	seen := make(map[[2]tgraph.NodeID]bool, len(edges))
	uniq := make([]Edge, 0, len(edges))
	for _, e := range edges {
		k := [2]tgraph.NodeID{e.Src, e.Dst}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, e)
	}
	return newGraph(append([]tgraph.Label(nil), labels...), uniq)
}

func newGraph(labels []tgraph.Label, edges []Edge) *Graph {
	g := &Graph{
		labels: labels,
		edges:  edges,
		out:    make(map[tgraph.NodeID][]tgraph.NodeID),
		in:     make(map[tgraph.NodeID][]tgraph.NodeID),
		hasEdg: make(map[[2]tgraph.NodeID]bool, len(edges)),
	}
	for _, e := range edges {
		g.out[e.Src] = append(g.out[e.Src], e.Dst)
		g.in[e.Dst] = append(g.in[e.Dst], e.Src)
		g.hasEdg[[2]tgraph.NodeID{e.Src, e.Dst}] = true
	}
	return g
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges reports |E| after collapsing.
func (g *Graph) NumEdges() int { return len(g.edges) }

// LabelOf returns node v's label.
func (g *Graph) LabelOf(v tgraph.NodeID) tgraph.Label { return g.labels[v] }

// Edges lists the collapsed edges. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Out lists successors of v. The slice must not be modified.
func (g *Graph) Out(v tgraph.NodeID) []tgraph.NodeID { return g.out[v] }

// In lists predecessors of v. The slice must not be modified.
func (g *Graph) In(v tgraph.NodeID) []tgraph.NodeID { return g.in[v] }

// HasEdge reports whether edge (u, v) exists.
func (g *Graph) HasEdge(u, v tgraph.NodeID) bool {
	return g.hasEdg[[2]tgraph.NodeID{u, v}]
}

// Pattern is a small connected directed labeled simple graph.
type Pattern struct {
	Labels []tgraph.Label
	E      []Edge
}

// PatternFromTemporal collapses a temporal graph into an order-free
// pattern: timestamps are dropped and parallel edges merge. The Ntemp
// counterpart of tgraph.PatternFromGraph, for authoring non-temporal
// queries by hand.
func PatternFromTemporal(g *tgraph.Graph) *Pattern {
	seen := make(map[[2]tgraph.NodeID]bool, g.NumEdges())
	es := make([]Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		k := [2]tgraph.NodeID{e.Src, e.Dst}
		if seen[k] {
			continue
		}
		seen[k] = true
		es = append(es, Edge{Src: e.Src, Dst: e.Dst})
	}
	return &Pattern{Labels: append([]tgraph.Label(nil), g.Labels()...), E: es}
}

// NumNodes reports |V|.
func (p *Pattern) NumNodes() int { return len(p.Labels) }

// NumEdges reports |E|.
func (p *Pattern) NumEdges() int { return len(p.E) }

// HasEdge reports whether the pattern contains edge (a, b).
func (p *Pattern) HasEdge(a, b tgraph.NodeID) bool {
	for _, e := range p.E {
		if e.Src == a && e.Dst == b {
			return true
		}
	}
	return false
}

// invariant returns an isomorphism-invariant string for bucketing: sorted
// node (label,outdeg,indeg) triples plus sorted edge label pairs.
func (p *Pattern) invariant() string {
	out := make([]int, p.NumNodes())
	in := make([]int, p.NumNodes())
	for _, e := range p.E {
		out[e.Src]++
		in[e.Dst]++
	}
	nodes := make([][3]int, p.NumNodes())
	for v := range nodes {
		nodes[v] = [3]int{int(p.Labels[v]), out[v], in[v]}
	}
	sort.Slice(nodes, func(i, j int) bool {
		for k := 0; k < 3; k++ {
			if nodes[i][k] != nodes[j][k] {
				return nodes[i][k] < nodes[j][k]
			}
		}
		return false
	})
	pairs := make([][2]int, len(p.E))
	for i, e := range p.E {
		pairs[i] = [2]int{int(p.Labels[e.Src]), int(p.Labels[e.Dst])}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	buf := make([]byte, 0, 8*(len(nodes)+len(pairs)))
	enc := func(x int) {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	for _, n := range nodes {
		enc(n[0])
		enc(n[1])
		enc(n[2])
	}
	buf = append(buf, 0xFE)
	for _, pr := range pairs {
		enc(pr[0])
		enc(pr[1])
	}
	return string(buf)
}

// Isomorphic reports whether p and q are isomorphic directed labeled
// graphs. Intended for small patterns (≤ ~12 nodes); backtracking with
// label and degree pruning.
func (p *Pattern) Isomorphic(q *Pattern) bool {
	if p.NumNodes() != q.NumNodes() || p.NumEdges() != q.NumEdges() {
		return false
	}
	n := p.NumNodes()
	pOut, pIn := degreeVectors(p)
	qOut, qIn := degreeVectors(q)
	mapping := make([]tgraph.NodeID, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var match func(v int) bool
	match = func(v int) bool {
		if v == n {
			return true
		}
		for u := 0; u < n; u++ {
			if used[u] || p.Labels[v] != q.Labels[u] || pOut[v] != qOut[u] || pIn[v] != qIn[u] {
				continue
			}
			// Check edges between v and already-mapped nodes.
			ok := true
			for w := 0; w < v; w++ {
				if p.hasEdgeFast(tgraph.NodeID(v), tgraph.NodeID(w)) != q.HasEdge(tgraph.NodeID(u), mapping[w]) ||
					p.hasEdgeFast(tgraph.NodeID(w), tgraph.NodeID(v)) != q.HasEdge(mapping[w], tgraph.NodeID(u)) {
					ok = false
					break
				}
			}
			if ok && p.hasEdgeFast(tgraph.NodeID(v), tgraph.NodeID(v)) != q.HasEdge(tgraph.NodeID(u), tgraph.NodeID(u)) {
				ok = false
			}
			if !ok {
				continue
			}
			mapping[v] = tgraph.NodeID(u)
			used[u] = true
			if match(v + 1) {
				return true
			}
			mapping[v] = -1
			used[u] = false
		}
		return false
	}
	return match(0)
}

func (p *Pattern) hasEdgeFast(a, b tgraph.NodeID) bool { return p.HasEdge(a, b) }

func degreeVectors(p *Pattern) (out, in []int) {
	out = make([]int, p.NumNodes())
	in = make([]int, p.NumNodes())
	for _, e := range p.E {
		out[e.Src]++
		in[e.Dst]++
	}
	return out, in
}
