package tgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a node within one Graph or Pattern. IDs are dense,
// starting at 0.
type NodeID int32

// NodeShard maps a node to one of `shards` partitions with a 32-bit
// avalanche mixer, so dense NodeIDs spread evenly and correlated ID ranges
// (one producer's entities tend to get consecutive IDs) do not stripe onto
// one shard. This is the cross-shard identity contract of the sharded live
// engine: NodeIDs are global — every shard registers every node under the
// same ID — and only edge OWNERSHIP is partitioned, by the source node's
// shard. A node therefore resolves consistently when it appears as the
// destination of an edge owned by a foreign shard, and any layer (facade
// name dictionaries included) can route by calling NodeShard on the global
// ID without per-shard remapping.
func NodeShard(v NodeID, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint32(v)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(shards))
}

// Edge is a directed edge (Src, Dst, Time) of a temporal graph. Timestamps
// are non-negative integers; within a finalized Graph they are strictly
// increasing in edge-slice order (total edge order).
type Edge struct {
	Src  NodeID
	Dst  NodeID
	Time int64
}

// Graph is a finalized temporal graph: node labels plus edges sorted by
// strictly increasing timestamp. Graphs are immutable after Finalize; the
// mining and search layers build read-only indexes on top of them.
type Graph struct {
	labels []Label
	edges  []Edge

	// idxOnce lazily builds the mining indexes (lastOcc, incident) on first
	// use: graphs produced by ExtendSorted on the live compaction hot path
	// are usually only searched, never mined, and must not pay an O(E)
	// index build per compaction.
	idxOnce sync.Once

	// lastOcc[l] is the largest edge position at which a node labeled l is an
	// endpoint, or -1. Built lazily; used for residual label-set tests.
	lastOcc map[Label]int32

	// incident[v] lists the positions of edges having v as an endpoint, in
	// increasing position order. Built lazily; used by pattern growth.
	incident [][]int32

	// lin is non-nil on graphs created by ExtendSorted: all graphs of one
	// extension chain share it, and it records the chain's tip sizes so only
	// the newest graph appends into the shared spare capacity of the labels
	// and edges arrays (older graphs fall back to copying).
	lin *lineage
}

// lineage tracks the tip of an ExtendSorted chain. Readers never touch it;
// it is read and written only under the caller's writer serialization (see
// ExtendSorted).
type lineage struct {
	nodes, edges int // sizes of the newest graph in the chain
}

// ErrNotTotallyOrdered is reported by Finalize when two edges share a
// timestamp. Use Sequentialize to impose an artificial total order first
// (Section 5 of the paper).
var ErrNotTotallyOrdered = errors.New("tgraph: edges are not totally ordered (duplicate timestamps)")

// Builder incrementally assembles a temporal graph. The zero value is ready
// to use.
type Builder struct {
	labels []Label
	edges  []Edge
}

// AddNode appends a node with the given label and returns its NodeID.
func (b *Builder) AddNode(l Label) NodeID {
	b.labels = append(b.labels, l)
	return NodeID(len(b.labels) - 1)
}

// AddEdge appends a directed edge. Endpoints must already exist.
func (b *Builder) AddEdge(src, dst NodeID, t int64) error {
	n := NodeID(len(b.labels))
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("tgraph: edge (%d,%d,%d) references unknown node (graph has %d nodes)", src, dst, t, n)
	}
	if t < 0 {
		return fmt.Errorf("tgraph: edge (%d,%d,%d) has negative timestamp", src, dst, t)
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Time: t})
	return nil
}

// NumNodes reports the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Finalize sorts the edges by timestamp, validates the total order, and
// returns the immutable Graph. The builder must not be reused afterwards.
func (b *Builder) Finalize() (*Graph, error) {
	edges := b.edges
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	for i := 1; i < len(edges); i++ {
		if edges[i].Time == edges[i-1].Time {
			return nil, fmt.Errorf("%w: timestamp %d", ErrNotTotallyOrdered, edges[i].Time)
		}
	}
	return &Graph{labels: b.labels, edges: edges}, nil
}

// Sequentialize imposes an artificial strict total order on edges that share
// timestamps, implementing the data-collector policy discussed in Section 5
// of the paper. Ties are broken deterministically by (Src, Dst, insertion
// order), and the resulting timestamps are renumbered 0..|E|-1. It returns
// the finalized graph.
func (b *Builder) Sequentialize() (*Graph, error) {
	type keyed struct {
		e   Edge
		idx int
	}
	ks := make([]keyed, len(b.edges))
	for i, e := range b.edges {
		ks[i] = keyed{e: e, idx: i}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, bb := ks[i], ks[j]
		if a.e.Time != bb.e.Time {
			return a.e.Time < bb.e.Time
		}
		if a.e.Src != bb.e.Src {
			return a.e.Src < bb.e.Src
		}
		if a.e.Dst != bb.e.Dst {
			return a.e.Dst < bb.e.Dst
		}
		return a.idx < bb.idx
	})
	edges := make([]Edge, len(ks))
	for i, k := range ks {
		edges[i] = Edge{Src: k.e.Src, Dst: k.e.Dst, Time: int64(i)}
	}
	return &Graph{labels: b.labels, edges: edges}, nil
}

// ExtendSorted returns a graph extending g with newLabels appended to the
// node set and suffix appended to the edge sequence. The suffix must
// continue g's strict total order (every suffix timestamp greater than its
// predecessor and than g's last edge); endpoints may reference the new
// nodes. g itself is unchanged and remains valid.
//
// This is the O(len(suffix)) path live compaction merges on: when g is the
// newest graph of its extension chain, the labels and edges arrays are
// extended in place within their (amortized, geometrically grown) spare
// capacity, so no O(base) copy or re-sort happens. Older chain members —
// and graphs built by Finalize/Sequentialize, whose backing arrays may be
// shared with a Builder — are copied instead.
//
// Concurrency contract: calls extending one chain must be serialized by the
// caller (the live engine's writer mutex does this). Concurrent readers of
// any graph in the chain are safe: they only ever see indexes below their
// own length, and in-place appends write strictly beyond every previously
// returned length.
func (g *Graph) ExtendSorted(newLabels []Label, suffix []Edge) (*Graph, error) {
	n := len(g.labels) + len(newLabels)
	last := int64(-1)
	if len(g.edges) > 0 {
		last = g.edges[len(g.edges)-1].Time
	}
	for _, e := range suffix {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return nil, fmt.Errorf("tgraph: extend edge (%d,%d,%d) references unknown node (graph has %d nodes)", e.Src, e.Dst, e.Time, n)
		}
		if e.Time <= last {
			return nil, fmt.Errorf("%w: extend timestamp %d not after %d", ErrNotTotallyOrdered, e.Time, last)
		}
		last = e.Time
	}
	ng := &Graph{}
	if g.lin != nil && g.lin.nodes == len(g.labels) && g.lin.edges == len(g.edges) {
		// g is the chain tip: append in place (reallocating only when the
		// shared spare capacity runs out, so the copy cost amortizes to
		// O(1) per appended element over the chain's lifetime).
		ng.lin = g.lin
		ng.labels = append(g.labels, newLabels...)
		ng.edges = append(g.edges, suffix...)
	} else {
		// Not extendable in place: copy with geometric headroom and start a
		// fresh chain owning its backing arrays.
		ng.lin = &lineage{}
		ng.labels = append(growCopy(g.labels, n), newLabels...)
		ng.edges = append(growCopy(g.edges, len(g.edges)+len(suffix)), suffix...)
	}
	ng.lin.nodes, ng.lin.edges = len(ng.labels), len(ng.edges)
	return ng, nil
}

// growCopy copies src into a fresh slice with capacity for need elements
// plus geometric headroom for future extensions.
func growCopy[T any](src []T, need int) []T {
	out := make([]T, 0, need+need/2+4)
	return append(out, src...)
}

// ensureIndexes builds the mining indexes on first use. Safe for concurrent
// callers.
func (g *Graph) ensureIndexes() { g.idxOnce.Do(g.buildIndexes) }

func (g *Graph) buildIndexes() {
	g.lastOcc = make(map[Label]int32)
	g.incident = make([][]int32, len(g.labels))
	for pos, e := range g.edges {
		p := int32(pos)
		g.lastOcc[g.labels[e.Src]] = p
		g.lastOcc[g.labels[e.Dst]] = p
		g.incident[e.Src] = append(g.incident[e.Src], p)
		if e.Dst != e.Src {
			g.incident[e.Dst] = append(g.incident[e.Dst], p)
		}
	}
}

// Stamp is a cheap content-version fingerprint of a Graph, used by
// incremental mining to decide whether a graph slot in a mined set still
// holds the same content as the previous run. Two graphs related by the
// supported evolution model — appending nodes and strictly-later edges
// (ExtendSorted / live-engine growth) and/or dropping a time-prefix
// (sliding-window eviction) — always stamp differently unless they are
// content-identical: any append moves Last, any prefix drop moves First or
// Edges, any node addition moves Nodes or LabelSum. The stamp is not a
// cryptographic digest; hand-built graphs engineered to collide (e.g.
// splicing different middles between identical first and last edges) are
// out of contract and would defeat change detection.
type Stamp struct {
	Nodes    int
	Edges    int
	First    Edge   // zero value when the graph has no edges
	Last     Edge   // zero value when the graph has no edges
	LabelSum uint64 // order-sensitive FNV-1a over node labels
}

// Stamp computes the graph's content-version fingerprint in O(V + 1).
func (g *Graph) Stamp() Stamp {
	s := Stamp{Nodes: len(g.labels), Edges: len(g.edges)}
	if len(g.edges) > 0 {
		s.First = g.edges[0]
		s.Last = g.edges[len(g.edges)-1]
	}
	h := uint64(14695981039346656037)
	for _, l := range g.labels {
		h ^= uint64(uint32(l))
		h *= 1099511628211
	}
	s.LabelSum = h
	return s
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// LabelOf returns the label of node v.
func (g *Graph) LabelOf(v NodeID) Label { return g.labels[v] }

// Labels returns the node label slice indexed by NodeID. The returned slice
// must not be modified.
func (g *Graph) Labels() []Label { return g.labels }

// EdgeAt returns the edge at position pos in total-order position.
func (g *Graph) EdgeAt(pos int) Edge { return g.edges[pos] }

// Edges returns the edges in increasing timestamp order. The returned slice
// must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Incident returns the positions of edges incident to v (as source or
// destination) in increasing position order. The returned slice must not be
// modified.
func (g *Graph) Incident(v NodeID) []int32 {
	g.ensureIndexes()
	return g.incident[v]
}

// LastOccurrence returns the largest edge position at which a node labeled l
// appears as an endpoint, or -1 if l does not occur. Residual-graph label
// tests use this: label l occurs in the residual graph after position pos
// iff LastOccurrence(l) > pos.
func (g *Graph) LastOccurrence(l Label) int32 {
	g.ensureIndexes()
	if p, ok := g.lastOcc[l]; ok {
		return p
	}
	return -1
}

// HasLabel reports whether any node with label l is an edge endpoint.
func (g *Graph) HasLabel(l Label) bool {
	g.ensureIndexes()
	_, ok := g.lastOcc[l]
	return ok
}

// EndpointLabels returns the set of labels that occur on edge endpoints.
func (g *Graph) EndpointLabels() map[Label]bool {
	g.ensureIndexes()
	out := make(map[Label]bool, len(g.lastOcc))
	for l := range g.lastOcc {
		out[l] = true
	}
	return out
}

// IsTConnected reports whether the graph is T-connected: for every prefix of
// the edge sequence (in timestamp order), the graph formed by that prefix is
// connected when edge direction is ignored.
func (g *Graph) IsTConnected() bool {
	return isTConnected(len(g.labels), func(i int) (NodeID, NodeID) {
		e := g.edges[i]
		return e.Src, e.Dst
	}, len(g.edges))
}

// isTConnected runs the incremental prefix-connectivity check shared by
// Graph and Pattern. edgeAt yields the endpoints of the i-th edge in
// timestamp order.
func isTConnected(numNodes int, edgeAt func(int) (NodeID, NodeID), numEdges int) bool {
	if numEdges == 0 {
		return numNodes <= 1
	}
	seen := make([]bool, numNodes)
	s, d := edgeAt(0)
	seen[s] = true
	seen[d] = true
	for i := 1; i < numEdges; i++ {
		s, d = edgeAt(i)
		su, du := seen[s], seen[d]
		if !su && !du {
			return false
		}
		seen[s] = true
		seen[d] = true
	}
	return true
}

// String renders the graph in a compact debugging form.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Graph{V=%d E=%d;", len(g.labels), len(g.edges))
	for i, e := range g.edges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %d:%d->%d@%d", g.labels[e.Src], e.Src, e.Dst, e.Time)
		if i >= 24 {
			sb.WriteString(" ...")
			break
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
