package tgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one Graph or Pattern. IDs are dense,
// starting at 0.
type NodeID int32

// Edge is a directed edge (Src, Dst, Time) of a temporal graph. Timestamps
// are non-negative integers; within a finalized Graph they are strictly
// increasing in edge-slice order (total edge order).
type Edge struct {
	Src  NodeID
	Dst  NodeID
	Time int64
}

// Graph is a finalized temporal graph: node labels plus edges sorted by
// strictly increasing timestamp. Graphs are immutable after Finalize; the
// mining and search layers build read-only indexes on top of them.
type Graph struct {
	labels []Label
	edges  []Edge

	// lastOcc[l] is the largest edge position at which a node labeled l is an
	// endpoint, or -1. Built on Finalize; used for residual label-set tests.
	lastOcc map[Label]int32

	// incident[v] lists the positions of edges having v as an endpoint, in
	// increasing position order. Built on Finalize; used by pattern growth.
	incident [][]int32
}

// ErrNotTotallyOrdered is reported by Finalize when two edges share a
// timestamp. Use Sequentialize to impose an artificial total order first
// (Section 5 of the paper).
var ErrNotTotallyOrdered = errors.New("tgraph: edges are not totally ordered (duplicate timestamps)")

// Builder incrementally assembles a temporal graph. The zero value is ready
// to use.
type Builder struct {
	labels []Label
	edges  []Edge
}

// AddNode appends a node with the given label and returns its NodeID.
func (b *Builder) AddNode(l Label) NodeID {
	b.labels = append(b.labels, l)
	return NodeID(len(b.labels) - 1)
}

// AddEdge appends a directed edge. Endpoints must already exist.
func (b *Builder) AddEdge(src, dst NodeID, t int64) error {
	n := NodeID(len(b.labels))
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("tgraph: edge (%d,%d,%d) references unknown node (graph has %d nodes)", src, dst, t, n)
	}
	if t < 0 {
		return fmt.Errorf("tgraph: edge (%d,%d,%d) has negative timestamp", src, dst, t)
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Time: t})
	return nil
}

// NumNodes reports the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Finalize sorts the edges by timestamp, validates the total order, and
// returns the immutable Graph. The builder must not be reused afterwards.
func (b *Builder) Finalize() (*Graph, error) {
	edges := b.edges
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	for i := 1; i < len(edges); i++ {
		if edges[i].Time == edges[i-1].Time {
			return nil, fmt.Errorf("%w: timestamp %d", ErrNotTotallyOrdered, edges[i].Time)
		}
	}
	g := &Graph{labels: b.labels, edges: edges}
	g.buildIndexes()
	return g, nil
}

// Sequentialize imposes an artificial strict total order on edges that share
// timestamps, implementing the data-collector policy discussed in Section 5
// of the paper. Ties are broken deterministically by (Src, Dst, insertion
// order), and the resulting timestamps are renumbered 0..|E|-1. It returns
// the finalized graph.
func (b *Builder) Sequentialize() (*Graph, error) {
	type keyed struct {
		e   Edge
		idx int
	}
	ks := make([]keyed, len(b.edges))
	for i, e := range b.edges {
		ks[i] = keyed{e: e, idx: i}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, bb := ks[i], ks[j]
		if a.e.Time != bb.e.Time {
			return a.e.Time < bb.e.Time
		}
		if a.e.Src != bb.e.Src {
			return a.e.Src < bb.e.Src
		}
		if a.e.Dst != bb.e.Dst {
			return a.e.Dst < bb.e.Dst
		}
		return a.idx < bb.idx
	})
	edges := make([]Edge, len(ks))
	for i, k := range ks {
		edges[i] = Edge{Src: k.e.Src, Dst: k.e.Dst, Time: int64(i)}
	}
	g := &Graph{labels: b.labels, edges: edges}
	g.buildIndexes()
	return g, nil
}

func (g *Graph) buildIndexes() {
	g.lastOcc = make(map[Label]int32)
	g.incident = make([][]int32, len(g.labels))
	for pos, e := range g.edges {
		p := int32(pos)
		g.lastOcc[g.labels[e.Src]] = p
		g.lastOcc[g.labels[e.Dst]] = p
		g.incident[e.Src] = append(g.incident[e.Src], p)
		if e.Dst != e.Src {
			g.incident[e.Dst] = append(g.incident[e.Dst], p)
		}
	}
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// LabelOf returns the label of node v.
func (g *Graph) LabelOf(v NodeID) Label { return g.labels[v] }

// Labels returns the node label slice indexed by NodeID. The returned slice
// must not be modified.
func (g *Graph) Labels() []Label { return g.labels }

// EdgeAt returns the edge at position pos in total-order position.
func (g *Graph) EdgeAt(pos int) Edge { return g.edges[pos] }

// Edges returns the edges in increasing timestamp order. The returned slice
// must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Incident returns the positions of edges incident to v (as source or
// destination) in increasing position order. The returned slice must not be
// modified.
func (g *Graph) Incident(v NodeID) []int32 { return g.incident[v] }

// LastOccurrence returns the largest edge position at which a node labeled l
// appears as an endpoint, or -1 if l does not occur. Residual-graph label
// tests use this: label l occurs in the residual graph after position pos
// iff LastOccurrence(l) > pos.
func (g *Graph) LastOccurrence(l Label) int32 {
	if p, ok := g.lastOcc[l]; ok {
		return p
	}
	return -1
}

// HasLabel reports whether any node with label l is an edge endpoint.
func (g *Graph) HasLabel(l Label) bool {
	_, ok := g.lastOcc[l]
	return ok
}

// EndpointLabels returns the set of labels that occur on edge endpoints.
func (g *Graph) EndpointLabels() map[Label]bool {
	out := make(map[Label]bool, len(g.lastOcc))
	for l := range g.lastOcc {
		out[l] = true
	}
	return out
}

// IsTConnected reports whether the graph is T-connected: for every prefix of
// the edge sequence (in timestamp order), the graph formed by that prefix is
// connected when edge direction is ignored.
func (g *Graph) IsTConnected() bool {
	return isTConnected(len(g.labels), func(i int) (NodeID, NodeID) {
		e := g.edges[i]
		return e.Src, e.Dst
	}, len(g.edges))
}

// isTConnected runs the incremental prefix-connectivity check shared by
// Graph and Pattern. edgeAt yields the endpoints of the i-th edge in
// timestamp order.
func isTConnected(numNodes int, edgeAt func(int) (NodeID, NodeID), numEdges int) bool {
	if numEdges == 0 {
		return numNodes <= 1
	}
	seen := make([]bool, numNodes)
	s, d := edgeAt(0)
	seen[s] = true
	seen[d] = true
	for i := 1; i < numEdges; i++ {
		s, d = edgeAt(i)
		su, du := seen[s], seen[d]
		if !su && !du {
			return false
		}
		seen[s] = true
		seen[d] = true
	}
	return true
}

// String renders the graph in a compact debugging form.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Graph{V=%d E=%d;", len(g.labels), len(g.edges))
	for i, e := range g.edges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %d:%d->%d@%d", g.labels[e.Src], e.Src, e.Dst, e.Time)
		if i >= 24 {
			sb.WriteString(" ...")
			break
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
