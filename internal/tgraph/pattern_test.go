package tgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleEdgePattern(t *testing.T) {
	p := SingleEdgePattern(3, 5, false)
	if p.NumNodes() != 2 || p.NumEdges() != 1 {
		t.Fatalf("got V=%d E=%d, want 2,1", p.NumNodes(), p.NumEdges())
	}
	if p.LabelOf(0) != 3 || p.LabelOf(1) != 5 {
		t.Errorf("labels = %d,%d want 3,5", p.LabelOf(0), p.LabelOf(1))
	}
	loop := SingleEdgePattern(3, 3, true)
	if loop.NumNodes() != 1 || loop.NumEdges() != 1 {
		t.Fatalf("self loop got V=%d E=%d, want 1,1", loop.NumNodes(), loop.NumEdges())
	}
}

func TestNewPatternValidates(t *testing.T) {
	if _, err := NewPattern([]Label{0}, []PEdge{{Src: 0, Dst: 3}}); err == nil {
		t.Errorf("NewPattern with bad edge succeeded")
	}
	p, err := NewPattern([]Label{0, 1}, []PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatalf("NewPattern: %v", err)
	}
	if p.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", p.NumEdges())
	}
}

func TestGrowthOptions(t *testing.T) {
	p := SingleEdgePattern(0, 1, false) // A -> B
	f := p.GrowForward(1, 2)            // B -> new C
	if f.NumNodes() != 3 || f.NumEdges() != 2 {
		t.Fatalf("forward: V=%d E=%d", f.NumNodes(), f.NumEdges())
	}
	if got := f.EdgeAt(1); got.Src != 1 || got.Dst != 2 {
		t.Errorf("forward edge = %v", got)
	}
	b := p.GrowBackward(3, 0) // new D -> A
	if got := b.EdgeAt(1); got.Src != 2 || got.Dst != 0 {
		t.Errorf("backward edge = %v", got)
	}
	if b.LabelOf(2) != 3 {
		t.Errorf("backward new node label = %d, want 3", b.LabelOf(2))
	}
	in := p.GrowInward(1, 0) // B -> A (multi-direction pair)
	if in.NumNodes() != 2 || in.NumEdges() != 2 {
		t.Fatalf("inward: V=%d E=%d", in.NumNodes(), in.NumEdges())
	}
	// Original is unchanged.
	if p.NumEdges() != 1 || p.NumNodes() != 2 {
		t.Errorf("growth mutated receiver: V=%d E=%d", p.NumNodes(), p.NumEdges())
	}
}

func TestGrowthImmutabilityInward(t *testing.T) {
	// GrowInward shares the label slice; ensure an inward-then-forward chain
	// does not alias into the parent's edges.
	p := SingleEdgePattern(0, 1, false)
	in := p.GrowInward(0, 1)
	fw := in.GrowForward(1, 9)
	if in.NumEdges() != 2 {
		t.Errorf("inward child changed: E=%d", in.NumEdges())
	}
	if fw.NumEdges() != 3 || fw.LabelOf(2) != 9 {
		t.Errorf("grandchild wrong: E=%d", fw.NumEdges())
	}
}

func TestPatternEqualPermutedNodeIDs(t *testing.T) {
	// Same pattern, different internal node numbering.
	p, _ := NewPattern([]Label{0, 1, 2}, []PEdge{{0, 1}, {1, 2}, {0, 2}})
	q, _ := NewPattern([]Label{2, 0, 1}, []PEdge{{1, 2}, {2, 0}, {1, 0}})
	if !p.Equal(q) {
		t.Errorf("permuted-equal patterns reported unequal")
	}
	if p.Key() != q.Key() {
		t.Errorf("permuted-equal patterns have different keys")
	}
}

func TestPatternUnequalByOrder(t *testing.T) {
	// Same topology, different temporal order of edges -> unequal.
	p, _ := NewPattern([]Label{0, 1, 2}, []PEdge{{0, 1}, {1, 2}})
	q, _ := NewPattern([]Label{0, 1, 2}, []PEdge{{1, 2}, {0, 1}})
	if p.Equal(q) {
		t.Errorf("temporally distinct patterns reported equal")
	}
	if p.Key() == q.Key() {
		t.Errorf("temporally distinct patterns share key")
	}
}

func TestPatternUnequalByLabel(t *testing.T) {
	p, _ := NewPattern([]Label{0, 1}, []PEdge{{0, 1}})
	q, _ := NewPattern([]Label{0, 2}, []PEdge{{0, 1}})
	if p.Equal(q) {
		t.Errorf("label-distinct patterns reported equal")
	}
}

func TestPatternEqualSelfLoopVsEdge(t *testing.T) {
	loop := SingleEdgePattern(0, 0, true)
	edge := SingleEdgePattern(0, 0, false)
	if loop.Equal(edge) {
		t.Errorf("self-loop equals two-node edge")
	}
	if loop.Key() == edge.Key() {
		t.Errorf("self-loop key equals two-node edge key")
	}
}

func TestPatternEqualReflexiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomTConnectedPattern(rng, 10, 3)
		return p.Equal(p) && p.Key() == p.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// permutePattern renumbers nodes with a random permutation; the result
// matches the original (=t).
func permutePattern(rng *rand.Rand, p *Pattern) *Pattern {
	n := p.NumNodes()
	perm := rng.Perm(n)
	labels := make([]Label, n)
	for v := 0; v < n; v++ {
		labels[perm[v]] = p.LabelOf(NodeID(v))
	}
	edges := make([]PEdge, p.NumEdges())
	for i, e := range p.Edges() {
		edges[i] = PEdge{Src: NodeID(perm[e.Src]), Dst: NodeID(perm[e.Dst])}
	}
	q, err := NewPattern(labels, edges)
	if err != nil {
		panic(err)
	}
	return q
}

func TestPatternEqualUnderPermutationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomTConnectedPattern(rng, 10, 3)
		q := permutePattern(rng, p)
		return p.Equal(q) && q.Equal(p) && p.Key() == q.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesDifferentPatternsQuick(t *testing.T) {
	// Two independently random patterns that have equal keys must be Equal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomTConnectedPattern(rng, 6, 2)
		q := randomTConnectedPattern(rng, 6, 2)
		if p.Key() == q.Key() {
			return p.Equal(q)
		}
		return !p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAsGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		p := randomTConnectedPattern(rng, 8, 3)
		g := p.AsGraph()
		q := PatternFromGraph(g)
		if !p.Equal(q) {
			t.Fatalf("AsGraph/PatternFromGraph round trip mismatch:\n p=%v\n q=%v", p, q)
		}
	}
}

func TestDegrees(t *testing.T) {
	p, _ := NewPattern([]Label{0, 1, 2}, []PEdge{{0, 1}, {0, 2}, {1, 0}})
	if got := p.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := p.InDegree(0); got != 1 {
		t.Errorf("InDegree(0) = %d, want 1", got)
	}
	if got := p.OutDegree(2); got != 0 {
		t.Errorf("OutDegree(2) = %d, want 0", got)
	}
}

func TestGrowthKindString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" || Inward.String() != "inward" {
		t.Errorf("GrowthKind strings wrong: %s %s %s", Forward, Backward, Inward)
	}
}

func TestPatternFormat(t *testing.T) {
	d := NewDict()
	a, b := d.Intern("sshd"), d.Intern("bash")
	p := SingleEdgePattern(a, b, false)
	got := p.Format(d)
	want := "[t=1] sshd(#0) -> bash(#1)"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}
