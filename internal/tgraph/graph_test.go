package tgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, labels []Label, edges []Edge) *Graph {
	t.Helper()
	var b Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	a := d.Intern("sshd")
	b := d.Intern("bash")
	if a == b {
		t.Fatalf("distinct names got same label %d", a)
	}
	if got := d.Intern("sshd"); got != a {
		t.Errorf("Intern(sshd) second call = %d, want %d", got, a)
	}
	if got := d.Lookup("bash"); got != b {
		t.Errorf("Lookup(bash) = %d, want %d", got, b)
	}
	if got := d.Lookup("nope"); got != NoLabel {
		t.Errorf("Lookup(nope) = %d, want NoLabel", got)
	}
	if d.Name(a) != "sshd" || d.Name(b) != "bash" {
		t.Errorf("Name round trip failed: %q %q", d.Name(a), d.Name(b))
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictNamePanicsOutOfRange(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Errorf("Name(99) did not panic")
		}
	}()
	d.Name(99)
}

func TestBuilderFinalizeSortsEdges(t *testing.T) {
	g := mustGraph(t, []Label{0, 1, 2}, []Edge{
		{Src: 1, Dst: 2, Time: 30},
		{Src: 0, Dst: 1, Time: 10},
		{Src: 0, Dst: 2, Time: 20},
	})
	want := []int64{10, 20, 30}
	for i, e := range g.Edges() {
		if e.Time != want[i] {
			t.Errorf("edge %d time = %d, want %d", i, e.Time, want[i])
		}
	}
}

func TestBuilderRejectsUnknownNode(t *testing.T) {
	var b Builder
	b.AddNode(0)
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Errorf("AddEdge to unknown node succeeded")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Errorf("AddEdge from negative node succeeded")
	}
}

func TestBuilderRejectsNegativeTimestamp(t *testing.T) {
	var b Builder
	b.AddNode(0)
	b.AddNode(1)
	if err := b.AddEdge(0, 1, -5); err == nil {
		t.Errorf("AddEdge with negative timestamp succeeded")
	}
}

func TestFinalizeRejectsDuplicateTimestamps(t *testing.T) {
	var b Builder
	b.AddNode(0)
	b.AddNode(1)
	if err := b.AddEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 7); err != nil {
		t.Fatal(err)
	}
	_, err := b.Finalize()
	if !errors.Is(err, ErrNotTotallyOrdered) {
		t.Errorf("Finalize error = %v, want ErrNotTotallyOrdered", err)
	}
}

func TestSequentializeBreaksTies(t *testing.T) {
	var b Builder
	b.AddNode(0)
	b.AddNode(1)
	b.AddNode(2)
	for _, e := range []Edge{{0, 1, 7}, {1, 2, 7}, {0, 2, 3}} {
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Sequentialize()
	if err != nil {
		t.Fatalf("Sequentialize: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	// Edge (0,2,3) sorts first; ties (0,1,7) < (1,2,7) by Src.
	wantOrder := []Edge{{0, 2, 0}, {0, 1, 1}, {1, 2, 2}}
	for i, want := range wantOrder {
		if g.EdgeAt(i) != want {
			t.Errorf("edge %d = %v, want %v", i, g.EdgeAt(i), want)
		}
	}
}

func TestSequentializeDeterministic(t *testing.T) {
	build := func() *Graph {
		var b Builder
		for i := 0; i < 5; i++ {
			b.AddNode(Label(i % 2))
		}
		for i := 0; i < 10; i++ {
			if err := b.AddEdge(NodeID(i%5), NodeID((i+1)%5), int64(i%3)); err != nil {
				t.Fatal(err)
			}
		}
		g, err := b.Sequentialize()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := build(), build()
	for i := range g1.Edges() {
		if g1.EdgeAt(i) != g2.EdgeAt(i) {
			t.Fatalf("non-deterministic sequentialize at edge %d: %v vs %v", i, g1.EdgeAt(i), g2.EdgeAt(i))
		}
	}
}

func TestLastOccurrence(t *testing.T) {
	g := mustGraph(t, []Label{10, 20, 10}, []Edge{
		{Src: 0, Dst: 1, Time: 1}, // labels 10,20 at pos 0
		{Src: 1, Dst: 2, Time: 2}, // labels 20,10 at pos 1
	})
	if got := g.LastOccurrence(10); got != 1 {
		t.Errorf("LastOccurrence(10) = %d, want 1", got)
	}
	if got := g.LastOccurrence(20); got != 1 {
		t.Errorf("LastOccurrence(20) = %d, want 1", got)
	}
	if got := g.LastOccurrence(99); got != -1 {
		t.Errorf("LastOccurrence(99) = %d, want -1", got)
	}
	if g.HasLabel(99) {
		t.Errorf("HasLabel(99) = true")
	}
	if !g.HasLabel(20) {
		t.Errorf("HasLabel(20) = false")
	}
}

func TestIncidentIndex(t *testing.T) {
	g := mustGraph(t, []Label{0, 0, 0}, []Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 0, Dst: 2, Time: 3},
		{Src: 1, Dst: 1, Time: 4}, // self loop appears once
	})
	if got := g.Incident(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Incident(0) = %v, want [0 2]", got)
	}
	if got := g.Incident(1); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("Incident(1) = %v, want [0 1 3]", got)
	}
}

func TestIsTConnected(t *testing.T) {
	// Figure 3 style: G1 connected in every prefix.
	conn := mustGraph(t, []Label{0, 1, 2}, []Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 0, Dst: 2, Time: 3},
	})
	if !conn.IsTConnected() {
		t.Errorf("connected graph reported non-T-connected")
	}
	// Edge 2 is disconnected from edge 1's component when it arrives.
	disc := mustGraph(t, []Label{0, 1, 2, 3}, []Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 2, Dst: 3, Time: 2},
		{Src: 1, Dst: 2, Time: 3},
	})
	if disc.IsTConnected() {
		t.Errorf("disconnected prefix reported T-connected")
	}
	empty := mustGraph(t, []Label{0}, nil)
	if !empty.IsTConnected() {
		t.Errorf("single-node empty graph should be T-connected")
	}
	twoIso := mustGraph(t, []Label{0, 1}, nil)
	if twoIso.IsTConnected() {
		t.Errorf("two isolated nodes should not be T-connected")
	}
}

// randomTConnectedPattern builds a random pattern via consecutive growth, so
// it is T-connected by construction.
func randomTConnectedPattern(rng *rand.Rand, maxEdges int, labelRange int) *Pattern {
	p := SingleEdgePattern(Label(rng.Intn(labelRange)), Label(rng.Intn(labelRange)), false)
	m := 1 + rng.Intn(maxEdges)
	for p.NumEdges() < m {
		switch rng.Intn(3) {
		case 0:
			p = p.GrowForward(NodeID(rng.Intn(p.NumNodes())), Label(rng.Intn(labelRange)))
		case 1:
			p = p.GrowBackward(Label(rng.Intn(labelRange)), NodeID(rng.Intn(p.NumNodes())))
		default:
			p = p.GrowInward(NodeID(rng.Intn(p.NumNodes())), NodeID(rng.Intn(p.NumNodes())))
		}
	}
	return p
}

func TestConsecutiveGrowthAlwaysTConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomTConnectedPattern(rng, 12, 4)
		if !p.IsTConnected() {
			t.Fatalf("consecutive growth produced non-T-connected pattern: %v", p)
		}
	}
}

func TestTConnectedQuick(t *testing.T) {
	// Property: a pattern whose prefix connectivity holds per the incremental
	// check agrees with an explicit union-find recomputation per prefix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomTConnectedPattern(rng, 10, 3)
		g := p.AsGraph()
		return g.IsTConnected() == bruteTConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func bruteTConnected(g *Graph) bool {
	edges := g.Edges()
	if len(edges) == 0 {
		return g.NumNodes() <= 1
	}
	for prefix := 1; prefix <= len(edges); prefix++ {
		// Union-find over nodes touched by the prefix.
		parent := map[NodeID]NodeID{}
		var find func(NodeID) NodeID
		find = func(x NodeID) NodeID {
			if parent[x] == x {
				return x
			}
			r := find(parent[x])
			parent[x] = r
			return r
		}
		touch := func(x NodeID) {
			if _, ok := parent[x]; !ok {
				parent[x] = x
			}
		}
		for i := 0; i < prefix; i++ {
			touch(edges[i].Src)
			touch(edges[i].Dst)
			a, b := find(edges[i].Src), find(edges[i].Dst)
			parent[a] = b
		}
		roots := map[NodeID]bool{}
		for v := range parent {
			roots[find(v)] = true
		}
		if len(roots) != 1 {
			return false
		}
	}
	return true
}

// buildTestGraph finalizes a graph from labels and edges.
func buildTestGraph(t *testing.T, labels []Label, edges []Edge) *Graph {
	t.Helper()
	var b Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameGraphContent asserts two graphs expose identical labels, edges, and
// mining indexes.
func sameGraphContent(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := 0; v < want.NumNodes(); v++ {
		if got.LabelOf(NodeID(v)) != want.LabelOf(NodeID(v)) {
			t.Fatalf("node %d label %d, want %d", v, got.LabelOf(NodeID(v)), want.LabelOf(NodeID(v)))
		}
		gi, wi := got.Incident(NodeID(v)), want.Incident(NodeID(v))
		if len(gi) != len(wi) {
			t.Fatalf("node %d incident %v, want %v", v, gi, wi)
		}
		for i := range gi {
			if gi[i] != wi[i] {
				t.Fatalf("node %d incident %v, want %v", v, gi, wi)
			}
		}
	}
	for pos := 0; pos < want.NumEdges(); pos++ {
		if got.EdgeAt(pos) != want.EdgeAt(pos) {
			t.Fatalf("edge %d = %v, want %v", pos, got.EdgeAt(pos), want.EdgeAt(pos))
		}
	}
	for l, ok := range want.EndpointLabels() {
		if got.HasLabel(l) != ok || got.LastOccurrence(l) != want.LastOccurrence(l) {
			t.Fatalf("label %d occurrence %d, want %d", l, got.LastOccurrence(l), want.LastOccurrence(l))
		}
	}
}

func TestExtendSorted(t *testing.T) {
	labels := []Label{0, 1, 2}
	edges := []Edge{{0, 1, 1}, {1, 2, 3}, {0, 2, 5}}
	g := buildTestGraph(t, labels, edges)

	// Extend with new nodes and a sorted suffix referencing them.
	ext, err := g.ExtendSorted([]Label{1}, []Edge{{2, 3, 7}, {3, 0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	want := buildTestGraph(t, []Label{0, 1, 2, 1},
		append(append([]Edge{}, edges...), Edge{2, 3, 7}, Edge{3, 0, 9}))
	sameGraphContent(t, ext, want)

	// The base graph is unchanged.
	sameGraphContent(t, g, buildTestGraph(t, labels, edges))

	// Extending the chain tip again appends in place (amortized); the
	// earlier member of the chain stays valid and unchanged.
	ext2, err := ext.ExtendSorted(nil, []Edge{{1, 3, 11}})
	if err != nil {
		t.Fatal(err)
	}
	sameGraphContent(t, ext2, buildTestGraph(t, []Label{0, 1, 2, 1},
		append(append([]Edge{}, edges...), Edge{2, 3, 7}, Edge{3, 0, 9}, Edge{1, 3, 11})))
	sameGraphContent(t, ext, want)

	// Extending a non-tip member falls back to copying and must not
	// disturb the newer chain members.
	fork, err := ext.ExtendSorted([]Label{0}, []Edge{{4, 2, 20}})
	if err != nil {
		t.Fatal(err)
	}
	sameGraphContent(t, fork, buildTestGraph(t, []Label{0, 1, 2, 1, 0},
		append(append([]Edge{}, edges...), Edge{2, 3, 7}, Edge{3, 0, 9}, Edge{4, 2, 20})))
	sameGraphContent(t, ext2, buildTestGraph(t, []Label{0, 1, 2, 1},
		append(append([]Edge{}, edges...), Edge{2, 3, 7}, Edge{3, 0, 9}, Edge{1, 3, 11})))

	// Empty extensions are valid and cheap.
	same, err := ext2.ExtendSorted(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameGraphContent(t, same, ext2)
}

func TestExtendSortedErrors(t *testing.T) {
	g := buildTestGraph(t, []Label{0, 1}, []Edge{{0, 1, 5}})
	if _, err := g.ExtendSorted(nil, []Edge{{0, 1, 5}}); !errors.Is(err, ErrNotTotallyOrdered) {
		t.Fatalf("duplicate timestamp accepted: %v", err)
	}
	if _, err := g.ExtendSorted(nil, []Edge{{0, 1, 4}}); !errors.Is(err, ErrNotTotallyOrdered) {
		t.Fatalf("backwards timestamp accepted: %v", err)
	}
	if _, err := g.ExtendSorted(nil, []Edge{{0, 1, 6}, {1, 0, 6}}); !errors.Is(err, ErrNotTotallyOrdered) {
		t.Fatalf("duplicate suffix timestamp accepted: %v", err)
	}
	if _, err := g.ExtendSorted(nil, []Edge{{0, 2, 6}}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := g.ExtendSorted([]Label{3}, []Edge{{0, 2, 6}}); err != nil {
		t.Fatalf("edge to newly added node rejected: %v", err)
	}
}
