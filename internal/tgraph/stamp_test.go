package tgraph

import "testing"

// TestStampDetectsEvolution pins that Stamp distinguishes every step of the
// supported graph evolution model: edge appends, node additions, and
// prefix-dropping rebuilds.
func TestStampDetectsEvolution(t *testing.T) {
	var b Builder
	a := b.AddNode(1)
	c := b.AddNode(2)
	if err := b.AddEdge(a, c, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(c, a, 2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	base := g.Stamp()
	if base != g.Stamp() {
		t.Fatal("stamp not deterministic")
	}

	// Content-identical rebuild stamps equal.
	var b2 Builder
	b2.AddNode(1)
	b2.AddNode(2)
	b2.AddEdge(0, 1, 1)
	b2.AddEdge(1, 0, 2)
	g2, err := b2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Stamp() != base {
		t.Fatalf("content-identical graphs stamp differently: %+v vs %+v", g2.Stamp(), base)
	}

	// Append moves the stamp.
	ext, err := g.ExtendSorted(nil, []Edge{{Src: a, Dst: c, Time: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Stamp() == base {
		t.Fatal("append did not change stamp")
	}

	// New node (even with no edges) moves the stamp.
	ext2, err := g.ExtendSorted([]Label{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ext2.Stamp() == base {
		t.Fatal("node addition did not change stamp")
	}

	// Prefix drop (eviction rebuild) moves the stamp.
	var b3 Builder
	b3.AddNode(1)
	b3.AddNode(2)
	b3.AddEdge(1, 0, 2)
	g3, err := b3.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g3.Stamp() == base {
		t.Fatal("prefix drop did not change stamp")
	}

	// Label change at equal shape moves the stamp (LabelSum).
	var b4 Builder
	b4.AddNode(1)
	b4.AddNode(3)
	b4.AddEdge(0, 1, 1)
	b4.AddEdge(1, 0, 2)
	g4, err := b4.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g4.Stamp() == base {
		t.Fatal("label change did not change stamp")
	}

	// Empty graph stamps distinctly from non-empty.
	var b5 Builder
	b5.AddNode(1)
	b5.AddNode(2)
	g5, err := b5.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g5.Stamp() == base || g5.Stamp().Edges != 0 {
		t.Fatal("empty graph stamp wrong")
	}
}
