package tgraph

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// PEdge is a pattern edge. The timestamp is implicit: the edge at slice
// position i has timestamp i+1, so a Pattern always satisfies the paper's
// alignment requirement (timestamps exactly 1..|E|).
type PEdge struct {
	Src NodeID
	Dst NodeID
}

// Pattern is a temporal graph pattern: a node-labeled temporal graph whose
// edge timestamps are 1..|E| in slice order. Patterns grown by consecutive
// growth number their nodes in first-visit order, which makes the byte form
// produced by Key canonical (Lemma 1: the match between equal patterns is
// unique, so first-visit numbering is unambiguous).
type Pattern struct {
	labels []Label
	edges  []PEdge
}

// NewPattern constructs a pattern from explicit node labels and edges in
// timestamp order. It copies both slices.
func NewPattern(labels []Label, edges []PEdge) (*Pattern, error) {
	p := &Pattern{
		labels: append([]Label(nil), labels...),
		edges:  append([]PEdge(nil), edges...),
	}
	n := NodeID(len(labels))
	for i, e := range p.edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("tgraph: pattern edge %d (%d->%d) references unknown node", i+1, e.Src, e.Dst)
		}
	}
	return p, nil
}

// SingleEdgePattern returns the one-edge pattern srcLabel -> dstLabel. The
// two endpoints are distinct nodes unless selfLoop is true.
func SingleEdgePattern(srcLabel, dstLabel Label, selfLoop bool) *Pattern {
	if selfLoop {
		return &Pattern{labels: []Label{srcLabel}, edges: []PEdge{{Src: 0, Dst: 0}}}
	}
	return &Pattern{labels: []Label{srcLabel, dstLabel}, edges: []PEdge{{Src: 0, Dst: 1}}}
}

// NumNodes reports |V|.
func (p *Pattern) NumNodes() int { return len(p.labels) }

// NumEdges reports |E|.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// LabelOf returns the label of pattern node v.
func (p *Pattern) LabelOf(v NodeID) Label { return p.labels[v] }

// Labels returns the node labels indexed by NodeID. The returned slice must
// not be modified.
func (p *Pattern) Labels() []Label { return p.labels }

// EdgeAt returns the edge with timestamp pos+1.
func (p *Pattern) EdgeAt(pos int) PEdge { return p.edges[pos] }

// Edges returns edges in timestamp order. The returned slice must not be
// modified.
func (p *Pattern) Edges() []PEdge { return p.edges }

// IsTConnected reports whether every prefix of the pattern's edge sequence
// forms a connected graph (ignoring direction).
func (p *Pattern) IsTConnected() bool {
	return isTConnected(len(p.labels), func(i int) (NodeID, NodeID) {
		e := p.edges[i]
		return e.Src, e.Dst
	}, len(p.edges))
}

// GrowthKind classifies a consecutive-growth step (Section 3.2).
type GrowthKind uint8

const (
	// Forward growth attaches a new destination node to an existing source.
	Forward GrowthKind = iota
	// Backward growth attaches a new source node to an existing destination.
	Backward
	// Inward growth adds an edge between two existing nodes (multi-edges and
	// self-loops between visited nodes included).
	Inward
)

func (k GrowthKind) String() string {
	switch k {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Inward:
		return "inward"
	default:
		return fmt.Sprintf("GrowthKind(%d)", uint8(k))
	}
}

// GrowForward returns a new pattern extending p with edge (src, new node
// labeled dstLabel) at timestamp |E|+1. p is not modified.
func (p *Pattern) GrowForward(src NodeID, dstLabel Label) *Pattern {
	labels := make([]Label, len(p.labels)+1)
	copy(labels, p.labels)
	labels[len(p.labels)] = dstLabel
	edges := make([]PEdge, len(p.edges)+1)
	copy(edges, p.edges)
	edges[len(p.edges)] = PEdge{Src: src, Dst: NodeID(len(p.labels))}
	return &Pattern{labels: labels, edges: edges}
}

// GrowBackward returns a new pattern extending p with edge (new node labeled
// srcLabel, dst) at timestamp |E|+1. p is not modified.
func (p *Pattern) GrowBackward(srcLabel Label, dst NodeID) *Pattern {
	labels := make([]Label, len(p.labels)+1)
	copy(labels, p.labels)
	labels[len(p.labels)] = srcLabel
	edges := make([]PEdge, len(p.edges)+1)
	copy(edges, p.edges)
	edges[len(p.edges)] = PEdge{Src: NodeID(len(p.labels)), Dst: dst}
	return &Pattern{labels: labels, edges: edges}
}

// GrowInward returns a new pattern extending p with edge (src, dst) between
// existing nodes at timestamp |E|+1. p is not modified.
func (p *Pattern) GrowInward(src, dst NodeID) *Pattern {
	edges := make([]PEdge, len(p.edges)+1)
	copy(edges, p.edges)
	edges[len(p.edges)] = PEdge{Src: src, Dst: dst}
	return &Pattern{labels: p.labels, edges: edges}
}

// Equal implements the linear-time pattern match test of Lemma 2: two
// patterns match (p =t q) iff the timestamp-aligned edge walk induces a
// consistent label-preserving bijection on nodes.
func (p *Pattern) Equal(q *Pattern) bool {
	if len(p.labels) != len(q.labels) || len(p.edges) != len(q.edges) {
		return false
	}
	fwd := make([]NodeID, len(p.labels)) // p node -> q node, -1 unset
	rev := make([]NodeID, len(q.labels)) // q node -> p node, -1 unset
	for i := range fwd {
		fwd[i] = -1
	}
	for i := range rev {
		rev[i] = -1
	}
	bind := func(a, b NodeID) bool {
		if p.labels[a] != q.labels[b] {
			return false
		}
		if fwd[a] == -1 && rev[b] == -1 {
			fwd[a] = b
			rev[b] = a
			return true
		}
		return fwd[a] == b && rev[b] == a
	}
	for i := range p.edges {
		pe, qe := p.edges[i], q.edges[i]
		if !bind(pe.Src, qe.Src) || !bind(pe.Dst, qe.Dst) {
			return false
		}
	}
	// Every node participates in an edge for patterns built by consecutive
	// growth; isolated nodes (possible via NewPattern) must agree in count,
	// which the length check above ensures, and in label multiset.
	if len(p.edges) == 0 {
		return labelMultisetEqual(p.labels, q.labels)
	}
	for _, m := range fwd {
		if m == -1 {
			// Isolated node in p: require q to also have an unmatched node of
			// the same label. Rare path; fall back to multiset comparison of
			// unmatched labels.
			return unmatchedLabelsEqual(p, q, fwd, rev)
		}
	}
	for _, m := range rev {
		if m == -1 {
			return unmatchedLabelsEqual(p, q, fwd, rev)
		}
	}
	return true
}

func labelMultisetEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[Label]int, len(a))
	for _, l := range a {
		count[l]++
	}
	for _, l := range b {
		count[l]--
		if count[l] < 0 {
			return false
		}
	}
	return true
}

func unmatchedLabelsEqual(p, q *Pattern, fwd, rev []NodeID) bool {
	var pa, qa []Label
	for v, m := range fwd {
		if m == -1 {
			pa = append(pa, p.labels[v])
		}
	}
	for v, m := range rev {
		if m == -1 {
			qa = append(qa, q.labels[v])
		}
	}
	return labelMultisetEqual(pa, qa)
}

// Key returns a canonical byte-string identity for the pattern. Node IDs are
// renumbered by first appearance in the timestamp-ordered edge walk (source
// before destination within an edge), which by Lemma 1 is unique for
// matching patterns, so p.Equal(q) iff p.Key() == q.Key() for patterns
// without isolated nodes.
func (p *Pattern) Key() string {
	renum := make([]NodeID, len(p.labels))
	for i := range renum {
		renum[i] = -1
	}
	order := make([]NodeID, 0, len(p.labels))
	visit := func(v NodeID) NodeID {
		if renum[v] == -1 {
			renum[v] = NodeID(len(order))
			order = append(order, v)
		}
		return renum[v]
	}
	var buf []byte
	var tmp [4]byte
	put := func(x int32) {
		binary.LittleEndian.PutUint32(tmp[:], uint32(x))
		buf = append(buf, tmp[:]...)
	}
	for _, e := range p.edges {
		put(int32(visit(e.Src)))
		put(int32(visit(e.Dst)))
	}
	for _, v := range order {
		put(int32(p.labels[v]))
	}
	// Isolated nodes (not reachable from edges) are appended as a sorted
	// label multiset so Key stays canonical for NewPattern-built inputs.
	var iso []Label
	for v := range renum {
		if renum[v] == -1 {
			iso = append(iso, p.labels[v])
		}
	}
	if len(iso) > 0 {
		sortLabels(iso)
		buf = append(buf, 0xFF)
		for _, l := range iso {
			put(int32(l))
		}
	}
	return string(buf)
}

func sortLabels(ls []Label) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// AsGraph converts the pattern to a Graph whose edge timestamps are 1..|E|.
// Useful for running data-graph algorithms on patterns.
func (p *Pattern) AsGraph() *Graph {
	var b Builder
	for _, l := range p.labels {
		b.AddNode(l)
	}
	for i, e := range p.edges {
		// Errors are impossible: nodes exist and timestamps are distinct.
		if err := b.AddEdge(e.Src, e.Dst, int64(i+1)); err != nil {
			panic(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

// PatternFromGraph reinterprets a temporal graph as a pattern by aligning
// its timestamps to 1..|E| (only the total order is kept).
func PatternFromGraph(g *Graph) *Pattern {
	edges := make([]PEdge, g.NumEdges())
	for i, e := range g.Edges() {
		edges[i] = PEdge{Src: e.Src, Dst: e.Dst}
	}
	return &Pattern{labels: append([]Label(nil), g.Labels()...), edges: edges}
}

// String renders the pattern in a compact debugging form.
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pattern{V=%d E=%d;", len(p.labels), len(p.edges))
	for i, e := range p.edges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %d(%d)->%d(%d)", e.Src, p.labels[e.Src], e.Dst, p.labels[e.Dst])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Format renders the pattern with human-readable labels from dict.
func (p *Pattern) Format(dict *Dict) string {
	var sb strings.Builder
	for i, e := range p.edges {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "[t=%d] %s(#%d) -> %s(#%d)", i+1, dict.Name(p.labels[e.Src]), e.Src, dict.Name(p.labels[e.Dst]), e.Dst)
	}
	return sb.String()
}

// OutDegree returns the out-degree of node v in the pattern.
func (p *Pattern) OutDegree(v NodeID) int {
	n := 0
	for _, e := range p.edges {
		if e.Src == v {
			n++
		}
	}
	return n
}

// InDegree returns the in-degree of node v in the pattern.
func (p *Pattern) InDegree(v NodeID) int {
	n := 0
	for _, e := range p.edges {
		if e.Dst == v {
			n++
		}
	}
	return n
}
