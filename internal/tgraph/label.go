// Package tgraph defines the temporal graph and temporal graph pattern data
// model from Zong et al., "Behavior Query Discovery in System-Generated
// Temporal Graphs" (VLDB 2015).
//
// A temporal graph G = (V, E, A, T) has labeled nodes and directed edges that
// carry timestamps under a total order. A temporal graph pattern is a
// temporal graph whose timestamps are exactly 1..|E|; only the relative edge
// order is meaningful. The package provides construction, validation
// (T-connectivity), pattern equality (Lemma 2), canonical keys, and the
// sequentialization transform for concurrent edges (Section 5 of the paper).
package tgraph

import (
	"fmt"
	"sort"
)

// Label is an interned node label. Labels are interned through a Dict so
// that graphs and patterns can compare labels as integers.
type Label int32

// NoLabel is the zero value returned for unknown label names.
const NoLabel Label = -1

// Dict interns label strings to dense Label identifiers. A Dict is shared by
// all graphs of a dataset so that labels are comparable across graphs.
//
// Dict is not safe for concurrent mutation; Intern must be externally
// synchronized if used from multiple goroutines. Lookup methods are safe once
// interning has stopped.
type Dict struct {
	byName map[string]Label
	names  []string
}

// NewDict returns an empty label dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]Label)}
}

// Intern returns the Label for name, assigning a fresh identifier on first
// use.
func (d *Dict) Intern(name string) Label {
	if l, ok := d.byName[name]; ok {
		return l
	}
	l := Label(len(d.names))
	d.byName[name] = l
	d.names = append(d.names, name)
	return l
}

// Lookup returns the Label for name, or NoLabel if name was never interned.
func (d *Dict) Lookup(name string) Label {
	if l, ok := d.byName[name]; ok {
		return l
	}
	return NoLabel
}

// Name returns the string for l. It panics if l was not produced by this
// Dict.
func (d *Dict) Name(l Label) string {
	if int(l) < 0 || int(l) >= len(d.names) {
		panic(fmt.Sprintf("tgraph: label %d out of range (dict has %d labels)", l, len(d.names)))
	}
	return d.names[l]
}

// Len reports the number of interned labels.
func (d *Dict) Len() int { return len(d.names) }

// Names returns all interned names ordered by Label value. The returned
// slice must not be modified.
func (d *Dict) Names() []string { return d.names }

// SortedNames returns a copy of the interned names in lexicographic order.
func (d *Dict) SortedNames() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	sort.Strings(out)
	return out
}
