package nodeset

import (
	"testing"

	"tgminer/internal/rank"
	"tgminer/internal/tgraph"
)

func buildGraph(t *testing.T, dict *tgraph.Dict, labelNames []string) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, n := range labelNames {
		b.AddNode(dict.Intern(n))
	}
	for i := 0; i+1 < len(labelNames); i++ {
		if err := b.AddEdge(tgraph.NodeID(i), tgraph.NodeID(i+1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMineSelectsDiscriminativeLabels(t *testing.T) {
	dict := tgraph.NewDict()
	var pos, neg []*tgraph.Graph
	for i := 0; i < 4; i++ {
		pos = append(pos, buildGraph(t, dict, []string{"proc:ssh", "file:key", "common"}))
		neg = append(neg, buildGraph(t, dict, []string{"common", "file:other"}))
	}
	q, err := Mine(pos, neg, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Labels) != 2 {
		t.Fatalf("labels = %v, want 2", q.Labels)
	}
	want := map[tgraph.Label]bool{dict.Lookup("proc:ssh"): true, dict.Lookup("file:key"): true}
	for _, l := range q.Labels {
		if !want[l] {
			t.Errorf("unexpected label %s in query", dict.Name(l))
		}
	}
	if len(q.Scores) != 2 {
		t.Errorf("scores = %v", q.Scores)
	}
}

func TestMineRespectsBlacklist(t *testing.T) {
	dict := tgraph.NewDict()
	var pos []*tgraph.Graph
	for i := 0; i < 3; i++ {
		pos = append(pos, buildGraph(t, dict, []string{"file:/tmp/x", "proc:a"}))
	}
	in := rank.NewInterest(pos, dict, nil)
	q, err := Mine(pos, nil, Options{K: 1, Interest: in})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Labels) != 1 || q.Labels[0] != dict.Lookup("proc:a") {
		t.Errorf("blacklisted label selected: %v", q.Labels)
	}
}

func TestMineEmptyPositive(t *testing.T) {
	if _, err := Mine(nil, nil, Options{}); err == nil {
		t.Errorf("expected error")
	}
}

func TestMineDefaultK(t *testing.T) {
	dict := tgraph.NewDict()
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	pos := []*tgraph.Graph{buildGraph(t, dict, labels)}
	q, err := Mine(pos, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Labels) != 6 {
		t.Errorf("default K: got %d labels, want 6", len(q.Labels))
	}
}
