// Package nodeset implements the NodeSet baseline of the TGMiner paper
// (Section 6.1): behavior queries are the top-k discriminative node labels,
// where a label's discriminativeness is measured with the same score
// function F(x, y) used for graph patterns, and a match is a set of k nodes
// with exactly that label multiset within the behavior's observed lifetime
// window.
package nodeset

import (
	"errors"

	"tgminer/internal/rank"
	"tgminer/internal/score"
	"tgminer/internal/tgraph"
)

// Options configures label mining.
type Options struct {
	// Score is the discriminative score function (default score.LogRatio).
	Score score.Func
	// K is the number of labels in the query (default 6, the paper's
	// default query size).
	K int
	// Interest supplies the blacklist; nil disables blacklisting.
	Interest *rank.Interest
}

// Query is a NodeSet behavior query: a label multiset.
type Query struct {
	Labels []tgraph.Label
	Scores []float64
}

// ErrNoPositiveGraphs is returned when the positive set is empty.
var ErrNoPositiveGraphs = errors.New("nodeset: positive graph set is empty")

// Mine selects the top-k discriminative labels for the positive set versus
// the negative set.
func Mine(pos, neg []*tgraph.Graph, opts Options) (*Query, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	if opts.Score == nil {
		opts.Score = score.LogRatio{}
	}
	if opts.K <= 0 {
		opts.K = 6
	}
	posCount := map[tgraph.Label]int{}
	for _, g := range pos {
		for l := range g.EndpointLabels() {
			posCount[l]++
		}
	}
	negCount := map[tgraph.Label]int{}
	for _, g := range neg {
		for l := range g.EndpointLabels() {
			negCount[l]++
		}
	}
	labels := make([]tgraph.Label, 0, len(posCount))
	scores := make([]float64, 0, len(posCount))
	byLabel := map[tgraph.Label]float64{}
	for l, c := range posCount {
		x := float64(c) / float64(len(pos))
		var y float64
		if len(neg) > 0 {
			y = float64(negCount[l]) / float64(len(neg))
		}
		s := opts.Score.Score(x, y)
		labels = append(labels, l)
		scores = append(scores, s)
		byLabel[l] = s
	}
	in := opts.Interest
	if in == nil {
		in = rank.NewInterest(nil, tgraph.NewDict(), []string{})
	}
	top := in.TopKLabels(labels, scores, opts.K)
	q := &Query{Labels: top}
	for _, l := range top {
		q.Scores = append(q.Scores, byLabel[l])
	}
	return q, nil
}
