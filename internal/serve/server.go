// Package serve implements tgminerd's HTTP/JSON serving tier: a Server
// multiplexes many concurrent ingest producers and query consumers over one
// live engine (tgminer.LiveEngine, sharded multi-writer underneath).
//
//   - POST /v1/events ingests batched events under admission control:
//     every batch is checked against a fresh per-shard pressure reading
//     (engine stats are O(1), so there is no sampling window); crossing a
//     reader-lag or retained-bytes watermark sheds writers with 429 + a
//     decay-derived Retry-After, or fires the evict-on-pressure policy
//     (Watermarks).
//   - POST /v1/query/{temporal,ntemp,nodeset} evaluates the three query
//     families of the paper, streaming matches as NDJSON (a pooled
//     append-based encoder, byte-identical to encoding/json) with
//     per-request deadlines, a server-wide concurrency cap, and a result
//     cache keyed on (canonical query, per-shard generation cut) — a hit is
//     exactly a replay of a prior run at the same cut.
//   - GET /v1/statsz serves the engine's LiveStats (aggregate and per
//     shard) plus the server's own counters.
//
// Queries run lock-free against pinned generation snapshots, so a slow or
// disconnected consumer never stalls ingestion; a disconnect cancels the
// request context, which stops the backtracking search cooperatively and
// releases its reader-accounting slot.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tgminer"
	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// Config configures a Server. Engine is required; zero values elsewhere
// pick the documented defaults.
type Config struct {
	// Engine is the live engine to front. The server assumes sole ownership
	// of its ingest (label interning is serialized through the engine's
	// lock), but in-process readers may keep querying it directly.
	Engine *tgminer.LiveEngine

	// MaxConcurrentQueries caps queries evaluating at once (default
	// 2×GOMAXPROCS). Arrivals beyond the cap wait — bounded by their own
	// deadline — and time out with 503.
	MaxConcurrentQueries int
	// DefaultQueryTimeout bounds a query that sends no timeoutMs (default
	// 30s); MaxQueryTimeout clamps requested deadlines (default 5m).
	DefaultQueryTimeout time.Duration
	MaxQueryTimeout     time.Duration

	// CacheEntries caps the result cache (default 256 entries; negative
	// disables caching). CacheMaxMatches bounds how large an answer is
	// still worth storing (default 65536 matches); larger answers stream
	// normally but are not cached.
	CacheEntries    int
	CacheMaxMatches int

	// MaxBatch caps events per ingest request (default 10000);
	// MaxBodyBytes caps request body size (default 8 MiB).
	MaxBatch     int
	MaxBodyBytes int64

	// Watermarks drive ingest admission control; the zero value disables it.
	Watermarks Watermarks

	// Logger receives server-side operational errors (e.g. a response that
	// failed to encode mid-write). Defaults to log.Default().
	Logger *log.Logger
}

func (c Config) normalize() Config {
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultQueryTimeout <= 0 {
		c.DefaultQueryTimeout = 30 * time.Second
	}
	if c.MaxQueryTimeout <= 0 {
		c.MaxQueryTimeout = 5 * time.Minute
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 256
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.CacheMaxMatches <= 0 {
		c.CacheMaxMatches = 65536
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	c.Watermarks = c.Watermarks.normalize()
	return c
}

// defaultLimit mirrors the engine's SearchOptions.Limit default, so a
// request without an explicit limit canonicalizes to the same cache key as
// one that spells the default out.
const defaultLimit = 100000

// Server is the tgminerd serving tier over one live engine. Create with
// New, mount Handler on an http.Server, and call CancelQueries during
// shutdown to cut in-flight queries loose after the drain grace period.
type Server struct {
	cfg   Config
	eng   *tgminer.LiveEngine
	cache *resultCache
	sem   chan struct{}
	mux   *http.ServeMux
	log   *log.Logger

	baseCtx context.Context // cancelled by CancelQueries: the drain signal
	cancel  context.CancelFunc

	start    time.Time
	inFlight atomic.Int64
	queries  atomic.Int64
	queryErr atomic.Int64

	ingestBatches     atomic.Int64
	ingestEvents      atomic.Int64
	ingestRejected    atomic.Int64
	pressureEvictions atomic.Int64

	// Per-signal shed counters (which watermark tripped), surfaced in
	// /v1/statsz; ingestRejected is their sum.
	shedSoftLag   atomic.Int64
	shedHardLag   atomic.Int64
	shedSoftBytes atomic.Int64
	shedHardBytes atomic.Int64

	// Previous admission pressure reading, the decay baseline for the
	// Retry-After hint (admission.go).
	pressMu     sync.Mutex
	prevPress   pressureSample
	prevPressAt time.Time

	rateMu    sync.Mutex
	rateAt    time.Time
	rateCount int64
	rate      float64
}

// New returns a Server over cfg.Engine. It panics if Engine is nil.
//
// tglint:ignore ctxfirst the server owns its base context; Shutdown cancels it — callers bound request lifetimes per-request, not here
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("serve: Config.Engine is required")
	}
	cfg = cfg.normalize()
	s := &Server{
		cfg:   cfg,
		eng:   cfg.Engine,
		cache: newResultCache(cfg.CacheEntries),
		sem:   make(chan struct{}, cfg.MaxConcurrentQueries),
		mux:   http.NewServeMux(),
		log:   cfg.Logger,
		start: time.Now(),
	}
	if s.log == nil {
		s.log = log.Default()
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.rateAt = s.start
	s.mux.HandleFunc("POST /v1/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/query/temporal", s.handleQuery("temporal"))
	s.mux.HandleFunc("POST /v1/query/ntemp", s.handleQuery("ntemp"))
	s.mux.HandleFunc("POST /v1/query/nodeset", s.handleQuery("nodeset"))
	s.mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	return s
}

// Engine returns the served live engine.
func (s *Server) Engine() *tgminer.LiveEngine { return s.eng }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CancelQueries cancels every in-flight query cooperatively: each returns
// its partial matches plus a terminal error line, the library contract for
// cancellation. tgminerd calls this when the drain grace deadline expires
// so http.Server.Shutdown can finish.
func (s *Server) CancelQueries() { s.cancel() }

// --- ingest ---------------------------------------------------------------

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	// Strict decoding: an unknown field is a 400 naming the offender, not a
	// silently dropped option.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, IngestResponse{Error: "bad request: " + err.Error()})
		return
	}
	if len(req.Events) == 0 {
		s.writeJSON(w, http.StatusBadRequest, IngestResponse{Error: "bad request: empty events batch"})
		return
	}
	if len(req.Events) > s.cfg.MaxBatch {
		s.writeJSON(w, http.StatusBadRequest, IngestResponse{
			Error: fmt.Sprintf("bad request: batch of %d exceeds the %d-event cap", len(req.Events), s.cfg.MaxBatch)})
		return
	}
	s.ingestBatches.Add(1)
	evicted, retry, err := s.admit()
	if err != nil {
		s.ingestRejected.Add(1)
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retry+time.Second-1)/time.Second), 10))
		s.writeJSON(w, http.StatusTooManyRequests, IngestResponse{Error: err.Error(), RetryAfterMs: retry.Milliseconds()})
		return
	}
	resp := IngestResponse{EvictedBefore: evicted}
	for _, ev := range req.Events {
		// Label the endpoints before the edge lands: Node/NodeWithLabel is
		// idempotent per entity name, and Append would otherwise intern the
		// entity name as its own label.
		if ev.SrcLabel != "" {
			s.eng.NodeWithLabel(ev.Src, ev.SrcLabel)
		}
		if ev.DstLabel != "" {
			s.eng.NodeWithLabel(ev.Dst, ev.DstLabel)
		}
		if err := s.eng.Append(ev.Src, ev.Dst, ev.Time); err != nil {
			// The accepted prefix is already durable; report it so the
			// producer resumes after the last accepted event.
			resp.Error = err.Error()
			resp.LastTime = s.eng.LastTime()
			s.writeJSON(w, http.StatusBadRequest, resp)
			return
		}
		resp.Appended++
	}
	s.ingestEvents.Add(int64(len(req.Events)))
	resp.LastTime = s.eng.LastTime()
	s.writeJSON(w, http.StatusOK, resp)
}

// --- queries --------------------------------------------------------------

// runner evaluates one prepared query, pushing matches through emit in
// discovery order until done or emit returns false (consumer gone). It
// reports the exact Truncated flag and any cancellation error.
type runner func(ctx context.Context, emit func(tgminer.Match) bool) (truncated bool, err error)

// canonQuery is the canonical request serialization the cache keys on:
// normalized bounds, nodeset labels sorted (multiset semantics), field
// order fixed by the struct.
type canonQuery struct {
	Family string      `json:"f"`
	Nodes  []string    `json:"n,omitempty"`
	Edges  []QueryEdge `json:"e,omitempty"`
	Labels []string    `json:"l,omitempty"`
	Hops   []HopSpec   `json:"h,omitempty"`
	Window int64       `json:"w"`
	Limit  int         `json:"k"`
}

// buildRunner validates a request and compiles it into a runner plus its
// canonical cache key. A query naming a label the engine has never seen
// compiles to the empty runner: such a label cannot appear on any edge, so
// the answer is exactly zero matches (and is cacheable like any other).
func (s *Server) buildRunner(family string, req *QueryRequest, opts tgminer.SearchOptions) (runner, string, error) {
	canon := canonQuery{Family: family, Window: opts.Window, Limit: opts.Limit}
	empty := func(context.Context, func(tgminer.Match) bool) (bool, error) { return false, nil }
	var run runner
	switch family {
	case "temporal", "ntemp":
		if len(req.Nodes) == 0 || len(req.Edges) == 0 {
			return nil, "", fmt.Errorf("%s query needs nodes and edges", family)
		}
		if len(req.Hops) > 0 {
			if family != "temporal" {
				return nil, "", errors.New("hops constraints apply only to temporal queries")
			}
			hops := make([]tgminer.HopConstraint, len(req.Hops))
			for i, h := range req.Hops {
				hops[i] = tgminer.HopConstraint{
					MinGap: h.MinGap, MaxGap: h.MaxGap,
					After: h.After, Within: h.Within,
					Optional: h.Optional, MinRepeat: h.MinRepeat, MaxRepeat: h.MaxRepeat,
				}
			}
			opts.Constraints = &tgminer.TemporalConstraints{Hops: hops}
			if err := opts.Constraints.Validate(len(req.Edges)); err != nil {
				return nil, "", err
			}
			// Constrained requests key separately from unconstrained ones:
			// the hops fold into the canonical query, so the two variants can
			// never alias each other's cache entries.
			canon.Hops = req.Hops
		}
		for i, e := range req.Edges {
			if e.Src < 0 || e.Src >= len(req.Nodes) || e.Dst < 0 || e.Dst >= len(req.Nodes) {
				return nil, "", fmt.Errorf("edge %d (%d->%d) references unknown node (have %d)", i, e.Src, e.Dst, len(req.Nodes))
			}
		}
		canon.Nodes, canon.Edges = req.Nodes, req.Edges
		labels := make([]tgraph.Label, len(req.Nodes))
		known := true
		for i, name := range req.Nodes {
			var ok bool
			if labels[i], ok = s.eng.LookupLabel(name); !ok {
				known = false
				break
			}
		}
		switch {
		case !known:
			run = empty
		case family == "temporal":
			edges := make([]tgraph.PEdge, len(req.Edges))
			for i, e := range req.Edges {
				edges[i] = tgraph.PEdge{Src: tgraph.NodeID(e.Src), Dst: tgraph.NodeID(e.Dst)}
			}
			p, err := tgraph.NewPattern(labels, edges)
			if err != nil {
				return nil, "", err
			}
			run = func(ctx context.Context, emit func(tgminer.Match) bool) (bool, error) {
				for m, err := range s.eng.Stream(ctx, p, opts) {
					switch {
					case errors.Is(err, tgminer.ErrTruncated):
						return true, nil
					case err != nil:
						return false, err
					case !emit(m):
						return false, nil
					}
				}
				return false, nil
			}
		default: // ntemp: collapse parallel edges, order-free
			seen := make(map[QueryEdge]bool, len(req.Edges))
			p := &gspan.Pattern{Labels: labels}
			for _, e := range req.Edges {
				if !seen[e] {
					seen[e] = true
					p.E = append(p.E, gspan.Edge{Src: tgraph.NodeID(e.Src), Dst: tgraph.NodeID(e.Dst)})
				}
			}
			run = func(ctx context.Context, emit func(tgminer.Match) bool) (bool, error) {
				res, err := s.eng.FindNonTemporalContext(ctx, p, opts)
				if err != nil {
					return false, err
				}
				for _, m := range res.Matches {
					if !emit(m) {
						return false, nil
					}
				}
				return res.Truncated, nil
			}
		}
	case "nodeset":
		if len(req.Labels) == 0 {
			return nil, "", errors.New("nodeset query needs labels")
		}
		if len(req.Hops) > 0 {
			return nil, "", errors.New("hops constraints apply only to temporal queries")
		}
		canon.Labels = append([]string(nil), req.Labels...)
		sort.Strings(canon.Labels)
		labels := make([]tgraph.Label, len(req.Labels))
		known := true
		for i, name := range req.Labels {
			var ok bool
			if labels[i], ok = s.eng.LookupLabel(name); !ok {
				known = false
				break
			}
		}
		if !known {
			run = empty
		} else {
			lq := &tgminer.LabelSetQuery{Labels: labels}
			run = func(ctx context.Context, emit func(tgminer.Match) bool) (bool, error) {
				res, err := s.eng.FindLabelSetContext(ctx, lq, opts)
				if err != nil {
					return false, err
				}
				for _, m := range res.Matches {
					if !emit(m) {
						return false, nil
					}
				}
				return res.Truncated, nil
			}
		}
	default:
		return nil, "", fmt.Errorf("unknown query family %q", family)
	}
	key, err := json.Marshal(canon)
	if err != nil {
		return nil, "", err
	}
	return run, string(key), nil
}

func (s *Server) handleQuery(family string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		// Strict decoding: a typo'd constraint field ("maxGapp") must be a
		// 400 naming the offender, never a silently unconstrained query.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeJSON(w, http.StatusBadRequest, QueryDone{Error: "bad request: " + err.Error()})
			return
		}
		opts := tgminer.SearchOptions{Window: req.Window, Limit: req.Limit}
		if opts.Limit <= 0 {
			opts.Limit = defaultLimit
		}
		run, canon, err := s.buildRunner(family, &req, opts)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, QueryDone{Error: "bad request: " + err.Error()})
			return
		}
		timeout := s.cfg.DefaultQueryTimeout
		if req.TimeoutMs > 0 {
			timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		}
		if timeout > s.cfg.MaxQueryTimeout {
			timeout = s.cfg.MaxQueryTimeout
		}
		s.queries.Add(1)
		// The request deadline also bounds time spent waiting for a query
		// slot, and the server drain signal cuts both short.
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		defer context.AfterFunc(s.baseCtx, cancel)()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			s.queryErr.Add(1)
			s.writeJSON(w, http.StatusServiceUnavailable, QueryDone{Error: "query admission timed out: " + ctx.Err().Error()})
			return
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		key := cacheKey{family: family, query: canon, cut: s.eng.GenerationCut()}
		useCache := !req.NoCache && s.cfg.CacheEntries > 0
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Matches stream through the pooled append-based encoder (ndjson.go):
		// one buffer serves every line of the request, so the per-match cost
		// is zero allocations (BenchmarkServeStream).
		lw := newLineWriter(w)
		defer lw.release()
		if useCache {
			if matches, truncated, ok := s.cache.get(key); ok {
				for _, m := range matches {
					if lw.writeMatch(MatchRecord{Start: m.Start, End: m.End}) != nil {
						return
					}
				}
				lw.writeDone(QueryDone{Done: true, Matches: len(matches), Truncated: truncated, Cached: true, Cut: key.cut})
				return
			}
		}

		n := 0
		clientGone := false
		collect := useCache
		var collected []tgminer.Match
		truncated, err := run(ctx, func(m tgminer.Match) bool {
			if lw.writeMatch(MatchRecord{Start: m.Start, End: m.End}) != nil {
				// Client gone: cancel the search promptly so its reader slot
				// and pinned generation release instead of running to
				// completion for nobody.
				clientGone = true
				cancel()
				return false
			}
			n++
			if collect {
				if len(collected) >= s.cfg.CacheMaxMatches {
					collect, collected = false, nil
				} else {
					collected = append(collected, m)
				}
			}
			return true
		})
		switch {
		case clientGone:
			return
		case err != nil:
			s.queryErr.Add(1)
			lw.writeDone(QueryDone{Matches: n, Error: err.Error()})
			return
		}
		done := QueryDone{Done: true, Matches: n, Truncated: truncated}
		// Store (and report the cut) only when the cut did not move during
		// evaluation: per-shard key monotonicity then proves the query's
		// pinned snapshot WAS this cut, making any later hit an exact replay.
		if cut2 := s.eng.GenerationCut(); cut2 == key.cut {
			done.Cut = key.cut
			if collect {
				s.cache.put(key, collected, truncated)
			}
		}
		lw.writeDone(done)
	}
}

// --- statsz ---------------------------------------------------------------

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := StatszResponse{
		Stats:  s.eng.Stats(),
		Shards: s.eng.ShardStats(),
		Cut:    s.eng.GenerationCut(),
		Server: ServerStats{
			InFlightQueries:   s.inFlight.Load(),
			Queries:           s.queries.Load(),
			QueryErrors:       s.queryErr.Load(),
			CacheHits:         s.cache.hits.Load(),
			CacheMisses:       s.cache.misses.Load(),
			CacheEntries:      s.cache.len(),
			IngestBatches:     s.ingestBatches.Load(),
			IngestEvents:      s.ingestEvents.Load(),
			IngestRejected:    s.ingestRejected.Load(),
			ShedSoftLag:       s.shedSoftLag.Load(),
			ShedHardLag:       s.shedHardLag.Load(),
			ShedSoftBytes:     s.shedSoftBytes.Load(),
			ShedHardBytes:     s.shedHardBytes.Load(),
			PressureEvictions: s.pressureEvictions.Load(),
			IngestRatePerSec:  s.ingestRate(),
			UptimeSec:         time.Since(s.start).Seconds(),
		},
	}
	if lookups := resp.Server.CacheHits + resp.Server.CacheMisses; lookups > 0 {
		resp.Server.CacheHitRate = float64(resp.Server.CacheHits) / float64(lookups)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ingestRate reports events/sec over the window since the previous sample,
// refreshed at most every 200ms so frequent scrapes do not degenerate to
// rate-over-nothing.
func (s *Server) ingestRate() float64 {
	s.rateMu.Lock()
	defer s.rateMu.Unlock()
	now := time.Now()
	if el := now.Sub(s.rateAt); el >= 200*time.Millisecond {
		count := s.ingestEvents.Load()
		s.rate = float64(count-s.rateCount) / el.Seconds()
		s.rateAt, s.rateCount = now, count
	}
	return s.rate
}

// --- helpers --------------------------------------------------------------

// writeJSON writes one complete JSON response body. An encode error here is
// almost always the client disconnecting mid-write; the status line is
// already gone, so the best the server can do is record it.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Printf("serve: writing %T response: %v", v, err)
	}
}
