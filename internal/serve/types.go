package serve

// Wire types of the tgminerd HTTP/JSON protocol. Ingest is plain JSON
// request/response; queries respond as an NDJSON stream of MatchRecord
// lines closed by one QueryDone line, so a consumer can act on matches as
// the backtracking search finds them instead of waiting for the batch.

import "tgminer"

// Event is one ingest record: a directed interaction src -> dst at Time.
// Entity names double as node labels unless SrcLabel/DstLabel override them
// (several entities may share a label, as in the paper's process/file/socket
// typing). Timestamps must be strictly increasing per ingest shard and
// globally unique across producers — the engine's clock contract.
type Event struct {
	Time     int64  `json:"time"`
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	SrcLabel string `json:"srcLabel,omitempty"`
	DstLabel string `json:"dstLabel,omitempty"`
}

// IngestRequest is the body of POST /v1/events.
type IngestRequest struct {
	Events []Event `json:"events"`
}

// IngestResponse reports an ingest batch's outcome. Appended counts events
// durably accepted before any error: a 4xx/429 response with Appended > 0
// means a prefix of the batch landed (the engine has no batch rollback), so
// producers must resume after the last accepted event, not replay the batch.
type IngestResponse struct {
	Appended      int    `json:"appended"`
	LastTime      int64  `json:"lastTime"`
	EvictedBefore *int64 `json:"evictedBefore,omitempty"` // set when the hard-pressure evict policy fired
	Error         string `json:"error,omitempty"`
	RetryAfterMs  int64  `json:"retryAfterMs,omitempty"` // set on 429 responses, mirroring the Retry-After header
}

// QueryEdge is one pattern edge by node index.
type QueryEdge struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// HopSpec is one hop's temporal constraints on a /v1/query/temporal
// request, mirroring tgminer.HopConstraint: hops[i] constrains pattern edge
// i. All fields are optional; zero means unconstrained. minGap/maxGap bound
// the gap to the previous matched hop; after/within bound the hop relative
// to the match start; optional allows zero occurrences; minRepeat/maxRepeat
// allow bounded repetition of the hop. The server validates the set up
// front and rejects contradictions with 400.
type HopSpec struct {
	MinGap    int64 `json:"minGap,omitempty"`
	MaxGap    int64 `json:"maxGap,omitempty"`
	After     int64 `json:"after,omitempty"`
	Within    int64 `json:"within,omitempty"`
	Optional  bool  `json:"optional,omitempty"`
	MinRepeat int   `json:"minRepeat,omitempty"`
	MaxRepeat int   `json:"maxRepeat,omitempty"`
}

// QueryRequest is the body of POST /v1/query/{temporal,ntemp,nodeset}.
// Temporal and ntemp queries give Nodes (label names) plus Edges (node
// indexes; edge order is the temporal order for /temporal and ignored by
// /ntemp); nodeset queries give Labels (a label multiset). Hops attaches
// per-hop temporal constraints (temporal family only; other families reject
// it with 400). Window, Limit, and TimeoutMs bound the run (zero picks the
// server defaults); NoCache bypasses the result cache for this request
// only. Unknown fields are rejected with 400 naming the offender, so a
// typo'd constraint field ("maxGapp") can never silently match
// unconstrained.
type QueryRequest struct {
	Nodes  []string    `json:"nodes,omitempty"`
	Edges  []QueryEdge `json:"edges,omitempty"`
	Labels []string    `json:"labels,omitempty"`
	Hops   []HopSpec   `json:"hops,omitempty"`

	Window    int64 `json:"window,omitempty"`
	Limit     int   `json:"limit,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	NoCache   bool  `json:"noCache,omitempty"`
}

// MatchRecord is one streamed match line.
type MatchRecord struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// QueryDone is the terminal NDJSON line of a query stream. Done is true on
// a complete answer (Truncated then has the engine's exact semantics: a
// further distinct match exists beyond Limit); a deadline, cancellation, or
// server drain instead sets Error, and Matches counts the lines already
// streamed (partial results, the same contract as the context-aware library
// calls). Cached reports a result-cache hit — by construction an exact
// replay of a prior run at the same per-shard generation cut. Cut is set
// only when the answer verifiably ran at one cut (the cut did not move
// during evaluation); a cached answer always carries its cut.
type QueryDone struct {
	Done      bool   `json:"done"`
	Matches   int    `json:"matches"`
	Truncated bool   `json:"truncated"`
	Cached    bool   `json:"cached"`
	Cut       string `json:"cut,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ServerStats are tgminerd's own counters, served by /v1/statsz next to the
// engine's LiveStats.
type ServerStats struct {
	InFlightQueries   int64   `json:"inFlightQueries"`
	Queries           int64   `json:"queries"`
	QueryErrors       int64   `json:"queryErrors"`
	CacheHits         int64   `json:"cacheHits"`
	CacheMisses       int64   `json:"cacheMisses"`
	CacheHitRate      float64 `json:"cacheHitRate"` // hits / (hits + misses); 0 before any lookup
	CacheEntries      int     `json:"cacheEntries"`
	IngestBatches     int64   `json:"ingestBatches"`
	IngestEvents      int64   `json:"ingestEvents"`
	IngestRejected    int64   `json:"ingestRejected"`    // batches shed with 429 by admission control
	ShedSoftLag       int64   `json:"shedSoftLag"`       // of which tripped the soft reader-lag watermark
	ShedHardLag       int64   `json:"shedHardLag"`       // ... the hard reader-lag watermark
	ShedSoftBytes     int64   `json:"shedSoftBytes"`     // ... the soft retained-bytes watermark
	ShedHardBytes     int64   `json:"shedHardBytes"`     // ... the hard retained-bytes watermark
	PressureEvictions int64   `json:"pressureEvictions"` // hard-watermark evict-on-pressure firings
	IngestRatePerSec  float64 `json:"ingestRatePerSec"`
	UptimeSec         float64 `json:"uptimeSec"`
}

// StatszResponse is the body of GET /v1/statsz: the engine's aggregated
// LiveStats, the per-shard breakdown, the current generation cut, and the
// server counters. LiveStats' JSON field names are the stable representation
// shared with examples/monitor.
type StatszResponse struct {
	Stats  tgminer.LiveStats   `json:"stats"`
	Shards []tgminer.LiveStats `json:"shards"`
	Cut    string              `json:"cut"`
	Server ServerStats         `json:"server"`
}
