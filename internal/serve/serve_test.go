package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tgminer"
	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// sessions builds n three-event sessions of the paper's flavor: a process
// touches a file which reaches a socket, plus one unrelated noise edge.
// Session k occupies times [10k+1, 10k+3], so every temporal/ntemp query
// over (proc -> file -> sock) has exactly one match per session, and the
// per-shard clock contract (strictly increasing, globally unique) holds for
// any shard count.
func sessions(from, n int) []Event {
	evs := make([]Event, 0, 3*n)
	for k := from; k < from+n; k++ {
		t0 := int64(10 * k)
		evs = append(evs,
			Event{Time: t0 + 1, Src: fmt.Sprintf("proc#%d", k), Dst: fmt.Sprintf("file#%d", k), SrcLabel: "proc", DstLabel: "file"},
			Event{Time: t0 + 2, Src: fmt.Sprintf("file#%d", k), Dst: fmt.Sprintf("sock#%d", k), SrcLabel: "file", DstLabel: "sock"},
			Event{Time: t0 + 3, Src: fmt.Sprintf("noiseA#%d", k), Dst: fmt.Sprintf("noiseB#%d", k), SrcLabel: "noiseA", DstLabel: "noiseB"},
		)
	}
	return evs
}

func newTestServer(t *testing.T, shards int, wm Watermarks) (*Server, *httptest.Server, *tgminer.LiveEngine) {
	t.Helper()
	eng := tgminer.NewLiveEngine(nil, tgminer.LiveOptions{Shards: shards})
	srv := New(Config{Engine: eng, Watermarks: wm})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func ingest(t *testing.T, base string, evs []Event) IngestResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/events", IngestRequest{Events: evs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Appended != len(evs) {
		t.Fatalf("ingest: appended %d of %d: %s", ir.Appended, len(evs), body)
	}
	return ir
}

// ndjson renders values exactly as the server's NDJSON writer does, for
// byte-identical comparison.
func ndjson(t *testing.T, vals ...any) string {
	t.Helper()
	var b strings.Builder
	for _, v := range vals {
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}

// expectedBody renders an in-process SearchResult as the NDJSON body the
// server must produce for a complete uncached run at cut.
func expectedBody(t *testing.T, res tgminer.SearchResult, cut string) string {
	t.Helper()
	vals := make([]any, 0, len(res.Matches)+1)
	for _, m := range res.Matches {
		vals = append(vals, MatchRecord{Start: m.Start, End: m.End})
	}
	vals = append(vals, QueryDone{Done: true, Matches: len(res.Matches), Truncated: res.Truncated, Cut: cut})
	return ndjson(t, vals...)
}

func mustLabels(t *testing.T, eng *tgminer.LiveEngine, names ...string) []tgraph.Label {
	t.Helper()
	out := make([]tgraph.Label, len(names))
	for i, n := range names {
		var ok bool
		if out[i], ok = eng.LookupLabel(n); !ok {
			t.Fatalf("label %q not interned", n)
		}
	}
	return out
}

// TestServeDifferential is the acceptance check: for all three query
// families, the HTTP response — streamed order, Truncated accounting, and
// the terminal record — is byte-identical to the in-process engine answer
// at the same generation cut.
func TestServeDifferential(t *testing.T) {
	_, ts, eng := newTestServer(t, 3, Watermarks{})
	const n = 40
	evs := sessions(0, n)
	for i := 0; i < len(evs); i += 25 {
		end := min(i+25, len(evs))
		ingest(t, ts.URL, evs[i:end])
	}
	if eng.NumEdges() != len(evs) {
		t.Fatalf("engine has %d edges, want %d", eng.NumEdges(), len(evs))
	}
	cut := eng.GenerationCut()
	ctx := context.Background()
	labels := mustLabels(t, eng, "proc", "file", "sock")
	pedges := []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	tp, err := tgraph.NewPattern(labels, pedges)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, path string
		req        QueryRequest
		want       func() (tgminer.SearchResult, error)
	}{
		{
			name: "temporal", path: "/v1/query/temporal",
			req: QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}}, Window: 5},
			want: func() (tgminer.SearchResult, error) {
				return eng.FindTemporalContext(ctx, tp, tgminer.SearchOptions{Window: 5})
			},
		},
		{
			// Limit below the match count exercises exact Truncated accounting.
			name: "temporal-truncated", path: "/v1/query/temporal",
			req: QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}}, Window: 5, Limit: 7},
			want: func() (tgminer.SearchResult, error) {
				return eng.FindTemporalContext(ctx, tp, tgminer.SearchOptions{Window: 5, Limit: 7})
			},
		},
		{
			// Parallel edge in the request exercises the ntemp collapse.
			name: "ntemp", path: "/v1/query/ntemp",
			req: QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}, {0, 1}}, Window: 5},
			want: func() (tgminer.SearchResult, error) {
				np := &gspan.Pattern{Labels: labels, E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
				return eng.FindNonTemporalContext(ctx, np, tgminer.SearchOptions{Window: 5})
			},
		},
		{
			name: "nodeset", path: "/v1/query/nodeset",
			req: QueryRequest{Labels: []string{"sock", "proc", "file"}, Window: 5},
			want: func() (tgminer.SearchResult, error) {
				lq := &tgminer.LabelSetQuery{Labels: mustLabels(t, eng, "sock", "proc", "file")}
				return eng.FindLabelSetContext(ctx, lq, tgminer.SearchOptions{Window: 5})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.want()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) == 0 {
				t.Fatal("test corpus produced no matches — the comparison would be vacuous")
			}
			req := tc.req
			req.NoCache = true
			resp, body := postJSON(t, ts.URL+tc.path, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if want := expectedBody(t, res, cut); string(body) != want {
				t.Fatalf("HTTP body differs from in-process answer at cut %s\n got: %s\nwant: %s", cut, body, want)
			}
		})
	}
}

// TestServeCacheReplay pins the cache-consistency contract: a hit is an
// exact replay — same matches, same order, same Truncated flag, same cut —
// with only the Cached marker flipped; and any append changes the cut, so
// the next run is a miss with the fresh answer.
func TestServeCacheReplay(t *testing.T) {
	srv, ts, eng := newTestServer(t, 2, Watermarks{})
	ingest(t, ts.URL, sessions(0, 12))
	req := QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}}, Window: 5}

	run := func() (string, QueryDone) {
		resp, body := postJSON(t, ts.URL+"/v1/query/temporal", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		var done QueryDone
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
			t.Fatal(err)
		}
		return strings.Join(lines[:len(lines)-1], "\n"), done
	}

	matches1, done1 := run()
	if !done1.Done || done1.Cached || done1.Cut == "" {
		t.Fatalf("first run should be a complete uncached answer with a cut: %+v", done1)
	}
	if done1.Matches != 12 {
		t.Fatalf("expected one match per session, got %d", done1.Matches)
	}
	matches2, done2 := run()
	if !done2.Cached {
		t.Fatalf("second identical run should hit the cache: %+v", done2)
	}
	if matches2 != matches1 || done2.Matches != done1.Matches || done2.Truncated != done1.Truncated || done2.Cut != done1.Cut {
		t.Fatalf("cache hit is not an exact replay:\n first %+v %q\nsecond %+v %q", done1, matches1, done2, matches2)
	}
	if h := srv.cache.hits.Load(); h != 1 {
		t.Fatalf("cache hits = %d, want 1", h)
	}

	// One more session moves every written shard's cut: same request must
	// miss and see the new match.
	ingest(t, ts.URL, sessions(12, 1))
	matches3, done3 := run()
	if done3.Cached {
		t.Fatal("cache hit across an append would serve a stale answer")
	}
	if done3.Matches != 13 {
		t.Fatalf("post-append run found %d matches, want 13", done3.Matches)
	}
	if done3.Cut == done1.Cut {
		t.Fatal("generation cut did not move across an append")
	}
	if !strings.HasPrefix(matches3, matches1) {
		t.Fatal("replay order changed for the common prefix")
	}

	// Unknown labels short-circuit to a complete, cacheable empty answer.
	resp, body := postJSON(t, ts.URL+"/v1/query/temporal", QueryRequest{Nodes: []string{"proc", "no-such-label"}, Edges: []QueryEdge{{0, 1}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown label: status %d: %s", resp.StatusCode, body)
	}
	if want := ndjson(t, QueryDone{Done: true, Cut: eng.GenerationCut()}); string(body) != want {
		t.Fatalf("unknown label body = %s, want %s", body, want)
	}

	// Malformed requests are rejected before touching the engine.
	for _, bad := range []QueryRequest{
		{},                        // no pattern at all
		{Nodes: []string{"proc"}}, // no edges
		{Nodes: []string{"proc"}, Edges: []QueryEdge{{0, 3}}}, // edge out of range
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/query/temporal", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServeBackpressure is the acceptance check: a pinned slow reader
// drives OldestReaderLag past the soft watermark, new ingest observes 429s
// with a Retry-After hint, queries keep answering throughout, and ingest
// recovers once the reader finishes. Admission reads exact per-batch
// pressure (no sampling interval), so the shed decisions below are
// deterministic — no knob or sleep makes the stats "fresh enough".
func TestServeBackpressure(t *testing.T) {
	_, ts, eng := newTestServer(t, 1, Watermarks{SoftLagEdges: 4})
	ingest(t, ts.URL, sessions(0, 10))

	// Pin a reader: an in-process stream paused after its first match holds
	// its generation snapshot (exactly the "slow consumer" the watermark
	// protects against).
	p, err := tgraph.NewPattern(mustLabels(t, eng, "proc", "file"), []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	paused, resume, done := make(chan struct{}), make(chan struct{}), make(chan struct{})
	go func() {
		defer close(done)
		first := true
		for _, serr := range eng.Stream(context.Background(), p, tgminer.SearchOptions{}) {
			if serr != nil {
				return
			}
			if first {
				first = false
				close(paused)
				<-resume
			}
		}
	}()
	<-paused

	// The batch that grows the lag past the watermark is itself admitted
	// (lag was still low when it was checked)...
	ingest(t, ts.URL, sessions(10, 2))
	// ...but the next one must be shed.
	resp, body := postJSON(t, ts.URL+"/v1/events", IngestRequest{Events: sessions(12, 1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest under reader lag: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir.Error, "backpressure") || ir.RetryAfterMs <= 0 {
		t.Fatalf("unexpected 429 body: %s", body)
	}

	// Queries are not subject to ingest admission control: they keep
	// answering while writers are shed.
	qresp, qbody := postJSON(t, ts.URL+"/v1/query/nodeset", QueryRequest{Labels: []string{"proc", "file", "sock"}, Window: 5, NoCache: true})
	if qresp.StatusCode != http.StatusOK || !strings.Contains(string(qbody), `"done":true`) {
		t.Fatalf("query under backpressure: status %d: %s", qresp.StatusCode, qbody)
	}

	// Releasing the reader clears the lag; ingest recovers.
	close(resume)
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL+"/v1/events", IngestRequest{Events: sessions(12, 1)})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest did not recover after the reader finished: status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeEvictOnPressure checks the hard-watermark evict policy: crossing
// HardRetainedBytes with HardPolicy "evict" drops the oldest slice of the
// live window, admits the batch, and reports both the eviction cut and the
// pressureEvictions counter.
func TestServeEvictOnPressure(t *testing.T) {
	eng := tgminer.NewLiveEngine(nil, tgminer.LiveOptions{Shards: 1})
	// Pre-populate past the (deliberately tiny) byte watermark before the
	// server exists, so the very first served batch sees hard pressure.
	for i := 0; i < 200; i++ {
		if err := eng.Append(fmt.Sprintf("s%d", i), "d", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(Config{Engine: eng, Watermarks: Watermarks{
		HardRetainedBytes: 1, HardPolicy: "evict", EvictFraction: 0.5,
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/events", IngestRequest{Events: []Event{{Time: 1000, Src: "x", Dst: "y"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict policy should admit the batch: status %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Appended != 1 || ir.EvictedBefore == nil {
		t.Fatalf("expected an admitted batch with an eviction cut: %s", body)
	}
	// The pre-populated window was [1, 200]: half of it must be gone.
	if *ir.EvictedBefore <= 1 || *ir.EvictedBefore > 200 {
		t.Fatalf("eviction cut %d outside the live window", *ir.EvictedBefore)
	}
	if st := eng.Stats(); st.FirstTime < *ir.EvictedBefore {
		t.Fatalf("FirstTime %d still before the eviction cut %d", st.FirstTime, *ir.EvictedBefore)
	}

	var stz StatszResponse
	r, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	if stz.Server.PressureEvictions != 1 {
		t.Fatalf("pressureEvictions = %d, want 1", stz.Server.PressureEvictions)
	}
	if stz.Cut == "" || len(stz.Shards) != 1 || stz.Stats.LiveEdges != stz.Shards[0].LiveEdges {
		t.Fatalf("statsz inconsistent: %+v", stz)
	}
}

// TestServeReaderAbandonment is the satellite check: a client that
// disconnects mid-stream releases its reader-table slot and pinned
// generation — ActiveReaders returns to 0, OldestReaderLag stops growing,
// and no goroutine is left behind.
func TestServeReaderAbandonment(t *testing.T) {
	_, ts, eng := newTestServer(t, 2, Watermarks{})
	const n = 8000
	// Populate in-process (bulk HTTP ingest is exercised elsewhere).
	for _, ev := range sessions(0, n) {
		eng.NodeWithLabel(ev.Src, ev.SrcLabel)
		eng.NodeWithLabel(ev.Dst, ev.DstLabel)
		if err := eng.Append(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	reqBody, _ := json.Marshal(QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}}, Window: 5, NoCache: true})
	req, err := http.NewRequestWithContext(qctx, "POST", ts.URL+"/v1/query/temporal", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one streamed match, then walk away: cancelling the
	// request context closes the connection under the server mid-stream.
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, `"start"`) {
		t.Fatalf("first streamed line: %q, %v", line, err)
	}
	qcancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().ActiveReaders != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned stream still pins a reader slot: %+v", eng.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// With the slot released, new appends must not accrue reader lag.
	for _, ev := range sessions(n, 2) {
		if err := eng.Append(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	if lag := eng.Stats().OldestReaderLag; lag != 0 {
		t.Fatalf("OldestReaderLag = %d after the reader was abandoned, want 0", lag)
	}
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// gapSessions builds two-hop sessions whose second hop lags by gap ticks:
// proc#k -> file#k at base+1, file#k -> sock#k at base+1+gap. Sessions are
// spaced far apart so gap guards, not windows, decide what matches.
func gapSessions(from, n int, gap int64) []Event {
	evs := make([]Event, 0, 2*n)
	for k := from; k < from+n; k++ {
		base := int64(100 * k)
		evs = append(evs,
			Event{Time: base + 1, Src: fmt.Sprintf("proc#%d", k), Dst: fmt.Sprintf("file#%d", k), SrcLabel: "proc", DstLabel: "file"},
			Event{Time: base + 1 + gap, Src: fmt.Sprintf("file#%d", k), Dst: fmt.Sprintf("sock#%d", k), SrcLabel: "file", DstLabel: "sock"},
		)
	}
	return evs
}

// TestServeConstrainedDifferential extends the HTTP differential to
// constrained queries: a hops-carrying request must stream byte-identically
// to the in-process engine under the same TemporalConstraints at the same
// cut — and the constraint must demonstrably prune (the unconstrained
// answer is strictly larger).
func TestServeConstrainedDifferential(t *testing.T) {
	_, ts, eng := newTestServer(t, 2, Watermarks{})
	// Even sessions have a tight second hop (gap 1), odd ones a slow hop
	// (gap 50); the paper's "within 30s" rule admits only the tight half.
	var evs []Event
	for k := 0; k < 10; k++ {
		gap := int64(1)
		if k%2 == 1 {
			gap = 50
		}
		evs = append(evs, gapSessions(k, 1, gap)...)
	}
	ingest(t, ts.URL, evs)
	cut := eng.GenerationCut()
	ctx := context.Background()
	tp, err := tgraph.NewPattern(mustLabels(t, eng, "proc", "file", "sock"),
		[]tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cons := &tgminer.TemporalConstraints{Hops: []tgminer.HopConstraint{{}, {MaxGap: 30}}}
	res, err := eng.FindTemporalContext(ctx, tp, tgminer.SearchOptions{Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("constrained in-process answer has %d matches, want the 5 tight sessions", len(res.Matches))
	}
	unres, err := eng.FindTemporalContext(ctx, tp, tgminer.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unres.Matches) != 10 {
		t.Fatalf("unconstrained answer has %d matches, want 10 — the guard comparison would be vacuous", len(unres.Matches))
	}

	req := QueryRequest{
		Nodes:   []string{"proc", "file", "sock"},
		Edges:   []QueryEdge{{0, 1}, {1, 2}},
		Hops:    []HopSpec{{}, {MaxGap: 30}},
		NoCache: true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/query/temporal", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := expectedBody(t, res, cut); string(body) != want {
		t.Fatalf("constrained HTTP body differs from in-process answer\n got: %s\nwant: %s", body, want)
	}
}

// TestServeConstrainedCacheDistinct pins that a constrained query and its
// unconstrained twin occupy distinct cache entries: the hops fold into the
// canonical key, so neither run can replay the other's answer.
func TestServeConstrainedCacheDistinct(t *testing.T) {
	srv, ts, _ := newTestServer(t, 2, Watermarks{})
	var evs []Event
	for k := 0; k < 6; k++ {
		gap := int64(1)
		if k%2 == 1 {
			gap = 50
		}
		evs = append(evs, gapSessions(k, 1, gap)...)
	}
	ingest(t, ts.URL, evs)

	run := func(hops []HopSpec) QueryDone {
		req := QueryRequest{Nodes: []string{"proc", "file", "sock"}, Edges: []QueryEdge{{0, 1}, {1, 2}}, Hops: hops}
		resp, body := postJSON(t, ts.URL+"/v1/query/temporal", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		var done QueryDone
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
			t.Fatal(err)
		}
		return done
	}
	hops := []HopSpec{{}, {MaxGap: 30}}

	plain1 := run(nil)
	if plain1.Cached || plain1.Matches != 6 {
		t.Fatalf("unconstrained first run: %+v, want 6 uncached matches", plain1)
	}
	cons1 := run(hops)
	if cons1.Cached {
		t.Fatalf("constrained first run hit the unconstrained cache entry: %+v", cons1)
	}
	if cons1.Matches != 3 {
		t.Fatalf("constrained run found %d matches, want the 3 tight sessions", cons1.Matches)
	}
	cons2 := run(hops)
	if !cons2.Cached || cons2.Matches != cons1.Matches || cons2.Cut != cons1.Cut {
		t.Fatalf("constrained replay is not an exact cache hit: %+v vs %+v", cons2, cons1)
	}
	plain2 := run(nil)
	if !plain2.Cached || plain2.Matches != plain1.Matches {
		t.Fatalf("unconstrained replay disturbed by the constrained entry: %+v vs %+v", plain2, plain1)
	}
	if n := srv.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (constrained + unconstrained)", n)
	}
}

// postRaw posts a raw JSON body, for requests a typed struct cannot express
// (unknown fields).
func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestServeRejectsUnknownAndInvalidConstraintFields pins the strict-decoding
// and validation contract: a typo'd constraint field is a 400 naming the
// offender (never a silently unconstrained query), hops outside the temporal
// family are rejected, and contradictory hop fields fail validation.
func TestServeRejectsUnknownAndInvalidConstraintFields(t *testing.T) {
	_, ts, _ := newTestServer(t, 1, Watermarks{})
	ingest(t, ts.URL, sessions(0, 2))

	// The motivating hazard: "maxGapp" must 400 and name the field.
	resp, body := postRaw(t, ts.URL+"/v1/query/temporal",
		`{"nodes":["proc","file"],"edges":[{"src":0,"dst":1}],"hops":[{},{"maxGapp":30}]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "maxGapp") {
		t.Fatalf("typo'd hop field: status %d, body %s — want 400 naming maxGapp", resp.StatusCode, body)
	}
	// Top-level typos too.
	resp, body = postRaw(t, ts.URL+"/v1/query/temporal",
		`{"nodes":["proc","file"],"edges":[{"src":0,"dst":1}],"windoww":5}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "windoww") {
		t.Fatalf("typo'd request field: status %d, body %s", resp.StatusCode, body)
	}
	// And the ingest endpoint.
	resp, body = postRaw(t, ts.URL+"/v1/events",
		`{"events":[{"time":999,"src":"a","dst":"b","srcLabell":"x"}]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "srcLabell") {
		t.Fatalf("typo'd event field: status %d, body %s", resp.StatusCode, body)
	}

	// Hops outside the temporal family are rejected up front.
	for _, path := range []string{"/v1/query/ntemp", "/v1/query/nodeset"} {
		req := QueryRequest{Nodes: []string{"proc", "file"}, Edges: []QueryEdge{{0, 1}},
			Labels: []string{"proc"}, Hops: []HopSpec{{MaxGap: 3}}}
		resp, body := postJSON(t, ts.URL+path, req)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "temporal") {
			t.Fatalf("%s with hops: status %d, body %s", path, resp.StatusCode, body)
		}
	}

	// Contradictory or oversized hop sets fail validation with 400.
	for _, hops := range [][]HopSpec{
		{{}, {MinGap: 9, MaxGap: 2}},
		{{}, {Optional: true, MinRepeat: 1}},
		{{Optional: true}},
		{{}, {}, {}}, // more hops than edges
	} {
		req := QueryRequest{Nodes: []string{"proc", "file"}, Edges: []QueryEdge{{0, 1}}, Hops: hops}
		if resp, body := postJSON(t, ts.URL+"/v1/query/temporal", req); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("invalid hops %+v: status %d, body %s", hops, resp.StatusCode, body)
		}
	}
}
