package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"tgminer"
)

// resultCache memoizes complete query answers keyed on (query family,
// canonical request key, per-shard generation cut). The cut component is
// what makes hits sound with zero invalidation machinery: any append,
// eviction, or compaction on any shard changes the engine's cut string, so
// a stale entry can never be returned — it simply becomes unreachable and
// ages out of the LRU. A hit is therefore exactly a replay of a prior run
// at the same per-shard generation cut: same matches, same order, same
// Truncated flag.
//
// Only complete answers are stored (a partial, cancelled run is not a
// replayable value), and only answers whose cut provably did not move
// during evaluation (the caller checks cut-before == cut-after; per-shard
// key monotonicity then pins the run to that cut).
type resultCache struct {
	mu      sync.Mutex
	max     int // entry cap; <= 0 disables the cache
	ll      *list.List
	entries map[cacheKey]*list.Element

	hits, misses atomic.Int64
}

type cacheKey struct {
	family string
	query  string // canonical serialization of the request (pattern + bounds)
	cut    string
}

type cacheVal struct {
	key       cacheKey
	matches   []tgminer.Match
	truncated bool
}

func newResultCache(max int) *resultCache {
	c := &resultCache{max: max}
	if max > 0 {
		c.ll = list.New()
		c.entries = make(map[cacheKey]*list.Element, max)
	}
	return c
}

// get returns the cached answer for key, if any, and promotes it to
// most-recently-used. The returned slice is shared — callers must not
// modify it.
func (c *resultCache) get(key cacheKey) (matches []tgminer.Match, truncated, ok bool) {
	if c.max <= 0 {
		return nil, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	v := el.Value.(*cacheVal)
	return v.matches, v.truncated, true
}

// put stores a complete answer, evicting the least-recently-used entry at
// the cap. The matches slice is retained — callers must not modify it after
// the call.
func (c *resultCache) put(key cacheKey, matches []tgminer.Match, truncated bool) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheVal)
		v.matches, v.truncated = matches, truncated
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheVal{key: key, matches: matches, truncated: truncated})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheVal).key)
	}
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
