package serve

import (
	"fmt"
	"sync"
	"time"

	"tgminer"
)

// Watermarks configures ingest admission control: the serving tier's answer
// to the PR 5 follow-up of *acting* on the engine's OldestReaderLag /
// RetainedBytes accounting instead of just exposing it. Every threshold is
// evaluated per shard (the max across shards), because one pinned reader or
// one hot shard is exactly the failure mode the accounting exists to catch.
//
// Crossing a soft watermark sheds writers: ingest batches get 429 with a
// Retry-After hint while queries keep answering, giving the slow reader (or
// the compactor) time to catch up. Crossing the hard RetainedBytes
// watermark additionally fires the evict-on-pressure policy when
// HardPolicy is "evict": the oldest EvictFraction of the live time window
// is dropped (sliding-window retention, the engine's O(log E) EvictBefore)
// and the batch is admitted against the freed budget. Reader lag has no
// evict remedy — eviction cannot unpin a reader's snapshot — so a hard lag
// crossing always sheds, whatever the policy.
type Watermarks struct {
	SoftLagEdges      int // shed writers when any shard's OldestReaderLag reaches this (0 = disabled)
	HardLagEdges      int // as above, but reported as hard pressure (0 = disabled)
	SoftRetainedBytes int // shed writers when any shard retains this many bytes (0 = disabled)
	HardRetainedBytes int // evict-on-pressure (or shed, per HardPolicy) at this retention (0 = disabled)

	// HardPolicy selects the hard RetainedBytes response: "reject" (default)
	// sheds the batch like a soft crossing; "evict" drops the oldest
	// EvictFraction of the live time window and admits the batch.
	HardPolicy string
	// EvictFraction is the fraction of the live [FirstTime, LastTime] span
	// evicted per firing (default 0.25).
	EvictFraction float64

	// RetryAfter is the backoff hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// SampleInterval bounds how often admission control recomputes engine
	// stats (the walk is O(nodes) per shard — too hot for per-batch
	// evaluation). Default 25ms; pressure decisions may be that stale.
	SampleInterval time.Duration
}

func (w Watermarks) normalize() Watermarks {
	if w.HardPolicy == "" {
		w.HardPolicy = "reject"
	}
	if w.EvictFraction <= 0 || w.EvictFraction >= 1 {
		w.EvictFraction = 0.25
	}
	if w.RetryAfter <= 0 {
		w.RetryAfter = time.Second
	}
	if w.SampleInterval <= 0 {
		w.SampleInterval = 25 * time.Millisecond
	}
	return w
}

// enabled reports whether any watermark is configured.
func (w Watermarks) enabled() bool {
	return w.SoftLagEdges > 0 || w.HardLagEdges > 0 || w.SoftRetainedBytes > 0 || w.HardRetainedBytes > 0
}

// pressureSample is one admission-control reading: per-shard maxima of the
// two pressure signals plus the live time span (the evict policy's input).
type pressureSample struct {
	maxLag    int
	maxBytes  int
	firstTime int64
	lastTime  int64
}

// sampler caches pressure readings for SampleInterval, serializing the
// stats walk so a burst of ingest batches pays for one reading, not one
// each.
type sampler struct {
	eng      *tgminer.LiveEngine
	interval time.Duration

	mu     sync.Mutex
	at     time.Time
	sample pressureSample
}

// get returns a pressure reading at most interval old.
func (s *sampler) get() pressureSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); s.at.IsZero() || now.Sub(s.at) >= s.interval {
		s.sample = s.read()
		s.at = now
	}
	return s.sample
}

// refresh forces a fresh reading (used right after an evict-on-pressure so
// the admission decision sees the relief).
func (s *sampler) refresh() pressureSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sample = s.read()
	s.at = time.Now()
	return s.sample
}

func (s *sampler) read() pressureSample {
	out := pressureSample{firstTime: -1, lastTime: -1}
	for _, st := range s.eng.ShardStats() {
		if st.OldestReaderLag > out.maxLag {
			out.maxLag = st.OldestReaderLag
		}
		if st.RetainedBytes > out.maxBytes {
			out.maxBytes = st.RetainedBytes
		}
		if st.FirstTime >= 0 && (out.firstTime < 0 || st.FirstTime < out.firstTime) {
			out.firstTime = st.FirstTime
		}
		if st.LastTime > out.lastTime {
			out.lastTime = st.LastTime
		}
	}
	return out
}

// admit runs the admission decision for one ingest batch. It returns
// evictedBefore != nil when the evict-on-pressure policy fired (the batch
// is then admitted), and err != nil when the batch must be shed with 429;
// the error text names the signal and shard-maximum that tripped.
func (s *Server) admit() (evictedBefore *int64, err error) {
	w := s.cfg.Watermarks
	if !w.enabled() {
		return nil, nil
	}
	p := s.sampler.get()
	if w.HardRetainedBytes > 0 && p.maxBytes >= w.HardRetainedBytes && w.HardPolicy == "evict" {
		// Evict the oldest fraction of the live window. EvictBefore only
		// advances a floor; the bytes come back once a compaction reclaims
		// the dead prefix, which may take a few more appends — so the byte
		// watermarks are waived for this batch (the remedy was applied; a
		// 429 on top would make "evict" behave like "reject") and each
		// subsequent batch advances the floor further until compaction
		// catches up. Reader-lag watermarks still apply: eviction cannot
		// unpin a reader.
		if p.firstTime >= 0 && p.lastTime > p.firstTime {
			cut := p.firstTime + int64(float64(p.lastTime-p.firstTime)*w.EvictFraction)
			if cut <= p.firstTime {
				cut = p.firstTime + 1
			}
			s.eng.EvictBefore(cut)
			s.pressureEvictions.Add(1)
			evictedBefore = &cut
			p = s.sampler.refresh()
		}
	}
	evicted := evictedBefore != nil
	switch {
	case w.HardLagEdges > 0 && p.maxLag >= w.HardLagEdges:
		err = fmt.Errorf("backpressure (hard): a reader is %d edges behind (watermark %d); evicting cannot unpin it — retry later", p.maxLag, w.HardLagEdges)
	case !evicted && w.HardRetainedBytes > 0 && p.maxBytes >= w.HardRetainedBytes:
		err = fmt.Errorf("backpressure (hard): a shard retains %d bytes (watermark %d)", p.maxBytes, w.HardRetainedBytes)
	case w.SoftLagEdges > 0 && p.maxLag >= w.SoftLagEdges:
		err = fmt.Errorf("backpressure: a reader is %d edges behind (watermark %d)", p.maxLag, w.SoftLagEdges)
	case !evicted && w.SoftRetainedBytes > 0 && p.maxBytes >= w.SoftRetainedBytes:
		err = fmt.Errorf("backpressure: a shard retains %d bytes (watermark %d)", p.maxBytes, w.SoftRetainedBytes)
	}
	return evictedBefore, err
}
