package serve

import (
	"fmt"
	"time"

	"tgminer"
)

// Watermarks configures ingest admission control: the serving tier's answer
// to the PR 5 follow-up of *acting* on the engine's OldestReaderLag /
// RetainedBytes accounting instead of just exposing it. Every threshold is
// evaluated per shard (the max across shards), because one pinned reader or
// one hot shard is exactly the failure mode the accounting exists to catch.
//
// Admission is exact and per batch: engine stats are O(1) incremental
// counters, so every /v1/events batch takes a fresh per-shard pressure
// reading before it is admitted. There is no sampling interval and no
// staleness window — once a hard watermark is truly crossed, the very next
// batch sees it.
//
// Crossing a soft watermark sheds writers: ingest batches get 429 with a
// Retry-After hint while queries keep answering, giving the slow reader (or
// the compactor) time to catch up. Crossing the hard RetainedBytes
// watermark additionally fires the evict-on-pressure policy when
// HardPolicy is "evict": the oldest EvictFraction of the live time window
// is dropped (sliding-window retention, the engine's O(log E) EvictBefore)
// and the batch is admitted against the freed budget. Reader lag has no
// evict remedy — eviction cannot unpin a reader's snapshot — so a hard lag
// crossing always sheds, whatever the policy.
type Watermarks struct {
	SoftLagEdges      int // shed writers when any shard's OldestReaderLag reaches this (0 = disabled)
	HardLagEdges      int // as above, but reported as hard pressure (0 = disabled)
	SoftRetainedBytes int // shed writers when any shard retains this many bytes (0 = disabled)
	HardRetainedBytes int // evict-on-pressure (or shed, per HardPolicy) at this retention (0 = disabled)

	// HardPolicy selects the hard RetainedBytes response: "reject" (default)
	// sheds the batch like a soft crossing; "evict" drops the oldest
	// EvictFraction of the live time window and admits the batch.
	HardPolicy string
	// EvictFraction is the fraction of the live [FirstTime, LastTime] span
	// evicted per firing (default 0.25).
	EvictFraction float64

	// RetryAfter caps the backoff hint attached to 429 responses (default
	// 1s). The hint itself is derived from observed pressure decay: when
	// consecutive admission decisions see the tripped signal falling, the
	// hint is the projected time until it drops below its watermark,
	// clamped to [minRetryHint, RetryAfter]. When pressure is flat,
	// rising, or this is the first reading — no decay to extrapolate —
	// the full RetryAfter is returned (the conservative constant hint).
	RetryAfter time.Duration
}

func (w Watermarks) normalize() Watermarks {
	if w.HardPolicy == "" {
		w.HardPolicy = "reject"
	}
	if w.EvictFraction <= 0 || w.EvictFraction >= 1 {
		w.EvictFraction = 0.25
	}
	if w.RetryAfter <= 0 {
		w.RetryAfter = time.Second
	}
	return w
}

// enabled reports whether any watermark is configured.
func (w Watermarks) enabled() bool {
	return w.SoftLagEdges > 0 || w.HardLagEdges > 0 || w.SoftRetainedBytes > 0 || w.HardRetainedBytes > 0
}

// minRetryHint floors the decay-derived Retry-After so a shed producer
// never busy-spins against the server even when pressure is draining fast.
const minRetryHint = 10 * time.Millisecond

// retryHint projects how long a shed producer should back off before the
// tripped signal (current value cur, watermark mark) drops below its
// watermark, given the previous reading prev observed dt ago. Pressure
// decaying at r units/sec clears the overshoot in (cur-mark+1)/r seconds;
// that projection is clamped to [minRetryHint, RetryAfter]. Flat or rising
// pressure (and a missing previous reading, dt <= 0) yields the full
// RetryAfter: there is no drain rate to extrapolate, so the conservative
// constant applies.
func (w Watermarks) retryHint(cur, mark, prev int, dt time.Duration) time.Duration {
	if dt <= 0 || prev <= cur {
		return w.RetryAfter
	}
	rate := float64(prev-cur) / dt.Seconds()
	hint := time.Duration(float64(cur-mark+1) / rate * float64(time.Second))
	if hint < minRetryHint {
		hint = minRetryHint
	}
	if hint > w.RetryAfter {
		hint = w.RetryAfter
	}
	return hint
}

// pressureSample is one admission-control reading: per-shard maxima of the
// two pressure signals plus the live time span (the evict policy's input).
type pressureSample struct {
	maxLag    int
	maxBytes  int
	firstTime int64
	lastTime  int64
}

// readPressure takes one exact pressure reading. O(shards): per-shard
// Stats is an O(1) read of the engine's incremental counters, which is
// what lets admission re-evaluate on every batch instead of caching a
// 25ms-stale sample.
func readPressure(eng *tgminer.LiveEngine) pressureSample {
	out := pressureSample{firstTime: -1, lastTime: -1}
	for _, st := range eng.ShardStats() {
		if st.OldestReaderLag > out.maxLag {
			out.maxLag = st.OldestReaderLag
		}
		if st.RetainedBytes > out.maxBytes {
			out.maxBytes = st.RetainedBytes
		}
		if st.FirstTime >= 0 && (out.firstTime < 0 || st.FirstTime < out.firstTime) {
			out.firstTime = st.FirstTime
		}
		if st.LastTime > out.lastTime {
			out.lastTime = st.LastTime
		}
	}
	return out
}

// admit runs the admission decision for one ingest batch against a fresh
// pressure reading. It returns evictedBefore != nil when the
// evict-on-pressure policy fired (the batch is then admitted), and
// err != nil when the batch must be shed with 429 — retry is then the
// decay-derived Retry-After hint and the error text names the signal and
// shard-maximum that tripped. Each decision also records its reading so
// the next shed can estimate the drain rate.
func (s *Server) admit() (evictedBefore *int64, retry time.Duration, err error) {
	w := s.cfg.Watermarks
	if !w.enabled() {
		return nil, 0, nil
	}
	p := readPressure(s.eng)
	if w.HardRetainedBytes > 0 && p.maxBytes >= w.HardRetainedBytes && w.HardPolicy == "evict" {
		// Evict the oldest fraction of the live window. EvictBefore only
		// advances a floor; the bytes come back once a compaction reclaims
		// the dead prefix, which may take a few more appends — so the byte
		// watermarks are waived for this batch (the remedy was applied; a
		// 429 on top would make "evict" behave like "reject") and each
		// subsequent batch advances the floor further until compaction
		// catches up. Reader-lag watermarks still apply: eviction cannot
		// unpin a reader.
		if p.firstTime >= 0 && p.lastTime > p.firstTime {
			cut := p.firstTime + int64(float64(p.lastTime-p.firstTime)*w.EvictFraction)
			if cut <= p.firstTime {
				cut = p.firstTime + 1
			}
			s.eng.EvictBefore(cut)
			s.pressureEvictions.Add(1)
			evictedBefore = &cut
			p = readPressure(s.eng)
		}
	}

	// Swap this reading in as the decay baseline and recover the previous
	// one: a shed below extrapolates the drain rate from (prev -> p).
	now := time.Now()
	s.pressMu.Lock()
	prev, prevAt := s.prevPress, s.prevPressAt
	s.prevPress, s.prevPressAt = p, now
	s.pressMu.Unlock()
	dt := time.Duration(0)
	if !prevAt.IsZero() {
		dt = now.Sub(prevAt)
	}

	evicted := evictedBefore != nil
	switch {
	case w.HardLagEdges > 0 && p.maxLag >= w.HardLagEdges:
		s.shedHardLag.Add(1)
		retry = w.retryHint(p.maxLag, w.HardLagEdges, prev.maxLag, dt)
		err = fmt.Errorf("backpressure (hard): a reader is %d edges behind (watermark %d); evicting cannot unpin it — retry later", p.maxLag, w.HardLagEdges)
	case !evicted && w.HardRetainedBytes > 0 && p.maxBytes >= w.HardRetainedBytes:
		s.shedHardBytes.Add(1)
		retry = w.retryHint(p.maxBytes, w.HardRetainedBytes, prev.maxBytes, dt)
		err = fmt.Errorf("backpressure (hard): a shard retains %d bytes (watermark %d)", p.maxBytes, w.HardRetainedBytes)
	case w.SoftLagEdges > 0 && p.maxLag >= w.SoftLagEdges:
		s.shedSoftLag.Add(1)
		retry = w.retryHint(p.maxLag, w.SoftLagEdges, prev.maxLag, dt)
		err = fmt.Errorf("backpressure: a reader is %d edges behind (watermark %d)", p.maxLag, w.SoftLagEdges)
	case !evicted && w.SoftRetainedBytes > 0 && p.maxBytes >= w.SoftRetainedBytes:
		s.shedSoftBytes.Add(1)
		retry = w.retryHint(p.maxBytes, w.SoftRetainedBytes, prev.maxBytes, dt)
		err = fmt.Errorf("backpressure: a shard retains %d bytes (watermark %d)", p.maxBytes, w.SoftRetainedBytes)
	}
	return evictedBefore, retry, err
}
