package serve

import (
	"encoding/json"
	"io"
	"testing"
)

// BenchmarkServeStream measures the per-match cost of the query streaming
// hot path: one op renders 64 MatchRecord lines plus the terminal QueryDone.
// "json" is the pre-PR-10 implementation (encoding/json per line); "ndjson"
// is the pooled hand-rolled encoder the handlers use now, which must come in
// at >=2x fewer allocs per match (in practice: zero once the pooled buffer
// is warm). Byte-identity of the two renderings is pinned by
// TestNDJSONMatchesStdlib and the HTTP differential tests. Recorded in
// BENCH_PR10.json.
func BenchmarkServeStream(b *testing.B) {
	matches := make([]MatchRecord, 64)
	for i := range matches {
		matches[i] = MatchRecord{Start: int64(i * 10), End: int64(i*10 + 7)}
	}
	done := QueryDone{Done: true, Matches: len(matches), Cut: "1.0.40/0.0.24"}

	b.Run("encoder=json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := json.NewEncoder(io.Discard)
			for _, m := range matches {
				if err := enc.Encode(m); err != nil {
					b.Fatal(err)
				}
			}
			if err := enc.Encode(done); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoder=ndjson", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lw := newLineWriter(io.Discard)
			for _, m := range matches {
				if err := lw.writeMatch(m); err != nil {
					b.Fatal(err)
				}
			}
			if err := lw.writeDone(done); err != nil {
				b.Fatal(err)
			}
			lw.release()
		}
	})
}
