package serve

// Hand-rolled NDJSON encoding for the query streaming hot path. Every match
// a query streams used to pay json.Encoder's reflection and buffer
// allocations; at "millions of users" fan-out that is the dominant per-match
// serving cost. lineWriter appends MatchRecord / QueryDone lines into one
// pooled buffer reused across all lines of a request, so the steady-state
// per-match cost is zero allocations.
//
// The output is byte-identical to encoding/json for these two types —
// including field order, bool/int formatting, omitempty, and string
// escaping — because the serve differential tests (and any cached client)
// compare bodies byte-for-byte against json.Marshal renderings.
// TestNDJSONMatchesStdlib pins the equivalence.

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// lineBufPool holds per-request line buffers. A MatchRecord line is ~40
// bytes; QueryDone with a cut string maybe 120 — 256 covers the common case
// without a grow, and a grown buffer is retained for the next request.
var lineBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// lineWriter streams NDJSON lines to w, flushing each so consumers see
// matches as the search finds them rather than at buffer boundaries.
// Not safe for concurrent use; release() returns the buffer to the pool.
type lineWriter struct {
	w   io.Writer
	fl  http.Flusher
	buf *[]byte
}

func newLineWriter(w io.Writer) lineWriter {
	fl, _ := w.(http.Flusher)
	return lineWriter{w: w, fl: fl, buf: lineBufPool.Get().(*[]byte)}
}

func (lw *lineWriter) release() { lineBufPool.Put(lw.buf) }

func (lw *lineWriter) line(b []byte) error {
	*lw.buf = b // keep any growth for the request's next line
	if _, err := lw.w.Write(b); err != nil {
		return err
	}
	if lw.fl != nil {
		lw.fl.Flush()
	}
	return nil
}

func (lw *lineWriter) writeMatch(m MatchRecord) error {
	return lw.line(appendMatchRecord((*lw.buf)[:0], m))
}

func (lw *lineWriter) writeDone(d QueryDone) error {
	return lw.line(appendQueryDone((*lw.buf)[:0], d))
}

func appendMatchRecord(b []byte, m MatchRecord) []byte {
	b = append(b, `{"start":`...)
	b = strconv.AppendInt(b, m.Start, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, m.End, 10)
	return append(b, '}', '\n')
}

func appendQueryDone(b []byte, d QueryDone) []byte {
	b = append(b, `{"done":`...)
	b = strconv.AppendBool(b, d.Done)
	b = append(b, `,"matches":`...)
	b = strconv.AppendInt(b, int64(d.Matches), 10)
	b = append(b, `,"truncated":`...)
	b = strconv.AppendBool(b, d.Truncated)
	b = append(b, `,"cached":`...)
	b = strconv.AppendBool(b, d.Cached)
	if d.Cut != "" {
		b = append(b, `,"cut":`...)
		b = appendJSONString(b, d.Cut)
	}
	if d.Error != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, d.Error)
	}
	return append(b, '}', '\n')
}

// appendJSONString appends s as a JSON string, byte-identical to
// encoding/json: plain ASCII needing no escapes (this covers every cut
// string — base-36 digits, '.', '/') appends directly; anything needing
// escaping — quotes, backslashes, control bytes, DEL, non-ASCII, or the
// HTML-escaped < > & — falls back to json.Marshal, inheriting its exact
// escape table (short \n forms, \u00XX control bytes, U+2028/U+2029,
// invalid-UTF-8 replacement). The fallback allocates, but only error
// messages ever take it.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			j, _ := json.Marshal(s) // a string value cannot fail to marshal
			return append(b, j...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}
