package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNDJSONMatchesStdlib pins the hand-rolled streaming encoder
// byte-identical to encoding/json for both NDJSON line types, across
// omitempty combinations and adversarial strings (escapes, HTML characters,
// U+2028/U+2029, invalid UTF-8). The serve differential tests compare whole
// HTTP bodies against json.Marshal renderings, so any divergence here would
// break byte-identity of served answers.
func TestNDJSONMatchesStdlib(t *testing.T) {
	stdline := func(v any) string {
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(j) + "\n"
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m := MatchRecord{Start: rng.Int63() - rng.Int63(), End: rng.Int63() - rng.Int63()}
		if got, want := string(appendMatchRecord(nil, m)), stdline(m); got != want {
			t.Fatalf("MatchRecord %+v: got %q, want %q", m, got, want)
		}
	}

	strs := []string{
		"",
		"plain ascii",
		"a1.2f.0/b3.0.7",                // a generation-cut string
		`quo"te and back\slash`,         // short-form escapes
		"tab\tand\nnewline\rand more",   // control characters with short forms
		"\x00\x01\x1f",                  // control characters without
		"html <b>&</b> escapes",         // encoding/json's HTML escaping
		"  line   separator",            // the JS-hostile separators
		"héllo 世界",                      // multibyte UTF-8
		"\x7f del",                      // DEL passes through stdlib unescaped
		string([]byte{0xff, 0xfe, 'x'}), // invalid UTF-8 -> replacement rune
		strings.Repeat("long plain string. ", 40), // beyond the pooled buffer's 256 bytes
		strings.Repeat("long \"escaped\" string. ", 40) + "<>&",
	}
	for _, cut := range []string{"", "1.0.2f/0.0.3e"} {
		for _, errStr := range strs {
			for _, done := range []bool{false, true} {
				d := QueryDone{
					Done: done, Matches: rng.Intn(1 << 20), Truncated: rng.Intn(2) == 0,
					Cached: rng.Intn(2) == 0, Cut: cut, Error: errStr,
				}
				if got, want := string(appendQueryDone(nil, d)), stdline(d); got != want {
					t.Fatalf("QueryDone %+v: got %q, want %q", d, got, want)
				}
			}
		}
	}

	// The pooled writer produces the same bytes through its buffer-reuse
	// path, across lines that grow and shrink.
	var sink bytes.Buffer
	lw := newLineWriter(&sink)
	defer lw.release()
	var want strings.Builder
	for i := 0; i < 50; i++ {
		m := MatchRecord{Start: int64(i), End: int64(i + 1)}
		if err := lw.writeMatch(m); err != nil {
			t.Fatal(err)
		}
		want.WriteString(stdline(m))
		d := QueryDone{Done: i%2 == 0, Matches: i, Error: strs[i%len(strs)]}
		if err := lw.writeDone(d); err != nil {
			t.Fatal(err)
		}
		want.WriteString(stdline(d))
	}
	if sink.String() != want.String() {
		t.Fatal("lineWriter stream diverged from stdlib rendering")
	}
}

// TestRetryHintFromDecay unit-tests the decay-derived Retry-After
// projection: decaying pressure yields the time to drop below the
// watermark, clamped both ways; flat, rising, or first-reading pressure
// yields the configured constant.
func TestRetryHintFromDecay(t *testing.T) {
	w := Watermarks{RetryAfter: time.Second}
	cases := []struct {
		name            string
		cur, mark, prev int
		dt              time.Duration
		want            time.Duration
	}{
		{"decaying", 150, 100, 250, time.Second, 510 * time.Millisecond}, // 100/s drain, 51 over
		{"fast-decay-clamps-to-floor", 100, 100, 10100, time.Second, minRetryHint},
		{"slow-decay-clamps-to-cap", 1000, 100, 1001, time.Second, time.Second},
		{"rising", 150, 100, 50, time.Second, time.Second},
		{"flat", 150, 100, 150, time.Second, time.Second},
		{"no-previous-reading", 150, 100, 0, 0, time.Second},
	}
	for _, c := range cases {
		if got := w.retryHint(c.cur, c.mark, c.prev, c.dt); got != c.want {
			t.Errorf("%s: retryHint(%d,%d,%d,%v) = %v, want %v", c.name, c.cur, c.mark, c.prev, c.dt, got, c.want)
		}
	}
}

// TestServeHardWatermarkRejectsNextBatch is the no-staleness-window
// acceptance check: once a batch truly crosses a hard watermark, the very
// next batch — and every one after it — is rejected. Before PR 10 a 25ms
// sampler window could admit an arbitrary number of batches after a hard
// crossing; admission now takes an exact O(shards) pressure reading per
// batch, so this test needs (and tolerates) no sleeps or interval knobs.
func TestServeHardWatermarkRejectsNextBatch(t *testing.T) {
	_, ts, _ := newTestServer(t, 1, Watermarks{HardRetainedBytes: 1, RetryAfter: 30 * time.Second})

	// An empty engine retains nothing: the first batch is admitted, and its
	// events push retention past the (deliberately tiny) hard watermark.
	ingest(t, ts.URL, sessions(0, 1))

	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/events", IngestRequest{Events: sessions(1+i, 1)})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("batch %d after the hard crossing: status %d, want 429: %s", i+1, resp.StatusCode, body)
		}
		var ir IngestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Appended != 0 {
			t.Fatalf("batch %d appended %d events past a hard watermark", i+1, ir.Appended)
		}
		// Pressure is not decaying (nothing drains), so the hint must be
		// the full configured constant, mirrored in header and body.
		if resp.Header.Get("Retry-After") != "30" || ir.RetryAfterMs != 30000 {
			t.Fatalf("batch %d: Retry-After %q / retryAfterMs %d, want 30s constant", i+1, resp.Header.Get("Retry-After"), ir.RetryAfterMs)
		}
	}

	// Run one cacheable query twice so the statsz check below also covers
	// the new cache-hit-rate gauge.
	for i := 0; i < 2; i++ {
		q := QueryRequest{Labels: []string{"proc", "file"}, Window: 5}
		if resp, body := postJSON(t, ts.URL+"/v1/query/nodeset", q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	r, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stz StatszResponse
	if err := json.NewDecoder(r.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	if stz.Server.IngestRejected != 5 || stz.Server.ShedHardBytes != 5 {
		t.Fatalf("shed accounting: rejected %d, shedHardBytes %d, want 5/5 (%+v)", stz.Server.IngestRejected, stz.Server.ShedHardBytes, stz.Server)
	}
	if stz.Server.ShedSoftLag != 0 || stz.Server.ShedHardLag != 0 || stz.Server.ShedSoftBytes != 0 {
		t.Fatalf("wrong signal attributed: %+v", stz.Server)
	}
	if stz.Server.CacheHits != 1 || stz.Server.CacheHitRate != 0.5 {
		t.Fatalf("cache gauge: hits %d rate %v, want 1 and 0.5", stz.Server.CacheHits, stz.Server.CacheHitRate)
	}
}
