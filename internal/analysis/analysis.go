package analysis

// Core framework types: Analyzer, Pass, Diagnostic, and the suite runner
// with tglint:ignore suppression and directive validation. The shape
// mirrors golang.org/x/tools/go/analysis so the analyzers would port to the
// upstream API mechanically; see doc.go for why the dependency is rebuilt
// here instead of imported.

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the short lower-case identifier, used in diagnostics and in
	// tglint:ignore directives.
	Name string
	// Doc describes the invariant the analyzer enforces; the first line is
	// the summary shown by `tglint -list`.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one analyzer's run over one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos. Diagnostics inside a declaration
// annotated `// tglint:ignore <analyzer> <reason>` for this analyzer are
// suppressed by the framework.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All is the tglint suite, in reporting order. cmd/tglint runs exactly this
// set (plus `go vet` for the stock passes).
var All = []*Analyzer{GenAccess, AtomicCapture, PosChecked, CtxFirst, JSONWire, Nilness}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAll runs every analyzer over every package, validates the packages'
// tglint directives against the analyzer set, and drops diagnostics
// suppressed by tglint:ignore annotations. Diagnostics come back sorted by
// file position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, checkDirectives(pkg, known)...)
		for _, a := range analyzers {
			diags = append(diags, runOne(pkg, a)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// runOne runs a single analyzer over a single package with ignore
// suppression applied. The fixture tests use it directly.
func runOne(pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg}
	pass.report = func(pos token.Pos, msg string) {
		if pkg.ignoredAt(a.Name, pos) {
			return
		}
		diags = append(diags, Diagnostic{Analyzer: a.Name, Pos: pkg.Fset.Position(pos), Message: msg})
	}
	a.Run(pass)
	return diags
}

// checkDirectives validates the package's tglint directives: ignore needs a
// known analyzer name and a reason, writer/snapshot attach only to
// functions, and unknown directive verbs are flagged. This keeps the
// annotation layer itself honest — a typo'd ignore can never silently
// suppress anything.
func checkDirectives(pkg *Package, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "tglint",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range pkg.directives {
		switch d.verb {
		case "writer", "snapshot":
			if !d.onFunc {
				bad(d.pos, "tglint:%s applies only to function declarations", d.verb)
			}
		case "ignore":
			switch {
			case d.analyzer == "":
				bad(d.pos, "tglint:ignore needs an analyzer name and a reason: // tglint:ignore <analyzer> <reason>")
			case !known[d.analyzer]:
				bad(d.pos, "tglint:ignore names unknown analyzer %q", d.analyzer)
			case d.reason == "":
				bad(d.pos, "tglint:ignore %s needs a reason (annotated exceptions must say why)", d.analyzer)
			}
		default:
			bad(d.pos, "unknown tglint directive %q (want writer, snapshot, or ignore)", d.verb)
		}
	}
	return diags
}
