package analysis

// Package loading without golang.org/x/tools: `go list -e -deps -export
// -json` resolves the patterns, compiles export data for every dependency
// (stdlib included — the go command caches it), and reports where each
// export file lives; the target packages are then parsed from source (with
// comments, which carry the tglint directives) and type-checked against
// that export data through the stdlib gc importer. This is the
// go/packages LoadAllSyntax shape rebuilt on the standard library.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads, parses, and type-checks the non-test Go files of the
// packages matching the go-command patterns (relative patterns resolve
// against dir). Test files are deliberately out of scope: the invariants
// govern library and command code, and several (ctxfirst's
// context.Background ban, for one) explicitly exempt tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var all []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		all = append(all, lp)
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	// The gc importer resolves every import — stdlib and in-module alike —
	// from the export data go list just (re)built. A missing entry means
	// the tree does not compile; surface that instead of half-checking.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the tree build?)", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range all {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}
		pkg.prepare()
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("go list %v matched no packages", patterns)
	}
	return pkgs, nil
}
