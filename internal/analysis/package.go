package analysis

// Package representation plus the shared syntax utilities the analyzers
// build on: tglint directive parsing, function-scope enumeration (FuncDecls
// and FuncLits as separate scopes), and small type predicates.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Package is one loaded, type-checked package plus the tglint annotation
// index built from its doc comments.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	funcAnn    map[*ast.FuncDecl]annotations
	directives []directive
	ignores    []ignoreSpan
	scopeList  []*funcScope
}

// annotations are the parsed tglint directives of one declaration.
type annotations struct {
	Writer   bool
	Snapshot bool
	Ignore   map[string]string // analyzer -> reason
}

// directive is one raw tglint directive, kept for validation.
type directive struct {
	pos      token.Pos
	verb     string // writer | snapshot | ignore | anything typo'd
	analyzer string // ignore only
	reason   string // ignore only
	onFunc   bool
}

// ignoreSpan suppresses one analyzer inside one declaration.
type ignoreSpan struct {
	analyzer   string
	start, end token.Pos
}

// prepare builds the annotation index. Called once by Load.
func (p *Package) prepare() {
	p.funcAnn = make(map[*ast.FuncDecl]annotations)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			_, isFunc := decl.(*ast.FuncDecl)
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			ann, dirs := parseAnnotations(doc, isFunc)
			for _, dir := range dirs {
				p.directives = append(p.directives, dir)
			}
			if fd, ok := decl.(*ast.FuncDecl); ok {
				p.funcAnn[fd] = ann
			}
			for name := range ann.Ignore {
				p.ignores = append(p.ignores, ignoreSpan{name, decl.Pos(), decl.End()})
			}
		}
	}
}

// parseAnnotations extracts tglint directives from a doc comment.
func parseAnnotations(doc *ast.CommentGroup, onFunc bool) (annotations, []directive) {
	ann := annotations{Ignore: map[string]string{}}
	var dirs []directive
	if doc == nil {
		return ann, nil
	}
	for _, c := range doc.List {
		line := strings.TrimPrefix(c.Text, "//")
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "tglint:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "tglint:"))
		d := directive{pos: c.Pos(), onFunc: onFunc}
		if len(fields) > 0 {
			d.verb = fields[0]
		}
		switch d.verb {
		case "writer":
			ann.Writer = true
		case "snapshot":
			ann.Snapshot = true
		case "ignore":
			if len(fields) > 1 {
				d.analyzer = fields[1]
			}
			if len(fields) > 2 {
				d.reason = strings.Join(fields[2:], " ")
			}
			ann.Ignore[d.analyzer] = d.reason
		}
		dirs = append(dirs, d)
	}
	return ann, dirs
}

// ignoredAt reports whether the analyzer is suppressed at pos.
func (p *Package) ignoredAt(analyzer string, pos token.Pos) bool {
	for _, sp := range p.ignores {
		if sp.analyzer == analyzer && sp.start <= pos && pos < sp.end {
			return true
		}
	}
	return false
}

// annotationsOf returns fd's parsed annotations (zero value if none).
func (p *Package) annotationsOf(fd *ast.FuncDecl) annotations {
	return p.funcAnn[fd]
}

// A funcScope is one function body: a declaration, or a function literal
// treated as its own scope (a closure with its own context parameter is a
// separate compliance unit from its enclosing function).
type funcScope struct {
	Decl *ast.FuncDecl // enclosing declaration; nil for a package-level literal
	Lit  *ast.FuncLit  // nil when the scope is the declaration itself
	Type *ast.FuncType
	Body *ast.BlockStmt
	Name string // for diagnostics
}

// exported reports whether the scope is an exported function or method
// declaration (literals are never exported).
func (s *funcScope) exported() bool {
	return s.Lit == nil && s.Decl != nil && s.Decl.Name.IsExported()
}

// scopes enumerates every function body in the package: each FuncDecl and
// each FuncLit, the literals carrying a pointer to their enclosing
// declaration (for annotation lookup).
func (p *Package) scopes() []*funcScope {
	if p.scopeList != nil {
		return p.scopeList
	}
	var out []*funcScope
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			var encl *ast.FuncDecl
			name := "package-level literal"
			if ok {
				encl = fd
				name = funcDisplayName(fd)
				if fd.Body != nil {
					out = append(out, &funcScope{Decl: fd, Type: fd.Type, Body: fd.Body, Name: name})
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if lit, isLit := n.(*ast.FuncLit); isLit {
					out = append(out, &funcScope{
						Decl: encl,
						Lit:  lit,
						Type: lit.Type,
						Body: lit.Body,
						Name: "function literal in " + name,
					})
				}
				return true
			})
		}
	}
	p.scopeList = out
	return out
}

// funcDisplayName renders "Recv.Name" or "Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// inspectShallow walks root in source order without descending into
// function literals (other than root itself, if it is one). Analyzers that
// treat literals as separate scopes use this so a node is attributed to
// exactly one scope.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != root {
			return false
		}
		return fn(n)
	})
}

// declFor returns the FuncDecl whose span contains pos, or nil.
func (p *Package) declFor(pos token.Pos) *ast.FuncDecl {
	for fd := range p.funcAnn {
		if fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}

// --- type predicates -------------------------------------------------------

// namedIn reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isAtomicType reports whether t (after pointer indirection) is one of the
// sync/atomic value types (Int32, Int64, Uint32, Uint64, Bool, Value,
// Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedIn(t, "context", "Context")
}

// isMutexType reports whether t (after pointer indirection) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// calleeFunc resolves a call expression's callee to its types.Func, if it
// statically resolves to a function or method (nil for calls through
// function values, conversions, and builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isCallTo reports whether the call statically resolves to pkgPath.name.
func isCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
