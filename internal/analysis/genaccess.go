package analysis

// genaccess machine-checks the RCU generation-snapshot access discipline of
// internal/search (see the invariant catalog in doc.go and the four
// disciplines in internal/search/live.go's file comment).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GenAccess verifies that writer-owned live-engine state is touched only
// from verified writer (tglint:writer) functions or captured through
// verified snapshot (tglint:snapshot) functions.
var GenAccess = &Analyzer{
	Name: "genaccess",
	Doc: `generation-snapshot access discipline (internal/search):
writer-owned state (generation.tailArr/tailN, posList.n/arr, Live.cur,
Live.retained) is only legal from // tglint:writer functions (verified to
hold the writer mutex, directly or via their callers) or // tglint:snapshot
capture functions (verified to load a published atomic counter and mutate
nothing).`,
	Run: runGenAccess,
}

// genProtected lists the writer-or-snapshot fields by owning struct. The
// analyzer matches on type name within package search, so the fixture
// package can replicate miniature twins of the real structs.
var genProtected = map[string]map[string]bool{
	"generation": {"tailArr": true, "tailN": true},
	"posList":    {"n": true, "arr": true},
	"Live":       {"cur": true, "retained": true},
}

// atomicAPIMethods are the methods through which Live.cur (and the
// protected atomic counters) may be touched.
var atomicReadMethods = map[string]bool{"Load": true}
var atomicWriteMethods = map[string]bool{"Store": true, "CompareAndSwap": true, "Swap": true, "Add": true}

func runGenAccess(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name != "search" {
		return
	}

	// Per-declaration facts. Function literals inherit their enclosing
	// declaration's writer/snapshot status: a snapshot capture or a locked
	// writer may structure its work with closures.
	type declFacts struct {
		ann          annotations
		locked       bool // body acquires a sync.Mutex/RWMutex .Lock()
		snapshotLoad bool // body atomically Loads a protected counter
		mutates      []string
		accesses     []struct {
			pos   token.Pos
			field string
		}
		curMisuse []token.Pos
		curStore  []token.Pos
	}
	facts := make(map[*ast.FuncDecl]*declFacts)
	declOf := make(map[*types.Func]*ast.FuncDecl)
	var decls []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			facts[fd] = &declFacts{ann: pkg.annotationsOf(fd)}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				declOf[fn] = fd
			}
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })

	// protectedSel reports whether sel is an access to a protected field,
	// returning its "Type.field" name.
	protectedSel := func(sel *ast.SelectorExpr) (string, string, bool) {
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return "", "", false
		}
		recv := s.Recv()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed {
			return "", "", false
		}
		tname := named.Obj().Name()
		if fields, isProt := genProtected[tname]; isProt && fields[sel.Sel.Name] {
			return tname, sel.Sel.Name, true
		}
		return "", "", false
	}

	// Gather per-declaration accesses. A walk with a parent map lets the
	// cur rule see how the selector is used (atomic method call vs leak).
	callersOf := make(map[*ast.FuncDecl]map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		df := facts[fd]
		parents := map[ast.Node]ast.Node{}
		var stack []ast.Node
		ast.Inspect(fd, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)

			switch n := n.(type) {
			case *ast.CallExpr:
				// Writer-mutex acquisition and the package call graph.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" && isMutexType(pkg.Info.TypeOf(sel.X)) {
					df.locked = true
				}
				if callee := calleeFunc(pkg.Info, n); callee != nil {
					if cd, ok := declOf[callee]; ok && cd != fd {
						if callersOf[cd] == nil {
							callersOf[cd] = map[*ast.FuncDecl]bool{}
						}
						callersOf[cd][fd] = true
					}
				}
			case *ast.SelectorExpr:
				tname, fname, prot := protectedSel(n)
				if !prot {
					return true
				}
				qual := tname + "." + fname
				// How is the protected selector used? An atomic method call
				// on it is classified read or write; anything else is a raw
				// access.
				if psel, ok := parents[n].(*ast.SelectorExpr); ok && psel.X == n {
					if call, ok2 := parents[psel].(*ast.CallExpr); ok2 && call.Fun == psel {
						if atomicReadMethods[psel.Sel.Name] && isAtomicType(pkg.Info.TypeOf(n)) {
							df.snapshotLoad = true
							if fname == "cur" {
								return true // Live.cur.Load() is legal anywhere
							}
							df.accesses = append(df.accesses, struct {
								pos   token.Pos
								field string
							}{n.Pos(), qual})
							return true
						}
						if atomicWriteMethods[psel.Sel.Name] && isAtomicType(pkg.Info.TypeOf(n)) {
							df.mutates = append(df.mutates, qual+"."+psel.Sel.Name)
							if fname == "cur" {
								df.curStore = append(df.curStore, n.Pos())
							} else {
								df.accesses = append(df.accesses, struct {
									pos   token.Pos
									field string
								}{n.Pos(), qual})
							}
							return true
						}
					}
				}
				if fname == "cur" {
					df.curMisuse = append(df.curMisuse, n.Pos())
					return true
				}
				df.accesses = append(df.accesses, struct {
					pos   token.Pos
					field string
				}{n.Pos(), qual})
			}
			return true
		})
	}

	// Writer verification: a declaration is a verified writer context when
	// it acquires a mutex itself, or when every static in-package caller is
	// a verified writer (helpers documented "caller holds the writer
	// mutex", e.g. posList.push). Fixpoint over the call graph.
	verifiedWriter := make(map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		if facts[fd].locked {
			verifiedWriter[fd] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if verifiedWriter[fd] || len(callersOf[fd]) == 0 {
				continue
			}
			ok := true
			for c := range callersOf[fd] {
				if !verifiedWriter[c] {
					ok = false
					break
				}
			}
			if ok {
				verifiedWriter[fd] = true
				changed = true
			}
		}
	}

	for _, fd := range decls {
		df := facts[fd]
		name := funcDisplayName(fd)
		switch {
		case df.ann.Writer && df.ann.Snapshot:
			pass.Reportf(fd.Pos(), "%s is annotated both tglint:writer and tglint:snapshot — a function is one or the other", name)
		case df.ann.Writer:
			if !verifiedWriter[fd] {
				pass.Reportf(fd.Pos(), "tglint:writer on %s is not verified: the function neither acquires a writer mutex (.mu.Lock()) nor is called exclusively from verified writer functions", name)
			}
		case df.ann.Snapshot:
			if !df.snapshotLoad {
				pass.Reportf(fd.Pos(), "tglint:snapshot on %s is not verified: no atomic Load of a published counter (tailN/posList state) in its body", name)
			}
			if len(df.mutates) > 0 {
				pass.Reportf(fd.Pos(), "tglint:snapshot %s mutates writer-owned state (%s) — snapshot functions are read-only", name, strings.Join(df.mutates, ", "))
			}
		default:
			for _, acc := range df.accesses {
				pass.Reportf(acc.pos, "%s touches writer-owned %s outside a tglint:writer/tglint:snapshot function (generation-snapshot invariant: tail storage and published counters are valid only under the writer mutex or through a captured view)", name, acc.field)
			}
		}
		for _, pos := range df.curStore {
			if !df.ann.Writer || !verifiedWriter[fd] {
				pass.Reportf(pos, "%s publishes Live.cur outside a verified tglint:writer function (only mutex-holding writers may publish a generation)", name)
			}
		}
		for _, pos := range df.curMisuse {
			pass.Reportf(pos, "%s accesses Live.cur directly — the published-generation pointer may only be touched through its atomic Load/Store/CompareAndSwap methods", name)
		}
	}
}
