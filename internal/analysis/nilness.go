package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is a stdlib-only lite of the x/tools nilness pass: inside a
// branch whose condition just established a value to be nil, any use that
// must dereference it (field access through a pointer, calling it as a
// function, a method call) is a guaranteed panic. The heavyweight stock
// passes ride in via the `go vet` run cmd/tglint bundles; this one is
// reimplemented because it is not in vet's default set.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc: `guaranteed nil dereference:
inside an if x == nil branch, a field access, call, or method call on x
panics unconditionally. (Lite port of x/tools nilness.)`,
	Run: runNilness,
}

func runNilness(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				return true
			}
			cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
			if !ok || cond.Op != token.EQL {
				return true
			}
			// Normalize to "x == nil" with x a plain identifier of a type
			// where dereference/call panics: pointer, func, interface, map
			// access is fine, slices index-panic anyway — keep to the
			// must-panic shapes.
			var id *ast.Ident
			if isNilIdent(pkg.Info, cond.Y) {
				id, _ = ast.Unparen(cond.X).(*ast.Ident)
			} else if isNilIdent(pkg.Info, cond.X) {
				id, _ = ast.Unparen(cond.Y).(*ast.Ident)
			}
			if id == nil {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			switch pkg.Info.TypeOf(id).Underlying().(type) {
			case *types.Pointer, *types.Signature, *types.Interface:
			default:
				return true
			}

			// Walk the then-branch in source order; stop at any reassignment
			// of x (including &x escapes, conservatively via unary &).
			stopped := false
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				if stopped {
					return false
				}
				switch m := m.(type) {
				case *ast.AssignStmt:
					for _, lhs := range m.Lhs {
						if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok && pkg.Info.Uses[lid] == obj {
							stopped = true
							return false
						}
					}
				case *ast.UnaryExpr:
					if m.Op == token.AND {
						if uid, ok := ast.Unparen(m.X).(*ast.Ident); ok && pkg.Info.Uses[uid] == obj {
							stopped = true
							return false
						}
					}
				case *ast.SelectorExpr:
					x, ok := ast.Unparen(m.X).(*ast.Ident)
					if !ok || pkg.Info.Uses[x] != obj {
						return true
					}
					if s, ok := pkg.Info.Selections[m]; ok {
						_, ptrRecv := s.Recv().Underlying().(*types.Pointer)
						_, ifaceRecv := s.Recv().Underlying().(*types.Interface)
						if (s.Kind() == types.FieldVal && ptrRecv) || (s.Kind() == types.MethodVal && (ifaceRecv || ptrRecvDerefs(s))) {
							pass.Reportf(m.Pos(), "%s.%s dereferences %s, established nil by the enclosing condition — guaranteed panic", x.Name, m.Sel.Name, x.Name)
						}
					}
				case *ast.CallExpr:
					if fid, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && pkg.Info.Uses[fid] == obj {
						pass.Reportf(m.Pos(), "calling %s, established nil by the enclosing condition — guaranteed panic", fid.Name)
					}
				}
				return true
			})
			return true
		})
	}
}

// ptrRecvDerefs reports whether a method value on a nil pointer receiver
// must dereference: true only for value-receiver methods promoted through a
// pointer (the implicit deref panics); pointer-receiver methods on a nil
// pointer are legal to call.
func ptrRecvDerefs(s *types.Selection) bool {
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, calleeWantsPtr := sig.Recv().Type().(*types.Pointer)
	_, haveptr := s.Recv().Underlying().(*types.Pointer)
	return haveptr && !calleeWantsPtr
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
