package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PosChecked enforces the int32 position-space budget of internal/search:
// global edge positions are int32, capped by Append's ErrPositionsExhausted
// check, and arithmetic that could silently leave the space must flow
// through the checked helpers in pos.go (addPos, pos32) that panic instead
// of wrapping a corrupt position into a posList.
var PosChecked = &Analyzer{
	Name: "poschecked",
	Doc: `int32 position arithmetic flows through checked helpers (internal/search):
raw int32 additions and int32(...) conversions of arithmetic expressions can
wrap past the 2^31-1 position budget; use addPos/pos32 from pos.go, which
panic on overflow. Subtraction of in-space positions is exempt.`,
	Run: runPosChecked,
}

func runPosChecked(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name != "search" {
		return
	}

	isInt32 := func(e ast.Expr) bool {
		t := pkg.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Int32
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.Value != nil
	}
	isArith := func(e ast.Expr) (token.Token, bool) {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return 0, false
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.SHL:
			return be.Op, true
		}
		return 0, false
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				// Overflow-capable int32 arithmetic outside the checked
				// helpers. SUB is exempt: the difference of two in-space
				// positions cannot leave the space.
				switch n.Op {
				case token.ADD, token.MUL, token.SHL:
					if isInt32(n) && !isConst(n) {
						pass.Reportf(n.Pos(), "unchecked int32 %s — position arithmetic can wrap past the 2^31-1 budget; use addPos/pos32 (pos.go), which panic instead of corrupting a posList", n.Op)
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isInt32(n.Lhs[0]) {
					pass.Reportf(n.Pos(), "unchecked int32 += — position arithmetic can wrap past the 2^31-1 budget; use addPos/pos32 (pos.go), which panic instead of corrupting a posList")
				}
			case *ast.CallExpr:
				// int32(x op y): the conversion truncates whatever the wider
				// arithmetic produced, so an out-of-budget intermediate slips
				// into position space silently.
				if len(n.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || id.Name != "int32" {
					return true
				}
				if _, isType := pkg.Info.Uses[id].(*types.TypeName); !isType {
					return true
				}
				if op, arith := isArith(n.Args[0]); arith && !isConst(n.Args[0]) {
					pass.Reportf(n.Pos(), "int32(...) conversion of a %s expression truncates out-of-budget intermediates into position space; compute with addPos/pos32 (pos.go) or convert the operands before the arithmetic", op)
				}
			}
			return true
		})
	}
}
