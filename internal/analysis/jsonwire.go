package analysis

import (
	"go/ast"
	"reflect"
	"regexp"
	"strings"
)

// lowerCamel matches the explicit wire-name grammar: a lowercase first
// word, camel humps after.
var lowerCamel = regexp.MustCompile(`^[a-z][a-zA-Z0-9]*$`)

// JSONWire enforces the serving tier's wire-compatibility rules
// (internal/serve): strict decoders and an explicit, stable field-name
// contract on every wire struct.
var JSONWire = &Analyzer{
	Name: "jsonwire",
	Doc: `wire-compatibility rules (internal/serve):
every json.Decoder calls DisallowUnknownFields before Decode (a typo'd
request field is a 400 naming the offender, never a silently unconstrained
query), json.Unmarshal is banned in favor of strict decoders, and every
wire struct tags all exported fields with explicit lowerCamel names.`,
	Run: runJSONWire,
}

func runJSONWire(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name != "serve" {
		return
	}

	// Decoder discipline, per scope: DisallowUnknownFields must precede the
	// first Decode, and json.Unmarshal never appears.
	for _, sc := range pkg.scopes() {
		if sc.Body == nil {
			continue
		}
		strictFrom := map[string]bool{} // receiver expr strings made strict
		inspectShallow(sc.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isCallTo(pkg.Info, call, "encoding/json", "Unmarshal") {
				pass.Reportf(call.Pos(), "%s uses json.Unmarshal — the serving tier decodes through json.Decoder with DisallowUnknownFields so unknown request fields fail loudly (wire-compatibility invariant)", sc.Name)
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !namedIn(pkg.Info.TypeOf(sel.X), "encoding/json", "Decoder") {
				return true
			}
			key := exprKey(sel.X)
			switch sel.Sel.Name {
			case "DisallowUnknownFields":
				strictFrom[key] = true
			case "Decode":
				if !strictFrom[key] {
					pass.Reportf(call.Pos(), "%s calls Decode on a json.Decoder without DisallowUnknownFields — unknown wire fields must be a 400 naming the offender, not silently dropped (wire-compatibility invariant)", sc.Name)
				}
			}
			return true
		})
	}

	// Wire-struct tags: a struct with any json-tagged field is a wire
	// struct, and every exported field of a wire struct carries an explicit
	// lowerCamel json name.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				type fieldTag struct {
					field *ast.Field
					name  string
					tag   string // json tag value, "" if absent
				}
				var fields []fieldTag
				isWire := false
				for _, field := range st.Fields.List {
					tag := ""
					if field.Tag != nil {
						raw := strings.Trim(field.Tag.Value, "`")
						tag = reflect.StructTag(raw).Get("json")
						if tag != "" {
							isWire = true
						}
					}
					for _, name := range field.Names {
						fields = append(fields, fieldTag{field, name.Name, tag})
					}
					if len(field.Names) == 0 { // embedded
						fields = append(fields, fieldTag{field, "", tag})
					}
				}
				if !isWire {
					continue
				}
				for _, ft := range fields {
					if ft.name != "" && !ast.IsExported(ft.name) {
						continue
					}
					wireName := strings.Split(ft.tag, ",")[0]
					switch {
					case ft.tag == "":
						pass.Reportf(ft.field.Pos(), "wire struct %s: field %s has no json tag — wire structs name every exported field explicitly (the encoding/json default capitalized name is not a stable protocol contract)", ts.Name.Name, ft.name)
					case wireName == "-":
						// explicitly excluded from the wire: fine
					case !lowerCamel.MatchString(wireName):
						pass.Reportf(ft.field.Pos(), "wire struct %s: field %s has json name %q — wire names are explicit lowerCamel identifiers", ts.Name.Name, ft.name, wireName)
					}
				}
			}
		}
	}
}

// exprKey renders a receiver expression for strict-decoder matching. Chains
// of method values on the same receiver hash to the same key.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	default:
		return "?"
	}
}
