// Package analysis implements tglint, the repo's static-analysis gate: a
// small go/analysis-style framework plus the custom analyzers that
// machine-check the concurrency and semantics invariants the engine's
// correctness rests on. The suite is driven by cmd/tglint (which also runs
// the stock `go vet` passes — copylocks, lostcancel, and friends — so one
// command is the whole static gate) and by the fixture tests in this
// package; the smoke test asserts the suite runs clean on the real tree,
// so the gate cannot silently rot.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, diagnostics, analysistest-style fixture runs) but is
// rebuilt on the standard library alone: the repo vendors no dependencies,
// so packages are loaded with `go list -e -deps -export -json` and
// type-checked from source against the gc export data of their
// dependencies. Porting an analyzer to the upstream API is mechanical.
//
// # Invariant catalog
//
// These are the hand-kept rules earlier PRs established by convention and
// differential tests; each analyzer turns one of them into a machine check.
// The generation-snapshot model itself is documented at length in
// internal/search/live.go's file comment and the README's "Live engines"
// and "Sharded multi-writer ingestion" sections.
//
// genaccess — RCU generation-snapshot access discipline (internal/search).
// All mutable live-engine state lives in immutable generation values
// published through Live.cur; the tail backing array (generation.tailArr)
// is revealed by an atomic published length (generation.tailN), and each
// posList's storage (n, arr) follows the same single-writer
// publish-after-write protocol, as does the incremental retained-bytes
// counter (Live.retained) that makes Stats O(1). Reading or writing that
// state is legal only
// (a) from a function holding the writer mutex, declared with a
// `// tglint:writer` annotation that the analyzer verifies against an
// actual .mu.Lock() acquisition (or against the function being called
// exclusively from verified writers), or (b) from a snapshot-capture
// function declared `// tglint:snapshot`, verified to load a published
// atomic counter and to mutate nothing. Live.cur itself may only be touched
// through its atomic Load/Store/CompareAndSwap methods, Store being
// writer-only.
//
// atomiccapture — the published-length capture protocol (everywhere).
// A reader of an atomically published length (generation.tailN, posList.n,
// posList.arr, ...) must load it exactly once per function and bind it to a
// local; a second load of the same counter in one function can observe a
// newer value than the first — the exact torn-read bug the genView capture
// in live.go exists to prevent. The analyzer flags any function that loads
// the same atomic field twice.
//
// poschecked — the int32 position-space budget (internal/search).
// Global edge positions are int32 and capped at 2^31-1, enforced by Append
// returning ErrPositionsExhausted before the space can wrap. Arithmetic
// that could silently leave the space is banned: additions whose static
// type is int32 and int32(...) conversions of arithmetic expressions must
// flow through the checked helpers in pos.go (addPos, pos32), which panic
// on overflow instead of wrapping a position into a posList. Subtractions
// are exempt (the difference of two in-space positions cannot leave the
// space).
//
// ctxfirst — context-first cooperative cancellation (facade,
// internal/{search,miner,serve}). Functions taking a context.Context take
// it as the first parameter; library code never calls context.Background()
// — except main packages, tests, and the recognized compatibility-wrapper
// idiom (a one- or two-statement function delegating to its *Context
// variant); and an exported function that loops over seeds, candidates, or
// shards while calling context-taking functions must itself accept a
// context.
//
// jsonwire — the serving tier's wire-compatibility rules (internal/serve).
// Every JSON decoder calls DisallowUnknownFields before Decode (a typo'd
// field must be a 400 naming the offender, never a silently unconstrained
// query — TestServeRejectsUnknownAndInvalidConstraintFields), json.Unmarshal
// is banned in favor of strict decoders, and every wire struct (any struct
// with a json-tagged field) tags all exported fields with explicit
// lowerCamel names (the stable protocol contract
// TestLiveStatsJSONRoundTrip pins for LiveStats).
//
// nilness — a stdlib-only lite of the x/tools nilness pass: flags uses that
// must panic on a value just established to be nil (field access through a
// nil pointer, calling a nil func, method calls on a nil interface). The
// full stock passes (copylocks, lostcancel, ...) come from the `go vet` run
// cmd/tglint bundles.
//
// # Annotations
//
// Three comment directives, written in a declaration's doc comment:
//
//	// tglint:writer
//	// tglint:snapshot
//	// tglint:ignore <analyzer> <reason>
//
// writer/snapshot are genaccess opt-ins and are verified (see above); an
// unverifiable annotation is itself a diagnostic. ignore suppresses one
// analyzer's diagnostics inside the annotated declaration and requires a
// reason; a malformed directive or an unknown analyzer name is a
// diagnostic, so annotations cannot rot either.
package analysis
