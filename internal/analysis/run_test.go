package analysis

// Fixture tests in the analysistest style: each analyzer runs over a
// miniature package under testdata/src/<analyzer>/, and `// want "regex"`
// comments on the offending lines state the expected diagnostics — every
// diagnostic must be wanted, every want must be hit. The smoke test at the
// bottom runs the whole suite over the real tree and requires it clean,
// which is what keeps the annotations in internal/{search,miner,serve}
// honest.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

func expectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					exps = append(exps, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return exps
}

// runFixture checks one analyzer against its fixture package.
func runFixture(t *testing.T, fixture, analyzer string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("no analyzer %q", analyzer)
	}
	exps := expectations(t, pkg)
	for _, d := range runOne(pkg, a) {
		matched := false
		for _, e := range exps {
			if !e.hit && e.file == filepath.Base(d.Pos.Filename) && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range exps {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func TestGenAccessFixture(t *testing.T)     { runFixture(t, "genaccess", "genaccess") }
func TestAtomicCaptureFixture(t *testing.T) { runFixture(t, "atomiccapture", "atomiccapture") }
func TestPosCheckedFixture(t *testing.T)    { runFixture(t, "poschecked", "poschecked") }
func TestCtxFirstFixture(t *testing.T)      { runFixture(t, "ctxfirst", "ctxfirst") }
func TestJSONWireFixture(t *testing.T)      { runFixture(t, "jsonwire", "jsonwire") }
func TestNilnessFixture(t *testing.T)       { runFixture(t, "nilness", "nilness") }

// TestDirectiveValidation checks the annotation layer itself: malformed or
// unknown directives are diagnostics (they anchor to the comment line,
// where a want comment cannot sit, so this test matches by message).
func TestDirectiveValidation(t *testing.T) {
	pkg := loadFixture(t, "directives")
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	diags := checkDirectives(pkg, known)
	wants := []string{
		`unknown tglint directive "frobnicate"`,
		"needs an analyzer name",
		`unknown analyzer "nosuchanalyzer"`,
		"needs a reason",
		"applies only to function declarations",
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q in %v", w, diags)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d directive diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
}

// TestSuiteCleanOnTree is the gate behind the gate: the full suite (custom
// analyzers plus directive validation) must be clean on the real tree, so
// the annotations and checked helpers in the engine packages cannot rot
// without a test failure.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, d := range RunAll(pkgs, All) {
		t.Errorf("tree is not tglint-clean: %s", d)
	}
}
