package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicCapture enforces the published-length capture protocol: a function
// reads any given atomic counter at most once, binding the value to a
// local, so every index derived from the length refers to the same
// publication point. Two loads of generation.tailN in one reader can
// straddle a concurrent Append and tear the view the genView capture in
// internal/search/live.go exists to make impossible.
var AtomicCapture = &Analyzer{
	Name: "atomiccapture",
	Doc: `published lengths are captured exactly once per function:
a second atomic Load of the same counter can observe a newer publication
than the first, tearing the reader's view. Capture once, pass the local.`,
	Run: runAtomicCapture,
}

func runAtomicCapture(pass *Pass) {
	pkg := pass.Pkg
	for _, sc := range pkg.scopes() {
		if sc.Body == nil {
			continue
		}
		// Function literals are separate scopes: a closure captures its own
		// view, and attributing its loads to the enclosing function would
		// double-count.
		seen := map[string]bool{}
		inspectShallow(sc.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Load" || !isAtomicType(pkg.Info.TypeOf(sel.X)) {
				return true
			}
			key := types.ExprString(sel.X)
			if seen[key] {
				pass.Reportf(call.Pos(), "%s loads %s again — published lengths are captured exactly once per function (a second load can observe a newer publication and tear the view)", sc.Name, key)
				return true
			}
			seen[key] = true
			return true
		})
	}
}
