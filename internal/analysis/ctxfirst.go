package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxGatedPkgs are the packages whose exported looping entry points must
// accept a context (rule C): the facade and the engine/serving tiers whose
// loops iterate seeds, candidates, shards, or requests.
var ctxGatedPkgs = map[string]bool{
	"tgminer": true, "search": true, "miner": true, "serve": true,
}

// CtxFirst enforces the context-first cooperative-cancellation conventions.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: `context-first cancellation discipline:
(A) a context.Context parameter comes first; (B) library code never calls
context.Background() — mains, tests, and one-statement compatibility
wrappers delegating to a *Context variant excepted; (C) an exported looping
function that calls context-taking callees itself accepts a context.`,
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return
	}

	// ctxParamIndex returns the position of the first context.Context
	// parameter, or -1.
	ctxParamIndex := func(ft *ast.FuncType) int {
		if ft.Params == nil {
			return -1
		}
		i := 0
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(pkg.Info.TypeOf(field.Type)) {
				return i
			}
			i += n
		}
		return -1
	}

	// isCompatWrapper recognizes the sanctioned Background() site: a one- or
	// two-statement function whose Background() feeds the first argument of
	// a call to its *Context-suffixed variant (Mine → MineContext).
	isCompatWrapper := func(sc *funcScope) bool {
		if sc.Lit != nil || sc.Decl == nil || sc.Body == nil || len(sc.Body.List) > 2 {
			return false
		}
		found := false
		inspectShallow(sc.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var callee string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee = fun.Name
			case *ast.SelectorExpr:
				callee = fun.Sel.Name
			default:
				return true
			}
			if !strings.HasSuffix(callee, "Context") {
				return true
			}
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && isCallTo(pkg.Info, arg, "context", "Background") {
				found = true
				return false
			}
			return true
		})
		return found
	}

	for _, sc := range pkg.scopes() {
		if sc.Body == nil {
			continue
		}

		// Rule A: context parameter, if any, comes first.
		if idx := ctxParamIndex(sc.Type); idx > 0 {
			pass.Reportf(sc.Type.Pos(), "%s takes context.Context at parameter %d — the context comes first (context-first convention)", sc.Name, idx)
		}

		// Rule B: no context.Background() in library code.
		wrapper := isCompatWrapper(sc)
		inspectShallow(sc.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCallTo(pkg.Info, call, "context", "Background") {
				return true
			}
			if wrapper {
				return true
			}
			pass.Reportf(call.Pos(), "%s calls context.Background() in library code — thread the caller's context instead (only mains, tests, and *Context compatibility wrappers may mint a root context)", sc.Name)
			return true
		})

		// Rule C: an exported looping function whose loop body calls
		// context-taking callees must itself accept a context, so the loop
		// stays cancelable.
		if !ctxGatedPkgs[pkg.Name] || !sc.exported() || ctxParamIndex(sc.Type) >= 0 {
			continue
		}
		reported := false
		inspectShallow(sc.Body, func(n ast.Node) bool {
			if reported {
				return false
			}
			var loopBody *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				loopBody = n.Body
			case *ast.RangeStmt:
				loopBody = n.Body
			default:
				return true
			}
			inspectShallow(loopBody, func(m ast.Node) bool {
				if reported {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i := 0; i < sig.Params().Len(); i++ {
					if isContextType(sig.Params().At(i).Type()) {
						pass.Reportf(sc.Type.Pos(), "%s loops over context-taking calls (%s) without accepting a context — exported looping entry points must stay cancelable (context-first convention)", sc.Name, fn.Name())
						reported = true
						return false
					}
				}
				return true
			})
			return true
		})
	}
}
