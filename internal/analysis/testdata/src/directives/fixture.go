// Fixture for tglint directive validation (checked by code in
// directives_test.go rather than want comments: directive diagnostics
// anchor to the comment line itself, where a want comment cannot sit).
package directives

// tglint:frobnicate
func unknownVerb() {}

// tglint:ignore
func ignoreMissingAnalyzer() {}

// tglint:ignore nosuchanalyzer because reasons
func ignoreUnknownAnalyzer() {}

// tglint:ignore genaccess
func ignoreMissingReason() {}

// tglint:writer
var notAFunction int

// tglint:ignore ctxfirst a well-formed ignore is accepted silently
func wellFormed() {}

func use() {
	unknownVerb()
	ignoreMissingAnalyzer()
	ignoreUnknownAnalyzer()
	ignoreMissingReason()
	wellFormed()
	notAFunction++
}
