// Fixture for the nilness-lite analyzer: uses that must panic on a value
// the enclosing condition just established to be nil.
package nilcheck

type node struct {
	next *node
	val  int
}

func derefNil(n *node) int {
	if n == nil {
		return n.val // want "n.val dereferences n, established nil"
	}
	return n.val
}

func derefNilReversed(n *node) int {
	if nil == n {
		return n.val // want "n.val dereferences n, established nil"
	}
	return 0
}

func callNil(f func() int) int {
	if f == nil {
		return f() // want "calling f, established nil"
	}
	return f()
}

func reassignedIsFine(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

func inequalityIsFine(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}
