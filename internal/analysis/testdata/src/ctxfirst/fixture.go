// Fixture for the ctxfirst analyzer: context-first parameters, no
// context.Background() in library code, and exported loops stay cancelable.
package miner

import "context"

var todo = context.TODO()

func Good(ctx context.Context, name string) error {
	_ = name
	<-ctx.Done()
	return nil
}

func CtxSecond(name string, ctx context.Context) error { // want "takes context.Context at parameter 1"
	_ = name
	<-ctx.Done()
	return nil
}

func rootInLibrary() context.Context {
	return context.Background() // want "calls context.Background\(\) in library code"
}

// The sanctioned compatibility-wrapper idiom: one statement delegating to
// the *Context variant.

func Mine(n int) error { return MineContext(context.Background(), n) }

func MineContext(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// An exported function looping over context-taking calls must itself
// accept a context.

func MineAll(seeds []int) { // want "loops over context-taking calls \(MineContext\) without accepting a context"
	for _, s := range seeds {
		_ = MineContext(todo, s)
	}
}

func MineAllContext(ctx context.Context, seeds []int) {
	for _, s := range seeds {
		_ = MineContext(ctx, s)
	}
}

func mineAllUnexported(seeds []int) {
	for _, s := range seeds {
		_ = MineContext(todo, s)
	}
}

// tglint:ignore ctxfirst fixture: legacy root kept for wire compatibility
func LegacyRoot() context.Context {
	return context.Background()
}
