// Fixture for the poschecked analyzer: int32 position arithmetic flows
// through checked helpers. The helpers are replicated here because the
// fixture package is its own miniature "search".
package search

import "math"

// tglint:ignore poschecked fixture twin of the checked helper
func addPos(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s < 0 || s > math.MaxInt32 {
		panic("overflow")
	}
	return int32(s)
}

// tglint:ignore poschecked fixture twin of the checked helper
func pos32(n int) int32 {
	if n < 0 || n > math.MaxInt32 {
		panic("out of range")
	}
	return int32(n)
}

func rawAdd(a, b int32) int32 {
	return a + b // want "unchecked int32 \+"
}

func rawAddAssign(a, b int32) int32 {
	a += b // want "unchecked int32 \+="
	return a
}

func rawMul(a, b int32) int32 {
	return a * b // want "unchecked int32 \*"
}

func truncatingConversion(n int) int32 {
	return int32(n + 1) // want "conversion of a \+ expression truncates"
}

func checkedAdd(a, b int32) int32 {
	return addPos(a, b)
}

func checkedConversion(n int) int32 {
	return pos32(n + 1)
}

func subIsExempt(a, b int32) int32 {
	return a - b
}

func constantsAreExempt() int32 {
	const k = 10
	return k + 21
}

func wideArithmeticIsFine(a, b int64) int64 {
	return a + b
}
