// Fixture for the atomiccapture analyzer: published lengths are loaded
// exactly once per function.
package capture

import "sync/atomic"

type counter struct{ n atomic.Int32 }

func single(c *counter) int32 {
	return c.n.Load()
}

func double(c *counter) (int32, int32) {
	a := c.n.Load()
	b := c.n.Load() // want "loads c.n again"
	return a, b
}

func distinctReceivers(a, b *counter) int32 {
	return a.n.Load() + b.n.Load()
}

func closureIsItsOwnScope(c *counter) func() int32 {
	n := c.n.Load()
	_ = n
	return func() int32 { return c.n.Load() }
}

func doubleInsideClosure(c *counter) func() int32 {
	return func() int32 {
		a := c.n.Load()
		return a + c.n.Load() // want "loads c.n again"
	}
}

// tglint:ignore atomiccapture fixture: a CAS retry loop re-reads by design
func suppressed(c *counter) int32 {
	_ = c.n.Load()
	return c.n.Load()
}
