// Fixture for the jsonwire analyzer: strict decoders and explicit
// lowerCamel wire names.
package serve

import (
	"encoding/json"
	"io"
)

type goodWire struct {
	Name    string `json:"name"`
	HopSpan int    `json:"hopSpan,omitempty"`
	Skipped string `json:"-"`
	hidden  int
}

type badWire struct {
	Name  string `json:"Name"` // want "has json name \"Name\""
	Count int    // want "field Count has no json tag"
}

type notWire struct {
	Name string
	N    int
}

func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func decodeLoose(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	return dec.Decode(v) // want "without DisallowUnknownFields"
}

func unmarshalBanned(b []byte, v any) error {
	return json.Unmarshal(b, v) // want "uses json.Unmarshal"
}

// tglint:ignore jsonwire fixture: trusted internal blob, not wire input
func unmarshalSuppressed(b []byte, v any) error {
	return json.Unmarshal(b, v)
}

func use(r io.Reader, b []byte) {
	var g goodWire
	var bad badWire
	var n notWire
	_ = decodeStrict(r, &g)
	_ = decodeLoose(r, &bad)
	_ = unmarshalBanned(b, &n)
	_ = unmarshalSuppressed(b, &n)
	_ = g.hidden
}
