// Fixture for the genaccess analyzer: miniature twins of the live-engine
// structs whose fields the analyzer protects by (type, field) name.
package search

import (
	"sync"
	"sync/atomic"
)

type generation struct {
	tailArr []int
	tailN   *atomic.Int32
}

type posList struct {
	n   atomic.Int32
	arr atomic.Pointer[[]int32]
}

type Live struct {
	mu       sync.Mutex
	cur      atomic.Pointer[generation]
	retained atomic.Int64
}

// Unannotated functions may not touch protected state at all.

func rawRead(g *generation) int {
	return len(g.tailArr) // want "touches writer-owned generation.tailArr"
}

func rawCounter(p *posList) int32 {
	return p.n.Load() // want "touches writer-owned posList.n"
}

// A verified writer: annotation plus a real mutex acquisition.
//
// tglint:writer
func (l *Live) append(g *generation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	g.tailArr = append(g.tailArr, 1)
	writerHelper(g)
	l.cur.Store(g)
}

// A helper called only from verified writers verifies transitively.
//
// tglint:writer
func writerHelper(g *generation) {
	g.tailN.Store(int32(len(g.tailArr)))
}

// An annotation with neither a lock nor verified callers is itself flagged.
//
// tglint:writer
func bogusWriter(g *generation) { // want "tglint:writer on bogusWriter is not verified"
	g.tailArr = nil
}

// A verified snapshot: loads a published counter, mutates nothing.
//
// tglint:snapshot
func capture(g *generation) []int {
	n := g.tailN.Load()
	return g.tailArr[:n:n]
}

// A snapshot with no atomic load captures nothing.
//
// tglint:snapshot
func bogusSnapshot(g *generation) []int { // want "tglint:snapshot on bogusSnapshot is not verified"
	return g.tailArr // the raw read is subsumed by the annotation failure
}

// A snapshot that mutates is not a snapshot.
//
// tglint:snapshot
func mutatingSnapshot(p *posList) int32 { // want "mutates writer-owned state"
	n := p.n.Load()
	p.n.Store(n)
	return n
}

// A function is a writer or a snapshot, never both.
//
// tglint:writer
// tglint:snapshot
func confused(l *Live) { // want "annotated both tglint:writer and tglint:snapshot"
	l.mu.Lock()
	defer l.mu.Unlock()
}

// Live.cur: atomic Load is legal anywhere, Store is writer-only, and the
// pointer itself never leaks.

func readCur(l *Live) *generation {
	return l.cur.Load()
}

func publishCur(l *Live, g *generation) {
	l.cur.Store(g) // want "publishes Live.cur outside a verified tglint:writer function"
}

func leakCur(l *Live) any {
	return &l.cur // want "accesses Live.cur directly"
}

// tglint:ignore genaccess fixture: capacity accounting over immutable backing storage
func suppressed(g *generation) int {
	return cap(g.tailArr)
}

// Live.retained: the incremental retained-bytes counter is writer-owned
// like the posList counters — writers fold deltas in under the mutex,
// snapshot functions may Load it, anything else is flagged.

// tglint:writer
func (l *Live) account(d int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retained.Add(d)
}

// tglint:snapshot
func statsCapture(l *Live) int64 {
	return l.retained.Load()
}

func rawRetained(l *Live) int64 {
	return l.retained.Load() // want "touches writer-owned Live.retained"
}

func bumpRetained(l *Live) {
	l.retained.Add(1) // want "touches writer-owned Live.retained"
}
