// Package sysgen synthesizes system-call activity data shaped like the
// TGMiner paper's evaluation corpus (Section 6.1, Table 1, Appendix L): 12
// security-relevant behaviors, each a temporal graph of process/file/socket
// interactions, plus background activity, plus a 7-day-style test timeline
// with ground-truth behavior intervals.
//
// The paper collected real syscall logs from a closed environment; we have
// no such traces, so this package generates seeded synthetic equivalents
// that preserve the properties the evaluation exercises:
//
//   - every behavior has an invariant temporal footprint (its discriminative
//     pattern) executed in a fixed edge order;
//   - sibling behaviors (scp-download/ssh-login, gcc/g++, ftpd/sshd,
//     apt-get-update/apt-get-install) share footprint vocabulary and
//     non-temporal structure but differ in temporal order, which is what
//     makes non-temporal baselines lose precision in Table 2;
//   - sibling vocabulary cross-pollinates as unordered noise, so label-set
//     and collapsed-graph queries fire on the wrong behavior while temporal
//     queries do not;
//   - background graphs occasionally embed order-shuffled footprint decoys
//     and label scatters, the noise sources the paper attributes to real
//     desktop workloads;
//   - per-behavior node/edge/label counts follow Table 1, scaled by
//     Config.Scale.
package sysgen

// Step is one footprint edge: source label name -> destination label name,
// in footprint order.
type Step struct {
	Src string
	Dst string
}

// Spec describes one behavior's generation parameters. Nodes, Edges and
// Labels are the Table 1 targets at Scale = 1.0.
type Spec struct {
	Name   string
	Nodes  int
	Edges  int
	Labels int
	Class  string // "small", "medium", "large"
	// Footprint is the invariant discriminative edge sequence.
	Footprint []Step
	// Siblings name behaviors whose vocabulary leaks into this behavior's
	// noise edges (cross-pollination).
	Siblings []string
}

// CommonLabels are shared by every behavior and the background: the shared
// libraries and system files every process touches. They are deliberately
// non-discriminative.
var CommonLabels = []string{
	"file:/lib/x86_64/libc.so.6",
	"file:/etc/ld.so.cache",
	"file:/lib/x86_64/libpthread.so.0",
	"file:/usr/lib/locale/locale-archive",
	"file:/etc/nsswitch.conf",
	"file:/etc/passwd",
	"file:/proc/meminfo",
	"file:/proc/stat",
	"file:/dev/null",
	"file:/tmp/.cache",
	"proc:systemd",
	"proc:dbus-daemon",
	"file:/var/log/syslog",
	"sock:unix:/run/systemd",
	"file:/etc/localtime",
	"file:/usr/share/zoneinfo/UTC",
}

// Specs returns the 12 behavior specifications matching Table 1. The slice
// is freshly allocated; callers may modify it.
func Specs() []Spec {
	return []Spec{
		{
			Name: "bzip2-decompress", Nodes: 11, Edges: 12, Labels: 15, Class: "small",
			Footprint: []Step{
				{"proc:shell", "proc:bzip2"},
				{"proc:bzip2", "file:/etc/ld.so.cache"},
				{"proc:bzip2", "file:archive.tar.bz2"},
				{"file:archive.tar.bz2", "proc:bzip2"},
				{"proc:bzip2", "file:archive.tar"},
				{"proc:bzip2", "proc:shell"},
			},
			Siblings: []string{"gzip-decompress"},
		},
		{
			Name: "gzip-decompress", Nodes: 10, Edges: 12, Labels: 7, Class: "small",
			Footprint: []Step{
				{"proc:shell", "proc:gzip"},
				{"proc:gzip", "file:/etc/ld.so.cache"},
				{"proc:gzip", "file:archive.tar.gz"},
				{"file:archive.tar.gz", "proc:gzip"},
				{"proc:gzip", "file:archive.tar"},
				{"proc:gzip", "proc:shell"},
			},
			Siblings: []string{"bzip2-decompress"},
		},
		{
			Name: "wget-download", Nodes: 33, Edges: 40, Labels: 92, Class: "small",
			Footprint: []Step{
				{"proc:shell", "proc:wget"},
				{"proc:wget", "file:/etc/resolv.conf"},
				{"proc:wget", "sock:udp:53"},
				{"sock:udp:53", "proc:wget"},
				{"proc:wget", "sock:tcp:80"},
				{"sock:tcp:80", "proc:wget"},
				{"proc:wget", "file:download.part"},
				{"proc:wget", "file:download"},
				{"proc:wget", "file:.wget-hsts"},
			},
			Siblings: []string{"ftp-download"},
		},
		{
			Name: "ftp-download", Nodes: 30, Edges: 61, Labels: 39, Class: "small",
			Footprint: []Step{
				{"proc:shell", "proc:ftp"},
				{"proc:ftp", "file:/etc/resolv.conf"},
				{"proc:ftp", "sock:tcp:21"},
				{"sock:tcp:21", "proc:ftp"},
				{"proc:ftp", "sock:tcp:20"},
				{"sock:tcp:20", "proc:ftp"},
				{"proc:ftp", "file:download"},
				{"proc:ftp", "file:.netrc"},
			},
			Siblings: []string{"wget-download"},
		},
		{
			// scp-download and ssh-login share the ssh client vocabulary and
			// collapsed structure; only temporal order separates them
			// (Table 2: NodeSet 13.8% / Ntemp 59.4% / TGMiner 100%).
			Name: "scp-download", Nodes: 50, Edges: 106, Labels: 68, Class: "medium",
			Footprint: []Step{
				{"proc:shell", "proc:ssh-client"},
				{"proc:ssh-client", "file:/etc/ssh/ssh_config"},
				{"proc:ssh-client", "file:~/.ssh/known_hosts"},
				{"proc:ssh-client", "sock:tcp:22"},
				{"sock:tcp:22", "proc:ssh-client"},
				{"proc:ssh-client", "file:~/.ssh/id_rsa"},
				{"sock:tcp:22", "proc:ssh-client"},
				{"proc:ssh-client", "file:download"},
				{"proc:ssh-client", "proc:shell"},
			},
			Siblings: []string{"ssh-login"},
		},
		{
			Name: "gcc-compile", Nodes: 65, Edges: 122, Labels: 94, Class: "medium",
			Footprint: []Step{
				{"proc:shell", "proc:cc-driver"},
				{"proc:cc-driver", "file:main.c"},
				{"proc:cc-driver", "proc:cc1"},
				{"proc:cc1", "file:/usr/include/stdio.h"},
				{"proc:cc1", "file:/tmp/cc.s"},
				{"proc:cc-driver", "proc:as"},
				{"proc:as", "file:/tmp/cc.o"},
				{"proc:cc-driver", "proc:collect2"},
				{"proc:collect2", "file:/usr/lib/crt1.o"},
				{"proc:collect2", "file:a.out"},
			},
			Siblings: []string{"g++-compile"},
		},
		{
			// g++ reorders the shared driver/as/collect2 steps and swaps the
			// front-end process.
			Name: "g++-compile", Nodes: 67, Edges: 117, Labels: 100, Class: "medium",
			Footprint: []Step{
				{"proc:shell", "proc:cc-driver"},
				{"proc:cc-driver", "proc:cc1plus"},
				{"proc:cc1plus", "file:main.cc"},
				{"proc:cc1plus", "file:/usr/include/iostream"},
				{"proc:cc1plus", "file:/tmp/cc.s"},
				{"proc:cc-driver", "proc:as"},
				{"proc:collect2", "file:/usr/lib/crt1.o"},
				{"proc:as", "file:/tmp/cc.o"},
				{"proc:cc-driver", "proc:collect2"},
				{"proc:collect2", "file:a.out"},
			},
			Siblings: []string{"gcc-compile"},
		},
		{
			Name: "ftpd-login", Nodes: 28, Edges: 103, Labels: 119, Class: "medium",
			Footprint: []Step{
				{"sock:tcp:21", "proc:ftpd"},
				{"proc:ftpd", "file:/etc/ftpusers"},
				{"proc:ftpd", "file:/etc/shadow"},
				{"proc:ftpd", "file:/etc/pam.d/common-auth"},
				{"proc:ftpd", "proc:ftpd-session"},
				{"proc:ftpd-session", "file:/var/log/wtmp"},
				{"proc:ftpd-session", "sock:tcp:21"},
			},
			Siblings: []string{"sshd-login"},
		},
		{
			// ssh-login is the client-side sibling of scp-download: same
			// vocabulary, different temporal order.
			Name: "ssh-login", Nodes: 66, Edges: 161, Labels: 94, Class: "medium",
			Footprint: []Step{
				{"proc:shell", "proc:ssh-client"},
				{"proc:ssh-client", "file:~/.ssh/known_hosts"},
				{"proc:ssh-client", "file:/etc/ssh/ssh_config"},
				{"proc:ssh-client", "file:~/.ssh/id_rsa"},
				{"proc:ssh-client", "sock:tcp:22"},
				{"sock:tcp:22", "proc:ssh-client"},
				{"proc:ssh-client", "file:/dev/tty"},
				{"file:/dev/tty", "proc:ssh-client"},
				{"sock:tcp:22", "proc:ssh-client"},
			},
			Siblings: []string{"scp-download"},
		},
		{
			// The paper's running example (Figure 1(c), Figure 10): the sshd
			// daemon accepting a login, forking the privilege-separated
			// child, authenticating, and granting a pty.
			Name: "sshd-login", Nodes: 281, Edges: 730, Labels: 269, Class: "large",
			Footprint: []Step{
				{"sock:tcp:22", "proc:sshd"},
				{"proc:sshd", "proc:sshd-net"},
				{"proc:sshd-net", "file:/etc/ssh/sshd_config"},
				{"proc:sshd-net", "file:/etc/shadow"},
				{"proc:sshd-net", "file:/etc/pam.d/common-auth"},
				{"proc:sshd-net", "proc:sshd"},
				{"proc:sshd", "proc:user-shell"},
				{"proc:user-shell", "file:/dev/ptmx"},
				{"proc:user-shell", "file:/var/log/wtmp"},
				{"proc:user-shell", "file:~/.profile"},
				{"proc:user-shell", "sock:tcp:22"},
			},
			Siblings: []string{"ftpd-login"},
		},
		{
			Name: "apt-get-update", Nodes: 209, Edges: 994, Labels: 203, Class: "large",
			Footprint: []Step{
				{"proc:shell", "proc:apt-get"},
				{"proc:apt-get", "file:/etc/apt/sources.list"},
				{"proc:apt-get", "proc:apt-methods-http"},
				{"proc:apt-methods-http", "sock:udp:53"},
				{"proc:apt-methods-http", "sock:tcp:80"},
				{"sock:tcp:80", "proc:apt-methods-http"},
				{"proc:apt-methods-http", "file:/var/lib/apt/lists/partial"},
				{"proc:apt-get", "file:/var/lib/apt/lists/Release"},
				{"proc:apt-get", "file:/var/cache/apt/pkgcache.bin"},
			},
			Siblings: []string{"apt-get-install"},
		},
		{
			// apt-get-install reorders the shared fetch steps and adds the
			// dpkg tail.
			Name: "apt-get-install", Nodes: 1006, Edges: 1879, Labels: 272, Class: "large",
			Footprint: []Step{
				{"proc:shell", "proc:apt-get"},
				{"proc:apt-get", "file:/var/cache/apt/pkgcache.bin"},
				{"proc:apt-get", "file:/etc/apt/sources.list"},
				{"proc:apt-get", "proc:apt-methods-http"},
				{"proc:apt-methods-http", "sock:tcp:80"},
				{"sock:tcp:80", "proc:apt-methods-http"},
				{"proc:apt-methods-http", "file:/var/cache/apt/archives/pkg.deb"},
				{"proc:apt-get", "proc:dpkg"},
				{"proc:dpkg", "file:/var/lib/dpkg/status"},
				{"proc:dpkg", "file:/var/lib/dpkg/info"},
				{"proc:dpkg", "file:/usr/bin/installed-binary"},
				{"proc:dpkg", "proc:dpkg-postinst"},
			},
			Siblings: []string{"apt-get-update"},
		},
	}
}

// BackgroundSpec matches Table 1's background row at Scale = 1.0.
type BackgroundSpec struct {
	Nodes  int
	Edges  int
	Labels int
}

// Background returns the Table 1 background parameters.
func Background() BackgroundSpec {
	return BackgroundSpec{Nodes: 172, Edges: 749, Labels: 9065}
}

// SpecByName returns the behavior spec with the given name, or false.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
