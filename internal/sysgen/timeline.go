package sysgen

import (
	"fmt"
	"math/rand"

	"tgminer/internal/tgraph"
)

// TimelineConfig controls test-data generation: a single long temporal graph
// with behavior instances embedded at known intervals into background
// activity (Appendix L's ordinary-desktop collection).
type TimelineConfig struct {
	// Instances is the number of embedded behavior instances (paper: 10,000).
	Instances int
	// Scale multiplies instance and background sizes, as in Config.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Behaviors restricts which behaviors are embedded (default: all 12).
	Behaviors []string
	// Corruption is the probability an embedded instance diverges from its
	// footprint (default 0.08); corrupted instances are the main source of
	// query false negatives, as in the paper's ~91% recall.
	Corruption float64
	// GapEdges is the expected number of background edges between
	// consecutive instances (default: scaled background size / 4).
	GapEdges int
	// Decoys toggles background decoy injection (default true through
	// DecoyProb below).
	DecoyProb float64
}

func (c TimelineConfig) normalize() TimelineConfig {
	if c.Instances <= 0 {
		c.Instances = 10000
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if len(c.Behaviors) == 0 {
		for _, s := range Specs() {
			c.Behaviors = append(c.Behaviors, s.Name)
		}
	}
	if c.Corruption == 0 {
		c.Corruption = 0.08
	}
	if c.GapEdges <= 0 {
		c.GapEdges = scaled(Background().Edges, c.Scale, 8) / 4
	}
	if c.DecoyProb == 0 {
		c.DecoyProb = 0.10
	}
	return c
}

// TruthInstance is one embedded behavior occurrence with its ground-truth
// interval (inclusive tick range).
type TruthInstance struct {
	Behavior  string
	Start     int64
	End       int64
	Corrupted bool
}

// Timeline is the generated test data: one large temporal graph, the
// ground-truth instance intervals, and the longest observed instance
// duration (the time window the paper's NodeSet baseline uses).
type Timeline struct {
	Graph  *tgraph.Graph
	Truth  []TruthInstance
	Window int64
	Config TimelineConfig
}

// GenerateTimeline builds the test timeline. Labels are interned into dict
// so test data is comparable with training data generated with the same
// dict.
func GenerateTimeline(cfg TimelineConfig, dict *tgraph.Dict) *Timeline {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	genCfg := Config{Scale: cfg.Scale, Seed: cfg.Seed}.normalize()

	var b tgraph.Builder
	tick := int64(0)
	tl := &Timeline{Config: cfg}

	// appendGraph copies a locally generated graph into the big builder,
	// remapping nodes and re-timestamping edges onto the global tick stream.
	appendGraph := func(g *tgraph.Graph) (start, end int64) {
		remap := make([]tgraph.NodeID, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			remap[v] = b.AddNode(g.LabelOf(tgraph.NodeID(v)))
		}
		start = tick
		for _, e := range g.Edges() {
			if err := b.AddEdge(remap[e.Src], remap[e.Dst], tick); err != nil {
				panic(err)
			}
			tick++
		}
		if tick == start {
			return start, start
		}
		return start, tick - 1
	}

	appendBackgroundBurst := func(edges int) {
		if edges <= 0 {
			return
		}
		sub := Config{Scale: cfg.Scale, Seed: cfg.Seed,
			ShuffledDecoyProb: cfg.DecoyProb, ScatterDecoyProb: cfg.DecoyProb}.normalize()
		g := backgroundBurst(rng, dict, sub, edges)
		appendGraph(g)
	}

	// Behaviors are embedded round-robin over a per-cycle shuffle so every
	// behavior receives ~Instances/len(Behaviors) occurrences even in small
	// timelines (the paper's 10,000-instance collection is balanced too).
	order := append([]string(nil), cfg.Behaviors...)
	for i := 0; i < cfg.Instances; i++ {
		if i%len(order) == 0 {
			rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
		appendBackgroundBurst(cfg.GapEdges/2 + rng.Intn(cfg.GapEdges+1))
		name := order[i%len(order)]
		spec, ok := SpecByName(name)
		if !ok {
			panic(fmt.Sprintf("sysgen: unknown behavior %q", name))
		}
		corrupted := rng.Float64() < cfg.Corruption
		inst := Instance(rng, dict, spec, genCfg, corrupted)
		start, end := appendGraph(inst)
		tl.Truth = append(tl.Truth, TruthInstance{Behavior: name, Start: start, End: end, Corrupted: corrupted})
		if d := end - start + 1; d > tl.Window {
			tl.Window = d
		}
	}
	appendBackgroundBurst(cfg.GapEdges)

	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	tl.Graph = g
	return tl
}

// backgroundBurst generates a background fragment with approximately the
// requested edge count.
func backgroundBurst(rng *rand.Rand, dict *tgraph.Dict, cfg Config, edges int) *tgraph.Graph {
	bg := Background()
	labelPool := scaled(bg.Labels, cfg.Scale, 40)
	var noise []event
	specs := Specs()
	if rng.Float64() < cfg.ShuffledDecoyProb {
		spec := specs[rng.Intn(len(specs))]
		block := append([]Step(nil), spec.Footprint...)
		rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		for _, s := range block {
			noise = append(noise, event{src: s.Src, dst: s.Dst})
		}
	}
	pick := func() string {
		r := rng.Float64()
		switch {
		case r < 0.70:
			return fmt.Sprintf("file:bg-%d", rng.Intn(labelPool))
		case r < 0.88:
			return CommonLabels[rng.Intn(len(CommonLabels))]
		default:
			return fmt.Sprintf("proc:bg-%d", rng.Intn(1+labelPool/8))
		}
	}
	for len(noise) < edges {
		src, dst := pick(), pick()
		if src == dst {
			continue
		}
		noise = append(noise, event{src: src, dst: dst})
	}
	return assemble(rng, dict, nil, noise, 0)
}
