package sysgen

import (
	"fmt"
	"math/rand"
	"sort"

	"tgminer/internal/tgraph"
)

// Config controls training-data generation.
type Config struct {
	// Scale multiplies the Table 1 node/edge targets (default 1.0).
	// Footprints are never scaled away.
	Scale float64
	// GraphsPerBehavior is the number of instances per behavior (paper: 100).
	GraphsPerBehavior int
	// BackgroundGraphs is the number of background graphs (paper: 10,000).
	BackgroundGraphs int
	// Seed drives all randomness; equal configs generate equal datasets.
	Seed int64
	// Behaviors restricts generation to the named behaviors (default: all 12).
	Behaviors []string
	// ShuffledDecoyProb is the probability that a background graph embeds an
	// order-shuffled copy of some behavior's footprint (default 0.08).
	ShuffledDecoyProb float64
	// ScatterDecoyProb is the probability that a background graph embeds a
	// behavior's footprint labels without its edges (default 0.10).
	ScatterDecoyProb float64
	// SiblingBlockProb is the probability that an instance embeds a
	// shuffled copy of a sibling behavior's footprint (default 0.45): the
	// cross-pollination that costs non-temporal baselines their precision.
	SiblingBlockProb float64
	// OrderedSiblingProb is the probability that the sibling block keeps its
	// original order (default 0.06), the residual confusion that keeps even
	// temporal queries slightly below 100% precision on apt-get-update-like
	// pairs.
	OrderedSiblingProb float64
}

func (c Config) normalize() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.GraphsPerBehavior <= 0 {
		c.GraphsPerBehavior = 100
	}
	if c.BackgroundGraphs < 0 {
		c.BackgroundGraphs = 0
	} else if c.BackgroundGraphs == 0 {
		c.BackgroundGraphs = 10000
	}
	if len(c.Behaviors) == 0 {
		for _, s := range Specs() {
			c.Behaviors = append(c.Behaviors, s.Name)
		}
	}
	if c.ShuffledDecoyProb == 0 {
		c.ShuffledDecoyProb = 0.08
	}
	if c.ScatterDecoyProb == 0 {
		c.ScatterDecoyProb = 0.10
	}
	if c.SiblingBlockProb == 0 {
		c.SiblingBlockProb = 0.45
	}
	if c.OrderedSiblingProb == 0 {
		c.OrderedSiblingProb = 0.06
	}
	return c
}

// BehaviorData is the training set of one behavior.
type BehaviorData struct {
	Spec   Spec
	Graphs []*tgraph.Graph
}

// Dataset is a complete training corpus: positive sets per behavior plus the
// shared background (negative) set, all interned in one Dict.
type Dataset struct {
	Dict       *tgraph.Dict
	Behaviors  []BehaviorData
	Background []*tgraph.Graph
	Config     Config
}

// Generate builds a training corpus. Deterministic in Config (including
// Seed).
func Generate(cfg Config) *Dataset {
	cfg = cfg.normalize()
	dict := tgraph.NewDict()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Dict: dict, Config: cfg}
	for _, name := range cfg.Behaviors {
		spec, ok := SpecByName(name)
		if !ok {
			panic(fmt.Sprintf("sysgen: unknown behavior %q", name))
		}
		bd := BehaviorData{Spec: spec}
		for i := 0; i < cfg.GraphsPerBehavior; i++ {
			bd.Graphs = append(bd.Graphs, Instance(rng, dict, spec, cfg, false))
		}
		ds.Behaviors = append(ds.Behaviors, bd)
	}
	for i := 0; i < cfg.BackgroundGraphs; i++ {
		ds.Background = append(ds.Background, BackgroundGraph(rng, dict, cfg))
	}
	return ds
}

// ByName returns the training graphs for one behavior.
func (d *Dataset) ByName(name string) []*tgraph.Graph {
	for _, b := range d.Behaviors {
		if b.Spec.Name == name {
			return b.Graphs
		}
	}
	return nil
}

// event is a pending edge during construction.
type event struct {
	src, dst string
}

// Instance generates one behavior instance graph. When corrupt is true the
// footprint is perturbed (one step dropped or two adjacent steps swapped),
// modelling the occasional divergent execution in uncontrolled test
// environments.
func Instance(rng *rand.Rand, dict *tgraph.Dict, spec Spec, cfg Config, corrupt bool) *tgraph.Graph {
	cfg = cfg.normalize()
	foot := append([]Step(nil), spec.Footprint...)
	if corrupt && len(foot) > 2 {
		if rng.Intn(2) == 0 {
			i := rng.Intn(len(foot) - 1)
			foot[i], foot[i+1] = foot[i+1], foot[i]
		} else {
			i := rng.Intn(len(foot))
			foot = append(foot[:i], foot[i+1:]...)
		}
	}

	targetEdges := scaled(spec.Edges, cfg.Scale, len(foot)+3)
	targetNodes := scaled(spec.Nodes, cfg.Scale, 4)

	// Pending edge stream: footprint steps in order, then noise to fill.
	var noise []event

	// Cross-pollination: embed a sibling's footprint, usually shuffled
	// (defeats order-free baselines only), rarely in original order.
	for _, sib := range spec.Siblings {
		if rng.Float64() >= cfg.SiblingBlockProb {
			continue
		}
		sspec, ok := SpecByName(sib)
		if !ok {
			continue
		}
		block := append([]Step(nil), sspec.Footprint...)
		if rng.Float64() >= cfg.OrderedSiblingProb {
			rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		}
		for _, s := range block {
			noise = append(noise, event{src: s.Src, dst: s.Dst})
		}
	}

	// Noise label pool: behavior-specific names sized so the dataset's
	// distinct-label count approaches the Table 1 target.
	poolSize := spec.Labels - len(CommonLabels)
	if poolSize < 4 {
		poolSize = 4
	}
	pick := func() string {
		r := rng.Float64()
		switch {
		case r < 0.55:
			return fmt.Sprintf("file:%s/data-%d", spec.Name, rng.Intn(poolSize))
		case r < 0.80:
			return CommonLabels[rng.Intn(len(CommonLabels))]
		default:
			return fmt.Sprintf("proc:%s/helper-%d", spec.Name, rng.Intn(1+poolSize/4))
		}
	}
	footLabels := footprintLabels(foot)
	for len(noise)+len(foot) < targetEdges {
		var src, dst string
		if rng.Float64() < 0.5 && len(footLabels) > 0 {
			// Attach noise to a footprint entity: realistic process activity.
			src = footLabels[rng.Intn(len(footLabels))]
			dst = pick()
		} else {
			src = pick()
			dst = pick()
		}
		if src == dst {
			continue
		}
		noise = append(noise, event{src: src, dst: dst})
	}

	return assemble(rng, dict, foot, noise, targetNodes)
}

// BackgroundGraph generates one background activity graph, possibly
// embedding decoys.
func BackgroundGraph(rng *rand.Rand, dict *tgraph.Dict, cfg Config) *tgraph.Graph {
	cfg = cfg.normalize()
	bg := Background()
	targetEdges := scaled(bg.Edges, cfg.Scale, 8)
	targetNodes := scaled(bg.Nodes, cfg.Scale, 6)
	labelPool := scaled(bg.Labels, cfg.Scale, 40)

	var noise []event
	specs := Specs()
	if rng.Float64() < cfg.ShuffledDecoyProb {
		// Order-shuffled footprint decoy: same collapsed graph, wrong order.
		spec := specs[rng.Intn(len(specs))]
		block := append([]Step(nil), spec.Footprint...)
		rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		for _, s := range block {
			noise = append(noise, event{src: s.Src, dst: s.Dst})
		}
	}
	if rng.Float64() < cfg.ScatterDecoyProb {
		// Label scatter: footprint labels appear without footprint edges.
		spec := specs[rng.Intn(len(specs))]
		ls := footprintLabels(spec.Footprint)
		for _, l := range ls {
			noise = append(noise, event{src: l, dst: fmt.Sprintf("file:bg-%d", rng.Intn(labelPool))})
		}
	}
	pick := func() string {
		r := rng.Float64()
		switch {
		case r < 0.70:
			return fmt.Sprintf("file:bg-%d", rng.Intn(labelPool))
		case r < 0.88:
			return CommonLabels[rng.Intn(len(CommonLabels))]
		default:
			return fmt.Sprintf("proc:bg-%d", rng.Intn(1+labelPool/8))
		}
	}
	for len(noise) < targetEdges {
		src, dst := pick(), pick()
		if src == dst {
			continue
		}
		noise = append(noise, event{src: src, dst: dst})
	}
	return assemble(rng, dict, nil, noise, targetNodes)
}

// Epilogue is the fixed session-teardown sequence appended to every
// generated graph (behavior instances and background alike), mirroring the
// invariant process-lifecycle activity that dominates real syscall logs.
// Because it is identical and identically ordered everywhere — including
// the duplicated lock flush — it creates exactly the redundant,
// residual-set-equivalent pattern branches that the paper's subgraph and
// supergraph pruning exist to cut (Table 3's 60-70% trigger rates).
var Epilogue = []Step{
	{"proc:exit-handler", "file:/run/session.lock"},
	{"proc:exit-handler", "file:/run/session.lock"},
	{"proc:exit-handler", "file:/var/log/wtmp-flush"},
	{"proc:exit-handler", "sock:unix:/run/logd"},
	{"proc:exit-handler", "file:/var/log/lastlog"},
}

// assemble interleaves footprint steps (kept in order) with noise events
// (random positions), binds labels to nodes, appends the fixed session
// epilogue, and produces the final graph. Node-count pressure is applied by
// reusing one node per distinct label.
func assemble(rng *rand.Rand, dict *tgraph.Dict, foot []Step, noise []event, targetNodes int) *tgraph.Graph {
	total := len(foot) + len(noise)
	slots := make([]event, total)
	// Choose increasing positions for footprint steps.
	positions := rng.Perm(total)[:len(foot)]
	sort.Ints(positions)
	used := make([]bool, total)
	for i, p := range positions {
		slots[p] = event{src: foot[i].Src, dst: foot[i].Dst}
		used[p] = true
	}
	ni := 0
	for i := range slots {
		if !used[i] {
			slots[i] = noise[ni]
			ni++
		}
	}

	var b tgraph.Builder
	nodeOf := make(map[string]tgraph.NodeID)
	getNode := func(name string) tgraph.NodeID {
		if v, ok := nodeOf[name]; ok {
			return v
		}
		v := b.AddNode(dict.Intern(name))
		nodeOf[name] = v
		return v
	}
	for t, ev := range slots {
		if err := b.AddEdge(getNode(ev.src), getNode(ev.dst), int64(t)); err != nil {
			panic(err) // unreachable: nodes exist, timestamps unique
		}
	}
	for i, s := range Epilogue {
		if err := b.AddEdge(getNode(s.Src), getNode(s.Dst), int64(total+i)); err != nil {
			panic(err)
		}
	}
	// Pad isolated nodes if below target (kept label-diverse but edge-free;
	// they model entities observed without interactions in the window).
	for b.NumNodes() < targetNodes {
		b.AddNode(dict.Intern(fmt.Sprintf("file:pad-%d", rng.Intn(1<<20))))
	}
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

func footprintLabels(foot []Step) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range foot {
		for _, l := range []string{s.Src, s.Dst} {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

func scaled(v int, scale float64, min int) int {
	n := int(float64(v) * scale)
	if n < min {
		n = min
	}
	return n
}
