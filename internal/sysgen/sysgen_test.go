package sysgen

import (
	"math/rand"
	"testing"

	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
)

func smallCfg() Config {
	return Config{Scale: 0.3, GraphsPerBehavior: 4, BackgroundGraphs: 6, Seed: 7,
		Behaviors: []string{"bzip2-decompress", "scp-download", "ssh-login"}}
}

func TestSpecsMatchTable1(t *testing.T) {
	specs := Specs()
	if len(specs) != 12 {
		t.Fatalf("got %d specs, want 12", len(specs))
	}
	want := map[string][3]int{ // name -> nodes, edges, labels
		"bzip2-decompress": {11, 12, 15},
		"gzip-decompress":  {10, 12, 7},
		"wget-download":    {33, 40, 92},
		"ftp-download":     {30, 61, 39},
		"scp-download":     {50, 106, 68},
		"gcc-compile":      {65, 122, 94},
		"g++-compile":      {67, 117, 100},
		"ftpd-login":       {28, 103, 119},
		"ssh-login":        {66, 161, 94},
		"sshd-login":       {281, 730, 269},
		"apt-get-update":   {209, 994, 203},
		"apt-get-install":  {1006, 1879, 272},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected behavior %q", s.Name)
			continue
		}
		if s.Nodes != w[0] || s.Edges != w[1] || s.Labels != w[2] {
			t.Errorf("%s: got %d/%d/%d, want %d/%d/%d", s.Name, s.Nodes, s.Edges, s.Labels, w[0], w[1], w[2])
		}
		if len(s.Footprint) < 5 {
			t.Errorf("%s: footprint too small (%d steps)", s.Name, len(s.Footprint))
		}
	}
	bg := Background()
	if bg.Nodes != 172 || bg.Edges != 749 || bg.Labels != 9065 {
		t.Errorf("background spec = %+v", bg)
	}
}

func TestSiblingsSymmetricAndValid(t *testing.T) {
	byName := map[string]Spec{}
	for _, s := range Specs() {
		byName[s.Name] = s
	}
	for _, s := range Specs() {
		for _, sib := range s.Siblings {
			o, ok := byName[sib]
			if !ok {
				t.Errorf("%s references unknown sibling %q", s.Name, sib)
				continue
			}
			found := false
			for _, back := range o.Siblings {
				if back == s.Name {
					found = true
				}
			}
			if !found {
				t.Errorf("sibling relation not symmetric: %s -> %s", s.Name, sib)
			}
		}
	}
}

func TestConfusionPairSharesVocabulary(t *testing.T) {
	// scp-download and ssh-login: same collapsed label-pair multiset on the
	// shared prefix steps, different order.
	scp, _ := SpecByName("scp-download")
	ssh, _ := SpecByName("ssh-login")
	pairSet := func(steps []Step) map[[2]string]int {
		out := map[[2]string]int{}
		for _, s := range steps {
			out[[2]string{s.Src, s.Dst}]++
		}
		return out
	}
	shared := 0
	sshPairs := pairSet(ssh.Footprint)
	for p := range pairSet(scp.Footprint) {
		if sshPairs[p] > 0 {
			shared++
		}
	}
	if shared < 5 {
		t.Errorf("scp/ssh share only %d label pairs; confusion requires >= 5", shared)
	}
	// But the footprints must differ temporally: the ordered sequences are
	// not equal.
	same := len(scp.Footprint) == len(ssh.Footprint)
	if same {
		for i := range scp.Footprint {
			if scp.Footprint[i] != ssh.Footprint[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("scp and ssh footprints are identical; they must differ in order")
	}
}

func footprintPattern(dict *tgraph.Dict, foot []Step) *tgraph.Pattern {
	nodeOf := map[string]tgraph.NodeID{}
	var labels []tgraph.Label
	var edges []tgraph.PEdge
	get := func(name string) tgraph.NodeID {
		if v, ok := nodeOf[name]; ok {
			return v
		}
		v := tgraph.NodeID(len(labels))
		labels = append(labels, dict.Intern(name))
		nodeOf[name] = v
		return v
	}
	for _, s := range foot {
		src, dst := get(s.Src), get(s.Dst)
		edges = append(edges, tgraph.PEdge{Src: src, Dst: dst})
	}
	p, err := tgraph.NewPattern(labels, edges)
	if err != nil {
		panic(err)
	}
	return p
}

func TestInstanceContainsFootprint(t *testing.T) {
	cfg := smallCfg()
	ds := Generate(cfg)
	for _, bd := range ds.Behaviors {
		pat := footprintPattern(ds.Dict, bd.Spec.Footprint)
		for i, g := range bd.Graphs {
			if _, ok := seqcode.Subsumes(pat, tgraph.PatternFromGraph(g)); !ok {
				t.Errorf("%s instance %d does not contain its footprint", bd.Spec.Name, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg())
	bds := Generate(smallCfg())
	if len(a.Behaviors) != len(bds.Behaviors) {
		t.Fatalf("behavior counts differ")
	}
	for i := range a.Behaviors {
		for j := range a.Behaviors[i].Graphs {
			ga, gb := a.Behaviors[i].Graphs[j], bds.Behaviors[i].Graphs[j]
			if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
				t.Fatalf("graph %d/%d differs between runs", i, j)
			}
			for k := range ga.Edges() {
				if ga.EdgeAt(k) != gb.EdgeAt(k) {
					t.Fatalf("edge %d of graph %d/%d differs", k, i, j)
				}
			}
		}
	}
}

func TestInstanceSizesScale(t *testing.T) {
	spec, _ := SpecByName("sshd-login")
	rng := rand.New(rand.NewSource(1))
	dict := tgraph.NewDict()
	small := Instance(rng, dict, spec, Config{Scale: 0.1, Seed: 1}, false)
	rng = rand.New(rand.NewSource(1))
	big := Instance(rng, dict, spec, Config{Scale: 1.0, Seed: 1}, false)
	if small.NumEdges() >= big.NumEdges() {
		t.Errorf("scale 0.1 edges (%d) >= scale 1.0 edges (%d)", small.NumEdges(), big.NumEdges())
	}
	// Full-scale instance should approximate Table 1.
	if big.NumEdges() < spec.Edges*8/10 || big.NumEdges() > spec.Edges*12/10 {
		t.Errorf("full-scale edges = %d, want ~%d", big.NumEdges(), spec.Edges)
	}
}

func TestCorruptedInstanceUsuallyBreaksFootprint(t *testing.T) {
	spec, _ := SpecByName("ssh-login")
	dict := tgraph.NewDict()
	pat := footprintPattern(dict, spec.Footprint)
	rng := rand.New(rand.NewSource(3))
	broken := 0
	const n = 30
	for i := 0; i < n; i++ {
		g := Instance(rng, dict, spec, Config{Scale: 0.3, Seed: 3}, true)
		if _, ok := seqcode.Subsumes(pat, tgraph.PatternFromGraph(g)); !ok {
			broken++
		}
	}
	if broken < n/2 {
		t.Errorf("only %d/%d corrupted instances broke the footprint", broken, n)
	}
}

func TestBackgroundLacksOrderedFootprints(t *testing.T) {
	// Background graphs must (almost) never contain a full ordered
	// footprint; decoys are shuffled. A full-length check over a sample.
	cfg := Config{Scale: 0.3, GraphsPerBehavior: 1, BackgroundGraphs: 30, Seed: 11,
		Behaviors: []string{"scp-download"}}
	ds := Generate(cfg)
	spec, _ := SpecByName("scp-download")
	pat := footprintPattern(ds.Dict, spec.Footprint)
	hits := 0
	for _, g := range ds.Background {
		if _, ok := seqcode.Subsumes(pat, tgraph.PatternFromGraph(g)); ok {
			hits++
		}
	}
	if hits > 2 {
		t.Errorf("ordered footprint found in %d/30 background graphs; decoys should be shuffled", hits)
	}
}

func TestTimelineGroundTruth(t *testing.T) {
	dict := tgraph.NewDict()
	cfg := TimelineConfig{Instances: 12, Scale: 0.25, Seed: 9,
		Behaviors: []string{"bzip2-decompress", "wget-download"}}
	tl := GenerateTimeline(cfg, dict)
	if len(tl.Truth) != 12 {
		t.Fatalf("truth count = %d, want 12", len(tl.Truth))
	}
	if tl.Graph.NumEdges() == 0 {
		t.Fatal("empty timeline graph")
	}
	// Intervals are disjoint, increasing, within the graph's time range.
	last := int64(-1)
	for i, inst := range tl.Truth {
		if inst.Start <= last {
			t.Errorf("instance %d overlaps previous (start %d <= %d)", i, inst.Start, last)
		}
		if inst.End < inst.Start {
			t.Errorf("instance %d: end %d < start %d", i, inst.End, inst.Start)
		}
		last = inst.End
		if inst.Behavior != "bzip2-decompress" && inst.Behavior != "wget-download" {
			t.Errorf("instance %d: unexpected behavior %q", i, inst.Behavior)
		}
	}
	lastEdge := tl.Graph.EdgeAt(tl.Graph.NumEdges() - 1)
	if tl.Truth[len(tl.Truth)-1].End > lastEdge.Time {
		t.Errorf("truth extends beyond graph end")
	}
	if tl.Window <= 0 {
		t.Errorf("window = %d", tl.Window)
	}
	// Edges strictly ordered (Finalize enforces; sanity check).
	for i := 1; i < tl.Graph.NumEdges(); i++ {
		if tl.Graph.EdgeAt(i).Time <= tl.Graph.EdgeAt(i-1).Time {
			t.Fatalf("timeline not totally ordered at %d", i)
		}
	}
}

func TestTimelineEmbedsFootprints(t *testing.T) {
	dict := tgraph.NewDict()
	cfg := TimelineConfig{Instances: 8, Scale: 0.25, Seed: 13, Corruption: 0.0,
		Behaviors: []string{"gzip-decompress"}}
	tl := GenerateTimeline(cfg, dict)
	spec, _ := SpecByName("gzip-decompress")
	pat := footprintPattern(dict, spec.Footprint)
	// The full timeline graph must contain the footprint (each uncorrupted
	// instance embeds it).
	if _, ok := seqcode.Subsumes(pat, tgraph.PatternFromGraph(tl.Graph)); !ok {
		t.Errorf("timeline does not contain gzip footprint despite %d instances", len(tl.Truth))
	}
}

func TestEpiloguePresentEverywhere(t *testing.T) {
	// Every generated graph — instances and background — ends with the
	// fixed session epilogue, the redundancy source for Table 3's pruning.
	cfg := Config{Scale: 0.25, GraphsPerBehavior: 3, BackgroundGraphs: 3, Seed: 21,
		Behaviors: []string{"wget-download"}}
	ds := Generate(cfg)
	// Intern the epilogue labels through the dataset dict for comparison.
	epiDS := footprintPattern(ds.Dict, Epilogue)
	for _, g := range append(append([]*tgraph.Graph{}, ds.Behaviors[0].Graphs...), ds.Background...) {
		if _, ok := seqcode.Subsumes(epiDS, tgraph.PatternFromGraph(g)); !ok {
			t.Fatalf("graph lacks session epilogue")
		}
		// And it is at the very end: the final edge's destination label is
		// the epilogue's last destination.
		last := g.EdgeAt(g.NumEdges() - 1)
		want := ds.Dict.Lookup(Epilogue[len(Epilogue)-1].Dst)
		if g.LabelOf(last.Dst) != want {
			t.Fatalf("graph does not end with epilogue: last dst label %d, want %d",
				g.LabelOf(last.Dst), want)
		}
	}
}

func TestTimelineRoundRobinBalance(t *testing.T) {
	dict := tgraph.NewDict()
	behaviors := []string{"bzip2-decompress", "gzip-decompress", "wget-download"}
	tl := GenerateTimeline(TimelineConfig{
		Instances: 30, Scale: 0.2, Seed: 4, Behaviors: behaviors,
	}, dict)
	counts := map[string]int{}
	for _, inst := range tl.Truth {
		counts[inst.Behavior]++
	}
	for _, b := range behaviors {
		if counts[b] != 10 {
			t.Errorf("behavior %s embedded %d times, want 10 (round-robin)", b, counts[b])
		}
	}
}

func TestDatasetByName(t *testing.T) {
	ds := Generate(smallCfg())
	if got := ds.ByName("scp-download"); len(got) != 4 {
		t.Errorf("ByName(scp) = %d graphs, want 4", len(got))
	}
	if got := ds.ByName("nope"); got != nil {
		t.Errorf("ByName(nope) != nil")
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("sshd-login"); !ok {
		t.Errorf("sshd-login missing")
	}
	if _, ok := SpecByName("not-a-behavior"); ok {
		t.Errorf("unknown behavior found")
	}
}
