// Package cmdutil holds the signal/deadline context wiring shared by the
// CLI commands.
package cmdutil

import (
	"context"
	"os"
	"os/signal"
	"time"
)

// SignalContext returns the command's working context: cancelled by the
// first SIGINT and, when timeout > 0, by the deadline. sigCtx is the
// signal-only parent (no deadline) — commands use it to derive a bounded
// follow-up phase after a deadline expiry while staying Ctrl-C-cancellable.
// The SIGINT handler unhooks itself after the first signal, so a second
// Ctrl-C kills the process the usual way if the cooperative path is too
// slow. Call stop to release the signal hook and any timer.
func SignalContext(timeout time.Duration) (ctx, sigCtx context.Context, stop func()) {
	sigCtx, unhook := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-sigCtx.Done()
		unhook()
	}()
	ctx = sigCtx
	cancel := func() {}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	return ctx, sigCtx, func() {
		cancel()
		unhook()
	}
}
