// Package cmdutil holds the signal/deadline context wiring shared by the
// CLI commands.
package cmdutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns the command's working context: cancelled by the
// first SIGINT or SIGTERM and, when timeout > 0, by the deadline. Both
// signals take the same cooperative path — cancel, drain, report partial
// results — so supervisors (systemd, Kubernetes, CI) that stop processes
// with SIGTERM get the exact Ctrl-C shutdown behavior. sigCtx is the
// signal-only parent (no deadline) — commands use it to derive a bounded
// follow-up phase after a deadline expiry while staying Ctrl-C-cancellable.
// The handler unhooks itself after the first signal, so a second signal
// kills the process the usual way if the cooperative path is too slow.
// Call stop to release the signal hook and any timer.
//
// tglint:ignore ctxfirst this helper mints the root context on behalf of main packages — it is the process entry point's context factory
func SignalContext(timeout time.Duration) (ctx, sigCtx context.Context, stop func()) {
	sigCtx, unhook := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCtx.Done()
		unhook()
	}()
	ctx = sigCtx
	cancel := func() {}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	return ctx, sigCtx, func() {
		cancel()
		unhook()
	}
}
