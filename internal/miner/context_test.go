package miner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

func cancelWorkload(seed int64) ([]*tgraph.Graph, []*tgraph.Graph) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.5, GraphsPerBehavior: 8, BackgroundGraphs: 16, Seed: seed,
		Behaviors: []string{"sshd-login"},
	})
	return ds.Behaviors[0].Graphs, ds.Background
}

// TestMineContextPreCancelled: a dead context returns ctx.Err() promptly
// with a valid (empty) partial result, and never panics.
func TestMineContextPreCancelled(t *testing.T) {
	pos, neg := cancelWorkload(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, pos, neg, Options{MaxEdges: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result is nil")
	}
	if len(res.Best) != 0 {
		t.Fatalf("pre-cancelled mine explored seeds: %d best", len(res.Best))
	}
}

// TestMineContextCancelMidMine cancels while workers are mining. The call
// must return context.Canceled (bounded by one seed's branch per worker),
// produce a sound partial result, and leak no goroutines.
func TestMineContextCancelMidMine(t *testing.T) {
	pos, neg := cancelWorkload(7)
	before := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			opts := TGMinerOptions()
			opts.MaxEdges = 6
			opts.Parallelism = workers
			res, err := MineContext(ctx, pos, neg, opts)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v", err)
			}
			if res == nil {
				t.Fatal("nil result")
			}
			// Whatever was mined must be internally consistent: every best
			// pattern carries the best score.
			for _, sp := range res.Best {
				if sp.Score != res.BestScore {
					t.Fatalf("partial best holds score %v != BestScore %v", sp.Score, res.BestScore)
				}
			}
		})
	}
	// Workers must all have exited; poll briefly to let the scheduler settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestMineTopKContextCancelled mirrors the pre-cancelled check for the
// top-K search.
func TestMineTopKContextCancelled(t *testing.T) {
	pos, neg := cancelWorkload(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineTopKContext(ctx, pos, neg, 5, Options{MaxEdges: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Patterns) != 0 {
		t.Fatalf("pre-cancelled top-K result: %+v", res)
	}
}

// TestMineTopKParallelEquivalence is the determinism property for the
// parallelized top-K search: every worker count returns the identical
// ranked shortlist (patterns, scores, threshold). The shared K-th-best
// threshold is only ever a sound lower bound, so interleaving cannot change
// the exact minimum-K under the (score, edges, key) total order.
func TestMineTopKParallelEquivalence(t *testing.T) {
	for _, wl := range []struct {
		seed      int64
		behaviors []string
		k         int
	}{
		{seed: 3, behaviors: []string{"gzip-decompress"}, k: 7},
		{seed: 11, behaviors: []string{"ftp-download"}, k: 12},
		{seed: 29, behaviors: []string{"bzip2-decompress"}, k: 5},
	} {
		ds := sysgen.Generate(sysgen.Config{
			Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 10, Seed: wl.seed,
			Behaviors: wl.behaviors,
		})
		pos := ds.Behaviors[0].Graphs
		opts := Options{MaxEdges: 4, Parallelism: 1}
		seq, err := MineTopK(pos, ds.Background, wl.k, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			opts.Parallelism = workers
			par, err := MineTopK(pos, ds.Background, wl.k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if par.Threshold != seq.Threshold {
				t.Errorf("seed %d workers %d: threshold %v != %v", wl.seed, workers, par.Threshold, seq.Threshold)
			}
			if len(par.Patterns) != len(seq.Patterns) {
				t.Fatalf("seed %d workers %d: %d patterns != %d", wl.seed, workers, len(par.Patterns), len(seq.Patterns))
			}
			for i := range seq.Patterns {
				if par.Patterns[i].Score != seq.Patterns[i].Score ||
					par.Patterns[i].Pattern.Key() != seq.Patterns[i].Pattern.Key() {
					t.Fatalf("seed %d workers %d: shortlist diverges at rank %d:\n  seq %v %s\n  par %v %s",
						wl.seed, workers, i,
						seq.Patterns[i].Score, seq.Patterns[i].Pattern.Key(),
						par.Patterns[i].Score, par.Patterns[i].Pattern.Key())
				}
			}
		}
	}
}
