package miner

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"tgminer/internal/sysgen"
	"tgminer/internal/tgraph"
)

// appendEdge returns g extended by one edge between existing nodes at a
// strictly later time (the live-ingestion append case).
func appendEdge(t *testing.T, g *tgraph.Graph) *tgraph.Graph {
	t.Helper()
	var last int64
	if n := g.NumEdges(); n > 0 {
		last = g.EdgeAt(n - 1).Time
	}
	dst := tgraph.NodeID(g.NumNodes() - 1)
	ng, err := g.ExtendSorted(nil, []tgraph.Edge{{Src: 0, Dst: dst, Time: last + 1}})
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// appendNode returns g extended by a fresh-labeled node plus an edge to it,
// which can introduce seeds that did not exist before.
func appendNode(t *testing.T, g *tgraph.Graph, label tgraph.Label) *tgraph.Graph {
	t.Helper()
	var last int64
	if n := g.NumEdges(); n > 0 {
		last = g.EdgeAt(n - 1).Time
	}
	ng, err := g.ExtendSorted([]tgraph.Label{label}, []tgraph.Edge{
		{Src: 0, Dst: tgraph.NodeID(g.NumNodes()), Time: last + 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// evictPrefix rebuilds g without its first k edges, keeping node set and
// original edge times (the live-eviction case: a prefix drop, not a pointer
// or count change).
func evictPrefix(t *testing.T, g *tgraph.Graph, k int) *tgraph.Graph {
	t.Helper()
	if k >= g.NumEdges() {
		k = g.NumEdges() - 1
	}
	if k < 1 {
		return g
	}
	var b tgraph.Builder
	for _, l := range g.Labels() {
		b.AddNode(l)
	}
	for _, e := range g.Edges()[k:] {
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	ng, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// assertSameResult pins the session-vs-cold contract: Best (keys, scores,
// frequencies), BestScore, and TieCount must match exactly. Stats counters
// are excluded — they already differ between worker counts in batch runs.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.BestScore != want.BestScore {
		t.Fatalf("%s: BestScore %v, cold %v", label, got.BestScore, want.BestScore)
	}
	if got.TieCount != want.TieCount {
		t.Fatalf("%s: TieCount %d, cold %d", label, got.TieCount, want.TieCount)
	}
	if len(got.Best) != len(want.Best) {
		t.Fatalf("%s: |Best| %d, cold %d", label, len(got.Best), len(want.Best))
	}
	type scored struct{ sc, x, y float64 }
	cold := make(map[string]scored, len(want.Best))
	for _, sp := range want.Best {
		cold[sp.Pattern.Key()] = scored{sp.Score, sp.PosFreq, sp.NegFreq}
	}
	for _, sp := range got.Best {
		w, ok := cold[sp.Pattern.Key()]
		if !ok {
			t.Fatalf("%s: pattern %q not in cold best set", label, sp.Pattern.Key())
		}
		if (scored{sp.Score, sp.PosFreq, sp.NegFreq}) != w {
			t.Fatalf("%s: pattern %q scored %+v, cold %+v", label, sp.Pattern.Key(),
				scored{sp.Score, sp.PosFreq, sp.NegFreq}, w)
		}
	}
}

// mutation scripts shared by the differential tests. Each step transforms
// copies of the current pos/neg slices in place.
type mutation func(t *testing.T, pos, neg []*tgraph.Graph)

func differentialScript() []struct {
	name string
	mut  mutation
} {
	return []struct {
		name string
		mut  mutation
	}{
		{"cold", func(t *testing.T, pos, neg []*tgraph.Graph) {}},
		{"no-dirty", func(t *testing.T, pos, neg []*tgraph.Graph) {}},
		{"one-pos-append", func(t *testing.T, pos, neg []*tgraph.Graph) {
			pos[0] = appendEdge(t, pos[0])
		}},
		{"two-neg-appends", func(t *testing.T, pos, neg []*tgraph.Graph) {
			neg[1] = appendEdge(t, neg[1])
			neg[3] = appendEdge(t, neg[3])
		}},
		{"pos-evict", func(t *testing.T, pos, neg []*tgraph.Graph) {
			pos[2] = evictPrefix(t, pos[2], 2)
		}},
		{"mixed-append-evict", func(t *testing.T, pos, neg []*tgraph.Graph) {
			pos[0] = appendEdge(t, pos[0])
			neg[0] = evictPrefix(t, neg[0], 1)
		}},
		{"new-seed-node", func(t *testing.T, pos, neg []*tgraph.Graph) {
			for i := range pos {
				pos[i] = appendNode(t, pos[i], 9001)
			}
		}},
		{"all-dirty", func(t *testing.T, pos, neg []*tgraph.Graph) {
			for i := range pos {
				pos[i] = appendEdge(t, pos[i])
			}
			for i := range neg {
				neg[i] = appendEdge(t, neg[i])
			}
		}},
	}
}

// runDifferential drives a Session and a cold Mine over the same mutation
// script and asserts byte-identical results each round.
func runDifferential(t *testing.T, opts Options, checkStats bool) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 10, Seed: 7,
		Behaviors: []string{"gzip-decompress"},
	})
	pos := append([]*tgraph.Graph(nil), ds.Behaviors[0].Graphs...)
	neg := append([]*tgraph.Graph(nil), ds.Background...)

	ss := NewSession(opts)
	for round, step := range differentialScript() {
		step.mut(t, pos, neg)
		warm, err := ss.Mine(pos, neg)
		if err != nil {
			t.Fatalf("round %d (%s): session: %v", round, step.name, err)
		}
		cold, err := Mine(pos, neg, opts)
		if err != nil {
			t.Fatalf("round %d (%s): cold: %v", round, step.name, err)
		}
		assertSameResult(t, fmt.Sprintf("round %d (%s)", round, step.name), warm, cold)

		if !checkStats {
			continue
		}
		st := ss.Stats()
		switch step.name {
		case "cold":
			if st.LastDirty != st.LastSeeds || st.Reused() != 0 {
				t.Fatalf("cold round: dirty %d of %d seeds, reused %d",
					st.LastDirty, st.LastSeeds, st.Reused())
			}
		case "no-dirty":
			if st.LastDirty != 0 {
				t.Fatalf("no-dirty round: %d dirty seeds", st.LastDirty)
			}
			if st.Reused() == 0 {
				t.Fatal("no-dirty round reused nothing")
			}
		case "one-pos-append":
			if st.LastDirty == 0 || st.LastDirty == st.LastSeeds {
				t.Fatalf("one-graph append should dirty some but not all seeds; dirty %d of %d",
					st.LastDirty, st.LastSeeds)
			}
		}
	}
}

// TestSessionMatchesColdMine is the differential correctness test for
// incremental mining: after arbitrary append/evict interleavings, a warm
// Session.Mine must return results byte-identical to a cold Mine over the
// same data, at every worker count. Run with -race (CI does).
func TestSessionMatchesColdMine(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			opts := TGMinerOptions()
			opts.MaxEdges = 4
			opts.Parallelism = workers
			runDifferential(t, opts, workers == 1)
		})
	}
}

// TestSessionAllConfigsDifferential runs the same differential script over
// every algorithm variant (including the linear-scan registry mode, whose
// entries retain residual sets across runs).
func TestSessionAllConfigsDifferential(t *testing.T) {
	for name, opts := range allConfigs() {
		opts.MaxEdges = 3
		opts.Parallelism = 2
		t.Run(name, func(t *testing.T) {
			runDifferential(t, opts, false)
		})
	}
}

// TestSessionTieCapDifferential exercises cached-tie injection under a tiny
// MaxResults cap: the retained subset after replay must equal the cold
// run's smallest-keys selection even when TieCount overflows the cap.
func TestSessionTieCapDifferential(t *testing.T) {
	opts := ExhaustiveOptions()
	opts.MaxEdges = 3
	opts.MaxResults = 2
	opts.Parallelism = 2
	runDifferential(t, opts, false)
}

// TestSessionDenominatorReset pins the full-reset path: changing the graph
// count (every frequency's denominator) must reset the session and still
// produce cold-identical results.
func TestSessionDenominatorReset(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 8, Seed: 13,
		Behaviors: []string{"ftp-download"},
	})
	pos := append([]*tgraph.Graph(nil), ds.Behaviors[0].Graphs...)
	neg := append([]*tgraph.Graph(nil), ds.Background...)
	opts := TGMinerOptions()
	opts.MaxEdges = 4

	ss := NewSession(opts)
	if _, err := ss.Mine(pos, neg); err != nil {
		t.Fatal(err)
	}
	// Grow the positive set by one graph: denominator change.
	pos = append(pos, appendEdge(t, pos[0]))
	warm, err := ss.Mine(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "after denominator change", warm, cold)
	if st := ss.Stats(); st.FullResets != 1 || st.LastDirty != st.LastSeeds {
		t.Fatalf("expected one full reset with all seeds dirty, got %+v", st)
	}
}

// trippedCtx reports cancellation after a fixed number of Err() polls,
// deterministically cancelling a run partway through its seed loop.
type trippedCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *trippedCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSessionCancellationKeepsCacheSound cancels a session run mid-way and
// verifies (a) the cancelled round returns the documented partial result
// plus ctx.Err(), and (b) the next complete round is still byte-identical
// to a cold mine — the cancelled round must not leave a poisoned cache or
// registry behind.
func TestSessionCancellationKeepsCacheSound(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 10, Seed: 19,
		Behaviors: []string{"bzip2-decompress"},
	})
	pos := append([]*tgraph.Graph(nil), ds.Behaviors[0].Graphs...)
	neg := append([]*tgraph.Graph(nil), ds.Background...)
	opts := TGMinerOptions()
	opts.MaxEdges = 4
	opts.Parallelism = 1

	ss := NewSession(opts)
	if _, err := ss.Mine(pos, neg); err != nil {
		t.Fatal(err)
	}

	// Dirty one graph, then cancel after a few seeds of the re-mine.
	pos[0] = appendEdge(t, pos[0])
	ctx := &trippedCtx{Context: context.Background(), after: 3}
	res, err := ss.MineContext(ctx, pos, neg)
	if err != context.Canceled {
		t.Fatalf("cancelled round: err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled round returned nil result")
	}

	// Mutate again and complete a round; it must match cold exactly.
	neg[2] = appendEdge(t, neg[2])
	warm, err := ss.Mine(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "first complete round after cancel", warm, cold)

	// And a further incremental round on top of the recovered state.
	pos[1] = appendEdge(t, pos[1])
	warm, err = ss.Mine(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err = Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "second complete round after cancel", warm, cold)
}
