package miner

import (
	"testing"

	"tgminer/internal/tgraph"
)

func TestMineTopKOrderingAndExactness(t *testing.T) {
	pos, neg := testSets(51, 6, 6)
	opts := Options{MaxEdges: 3}
	res, err := MineTopK(pos, neg, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	if len(res.Patterns) > 8 {
		t.Fatalf("returned %d patterns, want <= 8", len(res.Patterns))
	}
	// Descending score order.
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i].Score > res.Patterns[i-1].Score {
			t.Errorf("not sorted: %v then %v", res.Patterns[i-1].Score, res.Patterns[i].Score)
		}
	}
	// The best entry must agree with the max-score search.
	ref, err := Mine(pos, neg, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns[0].Score != ref.BestScore {
		t.Errorf("top-1 score %v != exhaustive best %v", res.Patterns[0].Score, ref.BestScore)
	}
	// The top-K set must match a fully exhaustive enumeration's top-K.
	exhaustive := enumerateAllScores(t, pos, neg, 3)
	for i, sp := range res.Patterns {
		if i >= len(exhaustive) {
			break
		}
		if sp.Score != exhaustive[i] {
			t.Errorf("rank %d: score %v, brute force says %v", i, sp.Score, exhaustive[i])
		}
	}
}

// enumerateAllScores runs the search with an effectively unbounded K so no
// pruning threshold forms, yielding the true descending score list.
func enumerateAllScores(t *testing.T, pos, neg []*tgraph.Graph, maxEdges int) []float64 {
	t.Helper()
	res, err := MineTopK(pos, neg, 1<<20, Options{MaxEdges: maxEdges})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(res.Patterns))
	for i, sp := range res.Patterns {
		out[i] = sp.Score
	}
	return out
}

func TestMineTopKDistinctPatterns(t *testing.T) {
	pos, neg := testSets(52, 5, 5)
	res, err := MineTopK(pos, neg, 20, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sp := range res.Patterns {
		k := sp.Pattern.Key()
		if seen[k] {
			t.Errorf("duplicate pattern in top-K")
		}
		seen[k] = true
	}
}

func TestMineTopKEmptyPositive(t *testing.T) {
	if _, err := MineTopK(nil, nil, 5, Options{}); err == nil {
		t.Errorf("expected error on empty positive set")
	}
}

func TestMineTopKDefaultK(t *testing.T) {
	pos, neg := testSets(53, 4, 4)
	res, err := MineTopK(pos, neg, 0, Options{MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 10 {
		t.Errorf("default K: %d patterns, want <= 10", len(res.Patterns))
	}
}
