package miner

import (
	"testing"

	"tgminer/internal/sysgen"
)

// TestPruningExactOnSyntheticData re-validates Theorem 2 on generator data:
// unlike the random fixtures in miner_test.go, these graphs contain the
// fixed session epilogue that makes subgraph/supergraph pruning actually
// trigger, so the exactness check exercises the pruned paths.
func TestPruningExactOnSyntheticData(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 10, Seed: 77,
		Behaviors: []string{"gzip-decompress", "ftp-download"},
	})
	for _, bd := range ds.Behaviors {
		var refScore float64
		var refKeys []string
		var refTies int
		first := true
		var triggered bool
		for name, opts := range allConfigs() {
			opts.MaxEdges = 4
			res, err := Mine(bd.Graphs, ds.Background, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", bd.Spec.Name, name, err)
			}
			if res.Stats.SubgraphPrunes > 0 || res.Stats.SupergraphPrunes > 0 {
				triggered = true
			}
			keys := bestKeys(res)
			if first {
				refScore, refKeys, refTies = res.BestScore, keys, res.TieCount
				first = false
				continue
			}
			if res.BestScore != refScore {
				t.Errorf("%s/%s: best score %v != ref %v", bd.Spec.Name, name, res.BestScore, refScore)
			}
			if res.TieCount != refTies {
				t.Errorf("%s/%s: ties %d != ref %d", bd.Spec.Name, name, res.TieCount, refTies)
			}
			if len(keys) != len(refKeys) {
				t.Errorf("%s/%s: %d best patterns != ref %d", bd.Spec.Name, name, len(keys), len(refKeys))
				continue
			}
			for i := range keys {
				if keys[i] != refKeys[i] {
					t.Errorf("%s/%s: best-pattern set differs from ref", bd.Spec.Name, name)
					break
				}
			}
		}
		if !triggered {
			t.Logf("%s: no pruning triggered (allowed but reduces test value)", bd.Spec.Name)
		}
	}
}

// TestEpiloguePruningTriggers asserts the generator's session epilogue
// produces actual subgraph-pruning opportunities (Table 3's subject).
func TestEpiloguePruningTriggers(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 8, BackgroundGraphs: 12, Seed: 5,
		Behaviors: []string{"bzip2-decompress"},
	})
	opts := TGMinerOptions()
	opts.MaxEdges = 5
	res, err := Mine(ds.Behaviors[0].Graphs, ds.Background, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubgraphPrunes == 0 {
		t.Errorf("subgraph pruning never triggered on epilogue-bearing data: %s", res.Stats)
	}
	if res.Stats.SubgraphPrunes < res.Stats.SupergraphPrunes {
		t.Errorf("expected subgraph pruning to dominate: %s", res.Stats)
	}
}

// TestLazyNegativeResiduals ensures SubPrune (no supergraph pruning) never
// pays for negative residual sets: its stats must match TGMiner's on
// subgraph counters while doing no supergraph work.
func TestLazyNegativeResiduals(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.2, GraphsPerBehavior: 5, BackgroundGraphs: 8, Seed: 9,
		Behaviors: []string{"gzip-decompress"},
	})
	opts := SubPruneOptions()
	opts.MaxEdges = 4
	res, err := Mine(ds.Behaviors[0].Graphs, ds.Background, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SupergraphPrunes != 0 {
		t.Errorf("SubPrune config triggered supergraph pruning: %s", res.Stats)
	}
}
