package miner

import (
	"fmt"
	"sync"
	"testing"

	"tgminer/internal/sysgen"
)

// TestParallelSequentialEquivalence is the determinism property test for the
// worker-pool miner: for every algorithm variant and several sysgen
// workloads, Parallelism 1 and 4 must return identical BestScore, TieCount,
// and canonicalized best-pattern sets. Seed exploration order (and therefore
// worker interleaving) only affects speed, never the result set.
func TestParallelSequentialEquivalence(t *testing.T) {
	workloads := []struct {
		seed      int64
		behaviors []string
	}{
		{seed: 3, behaviors: []string{"gzip-decompress"}},
		{seed: 11, behaviors: []string{"ftp-download"}},
		{seed: 29, behaviors: []string{"bzip2-decompress"}},
	}
	for _, wl := range workloads {
		ds := sysgen.Generate(sysgen.Config{
			Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 10, Seed: wl.seed,
			Behaviors: wl.behaviors,
		})
		pos := ds.Behaviors[0].Graphs
		for name, opts := range allConfigs() {
			opts.MaxEdges = 4
			t.Run(fmt.Sprintf("seed%d/%s", wl.seed, name), func(t *testing.T) {
				seq := opts
				seq.Parallelism = 1
				par := opts
				par.Parallelism = 4
				sres, err := Mine(pos, ds.Background, seq)
				if err != nil {
					t.Fatal(err)
				}
				pres, err := Mine(pos, ds.Background, par)
				if err != nil {
					t.Fatal(err)
				}
				if pres.BestScore != sres.BestScore {
					t.Errorf("BestScore parallel %v != sequential %v", pres.BestScore, sres.BestScore)
				}
				if pres.TieCount != sres.TieCount {
					t.Errorf("TieCount parallel %d != sequential %d", pres.TieCount, sres.TieCount)
				}
				skeys, pkeys := bestKeys(sres), bestKeys(pres)
				if len(skeys) != len(pkeys) {
					t.Fatalf("best set size parallel %d != sequential %d", len(pkeys), len(skeys))
				}
				for i := range skeys {
					if skeys[i] != pkeys[i] {
						t.Fatalf("best-pattern set diverges at %d", i)
					}
				}
			})
		}
	}
}

// TestParallelBestCapDeterminism pins the overflow rule of the tied best
// set: when TieCount exceeds MaxResults, the retained subset must still be
// identical across parallelism levels (the smallest canonical keys win).
func TestParallelBestCapDeterminism(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 6, BackgroundGraphs: 8, Seed: 41,
		Behaviors: []string{"wget-download"},
	})
	opts := ExhaustiveOptions() // no pruning: maximizes the tie population
	opts.MaxEdges = 3
	opts.MaxResults = 2
	seq, par := opts, opts
	seq.Parallelism = 1
	par.Parallelism = 4
	sres, err := Mine(ds.Behaviors[0].Graphs, ds.Background, seq)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Mine(ds.Behaviors[0].Graphs, ds.Background, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Best) > 2 || len(pres.Best) > 2 {
		t.Fatalf("MaxResults cap violated: %d / %d", len(sres.Best), len(pres.Best))
	}
	skeys, pkeys := bestKeys(sres), bestKeys(pres)
	if len(skeys) != len(pkeys) {
		t.Fatalf("capped best set size parallel %d != sequential %d", len(pkeys), len(skeys))
	}
	for i := range skeys {
		if skeys[i] != pkeys[i] {
			t.Fatalf("capped best set diverges at %d: %q vs %q", i, skeys[i], pkeys[i])
		}
	}
}

// TestParallelMiningRaceStress hammers the shared miner state (sharded
// registry, atomic F*, best-set mutex) with a high worker count over a
// pruning-heavy workload. Run with -race; the suite's CI invocation does.
func TestParallelMiningRaceStress(t *testing.T) {
	ds := sysgen.Generate(sysgen.Config{
		Scale: 0.25, GraphsPerBehavior: 8, BackgroundGraphs: 12, Seed: 5,
		Behaviors: []string{"bzip2-decompress"},
	})
	opts := TGMinerOptions()
	opts.MaxEdges = 5
	opts.Parallelism = 8
	res, err := Mine(ds.Behaviors[0].Graphs, ds.Background, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TieCount == 0 {
		t.Fatal("stress run found no patterns")
	}
}

// TestRegistryConcurrentAddCandidates stress-tests the sharded registry in
// isolation: concurrent writers bucketing entries by correlated iPos values
// while readers iterate slice-header snapshots. Meaningful under -race.
func TestRegistryConcurrentAddCandidates(t *testing.T) {
	reg := newRegistry(false, 1<<16)
	const writers, readers, perWriter = 4, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				iPos := int64((i % 37) + w) // correlated small keys, shared buckets
				reg.add(&entry{iPos: iPos, branchBest: float64(i)})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for _, e := range reg.candidates(int64(i % 41)) {
					if e.branchBest < 0 {
						t.Error("corrupt entry")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if reg.size() != writers*perWriter {
		t.Fatalf("registry size %d, want %d", reg.size(), writers*perWriter)
	}
	// Every entry must be findable in its bucket afterwards.
	total := 0
	for i := int64(0); i < 64; i++ {
		total += len(reg.candidates(i))
	}
	if total != writers*perWriter {
		t.Fatalf("bucketed entries %d, want %d", total, writers*perWriter)
	}
}

// TestRegistryLinearModeConcurrent covers the LinearScan baseline's single
// append-only shard under concurrency.
func TestRegistryLinearModeConcurrent(t *testing.T) {
	reg := newRegistry(true, 1<<16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.add(&entry{iPos: int64(i)})
				_ = reg.candidates(0) // linear mode ignores the key
			}
		}()
	}
	wg.Wait()
	if got := len(reg.candidates(99)); got != 4000 {
		t.Fatalf("linear candidates = %d, want 4000", got)
	}
}
