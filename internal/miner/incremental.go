package miner

// Incremental mining: a Session makes repeated mining calls over an
// evolving graph set dramatically cheaper than batch re-mining by caching
// per-seed exploration outcomes and re-exploring only the seeds whose
// supporting data changed.
//
// # Invalidation model
//
// A seed's entire DFS subtree is a pure function of (a) the content of the
// graphs supporting it, (b) its positive/negative embedding lists, and
// (c) the frequency denominators len(pos) and len(neg): consecutive growth
// only extends occurrences within supporting graphs, and every frequency,
// residual set, and residual integer in the subtree reads only those
// graphs. A cached seed is therefore *clean* — its cached outcome replayed
// without exploration — iff its embedding-list fingerprints match the
// previous run and every supporting graph is unchanged (pointer-identical
// or tgraph.Stamp-equal) since the previous run. Any change to the
// denominators resets the whole session (every frequency shifts).
//
// # What a cached outcome can and cannot assert
//
// Exploration under upper-bound/subgraph/supergraph pruning visits only
// part of a subtree; the cached best is the maximum over *visited*
// patterns. Branches hidden by F*-dependent prunes are bounded by the
// exploring run's final F* (prunes fire against a running F* that never
// exceeds the final one), recorded as hiddenBelow. The pruned flag records
// whether any such hidden branch exists; when it is false the subtree was
// searched exhaustively (the structural MaxEdges cut is F*-independent)
// and the cached best, tie set, and tie count are exact.
//
// # Warm start and replay
//
// Each run seeds F* with warmF, the maximum cached best among clean seeds
// — a score provably still achieved on the current data, so the shared F*
// remains a valid lower bound of the true F* throughout and every prune
// stays sound; by the established order-independence of the search this is
// equivalent to having mined those clean seeds first. A clean seed is then
//
//   - skipped (O(1), no contribution) when its whole subtree provably
//     scores below warmF: best < warmF and either no hidden branches or
//     hiddenBelow <= warmF;
//   - injected (O(ties)) when best == warmF and its tie set is complete:
//     no hidden branches, or hiddenBelow == best (hidden scores are
//     strictly below the exploring run's final F*);
//   - re-explored otherwise — hidden branches could contain scores the
//     cache cannot bound below the new F*.
//
// If the final F* rises above warmF, injected ties are discarded by the
// shared recorder exactly as their re-discovered patterns would have been.
//
// Exploration is two-phase, dirty seeds first. warmF can fall well below
// the previous F* when the top seed's data changed, leaving most clean
// seeds unclassifiable (their hiddenBelow — the old F* — exceeds warmF).
// After the dirty seeds finish, the shared F* has usually climbed back to
// the old F* (an appended event rarely destroys the winning pattern), and
// the held-back clean seeds are classified a second time against that
// higher threshold before anything re-explores. F* only grows during a
// run, so both classifications are sound by the same argument.
//
// # Registry carry-over
//
// Pruning-registry entries are tagged with their seed's ordinal. Entries
// whose seed stays clean and is not re-explored are carried to the next
// run (their patterns, residual integers, and linear-mode residual sets
// depend only on supporting graphs, all unchanged); entries of pruned
// subtrees have their branch bound lifted to hiddenBelow so the registry's
// "usable when branchBest < F*" test stays sound under a future lower F*.
// All other entries are dropped. A cancelled run leaves the caches of the
// last complete run authoritative but wipes the registry, whose ordinals
// and partial registrations are no longer trustworthy.

import (
	"context"
	"sync"
	"time"

	"tgminer/internal/grow"
	"tgminer/internal/tgraph"
)

// SessionStats reports reuse accounting for the most recent Session run.
type SessionStats struct {
	// Rounds is the number of completed Mine calls.
	Rounds int
	// FullResets counts denominator-change resets (graph-set length changed).
	FullResets int
	// LastSeeds is the seed count of the last run.
	LastSeeds int
	// LastDirty is how many seeds had changed data (or were new) last run.
	LastDirty int
	// LastSkipped is how many clean seeds were proven unable to contribute
	// and replayed as no-ops.
	LastSkipped int
	// LastInjected is how many clean seeds replayed their cached tie sets
	// without exploration.
	LastInjected int
	// LastExplored is how many seeds were actually mined last run.
	LastExplored int
	// LastCarried is how many pruning-registry entries survived into the
	// last run.
	LastCarried int64
	// LastWarmStart is the F* lower bound the last run started from
	// (math.Inf(-1)-like sentinel when no clean seed existed).
	LastWarmStart float64
}

// Reused returns the number of seeds replayed from cache last run.
func (s SessionStats) Reused() int { return s.LastSkipped + s.LastInjected }

// seedCache is one seed's cached exploration outcome.
type seedCache struct {
	posFP, negFP uint64
	best         float64 // max score over visited patterns in the subtree
	pruned       bool    // an F*-dependent prune hid part of the subtree
	hiddenBelow  float64 // final F* of the exploring run; hidden scores are < this
	tieCount     int
	ties         []ScoredPattern
	tieKeys      []string
}

// Session caches per-seed exploration outcomes across Mine calls over an
// evolving graph set. See the package comment above for the invalidation
// model. Options are fixed at construction (changing them would invalidate
// every cached outcome). Methods are safe for concurrent use but runs are
// serialized; the worker pool inside a single run still parallelizes per
// Options.Parallelism. Results are byte-identical (Best, BestScore,
// TieCount) to a cold MineContext on the same data at any worker count;
// only Stats counters differ, as they already do between worker counts.
type Session struct {
	mu   sync.Mutex
	opts Options

	// Reused across runs (satellite of the incremental design: no
	// per-Mine reallocation of testers or the pruning registry).
	testers []SubgraphTester
	reg     *registry

	cache    map[grow.SeedKey]*seedCache
	prevKeys []grow.SeedKey // seed key by previous run's registry ordinal
	posPtrs  []*tgraph.Graph
	posStamp []tgraph.Stamp
	negPtrs  []*tgraph.Graph
	negStamp []tgraph.Stamp
	haveRun  bool

	stats  SessionStats
	supBuf []int32
}

// NewSession creates an incremental mining session with fixed options.
func NewSession(opts Options) *Session {
	opts = opts.normalize()
	return &Session{
		opts:    opts,
		testers: testersFor(opts.Tester, opts.Parallelism),
		reg:     newRegistry(opts.ResidualLinear, opts.MaxRegistry),
		cache:   make(map[grow.SeedKey]*seedCache),
	}
}

// Stats returns reuse accounting for the most recent run.
func (ss *Session) Stats() SessionStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.stats
}

// Reset drops all cached state; the next Mine runs cold.
func (ss *Session) Reset() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.resetLocked()
}

func (ss *Session) resetLocked() {
	ss.cache = make(map[grow.SeedKey]*seedCache)
	ss.prevKeys = nil
	ss.posPtrs, ss.posStamp = nil, nil
	ss.negPtrs, ss.negStamp = nil, nil
	ss.haveRun = false
	ss.reg.retain(func(*entry) bool { return false }, nil)
}

// Mine runs an incremental mining round with a background context.
func (ss *Session) Mine(pos, neg []*tgraph.Graph) (*Result, error) {
	return ss.MineContext(context.Background(), pos, neg)
}

// seed replay classes. classExplore is the zero value: dirty and new seeds
// are explored by default, clean seeds must prove they may skip or inject.
type seedClass uint8

const (
	classExplore seedClass = iota
	classSkip
	classInject
)

// MineContext runs one incremental mining round over the current pos/neg
// sets under a context. Cancellation is cooperative at seed granularity
// exactly as in the batch MineContext: a partial Result plus ctx.Err() is
// returned, the session's caches remain those of the last complete run,
// and the carried pruning registry is discarded.
func (ss *Session) MineContext(ctx context.Context, pos, neg []*tgraph.Graph) (*Result, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return &Result{BestScore: inf(), Elapsed: time.Since(start)}, err
	}

	// Denominator change: every frequency and residual integer is relative
	// to the graph-set lengths, so nothing cached survives.
	if ss.haveRun && (len(pos) != len(ss.posStamp) || len(neg) != len(ss.negStamp)) {
		ss.resetLocked()
		ss.stats.FullResets++
	}

	posClean := cleanGraphs(pos, ss.posPtrs, ss.posStamp)
	negClean := cleanGraphs(neg, ss.negPtrs, ss.negStamp)

	seeds := grow.Seeds(pos, neg)
	sortSeeds(seeds)
	keys := make([]grow.SeedKey, len(seeds))
	newID := make(map[grow.SeedKey]int32, len(seeds))
	for i := range seeds {
		keys[i] = seeds[i].Key()
		newID[keys[i]] = int32(i)
	}

	// Classify. First pass establishes cleanliness and warmF (the best
	// cached score among clean seeds — still achieved on current data);
	// second pass decides skip/inject/explore against warmF.
	classes := make([]seedClass, len(seeds))
	clean := make([]bool, len(seeds))
	warmF := inf()
	dirty := 0
	for i := range seeds {
		c := ss.cache[keys[i]]
		ok := c != nil &&
			c.posFP == seeds[i].Pos.Fingerprint() &&
			c.negFP == seeds[i].Neg.Fingerprint() &&
			ss.supportClean(seeds[i].Pos, posClean) &&
			ss.supportClean(seeds[i].Neg, negClean)
		clean[i] = ok
		if !ok {
			dirty++
			continue
		}
		if c.best > warmF {
			warmF = c.best
		}
	}
	skipped, injected := 0, 0
	classify := func(i int, threshold float64) {
		c := ss.cache[keys[i]]
		switch {
		case c.best < threshold && (!c.pruned || c.hiddenBelow <= threshold):
			// Everything in the subtree — visited (<= best) and hidden
			// (< hiddenBelow) — scores strictly below threshold, which never
			// exceeds the final F*.
			classes[i] = classSkip
			skipped++
		case c.best == threshold && (!c.pruned || c.hiddenBelow == c.best):
			// Tie set exact and complete at best: either the subtree was
			// searched exhaustively, or every hidden score is strictly
			// below best.
			classes[i] = classInject
			injected++
		default:
			// Hidden branches may hold scores the cache cannot bound below
			// the new F*; re-explore.
			classes[i] = classExplore
		}
	}
	for i := range seeds {
		if clean[i] {
			classify(i, warmF)
		}
	}

	// Registry carry-over: keep entries whose seed is clean and will not be
	// re-explored (re-exploration re-registers its subtree), remapped to
	// this run's ordinals. Lifting a pruned entry's bound to hiddenBelow
	// keeps the registry's "usable iff branchBest < F*" test sound: the
	// lifted bound dominates both its visited and hidden scores.
	keepAs := make([]int32, len(ss.prevKeys))
	bump := make([]float64, len(ss.prevKeys))
	for old, k := range ss.prevKeys {
		keepAs[old] = -1
		id, ok := newID[k]
		if !ok || !clean[id] || classes[id] == classExplore {
			continue
		}
		keepAs[old] = id
		bump[old] = ss.cache[k].hiddenBelow
	}
	ss.reg.retain(func(e *entry) bool {
		return int(e.seedID) < len(keepAs) && keepAs[e.seedID] >= 0
	}, func(e *entry) {
		old := e.seedID
		e.seedID = keepAs[old]
		if e.pruned && bump[old] > e.branchBest {
			e.branchBest = bump[old]
		}
	})
	carried := ss.reg.size()

	// Warm-start and replay. The run is two-phase: dirty seeds are explored
	// first, because their outcomes decide how much cached work is reusable.
	// Once they finish, the shared F* has recovered everything the dirty data
	// can contribute — typically the old F*, when an ingest left the top
	// pattern intact — and clean seeds initially headed for re-exploration
	// (their warmF-relative bounds were inconclusive) are classified again
	// against the higher threshold. F* only grows during a run, so the
	// second classification is sound for exactly the same reason as the
	// first; it just skips and injects strictly more.
	sh := newShared(ss.opts.MaxResults)
	if warmF > inf() {
		sh.seedFstar(warmF)
	}
	var work []grow.Seed
	var ids []int32
	var cleanIDs []int32 // clean seeds provisionally classified explore
	for i := range seeds {
		switch classes[i] {
		case classInject:
			c := ss.cache[keys[i]]
			sh.injectTies(c.best, c.ties, c.tieKeys, c.tieCount)
		case classExplore:
			if clean[i] {
				cleanIDs = append(cleanIDs, int32(i))
				continue
			}
			work = append(work, seeds[i])
			ids = append(ids, int32(i))
		}
	}
	capture := make([]seedOutcome, len(work))
	stats := runSeeds(ctx, pos, neg, ss.opts, sh, ss.reg, ss.testers, work, ids, capture)

	// Phase 2: reclassify the held-back clean seeds against the post-phase-1
	// F*, then explore only those still unresolved. Skipped on cancellation —
	// the partial result is returned below without touching the caches.
	if ctx.Err() == nil && len(cleanIDs) > 0 {
		var work2 []grow.Seed
		var ids2 []int32
		for _, i := range cleanIDs {
			classify(int(i), sh.fstar)
			switch classes[i] {
			case classInject:
				c := ss.cache[keys[i]]
				sh.injectTies(c.best, c.ties, c.tieKeys, c.tieCount)
			case classExplore:
				work2 = append(work2, seeds[i])
				ids2 = append(ids2, i)
			}
		}
		capture2 := make([]seedOutcome, len(work2))
		stats2 := runSeeds(ctx, pos, neg, ss.opts, sh, ss.reg, ss.testers, work2, ids2, capture2)
		addStats(&stats, stats2)
		work = append(work, work2...)
		ids = append(ids, ids2...)
		capture = append(capture, capture2...)
	}
	stats.RegistrySize = ss.reg.size()

	res := &Result{
		Best:      sh.canonicalBest(),
		BestScore: sh.fstar,
		TieCount:  sh.tieCount,
		Stats:     stats,
		Elapsed:   time.Since(start),
	}
	if err := ctx.Err(); err != nil {
		// The registry now mixes remapped ordinals with partially explored
		// seeds; drop it. Cache and stamps still describe the last complete
		// run and stay authoritative.
		ss.reg.retain(func(*entry) bool { return false }, nil)
		return res, err
	}

	// Commit: overwrite explored seeds' cache entries, drop seeds that no
	// longer occur, refresh stamps and the ordinal->key table.
	for j, i := range ids {
		out := capture[j]
		ss.cache[keys[i]] = &seedCache{
			posFP:       seeds[i].Pos.Fingerprint(),
			negFP:       seeds[i].Neg.Fingerprint(),
			best:        out.best,
			pruned:      out.pruned,
			hiddenBelow: sh.fstar,
			tieCount:    out.tieCount,
			ties:        out.ties,
			tieKeys:     out.tieKeys,
		}
	}
	for k := range ss.cache {
		if _, ok := newID[k]; !ok {
			delete(ss.cache, k)
		}
	}
	ss.prevKeys = keys
	ss.posPtrs, ss.posStamp = snapshotStamps(pos, ss.posPtrs, ss.posStamp)
	ss.negPtrs, ss.negStamp = snapshotStamps(neg, ss.negPtrs, ss.negStamp)
	ss.haveRun = true

	ss.stats.Rounds++
	ss.stats.LastSeeds = len(seeds)
	ss.stats.LastDirty = dirty
	ss.stats.LastSkipped = skipped
	ss.stats.LastInjected = injected
	ss.stats.LastExplored = len(work)
	ss.stats.LastCarried = carried
	ss.stats.LastWarmStart = warmF
	return res, nil
}

// addStats folds the second exploration phase's counters into the first's.
func addStats(dst *Stats, s Stats) {
	dst.PatternsExplored += s.PatternsExplored
	dst.UpperBoundPrunes += s.UpperBoundPrunes
	dst.SubgraphTests += s.SubgraphTests
	dst.ResidualEqTests += s.ResidualEqTests
	dst.SubgraphPrunes += s.SubgraphPrunes
	dst.SupergraphPrunes += s.SupergraphPrunes
	if s.MaxEdgesSeen > dst.MaxEdgesSeen {
		dst.MaxEdgesSeen = s.MaxEdgesSeen
	}
}

// supportClean reports whether every graph supporting the embedding list is
// unchanged since the last complete run.
func (ss *Session) supportClean(l grow.List, clean []bool) bool {
	ss.supBuf = l.SupportGraphs(ss.supBuf[:0])
	for _, id := range ss.supBuf {
		if int(id) >= len(clean) || !clean[id] {
			return false
		}
	}
	return true
}

// cleanGraphs marks each current graph unchanged since the previous run:
// pointer-identical (the common case for immutable snapshot graphs) or
// content-equal by Stamp. With no previous run everything is dirty.
func cleanGraphs(cur []*tgraph.Graph, prevPtrs []*tgraph.Graph, prevStamp []tgraph.Stamp) []bool {
	clean := make([]bool, len(cur))
	for i, g := range cur {
		if i >= len(prevPtrs) {
			break
		}
		clean[i] = g == prevPtrs[i] || g.Stamp() == prevStamp[i]
	}
	return clean
}

// snapshotStamps records the current graph pointers and stamps, reusing the
// previous buffers.
func snapshotStamps(cur []*tgraph.Graph, ptrs []*tgraph.Graph, stamps []tgraph.Stamp) ([]*tgraph.Graph, []tgraph.Stamp) {
	ptrs = append(ptrs[:0], cur...)
	stamps = stamps[:0]
	for _, g := range cur {
		stamps = append(stamps, g.Stamp())
	}
	return ptrs, stamps
}
