// Package miner implements TGMiner, the discriminative temporal graph
// pattern miner of Zong et al. (VLDB 2015), plus the five efficiency
// baselines the paper evaluates against (Section 6.1).
//
// Given a positive and a negative set of temporal graphs, Mine performs a
// depth-first search over the T-connected pattern space using consecutive
// growth (complete and repetition-free by Theorem 1), maintaining embedding
// lists incrementally. Search branches are cut by
//
//   - the naive upper-bound condition F(freq_p(g), 0) < F* (Section 4.1),
//   - subgraph pruning (Lemma 4), and
//   - supergraph pruning (Proposition 2),
//
// with residual-graph-set equivalence tested either in O(1) through the
// integer compression of Lemma 6 or by explicit linear scan (the LinearScan
// baseline), and temporal subgraph tests delegated to a pluggable
// SubgraphTester (sequence tests, modified VF2, or graph-index join).
//
// Mining parallelizes at the seed level (Options.Parallelism): seed
// exploration order only affects speed, never the searched-or-pruned set of
// maximum-score patterns, so a worker pool sharing F* and the pruning
// registry returns exactly the sequential result at any worker count.
package miner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tgminer/internal/gindex"
	"tgminer/internal/grow"
	"tgminer/internal/residual"
	"tgminer/internal/score"
	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
	"tgminer/internal/vf2"
)

// SubgraphTester decides temporal subgraph containment between patterns.
// Implementations: seqcode.Tester (TGMiner default), vf2.Tester (PruneVF2),
// gindex.Tester (PruneGI).
//
// Testers are not assumed safe for concurrent use. For parallel mining
// (Options.Parallelism > 1), implementations should additionally provide
//
//	CloneTester() any
//
// returning a fresh instance (the repo's testers all do); each worker then
// tests on its own clone. Implementations without it are serialized behind
// one mutex, which caps the parallel speedup of test-heavy configurations.
type SubgraphTester interface {
	// Name identifies the tester in stats output.
	Name() string
	// Test reports whether g1 is a temporal subgraph of g2 (g1 ⊆t g2),
	// returning the node mapping from g1 nodes to g2 nodes when it is.
	Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool)
}

// Options configures a mining run. Zero values are completed by
// normalize(); use the named constructors (TGMinerOptions etc.) for the
// paper's algorithm variants.
type Options struct {
	// Score is the discriminative score function F (default score.LogRatio).
	Score score.Func
	// MaxEdges bounds the size of explored patterns (default 6, the paper's
	// default behavior-query size; Figure 14 sweeps it up to 45).
	MaxEdges int
	// SubgraphPruning enables Lemma 4 pruning.
	SubgraphPruning bool
	// SupergraphPruning enables Proposition 2 pruning.
	SupergraphPruning bool
	// Tester performs temporal subgraph tests (default seqcode.Tester).
	Tester SubgraphTester
	// ResidualLinear switches residual-set equivalence from the Lemma 6
	// integer comparison to an explicit linear scan (LinearScan baseline).
	ResidualLinear bool
	// MaxResults caps how many tied best patterns are retained (default
	// 512). The count of ties seen is always exact in Result.TieCount.
	MaxResults int
	// MaxRegistry caps the number of completed branches retained for
	// pruning lookups; exceeding it only forgoes pruning opportunities
	// (default 1<<20).
	MaxRegistry int
	// Parallelism is the number of workers mining seeds concurrently
	// (default runtime.GOMAXPROCS(0); 1 forces the classic sequential
	// search). Seed exploration order only affects speed, never the result
	// set, so parallel runs return the same BestScore, TieCount, and best
	// patterns as sequential runs; only Stats counters (which depend on how
	// often pruning fires) may differ between runs.
	Parallelism int
}

// TGMinerOptions is the full TGMiner configuration: both prunings, sequence
// tests, integer residual compression.
func TGMinerOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true}
}

// SubPruneOptions enables only subgraph pruning (paper baseline 1).
func SubPruneOptions() Options {
	return Options{SubgraphPruning: true}
}

// SupPruneOptions enables only supergraph pruning (paper baseline 2).
func SupPruneOptions() Options {
	return Options{SupergraphPruning: true}
}

// PruneGIOptions uses all pruning but graph-index-join subgraph tests
// (paper baseline 3).
func PruneGIOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, Tester: &gindex.Tester{}}
}

// PruneVF2Options uses all pruning but modified-VF2 subgraph tests (paper
// baseline 4).
func PruneVF2Options() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, Tester: &vf2.Tester{}}
}

// LinearScanOptions uses all pruning but linear-scan residual equivalence
// tests (paper baseline 5).
func LinearScanOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, ResidualLinear: true}
}

// ExhaustiveOptions applies only the naive upper-bound pruning of
// Section 4.1 (the unnamed exhaustive strawman the paper motivates against).
func ExhaustiveOptions() Options {
	return Options{}
}

func (o Options) normalize() Options {
	if o.Score == nil {
		o.Score = score.LogRatio{}
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 6
	}
	if o.Tester == nil {
		o.Tester = &seqcode.Tester{}
	}
	if o.MaxResults <= 0 {
		o.MaxResults = 512
	}
	if o.MaxRegistry <= 0 {
		o.MaxRegistry = 1 << 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// ScoredPattern is a discovered pattern with its frequencies and score.
type ScoredPattern struct {
	Pattern *tgraph.Pattern
	Score   float64
	PosFreq float64
	NegFreq float64
}

// Stats aggregates search counters; Table 3 of the paper reports the
// trigger probabilities SubgraphPrunes/PatternsExplored and
// SupergraphPrunes/PatternsExplored.
type Stats struct {
	PatternsExplored int64
	UpperBoundPrunes int64
	SubgraphTests    int64
	ResidualEqTests  int64
	SubgraphPrunes   int64
	SupergraphPrunes int64
	RegistrySize     int64
	MaxEdgesSeen     int
}

// SubgraphTriggerRate returns the empirical probability that subgraph
// pruning fires while processing a pattern.
func (s Stats) SubgraphTriggerRate() float64 {
	if s.PatternsExplored == 0 {
		return 0
	}
	return float64(s.SubgraphPrunes) / float64(s.PatternsExplored)
}

// SupergraphTriggerRate returns the empirical probability that supergraph
// pruning fires while processing a pattern.
func (s Stats) SupergraphTriggerRate() float64 {
	if s.PatternsExplored == 0 {
		return 0
	}
	return float64(s.SupergraphPrunes) / float64(s.PatternsExplored)
}

// Result is the outcome of a mining run.
type Result struct {
	// Best holds the patterns achieving BestScore (up to MaxResults).
	Best []ScoredPattern
	// BestScore is F*.
	BestScore float64
	// TieCount is the exact number of patterns that achieved BestScore,
	// even when Best was capped.
	TieCount int
	Stats    Stats
	Elapsed  time.Duration
}

// ErrNoPositiveGraphs is returned when the positive set is empty.
var ErrNoPositiveGraphs = errors.New("miner: positive graph set is empty")

// Mine runs the discriminative pattern search over pos and neg. It is a
// compatibility wrapper over MineContext with a background (non-cancellable)
// context.
func Mine(pos, neg []*tgraph.Graph, opts Options) (*Result, error) {
	return MineContext(context.Background(), pos, neg, opts)
}

// MineContext runs the discriminative pattern search over pos and neg under
// a context.
//
// When opts.Parallelism > 1, seeds are fanned out to a worker pool sharing
// one F* (published through atomic float bits for lock-free pruning reads)
// and one sharded pruning registry. Because seed exploration order only
// affects speed — pruning with a stale, lower F* merely prunes less — every
// interleaving returns the same BestScore, TieCount, and best-pattern set;
// Best is canonicalized (sorted by pattern key) so parallel and sequential
// runs are byte-for-byte comparable.
//
// Cancellation is cooperative at seed granularity: workers poll ctx between
// seeds, so a cancel takes effect within at most one seed's branch per
// worker and never interrupts a branch midway. On cancellation MineContext
// returns ctx.Err() together with a non-nil partial Result covering exactly
// the seeds fully explored before the cancel — each seed's branch is either
// wholly mined or untouched, so the partial result is a sound lower bound
// (BestScore <= the complete F*, Best patterns are genuine).
func MineContext(ctx context.Context, pos, neg []*tgraph.Graph, opts Options) (*Result, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	opts = opts.normalize()
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return &Result{BestScore: inf(), Elapsed: time.Since(start)}, err
	}
	seeds := grow.Seeds(pos, neg)
	sortSeeds(seeds)

	workers := poolSize(opts.Parallelism, len(seeds))
	sh := newShared(opts.MaxResults)
	reg := newRegistry(opts.ResidualLinear, opts.MaxRegistry)
	testers := testersFor(opts.Tester, workers)

	ids := make([]int32, len(seeds))
	for i := range ids {
		ids[i] = int32(i)
	}
	stats := runSeeds(ctx, pos, neg, opts, sh, reg, testers, seeds, ids, nil)
	stats.RegistrySize = reg.size()
	res := &Result{
		Best:      sh.canonicalBest(),
		BestScore: sh.fstar,
		TieCount:  sh.tieCount,
		Stats:     stats,
		Elapsed:   time.Since(start),
	}
	return res, ctx.Err()
}

func inf() float64 { return -1e308 }

// sortSeeds orders seeds high-positive-support, low-negative-support first.
// F* reaches its ceiling as soon as a maximally frequent, zero-negative
// pattern is found, after which the upper-bound condition kills every
// lower-support branch on sight and the subgraph/supergraph conditions can
// cut redundant frequent-but-undiscriminative branches — the "find
// discriminative patterns early to prune early" strategy the paper cites
// from leap search [30]. Ordering only affects speed: the
// searched-or-pruned set of maximum-score patterns is unchanged.
func sortSeeds(seeds []grow.Seed) {
	sort.SliceStable(seeds, func(i, j int) bool {
		pi, pj := seeds[i].Pos.SupportCount(), seeds[j].Pos.SupportCount()
		if pi != pj {
			return pi > pj
		}
		return seeds[i].Neg.SupportCount() < seeds[j].Neg.SupportCount()
	})
}

// poolSize clamps the configured parallelism to the available work.
func poolSize(parallelism, work int) int {
	if parallelism > work && work > 0 {
		parallelism = work
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// seedOutcome summarizes one fully explored seed subtree for session
// caching: the best score found, whether any F*-dependent prune cut part of
// the subtree (when false, best is the exact subtree maximum and the tie
// capture is complete), and the seed-local ties at best (count exact,
// patterns capped at the smallest-MaxResults canonical keys, mirroring the
// global retention rule).
type seedOutcome struct {
	explored bool
	best     float64
	pruned   bool
	tieCount int
	ties     []ScoredPattern
	tieKeys  []string
}

// runSeeds drives the seed-level worker pool shared by MineContext and
// Session.Mine. work[i] is explored tagged with registry ordinal ids[i];
// when capture is non-nil (session mode), the subtree outcome of work[i]
// is stored in capture[i]. Workers poll ctx between seeds, so each seed's
// branch is either wholly mined or untouched.
func runSeeds(ctx context.Context, pos, neg []*tgraph.Graph, opts Options, sh *shared, reg *registry, testers []SubgraphTester, work []grow.Seed, ids []int32, capture []seedOutcome) Stats {
	workers := poolSize(opts.Parallelism, len(work))
	if workers > len(testers) {
		workers = len(testers)
	}
	searches := make([]*search, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wopts := opts
		wopts.Tester = testers[w]
		s := &search{pos: pos, neg: neg, opts: wopts, sh: sh, reg: reg}
		if capture != nil {
			s.cap = &seedTies{}
			s.cap.list.max = opts.MaxResults
		}
		searches[w] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				s.seedID = ids[i]
				if s.cap != nil {
					s.cap.reset()
				}
				best, pruned := s.dfs(work[i].Pattern, work[i].Pos, work[i].Neg)
				if capture != nil {
					s.cap.flush()
					capture[i] = seedOutcome{
						explored: true,
						best:     best,
						pruned:   pruned,
						tieCount: s.cap.count,
						ties:     append([]ScoredPattern(nil), s.cap.list.pats...),
						tieKeys:  append([]string(nil), s.cap.list.keys...),
					}
				}
			}
		}()
	}
	wg.Wait()
	var stats Stats
	for _, s := range searches {
		stats.merge(s.stats)
	}
	return stats
}

// merge accumulates counters from a per-worker Stats.
func (s *Stats) merge(o Stats) {
	s.PatternsExplored += o.PatternsExplored
	s.UpperBoundPrunes += o.UpperBoundPrunes
	s.SubgraphTests += o.SubgraphTests
	s.ResidualEqTests += o.ResidualEqTests
	s.SubgraphPrunes += o.SubgraphPrunes
	s.SupergraphPrunes += o.SupergraphPrunes
	if o.MaxEdgesSeen > s.MaxEdgesSeen {
		s.MaxEdgesSeen = o.MaxEdgesSeen
	}
}

// testerCloner is the optional per-worker instantiation hook documented on
// SubgraphTester. The return type is any (not SubgraphTester) so tester
// packages can implement it without importing this package.
type testerCloner interface {
	CloneTester() any
}

// testersFor returns one temporal-subgraph tester per worker. Testers carry
// per-instance state (at minimum stats counters), so sharing one instance
// across workers would race; cloneable testers get one clone per worker
// (worker 0 keeps the caller's instance so single-worker runs accumulate
// its stats exactly as before). Implementations without CloneTester fall
// back to a single mutex-guarded wrapper.
func testersFor(t SubgraphTester, workers int) []SubgraphTester {
	out := make([]SubgraphTester, workers)
	out[0] = t
	if workers == 1 {
		return out
	}
	c, ok := t.(testerCloner)
	for w := 1; w < workers; w++ {
		var clone SubgraphTester
		if ok {
			clone, _ = c.CloneTester().(SubgraphTester)
		}
		if clone == nil {
			lt := &lockedTester{t: t}
			for i := range out {
				out[i] = lt
			}
			return out
		}
		out[w] = clone
	}
	return out
}

// lockedTester serializes access to a tester of unknown (and therefore
// presumed non-concurrency-safe) implementation.
type lockedTester struct {
	mu sync.Mutex
	t  SubgraphTester
}

func (l *lockedTester) Name() string { return l.t.Name() }

func (l *lockedTester) Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Test(g1, g2)
}

// tieList is a tie set capped at max patterns, deterministically retaining
// the smallest canonical keys. Used (under their owners' synchronization)
// by the global shared best set and by the per-seed capture of incremental
// sessions, so both apply the identical overflow rule and a replayed seed
// reproduces the batch retention byte for byte.
type tieList struct {
	pats    []ScoredPattern
	keys    []string // canonical keys parallel to pats
	maxKeyI int      // index of the largest key once full; -1 = unknown
	max     int
}

// replace resets the list to hold exactly one pattern.
func (t *tieList) replace(sp ScoredPattern, key string) {
	t.pats = append(t.pats[:0], sp)
	t.keys = append(t.keys[:0], key)
	t.maxKeyI = -1
}

// clear empties the list.
func (t *tieList) clear() {
	t.pats, t.keys, t.maxKeyI = t.pats[:0], t.keys[:0], -1
}

// add inserts a tie. When the list is at cap, the pattern with the largest
// retained key is displaced iff the new key is smaller — a deterministic
// rule, so the retained subset is identical across worker counts and
// interleavings. The common reject path stays O(1): the index of the
// largest retained key is cached and rescanned only after a replacement
// invalidates it.
func (t *tieList) add(sp ScoredPattern, key string) {
	if len(t.pats) < t.max {
		t.pats = append(t.pats, sp)
		t.keys = append(t.keys, key)
		t.maxKeyI = -1
		return
	}
	if t.maxKeyI < 0 {
		t.maxKeyI = 0
		for i := 1; i < len(t.keys); i++ {
			if t.keys[i] > t.keys[t.maxKeyI] {
				t.maxKeyI = i
			}
		}
	}
	if key < t.keys[t.maxKeyI] {
		t.pats[t.maxKeyI] = sp
		t.keys[t.maxKeyI] = key
		t.maxKeyI = -1
	}
}

// shared is the cross-worker mining state: F* and the tied best set. F* is
// additionally published as atomic float bits so the hot pruning paths can
// read it without taking the mutex; it is monotonically non-decreasing, so a
// stale read can only under-prune, never cut a surviving branch.
type shared struct {
	fstarBits atomic.Uint64

	mu       sync.Mutex
	fstar    float64 // authoritative, guarded by mu
	ties     tieList
	tieCount int
}

func newShared(maxResults int) *shared {
	sh := &shared{fstar: inf()}
	sh.ties.max = maxResults
	sh.fstarBits.Store(math.Float64bits(sh.fstar))
	return sh
}

// load returns a recent lower bound on F* without locking.
func (sh *shared) load() float64 {
	return math.Float64frombits(sh.fstarBits.Load())
}

// seedFstar warm-starts F* to f before any worker runs, with an (initially)
// empty best set. Only sound when f is a score actually achieved by some
// pattern on the data about to be mined — incremental sessions guarantee
// that by seeding with the best cached score among clean seeds, whose
// patterns provably still exist with that exact score. Must not be called
// concurrently with workers.
func (sh *shared) seedFstar(f float64) {
	sh.fstar = f
	sh.fstarBits.Store(math.Float64bits(f))
}

// record updates F* and the tied best set. When the tie set overflows
// maxResults, the patterns with the smallest canonical keys are retained.
func (sh *shared) record(p *tgraph.Pattern, sc, x, y float64) {
	if sc < sh.load() {
		return // stale reads only under-filter; re-checked under the lock
	}
	// Canonicalize outside the lock: Key() allocates and walks the pattern,
	// and every surviving call needs it, so keep workers from serializing on
	// it. A racing F* raise can waste at most this one computation.
	key := p.Key()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch {
	case sc > sh.fstar:
		sh.fstar = sc
		sh.fstarBits.Store(math.Float64bits(sc))
		sh.ties.replace(ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y}, key)
		sh.tieCount = 1
	case sc == sh.fstar:
		sh.tieCount++
		sh.ties.add(ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y}, key)
	}
}

// injectTies replays a clean seed's cached tie set (count exact, patterns
// capped at the smallest maxResults keys) into the shared state without
// re-exploring the seed. Ties whose score has been overtaken by a higher
// F* contribute nothing, exactly as their re-discovered patterns would
// have been dropped by record.
func (sh *shared) injectTies(score float64, pats []ScoredPattern, keys []string, count int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch {
	case score < sh.fstar || count == 0:
		return
	case score > sh.fstar:
		// Unreachable from Session (injection happens at score == warm F*),
		// but keep the invariant "ties hold patterns scoring fstar" anyway.
		sh.fstar = score
		sh.fstarBits.Store(math.Float64bits(score))
		sh.ties.clear()
		sh.tieCount = 0
	}
	sh.tieCount += count
	for i := range pats {
		sh.ties.add(pats[i], keys[i])
	}
}

// canonicalBest returns the best set sorted by canonical pattern key, the
// deterministic order shared by sequential and parallel runs.
func (sh *shared) canonicalBest() []ScoredPattern {
	sort.Sort(&byKey{sp: sh.ties.pats, keys: sh.ties.keys})
	return sh.ties.pats
}

// byKey sorts the best set and its key cache in lockstep.
type byKey struct {
	sp   []ScoredPattern
	keys []string
}

func (b *byKey) Len() int           { return len(b.sp) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.sp[i], b.sp[j] = b.sp[j], b.sp[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}

// search is the per-worker DFS context.
type search struct {
	pos, neg []*tgraph.Graph
	opts     Options
	sh       *shared
	reg      *registry
	stats    Stats
	// seedID is the registry ordinal of the seed currently being explored;
	// entries registered during the seed's subtree carry it so incremental
	// sessions can retain exactly the entries of still-clean seeds.
	seedID int32
	// cap, when non-nil (session mode), captures the current seed's local
	// tie set so a later run can replay the seed without re-exploring it.
	cap *seedTies
	// setFree recycles residual.Set backing arrays across dfs frames (LIFO,
	// worker-local, so no synchronization). Only valid in integer-compression
	// mode: linear mode retains the sets inside registry entries.
	setFree []residual.Set
}

// seedTies tracks the running best score within one seed's subtree and the
// ties at it, under the same capped smallest-keys retention as the global
// best set so replay reproduces batch retention exactly. Worker-local.
type seedTies struct {
	best  float64
	count int
	pend  []ScoredPattern // ties awaiting canonical keys
	list  tieList
}

func (t *seedTies) reset() {
	t.best = inf()
	t.count = 0
	t.pend = t.pend[:0]
	t.list.clear()
}

// observe records a visited pattern against the seed's running best.
// Canonical keys are deferred: ties at a momentary best that a later,
// higher score wipes never pay for canonicalization. Keys are computed only
// when the capped retention rule actually needs them — the list reaching
// MaxResults — or when the seed finishes (flush), which yields the same
// retained subset as eager keying.
func (t *seedTies) observe(p *tgraph.Pattern, sc, x, y float64) {
	if sc < t.best {
		return
	}
	if sc > t.best {
		t.best = sc
		t.count = 0
		t.pend = t.pend[:0]
		t.list.clear()
	}
	t.count++
	sp := ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y}
	if len(t.pend)+len(t.list.pats) < t.list.max {
		t.pend = append(t.pend, sp)
		return
	}
	t.flush()
	t.list.add(sp, p.Key())
}

// flush keys every pending tie into the capped list.
func (t *seedTies) flush() {
	for i := range t.pend {
		t.list.add(t.pend[i], t.pend[i].Pattern.Key())
	}
	t.pend = t.pend[:0]
}

// getSet pops a recycled residual-set buffer, or nil for a fresh one.
func (s *search) getSet() residual.Set {
	if n := len(s.setFree); n > 0 {
		b := s.setFree[n-1]
		s.setFree = s.setFree[:n-1]
		return b
	}
	return nil
}

// putSet returns a residual-set buffer to the freelist. Callers must not
// retain the set afterwards.
func (s *search) putSet(b residual.Set) {
	if cap(b) > 0 {
		s.setFree = append(s.setFree, b[:0])
	}
}

// dfs explores the branch rooted at p, returning the best score seen in the
// branch (p included) and whether any F*-dependent prune (upper bound,
// subgraph, or supergraph) cut part of the subtree. The MaxEdges cut is
// structural — independent of F* — so it does not set the flag: a subtree
// finished without F*-dependent prunes has been searched exhaustively
// within the configured pattern-size bound, and its returned best is exact.
func (s *search) dfs(p *tgraph.Pattern, posE, negE grow.List) (float64, bool) {
	s.stats.PatternsExplored++
	if n := p.NumEdges(); n > s.stats.MaxEdgesSeen {
		s.stats.MaxEdgesSeen = n
	}
	x := posE.Frequency(len(s.pos))
	y := negE.Frequency(len(s.neg))
	sc := s.opts.Score.Score(x, y)
	s.sh.record(p, sc, x, y)
	if s.cap != nil {
		s.cap.observe(p, sc, x, y)
	}
	branchBest := sc
	pruned := false

	resPos := posE.ResidualSetInto(s.getSet())
	iPos := resPos.I(s.pos)

	// Negative residual sets are only needed by supergraph pruning and its
	// registration; computed at most once per pattern, and only when a
	// candidate actually requires comparison.
	var resNeg residual.Set
	var iNeg int64
	haveNeg := false
	negSet := func() (residual.Set, int64) {
		if !haveNeg {
			resNeg = negE.ResidualSetInto(s.getSet())
			iNeg = resNeg.I(s.neg)
			haveNeg = true
		}
		return resNeg, iNeg
	}

	prune := false
	switch {
	case p.NumEdges() >= s.opts.MaxEdges:
		prune = true
	case s.opts.Score.UpperBound(x) < s.sh.load():
		s.stats.UpperBoundPrunes++
		prune, pruned = true, true
	default:
		if s.opts.SubgraphPruning && s.subgraphPrune(p, resPos, iPos) {
			s.stats.SubgraphPrunes++
			prune, pruned = true, true
		}
		if !prune && s.opts.SupergraphPruning {
			if s.supergraphPrune(p, resPos, iPos, negSet) {
				s.stats.SupergraphPrunes++
				prune, pruned = true, true
			}
		}
	}

	if !prune {
		for _, ext := range grow.Extensions(p, s.pos, posE) {
			child := ext.Apply(p)
			childPos := grow.Extend(ext, s.pos, posE)
			childNeg := grow.Extend(ext, s.neg, negE)
			b, pr := s.dfs(child, childPos, childNeg)
			if b > branchBest {
				branchBest = b
			}
			pruned = pruned || pr
		}
	}

	s.register(p, resPos, iPos, negSet, branchBest, pruned)
	// In integer mode nothing past this point references the sets (registry
	// entries keep only iPos/iNeg), so their buffers recycle into the
	// freelist; linear mode stores them in the entry and must not.
	if !s.opts.ResidualLinear {
		s.putSet(resPos)
		if haveNeg {
			s.putSet(resNeg)
		}
	}
	return branchBest, pruned
}

// subgraphPrune implements Lemma 4: prune p when some earlier-discovered
// pattern g1 with a fully explored, sub-F* branch (a) is a temporal
// supergraph of p, (b) has the same positive residual graph set, and (c)
// has no extra node whose label appears in p's positive residual label set.
func (s *search) subgraphPrune(p *tgraph.Pattern, resPos residual.Set, iPos int64) bool {
	fstar := s.sh.load()
	for _, cand := range s.reg.candidates(iPos) {
		if cand.branchBest >= fstar {
			continue
		}
		if cand.edges < p.NumEdges() || cand.nodes < p.NumNodes() {
			continue
		}
		s.stats.ResidualEqTests++
		if s.opts.ResidualLinear {
			if !residual.EqualLinear(resPos, cand.resPos, s.pos) {
				continue
			}
		}
		// In integer mode, I(Gp,·) equality holds by bucket construction;
		// by Lemma 6 that is residual-set equality once the subgraph
		// relation (verified next) holds.
		s.stats.SubgraphTests++
		mapping, ok := s.opts.Tester.Test(p, cand.pat)
		if !ok {
			continue
		}
		if extra := extraLabels(cand.pat, mapping); len(extra) > 0 {
			if labelsTouchResiduals(resPos, extra, s.pos) {
				continue
			}
		}
		return true
	}
	return false
}

// supergraphPrune implements Proposition 2: prune p when some
// earlier-discovered pattern g1 with a sub-F* branch is a temporal subgraph
// of p with identical positive and negative residual sets and the same node
// count. negSet lazily supplies p's negative residual set.
func (s *search) supergraphPrune(p *tgraph.Pattern, resPos residual.Set, iPos int64, negSet func() (residual.Set, int64)) bool {
	fstar := s.sh.load()
	for _, cand := range s.reg.candidates(iPos) {
		if cand.branchBest >= fstar {
			continue
		}
		if cand.edges > p.NumEdges() || cand.nodes != p.NumNodes() {
			continue
		}
		resNeg, iNeg := negSet()
		s.stats.ResidualEqTests += 2
		if s.opts.ResidualLinear {
			if !residual.EqualLinear(resPos, cand.resPos, s.pos) {
				continue
			}
			if !residual.EqualLinear(resNeg, cand.resNeg, s.neg) {
				continue
			}
		} else if cand.iNeg != iNeg {
			continue
		}
		s.stats.SubgraphTests++
		if _, ok := s.opts.Tester.Test(cand.pat, p); !ok {
			continue
		}
		return true
	}
	return false
}

// extraLabels returns the labels of g1 nodes that are not images of the
// mapped subpattern's nodes (the set L_{g1\g2} of Lemma 4).
func extraLabels(g1 *tgraph.Pattern, mapping []tgraph.NodeID) []tgraph.Label {
	image := make([]bool, g1.NumNodes())
	for _, v := range mapping {
		if v >= 0 {
			image[v] = true
		}
	}
	var out []tgraph.Label
	for v := 0; v < g1.NumNodes(); v++ {
		if !image[v] {
			out = append(out, g1.LabelOf(tgraph.NodeID(v)))
		}
	}
	return out
}

// labelsTouchResiduals reports whether any of the labels occurs in any
// residual graph of the set (i.e., L(Gp, g2) ∩ labels ≠ ∅).
func labelsTouchResiduals(set residual.Set, labels []tgraph.Label, graphs []*tgraph.Graph) bool {
	for _, ref := range set {
		if residual.LabelsIntersectSuffix(ref, labels, graphs) {
			return true
		}
	}
	return false
}

// register adds a completed branch to the pruning registry.
func (s *search) register(p *tgraph.Pattern, resPos residual.Set, iPos int64, negSet func() (residual.Set, int64), branchBest float64, pruned bool) {
	if !s.opts.SubgraphPruning && !s.opts.SupergraphPruning {
		return
	}
	if s.reg.full() {
		return
	}
	e := &entry{
		pat:        p,
		nodes:      p.NumNodes(),
		edges:      p.NumEdges(),
		iPos:       iPos,
		branchBest: branchBest,
		seedID:     s.seedID,
		pruned:     pruned,
	}
	if s.opts.SupergraphPruning {
		resNeg, iNeg := negSet()
		e.iNeg = iNeg
		if s.opts.ResidualLinear {
			e.resNeg = resNeg
		}
	}
	if s.opts.ResidualLinear {
		e.resPos = resPos
	}
	s.reg.add(e)
}

// entry is one completed branch in the pruning registry.
type entry struct {
	pat        *tgraph.Pattern
	nodes      int
	edges      int
	iPos       int64
	iNeg       int64
	branchBest float64
	seedID     int32        // registry ordinal of the owning seed (session carry-over)
	pruned     bool         // an F*-dependent prune cut part of this entry's subtree
	resPos     residual.Set // only in linear mode
	resNeg     residual.Set // only in linear mode
}

// regShardCount is the number of registry shards; a power of two so the
// multiply-shift in shardOf reduces by taking the top log2(regShardCount)
// bits. 64 shards keep write contention negligible even at high worker
// counts while costing only ~64 mutexes of memory.
const regShardCount = 64

// regShard is one lock-striped slice of the registry. Reads vastly outnumber
// writes (every explored pattern probes candidates, only completed branches
// register), hence the RWMutex.
type regShard struct {
	mu     sync.RWMutex
	byIPos map[int64][]*entry
	all    []*entry // linear mode only (shard 0)
}

// registry indexes completed branches, sharded by a hash of I(Gp, ·) so
// concurrent workers rarely contend. In integer mode entries are bucketed by
// I(Gp, g), so candidate discovery touches only residual-set-equal patterns;
// in linear mode every candidate is compared by scanning (all entries live
// in shard 0), which is the cost the LinearScan baseline demonstrates.
//
// Entries are immutable once added and bucket slices only ever grow, so
// candidates can return a slice-header snapshot taken under RLock and let
// callers iterate lock-free: appends never mutate the snapshotted prefix.
type registry struct {
	linear bool
	max    int
	count  atomic.Int64
	shards [regShardCount]regShard
}

func newRegistry(linear bool, max int) *registry {
	r := &registry{linear: linear, max: max}
	if !linear {
		for i := range r.shards {
			r.shards[i].byIPos = make(map[int64][]*entry)
		}
	}
	return r
}

// shardOf maps an iPos to its shard by Fibonacci hashing; iPos values are
// small correlated integers, so multiplicative mixing beats masking.
func shardOf(iPos int64) int {
	return int((uint64(iPos) * 0x9E3779B97F4A7C15) >> (64 - 6)) // log2(regShardCount) = 6
}

// full reports whether the MaxRegistry cap is reached. Checked lock-free;
// under races a handful of entries past the cap may slip in, which only
// keeps a few extra pruning opportunities.
func (r *registry) full() bool {
	return r.count.Load() >= int64(r.max)
}

func (r *registry) size() int64 { return r.count.Load() }

func (r *registry) add(e *entry) {
	r.count.Add(1)
	if r.linear {
		sh := &r.shards[0]
		sh.mu.Lock()
		sh.all = append(sh.all, e)
		sh.mu.Unlock()
		return
	}
	sh := &r.shards[shardOf(e.iPos)]
	sh.mu.Lock()
	sh.byIPos[e.iPos] = append(sh.byIPos[e.iPos], e)
	sh.mu.Unlock()
}

// retain rebuilds the registry in place between runs, keeping only entries
// for which keep returns true and applying adjust (when non-nil) to each
// survivor. It mutates bucket backing arrays, so it must never run
// concurrently with add or candidates — incremental sessions call it only
// while no workers exist.
func (r *registry) retain(keep func(*entry) bool, adjust func(*entry)) {
	var n int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if r.linear {
			kept := sh.all[:0]
			for _, e := range sh.all {
				if keep(e) {
					if adjust != nil {
						adjust(e)
					}
					kept = append(kept, e)
				}
			}
			for j := len(kept); j < len(sh.all); j++ {
				sh.all[j] = nil
			}
			sh.all = kept
			n += int64(len(kept))
		} else {
			for ip, bucket := range sh.byIPos {
				kept := bucket[:0]
				for _, e := range bucket {
					if keep(e) {
						if adjust != nil {
							adjust(e)
						}
						kept = append(kept, e)
					}
				}
				if len(kept) == 0 {
					delete(sh.byIPos, ip)
					continue
				}
				for j := len(kept); j < len(bucket); j++ {
					bucket[j] = nil
				}
				sh.byIPos[ip] = kept
				n += int64(len(kept))
			}
		}
		sh.mu.Unlock()
	}
	r.count.Store(n)
}

func (r *registry) candidates(iPos int64) []*entry {
	if r.linear {
		sh := &r.shards[0]
		sh.mu.RLock()
		s := sh.all
		sh.mu.RUnlock()
		return s
	}
	sh := &r.shards[shardOf(iPos)]
	sh.mu.RLock()
	s := sh.byIPos[iPos]
	sh.mu.RUnlock()
	return s
}

// String renders stats compactly for logs.
func (s Stats) String() string {
	return fmt.Sprintf("patterns=%d ubPrunes=%d subPrunes=%d supPrunes=%d subTests=%d resEqTests=%d maxEdges=%d",
		s.PatternsExplored, s.UpperBoundPrunes, s.SubgraphPrunes, s.SupergraphPrunes,
		s.SubgraphTests, s.ResidualEqTests, s.MaxEdgesSeen)
}
