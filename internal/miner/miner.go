// Package miner implements TGMiner, the discriminative temporal graph
// pattern miner of Zong et al. (VLDB 2015), plus the five efficiency
// baselines the paper evaluates against (Section 6.1).
//
// Given a positive and a negative set of temporal graphs, Mine performs a
// depth-first search over the T-connected pattern space using consecutive
// growth (complete and repetition-free by Theorem 1), maintaining embedding
// lists incrementally. Search branches are cut by
//
//   - the naive upper-bound condition F(freq_p(g), 0) < F* (Section 4.1),
//   - subgraph pruning (Lemma 4), and
//   - supergraph pruning (Proposition 2),
//
// with residual-graph-set equivalence tested either in O(1) through the
// integer compression of Lemma 6 or by explicit linear scan (the LinearScan
// baseline), and temporal subgraph tests delegated to a pluggable
// SubgraphTester (sequence tests, modified VF2, or graph-index join).
package miner

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tgminer/internal/gindex"
	"tgminer/internal/grow"
	"tgminer/internal/residual"
	"tgminer/internal/score"
	"tgminer/internal/seqcode"
	"tgminer/internal/tgraph"
	"tgminer/internal/vf2"
)

// SubgraphTester decides temporal subgraph containment between patterns.
// Implementations: seqcode.Tester (TGMiner default), vf2.Tester (PruneVF2),
// gindex.Tester (PruneGI).
type SubgraphTester interface {
	// Name identifies the tester in stats output.
	Name() string
	// Test reports whether g1 is a temporal subgraph of g2 (g1 ⊆t g2),
	// returning the node mapping from g1 nodes to g2 nodes when it is.
	Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool)
}

// Options configures a mining run. Zero values are completed by
// normalize(); use the named constructors (TGMinerOptions etc.) for the
// paper's algorithm variants.
type Options struct {
	// Score is the discriminative score function F (default score.LogRatio).
	Score score.Func
	// MaxEdges bounds the size of explored patterns (default 6, the paper's
	// default behavior-query size; Figure 14 sweeps it up to 45).
	MaxEdges int
	// SubgraphPruning enables Lemma 4 pruning.
	SubgraphPruning bool
	// SupergraphPruning enables Proposition 2 pruning.
	SupergraphPruning bool
	// Tester performs temporal subgraph tests (default seqcode.Tester).
	Tester SubgraphTester
	// ResidualLinear switches residual-set equivalence from the Lemma 6
	// integer comparison to an explicit linear scan (LinearScan baseline).
	ResidualLinear bool
	// MaxResults caps how many tied best patterns are retained (default
	// 512). The count of ties seen is always exact in Result.TieCount.
	MaxResults int
	// MaxRegistry caps the number of completed branches retained for
	// pruning lookups; exceeding it only forgoes pruning opportunities
	// (default 1<<20).
	MaxRegistry int
}

// TGMinerOptions is the full TGMiner configuration: both prunings, sequence
// tests, integer residual compression.
func TGMinerOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true}
}

// SubPruneOptions enables only subgraph pruning (paper baseline 1).
func SubPruneOptions() Options {
	return Options{SubgraphPruning: true}
}

// SupPruneOptions enables only supergraph pruning (paper baseline 2).
func SupPruneOptions() Options {
	return Options{SupergraphPruning: true}
}

// PruneGIOptions uses all pruning but graph-index-join subgraph tests
// (paper baseline 3).
func PruneGIOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, Tester: &gindex.Tester{}}
}

// PruneVF2Options uses all pruning but modified-VF2 subgraph tests (paper
// baseline 4).
func PruneVF2Options() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, Tester: &vf2.Tester{}}
}

// LinearScanOptions uses all pruning but linear-scan residual equivalence
// tests (paper baseline 5).
func LinearScanOptions() Options {
	return Options{SubgraphPruning: true, SupergraphPruning: true, ResidualLinear: true}
}

// ExhaustiveOptions applies only the naive upper-bound pruning of
// Section 4.1 (the unnamed exhaustive strawman the paper motivates against).
func ExhaustiveOptions() Options {
	return Options{}
}

func (o Options) normalize() Options {
	if o.Score == nil {
		o.Score = score.LogRatio{}
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 6
	}
	if o.Tester == nil {
		o.Tester = &seqcode.Tester{}
	}
	if o.MaxResults <= 0 {
		o.MaxResults = 512
	}
	if o.MaxRegistry <= 0 {
		o.MaxRegistry = 1 << 20
	}
	return o
}

// ScoredPattern is a discovered pattern with its frequencies and score.
type ScoredPattern struct {
	Pattern *tgraph.Pattern
	Score   float64
	PosFreq float64
	NegFreq float64
}

// Stats aggregates search counters; Table 3 of the paper reports the
// trigger probabilities SubgraphPrunes/PatternsExplored and
// SupergraphPrunes/PatternsExplored.
type Stats struct {
	PatternsExplored int64
	UpperBoundPrunes int64
	SubgraphTests    int64
	ResidualEqTests  int64
	SubgraphPrunes   int64
	SupergraphPrunes int64
	RegistrySize     int64
	MaxEdgesSeen     int
}

// SubgraphTriggerRate returns the empirical probability that subgraph
// pruning fires while processing a pattern.
func (s Stats) SubgraphTriggerRate() float64 {
	if s.PatternsExplored == 0 {
		return 0
	}
	return float64(s.SubgraphPrunes) / float64(s.PatternsExplored)
}

// SupergraphTriggerRate returns the empirical probability that supergraph
// pruning fires while processing a pattern.
func (s Stats) SupergraphTriggerRate() float64 {
	if s.PatternsExplored == 0 {
		return 0
	}
	return float64(s.SupergraphPrunes) / float64(s.PatternsExplored)
}

// Result is the outcome of a mining run.
type Result struct {
	// Best holds the patterns achieving BestScore (up to MaxResults).
	Best []ScoredPattern
	// BestScore is F*.
	BestScore float64
	// TieCount is the exact number of patterns that achieved BestScore,
	// even when Best was capped.
	TieCount int
	Stats    Stats
	Elapsed  time.Duration
}

// ErrNoPositiveGraphs is returned when the positive set is empty.
var ErrNoPositiveGraphs = errors.New("miner: positive graph set is empty")

// Mine runs the discriminative pattern search over pos and neg.
func Mine(pos, neg []*tgraph.Graph, opts Options) (*Result, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	opts = opts.normalize()
	start := time.Now()
	s := &search{
		pos:   pos,
		neg:   neg,
		opts:  opts,
		fstar: inf(),
		reg:   newRegistry(opts.ResidualLinear),
	}
	seeds := grow.Seeds(pos, neg)
	// Explore high-positive-support, low-negative-support seeds first. F*
	// reaches its ceiling as soon as a maximally frequent, zero-negative
	// pattern is found, after which the upper-bound condition kills every
	// lower-support branch on sight and the subgraph/supergraph conditions
	// can cut redundant frequent-but-undiscriminative branches — the "find
	// discriminative patterns early to prune early" strategy the paper
	// cites from leap search [30]. Ordering only affects speed: the
	// searched-or-pruned set of maximum-score patterns is unchanged.
	sort.SliceStable(seeds, func(i, j int) bool {
		pi, pj := seeds[i].Pos.SupportCount(), seeds[j].Pos.SupportCount()
		if pi != pj {
			return pi > pj
		}
		return seeds[i].Neg.SupportCount() < seeds[j].Neg.SupportCount()
	})
	for _, seed := range seeds {
		s.dfs(seed.Pattern, seed.Pos, seed.Neg)
	}
	res := &Result{
		Best:      s.best,
		BestScore: s.fstar,
		TieCount:  s.tieCount,
		Stats:     s.stats,
		Elapsed:   time.Since(start),
	}
	res.Stats.RegistrySize = int64(len(s.reg.entries))
	return res, nil
}

func inf() float64 { return -1e308 }

type search struct {
	pos, neg []*tgraph.Graph
	opts     Options
	fstar    float64
	best     []ScoredPattern
	tieCount int
	reg      *registry
	stats    Stats
}

// dfs explores the branch rooted at p, returning the best score seen in the
// branch (p included).
func (s *search) dfs(p *tgraph.Pattern, posE, negE grow.List) float64 {
	s.stats.PatternsExplored++
	if n := p.NumEdges(); n > s.stats.MaxEdgesSeen {
		s.stats.MaxEdgesSeen = n
	}
	x := posE.Frequency(len(s.pos))
	y := negE.Frequency(len(s.neg))
	sc := s.opts.Score.Score(x, y)
	s.record(p, sc, x, y)
	branchBest := sc

	resPos := posE.ResidualSet()
	iPos := resPos.I(s.pos)

	// Negative residual sets are only needed by supergraph pruning and its
	// registration; computed at most once per pattern, and only when a
	// candidate actually requires comparison.
	var resNeg residual.Set
	var iNeg int64
	haveNeg := false
	negSet := func() (residual.Set, int64) {
		if !haveNeg {
			resNeg = negE.ResidualSet()
			iNeg = resNeg.I(s.neg)
			haveNeg = true
		}
		return resNeg, iNeg
	}

	prune := false
	switch {
	case p.NumEdges() >= s.opts.MaxEdges:
		prune = true
	case s.opts.Score.UpperBound(x) < s.fstar:
		s.stats.UpperBoundPrunes++
		prune = true
	default:
		if s.opts.SubgraphPruning && s.subgraphPrune(p, resPos, iPos) {
			s.stats.SubgraphPrunes++
			prune = true
		}
		if !prune && s.opts.SupergraphPruning {
			if s.supergraphPrune(p, resPos, iPos, negSet) {
				s.stats.SupergraphPrunes++
				prune = true
			}
		}
	}

	if !prune {
		for _, ext := range grow.Extensions(p, s.pos, posE) {
			child := ext.Apply(p)
			childPos := grow.Extend(ext, s.pos, posE)
			childNeg := grow.Extend(ext, s.neg, negE)
			if b := s.dfs(child, childPos, childNeg); b > branchBest {
				branchBest = b
			}
		}
	}

	s.register(p, resPos, iPos, negSet, branchBest)
	return branchBest
}

// record updates F* and the tied best set.
func (s *search) record(p *tgraph.Pattern, sc, x, y float64) {
	switch {
	case sc > s.fstar:
		s.fstar = sc
		s.best = s.best[:0]
		s.best = append(s.best, ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
		s.tieCount = 1
	case sc == s.fstar:
		s.tieCount++
		if len(s.best) < s.opts.MaxResults {
			s.best = append(s.best, ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
		}
	}
}

// subgraphPrune implements Lemma 4: prune p when some earlier-discovered
// pattern g1 with a fully explored, sub-F* branch (a) is a temporal
// supergraph of p, (b) has the same positive residual graph set, and (c)
// has no extra node whose label appears in p's positive residual label set.
func (s *search) subgraphPrune(p *tgraph.Pattern, resPos residual.Set, iPos int64) bool {
	for _, cand := range s.reg.candidates(iPos) {
		if cand.branchBest >= s.fstar {
			continue
		}
		if cand.edges < p.NumEdges() || cand.nodes < p.NumNodes() {
			continue
		}
		s.stats.ResidualEqTests++
		if s.opts.ResidualLinear {
			if !residual.EqualLinear(resPos, cand.resPos, s.pos) {
				continue
			}
		}
		// In integer mode, I(Gp,·) equality holds by bucket construction;
		// by Lemma 6 that is residual-set equality once the subgraph
		// relation (verified next) holds.
		s.stats.SubgraphTests++
		mapping, ok := s.opts.Tester.Test(p, cand.pat)
		if !ok {
			continue
		}
		if extra := extraLabels(cand.pat, mapping); len(extra) > 0 {
			if labelsTouchResiduals(resPos, extra, s.pos) {
				continue
			}
		}
		return true
	}
	return false
}

// supergraphPrune implements Proposition 2: prune p when some
// earlier-discovered pattern g1 with a sub-F* branch is a temporal subgraph
// of p with identical positive and negative residual sets and the same node
// count. negSet lazily supplies p's negative residual set.
func (s *search) supergraphPrune(p *tgraph.Pattern, resPos residual.Set, iPos int64, negSet func() (residual.Set, int64)) bool {
	for _, cand := range s.reg.candidates(iPos) {
		if cand.branchBest >= s.fstar {
			continue
		}
		if cand.edges > p.NumEdges() || cand.nodes != p.NumNodes() {
			continue
		}
		resNeg, iNeg := negSet()
		s.stats.ResidualEqTests += 2
		if s.opts.ResidualLinear {
			if !residual.EqualLinear(resPos, cand.resPos, s.pos) {
				continue
			}
			if !residual.EqualLinear(resNeg, cand.resNeg, s.neg) {
				continue
			}
		} else if cand.iNeg != iNeg {
			continue
		}
		s.stats.SubgraphTests++
		if _, ok := s.opts.Tester.Test(cand.pat, p); !ok {
			continue
		}
		return true
	}
	return false
}

// extraLabels returns the labels of g1 nodes that are not images of the
// mapped subpattern's nodes (the set L_{g1\g2} of Lemma 4).
func extraLabels(g1 *tgraph.Pattern, mapping []tgraph.NodeID) []tgraph.Label {
	image := make([]bool, g1.NumNodes())
	for _, v := range mapping {
		if v >= 0 {
			image[v] = true
		}
	}
	var out []tgraph.Label
	for v := 0; v < g1.NumNodes(); v++ {
		if !image[v] {
			out = append(out, g1.LabelOf(tgraph.NodeID(v)))
		}
	}
	return out
}

// labelsTouchResiduals reports whether any of the labels occurs in any
// residual graph of the set (i.e., L(Gp, g2) ∩ labels ≠ ∅).
func labelsTouchResiduals(set residual.Set, labels []tgraph.Label, graphs []*tgraph.Graph) bool {
	for _, ref := range set {
		if residual.LabelsIntersectSuffix(ref, labels, graphs) {
			return true
		}
	}
	return false
}

// register adds a completed branch to the pruning registry.
func (s *search) register(p *tgraph.Pattern, resPos residual.Set, iPos int64, negSet func() (residual.Set, int64), branchBest float64) {
	if !s.opts.SubgraphPruning && !s.opts.SupergraphPruning {
		return
	}
	if len(s.reg.entries) >= s.opts.MaxRegistry {
		return
	}
	e := &entry{
		pat:        p,
		nodes:      p.NumNodes(),
		edges:      p.NumEdges(),
		iPos:       iPos,
		branchBest: branchBest,
	}
	if s.opts.SupergraphPruning {
		resNeg, iNeg := negSet()
		e.iNeg = iNeg
		if s.opts.ResidualLinear {
			e.resNeg = resNeg
		}
	}
	if s.opts.ResidualLinear {
		e.resPos = resPos
	}
	s.reg.add(e)
}

// entry is one completed branch in the pruning registry.
type entry struct {
	pat        *tgraph.Pattern
	nodes      int
	edges      int
	iPos       int64
	iNeg       int64
	branchBest float64
	resPos     residual.Set // only in linear mode
	resNeg     residual.Set // only in linear mode
}

// registry indexes completed branches. In integer mode entries are bucketed
// by I(Gp, g), so candidate discovery touches only residual-set-equal
// patterns; in linear mode every candidate is compared by scanning, which is
// the cost the LinearScan baseline demonstrates.
type registry struct {
	linear  bool
	entries []*entry
	byIPos  map[int64][]*entry
}

func newRegistry(linear bool) *registry {
	r := &registry{linear: linear}
	if !linear {
		r.byIPos = make(map[int64][]*entry)
	}
	return r
}

func (r *registry) add(e *entry) {
	r.entries = append(r.entries, e)
	if !r.linear {
		r.byIPos[e.iPos] = append(r.byIPos[e.iPos], e)
	}
}

func (r *registry) candidates(iPos int64) []*entry {
	if r.linear {
		return r.entries
	}
	return r.byIPos[iPos]
}

// String renders stats compactly for logs.
func (s Stats) String() string {
	return fmt.Sprintf("patterns=%d ubPrunes=%d subPrunes=%d supPrunes=%d subTests=%d resEqTests=%d maxEdges=%d",
		s.PatternsExplored, s.UpperBoundPrunes, s.SubgraphPrunes, s.SupergraphPrunes,
		s.SubgraphTests, s.ResidualEqTests, s.MaxEdgesSeen)
}
