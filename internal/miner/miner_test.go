package miner

import (
	"math/rand"
	"sort"
	"testing"

	"tgminer/internal/tgraph"
	"tgminer/internal/vf2"
)

// implantGraph builds a graph that interleaves a fixed "footprint" edge
// sequence (in order) with random noise edges.
func implantGraph(rng *rand.Rand, footprint [][2]tgraph.Label, noiseEdges, noiseLabels int) *tgraph.Graph {
	var b tgraph.Builder
	nodeOf := map[tgraph.Label]tgraph.NodeID{}
	getNode := func(l tgraph.Label) tgraph.NodeID {
		if v, ok := nodeOf[l]; ok {
			return v
		}
		v := b.AddNode(l)
		nodeOf[l] = v
		return v
	}
	type ev struct {
		src, dst tgraph.Label
		foot     bool
	}
	var evs []ev
	for _, e := range footprint {
		evs = append(evs, ev{src: e[0], dst: e[1], foot: true})
	}
	for i := 0; i < noiseEdges; i++ {
		evs = append(evs, ev{
			src: tgraph.Label(100 + rng.Intn(noiseLabels)),
			dst: tgraph.Label(100 + rng.Intn(noiseLabels)),
		})
	}
	// Random interleave preserving footprint order.
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	// Re-stabilize footprint order: extract foot events and reinsert in order.
	var footIdx []int
	for i, e := range evs {
		if e.foot {
			footIdx = append(footIdx, i)
		}
	}
	fi := 0
	for _, idx := range footIdx {
		evs[idx] = ev{src: footprint[fi][0], dst: footprint[fi][1], foot: true}
		fi++
	}
	t := int64(0)
	for _, e := range evs {
		if err := b.AddEdge(getNode(e.src), getNode(e.dst), t); err != nil {
			panic(err)
		}
		t++
	}
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

func noiseGraph(rng *rand.Rand, edges, labels int) *tgraph.Graph {
	return implantGraph(rng, nil, edges, labels)
}

func testSets(seed int64, nPos, nNeg int) ([]*tgraph.Graph, []*tgraph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	footprint := [][2]tgraph.Label{{1, 2}, {2, 3}, {3, 4}}
	var pos, neg []*tgraph.Graph
	for i := 0; i < nPos; i++ {
		pos = append(pos, implantGraph(rng, footprint, 4, 3))
	}
	for i := 0; i < nNeg; i++ {
		neg = append(neg, noiseGraph(rng, 6, 3))
	}
	return pos, neg
}

func TestMineFindsImplantedFootprint(t *testing.T) {
	pos, neg := testSets(1, 8, 8)
	res, err := Mine(pos, neg, TGMinerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no patterns found")
	}
	for _, sp := range res.Best {
		if sp.PosFreq != 1.0 {
			t.Errorf("best pattern pos freq = %v, want 1.0", sp.PosFreq)
		}
		if sp.NegFreq != 0.0 {
			t.Errorf("best pattern neg freq = %v, want 0.0", sp.NegFreq)
		}
	}
	// The footprint chain 1->2->3->4 (or a subchain) must be among the best.
	found := false
	for _, sp := range res.Best {
		if sp.Pattern.NumEdges() >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no multi-edge discriminative pattern found among %d best", len(res.Best))
	}
}

func TestMineEmptyPositiveErrors(t *testing.T) {
	_, neg := testSets(2, 2, 2)
	if _, err := Mine(nil, neg, TGMinerOptions()); err == nil {
		t.Errorf("Mine with empty positive set succeeded")
	}
}

func TestMineEmptyNegativeOK(t *testing.T) {
	pos, _ := testSets(3, 3, 0)
	res, err := Mine(pos, nil, TGMinerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Errorf("no patterns with empty negative set")
	}
}

func TestMineRespectsMaxEdges(t *testing.T) {
	pos, neg := testSets(4, 5, 5)
	opts := TGMinerOptions()
	opts.MaxEdges = 2
	res, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxEdgesSeen > 2 {
		t.Errorf("explored pattern with %d edges, max 2", res.Stats.MaxEdgesSeen)
	}
	for _, sp := range res.Best {
		if sp.Pattern.NumEdges() > 2 {
			t.Errorf("best pattern has %d edges", sp.Pattern.NumEdges())
		}
	}
}

func bestKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Best))
	for _, sp := range res.Best {
		keys = append(keys, sp.Pattern.Key())
	}
	sort.Strings(keys)
	return keys
}

func allConfigs() map[string]Options {
	return map[string]Options{
		"TGMiner":    TGMinerOptions(),
		"SubPrune":   SubPruneOptions(),
		"SupPrune":   SupPruneOptions(),
		"PruneGI":    PruneGIOptions(),
		"PruneVF2":   PruneVF2Options(),
		"LinearScan": LinearScanOptions(),
		"Exhaustive": ExhaustiveOptions(),
	}
}

// TestAllConfigsAgree validates Theorem 2 empirically: every algorithm
// variant must return exactly the same best score and the same set of
// maximum-score patterns.
func TestAllConfigsAgree(t *testing.T) {
	for seed := int64(10); seed < 18; seed++ {
		pos, neg := testSets(seed, 6, 6)
		var refScore float64
		var refKeys []string
		var refTies int
		first := true
		for name, opts := range allConfigs() {
			opts.MaxEdges = 4
			res, err := Mine(pos, neg, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			keys := bestKeys(res)
			if first {
				refScore, refKeys, refTies = res.BestScore, keys, res.TieCount
				first = false
				continue
			}
			if res.BestScore != refScore {
				t.Errorf("seed %d: %s best score %v != ref %v", seed, name, res.BestScore, refScore)
			}
			if res.TieCount != refTies {
				t.Errorf("seed %d: %s tie count %d != ref %d", seed, name, res.TieCount, refTies)
			}
			if len(keys) != len(refKeys) {
				t.Errorf("seed %d: %s found %d best patterns, ref %d", seed, name, len(keys), len(refKeys))
				continue
			}
			for i := range keys {
				if keys[i] != refKeys[i] {
					t.Errorf("seed %d: %s best pattern set differs from ref", seed, name)
					break
				}
			}
		}
	}
}

// TestBestFrequenciesIndependentlyVerified recomputes each best pattern's
// frequencies by running VF2 subgraph tests from scratch.
func TestBestFrequenciesIndependentlyVerified(t *testing.T) {
	pos, neg := testSets(42, 6, 6)
	opts := TGMinerOptions()
	opts.MaxEdges = 3
	res, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	freq := func(p *tgraph.Pattern, set []*tgraph.Graph) float64 {
		n := 0
		for _, g := range set {
			if _, ok := vf2.Subsumes(p, tgraph.PatternFromGraph(g)); ok {
				n++
			}
		}
		return float64(n) / float64(len(set))
	}
	for i, sp := range res.Best {
		if i >= 10 {
			break
		}
		if got := freq(sp.Pattern, pos); got != sp.PosFreq {
			t.Errorf("pattern %d: recomputed pos freq %v != reported %v", i, got, sp.PosFreq)
		}
		if got := freq(sp.Pattern, neg); got != sp.NegFreq {
			t.Errorf("pattern %d: recomputed neg freq %v != reported %v", i, got, sp.NegFreq)
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	pos, neg := testSets(77, 8, 8)
	optsFull := TGMinerOptions()
	optsFull.MaxEdges = 4
	full, err := Mine(pos, neg, optsFull)
	if err != nil {
		t.Fatal(err)
	}
	optsNone := ExhaustiveOptions()
	optsNone.MaxEdges = 4
	none, err := Mine(pos, neg, optsNone)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.PatternsExplored > none.Stats.PatternsExplored {
		t.Errorf("pruned search explored more patterns (%d) than exhaustive (%d)",
			full.Stats.PatternsExplored, none.Stats.PatternsExplored)
	}
	if full.Stats.SubgraphPrunes == 0 && full.Stats.SupergraphPrunes == 0 && full.Stats.UpperBoundPrunes == 0 {
		t.Log("warning: no pruning triggered on this input (allowed, but unusual)")
	}
}

func TestStatsTriggerRates(t *testing.T) {
	var s Stats
	if s.SubgraphTriggerRate() != 0 || s.SupergraphTriggerRate() != 0 {
		t.Errorf("zero stats must have zero trigger rates")
	}
	s.PatternsExplored = 100
	s.SubgraphPrunes = 25
	s.SupergraphPrunes = 5
	if s.SubgraphTriggerRate() != 0.25 {
		t.Errorf("SubgraphTriggerRate = %v", s.SubgraphTriggerRate())
	}
	if s.SupergraphTriggerRate() != 0.05 {
		t.Errorf("SupergraphTriggerRate = %v", s.SupergraphTriggerRate())
	}
	if s.String() == "" {
		t.Errorf("Stats.String empty")
	}
}

func TestMaxResultsCapsButCounts(t *testing.T) {
	pos, neg := testSets(5, 5, 5)
	opts := TGMinerOptions()
	opts.MaxEdges = 4
	opts.MaxResults = 1
	res, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) > 1 {
		t.Errorf("Best len = %d, want <= 1", len(res.Best))
	}
	if res.TieCount < len(res.Best) {
		t.Errorf("TieCount %d < len(Best) %d", res.TieCount, len(res.Best))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	pos, neg := testSets(6, 6, 6)
	opts := TGMinerOptions()
	opts.MaxEdges = 4
	r1, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Mine(pos, neg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestScore != r2.BestScore || r1.TieCount != r2.TieCount {
		t.Errorf("non-deterministic results: %v/%d vs %v/%d", r1.BestScore, r1.TieCount, r2.BestScore, r2.TieCount)
	}
	k1, k2 := bestKeys(r1), bestKeys(r2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("non-deterministic best set")
		}
	}
	if r1.Stats.PatternsExplored != r2.Stats.PatternsExplored {
		t.Errorf("non-deterministic exploration: %d vs %d", r1.Stats.PatternsExplored, r2.Stats.PatternsExplored)
	}
}
