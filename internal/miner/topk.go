package miner

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tgminer/internal/grow"
	"tgminer/internal/tgraph"
)

// TopKResult is the outcome of MineTopK.
type TopKResult struct {
	// Patterns holds the K highest-scoring distinct patterns, best first
	// (ties broken by fewer edges, then canonical key).
	Patterns []ScoredPattern
	// Threshold is the score of the K-th retained pattern (the final
	// pruning bound).
	Threshold float64
	Stats     Stats
	Elapsed   time.Duration
}

// MineTopK returns the K highest-scoring T-connected temporal patterns
// rather than only the tied maximum. It is a compatibility wrapper over
// MineTopKContext with a background context.
func MineTopK(pos, neg []*tgraph.Graph, k int, opts Options) (*TopKResult, error) {
	return MineTopKContext(context.Background(), pos, neg, k, opts)
}

// MineTopKContext extends the paper's Problem 1 to a ranked shortlist: the K
// best patterns under the total order (score desc, fewer edges, canonical
// key). The search uses the same consecutive-growth enumeration with
// upper-bound pruning against the current K-th best score.
//
// Subgraph/supergraph pruning are intentionally not applied: Lemma 4 and
// Proposition 2 only guarantee that the *maximum*-score patterns survive
// branch cuts, so a top-K search with them enabled could lose lower-ranked
// results. Only the (exact) upper-bound condition is used: UB(x) < the K-th
// score implies no descendant can displace any retained pattern.
//
// Like MineContext, seeds fan out to opts.Parallelism workers sharing the
// K-th-best threshold through atomic float bits; a stale (lower) threshold
// only under-prunes, so the returned top-K set is identical at every worker
// count. Cancellation is cooperative at seed granularity and returns the
// partial shortlist together with ctx.Err().
func MineTopKContext(ctx context.Context, pos, neg []*tgraph.Graph, k int, opts Options) (*TopKResult, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	if k <= 0 {
		k = 10
	}
	opts = opts.normalize()
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return &TopKResult{Threshold: inf(), Elapsed: time.Since(start)}, err
	}
	seeds := grow.Seeds(pos, neg)
	sort.SliceStable(seeds, func(i, j int) bool {
		pi, pj := seeds[i].Pos.SupportCount(), seeds[j].Pos.SupportCount()
		if pi != pj {
			return pi > pj
		}
		return seeds[i].Neg.SupportCount() < seeds[j].Neg.SupportCount()
	})

	workers := opts.Parallelism
	if workers > len(seeds) && len(seeds) > 0 {
		workers = len(seeds)
	}
	if workers < 1 {
		workers = 1
	}
	sh := newSharedTopK(k)
	searches := make([]*topkSearch, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s := &topkSearch{pos: pos, neg: neg, opts: opts, sh: sh}
		searches[w] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				s.dfs(seeds[i].Pattern, seeds[i].Pos, seeds[i].Neg)
			}
		}()
	}
	wg.Wait()

	var stats Stats
	for _, s := range searches {
		stats.merge(s.stats)
	}
	return &TopKResult{
		Patterns:  sh.ranked(),
		Threshold: sh.threshold(),
		Stats:     stats,
		Elapsed:   time.Since(start),
	}, ctx.Err()
}

// sharedTopK is the cross-worker shortlist: the K best patterns under
// lessScored, kept sorted. The K-th score is additionally published as
// atomic float bits (inf() while the list is not yet full) so the hot
// pruning and insertion fast paths read it without the mutex; it is
// monotonically non-decreasing, so a stale read can only under-prune.
type sharedTopK struct {
	k       int
	thrBits atomic.Uint64

	mu   sync.Mutex
	heap []ScoredPattern // sorted ascending by lessScored (best first)
}

func newSharedTopK(k int) *sharedTopK {
	sh := &sharedTopK{k: k}
	sh.thrBits.Store(math.Float64bits(inf()))
	return sh
}

// threshold returns a recent lower bound on the K-th best score, or inf()
// while fewer than K patterns have been retained.
func (sh *sharedTopK) threshold() float64 {
	return math.Float64frombits(sh.thrBits.Load())
}

// pruneBelow reports whether a branch whose descendants score at most ub
// can be cut: only once the list is full, and only on a strict comparison —
// a descendant tying the K-th score could still win its tie-break.
func (sh *sharedTopK) pruneBelow(ub float64) bool {
	thr := sh.threshold()
	return thr != inf() && ub < thr
}

// consider inserts sp when it beats the current K-th entry under the total
// order. Insertion is order-independent: the final list is the minimum K of
// lessScored over all considered patterns, regardless of arrival order, so
// parallel runs equal sequential runs exactly.
func (sh *sharedTopK) consider(sp ScoredPattern) {
	if thr := sh.threshold(); thr != inf() && sp.Score < thr {
		return // strictly below the K-th score: can never displace
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.heap) == sh.k && !lessScored(sp, sh.heap[sh.k-1]) {
		return
	}
	pos := sort.Search(len(sh.heap), func(i int) bool {
		return lessScored(sp, sh.heap[i])
	})
	sh.heap = append(sh.heap, ScoredPattern{})
	copy(sh.heap[pos+1:], sh.heap[pos:])
	sh.heap[pos] = sp
	if len(sh.heap) > sh.k {
		sh.heap = sh.heap[:sh.k]
	}
	if len(sh.heap) == sh.k {
		sh.thrBits.Store(math.Float64bits(sh.heap[sh.k-1].Score))
	}
}

// ranked returns the shortlist, best first.
func (sh *sharedTopK) ranked() []ScoredPattern {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.heap
}

// lessScored orders a before b when a scores higher (ties: fewer edges,
// then canonical key).
func lessScored(a, b ScoredPattern) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	ae, be := a.Pattern.NumEdges(), b.Pattern.NumEdges()
	if ae != be {
		return ae < be
	}
	return a.Pattern.Key() < b.Pattern.Key()
}

// topkSearch is the per-worker DFS context of the top-K search.
type topkSearch struct {
	pos, neg []*tgraph.Graph
	opts     Options
	sh       *sharedTopK
	stats    Stats
}

func (s *topkSearch) dfs(p *tgraph.Pattern, posE, negE grow.List) {
	s.stats.PatternsExplored++
	if n := p.NumEdges(); n > s.stats.MaxEdgesSeen {
		s.stats.MaxEdgesSeen = n
	}
	x := posE.Frequency(len(s.pos))
	y := negE.Frequency(len(s.neg))
	sc := s.opts.Score.Score(x, y)
	s.sh.consider(ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
	if p.NumEdges() >= s.opts.MaxEdges {
		return
	}
	// Exact pruning: no descendant can beat UB(x); prune when even the
	// K-th slot cannot be improved.
	if s.sh.pruneBelow(s.opts.Score.UpperBound(x)) {
		s.stats.UpperBoundPrunes++
		return
	}
	for _, ext := range grow.Extensions(p, s.pos, posE) {
		child := ext.Apply(p)
		childPos := grow.Extend(ext, s.pos, posE)
		childNeg := grow.Extend(ext, s.neg, negE)
		s.dfs(child, childPos, childNeg)
	}
}
