package miner

import (
	"sort"
	"time"

	"tgminer/internal/grow"
	"tgminer/internal/tgraph"
)

// TopKResult is the outcome of MineTopK.
type TopKResult struct {
	// Patterns holds the K highest-scoring distinct patterns, best first
	// (ties broken by fewer edges, then canonical key).
	Patterns []ScoredPattern
	// Threshold is the score of the K-th retained pattern (the final
	// pruning bound).
	Threshold float64
	Stats     Stats
	Elapsed   time.Duration
}

// MineTopK returns the K highest-scoring T-connected temporal patterns
// rather than only the tied maximum. This extends the paper's Problem 1 for
// library users who want a ranked shortlist; the search uses the same
// consecutive-growth enumeration with upper-bound pruning against the
// current K-th best score.
//
// Subgraph/supergraph pruning are intentionally not applied: Lemma 4 and
// Proposition 2 only guarantee that the *maximum*-score patterns survive
// branch cuts, so a top-K search with them enabled could lose lower-ranked
// results. Only the (exact) upper-bound condition is used.
func MineTopK(pos, neg []*tgraph.Graph, k int, opts Options) (*TopKResult, error) {
	if len(pos) == 0 {
		return nil, ErrNoPositiveGraphs
	}
	if k <= 0 {
		k = 10
	}
	opts = opts.normalize()
	start := time.Now()
	s := &topkSearch{
		pos:  pos,
		neg:  neg,
		opts: opts,
		k:    k,
	}
	seeds := grow.Seeds(pos, neg)
	sort.SliceStable(seeds, func(i, j int) bool {
		pi, pj := seeds[i].Pos.SupportCount(), seeds[j].Pos.SupportCount()
		if pi != pj {
			return pi > pj
		}
		return seeds[i].Neg.SupportCount() < seeds[j].Neg.SupportCount()
	})
	for _, seed := range seeds {
		s.dfs(seed.Pattern, seed.Pos, seed.Neg)
	}
	s.sortHeap()
	return &TopKResult{
		Patterns:  s.heap,
		Threshold: s.threshold(),
		Stats:     s.stats,
		Elapsed:   time.Since(start),
	}, nil
}

type topkSearch struct {
	pos, neg []*tgraph.Graph
	opts     Options
	k        int
	heap     []ScoredPattern // kept sorted descending by score (k is small)
	stats    Stats
}

func (s *topkSearch) threshold() float64 {
	if len(s.heap) < s.k {
		return inf()
	}
	return s.heap[len(s.heap)-1].Score
}

// insert adds a candidate, keeping the best k by (score, fewer edges, key).
func (s *topkSearch) insert(sp ScoredPattern) {
	pos := sort.Search(len(s.heap), func(i int) bool {
		return lessScored(sp, s.heap[i])
	})
	s.heap = append(s.heap, ScoredPattern{})
	copy(s.heap[pos+1:], s.heap[pos:])
	s.heap[pos] = sp
	if len(s.heap) > s.k {
		s.heap = s.heap[:s.k]
	}
}

// lessScored orders a before b when a scores higher (ties: fewer edges,
// then canonical key).
func lessScored(a, b ScoredPattern) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	ae, be := a.Pattern.NumEdges(), b.Pattern.NumEdges()
	if ae != be {
		return ae < be
	}
	return a.Pattern.Key() < b.Pattern.Key()
}

func (s *topkSearch) sortHeap() {
	sort.SliceStable(s.heap, func(i, j int) bool { return lessScored(s.heap[i], s.heap[j]) })
}

func (s *topkSearch) dfs(p *tgraph.Pattern, posE, negE grow.List) {
	s.stats.PatternsExplored++
	if n := p.NumEdges(); n > s.stats.MaxEdgesSeen {
		s.stats.MaxEdgesSeen = n
	}
	x := posE.Frequency(len(s.pos))
	y := negE.Frequency(len(s.neg))
	sc := s.opts.Score.Score(x, y)
	if len(s.heap) < s.k || sc > s.threshold() {
		s.insert(ScoredPattern{Pattern: p, Score: sc, PosFreq: x, NegFreq: y})
	}
	if p.NumEdges() >= s.opts.MaxEdges {
		return
	}
	// Exact pruning: no descendant can beat UB(x); prune when even the
	// K-th slot cannot be improved.
	if len(s.heap) >= s.k && s.opts.Score.UpperBound(x) < s.threshold() {
		s.stats.UpperBoundPrunes++
		return
	}
	for _, ext := range grow.Extensions(p, s.pos, posE) {
		child := ext.Apply(p)
		childPos := grow.Extend(ext, s.pos, posE)
		childNeg := grow.Extend(ext, s.neg, negE)
		s.dfs(child, childPos, childNeg)
	}
}
