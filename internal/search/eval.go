package search

import "sort"

// Interval is a ground-truth behavior occurrence's inclusive time range.
type Interval struct {
	Start int64
	End   int64
}

// Metrics are the paper's Section 6.2 accuracy measures for one behavior
// query against one test graph.
type Metrics struct {
	// Identified is the number of identified instances (matches).
	Identified int
	// Correct is the number of matches whose interval is fully contained in
	// a ground-truth interval of the behavior.
	Correct int
	// Discovered is the number of ground-truth instances containing at
	// least one correct match.
	Discovered int
	// Instances is the number of ground-truth instances.
	Instances int
}

// Precision is Correct/Identified (1 if no matches were identified and no
// instances exist; 0 if matches exist for a behavior with no instances).
func (m Metrics) Precision() float64 {
	if m.Identified == 0 {
		return 1
	}
	return float64(m.Correct) / float64(m.Identified)
}

// Recall is Discovered/Instances (1 when there are no instances).
func (m Metrics) Recall() float64 {
	if m.Instances == 0 {
		return 1
	}
	return float64(m.Discovered) / float64(m.Instances)
}

// Evaluate scores matches against the behavior's ground-truth intervals.
// Both slices may be in any order.
func Evaluate(matches []Match, truth []Interval) Metrics {
	m := Metrics{Identified: len(matches), Instances: len(truth)}
	if len(truth) == 0 {
		return m
	}
	sorted := append([]Interval(nil), truth...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	// maxEnd[j] is the largest End over sorted[0..j]. A truth interval
	// containing a match lies in the prefix with Start <= match.Start, and
	// with overlapping or nested truths it need not be the LAST interval
	// of that prefix — any prefix member whose End also reaches match.End
	// contains it. The running maximum bounds how far back a containing
	// interval can still exist, so the scan below stops early.
	maxEnd := make([]int64, len(sorted))
	for j, t := range sorted {
		maxEnd[j] = t.End
		if j > 0 && maxEnd[j-1] > t.End {
			maxEnd[j] = maxEnd[j-1]
		}
	}
	hit := make([]bool, len(sorted))
	for _, match := range matches {
		// Candidate truth intervals: every one with Start <= match.Start.
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Start > match.Start })
		correct := false
		for j := i - 1; j >= 0 && maxEnd[j] >= match.End; j-- {
			if sorted[j].End >= match.End {
				correct = true
				hit[j] = true
			}
		}
		if correct {
			m.Correct++
		}
	}
	for _, h := range hit {
		if h {
			m.Discovered++
		}
	}
	return m
}
