// Package search evaluates behavior queries against a large temporal graph,
// the query-processing substrate the TGMiner paper delegates to existing
// subgraph-matching techniques ([38], Section 6.1). Three query families are
// supported, matching the paper's three compared systems:
//
//   - temporal graph pattern queries (TGMiner): label- and order-preserving
//     embeddings found by indexed backtracking over the edge stream;
//   - non-temporal graph pattern queries (Ntemp): order-free embeddings of
//     collapsed patterns;
//   - label-set queries (NodeSet): minimal time windows containing a label
//     multiset.
//
// All three are bounded by a time window (the longest observed behavior
// duration, per the paper), and report matches as time intervals that the
// evaluation scores against ground truth with the paper's Section 6.2
// precision/recall semantics.
package search

import (
	"sort"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// Match is one identified instance: the time interval its matched edges
// span.
type Match struct {
	Start int64
	End   int64
}

// Engine holds the indexes for one host graph. Build once with NewEngine,
// then run any number of queries. Engines are safe for concurrent queries.
type Engine struct {
	g      *tgraph.Graph
	byPair map[[2]tgraph.Label][]int32
	out    [][]int32 // positions with node as source, sorted
	in     [][]int32 // positions with node as destination, sorted
}

// NewEngine indexes the host graph.
func NewEngine(g *tgraph.Graph) *Engine {
	e := &Engine{
		g:      g,
		byPair: make(map[[2]tgraph.Label][]int32),
		out:    make([][]int32, g.NumNodes()),
		in:     make([][]int32, g.NumNodes()),
	}
	for pos, ed := range g.Edges() {
		p := int32(pos)
		k := [2]tgraph.Label{g.LabelOf(ed.Src), g.LabelOf(ed.Dst)}
		e.byPair[k] = append(e.byPair[k], p)
		e.out[ed.Src] = append(e.out[ed.Src], p)
		e.in[ed.Dst] = append(e.in[ed.Dst], p)
	}
	return e
}

// Graph returns the indexed host graph.
func (e *Engine) Graph() *tgraph.Graph { return e.g }

// Options bounds a query run.
type Options struct {
	// Window is the maximum time span of a match (0 = unbounded; the paper
	// uses the longest observed behavior duration).
	Window int64
	// Limit caps the number of distinct match intervals returned
	// (default 100000). Truncation is reported via Result.Truncated.
	Limit int
}

func (o Options) normalize() Options {
	if o.Limit <= 0 {
		o.Limit = 100000
	}
	return o
}

// Result is a query outcome: deduplicated match intervals in start order.
type Result struct {
	Matches   []Match
	Truncated bool
}

// FindTemporal reports the distinct intervals where the temporal pattern
// embeds with edge order preserved.
func (e *Engine) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}
	}
	res := &resultSet{limit: opts.Limit}
	st := &tState{e: e, p: p, opts: opts, res: res}
	st.mapping = make([]tgraph.NodeID, p.NumNodes())
	for i := range st.mapping {
		st.mapping[i] = -1
	}
	st.used = make(map[tgraph.NodeID]bool, p.NumNodes())
	first := p.EdgeAt(0)
	key := [2]tgraph.Label{p.LabelOf(first.Src), p.LabelOf(first.Dst)}
	for _, pos := range e.byPair[key] {
		if res.full() {
			break
		}
		ge := e.g.EdgeAt(int(pos))
		if (first.Src == first.Dst) != (ge.Src == ge.Dst) {
			continue
		}
		st.bindEdge(first, ge, func() {
			st.startTime = ge.Time
			st.match(1, pos)
		})
	}
	return res.finish()
}

type tState struct {
	e         *Engine
	p         *tgraph.Pattern
	opts      Options
	res       *resultSet
	mapping   []tgraph.NodeID
	used      map[tgraph.NodeID]bool
	startTime int64
}

// bindEdge binds the endpoints of pattern edge pe to graph edge ge (which
// must already be label-compatible), runs fn, and unbinds.
func (s *tState) bindEdge(pe tgraph.PEdge, ge tgraph.Edge, fn func()) {
	var boundSrc, boundDst bool
	if s.mapping[pe.Src] == -1 {
		if s.used[ge.Src] {
			return
		}
		s.mapping[pe.Src] = ge.Src
		s.used[ge.Src] = true
		boundSrc = true
	} else if s.mapping[pe.Src] != ge.Src {
		return
	}
	if pe.Src != pe.Dst {
		if s.mapping[pe.Dst] == -1 {
			if s.used[ge.Dst] {
				if boundSrc {
					s.mapping[pe.Src] = -1
					delete(s.used, ge.Src)
				}
				return
			}
			s.mapping[pe.Dst] = ge.Dst
			s.used[ge.Dst] = true
			boundDst = true
		} else if s.mapping[pe.Dst] != ge.Dst {
			if boundSrc {
				s.mapping[pe.Src] = -1
				delete(s.used, ge.Src)
			}
			return
		}
	}
	fn()
	if boundSrc {
		s.mapping[pe.Src] = -1
		delete(s.used, ge.Src)
	}
	if boundDst {
		s.mapping[pe.Dst] = -1
		delete(s.used, ge.Dst)
	}
}

func (s *tState) match(k int, lastPos int32) {
	if s.res.full() {
		return
	}
	if k == s.p.NumEdges() {
		s.res.add(Match{Start: s.startTime, End: s.e.g.EdgeAt(int(lastPos)).Time})
		return
	}
	pe := s.p.EdgeAt(k)
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	deadline := int64(-1)
	if s.opts.Window > 0 {
		deadline = s.startTime + s.opts.Window - 1
	}
	try := func(pos int32) {
		ge := s.e.g.EdgeAt(int(pos))
		if deadline >= 0 && ge.Time > deadline {
			return
		}
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.e.g.LabelOf(ge.Src) != s.p.LabelOf(pe.Src) || s.e.g.LabelOf(ge.Dst) != s.p.LabelOf(pe.Dst) {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k+1, pos) })
	}
	switch {
	case ms != -1:
		iterAfter(s.e.out[ms], lastPos, func(pos int32) bool {
			if deadline >= 0 && s.e.g.EdgeAt(int(pos)).Time > deadline {
				return false
			}
			if md != -1 && s.e.g.EdgeAt(int(pos)).Dst != md {
				return true
			}
			try(pos)
			return !s.res.full()
		})
	case md != -1:
		iterAfter(s.e.in[md], lastPos, func(pos int32) bool {
			if deadline >= 0 && s.e.g.EdgeAt(int(pos)).Time > deadline {
				return false
			}
			try(pos)
			return !s.res.full()
		})
	default:
		// Unreachable for T-connected patterns beyond the first edge, but
		// handle defensively via the pair index.
		key := [2]tgraph.Label{s.p.LabelOf(pe.Src), s.p.LabelOf(pe.Dst)}
		iterAfter(s.e.byPair[key], lastPos, func(pos int32) bool {
			try(pos)
			return !s.res.full()
		})
	}
}

// iterAfter calls fn on each position strictly greater than after, in
// order, until fn returns false.
func iterAfter(list []int32, after int32, fn func(int32) bool) {
	i := sort.Search(len(list), func(i int) bool { return list[i] > after })
	for ; i < len(list); i++ {
		if !fn(list[i]) {
			return
		}
	}
}

// FindNonTemporal reports the distinct intervals where the collapsed
// (non-temporal) pattern embeds regardless of edge order, bounded by the
// window.
func (e *Engine) FindNonTemporal(p *gspan.Pattern, opts Options) Result {
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}
	}
	order := connectedEdgeOrder(p)
	res := &resultSet{limit: opts.Limit}
	st := &ntState{e: e, p: p, opts: opts, res: res, order: order}
	st.mapping = make([]tgraph.NodeID, p.NumNodes())
	for i := range st.mapping {
		st.mapping[i] = -1
	}
	st.used = make(map[tgraph.NodeID]bool, p.NumNodes())
	st.posUsed = make(map[int32]bool, p.NumEdges())
	st.match(0)
	return res.finish()
}

type ntState struct {
	e          *Engine
	p          *gspan.Pattern
	opts       Options
	res        *resultSet
	order      []gspan.Edge
	mapping    []tgraph.NodeID
	used       map[tgraph.NodeID]bool
	posUsed    map[int32]bool
	minT, maxT int64
	depth      int
}

func (s *ntState) match(k int) {
	if s.res.full() {
		return
	}
	if k == len(s.order) {
		s.res.add(Match{Start: s.minT, End: s.maxT})
		return
	}
	pe := s.order[k]
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) bool {
		if s.posUsed[pos] {
			return true
		}
		ge := s.e.g.EdgeAt(int(pos))
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return true
		}
		if s.e.g.LabelOf(ge.Src) != s.p.Labels[pe.Src] || s.e.g.LabelOf(ge.Dst) != s.p.Labels[pe.Dst] {
			return true
		}
		// Window feasibility.
		nMin, nMax := s.minT, s.maxT
		if k == 0 {
			nMin, nMax = ge.Time, ge.Time
		} else {
			if ge.Time < nMin {
				nMin = ge.Time
			}
			if ge.Time > nMax {
				nMax = ge.Time
			}
			if s.opts.Window > 0 && nMax-nMin+1 > s.opts.Window {
				return true
			}
		}
		oMin, oMax := s.minT, s.maxT
		s.minT, s.maxT = nMin, nMax
		s.posUsed[pos] = true
		s.bindPair(pe, ge, func() { s.match(k + 1) })
		delete(s.posUsed, pos)
		s.minT, s.maxT = oMin, oMax
		return !s.res.full()
	}
	switch {
	case ms != -1:
		for _, pos := range s.e.out[ms] {
			if md != -1 && s.e.g.EdgeAt(int(pos)).Dst != md {
				continue
			}
			if !try(pos) {
				break
			}
		}
	case md != -1:
		for _, pos := range s.e.in[md] {
			if !try(pos) {
				break
			}
		}
	default:
		key := [2]tgraph.Label{s.p.Labels[pe.Src], s.p.Labels[pe.Dst]}
		for _, pos := range s.e.byPair[key] {
			if !try(pos) {
				break
			}
		}
	}
}

func (s *ntState) bindPair(pe gspan.Edge, ge tgraph.Edge, fn func()) {
	var boundSrc, boundDst bool
	if s.mapping[pe.Src] == -1 {
		if s.used[ge.Src] {
			return
		}
		s.mapping[pe.Src] = ge.Src
		s.used[ge.Src] = true
		boundSrc = true
	} else if s.mapping[pe.Src] != ge.Src {
		return
	}
	if pe.Src != pe.Dst {
		if s.mapping[pe.Dst] == -1 {
			if s.used[ge.Dst] {
				if boundSrc {
					s.mapping[pe.Src] = -1
					delete(s.used, ge.Src)
				}
				return
			}
			s.mapping[pe.Dst] = ge.Dst
			s.used[ge.Dst] = true
			boundDst = true
		} else if s.mapping[pe.Dst] != ge.Dst {
			if boundSrc {
				s.mapping[pe.Src] = -1
				delete(s.used, ge.Src)
			}
			return
		}
	}
	fn()
	if boundSrc {
		s.mapping[pe.Src] = -1
		delete(s.used, ge.Src)
	}
	if boundDst {
		s.mapping[pe.Dst] = -1
		delete(s.used, ge.Dst)
	}
}

// connectedEdgeOrder orders pattern edges so each edge (after the first)
// shares a node with an earlier edge; required for index-driven matching.
func connectedEdgeOrder(p *gspan.Pattern) []gspan.Edge {
	edges := append([]gspan.Edge(nil), p.E...)
	if len(edges) <= 1 {
		return edges
	}
	ordered := make([]gspan.Edge, 1, len(edges))
	ordered[0] = edges[0]
	rest := append([]gspan.Edge(nil), edges[1:]...)
	seen := map[tgraph.NodeID]bool{edges[0].Src: true, edges[0].Dst: true}
	for len(rest) > 0 {
		found := -1
		for i, e := range rest {
			if seen[e.Src] || seen[e.Dst] {
				found = i
				break
			}
		}
		if found == -1 {
			// Disconnected pattern: fall back to remaining order (the
			// index-free default branch handles it).
			ordered = append(ordered, rest...)
			break
		}
		e := rest[found]
		seen[e.Src] = true
		seen[e.Dst] = true
		ordered = append(ordered, e)
		rest = append(rest[:found], rest[found+1:]...)
	}
	return ordered
}

// resultSet deduplicates match intervals with a cap.
type resultSet struct {
	limit     int
	seen      map[Match]bool
	matches   []Match
	truncated bool
}

func (r *resultSet) add(m Match) {
	if r.seen == nil {
		r.seen = make(map[Match]bool)
	}
	if r.seen[m] {
		return
	}
	if len(r.matches) >= r.limit {
		r.truncated = true
		return
	}
	r.seen[m] = true
	r.matches = append(r.matches, m)
}

func (r *resultSet) full() bool {
	if len(r.matches) >= r.limit {
		// The search stops as soon as the cap is reached, so further matches
		// may exist; report the result as truncated.
		r.truncated = true
		return true
	}
	return r.truncated
}

func (r *resultSet) finish() Result {
	sort.Slice(r.matches, func(i, j int) bool {
		if r.matches[i].Start != r.matches[j].Start {
			return r.matches[i].Start < r.matches[j].Start
		}
		return r.matches[i].End < r.matches[j].End
	})
	return Result{Matches: r.matches, Truncated: r.truncated}
}

// Union merges match sets, deduplicating intervals — the paper evaluates the
// union of its top-5 queries per behavior.
func Union(results ...Result) Result {
	rs := &resultSet{limit: 1 << 30}
	trunc := false
	for _, r := range results {
		trunc = trunc || r.Truncated
		for _, m := range r.Matches {
			rs.add(m)
		}
	}
	out := rs.finish()
	out.Truncated = trunc
	return out
}
