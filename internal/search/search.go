// Package search evaluates behavior queries against a large temporal graph,
// the query-processing substrate the TGMiner paper delegates to existing
// subgraph-matching techniques ([38], Section 6.1). Three query families are
// supported, matching the paper's three compared systems:
//
//   - temporal graph pattern queries (TGMiner): label- and order-preserving
//     embeddings found by indexed backtracking over the edge stream;
//   - non-temporal graph pattern queries (Ntemp): order-free embeddings of
//     collapsed patterns;
//   - label-set queries (NodeSet): minimal time windows containing a label
//     multiset.
//
// All three are bounded by a time window (the longest observed behavior
// duration, per the paper), and report matches as time intervals that the
// evaluation scores against ground truth with the paper's Section 6.2
// precision/recall semantics.
package search

import (
	"context"
	"sort"
	"sync"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// Match is one identified instance: the time interval its matched edges
// span.
type Match struct {
	Start int64
	End   int64
}

// maxDensePairCells bounds the dense label-pair table at 16M cells (64MB of
// offsets); hosts with larger label alphabets fall back to a sorted sparse
// pair index with O(log pairs) lookup, which only runs once per query edge.
const maxDensePairCells = 1 << 24

// Engine holds the indexes for one host graph in flat CSR form: edge
// positions grouped by source node (out), destination node (in), and
// endpoint label pair (pair), each as one offsets slice into one positions
// slice. Build once with NewEngine, then run any number of queries. Engines
// are safe for concurrent queries; per-query scratch state is pooled.
type Engine struct {
	g *tgraph.Graph

	outOff []int32 // node v's out positions: outPos[outOff[v]:outOff[v+1]]
	outPos []int32
	inOff  []int32 // node v's in positions: inPos[inOff[v]:inOff[v+1]]
	inPos  []int32

	// lblLocal remaps corpus-wide label IDs to a dense per-graph range so
	// the pair table is sized by distinct labels in this host, not by the
	// largest global label ID (a small graph carrying one high Dict ID must
	// not allocate a huge empty table). -1 marks labels absent here.
	lblLocal []int32
	numLocal int
	pairPos  []int32 // positions grouped by label pair, position order
	pairOff  []int32 // dense: local pair (s,d) at pairOff[s*numLocal+d : +1]
	pairKeys []int64 // sparse fallback: sorted local pair keys
	pairSpan [][2]int32

	// Merged-mode representation (engines built by mergeEngine, merge.go,
	// on the live compaction hot path). When outList is non-nil the engine
	// stores adjacency as per-node position slices instead of flat CSR:
	// untouched nodes share their list with the previous engine (for flat
	// ancestors, a zero-copy view into outPos/inPos), touched nodes carry
	// an owned, appendable copy. The pair index is the flat ancestor's
	// table plus a copy-on-write extension map holding every label pair
	// that has gained positions since the last full rebuild.
	outList  [][]int32
	inList   [][]int32
	outOwned []bool // outList[v] backing is owned by this merge chain
	inOwned  []bool
	flat     *Engine // last fully rebuilt (flat CSR) ancestor; nil when flat
	pairExt  map[pairKey]pairSeg

	used sync.Pool // *usedSet per-query scratch
}

// pairSeg is a merged engine's position list for one label pair: the flat
// ancestor's positions plus every extension since, with an ownership bit
// deciding whether the next merge may append in place.
type pairSeg struct {
	pos   []int32
	owned bool
}

// NewEngine indexes the host graph.
func NewEngine(g *tgraph.Graph) *Engine {
	e := &Engine{g: g}
	n := g.NumNodes()
	edges := g.Edges()

	// Out/in adjacency as CSR: count, prefix-sum, fill. Edge positions are
	// visited in increasing order, so each bucket ends up sorted.
	e.outOff = make([]int32, n+1)
	e.inOff = make([]int32, n+1)
	for _, ed := range edges {
		e.outOff[int(ed.Src)+1]++
		e.inOff[int(ed.Dst)+1]++
	}
	for v := 0; v < n; v++ {
		e.outOff[v+1] = addPos(e.outOff[v+1], e.outOff[v])
		e.inOff[v+1] = addPos(e.inOff[v+1], e.inOff[v])
	}
	e.outPos = make([]int32, len(edges))
	e.inPos = make([]int32, len(edges))
	outNext := append([]int32(nil), e.outOff[:n]...)
	inNext := append([]int32(nil), e.inOff[:n]...)
	for pos, ed := range edges {
		e.outPos[outNext[ed.Src]] = int32(pos)
		outNext[ed.Src]++
		e.inPos[inNext[ed.Dst]] = int32(pos)
		inNext[ed.Dst]++
	}

	maxLabel := tgraph.Label(-1)
	for _, l := range g.Labels() {
		if l > maxLabel {
			maxLabel = l
		}
	}
	e.lblLocal = make([]int32, int(maxLabel)+1)
	for i := range e.lblLocal {
		e.lblLocal[i] = -1
	}
	for _, l := range g.Labels() {
		if l >= 0 && e.lblLocal[l] == -1 {
			e.lblLocal[l] = int32(e.numLocal)
			e.numLocal++
		}
	}
	e.pairPos = make([]int32, len(edges))
	if cells := int64(e.numLocal) * int64(e.numLocal); cells <= maxDensePairCells {
		e.buildDensePairs(edges, int(cells))
	} else {
		e.buildSparsePairs(edges)
	}
	e.used.New = func() any { return new(usedSet) }
	return e
}

func (e *Engine) buildDensePairs(edges []tgraph.Edge, cells int) {
	e.pairOff = make([]int32, cells+1)
	for _, ed := range edges {
		e.pairOff[e.pairCell(ed)+1]++
	}
	for c := 0; c < cells; c++ {
		e.pairOff[c+1] = addPos(e.pairOff[c+1], e.pairOff[c])
	}
	next := append([]int32(nil), e.pairOff[:cells]...)
	for pos, ed := range edges {
		c := e.pairCell(ed)
		e.pairPos[next[c]] = int32(pos)
		next[c]++
	}
}

func (e *Engine) buildSparsePairs(edges []tgraph.Edge) {
	keyed := make([]int64, len(edges))
	order := make([]int32, len(edges))
	for pos, ed := range edges {
		keyed[pos] = int64(e.pairCell(ed))
		order[pos] = int32(pos)
	}
	sort.SliceStable(order, func(i, j int) bool { return keyed[order[i]] < keyed[order[j]] })
	for i, pos := range order {
		e.pairPos[i] = pos
	}
	for i := 0; i < len(order); {
		k := keyed[order[i]]
		j := i
		for j < len(order) && keyed[order[j]] == k {
			j++
		}
		e.pairKeys = append(e.pairKeys, k)
		e.pairSpan = append(e.pairSpan, [2]int32{int32(i), int32(j)})
		i = j
	}
}

// pairCell maps a host edge's endpoint labels to its local pair cell. Host
// nodes always have valid local IDs.
func (e *Engine) pairCell(ed tgraph.Edge) int {
	s := e.lblLocal[e.g.LabelOf(ed.Src)]
	d := e.lblLocal[e.g.LabelOf(ed.Dst)]
	return int(s)*e.numLocal + int(d)
}

// pairPositions returns the edge positions whose endpoint labels are
// (src, dst), in increasing position order. Query labels absent from the
// host graph return nil.
func (e *Engine) pairPositions(src, dst tgraph.Label) []int32 {
	if e.flat != nil { // merged mode: extension map first, flat ancestor else
		if s, ok := e.pairExt[pairKey{src, dst}]; ok {
			return s.pos
		}
		return e.flat.pairPositions(src, dst)
	}
	if src < 0 || dst < 0 || int(src) >= len(e.lblLocal) || int(dst) >= len(e.lblLocal) {
		return nil
	}
	ls, ld := e.lblLocal[src], e.lblLocal[dst]
	if ls < 0 || ld < 0 {
		return nil
	}
	c := int(ls)*e.numLocal + int(ld)
	if e.pairOff != nil {
		return e.pairPos[e.pairOff[c]:e.pairOff[c+1]]
	}
	k := int64(c)
	i := sort.Search(len(e.pairKeys), func(i int) bool { return e.pairKeys[i] >= k })
	if i == len(e.pairKeys) || e.pairKeys[i] != k {
		return nil
	}
	return e.pairPos[e.pairSpan[i][0]:e.pairSpan[i][1]]
}

// outAt returns the positions of edges with node v as source.
func (e *Engine) outAt(v tgraph.NodeID) []int32 {
	if e.outList != nil {
		return e.outList[v]
	}
	return e.outPos[e.outOff[v]:e.outOff[int(v)+1]]
}

// inAt returns the positions of edges with node v as destination.
func (e *Engine) inAt(v tgraph.NodeID) []int32 {
	if e.inList != nil {
		return e.inList[v]
	}
	return e.inPos[e.inOff[v]:e.inOff[int(v)+1]]
}

// usedSet is an epoch-stamped node set: reset is O(1) (bump the epoch), and
// membership is one indexed load, replacing the per-query map[NodeID]bool
// the matcher loops used to probe.
type usedSet struct {
	stamp []uint32
	cur   uint32
}

// reset prepares the set for a host graph of n nodes and empties it.
func (u *usedSet) reset(n int) {
	if len(u.stamp) < n {
		u.stamp = make([]uint32, n)
		u.cur = 0
	}
	u.cur++
	if u.cur == 0 { // epoch wrapped: clear stamps and restart
		clear(u.stamp)
		u.cur = 1
	}
}

func (u *usedSet) has(v tgraph.NodeID) bool { return u.stamp[v] == u.cur }
func (u *usedSet) add(v tgraph.NodeID)      { u.stamp[v] = u.cur }
func (u *usedSet) remove(v tgraph.NodeID)   { u.stamp[v] = 0 }

// getUsed leases a usedSet sized for the host graph from the engine pool.
func (e *Engine) getUsed() *usedSet {
	u := e.used.Get().(*usedSet)
	u.reset(e.g.NumNodes())
	return u
}

// Graph returns the indexed host graph.
func (e *Engine) Graph() *tgraph.Graph { return e.g }

// Options bounds a query run.
type Options struct {
	// Window is the maximum time span of a match (0 = unbounded; the paper
	// uses the longest observed behavior duration).
	Window int64
	// Limit caps the number of distinct match intervals returned
	// (default 100000). Result.Truncated is exact: after the cap the
	// search runs on until it either completes one further distinct match
	// (Truncated=true) or exhausts (false) — use a context deadline, not
	// Limit, as a hard work bound.
	Limit int
	// Constraints attaches per-hop temporal constraints (gaps, start
	// windows, optional hops, bounded repetition) to TEMPORAL queries; nil
	// matches the plain order-preserving semantics. Non-temporal and
	// label-set queries ignore it. See Constraints and HopConstraint
	// (automaton.go).
	Constraints *Constraints
}

func (o Options) normalize() Options {
	if o.Limit <= 0 {
		o.Limit = 100000
	}
	return o
}

// Result is a query outcome: deduplicated match intervals in start order.
type Result struct {
	Matches   []Match
	Truncated bool
}

// FindTemporal reports the distinct intervals where the temporal pattern
// embeds with edge order preserved. It is a compatibility wrapper that
// collects FindTemporalContext with a background context; streaming callers
// should range over StreamTemporal instead.
func (e *Engine) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	r, _ := e.FindTemporalContext(context.Background(), p, opts)
	return r
}

// posOfTime returns the first global edge position whose time is >= t.
// Positions are time-ordered (the Builder enforces strictly increasing
// timestamps), so this is the guard-pruning skip-ahead for constrained
// temporal steps. Works for merged-mode engines too: their host graph is
// the fully merged, time-sorted edge sequence.
func (e *Engine) posOfTime(t int64) int32 {
	edges := e.g.Edges()
	return int32(sort.Search(len(edges), func(i int) bool { return edges[i].Time >= t }))
}

// iterAfter calls fn on each position strictly greater than after, in
// order, until fn returns false.
func iterAfter(list []int32, after int32, fn func(int32) bool) {
	iterAfterOK(list, after, fn)
}

// iterAfterOK is iterAfter reporting whether the scan ran to completion
// (false when fn stopped it), so two-segment indexes can chain scans.
func iterAfterOK(list []int32, after int32, fn func(int32) bool) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] > after })
	for ; i < len(list); i++ {
		if !fn(list[i]) {
			return false
		}
	}
	return true
}

// FindNonTemporal reports the distinct intervals where the collapsed
// (non-temporal) pattern embeds regardless of edge order, bounded by the
// window. It is the background-context compatibility form of
// FindNonTemporalContext.
func (e *Engine) FindNonTemporal(p *gspan.Pattern, opts Options) Result {
	r, _ := e.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindNonTemporalContext evaluates the collapsed (non-temporal) pattern
// under a context: the search polls the context cooperatively (every
// ctxCheckMask+1 steps) and on cancellation returns the distinct intervals
// found so far together with ctx.Err().
func (e *Engine) FindNonTemporalContext(ctx context.Context, p *gspan.Pattern, opts Options) (Result, error) {
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}, nil
	}
	// Up-front poll: the in-recursion probe is throttled, so a search over
	// a small host could otherwise finish without noticing a dead context.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	st := &ntState{e: e}
	st.initNT(ctx, p, opts, e.getUsed())
	defer e.used.Put(st.used)
	st.match(0)
	return st.finish()
}

// ntCore is the host-independent non-temporal matcher state shared by the
// static (ntState) and live (ntLiveState, live.go) matchers: pattern,
// result accumulation, bindings, window bookkeeping, and cooperative
// cancellation — the non-temporal counterpart of matchCore.
type ntCore struct {
	p       *gspan.Pattern
	opts    Options
	res     *resultSet
	order   []gspan.Edge
	mapping []tgraph.NodeID
	used    *usedSet
	// posUsed lists the host edge positions bound so far; patterns are a
	// handful of edges, so a linear scan beats any map or bitset. Keys are
	// int64 so the sharded matcher can disambiguate per-shard position
	// spaces ((shard << 32) | pos); single-host matchers pass plain
	// positions.
	posUsed    []int64
	minT, maxT int64
	done       bool
	ctx        context.Context
	ctxErr     error
	steps      int
}

func (s *ntCore) initNT(ctx context.Context, p *gspan.Pattern, opts Options, used *usedSet) {
	s.ctx = ctx
	s.p = p
	s.opts = opts
	s.res = &resultSet{limit: opts.Limit}
	s.order = connectedEdgeOrder(p)
	s.mapping = make([]tgraph.NodeID, p.NumNodes())
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	s.used = used
	s.posUsed = make([]int64, 0, p.NumEdges())
}

// stepCancelled is the throttled in-recursion stop probe (see
// matchCore.stepCancelled).
func (s *ntCore) stepCancelled() bool {
	if s.done {
		return true
	}
	s.steps++
	if s.steps&ctxCheckMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.ctxErr = err
			s.done = true
			return true
		}
	}
	return false
}

func (s *ntCore) finish() (Result, error) {
	return s.res.finish(), s.ctxErr
}

func (s *ntCore) posIsUsed(pos int64) bool {
	for _, p := range s.posUsed {
		if p == pos {
			return true
		}
	}
	return false
}

// tryEdge attempts to bind pattern edge pe (the k-th in matching order) to
// host edge ge at position key pos whose endpoints carry srcLab/dstLab: the
// used-position, self-loop-parity, label, and window-feasibility checks,
// then the recursion via rec. It reports whether the caller's candidate
// scan should continue.
func (s *ntCore) tryEdge(k int, pe gspan.Edge, ge tgraph.Edge, pos int64, srcLab, dstLab tgraph.Label, rec func()) bool {
	if s.posIsUsed(pos) {
		return true
	}
	if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
		return true
	}
	if srcLab != s.p.Labels[pe.Src] || dstLab != s.p.Labels[pe.Dst] {
		return true
	}
	// Window feasibility.
	nMin, nMax := s.minT, s.maxT
	if k == 0 {
		nMin, nMax = ge.Time, ge.Time
	} else {
		if ge.Time < nMin {
			nMin = ge.Time
		}
		if ge.Time > nMax {
			nMax = ge.Time
		}
		if s.opts.Window > 0 && nMax-nMin+1 > s.opts.Window {
			return true
		}
	}
	oMin, oMax := s.minT, s.maxT
	s.minT, s.maxT = nMin, nMax
	s.posUsed = append(s.posUsed, pos)
	s.bindPair(pe, ge, rec)
	s.posUsed = s.posUsed[:len(s.posUsed)-1]
	s.minT, s.maxT = oMin, oMax
	return !s.done
}

// ntState is the non-temporal matcher over a static Engine.
//
// ntState.match and ntLiveState.match (live.go) are deliberate twins, kept
// monomorphic per host exactly like tState/liveState; a semantic change to
// either MUST be mirrored in the other, and the live==static differential
// property test enforces agreement.
type ntState struct {
	ntCore
	e *Engine
}

func (s *ntState) match(k int) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.order) {
		s.res.add(Match{Start: s.minT, End: s.maxT})
		if s.res.full() {
			s.done = true
		}
		return
	}
	pe := s.order[k]
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) bool {
		ge := s.e.g.EdgeAt(int(pos))
		return s.tryEdge(k, pe, ge, int64(pos), s.e.g.LabelOf(ge.Src), s.e.g.LabelOf(ge.Dst), func() { s.match(k + 1) })
	}
	switch {
	case ms != -1:
		for _, pos := range s.e.outAt(ms) {
			if md != -1 && s.e.g.EdgeAt(int(pos)).Dst != md {
				continue
			}
			if !try(pos) {
				break
			}
		}
	case md != -1:
		for _, pos := range s.e.inAt(md) {
			if !try(pos) {
				break
			}
		}
	default:
		for _, pos := range s.e.pairPositions(s.p.Labels[pe.Src], s.p.Labels[pe.Dst]) {
			if !try(pos) {
				break
			}
		}
	}
}

func (s *ntCore) bindPair(pe gspan.Edge, ge tgraph.Edge, fn func()) {
	var boundSrc, boundDst bool
	if s.mapping[pe.Src] == -1 {
		if s.used.has(ge.Src) {
			return
		}
		s.mapping[pe.Src] = ge.Src
		s.used.add(ge.Src)
		boundSrc = true
	} else if s.mapping[pe.Src] != ge.Src {
		return
	}
	if pe.Src != pe.Dst {
		if s.mapping[pe.Dst] == -1 {
			if s.used.has(ge.Dst) {
				if boundSrc {
					s.mapping[pe.Src] = -1
					s.used.remove(ge.Src)
				}
				return
			}
			s.mapping[pe.Dst] = ge.Dst
			s.used.add(ge.Dst)
			boundDst = true
		} else if s.mapping[pe.Dst] != ge.Dst {
			if boundSrc {
				s.mapping[pe.Src] = -1
				s.used.remove(ge.Src)
			}
			return
		}
	}
	fn()
	if boundSrc {
		s.mapping[pe.Src] = -1
		s.used.remove(ge.Src)
	}
	if boundDst {
		s.mapping[pe.Dst] = -1
		s.used.remove(ge.Dst)
	}
}

// connectedEdgeOrder orders pattern edges so each edge (after the first)
// shares a node with an earlier edge; required for index-driven matching.
func connectedEdgeOrder(p *gspan.Pattern) []gspan.Edge {
	edges := append([]gspan.Edge(nil), p.E...)
	if len(edges) <= 1 {
		return edges
	}
	ordered := make([]gspan.Edge, 1, len(edges))
	ordered[0] = edges[0]
	rest := append([]gspan.Edge(nil), edges[1:]...)
	seen := map[tgraph.NodeID]bool{edges[0].Src: true, edges[0].Dst: true}
	for len(rest) > 0 {
		found := -1
		for i, e := range rest {
			if seen[e.Src] || seen[e.Dst] {
				found = i
				break
			}
		}
		if found == -1 {
			// Disconnected pattern: fall back to remaining order (the
			// index-free default branch handles it).
			ordered = append(ordered, rest...)
			break
		}
		e := rest[found]
		seen[e.Src] = true
		seen[e.Dst] = true
		ordered = append(ordered, e)
		rest = append(rest[:found], rest[found+1:]...)
	}
	return ordered
}

// resultSet deduplicates match intervals with a cap.
type resultSet struct {
	limit     int
	seen      map[Match]struct{}
	matches   []Match
	truncated bool
}

func (r *resultSet) add(m Match) {
	// Duplicate check first (a lookup, so no state grows post-limit): a
	// duplicate of an already-returned interval is never evidence of
	// truncation, so a search whose distinct matches number exactly Limit
	// finishes with Truncated=false no matter how many duplicate
	// candidates arrive after the cap.
	if r.seen != nil {
		if _, dup := r.seen[m]; dup {
			return
		}
	}
	if len(r.matches) >= r.limit {
		// A distinct match beyond the cap: genuinely truncated.
		r.truncated = true
		return
	}
	if r.seen == nil {
		r.seen = make(map[Match]struct{})
	}
	r.seen[m] = struct{}{}
	r.matches = append(r.matches, m)
}

// full reports whether the search should stop: only once a distinct
// over-the-cap match has proven truncation (the search runs on at the cap
// so duplicates cannot masquerade as truncation).
func (r *resultSet) full() bool { return r.truncated }

func (r *resultSet) finish() Result {
	sortMatches(r.matches)
	return Result{Matches: r.matches, Truncated: r.truncated}
}

// Union merges match sets, deduplicating intervals — the paper evaluates the
// union of its top-5 queries per behavior.
func Union(results ...Result) Result {
	rs := &resultSet{limit: 1 << 30}
	trunc := false
	for _, r := range results {
		trunc = trunc || r.Truncated
		for _, m := range r.Matches {
			rs.add(m)
		}
	}
	out := rs.finish()
	out.Truncated = trunc
	return out
}
