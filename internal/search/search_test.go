package search

import (
	"testing"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// hostGraph builds a host with labels per node and edges timestamped by
// slice order.
func hostGraph(t *testing.T, labels []tgraph.Label, edges [][2]tgraph.NodeID) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for i, e := range edges {
		if err := b.AddEdge(e[0], e[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pat(t *testing.T, labels []tgraph.Label, edges []tgraph.PEdge) *tgraph.Pattern {
	t.Helper()
	p, err := tgraph.NewPattern(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFindTemporalBasic(t *testing.T) {
	// Host: A->B (t0), B->C (t1), A->B (t2), B->C (t3)
	g := hostGraph(t, []tgraph.Label{0, 1, 2},
		[][2]tgraph.NodeID{{0, 1}, {1, 2}, {0, 1}, {1, 2}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	res := e.FindTemporal(p, Options{})
	// Matches: (0,1), (0,3), (2,3) as intervals.
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %v, want 3", res.Matches)
	}
	want := []Match{{0, 1}, {0, 3}, {2, 3}}
	for i, m := range res.Matches {
		if m != want[i] {
			t.Errorf("match %d = %v, want %v", i, m, want[i])
		}
	}
}

func TestFindTemporalOrderSensitive(t *testing.T) {
	// Host has B->C before A->B: the ordered pattern A->B then B->C must
	// not match.
	g := hostGraph(t, []tgraph.Label{0, 1, 2}, [][2]tgraph.NodeID{{1, 2}, {0, 1}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if res := e.FindTemporal(p, Options{}); len(res.Matches) != 0 {
		t.Errorf("order-violating match found: %v", res.Matches)
	}
}

func TestFindTemporalWindow(t *testing.T) {
	// Two-edge chain spread far apart; tight window rejects it.
	g := hostGraph(t, []tgraph.Label{0, 1, 2}, nil)
	var b tgraph.Builder
	for _, l := range []tgraph.Label{0, 1, 2} {
		b.AddNode(l)
	}
	_ = b.AddEdge(0, 1, 0)
	_ = b.AddEdge(1, 2, 1000)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if res := e.FindTemporal(p, Options{Window: 10}); len(res.Matches) != 0 {
		t.Errorf("window ignored: %v", res.Matches)
	}
	if res := e.FindTemporal(p, Options{Window: 2000}); len(res.Matches) != 1 {
		t.Errorf("wide window missed match: %v", res.Matches)
	}
}

func TestFindTemporalInjective(t *testing.T) {
	// Pattern with two distinct B nodes needs two distinct host B nodes.
	g := hostGraph(t, []tgraph.Label{0, 1}, [][2]tgraph.NodeID{{0, 1}, {0, 1}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	if res := e.FindTemporal(p, Options{}); len(res.Matches) != 0 {
		t.Errorf("non-injective match: %v", res.Matches)
	}
	g2 := hostGraph(t, []tgraph.Label{0, 1, 1}, [][2]tgraph.NodeID{{0, 1}, {0, 2}})
	e2 := NewEngine(g2)
	if res := e2.FindTemporal(p, Options{}); len(res.Matches) != 1 {
		t.Errorf("injective match missed: %v", res.Matches)
	}
}

func TestFindTemporalLimit(t *testing.T) {
	labels := []tgraph.Label{0, 1}
	var edges [][2]tgraph.NodeID
	for i := 0; i < 20; i++ {
		edges = append(edges, [2]tgraph.NodeID{0, 1})
	}
	g := hostGraph(t, labels, edges)
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	res := e.FindTemporal(p, Options{Limit: 5})
	if len(res.Matches) != 5 || !res.Truncated {
		t.Errorf("limit not applied: %d matches truncated=%v", len(res.Matches), res.Truncated)
	}
}

func TestFindNonTemporalIgnoresOrder(t *testing.T) {
	// Host B->C before A->B; the non-temporal pattern matches anyway.
	g := hostGraph(t, []tgraph.Label{0, 1, 2}, [][2]tgraph.NodeID{{1, 2}, {0, 1}})
	e := NewEngine(g)
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1, 2},
		E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	res := e.FindNonTemporal(np, Options{})
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want 1", res.Matches)
	}
	if res.Matches[0] != (Match{0, 1}) {
		t.Errorf("match interval = %v", res.Matches[0])
	}
}

func TestFindNonTemporalThreeEdgesScrambled(t *testing.T) {
	// Regression: connectedEdgeOrder must not alias its work buffers; a
	// 3+ edge pattern listed in scrambled order used to lose an edge.
	g := hostGraph(t, []tgraph.Label{0, 1, 2, 3},
		[][2]tgraph.NodeID{{0, 1}, {2, 1}, {1, 3}})
	e := NewEngine(g)
	for _, order := range [][]gspan.Edge{
		{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 3}},
		{{Src: 1, Dst: 3}, {Src: 0, Dst: 1}, {Src: 2, Dst: 1}},
		{{Src: 2, Dst: 1}, {Src: 1, Dst: 3}, {Src: 0, Dst: 1}},
	} {
		np := &gspan.Pattern{Labels: []tgraph.Label{0, 1, 2, 3}, E: order}
		res := e.FindNonTemporal(np, Options{})
		if len(res.Matches) != 1 {
			t.Errorf("order %v: matches = %v, want 1", order, res.Matches)
		}
	}
	// 4-edge star variant.
	g2 := hostGraph(t, []tgraph.Label{0, 1, 2, 3, 4},
		[][2]tgraph.NodeID{{0, 1}, {2, 1}, {1, 3}, {1, 4}})
	e2 := NewEngine(g2)
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1, 2, 3, 4},
		E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4}}}
	if res := e2.FindNonTemporal(np, Options{}); len(res.Matches) != 1 {
		t.Errorf("4-edge star: matches = %v, want 1", res.Matches)
	}
}

func TestFindNonTemporalWindow(t *testing.T) {
	var b tgraph.Builder
	for _, l := range []tgraph.Label{0, 1, 2} {
		b.AddNode(l)
	}
	_ = b.AddEdge(1, 2, 0)
	_ = b.AddEdge(0, 1, 500)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1, 2},
		E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	if res := e.FindNonTemporal(np, Options{Window: 100}); len(res.Matches) != 0 {
		t.Errorf("window ignored: %v", res.Matches)
	}
}

// TestFindNonTemporalExactLimitNotTruncated pins the resultSet
// dup-check-first fix: duplicate embeddings of the same interval arriving
// after the limit-th distinct match must not flag truncation.
//
// Host a->b1@0, a->b2@1 with the order-free pattern A->B, A->B': the two
// embeddings (b1,b2) and (b2,b1) span the same interval (0,1), so with
// Limit=1 a duplicate arrives after the cap is full.
func TestFindNonTemporalExactLimitNotTruncated(t *testing.T) {
	g := hostGraph(t, []tgraph.Label{0, 1, 1}, [][2]tgraph.NodeID{{0, 1}, {0, 2}})
	e := NewEngine(g)
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1, 1},
		E: []gspan.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}}
	res := e.FindNonTemporal(np, Options{})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{0, 1}) || res.Truncated {
		t.Fatalf("fixture: %+v, want exactly [{0 1}] untruncated", res)
	}
	res = e.FindNonTemporal(np, Options{Limit: 1})
	if len(res.Matches) != 1 || res.Truncated {
		t.Fatalf("limit==distinct count: %+v, want 1 match with Truncated=false", res)
	}
	// A genuinely missed distinct interval still truncates: a third B node
	// adds the distinct intervals (0,2) and (1,2).
	g2 := hostGraph(t, []tgraph.Label{0, 1, 1, 1}, [][2]tgraph.NodeID{{0, 1}, {0, 2}, {0, 3}})
	res2 := NewEngine(g2).FindNonTemporal(np, Options{Limit: 1})
	if len(res2.Matches) != 1 || !res2.Truncated {
		t.Fatalf("distinct match beyond cap: %+v, want Truncated=true", res2)
	}
}

func TestFindLabelSetBasic(t *testing.T) {
	// Labels 5,6,7 co-occur in a tight range; query {5,6,7}.
	g := hostGraph(t, []tgraph.Label{5, 6, 7, 9},
		[][2]tgraph.NodeID{{0, 3}, {1, 3}, {2, 3}})
	e := NewEngine(g)
	res := e.FindLabelSet([]tgraph.Label{5, 6, 7}, Options{Window: 10})
	if len(res.Matches) == 0 {
		t.Fatalf("no label-set match found")
	}
	if res.Matches[0].Start != 0 || res.Matches[0].End != 2 {
		t.Errorf("match = %v, want [0,2]", res.Matches[0])
	}
}

func TestFindLabelSetNeedsDistinctNodes(t *testing.T) {
	// Query {5,5} needs two distinct nodes labeled 5.
	oneNode := hostGraph(t, []tgraph.Label{5, 9}, [][2]tgraph.NodeID{{0, 1}, {0, 1}})
	e := NewEngine(oneNode)
	if res := e.FindLabelSet([]tgraph.Label{5, 5}, Options{Window: 10}); len(res.Matches) != 0 {
		t.Errorf("single node satisfied multiset query: %v", res.Matches)
	}
	twoNodes := hostGraph(t, []tgraph.Label{5, 5, 9}, [][2]tgraph.NodeID{{0, 2}, {1, 2}})
	e2 := NewEngine(twoNodes)
	if res := e2.FindLabelSet([]tgraph.Label{5, 5}, Options{Window: 10}); len(res.Matches) == 0 {
		t.Errorf("two distinct nodes not found")
	}
}

func TestFindLabelSetWindow(t *testing.T) {
	var b tgraph.Builder
	b.AddNode(5)
	b.AddNode(6)
	b.AddNode(9)
	_ = b.AddEdge(0, 2, 0)    // label 5 at t=0
	_ = b.AddEdge(1, 2, 1000) // label 6 at t=1000
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	if res := e.FindLabelSet([]tgraph.Label{5, 6}, Options{Window: 100}); len(res.Matches) != 0 {
		t.Errorf("window ignored: %v", res.Matches)
	}
	if res := e.FindLabelSet([]tgraph.Label{5, 6}, Options{Window: 2000}); len(res.Matches) == 0 {
		t.Errorf("wide window missed")
	}
}

// TestFindLabelSetSelfLoop pins the one-event-per-distinct-endpoint rule:
// a self-loop edge has one endpoint and must contribute one label event,
// and a single self-looping node must not satisfy a multiset needing two
// distinct nodes of its label.
func TestFindLabelSetSelfLoop(t *testing.T) {
	// Node 0 (label 5) self-loops at t=0; node 1 (label 6) -> node 2
	// (label 9) at t=1.
	g := hostGraph(t, []tgraph.Label{5, 6, 9}, [][2]tgraph.NodeID{{0, 0}, {1, 2}})
	e := NewEngine(g)
	// The event builder emits exactly one event for the self-loop.
	need := labelNeed([]tgraph.Label{5, 6})
	forEach := func(fn func(tgraph.Edge) bool) {
		for _, ed := range g.Edges() {
			if !fn(ed) {
				return
			}
		}
	}
	evs := labelSetEvents(need, g.NumEdges(), forEach, g.LabelOf)
	if len(evs) != 2 {
		t.Fatalf("self-loop inflated events: got %d (%+v), want 2", len(evs), evs)
	}
	// One self-looping node is not two distinct nodes labeled 5.
	if res := e.FindLabelSet([]tgraph.Label{5, 5}, Options{Window: 10}); len(res.Matches) != 0 {
		t.Errorf("self-loop satisfied two-node multiset: %v", res.Matches)
	}
	// But it does count once toward {5,6}.
	res := e.FindLabelSet([]tgraph.Label{5, 6}, Options{Window: 10})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{0, 1}) {
		t.Errorf("self-loop window = %v, want [{0 1}]", res.Matches)
	}
}

func TestUnionDeduplicates(t *testing.T) {
	a := Result{Matches: []Match{{0, 5}, {10, 15}}}
	b := Result{Matches: []Match{{0, 5}, {20, 25}}, Truncated: true}
	u := Union(a, b)
	if len(u.Matches) != 3 {
		t.Errorf("union = %v, want 3 distinct", u.Matches)
	}
	if !u.Truncated {
		t.Errorf("truncation flag lost")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	truth := []Interval{{0, 10}, {20, 30}, {40, 50}}
	matches := []Match{
		{1, 5},   // correct, inside [0,10]
		{2, 9},   // correct, same instance
		{22, 28}, // correct, inside [20,30]
		{35, 45}, // incorrect: spans gap
		{60, 70}, // incorrect: outside
	}
	m := Evaluate(matches, truth)
	if m.Identified != 5 || m.Correct != 3 || m.Discovered != 2 || m.Instances != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if p := m.Precision(); p != 0.6 {
		t.Errorf("precision = %v, want 0.6", p)
	}
	if r := m.Recall(); r < 0.66 || r > 0.67 {
		t.Errorf("recall = %v, want 2/3", r)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.Precision() != 1 || m.Recall() != 1 {
		t.Errorf("empty metrics: %v/%v", m.Precision(), m.Recall())
	}
	m2 := Evaluate([]Match{{0, 1}}, nil)
	if m2.Precision() != 0 {
		t.Errorf("false positives with no truth: precision = %v", m2.Precision())
	}
}

// TestEvaluateNestedTruth is the regression for the single-candidate bug:
// with overlapping or nested ground-truth intervals, a match contained in
// an earlier, longer interval must still count as correct even when a
// later-starting nested interval is the closest by Start.
func TestEvaluateNestedTruth(t *testing.T) {
	truth := []Interval{{0, 100}, {10, 20}}
	// (30,40) is inside [0,100] but after [10,20], the last interval with
	// Start <= 30 — the old single-candidate probe missed it entirely.
	m := Evaluate([]Match{{30, 40}}, truth)
	if m.Correct != 1 || m.Discovered != 1 {
		t.Fatalf("nested truth: %+v, want Correct=1 Discovered=1", m)
	}
	// A match inside BOTH nested intervals discovers both instances.
	m2 := Evaluate([]Match{{12, 18}}, truth)
	if m2.Correct != 1 || m2.Discovered != 2 {
		t.Fatalf("doubly-contained match: %+v, want Correct=1 Discovered=2", m2)
	}
	// Overlapping (not nested) intervals: containment in the earlier one.
	m3 := Evaluate([]Match{{45, 50}}, []Interval{{0, 50}, {40, 60}})
	if m3.Correct != 1 || m3.Discovered != 2 {
		t.Fatalf("overlap: %+v, want Correct=1 Discovered=2", m3)
	}
	// Equal Starts with different Ends.
	m4 := Evaluate([]Match{{5, 30}}, []Interval{{5, 10}, {5, 40}})
	if m4.Correct != 1 || m4.Discovered != 1 {
		t.Fatalf("equal starts: %+v, want Correct=1 Discovered=1", m4)
	}
	// A match contained in nothing stays incorrect.
	m5 := Evaluate([]Match{{15, 25}}, []Interval{{0, 10}, {20, 30}})
	if m5.Correct != 0 || m5.Discovered != 0 {
		t.Fatalf("uncontained: %+v, want zero", m5)
	}
}

func TestEvaluateExactBoundary(t *testing.T) {
	truth := []Interval{{10, 20}}
	m := Evaluate([]Match{{10, 20}}, truth)
	if m.Correct != 1 {
		t.Errorf("boundary-exact match not counted: %+v", m)
	}
	m2 := Evaluate([]Match{{9, 20}}, truth)
	if m2.Correct != 0 {
		t.Errorf("out-of-bounds match counted: %+v", m2)
	}
}
