package search

// This file implements incremental (non-rebuilding) compaction for the Live
// engine: the tail is already time-sorted, every tail position exceeds every
// base position, and the tail posLists are already per-node and
// per-label-pair position indexes in position order — so folding the tail
// into the base is a pure segment-append merge, not a rebuild. mergeGen
// extends the existing Engine's storage instead of calling
// NewEngine(buildGraph()):
//
//   - the edge array and node labels extend via tgraph.ExtendSorted
//     (amortized in-place append on the chain tip, no re-sort);
//   - each touched per-node out/in position list extends with its tail
//     posList contents; untouched nodes share their list with the previous
//     engine by reference (for flat ancestors, a zero-copy CSR view);
//   - each touched label pair's position list extends likewise in a
//     copy-on-write extension map consulted before the flat ancestor.
//
// Cost is O(tail + touched lists + nodes + extended pairs) — the last two
// terms are the outer per-node array copies and the pairExt map clone,
// both bounded relative to the tail by the auto-compaction eligibility
// guard in Append — versus O((base+tail) log(base+tail)) for the rebuild,
// so compaction cost scales with the tail, not the base
// (BenchmarkLiveCompact, BENCH_PR4.json).
//
// Eviction: the merge CARRIES the floor into the merged generation rather
// than rebasing positions — evicted edges stay in the arrays and queries
// keep skipping them in O(log) via the floor, exactly as before the
// compaction. Space is reclaimed by falling back to a full rebuild (which
// drops the dead prefix and rebases the floor to 0) once the dead prefix
// reaches half of the edge array, bounding retained memory at 2x the live
// set while keeping the common sliding-window compaction O(tail). The
// rebuilt-vs-merged equivalence across eviction/AddNode interleavings is
// pinned by TestLiveMergeMatchesRebuild and the differential property
// tests.
//
// Safety under lock-free readers follows the package's append-only
// discipline: a merge writes only (a) freshly allocated arrays, or (b)
// slots strictly beyond every published length of an owned backing array.
// Ownership is tracked per list (outOwned/inOwned/pairSeg.owned): lists
// still viewed from a flat ancestor's CSR are never appended in place
// (their spare capacity belongs to the next CSR bucket). The writer mutex
// plus publish-immediately makes engine lineages linear, so each engine is
// merge-extended at most once and no slot is ever written twice.

import (
	"tgminer/internal/tgraph"
)

// canMerge reports whether a view is eligible for incremental
// merge-compaction: it has a base to extend and its dead (evicted) prefix
// is still below half of the edge array, the threshold past which
// compaction rebuilds to reclaim the space.
func canMerge(v genView) bool {
	return v.g.base != nil && 2*int64(v.g.floor) < int64(v.end())
}

// newTailLists allocates n fresh posLists in one slab.
func newTailLists(n int) ([]*posList, []*posList) {
	slab := make([]posList, 2*n)
	out := make([]*posList, n)
	in := make([]*posList, n)
	for i := 0; i < n; i++ {
		out[i] = &slab[i]
		in[i] = &slab[n+i]
	}
	return out, in
}

// extendPositions returns list extended with ext. When owned, the append
// may write in place into the list's spare capacity (beyond every published
// length — safe under concurrent readers); otherwise the list is copied
// first with geometric headroom so future merges amortize.
func extendPositions(list, ext []int32, owned bool) []int32 {
	if !owned {
		need := len(list) + len(ext)
		fresh := make([]int32, 0, need+need/2+4)
		list = append(fresh, list...)
	}
	return append(list, ext...)
}

// mergeGen builds the post-compaction generation by extending the base
// engine with the tail segment. Caller must hold the writer mutex and have
// checked canMerge; the view must be writer-exact. The merged generation
// keeps the floor (see the file comment for the eviction contract) and
// fresh, empty tail storage sized for the next cycle.
func mergeGen(v genView) *generation {
	g := v.g
	base := mergeEngine(v)
	ng := &generation{
		base:      base,
		baseEdges: int32(base.g.NumEdges()),
		floor:     g.floor,
		labels:    g.labels,
		tailArr:   newTailArr(len(v.tail)),
		tailN:     freshCounter(0),
		pair:      make(map[pairKey]*posList),
		lastTime:  v.lastTime(),

		compactions:     g.compactions + 1,
		merges:          g.merges + 1,
		lastCompactTail: len(v.tail),
	}
	ng.tailOut, ng.tailIn = newTailLists(len(g.labels))
	return ng
}

// mergeEngine extends a view's base Engine with its tail: the incremental
// constructor the compaction hot path uses instead of
// NewEngine(buildGraph()). The view must be writer-exact.
func mergeEngine(v genView) *Engine {
	g := v.g
	base := g.base
	bn := base.g.NumNodes()
	n := len(g.labels)
	graph, err := base.g.ExtendSorted(g.labels[bn:], v.tail)
	if err != nil {
		// Unreachable: Append enforces node bounds and the strict total
		// order ExtendSorted re-validates.
		panic("search: live tail lost the base's total order: " + err.Error())
	}
	e := &Engine{g: graph}
	if base.flat != nil {
		e.flat = base.flat
	} else {
		e.flat = base
	}

	// Per-node out/in lists: share every base list by reference, then
	// copy-or-append-extend exactly the nodes the tail touched.
	e.outList = make([][]int32, n)
	e.inList = make([][]int32, n)
	e.outOwned = make([]bool, n)
	e.inOwned = make([]bool, n)
	for nd := 0; nd < bn; nd++ {
		e.outList[nd] = base.outAt(tgraph.NodeID(nd))
		e.inList[nd] = base.inAt(tgraph.NodeID(nd))
	}
	if base.outOwned != nil {
		copy(e.outOwned, base.outOwned)
		copy(e.inOwned, base.inOwned)
	}
	for nd := 0; nd < n; nd++ {
		if ext := g.tailOut[nd].view(); len(ext) > 0 {
			e.outList[nd] = extendPositions(e.outList[nd], ext, e.outOwned[nd])
			e.outOwned[nd] = true
		}
		if ext := g.tailIn[nd].view(); len(ext) > 0 {
			e.inList[nd] = extendPositions(e.inList[nd], ext, e.inOwned[nd])
			e.inOwned[nd] = true
		}
	}

	// Label-pair extension map: clone (readers of the base engine may be
	// probing its map concurrently, so never mutate it), then extend the
	// pairs the tail touched. Pairs absent from the map resolve through the
	// flat ancestor, whose table already holds their full position list.
	e.pairExt = make(map[pairKey]pairSeg, len(base.pairExt)+len(g.pair))
	for k, s := range base.pairExt {
		e.pairExt[k] = s
	}
	for k, pl := range g.pair {
		ext := pl.view()
		if len(ext) == 0 {
			continue
		}
		seg, ok := e.pairExt[k]
		if !ok {
			seg.pos = e.flat.pairPositions(k.src, k.dst)
		}
		e.pairExt[k] = pairSeg{pos: extendPositions(seg.pos, ext, seg.owned), owned: true}
	}

	e.used.New = func() any { return new(usedSet) }
	return e
}

// rebuildGen builds the post-compaction generation from scratch: a fresh
// CSR base over the live (non-evicted) edge set with positions rebased to
// drop the dead prefix, and fresh, empty tail storage. This is the
// reclaiming fallback merge-compaction rests on; copy-on-compact, so
// readers holding older views stay consistent. The view must be
// writer-exact.
func rebuildGen(v genView) *generation {
	g := v.g
	base := NewEngine(v.buildGraph())
	ng := &generation{
		base:      base,
		baseEdges: int32(base.g.NumEdges()),
		labels:    g.labels,
		tailArr:   newTailArr(len(v.tail)),
		tailN:     freshCounter(0),
		pair:      make(map[pairKey]*posList),
		lastTime:  v.lastTime(),

		compactions:     g.compactions + 1,
		merges:          g.merges,
		lastCompactTail: len(v.tail),
	}
	ng.tailOut, ng.tailIn = newTailLists(len(g.labels))
	return ng
}
