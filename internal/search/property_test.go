package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

// bruteTemporalIntervals enumerates every increasing edge-position subset of
// the host matching the pattern (label-consistent, injective, order
// preserved) and returns the distinct spanned intervals — an independent
// oracle for FindTemporal.
func bruteTemporalIntervals(p *tgraph.Pattern, g *tgraph.Graph, window int64) map[Match]bool {
	out := map[Match]bool{}
	n1, n2 := p.NumEdges(), g.NumEdges()
	if n1 == 0 || n1 > n2 {
		return out
	}
	idx := make([]int, n1)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == n1 {
			if m, ok := checkAssignment(p, g, idx, window); ok {
				out[m] = true
			}
			return
		}
		for pos := from; pos <= n2-(n1-k); pos++ {
			idx[k] = pos
			rec(k+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}

func checkAssignment(p *tgraph.Pattern, g *tgraph.Graph, idx []int, window int64) (Match, bool) {
	fwd := map[tgraph.NodeID]tgraph.NodeID{}
	rev := map[tgraph.NodeID]tgraph.NodeID{}
	bind := func(a, b tgraph.NodeID) bool {
		if p.LabelOf(a) != g.LabelOf(b) {
			return false
		}
		fa, okA := fwd[a]
		rb, okB := rev[b]
		if !okA && !okB {
			fwd[a] = b
			rev[b] = a
			return true
		}
		return okA && okB && fa == b && rb == a
	}
	for i, pos := range idx {
		pe := p.EdgeAt(i)
		ge := g.EdgeAt(pos)
		if !bind(pe.Src, ge.Src) || !bind(pe.Dst, ge.Dst) {
			return Match{}, false
		}
	}
	start := g.EdgeAt(idx[0]).Time
	end := g.EdgeAt(idx[len(idx)-1]).Time
	if window > 0 && end-start+1 > window {
		return Match{}, false
	}
	return Match{Start: start, End: end}, true
}

func randomHost(rng *rand.Rand, nodes, edges, labels int) *tgraph.Graph {
	var b tgraph.Builder
	for i := 0; i < nodes; i++ {
		b.AddNode(tgraph.Label(rng.Intn(labels)))
	}
	t := int64(0)
	for i := 0; i < edges; i++ {
		t += int64(1 + rng.Intn(3))
		if err := b.AddEdge(tgraph.NodeID(rng.Intn(nodes)), tgraph.NodeID(rng.Intn(nodes)), t); err != nil {
			panic(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return g
}

func randomQuery(rng *rand.Rand, maxEdges, labels int) *tgraph.Pattern {
	p := tgraph.SingleEdgePattern(tgraph.Label(rng.Intn(labels)), tgraph.Label(rng.Intn(labels)), false)
	m := 1 + rng.Intn(maxEdges)
	for p.NumEdges() < m {
		switch rng.Intn(3) {
		case 0:
			p = p.GrowForward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.Label(rng.Intn(labels)))
		case 1:
			p = p.GrowBackward(tgraph.Label(rng.Intn(labels)), tgraph.NodeID(rng.Intn(p.NumNodes())))
		default:
			p = p.GrowInward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.NodeID(rng.Intn(p.NumNodes())))
		}
	}
	return p
}

func TestFindTemporalMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomHost(rng, 4+rng.Intn(3), 6+rng.Intn(4), 3)
		p := randomQuery(rng, 3, 3)
		var window int64
		if rng.Intn(2) == 0 {
			window = int64(3 + rng.Intn(12))
		}
		eng := NewEngine(g)
		got := eng.FindTemporal(p, Options{Window: window})
		want := bruteTemporalIntervals(p, g, window)
		if len(got.Matches) != len(want) {
			t.Logf("seed=%d: got %d intervals, want %d (window=%d)\n p=%v\n g=%v",
				seed, len(got.Matches), len(want), window, p, g)
			return false
		}
		for _, m := range got.Matches {
			if !want[m] {
				t.Logf("seed=%d: unexpected interval %v", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestFindLabelSetMatchesContainLabels(t *testing.T) {
	// Property: every reported label-set window genuinely contains distinct
	// nodes covering the queried multiset.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomHost(rng, 5+rng.Intn(4), 8+rng.Intn(6), 3)
		query := []tgraph.Label{tgraph.Label(rng.Intn(3)), tgraph.Label(rng.Intn(3))}
		window := int64(4 + rng.Intn(10))
		eng := NewEngine(g)
		res := eng.FindLabelSet(query, Options{Window: window})
		for _, m := range res.Matches {
			if m.End-m.Start+1 > window {
				t.Logf("seed=%d: window exceeded: %v", seed, m)
				return false
			}
			if !windowCovers(g, m, query) {
				t.Logf("seed=%d: window %v does not cover %v", seed, m, query)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// windowCovers verifies a label multiset is coverable by distinct nodes
// appearing within the window.
func windowCovers(g *tgraph.Graph, m Match, query []tgraph.Label) bool {
	need := map[tgraph.Label]int{}
	for _, l := range query {
		need[l]++
	}
	nodes := map[tgraph.NodeID]bool{}
	for _, e := range g.Edges() {
		if e.Time < m.Start || e.Time > m.End {
			continue
		}
		nodes[e.Src] = true
		nodes[e.Dst] = true
	}
	have := map[tgraph.Label]int{}
	for v := range nodes {
		have[g.LabelOf(v)]++
	}
	for l, n := range need {
		if have[l] < n {
			return false
		}
	}
	return true
}
