package search

// Differential suite for the incrementally maintained LiveStats counters:
// after every mutation, the writer-owned retained-bytes counter (and the
// view-derived stat fields) must byte-equal an independent recomputation —
// the O(nodes + pairs) walk Stats used to perform on every call. The
// adversarial scripts and random interleavings reuse the merge-test
// machinery, so the counter is pinned across evictions, AddNodes straddling
// compactions, forced rebuilds, and posList/tail-array growth.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

// verifyStatsCounters compares Stats() against independent recomputations
// on a quiescent engine: the retained-bytes counter against the reference
// walk, and the edge-derived fields against a full edge iteration.
func verifyStatsCounters(l *Live) error {
	st := l.Stats()
	v := l.snap()
	if walk := v.retainedBytes(); st.RetainedBytes != walk {
		return fmt.Errorf("RetainedBytes counter %d != recomputed walk %d", st.RetainedBytes, walk)
	}
	first, edges := int64(-1), 0
	v.forEachEdge(func(e tgraph.Edge) bool {
		if edges == 0 {
			first = e.Time
		}
		edges++
		return true
	})
	if st.LiveEdges != edges {
		return fmt.Errorf("LiveEdges %d != recounted %d", st.LiveEdges, edges)
	}
	if st.FirstTime != first {
		return fmt.Errorf("FirstTime %d != recomputed %d", st.FirstTime, first)
	}
	if st.Nodes != len(v.g.labels) {
		return fmt.Errorf("Nodes %d != %d", st.Nodes, len(v.g.labels))
	}
	if want := st.BaseEdges + st.TailLen - st.Floor; st.LiveEdges != want {
		return fmt.Errorf("LiveEdges %d != BaseEdges+TailLen-Floor %d", st.LiveEdges, want)
	}
	return nil
}

// TestLiveStatsCountersMatchWalk replays the deterministic adversarial
// scripts (evict-everything, double compaction, AddNode straddling
// compactions, evict-into-tail) into merge-compacting and rebuild-only
// engines, checking counter == walk after every single op.
func TestLiveStatsCountersMatchWalk(t *testing.T) {
	for _, sc := range adversarialScripts() {
		t.Run(sc.name, func(t *testing.T) {
			for _, disableMerge := range []bool{false, true} {
				l := NewLive(LiveOptions{CompactEvery: -1, disableMerge: disableMerge})
				for i, op := range sc.ops {
					replayOp(t, l, op)
					if err := verifyStatsCounters(l); err != nil {
						t.Fatalf("op %d (disableMerge=%v): %v", i, disableMerge, err)
					}
				}
			}
		})
	}
}

// TestLiveStatsCountersMatchWalkRandom is the property form: random
// append/addnode/evict/compact interleavings at several automatic
// compaction cadences — including CompactEvery: -1, which grows the tail
// array and the per-node posLists through many doublings — with
// counter == walk asserted after every op.
func TestLiveStatsCountersMatchWalkRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		compactEvery := []int{-1, 2, 5, 16}[rng.Intn(4)]
		l := NewLive(LiveOptions{CompactEvery: compactEvery, disableMerge: rng.Intn(4) == 0})
		nodes := 0
		tm := int64(0)
		for i := 0; i < 3; i++ {
			l.AddNode(tgraph.Label(rng.Intn(3)))
			nodes++
		}
		for step := 0; step < 160; step++ {
			switch r := rng.Intn(100); {
			case r < 4:
				l.AddNode(tgraph.Label(rng.Intn(3)))
				nodes++
			case r < 8:
				// Evict a random slice of the window (sometimes everything).
				l.EvictBefore(1 + rng.Int63n(tm+1))
			case r < 12:
				l.Compact()
			default:
				tm++
				if err := l.Append(tgraph.NodeID(rng.Intn(nodes)), tgraph.NodeID(rng.Intn(nodes)), tm); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
			if err := verifyStatsCounters(l); err != nil {
				t.Errorf("seed %d step %d (compactEvery=%d): %v", seed, step, compactEvery, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStatsCountersMatchWalk drives a sharded engine through random
// mutations and checks every shard's counter against its own walk, plus the
// aggregate RetainedBytes against the per-shard sum.
func TestShardedStatsCountersMatchWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewSharded(LiveOptions{CompactEvery: 4, Shards: 3})
	nodes := 0
	for i := 0; i < 4; i++ {
		l.AddNode(tgraph.Label(rng.Intn(3)))
		nodes++
	}
	tm := int64(0)
	for step := 0; step < 400; step++ {
		switch r := rng.Intn(100); {
		case r < 3:
			l.AddNode(tgraph.Label(rng.Intn(3)))
			nodes++
		case r < 6:
			l.EvictBefore(1 + rng.Int63n(tm+1))
		case r < 9:
			l.Compact()
		default:
			tm++
			if err := l.Append(tgraph.NodeID(rng.Intn(nodes)), tgraph.NodeID(rng.Intn(nodes)), tm); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		sum := 0
		for si, sh := range l.shards {
			if err := verifyStatsCounters(sh); err != nil {
				t.Fatalf("step %d shard %d: %v", step, si, err)
			}
			sum += sh.Stats().RetainedBytes
		}
		if agg := l.Stats().RetainedBytes; agg != sum {
			t.Fatalf("step %d: aggregate RetainedBytes %d != per-shard sum %d", step, agg, sum)
		}
	}
}

// TestLiveStatsConcurrentReads hammers Stats from readers while a writer
// appends, evicts, and compacts. Run under -race this pins the O(1) Stats
// read path (atomic counter load + view capture) data-race free; the final
// quiescent check pins that the concurrent traffic left no drift.
func TestLiveStatsConcurrentReads(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 64})
	for i := 0; i < 8; i++ {
		l.AddNode(tgraph.Label(i % 3))
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := l.Stats()
					if st.RetainedBytes < 0 {
						t.Error("negative RetainedBytes")
						return
					}
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(11))
	for tm := int64(1); tm <= 4000; tm++ {
		if err := l.Append(tgraph.NodeID(rng.Intn(8)), tgraph.NodeID(rng.Intn(8)), tm); err != nil {
			t.Fatal(err)
		}
		if tm%512 == 0 {
			l.EvictBefore(tm - 256)
		}
	}
	close(done)
	wg.Wait()
	if err := verifyStatsCounters(l); err != nil {
		t.Fatal(err)
	}
}
