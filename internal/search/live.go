package search

// This file implements the live (incrementally growing) temporal-graph
// engine for continuous monitoring: the immutable CSR indexes of Engine
// wrapped with an append-only tail plus periodic compaction, and an optional
// sliding window via EvictBefore. Queries see base + tail as one edge
// sequence in global position order, so a Live engine answers every query
// exactly as a static Engine built over the equivalent edge set would
// (differentially tested in live_test.go).

import (
	"context"
	"fmt"
	"iter"
	"sort"
	"sync"

	"tgminer/internal/tgraph"
)

// LiveOptions configures a Live engine.
type LiveOptions struct {
	// CompactEvery is the minimum tail length before automatic compaction
	// into the CSR base index during Append (default 4096; negative
	// disables automatic compaction, leaving it to explicit Compact
	// calls). Compaction additionally waits until the tail is at least
	// half the base, so rebuild sizes grow geometrically and total
	// ingestion work stays linear — amortized O(1) per append — instead of
	// quadratic in the stream length.
	CompactEvery int
}

func (o LiveOptions) normalize() LiveOptions {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	return o
}

// pairKey indexes tail edges by endpoint labels.
type pairKey struct{ src, dst tgraph.Label }

// Live is an incrementally growing temporal-graph engine. Edges append in
// strictly increasing timestamp order (the same total-order invariant
// tgraph.Builder enforces); each edge takes a global position = base size +
// tail offset. The tail keeps simple per-node and per-label-pair position
// lists; compaction folds base + tail into a fresh CSR Engine. EvictBefore
// implements a sliding window by advancing a floor position — queries skip
// evicted prefixes in O(1) because position order is time order — and the
// space is reclaimed at the next compaction.
//
// Live is safe for concurrent use: queries take a read lock (including for
// the whole lifetime of a StreamTemporal iteration), Append/EvictBefore/
// Compact take the write lock. Consume streams promptly or query a
// Snapshot, since a long-lived stream blocks appends.
type Live struct {
	mu   sync.RWMutex
	opts LiveOptions

	labels []tgraph.Label // authoritative node labels (base and tail nodes)

	base      *Engine // CSR indexes over the compacted prefix; nil until first compaction
	baseEdges int32   // edges in base: global positions [0, baseEdges)

	floor int32 // first live global position; earlier edges are evicted

	tail     []tgraph.Edge // appended edges, global positions baseEdges+i
	tailOut  [][]int32     // node -> tail positions with the node as source
	tailIn   [][]int32     // node -> tail positions with the node as destination
	tailPair map[pairKey][]int32

	lastTime int64 // largest timestamp seen; -1 when empty

	used sync.Pool // *usedSet per-query scratch
}

// NewLive returns an empty live engine.
func NewLive(opts LiveOptions) *Live {
	l := &Live{
		opts:     opts.normalize(),
		tailPair: make(map[pairKey][]int32),
		lastTime: -1,
	}
	l.used.New = func() any { return new(usedSet) }
	return l
}

// AddNode appends a node with the given label and returns its NodeID.
func (l *Live) AddNode(label tgraph.Label) tgraph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.labels = append(l.labels, label)
	l.tailOut = append(l.tailOut, nil)
	l.tailIn = append(l.tailIn, nil)
	return tgraph.NodeID(len(l.labels) - 1)
}

// Append records a directed edge src -> dst at time t. Timestamps must be
// strictly increasing across appends (sequentialize concurrent events
// upstream, as tgraph.Builder.Sequentialize does for batch graphs). The
// amortized cost is O(1): the tail folds into the CSR base on the geometric
// schedule described on LiveOptions.CompactEvery.
func (l *Live) Append(src, dst tgraph.NodeID, t int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := tgraph.NodeID(len(l.labels)); src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("search: live edge (%d,%d,%d) references unknown node (have %d nodes)", src, dst, t, n)
	}
	if t <= l.lastTime {
		return fmt.Errorf("search: live append out of order: t=%d not after t=%d (timestamps must be strictly increasing)", t, l.lastTime)
	}
	pos := l.baseEdges + int32(len(l.tail))
	l.tail = append(l.tail, tgraph.Edge{Src: src, Dst: dst, Time: t})
	l.tailOut[src] = append(l.tailOut[src], pos)
	l.tailIn[dst] = append(l.tailIn[dst], pos)
	k := pairKey{l.labels[src], l.labels[dst]}
	l.tailPair[k] = append(l.tailPair[k], pos)
	l.lastTime = t
	// Geometric schedule: rebuilding the base costs O(base+tail), so only
	// compact once the tail is worth it both absolutely (CompactEvery) and
	// relative to the base (>= half). Rebuild sizes then grow
	// geometrically, their sum over the whole stream is O(total edges),
	// and appends stay amortized O(1). Tail edges are indexed just like
	// base edges, so a large tail does not slow searches.
	if l.opts.CompactEvery > 0 && len(l.tail) >= l.opts.CompactEvery && int32(len(l.tail))*2 >= l.baseEdges {
		l.compactLocked()
	}
	return nil
}

// EvictBefore drops every edge with timestamp < t (sliding-window
// retention). O(log E) now — it only advances the floor position — with the
// space reclaimed at the next compaction. Nodes are retained so NodeIDs
// stay stable.
func (l *Live) EvictBefore(t int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cut := l.cutBefore(t); cut > l.floor {
		l.floor = cut
	}
}

// cutBefore returns the first global position whose edge time is >= t.
func (l *Live) cutBefore(t int64) int32 {
	if l.base != nil {
		edges := l.base.g.Edges()
		if i := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= t }); i < len(edges) {
			return int32(i)
		}
	}
	j := sort.Search(len(l.tail), func(i int) bool { return l.tail[i].Time >= t })
	return l.baseEdges + int32(j)
}

// Compact folds the tail (and any evicted prefix) into a fresh CSR base.
func (l *Live) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactLocked()
}

func (l *Live) compactLocked() {
	if len(l.tail) == 0 && l.floor == 0 {
		return
	}
	l.base = NewEngine(l.buildGraphLocked())
	l.baseEdges = int32(l.base.g.NumEdges())
	l.floor = 0
	l.tail = l.tail[:0]
	for i := range l.tailOut {
		l.tailOut[i] = l.tailOut[i][:0]
	}
	for i := range l.tailIn {
		l.tailIn[i] = l.tailIn[i][:0]
	}
	for k, v := range l.tailPair {
		l.tailPair[k] = v[:0]
	}
}

// buildGraphLocked materializes the live edge set (all nodes, non-evicted
// edges) as an immutable tgraph.Graph.
func (l *Live) buildGraphLocked() *tgraph.Graph {
	var b tgraph.Builder
	for _, lab := range l.labels {
		b.AddNode(lab)
	}
	if l.base != nil && l.floor < l.baseEdges {
		for _, e := range l.base.g.Edges()[l.floor:] {
			_ = b.AddEdge(e.Src, e.Dst, e.Time)
		}
	}
	tailFrom := int(l.floor) - int(l.baseEdges)
	if tailFrom < 0 {
		tailFrom = 0
	}
	for _, e := range l.tail[tailFrom:] {
		_ = b.AddEdge(e.Src, e.Dst, e.Time)
	}
	g, err := b.Finalize()
	if err != nil {
		// Unreachable: Append enforces the strict total order Finalize checks.
		panic("search: live edge set lost total order: " + err.Error())
	}
	return g
}

// Snapshot materializes an immutable Engine over the current live edge set,
// for callers that want to run many queries against one consistent state
// without holding the live read lock.
func (l *Live) Snapshot() *Engine {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.base != nil && len(l.tail) == 0 && l.floor == 0 {
		return l.base
	}
	return NewEngine(l.buildGraphLocked())
}

// NumNodes reports the number of nodes ever added.
func (l *Live) NumNodes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.labels)
}

// NumEdges reports the number of live (non-evicted) edges.
func (l *Live) NumEdges() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int(l.baseEdges) + len(l.tail) - int(l.floor)
}

// LastTime reports the largest appended timestamp (-1 when empty).
func (l *Live) LastTime() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastTime
}

// edgeAt returns the edge at a global position.
func (l *Live) edgeAt(pos int32) tgraph.Edge {
	if pos < l.baseEdges {
		return l.base.g.EdgeAt(int(pos))
	}
	return l.tail[pos-l.baseEdges]
}

// forEachPair iterates live positions of edges with endpoint labels
// (src, dst) strictly after `after`, in increasing order, until fn returns
// false. Base and tail segments chain naturally: every tail position is
// greater than every base position.
func (l *Live) forEachPair(src, dst tgraph.Label, after int32, fn func(int32) bool) {
	if after < l.floor-1 {
		after = l.floor - 1
	}
	if l.base != nil {
		if !iterAfterOK(l.base.pairPositions(src, dst), after, fn) {
			return
		}
	}
	iterAfterOK(l.tailPair[pairKey{src, dst}], after, fn)
}

// forEachOut iterates live positions of edges with node v as source,
// strictly after `after`, until fn returns false.
func (l *Live) forEachOut(v tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < l.floor-1 {
		after = l.floor - 1
	}
	if l.base != nil && int(v) < l.base.g.NumNodes() {
		if !iterAfterOK(l.base.outAt(v), after, fn) {
			return
		}
	}
	iterAfterOK(l.tailOut[v], after, fn)
}

// forEachIn iterates live positions of edges with node v as destination,
// strictly after `after`, until fn returns false.
func (l *Live) forEachIn(v tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < l.floor-1 {
		after = l.floor - 1
	}
	if l.base != nil && int(v) < l.base.g.NumNodes() {
		if !iterAfterOK(l.base.inAt(v), after, fn) {
			return
		}
	}
	iterAfterOK(l.tailIn[v], after, fn)
}

// liveState is the temporal matcher over a Live engine: the same
// backtracking search as tState (stream.go), iterating base + tail as one
// position sequence. The two match methods are deliberate twins — kept
// monomorphic so the static hot path pays no interface dispatch. A change
// to either MUST be mirrored in the other;
// TestLiveMatchesStaticDifferential enforces agreement.
type liveState struct {
	matchCore
	l *Live
}

func (s *liveState) match(k int, lastPos int32) {
	if s.stepCancelled() {
		return
	}
	if k == s.p.NumEdges() {
		s.emit(Match{Start: s.startTime, End: s.l.edgeAt(lastPos).Time})
		return
	}
	pe := s.p.EdgeAt(k)
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	deadline := int64(-1)
	if s.opts.Window > 0 {
		deadline = s.startTime + s.opts.Window - 1
	}
	try := func(pos int32) {
		ge := s.l.edgeAt(pos)
		if deadline >= 0 && ge.Time > deadline {
			return
		}
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.l.labels[ge.Src] != s.p.LabelOf(pe.Src) || s.l.labels[ge.Dst] != s.p.LabelOf(pe.Dst) {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k+1, pos) })
	}
	switch {
	case ms != -1:
		s.l.forEachOut(ms, lastPos, func(pos int32) bool {
			if deadline >= 0 && s.l.edgeAt(pos).Time > deadline {
				return false
			}
			if md != -1 && s.l.edgeAt(pos).Dst != md {
				return true
			}
			try(pos)
			return !s.done
		})
	case md != -1:
		s.l.forEachIn(md, lastPos, func(pos int32) bool {
			if deadline >= 0 && s.l.edgeAt(pos).Time > deadline {
				return false
			}
			try(pos)
			return !s.done
		})
	default:
		// Unreachable for T-connected patterns beyond the first edge, but
		// handle defensively via the pair index.
		s.l.forEachPair(s.p.LabelOf(pe.Src), s.p.LabelOf(pe.Dst), lastPos, func(pos int32) bool {
			try(pos)
			return !s.done
		})
	}
}

// StreamTemporal yields the distinct intervals where the temporal pattern
// embeds in the live edge set, with the same semantics as
// Engine.StreamTemporal. The engine's read lock is held until the stream
// ends or the consumer breaks, and the lock is not reentrant: calling
// Append, EvictBefore, or Compact from inside the loop body deadlocks.
// For mutate-as-you-consume patterns, stream from Snapshot() instead and
// apply the mutations against the live engine.
func (l *Live) StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error] {
	opts = opts.normalize()
	return func(yield func(Match, error) bool) {
		if p.NumEdges() == 0 {
			return
		}
		l.mu.RLock()
		defer l.mu.RUnlock()
		res := newRootDedup(opts.Limit, func(m Match) bool { return yield(m, nil) })
		defer res.release()
		st := &liveState{l: l}
		st.p = p
		st.opts = opts
		st.res = res
		st.ctx = ctx
		u := l.used.Get().(*usedSet)
		u.reset(len(l.labels))
		st.init(p.NumNodes(), u)
		defer l.used.Put(u)
		first := p.EdgeAt(0)
		l.forEachPair(p.LabelOf(first.Src), p.LabelOf(first.Dst), l.floor-1, func(pos int32) bool {
			if st.rootCancelled() {
				return false
			}
			res.nextRoot()
			ge := l.edgeAt(pos)
			if (first.Src == first.Dst) != (ge.Src == ge.Dst) {
				return true
			}
			st.bindEdge(first, ge, func() {
				st.startTime = ge.Time
				st.match(1, pos)
			})
			return !st.done
		})
		finishStream(yield, res, st.ctxErr)
	}
}

// FindTemporalContext collects StreamTemporal into a deduplicated Result in
// (Start, End) order, returning partial matches plus ctx.Err() on
// cancellation.
func (l *Live) FindTemporalContext(ctx context.Context, p *tgraph.Pattern, opts Options) (Result, error) {
	return collectStream(l.StreamTemporal(ctx, p, opts))
}

// FindTemporal is the background-context compatibility form of
// FindTemporalContext.
func (l *Live) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	r, _ := l.FindTemporalContext(context.Background(), p, opts)
	return r
}
