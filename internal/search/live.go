package search

// This file implements the live (incrementally growing) temporal-graph
// engine for continuous monitoring: the immutable CSR indexes of Engine
// wrapped with an append-only tail plus periodic compaction, and an optional
// sliding window via EvictBefore. Queries see base + tail as one edge
// sequence in global position order, so a Live engine answers every query
// exactly as a static Engine built over the equivalent edge set would
// (differentially tested in live_test.go).
//
// Concurrency is RCU-style: all mutable state lives in an immutable
// generation value published through an atomic pointer, and the common-case
// Append publishes nothing at all — it appends into pre-sized storage and
// advances an atomic tail length. Writers (Append/EvictBefore/Compact,
// serialized by a mutex among themselves) build the next state and publish
// it; readers capture a genView — one generation plus the tail prefix
// published at capture time — and run against it for their whole lifetime
// without taking any lock, so a long-lived StreamTemporal never blocks
// ingestion. Four disciplines make the shared storage safe:
//
//  1. Append-only slices. labels, tailArr, tailOut, and tailIn grow only on
//     the writer's latest state; published views hold len-capped headers of
//     the same backing arrays, and the writer only ever writes indexes
//     beyond every published length, so no reader can observe a torn
//     element.
//  2. Single-writer posLists. Per-node and per-label-pair tail position
//     lists are shared across generations and appended in place; an atomic
//     element count published after each element write gives readers a
//     consistent prefix. Positions are globally increasing, so a reader
//     simply stops at its view's end position and never sees entries
//     appended after its snapshot.
//  3. Publish-after-index tail counts. The atomic tail length that reveals
//     a new edge is stored only after the edge and all its posList entries
//     are written, so a view that includes an edge always finds it in every
//     index. An append that the current generation cannot fully describe —
//     a label pair new to the pair map, a node added after the generation
//     was built, a grown tail array — freezes the old generation's counter
//     and publishes a successor with a fresh one, so stale generations
//     never reveal edges their own indexes do not cover.
//  4. Copy-on-compact. Compaction never truncates shared storage in place.
//     The incremental merge path (merge.go) extends the base engine's
//     storage only in freshly allocated arrays or in owned spare capacity
//     strictly beyond every published length, and the rebuild path builds a
//     fresh base Engine outright; both hand the new generation fresh
//     (empty) tail storage and a fresh pair map, leaving every published
//     view's storage intact until the garbage collector reclaims it.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// ErrPositionsExhausted is reported by Append when the engine has
// accumulated 2^31-1 global edge positions — the capacity of the int32
// position space the CSR and tail indexes share — and no eviction has
// freed any. Evicting old edges (EvictBefore) frees position space: at
// the bound Append reclaims it automatically with a rebasing rebuild
// compaction, so only an engine that never evicts can hit this error.
var ErrPositionsExhausted = errors.New("search: live engine exhausted its 2^31-1 edge positions (evict old edges with EvictBefore to free position space)")

// LiveOptions configures a Live engine.
type LiveOptions struct {
	// CompactEvery is the minimum tail length before automatic compaction
	// into the CSR base index during Append (default 4096; negative
	// disables automatic compaction, leaving it to explicit Compact
	// calls). Compaction normally merges the tail into the existing base
	// incrementally — O(tail + touched lists), independent of the base
	// size — so it runs as soon as the tail also reaches 1/8 of the
	// merge's per-compaction bookkeeping (node count plus extended-pair
	// count). When the merge is ineligible (no base yet, or the evicted
	// prefix has grown to half the edge array and must be reclaimed),
	// compaction falls back to a full rebuild and additionally waits
	// until the tail is at least half the live base, so rebuild sizes
	// grow geometrically and total ingestion work stays linear —
	// amortized O(1) per append — instead of quadratic in the stream
	// length.
	CompactEvery int

	// Shards is consumed by NewSharded (sharded.go): the number of
	// independent Live shards behind the cross-shard query planner
	// (0 = GOMAXPROCS, 1 = unsharded). A plain NewLive ignores it.
	Shards int

	// disableMerge forces every compaction down the full-rebuild path.
	// Test-only: the merge==rebuild differential tests replay one
	// operation sequence into engines with and without it.
	disableMerge bool
}

func (o LiveOptions) normalize() LiveOptions {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	return o
}

// pairKey indexes tail edges by endpoint labels.
type pairKey struct{ src, dst tgraph.Label }

// posList is a single-writer multi-reader append-only list of edge
// positions. The writer appends an element and then publishes the new
// length with a release store; a reader acquires the length first and then
// the backing array, so the array it loads is always at least as long as
// the count it read and every element below that count is fully written.
// Entries are strictly increasing global positions, which lets readers of
// older views stop at their snapshot's end position.
type posList struct {
	n   atomic.Int32            // published element count
	arr atomic.Pointer[[]int32] // backing array (len == cap), grown by doubling
}

// push appends one position and returns the bytes newly retained by any
// backing-array growth (0 in the no-grow common case); the caller folds the
// delta into the engine's incremental retained-bytes counter so Stats never
// has to re-walk the lists. Writer-exclusive (callers hold the Live writer
// mutex).
//
// tglint:writer
func (p *posList) push(pos int32) int {
	n := int(p.n.Load())
	cur := p.arr.Load()
	grownBytes := 0
	if cur == nil || n == len(*cur) {
		newCap := 4
		oldCap := 0
		if cur != nil {
			oldCap = len(*cur)
			newCap = 2 * oldCap
		}
		grownBytes = 4 * (newCap - oldCap)
		grown := make([]int32, newCap)
		if cur != nil {
			copy(grown, *cur)
		}
		grown[n] = pos
		p.arr.Store(&grown)
	} else {
		(*cur)[n] = pos
	}
	p.n.Store(pos32(n + 1))
	return grownBytes
}

// view returns a consistent prefix of the list. Safe to call concurrently
// with push; the returned slice is never written again at indexes < len.
//
// tglint:snapshot
func (p *posList) view() []int32 {
	n := p.n.Load()
	if n == 0 {
		return nil
	}
	arr := p.arr.Load()
	return (*arr)[:n]
}

// capBytes reports the bytes retained by the list's backing array.
//
// tglint:snapshot
func (p *posList) capBytes() int {
	if arr := p.arr.Load(); arr != nil {
		return 4 * len(*arr)
	}
	return 0
}

// generation is one immutable snapshot of the live engine's structure: a
// compacted CSR base plus indexed tail storage, with eviction expressed as
// a floor position. The tail's published length lives outside the struct in
// an atomic counter (tailN), so the common-case Append advances the counter
// without republishing — a generation therefore describes which storage and
// indexes exist, and a genView adds the instant's published tail prefix.
// The slices are len-capped views into append-only storage shared with
// newer generations (see the file-comment disciplines); the posLists may
// contain positions beyond a view's end, which readers skip via the
// monotone position order.
type generation struct {
	base      *Engine // CSR indexes over the compacted prefix; nil until first compaction
	baseEdges int32   // edges in base: global positions [0, baseEdges)

	floor int32 // first live global position; earlier edges are evicted

	labels  []tgraph.Label // node labels; len == node count of this generation
	tailArr []tgraph.Edge  // tail backing array (len == cap); live prefix published via tailN
	// tailN publishes how much of tailArr is live. It advances only for
	// edges this generation's indexes fully describe: an append that needs
	// a new pair-map key, a new node, or a grown array freezes the counter
	// and hands its successor generation a fresh one (discipline 3), so a
	// reader of a stale generation never sees an edge it cannot resolve.
	tailN   *atomic.Int32
	tailOut []*posList           // node -> tail positions with the node as source
	tailIn  []*posList           // node -> tail positions with the node as destination
	pair    map[pairKey]*posList // label pair -> tail positions (copy-on-new-key)

	lastTime int64 // largest timestamp as of this generation's publish; -1 when empty

	// Compaction bookkeeping, carried immutably for Stats.
	compactions     int // total compactions since creation
	merges          int // of which took the incremental merge path
	lastCompactTail int // tail edges folded by the most recent compaction
}

// view captures the generation's published tail prefix. The returned
// genView is an immutable, internally consistent snapshot: every edge below
// its end is present in every index it consults. Writers (holding the
// mutex) get an exact view; readers get the latest published prefix.
//
// tglint:snapshot
func (g *generation) view() genView {
	n := g.tailN.Load()
	return genView{g: g, tail: g.tailArr[:n:n]}
}

// freshCounter seeds a new tail counter at n, for a successor generation
// whose indexes diverge from its predecessor's (discipline 3).
func freshCounter(n int32) *atomic.Int32 {
	ctr := new(atomic.Int32)
	ctr.Store(n)
	return ctr
}

// genView is one reader's consistent snapshot of a Live engine: a
// generation plus the tail prefix published when the view was captured.
// Every query runs against exactly one view, so it observes one consistent
// edge set no matter how long it runs.
type genView struct {
	g    *generation
	tail []tgraph.Edge // published prefix of g.tailArr
}

// end returns one past the last global position of this view.
func (v genView) end() int32 { return addPos(v.g.baseEdges, pos32(len(v.tail))) }

// numEdges reports the number of live (non-evicted) edges.
func (v genView) numEdges() int { return int(v.end() - v.g.floor) }

// lastTime reports the largest timestamp in the view (-1 when empty).
func (v genView) lastTime() int64 {
	if len(v.tail) > 0 {
		return v.tail[len(v.tail)-1].Time
	}
	return v.g.lastTime
}

// edgeAt returns the edge at a global position.
func (v genView) edgeAt(pos int32) tgraph.Edge {
	if pos < v.g.baseEdges {
		return v.g.base.g.EdgeAt(int(pos))
	}
	return v.tail[pos-v.g.baseEdges]
}

// iterTail iterates a tail posList's positions strictly after `after` and
// below this view's end, until fn returns false; reports whether the scan
// ran to completion.
func (v genView) iterTail(pl *posList, after int32, fn func(int32) bool) bool {
	if pl == nil {
		return true
	}
	list := pl.view()
	end := v.end()
	i := sort.Search(len(list), func(i int) bool { return list[i] > after })
	for ; i < len(list); i++ {
		pos := list[i]
		if pos >= end {
			return true
		}
		if !fn(pos) {
			return false
		}
	}
	return true
}

// forEachPair iterates live positions of edges with endpoint labels
// (src, dst) strictly after `after`, in increasing order, until fn returns
// false. Base and tail segments chain naturally: every tail position is
// greater than every base position.
func (v genView) forEachPair(src, dst tgraph.Label, after int32, fn func(int32) bool) {
	if after < v.g.floor-1 {
		after = v.g.floor - 1
	}
	if v.g.base != nil {
		if !iterAfterOK(v.g.base.pairPositions(src, dst), after, fn) {
			return
		}
	}
	v.iterTail(v.g.pair[pairKey{src, dst}], after, fn)
}

// forEachOut iterates live positions of edges with node n as source,
// strictly after `after`, until fn returns false.
func (v genView) forEachOut(n tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < v.g.floor-1 {
		after = v.g.floor - 1
	}
	if v.g.base != nil && int(n) < v.g.base.g.NumNodes() {
		if !iterAfterOK(v.g.base.outAt(n), after, fn) {
			return
		}
	}
	v.iterTail(v.g.tailOut[n], after, fn)
}

// forEachIn iterates live positions of edges with node n as destination,
// strictly after `after`, until fn returns false.
func (v genView) forEachIn(n tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < v.g.floor-1 {
		after = v.g.floor - 1
	}
	if v.g.base != nil && int(n) < v.g.base.g.NumNodes() {
		if !iterAfterOK(v.g.base.inAt(n), after, fn) {
			return
		}
	}
	v.iterTail(v.g.tailIn[n], after, fn)
}

// forEachEdge iterates the live (non-evicted) edges in global position
// order until fn returns false.
func (v genView) forEachEdge(fn func(tgraph.Edge) bool) {
	if v.g.base != nil && v.g.floor < v.g.baseEdges {
		for _, e := range v.g.base.g.Edges()[v.g.floor:] {
			if !fn(e) {
				return
			}
		}
	}
	tailFrom := int(v.g.floor) - int(v.g.baseEdges)
	if tailFrom < 0 {
		tailFrom = 0
	}
	for _, e := range v.tail[tailFrom:] {
		if !fn(e) {
			return
		}
	}
}

// buildGraph materializes the view's edge set (all nodes, non-evicted
// edges) as an immutable tgraph.Graph.
func (v genView) buildGraph() *tgraph.Graph {
	var b tgraph.Builder
	for _, lab := range v.g.labels {
		b.AddNode(lab)
	}
	v.forEachEdge(func(e tgraph.Edge) bool {
		_ = b.AddEdge(e.Src, e.Dst, e.Time)
		return true
	})
	gr, err := b.Finalize()
	if err != nil {
		// Unreachable: Append enforces the strict total order Finalize checks.
		panic("search: live edge set lost total order: " + err.Error())
	}
	return gr
}

// cutBefore returns the first global position whose edge time is >= t.
func (v genView) cutBefore(t int64) int32 {
	if v.g.base != nil {
		edges := v.g.base.g.Edges()
		if i := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= t }); i < len(edges) {
			return int32(i)
		}
	}
	j := sort.Search(len(v.tail), func(i int) bool { return v.tail[i].Time >= t })
	return addPos(v.g.baseEdges, pos32(j))
}

// CutKey identifies a Live engine's live edge set: two equal keys read from
// the same engine — at any two instants — denote byte-identical live edge
// sets, so a query answer recorded under one key may be replayed verbatim
// whenever the key is observed again. The converse is deliberately not
// promised: a compaction changes the key without changing the edge set (a
// harmless cache miss). Soundness rests on per-epoch monotonicity: within
// one compaction epoch (equal Compactions), End grows only by appends and
// Floor only by evictions, and positions are write-once, so equal
// (Compactions, Floor, End) pins exactly one set of live positions; the
// Compactions counter disambiguates the position-space rebasing a
// reclaiming rebuild performs (no ABA).
type CutKey struct {
	Compactions int
	Floor, End  int32
}

// CutKey reports the engine's current generation-cut key (one atomic view
// capture; lock-free).
func (l *Live) CutKey() CutKey {
	v := l.snap()
	return CutKey{Compactions: v.g.compactions, Floor: v.g.floor, End: v.end()}
}

// numReaderSlots bounds the reader-accounting table. Purely observability:
// when all slots are busy additional queries run normally and simply go
// uncounted (ActiveReaders/OldestReaderLag then under-report).
const numReaderSlots = 64

// readerSlots tracks in-flight lock-free queries for Stats. Each running
// query parks its snapshot's end position in a slot (stored +1 so zero
// means free) and clears it when it finishes, so operators can see how far
// behind the oldest still-pinned snapshot is — a paused stream consumer
// holding old storage alive shows up as a growing OldestReaderLag.
type readerSlots struct {
	slot [numReaderSlots]atomic.Int64
}

// acquire parks a snapshot end and returns the slot index, or -1 when the
// table is full (the query then goes uncounted).
func (r *readerSlots) acquire(end int32) int {
	for i := range r.slot {
		if r.slot[i].CompareAndSwap(0, int64(end)+1) {
			return i
		}
	}
	return -1
}

// release frees a slot returned by acquire (no-op for -1).
func (r *readerSlots) release(i int) {
	if i >= 0 {
		r.slot[i].Store(0)
	}
}

// oldest reports the number of registered readers and the smallest parked
// snapshot end among them.
func (r *readerSlots) oldest() (count int, minEnd int32) {
	minEnd = math.MaxInt32
	for i := range r.slot {
		if s := r.slot[i].Load(); s != 0 {
			count++
			if e := int32(s) - 1; e < minEnd {
				minEnd = e
			}
		}
	}
	return count, minEnd
}

// Live is an incrementally growing temporal-graph engine. Edges append in
// strictly increasing timestamp order (the same total-order invariant
// tgraph.Builder enforces); each edge takes a global position = base size +
// tail offset. The tail keeps per-node and per-label-pair position lists;
// compaction folds the tail into the CSR Engine — normally by extending
// the existing base with the tail segment in O(tail + touched lists)
// (merge.go), falling back to a full rebuild when there is no base yet or
// evicted space must be reclaimed. EvictBefore implements a sliding window
// by advancing a floor position — queries skip evicted prefixes in O(1)
// because position order is time order — and the space is reclaimed by the
// rebuild compaction once the evicted prefix reaches half the edge array.
//
// Live is safe for concurrent use and reads are lock-free: every query —
// including a StreamTemporal iterated over minutes — runs against the
// immutable view current when it started and never blocks
// Append/EvictBefore/Compact, which serialize among themselves on a writer
// mutex. The common-case Append allocates nothing and publishes only an
// atomic tail length; structural changes (new label pair, new node, grown
// tail storage, eviction, compaction) publish a new generation atomically.
//
// For multi-writer workloads, ShardedLive (sharded.go) runs N independent
// Live shards behind a cross-shard query planner.
type Live struct {
	mu   sync.Mutex // serializes writers; readers never take it
	opts LiveOptions

	cur atomic.Pointer[generation]

	// retained is the incrementally maintained retained-bytes counter:
	// every mutation folds its exact storage delta in (posList/tail-array
	// growth, node additions) and every compaction rebases it to a full
	// walk of the new generation, so Stats reads it in O(1). Writer-owned:
	// mutated only under mu; readers Load it. It tracks the engine's
	// current storage — the same live-capacity accounting the walk
	// (genView.retainedBytes) performs — and the differential stats suite
	// pins the two equal after every mutation.
	retained atomic.Int64

	readers readerSlots // in-flight query accounting for Stats

	used sync.Pool // *usedSet per-query scratch
}

// NewLive returns an empty live engine.
//
// tglint:ignore genaccess the constructor publishes the first generation before the engine escapes to any reader
func NewLive(opts LiveOptions) *Live {
	l := &Live{opts: opts.normalize()}
	l.cur.Store(&generation{
		tailN:    freshCounter(0),
		pair:     make(map[pairKey]*posList),
		lastTime: -1,
	})
	l.used.New = func() any { return new(usedSet) }
	return l
}

// gen returns the current generation; the returned value is immutable and
// remains valid (and consistent) forever.
func (l *Live) gen() *generation { return l.cur.Load() }

// snap captures the current view: the freshest consistent snapshot a query
// can run against.
func (l *Live) snap() genView { return l.gen().view() }

// AddNode appends a node with the given label and returns its NodeID.
// The successor generation gets a fresh tail counter so views of the
// predecessor never surface edges that reference the new node.
//
// tglint:writer
func (l *Live) AddNode(label tgraph.Label) tgraph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	ng := *g
	ng.labels = append(g.labels, label)
	ng.tailOut = append(g.tailOut, &posList{})
	ng.tailIn = append(g.tailIn, &posList{})
	ng.lastTime = g.view().lastTime()
	ng.tailN = freshCounter(g.tailN.Load())
	l.cur.Store(&ng)
	l.retained.Add(nodeStatsBytes)
	return tgraph.NodeID(len(ng.labels) - 1)
}

// nodeStatsBytes is the storage delta of one AddNode: a 4-byte label plus
// one pointer slot in each of tailOut and tailIn (the fresh posLists hold no
// backing array yet, so they count 0 until their first push grows one).
const nodeStatsBytes = 4 + 2*ptrBytes

// minTailCap sizes the first tail backing array; growth doubles from there
// and compaction seeds the next cycle's array at the steady-state size.
const minTailCap = 64

// newTailArr allocates a post-compaction tail backing array sized for the
// next cycle: the tail just folded is the steady-state tail length (the
// compaction schedule fires at roughly the same size every cycle), so the
// next cycle fills it without a growth republish — while a one-off giant
// tail (explicit compaction after a burst) does not permanently inflate
// every later cycle's allocation.
func newTailArr(folded int) []tgraph.Edge {
	if folded < minTailCap {
		folded = minTailCap
	}
	return make([]tgraph.Edge, folded)
}

// Append records a directed edge src -> dst at time t. Timestamps must be
// strictly increasing across appends (sequentialize concurrent events
// upstream, as tgraph.Builder.Sequentialize does for batch graphs). The
// amortized cost is O(1) and the common case allocates nothing: the edge
// lands in pre-sized tail storage and is revealed by one atomic length
// store; the tail folds into the CSR base on the geometric schedule
// described on LiveOptions.CompactEvery.
//
// tglint:writer
func (l *Live) Append(src, dst tgraph.NodeID, t int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	if n := tgraph.NodeID(len(g.labels)); src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("search: live edge (%d,%d,%d) references unknown node (have %d nodes)", src, dst, t, n)
	}
	v := g.view() // writer-exact under the mutex
	if lt := v.lastTime(); t <= lt {
		return fmt.Errorf("search: live append out of order: t=%d not after t=%d (timestamps must be strictly increasing)", t, lt)
	}
	if int64(g.baseEdges)+int64(len(v.tail)) >= math.MaxInt32 {
		// The next edge would take global position 2^31-1, wrapping the
		// int32 position space and corrupting every posList. Compaction
		// keeps cumulative positions (the merge carries the floor, a
		// rebuild below only counts live edges), so position space only
		// returns via a rebasing rebuild over an evicted generation:
		// force one here if eviction has freed anything, and error
		// otherwise — reachable only by streams that never evict (e.g.
		// CompactEvery < 0 for 2^31 appends).
		if g.floor > 0 {
			g = rebuildGen(v)
			l.publishCompacted(g)
			v = g.view()
		}
		if int64(g.baseEdges)+int64(len(v.tail)) >= math.MaxInt32 {
			return fmt.Errorf("%w: edge (%d,%d,%d) rejected", ErrPositionsExhausted, src, dst, t)
		}
	}
	n := pos32(len(v.tail))
	pos := addPos(g.baseEdges, n)

	// Structural changes this generation's indexes cannot describe — a
	// label pair new to the pair map or a full tail array — freeze its
	// counter and publish a successor with a fresh one (discipline 3).
	k := pairKey{g.labels[src], g.labels[dst]}
	pl := g.pair[k]
	grow := int(n) == len(g.tailArr)
	if pl == nil || grow {
		ng := *g
		if grow {
			newCap := 2 * len(g.tailArr)
			if newCap < minTailCap {
				newCap = minTailCap
			}
			arr := make([]tgraph.Edge, newCap)
			copy(arr, v.tail)
			ng.tailArr = arr
			l.retained.Add(int64(edgeBytes * (newCap - len(g.tailArr))))
		}
		if pl == nil {
			// First edge with this label pair: copy-on-write the map so
			// readers holding older generations never observe a map insert.
			pl = &posList{}
			np := make(map[pairKey]*posList, len(g.pair)+1)
			for pk, pv := range g.pair {
				np[pk] = pv
			}
			np[k] = pl
			ng.pair = np
		}
		ng.tailN = freshCounter(n)
		l.cur.Store(&ng)
		g = &ng
	}

	// Write the edge and its index entries, then reveal it with the
	// counter store. The posLists are shared with published views: the new
	// position is beyond every published end, so concurrent readers skip
	// it until the store below.
	g.tailArr[n] = tgraph.Edge{Src: src, Dst: dst, Time: t}
	grown := g.tailOut[src].push(pos)
	grown += g.tailIn[dst].push(pos)
	grown += pl.push(pos)
	if grown != 0 {
		l.retained.Add(int64(grown))
	}
	g.tailN.Store(addPos(n, 1))

	// Automatic compaction schedule. The incremental merge (merge.go)
	// costs O(tail + touched lists) plus per-merge bookkeeping linear in
	// the node count and the extended-pair map — all independent of the
	// base — so once the tail clears CompactEvery it runs as soon as it
	// also covers that bookkeeping (tail >= (nodes + extended pairs)/8),
	// keeping appends amortized O(1). When the merge is ineligible — no
	// base yet, or the evicted prefix reached half the edge array and
	// must be reclaimed — the fallback rebuild costs O(live+tail), so it
	// additionally waits for tail >= live base/2 (the dead prefix is
	// free to drop and must not defer its own reclamation): rebuild
	// sizes then grow geometrically in the live set and appends stay
	// amortized O(1) either way. Tail edges are indexed just like base
	// edges, so a deferred compaction does not slow searches.
	if l.opts.CompactEvery > 0 && int(n)+1 >= l.opts.CompactEvery {
		nv := g.view()
		switch {
		case canMerge(nv) && !l.opts.disableMerge:
			if 8*len(nv.tail) >= len(g.labels)+len(g.base.pairExt) {
				l.publishCompacted(mergeGen(nv))
			}
		case int64(len(nv.tail))*2 >= int64(g.baseEdges)-int64(g.floor):
			l.publishCompacted(rebuildGen(nv))
		}
	}
	return nil
}

// EvictBefore drops every edge with timestamp < t (sliding-window
// retention). O(log E) now — it only advances the floor position — with the
// space reclaimed once the evicted prefix reaches half the edge array and
// a compaction takes the rebuild path. Nodes are retained so NodeIDs stay
// stable.
//
// tglint:writer
func (l *Live) EvictBefore(t int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	v := g.view()
	if cut := v.cutBefore(t); cut > g.floor {
		ng := *g
		ng.floor = cut
		ng.lastTime = v.lastTime()
		ng.tailN = freshCounter(int32(len(v.tail)))
		l.cur.Store(&ng)
	}
}

// Compact folds the tail (and any nodes added since the last compaction)
// into the CSR base now instead of waiting for the CompactEvery threshold.
// Normally this is the incremental merge — the existing base is extended
// with the tail segment in O(tail + touched lists) — with the evicted
// prefix carried along; once the evicted prefix reaches half the edge
// array (or before the first compaction) it is a full rebuild instead,
// which reclaims the evicted space and rebases the floor to zero.
//
// tglint:writer
func (l *Live) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.snap() // writer-exact under the mutex
	l.publishCompacted(compactGen(l.opts, v))
}

// publishCompacted publishes a freshly compacted (or rebuilt) generation
// and rebases the incremental retained-bytes counter to an exact walk of
// the new generation's storage. Compaction already does work linear in the
// folded tail (and, for rebuilds, the live set), so the O(nodes + pairs)
// walk does not change its complexity — and rebasing here keeps the
// incremental deltas drift-free across storage handoffs. Caller holds the
// writer mutex.
//
// tglint:writer
func (l *Live) publishCompacted(ng *generation) {
	l.cur.Store(ng)
	l.retained.Store(int64(ng.view().retainedBytes()))
}

// compactGen picks the compaction strategy for a view: the incremental
// merge when eligible, the reclaiming rebuild otherwise, or the generation
// unchanged when compaction would be a no-op. Caller holds the writer
// mutex.
func compactGen(opts LiveOptions, v genView) *generation {
	g := v.g
	merge := canMerge(v) && !opts.disableMerge
	if len(v.tail) == 0 {
		newNodes := g.base == nil && len(g.labels) > 0
		if g.base != nil && len(g.labels) > g.base.g.NumNodes() {
			newNodes = true
		}
		// An empty tail leaves nothing to fold: act only if there are
		// nodes to fold in, or an evicted prefix a rebuild would reclaim.
		if !newNodes && (g.floor == 0 || merge) {
			return g
		}
	}
	if merge {
		return mergeGen(v)
	}
	return rebuildGen(v)
}

// Snapshot materializes an immutable Engine over the current live edge set,
// for callers that want to run many queries against one consistent state.
// Like all reads it is lock-free; when the engine was just compacted — no
// tail edges, no evicted prefix, and no nodes added since — the base is
// returned directly with no copying.
func (l *Live) Snapshot() *Engine {
	v := l.snap()
	g := v.g
	if g.base != nil && len(v.tail) == 0 && g.floor == 0 && len(g.labels) == g.base.g.NumNodes() {
		return g.base
	}
	return NewEngine(v.buildGraph())
}

// LiveStats describes a Live engine's retention and compaction state at
// one instant (one view): how much of the edge set sits in the compacted
// CSR base versus the append-only tail, how far eviction has advanced,
// what the compactor has been doing, and how much storage the engine (and
// any slow readers) retain. All counts are edges unless stated otherwise.
//
// Every field is O(1) to produce. Nodes through LastCompactTail are carried
// by (or derived from) the pinned generation view; RetainedBytes is the
// writer-maintained incremental counter (every mutation folds its storage
// delta in, every compaction rebases it to an exact walk); only
// ActiveReaders and OldestReaderLag are derived from the fixed-size reader
// table rather than the view. Stats is therefore cheap enough to read per
// batch — tgminerd's admission control does exactly that.
//
// The JSON field names are a stable wire contract shared by tgminerd's
// /v1/statsz endpoint and examples/monitor; renaming one is a breaking
// protocol change (TestLiveStatsJSONRoundTrip pins the set).
type LiveStats struct {
	Nodes     int   `json:"nodes"`     // nodes ever added (evicted edges keep their nodes)
	BaseEdges int   `json:"baseEdges"` // edges held by the CSR base, including any evicted prefix
	TailLen   int   `json:"tailLen"`   // edges in the append-only tail awaiting compaction
	Floor     int   `json:"floor"`     // global position of the first live edge; earlier ones are evicted but not yet reclaimed
	LiveEdges int   `json:"liveEdges"` // non-evicted edges (BaseEdges + TailLen - Floor)
	FirstTime int64 `json:"firstTime"` // oldest live (non-evicted) timestamp; -1 when empty
	LastTime  int64 `json:"lastTime"`  // largest appended timestamp; -1 when empty

	Compactions     int `json:"compactions"`     // compactions since creation
	Merges          int `json:"merges"`          // of which took the incremental merge path (the rest were reclaiming rebuilds)
	LastCompactTail int `json:"lastCompactTail"` // tail edges folded by the most recent compaction

	// RetainedBytes approximates the bytes of storage the engine currently
	// keeps alive: base edge array and CSR indexes, node labels, tail
	// backing array, and tail position lists. Maintained incrementally by
	// writers (O(1) to read); under concurrent ingest it may run a
	// mutation ahead of the pinned view, exactly as the old recomputed
	// walk did (list capacities were always read live). Readers pinning
	// older generations retain their (pre-compaction) storage on top of
	// this; watch OldestReaderLag for that.
	RetainedBytes int `json:"retainedBytes"`
	// ActiveReaders counts queries currently running against some view of
	// this engine (a stream counts until its consumer finishes). Best
	// effort: at most 64 readers are tracked, further ones go uncounted.
	ActiveReaders int `json:"activeReaders"`
	// OldestReaderLag is the number of edges appended since the oldest
	// active reader's snapshot was taken (0 when idle). A large or growing
	// value means a slow or paused reader is pinning old generations —
	// and, across compactions, their pre-compaction storage — alive.
	OldestReaderLag int `json:"oldestReaderLag"`
}

// Stats reports the current view's retention and compaction state. Lock
// free and O(1): the view-derived fields are mutually consistent (one
// view), RetainedBytes reads the writer-maintained incremental counter,
// and the reader fields scan the fixed-size reader table. Cheap enough to
// call per append or per admission decision.
//
// tglint:snapshot
func (l *Live) Stats() LiveStats {
	v := l.snap()
	g := v.g
	readers, oldestEnd := l.readers.oldest()
	lag := 0
	if readers > 0 {
		if d := int(v.end() - oldestEnd); d > 0 {
			lag = d
		}
	}
	firstTime := int64(-1)
	if v.numEdges() > 0 {
		firstTime = v.edgeAt(g.floor).Time
	}
	return LiveStats{
		Nodes:           len(g.labels),
		BaseEdges:       int(g.baseEdges),
		TailLen:         len(v.tail),
		Floor:           int(g.floor),
		LiveEdges:       v.numEdges(),
		FirstTime:       firstTime,
		LastTime:        v.lastTime(),
		Compactions:     g.compactions,
		Merges:          g.merges,
		LastCompactTail: g.lastCompactTail,
		RetainedBytes:   int(l.retained.Load()),
		ActiveReaders:   readers,
		OldestReaderLag: lag,
	}
}

// retainedBytes approximates the storage the view's generation keeps
// alive. O(nodes + pairs): it walks the tail position lists. This is the
// reference accounting for Live.retained: compaction rebases the
// incremental counter to this walk, and the stats differential suite pins
// the counter byte-equal to it after every mutation — Stats itself never
// calls it.
//
// tglint:ignore genaccess capacity accounting reads len(tailArr), which is immutable per generation (only the contents are writer-owned)
func (v genView) retainedBytes() int {
	g := v.g
	b := engineRetainedBytes(g.base)
	b += 4 * len(g.labels)             // labels
	b += edgeBytes * len(g.tailArr)    // tail backing array (full capacity)
	b += 2 * ptrBytes * len(g.tailOut) // tailOut/tailIn pointer slices
	for _, pl := range g.tailOut {
		b += pl.capBytes()
	}
	for _, pl := range g.tailIn {
		b += pl.capBytes()
	}
	for _, pl := range g.pair {
		b += pl.capBytes()
	}
	return b
}

const (
	edgeBytes = 16 // tgraph.Edge: two int32 node IDs + one int64 timestamp
	ptrBytes  = 8
)

// engineRetainedBytes approximates an Engine's storage: the host graph's
// edge and label arrays plus the flat CSR (or merged-mode) indexes. Owned
// merged-mode lists count here; lists shared with the flat ancestor are
// counted once via the ancestor.
func engineRetainedBytes(e *Engine) int {
	if e == nil {
		return 0
	}
	b := edgeBytes*e.g.NumEdges() + 4*e.g.NumNodes()
	b += 4 * (len(e.outOff) + len(e.outPos) + len(e.inOff) + len(e.inPos))
	b += 4*len(e.pairPos) + 4*len(e.pairOff) + 8*len(e.pairKeys) + 8*len(e.pairSpan)
	if e.outList != nil {
		b += 2 * (ptrBytes + 2) * len(e.outList) // list headers + owned bits
		for i := range e.outList {
			if e.outOwned[i] {
				b += 4 * len(e.outList[i])
			}
			if e.inOwned[i] {
				b += 4 * len(e.inList[i])
			}
		}
	}
	for _, seg := range e.pairExt {
		if seg.owned {
			b += 4 * len(seg.pos)
		}
	}
	if e.flat != nil && e.flat != e {
		b += engineRetainedBytes(e.flat)
	}
	return b
}

// NumNodes reports the number of nodes ever added.
func (l *Live) NumNodes() int { return len(l.gen().labels) }

// NumEdges reports the number of live (non-evicted) edges.
func (l *Live) NumEdges() int { return l.snap().numEdges() }

// LastTime reports the largest appended timestamp (-1 when empty).
func (l *Live) LastTime() int64 { return l.snap().lastTime() }

// liveState is the temporal matcher over a live view: the same compiled
// step-program driver as tState (stream.go) — see tState for the
// (k, rep) recursion contract — iterating base + tail as one position
// sequence. The two match methods are deliberate twins — kept monomorphic
// so the static hot path pays no interface dispatch. A change to either
// MUST be mirrored in the other (and in the cross-shard shardedState,
// sharded.go); TestLiveMatchesStaticDifferential enforces agreement.
type liveState struct {
	matchCore
	v genView
}

func (s *liveState) match(k, rep int, lastPos int32, lastTime int64) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.prog.steps) {
		s.emit(Match{Start: s.startTime, End: lastTime})
		return
	}
	st := &s.prog.steps[k]
	if rep >= st.minRep {
		s.match(k+1, 0, lastPos, lastTime)
		if s.done {
			return
		}
	}
	if rep >= st.maxRep {
		return
	}
	lo := st.loTime(s.startTime, lastTime)
	hi := st.hiTime(s.startTime, lastTime, s.opts.Window)
	if hi >= 0 && lo > hi {
		return
	}
	after := lastPos
	if lo > lastTime+1 {
		// Guard-driven skip-ahead on the constrained path only, as in
		// tState: cutBefore is the view's time->position binary search.
		if cut := s.v.cutBefore(lo) - 1; cut > after {
			after = cut
		}
	}
	pe := st.pe
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) {
		ge := s.v.edgeAt(pos)
		if hi >= 0 && ge.Time > hi {
			return
		}
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.v.g.labels[ge.Src] != st.srcLab || s.v.g.labels[ge.Dst] != st.dstLab {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k, rep+1, pos, ge.Time) })
	}
	switch {
	case ms != -1:
		s.v.forEachOut(ms, after, func(pos int32) bool {
			if hi >= 0 && s.v.edgeAt(pos).Time > hi {
				return false
			}
			if md != -1 && s.v.edgeAt(pos).Dst != md {
				return true
			}
			try(pos)
			return !s.done
		})
	case md != -1:
		s.v.forEachIn(md, after, func(pos int32) bool {
			if hi >= 0 && s.v.edgeAt(pos).Time > hi {
				return false
			}
			try(pos)
			return !s.done
		})
	default:
		// Reached when neither endpoint is bound: the first step, and any
		// step whose predecessors were all skipped optional hops.
		s.v.forEachPair(st.srcLab, st.dstLab, after, func(pos int32) bool {
			try(pos)
			return !s.done
		})
	}
}

// StreamTemporal yields the distinct intervals where the temporal pattern
// embeds in the live edge set, with the same semantics as
// Engine.StreamTemporal. The stream runs against the view current when it
// started: it observes one consistent edge set for its whole lifetime,
// holds no lock, and never blocks Append/EvictBefore/Compact — calling
// them from inside the consumer loop body is safe (their effects become
// visible to the next query, not the running stream).
func (l *Live) StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error] {
	opts = opts.normalize()
	return func(yield func(Match, error) bool) {
		if p.NumEdges() == 0 {
			return
		}
		prog, err := compileProgram(p, opts.Constraints)
		if err != nil {
			yield(Match{}, err)
			return
		}
		v := l.snap()
		slot := l.readers.acquire(v.end())
		defer l.readers.release(slot)
		res := newRootDedup(opts.Limit, func(m Match) bool { return yield(m, nil) })
		defer res.release()
		st := &liveState{v: v}
		st.p = p
		st.prog = prog
		st.opts = opts
		st.res = res
		st.ctx = ctx
		u := l.used.Get().(*usedSet)
		u.reset(len(v.g.labels))
		st.init(p.NumNodes(), u)
		defer l.used.Put(u)
		first := &prog.steps[0]
		v.forEachPair(first.srcLab, first.dstLab, v.g.floor-1, func(pos int32) bool {
			if st.rootCancelled() {
				return false
			}
			res.nextRoot()
			ge := v.edgeAt(pos)
			if (first.pe.Src == first.pe.Dst) != (ge.Src == ge.Dst) {
				return true
			}
			st.bindEdge(first.pe, ge, func() {
				st.startTime = ge.Time
				st.match(0, 1, pos, ge.Time)
			})
			return !st.done
		})
		finishStream(yield, res, st.ctxErr)
	}
}

// FindTemporalContext collects StreamTemporal into a deduplicated Result in
// (Start, End) order, returning partial matches plus ctx.Err() on
// cancellation.
func (l *Live) FindTemporalContext(ctx context.Context, p *tgraph.Pattern, opts Options) (Result, error) {
	return collectStream(l.StreamTemporal(ctx, p, opts))
}

// FindTemporal is the background-context compatibility form of
// FindTemporalContext.
func (l *Live) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	r, _ := l.FindTemporalContext(context.Background(), p, opts)
	return r
}

// ntLiveState is the non-temporal matcher over a live view, the twin of
// ntState (search.go) — the same deliberate monomorphic-twin pattern as
// tState/liveState. A semantic change to either MUST be mirrored in the
// other; TestLiveMatchesStaticDifferential enforces agreement.
type ntLiveState struct {
	ntCore
	v genView
}

func (s *ntLiveState) match(k int) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.order) {
		s.res.add(Match{Start: s.minT, End: s.maxT})
		if s.res.full() {
			s.done = true
		}
		return
	}
	pe := s.order[k]
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) bool {
		ge := s.v.edgeAt(pos)
		ok := s.tryEdge(k, pe, ge, int64(pos), s.v.g.labels[ge.Src], s.v.g.labels[ge.Dst], func() { s.match(k + 1) })
		return ok && !s.done
	}
	switch {
	case ms != -1:
		s.v.forEachOut(ms, s.v.g.floor-1, func(pos int32) bool {
			if md != -1 && s.v.edgeAt(pos).Dst != md {
				return true
			}
			return try(pos)
		})
	case md != -1:
		s.v.forEachIn(md, s.v.g.floor-1, try)
	default:
		s.v.forEachPair(s.p.Labels[pe.Src], s.p.Labels[pe.Dst], s.v.g.floor-1, try)
	}
}

// FindNonTemporalContext reports the distinct intervals where the collapsed
// (non-temporal) pattern embeds in the live edge set regardless of edge
// order, with Engine.FindNonTemporalContext semantics. Lock-free: the query
// runs against the view current at the call.
func (l *Live) FindNonTemporalContext(ctx context.Context, p *gspan.Pattern, opts Options) (Result, error) {
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}, nil
	}
	// Up-front poll, as in Engine.FindNonTemporalContext.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	v := l.snap()
	slot := l.readers.acquire(v.end())
	defer l.readers.release(slot)
	st := &ntLiveState{v: v}
	u := l.used.Get().(*usedSet)
	u.reset(len(v.g.labels))
	defer l.used.Put(u)
	st.initNT(ctx, p, opts, u)
	st.match(0)
	return st.finish()
}

// FindNonTemporal is the background-context compatibility form of
// FindNonTemporalContext.
func (l *Live) FindNonTemporal(p *gspan.Pattern, opts Options) Result {
	r, _ := l.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindLabelSetContext finds minimal time windows in the live edge set
// containing distinct nodes covering the query label multiset, with
// Engine.FindLabelSetContext semantics. Lock-free: the sweep runs against
// the view current at the call.
func (l *Live) FindLabelSetContext(ctx context.Context, labels []tgraph.Label, opts Options) (Result, error) {
	opts = opts.normalize()
	if len(labels) == 0 {
		return Result{}, nil
	}
	// Up-front poll, as in Engine.FindLabelSetContext.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	v := l.snap()
	slot := l.readers.acquire(v.end())
	defer l.readers.release(slot)
	need := labelNeed(labels)
	evs := labelSetEvents(need, v.numEdges(), v.forEachEdge, func(n tgraph.NodeID) tgraph.Label { return v.g.labels[n] })
	return labelSetSweep(ctx, evs, need, opts)
}

// FindLabelSet is the background-context compatibility form of
// FindLabelSetContext.
func (l *Live) FindLabelSet(labels []tgraph.Label, opts Options) Result {
	r, _ := l.FindLabelSetContext(context.Background(), labels, opts)
	return r
}
