package search

// This file implements the live (incrementally growing) temporal-graph
// engine for continuous monitoring: the immutable CSR indexes of Engine
// wrapped with an append-only tail plus periodic compaction, and an optional
// sliding window via EvictBefore. Queries see base + tail as one edge
// sequence in global position order, so a Live engine answers every query
// exactly as a static Engine built over the equivalent edge set would
// (differentially tested in live_test.go).
//
// Concurrency is RCU-style: all mutable state lives in an immutable
// generation value published through an atomic pointer. Writers
// (Append/EvictBefore/Compact, serialized by a mutex among themselves) build
// the next generation and publish it; readers load one generation and run
// against it for their whole lifetime without taking any lock, so a
// long-lived StreamTemporal never blocks ingestion. Three disciplines make
// the shared storage safe:
//
//  1. Append-only slices. labels, tail, tailOut, and tailIn grow only via
//     append on the writer's latest view; published generations hold
//     len-capped headers of the same backing arrays, and the writer only
//     ever writes indexes beyond every published length, so no reader can
//     observe a torn element.
//  2. Single-writer posLists. Per-node and per-label-pair tail position
//     lists are shared across generations and appended in place; an atomic
//     element count published after each element write gives readers a
//     consistent prefix. Positions are globally increasing, so a reader
//     simply stops at its generation's end position and never sees entries
//     appended after its snapshot.
//  3. Copy-on-compact. Compaction never truncates shared storage in place.
//     The incremental merge path (merge.go) extends the base engine's
//     storage only in freshly allocated arrays or in owned spare capacity
//     strictly beyond every published length, and the rebuild path builds a
//     fresh base Engine outright; both hand the new generation fresh
//     (empty) tail lists and a fresh pair map, leaving every published
//     generation's storage intact until the garbage collector reclaims it.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// ErrPositionsExhausted is reported by Append when the engine has
// accumulated 2^31-1 global edge positions — the capacity of the int32
// position space the CSR and tail indexes share — and no eviction has
// freed any. Evicting old edges (EvictBefore) frees position space: at
// the bound Append reclaims it automatically with a rebasing rebuild
// compaction, so only an engine that never evicts can hit this error.
var ErrPositionsExhausted = errors.New("search: live engine exhausted its 2^31-1 edge positions (evict old edges with EvictBefore to free position space)")

// LiveOptions configures a Live engine.
type LiveOptions struct {
	// CompactEvery is the minimum tail length before automatic compaction
	// into the CSR base index during Append (default 4096; negative
	// disables automatic compaction, leaving it to explicit Compact
	// calls). Compaction normally merges the tail into the existing base
	// incrementally — O(tail + touched lists), independent of the base
	// size — so it runs as soon as the tail also reaches 1/8 of the
	// merge's per-compaction bookkeeping (node count plus extended-pair
	// count). When the merge is ineligible (no base yet, or the evicted
	// prefix has grown to half the edge array and must be reclaimed),
	// compaction falls back to a full rebuild and additionally waits
	// until the tail is at least half the live base, so rebuild sizes
	// grow geometrically and total ingestion work stays linear —
	// amortized O(1) per append — instead of quadratic in the stream
	// length.
	CompactEvery int

	// disableMerge forces every compaction down the full-rebuild path.
	// Test-only: the merge==rebuild differential tests replay one
	// operation sequence into engines with and without it.
	disableMerge bool
}

func (o LiveOptions) normalize() LiveOptions {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	return o
}

// pairKey indexes tail edges by endpoint labels.
type pairKey struct{ src, dst tgraph.Label }

// posList is a single-writer multi-reader append-only list of edge
// positions. The writer appends an element and then publishes the new
// length with a release store; a reader acquires the length first and then
// the backing array, so the array it loads is always at least as long as
// the count it read and every element below that count is fully written.
// Entries are strictly increasing global positions, which lets readers of
// older generations stop at their snapshot's end position.
type posList struct {
	n   atomic.Int32            // published element count
	arr atomic.Pointer[[]int32] // backing array (len == cap), grown by doubling
}

// push appends one position. Writer-exclusive (callers hold the Live
// writer mutex).
func (p *posList) push(pos int32) {
	n := int(p.n.Load())
	cur := p.arr.Load()
	if cur == nil || n == len(*cur) {
		newCap := 4
		if cur != nil {
			newCap = 2 * len(*cur)
		}
		grown := make([]int32, newCap)
		if cur != nil {
			copy(grown, *cur)
		}
		grown[n] = pos
		p.arr.Store(&grown)
	} else {
		(*cur)[n] = pos
	}
	p.n.Store(int32(n + 1))
}

// view returns a consistent prefix of the list. Safe to call concurrently
// with push; the returned slice is never written again at indexes < len.
func (p *posList) view() []int32 {
	n := p.n.Load()
	if n == 0 {
		return nil
	}
	arr := p.arr.Load()
	return (*arr)[:n]
}

// generation is one immutable snapshot of the live edge set: a compacted
// CSR base plus an indexed tail, with eviction expressed as a floor
// position. Every query runs against exactly one generation, so it observes
// one consistent edge set no matter how long it runs. The slices are
// len-capped views into append-only storage shared with newer generations
// (see the package comment disciplines); the posLists may contain positions
// beyond this generation's end, which readers skip via the monotone
// position order.
type generation struct {
	base      *Engine // CSR indexes over the compacted prefix; nil until first compaction
	baseEdges int32   // edges in base: global positions [0, baseEdges)

	floor int32 // first live global position; earlier edges are evicted

	labels  []tgraph.Label       // node labels; len == node count of this generation
	tail    []tgraph.Edge        // appended edges, global positions baseEdges+i
	tailOut []*posList           // node -> tail positions with the node as source
	tailIn  []*posList           // node -> tail positions with the node as destination
	pair    map[pairKey]*posList // label pair -> tail positions (copy-on-new-key)

	lastTime int64 // largest timestamp seen; -1 when empty

	// Compaction bookkeeping, carried immutably for Stats.
	compactions     int // total compactions since creation
	merges          int // of which took the incremental merge path
	lastCompactTail int // tail edges folded by the most recent compaction
}

// end returns one past the last global position of this generation.
func (g *generation) end() int32 { return g.baseEdges + int32(len(g.tail)) }

// numEdges reports the number of live (non-evicted) edges.
func (g *generation) numEdges() int { return int(g.end() - g.floor) }

// edgeAt returns the edge at a global position.
func (g *generation) edgeAt(pos int32) tgraph.Edge {
	if pos < g.baseEdges {
		return g.base.g.EdgeAt(int(pos))
	}
	return g.tail[pos-g.baseEdges]
}

// iterTail iterates a tail posList's positions strictly after `after` and
// below this generation's end, until fn returns false; reports whether the
// scan ran to completion.
func (g *generation) iterTail(pl *posList, after int32, fn func(int32) bool) bool {
	if pl == nil {
		return true
	}
	list := pl.view()
	end := g.end()
	i := sort.Search(len(list), func(i int) bool { return list[i] > after })
	for ; i < len(list); i++ {
		pos := list[i]
		if pos >= end {
			return true
		}
		if !fn(pos) {
			return false
		}
	}
	return true
}

// forEachPair iterates live positions of edges with endpoint labels
// (src, dst) strictly after `after`, in increasing order, until fn returns
// false. Base and tail segments chain naturally: every tail position is
// greater than every base position.
func (g *generation) forEachPair(src, dst tgraph.Label, after int32, fn func(int32) bool) {
	if after < g.floor-1 {
		after = g.floor - 1
	}
	if g.base != nil {
		if !iterAfterOK(g.base.pairPositions(src, dst), after, fn) {
			return
		}
	}
	g.iterTail(g.pair[pairKey{src, dst}], after, fn)
}

// forEachOut iterates live positions of edges with node v as source,
// strictly after `after`, until fn returns false.
func (g *generation) forEachOut(v tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < g.floor-1 {
		after = g.floor - 1
	}
	if g.base != nil && int(v) < g.base.g.NumNodes() {
		if !iterAfterOK(g.base.outAt(v), after, fn) {
			return
		}
	}
	g.iterTail(g.tailOut[v], after, fn)
}

// forEachIn iterates live positions of edges with node v as destination,
// strictly after `after`, until fn returns false.
func (g *generation) forEachIn(v tgraph.NodeID, after int32, fn func(int32) bool) {
	if after < g.floor-1 {
		after = g.floor - 1
	}
	if g.base != nil && int(v) < g.base.g.NumNodes() {
		if !iterAfterOK(g.base.inAt(v), after, fn) {
			return
		}
	}
	g.iterTail(g.tailIn[v], after, fn)
}

// forEachEdge iterates the live (non-evicted) edges in global position
// order until fn returns false.
func (g *generation) forEachEdge(fn func(tgraph.Edge) bool) {
	if g.base != nil && g.floor < g.baseEdges {
		for _, e := range g.base.g.Edges()[g.floor:] {
			if !fn(e) {
				return
			}
		}
	}
	tailFrom := int(g.floor) - int(g.baseEdges)
	if tailFrom < 0 {
		tailFrom = 0
	}
	for _, e := range g.tail[tailFrom:] {
		if !fn(e) {
			return
		}
	}
}

// buildGraph materializes the generation's edge set (all nodes, non-evicted
// edges) as an immutable tgraph.Graph.
func (g *generation) buildGraph() *tgraph.Graph {
	var b tgraph.Builder
	for _, lab := range g.labels {
		b.AddNode(lab)
	}
	g.forEachEdge(func(e tgraph.Edge) bool {
		_ = b.AddEdge(e.Src, e.Dst, e.Time)
		return true
	})
	gr, err := b.Finalize()
	if err != nil {
		// Unreachable: Append enforces the strict total order Finalize checks.
		panic("search: live edge set lost total order: " + err.Error())
	}
	return gr
}

// cutBefore returns the first global position whose edge time is >= t.
func (g *generation) cutBefore(t int64) int32 {
	if g.base != nil {
		edges := g.base.g.Edges()
		if i := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= t }); i < len(edges) {
			return int32(i)
		}
	}
	j := sort.Search(len(g.tail), func(i int) bool { return g.tail[i].Time >= t })
	return g.baseEdges + int32(j)
}

// Live is an incrementally growing temporal-graph engine. Edges append in
// strictly increasing timestamp order (the same total-order invariant
// tgraph.Builder enforces); each edge takes a global position = base size +
// tail offset. The tail keeps per-node and per-label-pair position lists;
// compaction folds the tail into the CSR Engine — normally by extending
// the existing base with the tail segment in O(tail + touched lists)
// (merge.go), falling back to a full rebuild when there is no base yet or
// evicted space must be reclaimed. EvictBefore implements a sliding window
// by advancing a floor position — queries skip evicted prefixes in O(1)
// because position order is time order — and the space is reclaimed by the
// rebuild compaction once the evicted prefix reaches half the edge array.
//
// Live is safe for concurrent use and reads are lock-free: every query —
// including a StreamTemporal iterated over minutes — runs against the
// immutable generation current when it started and never blocks
// Append/EvictBefore/Compact, which serialize among themselves on a writer
// mutex and publish new generations atomically.
type Live struct {
	mu   sync.Mutex // serializes writers; readers never take it
	opts LiveOptions

	cur atomic.Pointer[generation]

	used sync.Pool // *usedSet per-query scratch
}

// NewLive returns an empty live engine.
func NewLive(opts LiveOptions) *Live {
	l := &Live{opts: opts.normalize()}
	l.cur.Store(&generation{
		pair:     make(map[pairKey]*posList),
		lastTime: -1,
	})
	l.used.New = func() any { return new(usedSet) }
	return l
}

// gen returns the current generation; the returned value is immutable and
// remains valid (and consistent) forever.
func (l *Live) gen() *generation { return l.cur.Load() }

// AddNode appends a node with the given label and returns its NodeID.
func (l *Live) AddNode(label tgraph.Label) tgraph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	ng := *g
	ng.labels = append(g.labels, label)
	ng.tailOut = append(g.tailOut, &posList{})
	ng.tailIn = append(g.tailIn, &posList{})
	l.cur.Store(&ng)
	return tgraph.NodeID(len(ng.labels) - 1)
}

// Append records a directed edge src -> dst at time t. Timestamps must be
// strictly increasing across appends (sequentialize concurrent events
// upstream, as tgraph.Builder.Sequentialize does for batch graphs). The
// amortized cost is O(1): the tail folds into the CSR base on the geometric
// schedule described on LiveOptions.CompactEvery.
func (l *Live) Append(src, dst tgraph.NodeID, t int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	if n := tgraph.NodeID(len(g.labels)); src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("search: live edge (%d,%d,%d) references unknown node (have %d nodes)", src, dst, t, n)
	}
	if t <= g.lastTime {
		return fmt.Errorf("search: live append out of order: t=%d not after t=%d (timestamps must be strictly increasing)", t, g.lastTime)
	}
	if int64(g.baseEdges)+int64(len(g.tail)) >= math.MaxInt32 {
		// The next edge would take global position 2^31-1, wrapping the
		// int32 position space and corrupting every posList. Compaction
		// keeps cumulative positions (the merge carries the floor, a
		// rebuild below only counts live edges), so position space only
		// returns via a rebasing rebuild over an evicted generation:
		// force one here if eviction has freed anything, and error
		// otherwise — reachable only by streams that never evict (e.g.
		// CompactEvery < 0 for 2^31 appends).
		if g.floor > 0 {
			g = rebuildGen(g)
			l.cur.Store(g)
		}
		if int64(g.baseEdges)+int64(len(g.tail)) >= math.MaxInt32 {
			return fmt.Errorf("%w: edge (%d,%d,%d) rejected", ErrPositionsExhausted, src, dst, t)
		}
	}
	pos := g.end()
	ng := *g
	ng.tail = append(g.tail, tgraph.Edge{Src: src, Dst: dst, Time: t})
	// The posLists are shared with published generations: the new position
	// is beyond every published end, so concurrent readers skip it.
	g.tailOut[src].push(pos)
	g.tailIn[dst].push(pos)
	k := pairKey{g.labels[src], g.labels[dst]}
	pl := g.pair[k]
	if pl == nil {
		// First edge with this label pair: copy-on-write the map so
		// readers holding older generations never observe a map insert.
		pl = &posList{}
		np := make(map[pairKey]*posList, len(g.pair)+1)
		for pk, pv := range g.pair {
			np[pk] = pv
		}
		np[k] = pl
		ng.pair = np
	}
	pl.push(pos)
	ng.lastTime = t
	// Automatic compaction schedule. The incremental merge (merge.go)
	// costs O(tail + touched lists) plus per-merge bookkeeping linear in
	// the node count and the extended-pair map — all independent of the
	// base — so once the tail clears CompactEvery it runs as soon as it
	// also covers that bookkeeping (tail >= (nodes + extended pairs)/8),
	// keeping appends amortized O(1). When the merge is ineligible — no
	// base yet, or the evicted prefix reached half the edge array and
	// must be reclaimed — the fallback rebuild costs O(live+tail), so it
	// additionally waits for tail >= live base/2 (the dead prefix is
	// free to drop and must not defer its own reclamation): rebuild
	// sizes then grow geometrically in the live set and appends stay
	// amortized O(1) either way. Tail edges are indexed just like base
	// edges, so a deferred compaction does not slow searches.
	if l.opts.CompactEvery > 0 && len(ng.tail) >= l.opts.CompactEvery {
		switch {
		case canMerge(&ng) && !l.opts.disableMerge:
			if 8*len(ng.tail) >= len(ng.labels)+len(ng.base.pairExt) {
				l.cur.Store(mergeGen(&ng))
				return nil
			}
		case int64(len(ng.tail))*2 >= int64(ng.baseEdges)-int64(ng.floor):
			l.cur.Store(rebuildGen(&ng))
			return nil
		}
	}
	l.cur.Store(&ng)
	return nil
}

// EvictBefore drops every edge with timestamp < t (sliding-window
// retention). O(log E) now — it only advances the floor position — with the
// space reclaimed once the evicted prefix reaches half the edge array and
// a compaction takes the rebuild path. Nodes are retained so NodeIDs stay
// stable.
func (l *Live) EvictBefore(t int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	if cut := g.cutBefore(t); cut > g.floor {
		ng := *g
		ng.floor = cut
		l.cur.Store(&ng)
	}
}

// Compact folds the tail (and any nodes added since the last compaction)
// into the CSR base now instead of waiting for the CompactEvery threshold.
// Normally this is the incremental merge — the existing base is extended
// with the tail segment in O(tail + touched lists) — with the evicted
// prefix carried along; once the evicted prefix reaches half the edge
// array (or before the first compaction) it is a full rebuild instead,
// which reclaims the evicted space and rebases the floor to zero.
func (l *Live) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen()
	l.cur.Store(compactGen(l.opts, g))
}

// compactGen picks the compaction strategy for a generation: the
// incremental merge when eligible, the reclaiming rebuild otherwise, or
// the generation unchanged when compaction would be a no-op. Caller holds
// the writer mutex.
func compactGen(opts LiveOptions, g *generation) *generation {
	merge := canMerge(g) && !opts.disableMerge
	if len(g.tail) == 0 {
		newNodes := g.base == nil && len(g.labels) > 0
		if g.base != nil && len(g.labels) > g.base.g.NumNodes() {
			newNodes = true
		}
		// An empty tail leaves nothing to fold: act only if there are
		// nodes to fold in, or an evicted prefix a rebuild would reclaim.
		if !newNodes && (g.floor == 0 || merge) {
			return g
		}
	}
	if merge {
		return mergeGen(g)
	}
	return rebuildGen(g)
}

// Snapshot materializes an immutable Engine over the current live edge set,
// for callers that want to run many queries against one consistent state.
// Like all reads it is lock-free; when the engine was just compacted — no
// tail edges, no evicted prefix, and no nodes added since — the base is
// returned directly with no copying.
func (l *Live) Snapshot() *Engine {
	g := l.gen()
	if g.base != nil && len(g.tail) == 0 && g.floor == 0 && len(g.labels) == g.base.g.NumNodes() {
		return g.base
	}
	return NewEngine(g.buildGraph())
}

// LiveStats describes a Live engine's retention and compaction state at
// one instant (one generation): how much of the edge set sits in the
// compacted CSR base versus the append-only tail, how far eviction has
// advanced, and what the compactor has been doing. All counts are edges
// unless stated otherwise.
type LiveStats struct {
	Nodes     int   // nodes ever added (evicted edges keep their nodes)
	BaseEdges int   // edges held by the CSR base, including any evicted prefix
	TailLen   int   // edges in the append-only tail awaiting compaction
	Floor     int   // global position of the first live edge; earlier ones are evicted but not yet reclaimed
	LiveEdges int   // non-evicted edges (BaseEdges + TailLen - Floor)
	LastTime  int64 // largest appended timestamp; -1 when empty

	Compactions     int // compactions since creation
	Merges          int // of which took the incremental merge path (the rest were reclaiming rebuilds)
	LastCompactTail int // tail edges folded by the most recent compaction
}

// Stats reports the current generation's retention and compaction state.
// Lock-free and O(1); the fields are mutually consistent (one generation).
func (l *Live) Stats() LiveStats {
	g := l.gen()
	return LiveStats{
		Nodes:           len(g.labels),
		BaseEdges:       int(g.baseEdges),
		TailLen:         len(g.tail),
		Floor:           int(g.floor),
		LiveEdges:       g.numEdges(),
		LastTime:        g.lastTime,
		Compactions:     g.compactions,
		Merges:          g.merges,
		LastCompactTail: g.lastCompactTail,
	}
}

// NumNodes reports the number of nodes ever added.
func (l *Live) NumNodes() int { return len(l.gen().labels) }

// NumEdges reports the number of live (non-evicted) edges.
func (l *Live) NumEdges() int { return l.gen().numEdges() }

// LastTime reports the largest appended timestamp (-1 when empty).
func (l *Live) LastTime() int64 { return l.gen().lastTime }

// liveState is the temporal matcher over a live generation: the same
// backtracking search as tState (stream.go), iterating base + tail as one
// position sequence. The two match methods are deliberate twins — kept
// monomorphic so the static hot path pays no interface dispatch. A change
// to either MUST be mirrored in the other;
// TestLiveMatchesStaticDifferential enforces agreement.
type liveState struct {
	matchCore
	g *generation
}

func (s *liveState) match(k int, lastPos int32) {
	if s.stepCancelled() {
		return
	}
	if k == s.p.NumEdges() {
		s.emit(Match{Start: s.startTime, End: s.g.edgeAt(lastPos).Time})
		return
	}
	pe := s.p.EdgeAt(k)
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	deadline := int64(-1)
	if s.opts.Window > 0 {
		deadline = s.startTime + s.opts.Window - 1
	}
	try := func(pos int32) {
		ge := s.g.edgeAt(pos)
		if deadline >= 0 && ge.Time > deadline {
			return
		}
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.g.labels[ge.Src] != s.p.LabelOf(pe.Src) || s.g.labels[ge.Dst] != s.p.LabelOf(pe.Dst) {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k+1, pos) })
	}
	switch {
	case ms != -1:
		s.g.forEachOut(ms, lastPos, func(pos int32) bool {
			if deadline >= 0 && s.g.edgeAt(pos).Time > deadline {
				return false
			}
			if md != -1 && s.g.edgeAt(pos).Dst != md {
				return true
			}
			try(pos)
			return !s.done
		})
	case md != -1:
		s.g.forEachIn(md, lastPos, func(pos int32) bool {
			if deadline >= 0 && s.g.edgeAt(pos).Time > deadline {
				return false
			}
			try(pos)
			return !s.done
		})
	default:
		// Unreachable for T-connected patterns beyond the first edge, but
		// handle defensively via the pair index.
		s.g.forEachPair(s.p.LabelOf(pe.Src), s.p.LabelOf(pe.Dst), lastPos, func(pos int32) bool {
			try(pos)
			return !s.done
		})
	}
}

// StreamTemporal yields the distinct intervals where the temporal pattern
// embeds in the live edge set, with the same semantics as
// Engine.StreamTemporal. The stream runs against the generation current
// when it started: it observes one consistent edge set for its whole
// lifetime, holds no lock, and never blocks Append/EvictBefore/Compact —
// calling them from inside the loop body is safe (their effects become
// visible to the next query, not the running stream).
func (l *Live) StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error] {
	opts = opts.normalize()
	return func(yield func(Match, error) bool) {
		if p.NumEdges() == 0 {
			return
		}
		g := l.gen()
		res := newRootDedup(opts.Limit, func(m Match) bool { return yield(m, nil) })
		defer res.release()
		st := &liveState{g: g}
		st.p = p
		st.opts = opts
		st.res = res
		st.ctx = ctx
		u := l.used.Get().(*usedSet)
		u.reset(len(g.labels))
		st.init(p.NumNodes(), u)
		defer l.used.Put(u)
		first := p.EdgeAt(0)
		g.forEachPair(p.LabelOf(first.Src), p.LabelOf(first.Dst), g.floor-1, func(pos int32) bool {
			if st.rootCancelled() {
				return false
			}
			res.nextRoot()
			ge := g.edgeAt(pos)
			if (first.Src == first.Dst) != (ge.Src == ge.Dst) {
				return true
			}
			st.bindEdge(first, ge, func() {
				st.startTime = ge.Time
				st.match(1, pos)
			})
			return !st.done
		})
		finishStream(yield, res, st.ctxErr)
	}
}

// FindTemporalContext collects StreamTemporal into a deduplicated Result in
// (Start, End) order, returning partial matches plus ctx.Err() on
// cancellation.
func (l *Live) FindTemporalContext(ctx context.Context, p *tgraph.Pattern, opts Options) (Result, error) {
	return collectStream(l.StreamTemporal(ctx, p, opts))
}

// FindTemporal is the background-context compatibility form of
// FindTemporalContext.
func (l *Live) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	r, _ := l.FindTemporalContext(context.Background(), p, opts)
	return r
}

// ntLiveState is the non-temporal matcher over a live generation, the twin
// of ntState (search.go) — the same deliberate monomorphic-twin pattern as
// tState/liveState. A semantic change to either MUST be mirrored in the
// other; TestLiveMatchesStaticDifferential enforces agreement.
type ntLiveState struct {
	ntCore
	g *generation
}

func (s *ntLiveState) match(k int) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.order) {
		s.res.add(Match{Start: s.minT, End: s.maxT})
		if s.res.full() {
			s.done = true
		}
		return
	}
	pe := s.order[k]
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) bool {
		ge := s.g.edgeAt(pos)
		ok := s.tryEdge(k, pe, ge, pos, s.g.labels[ge.Src], s.g.labels[ge.Dst], func() { s.match(k + 1) })
		return ok && !s.done
	}
	switch {
	case ms != -1:
		s.g.forEachOut(ms, s.g.floor-1, func(pos int32) bool {
			if md != -1 && s.g.edgeAt(pos).Dst != md {
				return true
			}
			return try(pos)
		})
	case md != -1:
		s.g.forEachIn(md, s.g.floor-1, try)
	default:
		s.g.forEachPair(s.p.Labels[pe.Src], s.p.Labels[pe.Dst], s.g.floor-1, try)
	}
}

// FindNonTemporalContext reports the distinct intervals where the collapsed
// (non-temporal) pattern embeds in the live edge set regardless of edge
// order, with Engine.FindNonTemporalContext semantics. Lock-free: the query
// runs against the generation current at the call.
func (l *Live) FindNonTemporalContext(ctx context.Context, p *gspan.Pattern, opts Options) (Result, error) {
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}, nil
	}
	// Up-front poll, as in Engine.FindNonTemporalContext.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	g := l.gen()
	st := &ntLiveState{g: g}
	u := l.used.Get().(*usedSet)
	u.reset(len(g.labels))
	defer l.used.Put(u)
	st.initNT(ctx, p, opts, u)
	st.match(0)
	return st.finish()
}

// FindNonTemporal is the background-context compatibility form of
// FindNonTemporalContext.
func (l *Live) FindNonTemporal(p *gspan.Pattern, opts Options) Result {
	r, _ := l.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindLabelSetContext finds minimal time windows in the live edge set
// containing distinct nodes covering the query label multiset, with
// Engine.FindLabelSetContext semantics. Lock-free: the sweep runs against
// the generation current at the call.
func (l *Live) FindLabelSetContext(ctx context.Context, labels []tgraph.Label, opts Options) (Result, error) {
	opts = opts.normalize()
	if len(labels) == 0 {
		return Result{}, nil
	}
	// Up-front poll, as in Engine.FindLabelSetContext.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	g := l.gen()
	need := labelNeed(labels)
	evs := labelSetEvents(need, g.numEdges(), g.forEachEdge, func(v tgraph.NodeID) tgraph.Label { return g.labels[v] })
	return labelSetSweep(ctx, evs, need, opts)
}

// FindLabelSet is the background-context compatibility form of
// FindLabelSetContext.
func (l *Live) FindLabelSet(labels []tgraph.Label, opts Options) Result {
	r, _ := l.FindLabelSetContext(context.Background(), labels, opts)
	return r
}
