package search

// This file is the temporal-query streaming core: the backtracking matcher
// refactored from collect-into-resultSet to a yield callback, so matches
// flow to the caller as the search finds them. FindTemporal(Context) is a
// thin collector over StreamTemporal; a monitoring pipeline ranges over the
// stream directly and never pays memory proportional to the match count.

import (
	"context"
	"errors"
	"iter"
	"sort"
	"sync"

	"tgminer/internal/tgraph"
)

// ErrTruncated terminates a match stream whose Options.Limit was reached:
// it is yielded as the final (zero Match, ErrTruncated) element. It is only
// emitted once the search has seen a further distinct match beyond the cap,
// so a stream with exactly Limit distinct matches ends without it.
var ErrTruncated = errors.New("search: match stream truncated at Options.Limit")

// ctxCheckMask throttles context polls on the recursion hot path: the
// context is consulted once every ctxCheckMask+1 search steps (plus once per
// root candidate), bounding cancellation latency without paying a
// synchronized Err() load per explored edge.
const ctxCheckMask = 1023

// rootDedup forwards distinct match intervals to an emit callback with a
// cap. Matches found under one root (one binding of the pattern's first
// edge) all share Start — the root edge's timestamp — and roots have
// pairwise-distinct timestamps by the host's strict total edge order, so
// deduplicating End values within a root deduplicates globally while keeping
// only O(matches per root) state, independent of the total match count.
type rootDedup struct {
	emit      func(Match) bool // false stops the search (consumer break)
	limit     int
	count     int
	ends      map[int64]struct{} // End values seen under the current root
	truncated bool
	halted    bool
}

// endsPool recycles the per-root dedup maps across queries (and across
// static and live engines): a map keeps its grown bucket array, so after
// warm-up a query allocates nothing for deduplication no matter how many
// matches it yields. Maps are returned cleared.
var endsPool = sync.Pool{New: func() any { return make(map[int64]struct{}) }}

func newRootDedup(limit int, emit func(Match) bool) *rootDedup {
	return &rootDedup{emit: emit, limit: limit, ends: endsPool.Get().(map[int64]struct{})}
}

// release returns the dedup map to the pool; the rootDedup must not be used
// afterwards.
func (r *rootDedup) release() {
	clear(r.ends)
	endsPool.Put(r.ends)
	r.ends = nil
}

func (r *rootDedup) nextRoot() { clear(r.ends) }

func (r *rootDedup) add(m Match) {
	// Duplicate check first: a duplicate of an already-yielded interval is
	// never evidence of truncation, so a stream whose distinct matches
	// number exactly Limit ends clean no matter how many duplicate
	// candidates arrive after the cap. Only a distinct match beyond the
	// cap proves truncation and stops the search, which therefore runs on
	// at the cap until it completes one more match or exhausts — an exact
	// Truncated bit costs exactly the search for one further match (the
	// first completed match in any later root is distinct, since roots
	// have pairwise-distinct Starts). Callers using Limit as a hard work
	// bound rather than a result cap should bound work via ctx instead.
	if _, dup := r.ends[m.End]; dup {
		return
	}
	if r.count >= r.limit {
		r.truncated = true
		return
	}
	r.ends[m.End] = struct{}{}
	r.count++
	if !r.emit(m) {
		r.halted = true
	}
}

func (r *rootDedup) full() bool { return r.halted || r.truncated }

// binder tracks the injective pattern-node -> host-node assignment shared by
// the static and live temporal matchers.
type binder struct {
	mapping []tgraph.NodeID
	used    *usedSet
}

func (b *binder) init(patternNodes int, used *usedSet) {
	b.mapping = make([]tgraph.NodeID, patternNodes)
	for i := range b.mapping {
		b.mapping[i] = -1
	}
	b.used = used
}

// bindEdge binds the endpoints of pattern edge pe to graph edge ge (which
// must already be label-compatible), runs fn, and unbinds.
func (b *binder) bindEdge(pe tgraph.PEdge, ge tgraph.Edge, fn func()) {
	var boundSrc, boundDst bool
	if b.mapping[pe.Src] == -1 {
		if b.used.has(ge.Src) {
			return
		}
		b.mapping[pe.Src] = ge.Src
		b.used.add(ge.Src)
		boundSrc = true
	} else if b.mapping[pe.Src] != ge.Src {
		return
	}
	if pe.Src != pe.Dst {
		if b.mapping[pe.Dst] == -1 {
			if b.used.has(ge.Dst) {
				if boundSrc {
					b.mapping[pe.Src] = -1
					b.used.remove(ge.Src)
				}
				return
			}
			b.mapping[pe.Dst] = ge.Dst
			b.used.add(ge.Dst)
			boundDst = true
		} else if b.mapping[pe.Dst] != ge.Dst {
			if boundSrc {
				b.mapping[pe.Src] = -1
				b.used.remove(ge.Src)
			}
			return
		}
	}
	fn()
	if boundSrc {
		b.mapping[pe.Src] = -1
		b.used.remove(ge.Src)
	}
	if boundDst {
		b.mapping[pe.Dst] = -1
		b.used.remove(ge.Dst)
	}
}

// matchCore is the host-independent temporal matcher state: pattern, output
// sink, bindings, and cooperative-cancellation bookkeeping. The done flag
// caches "stop searching" (limit reached, consumer break, or context
// cancellation) so the recursion probes a plain bool instead of re-deriving
// it.
type matchCore struct {
	binder
	p         *tgraph.Pattern
	prog      *program
	opts      Options
	res       *rootDedup
	startTime int64
	done      bool
	ctx       context.Context
	ctxErr    error
	steps     int
}

func (c *matchCore) emit(m Match) {
	c.res.add(m)
	if c.res.full() {
		c.done = true
	}
}

// stepCancelled is the throttled in-recursion stop probe.
func (c *matchCore) stepCancelled() bool {
	if c.done {
		return true
	}
	c.steps++
	if c.steps&ctxCheckMask == 0 {
		if err := c.ctx.Err(); err != nil {
			c.ctxErr = err
			c.done = true
			return true
		}
	}
	return false
}

// rootCancelled polls the context once per root candidate.
func (c *matchCore) rootCancelled() bool {
	if c.done {
		return true
	}
	if err := c.ctx.Err(); err != nil {
		c.ctxErr = err
		c.done = true
		return true
	}
	return false
}

// tState is the temporal matcher over a static Engine: a driver of the
// compiled step program (automaton.go).
//
// tState.match and liveState.match (live.go) are deliberate twins: the
// recursion is kept monomorphic per host so the static hot path stays free
// of interface dispatch. A semantic change to either MUST be mirrored in
// the other (and in the cross-shard shardedState, sharded.go); the
// live==static differential property test
// (TestLiveMatchesStaticDifferential) enforces agreement.
//
// match is the program driver: (k, rep) says "step k has matched rep
// occurrences so far". When rep satisfies the step's minimum the driver
// first tries advancing to step k+1 (so an optional or satisfied-repetition
// hop is skipped before further occurrences are scanned — the candidate
// enumeration order all three engines share), then, while rep is below the
// step's maximum, scans for the next occurrence strictly after lastPos
// within the step's guard interval. The guard's lower bound skips ahead by
// binary search on edge time (position order is time order), and its upper
// bound early-exits the time-sorted candidate scan; both are no-ops for
// unconstrained steps, which therefore walk exactly the historical
// fixed-sequence search.
type tState struct {
	matchCore
	e *Engine
}

func (s *tState) match(k, rep int, lastPos int32, lastTime int64) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.prog.steps) {
		s.emit(Match{Start: s.startTime, End: lastTime})
		return
	}
	st := &s.prog.steps[k]
	if rep >= st.minRep {
		s.match(k+1, 0, lastPos, lastTime)
		if s.done {
			return
		}
	}
	if rep >= st.maxRep {
		return
	}
	lo := st.loTime(s.startTime, lastTime)
	hi := st.hiTime(s.startTime, lastTime, s.opts.Window)
	if hi >= 0 && lo > hi {
		return
	}
	after := lastPos
	if lo > lastTime+1 {
		// Guard-driven skip-ahead: the first admissible position is the
		// first with time >= lo. Only reached for constrained steps, so the
		// unconstrained hot path pays nothing.
		if cut := s.e.posOfTime(lo) - 1; cut > after {
			after = cut
		}
	}
	pe := st.pe
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(pos int32) {
		ge := s.e.g.EdgeAt(int(pos))
		if hi >= 0 && ge.Time > hi {
			return
		}
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.e.g.LabelOf(ge.Src) != st.srcLab || s.e.g.LabelOf(ge.Dst) != st.dstLab {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k, rep+1, pos, ge.Time) })
	}
	switch {
	case ms != -1:
		iterAfter(s.e.outAt(ms), after, func(pos int32) bool {
			if hi >= 0 && s.e.g.EdgeAt(int(pos)).Time > hi {
				return false
			}
			if md != -1 && s.e.g.EdgeAt(int(pos)).Dst != md {
				return true
			}
			try(pos)
			return !s.done
		})
	case md != -1:
		iterAfter(s.e.inAt(md), after, func(pos int32) bool {
			if hi >= 0 && s.e.g.EdgeAt(int(pos)).Time > hi {
				return false
			}
			try(pos)
			return !s.done
		})
	default:
		// Reached when neither endpoint is bound: the first step, and any
		// step whose predecessors were all skipped optional hops.
		iterAfter(s.e.pairPositions(st.srcLab, st.dstLab), after, func(pos int32) bool {
			try(pos)
			return !s.done
		})
	}
}

// StreamTemporal yields the distinct intervals where the temporal pattern —
// optionally under Options.Constraints — embeds with edge order preserved,
// in discovery order (ascending Start), as the backtracking search finds
// them. The stream holds O(matches per root) scratch, independent of how
// many matches are yielded.
//
// Each element is (match, nil). Three terminations are possible: the stream
// simply ends (search exhausted), the final element is (zero Match, ctx.Err())
// after a cancellation, or (zero Match, ErrTruncated) when Options.Limit
// matches were yielded. Invalid constraints yield a single
// (zero Match, validation error) element. Breaking out of the range at any
// point releases the engine's pooled scratch immediately.
func (e *Engine) StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error] {
	opts = opts.normalize()
	return func(yield func(Match, error) bool) {
		if p.NumEdges() == 0 {
			return
		}
		prog, err := compileProgram(p, opts.Constraints)
		if err != nil {
			yield(Match{}, err)
			return
		}
		res := newRootDedup(opts.Limit, func(m Match) bool { return yield(m, nil) })
		defer res.release()
		st := &tState{e: e}
		st.p = p
		st.prog = prog
		st.opts = opts
		st.res = res
		st.ctx = ctx
		st.init(p.NumNodes(), e.getUsed())
		defer e.used.Put(st.used)
		first := &prog.steps[0]
		for _, pos := range e.pairPositions(first.srcLab, first.dstLab) {
			if st.rootCancelled() {
				break
			}
			res.nextRoot()
			ge := e.g.EdgeAt(int(pos))
			if (first.pe.Src == first.pe.Dst) != (ge.Src == ge.Dst) {
				continue
			}
			st.bindEdge(first.pe, ge, func() {
				st.startTime = ge.Time
				st.match(0, 1, pos, ge.Time)
			})
		}
		finishStream(yield, res, st.ctxErr)
	}
}

// finishStream emits the terminal stream element, if any.
func finishStream(yield func(Match, error) bool, res *rootDedup, ctxErr error) {
	switch {
	case res.halted: // consumer broke out; say nothing more
	case ctxErr != nil:
		yield(Match{}, ctxErr)
	case res.truncated:
		yield(Match{}, ErrTruncated)
	}
}

// FindTemporalContext collects StreamTemporal into a deduplicated Result in
// (Start, End) order. On cancellation it returns the matches found so far
// together with ctx.Err().
func (e *Engine) FindTemporalContext(ctx context.Context, p *tgraph.Pattern, opts Options) (Result, error) {
	return collectStream(e.StreamTemporal(ctx, p, opts))
}

// collectStream drains a match stream into a sorted Result, translating the
// terminal stream element into (Truncated, error).
func collectStream(seq iter.Seq2[Match, error]) (Result, error) {
	var res Result
	var err error
	for m, serr := range seq {
		switch {
		case serr == nil:
			res.Matches = append(res.Matches, m)
		case errors.Is(serr, ErrTruncated):
			res.Truncated = true
		default:
			err = serr
		}
	}
	sortMatches(res.Matches)
	return res, err
}

// sortMatches orders match intervals by (Start, End).
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Start != ms[j].Start {
			return ms[i].Start < ms[j].Start
		}
		return ms[i].End < ms[j].End
	})
}
