package search

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

// staticEquivalent builds the immutable engine over the live edge set: same
// node labels, only the edges with time >= minTime.
func staticEquivalent(t *testing.T, labels []tgraph.Label, edges []tgraph.Edge, minTime int64) *Engine {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if e.Time < minTime {
			continue
		}
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(g)
}

func sameResult(a, b Result) error {
	if len(a.Matches) != len(b.Matches) {
		return fmt.Errorf("match count %d != %d (%v vs %v)", len(a.Matches), len(b.Matches), a.Matches, b.Matches)
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return fmt.Errorf("match %d: %v != %v", i, a.Matches[i], b.Matches[i])
		}
	}
	if a.Truncated != b.Truncated {
		return fmt.Errorf("truncated %v != %v", a.Truncated, b.Truncated)
	}
	return nil
}

// TestLiveMatchesStaticDifferential is the acceptance property for the live
// engine: after any interleaving of appends, node additions, evictions, and
// forced compactions, every temporal query answers identically to a static
// NewEngine built over the equivalent edge set — including across
// compaction boundaries (CompactEvery is deliberately tiny).
func TestLiveMatchesStaticDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		compactEvery := []int{-1, 2, 3, 7}[rng.Intn(4)]
		live := NewLive(LiveOptions{CompactEvery: compactEvery})
		numLabels := 3
		var labels []tgraph.Label
		var edges []tgraph.Edge
		addNode := func() {
			lab := tgraph.Label(rng.Intn(numLabels))
			labels = append(labels, lab)
			live.AddNode(lab)
		}
		for i := 0; i < 4; i++ {
			addNode()
		}
		tm := int64(0)
		minTime := int64(0)
		for step := 0; step < 40; step++ {
			switch {
			case step%17 == 13:
				addNode()
			case step%11 == 7:
				// Evict a random prefix of the timeline. Eviction is
				// monotonic (an earlier cutoff than a previous one is a
				// no-op), so the oracle tracks the high-water mark.
				if cut := tm - int64(rng.Intn(20)); cut > minTime {
					minTime = cut
				}
				live.EvictBefore(minTime)
			case step%13 == 5:
				live.Compact()
			default:
				src := tgraph.NodeID(rng.Intn(len(labels)))
				dst := tgraph.NodeID(rng.Intn(len(labels)))
				tm += int64(1 + rng.Intn(3))
				if err := live.Append(src, dst, tm); err != nil {
					t.Logf("seed=%d: append: %v", seed, err)
					return false
				}
				edges = append(edges, tgraph.Edge{Src: src, Dst: dst, Time: tm})
			}
			if step%9 != 0 {
				continue
			}
			static := staticEquivalent(t, labels, edges, minTime)
			for q := 0; q < 3; q++ {
				p := randomQuery(rng, 3, numLabels)
				opts := Options{}
				if rng.Intn(2) == 0 {
					opts.Window = int64(2 + rng.Intn(10))
				}
				if rng.Intn(4) == 0 {
					opts.Limit = 1 + rng.Intn(3)
				}
				got := live.FindTemporal(p, opts)
				want := static.FindTemporal(p, opts)
				if err := sameResult(got, want); err != nil {
					t.Logf("seed=%d step=%d (compactEvery=%d, evictBefore=%d): %v\n p=%v",
						seed, step, compactEvery, minTime, err, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLiveAppendOutOfOrder(t *testing.T) {
	l := NewLive(LiveOptions{})
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a, b, 5); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if err := l.Append(a, b, 4); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
	if err := l.Append(a, b, 6); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a, tgraph.NodeID(99), 7); err == nil {
		t.Fatal("unknown node accepted")
	}
	if n := l.NumEdges(); n != 2 {
		t.Fatalf("NumEdges = %d, want 2", n)
	}
}

func TestLiveEvictAndCounts(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 4})
	a := l.AddNode(0)
	b := l.AddNode(1)
	for i := 0; i < 10; i++ {
		if err := l.Append(a, b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.NumEdges(); n != 10 {
		t.Fatalf("NumEdges = %d, want 10", n)
	}
	l.EvictBefore(6)
	if n := l.NumEdges(); n != 4 {
		t.Fatalf("NumEdges after evict = %d, want 4", n)
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != 4 {
		t.Fatalf("matches after evict = %v, want 4", res.Matches)
	}
	for _, m := range res.Matches {
		if m.Start < 6 {
			t.Fatalf("evicted edge matched: %v", m)
		}
	}
	// Compaction after eviction reclaims and must not change answers.
	l.Compact()
	if n := l.NumEdges(); n != 4 {
		t.Fatalf("NumEdges after compact = %d, want 4", n)
	}
	res2 := l.FindTemporal(p, Options{})
	if err := sameResult(res, res2); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSnapshotConsistent(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 3})
	a := l.AddNode(0)
	b := l.AddNode(1)
	c := l.AddNode(2)
	for i, pair := range [][2]tgraph.NodeID{{a, b}, {b, c}, {a, b}, {b, c}, {a, c}} {
		if err := l.Append(pair[0], pair[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if err := sameResult(l.FindTemporal(p, Options{}), snap.FindTemporal(p, Options{})); err != nil {
		t.Fatal(err)
	}
}

// TestLiveConcurrentAppendQuery exercises appenders racing streaming
// queriers; run under -race in CI. Results are not asserted beyond "no
// panic, valid intervals": the interleaving is nondeterministic by design.
func TestLiveConcurrentAppendQuery(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 16})
	a := l.AddNode(0)
	b := l.AddNode(1)
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := l.Append(a, b, int64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for m, err := range l.StreamTemporal(context.Background(), p, Options{}) {
				if err != nil {
					t.Error(err)
					return
				}
				if m.Start != m.End {
					t.Errorf("single-edge match with span: %v", m)
					return
				}
			}
		}
	}()
	wg.Wait()
}
