package search

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// collapseQuery drops edge order from a temporal pattern, producing the
// equivalent non-temporal (gspan) pattern for differential testing.
func collapseQuery(p *tgraph.Pattern) *gspan.Pattern {
	labels := make([]tgraph.Label, p.NumNodes())
	for i := range labels {
		labels[i] = p.LabelOf(tgraph.NodeID(i))
	}
	seen := map[gspan.Edge]bool{}
	var es []gspan.Edge
	for i := 0; i < p.NumEdges(); i++ {
		pe := p.EdgeAt(i)
		e := gspan.Edge{Src: pe.Src, Dst: pe.Dst}
		if !seen[e] {
			seen[e] = true
			es = append(es, e)
		}
	}
	return &gspan.Pattern{Labels: labels, E: es}
}

// staticEquivalent builds the immutable engine over the live edge set: same
// node labels, only the edges with time >= minTime.
func staticEquivalent(t *testing.T, labels []tgraph.Label, edges []tgraph.Edge, minTime int64) *Engine {
	t.Helper()
	var b tgraph.Builder
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if e.Time < minTime {
			continue
		}
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(g)
}

func sameResult(a, b Result) error {
	if len(a.Matches) != len(b.Matches) {
		return fmt.Errorf("match count %d != %d (%v vs %v)", len(a.Matches), len(b.Matches), a.Matches, b.Matches)
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return fmt.Errorf("match %d: %v != %v", i, a.Matches[i], b.Matches[i])
		}
	}
	if a.Truncated != b.Truncated {
		return fmt.Errorf("truncated %v != %v", a.Truncated, b.Truncated)
	}
	return nil
}

// TestLiveMatchesStaticDifferential is the acceptance property for the live
// engine: after any interleaving of appends, node additions, evictions, and
// forced compactions, every query of all three families — temporal,
// non-temporal, and label-set — answers identically to a static NewEngine
// built over the equivalent edge set, including across compaction
// boundaries (CompactEvery is deliberately tiny).
func TestLiveMatchesStaticDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		compactEvery := []int{-1, 2, 3, 7}[rng.Intn(4)]
		live := NewLive(LiveOptions{CompactEvery: compactEvery})
		numLabels := 3
		var labels []tgraph.Label
		var edges []tgraph.Edge
		addNode := func() {
			lab := tgraph.Label(rng.Intn(numLabels))
			labels = append(labels, lab)
			live.AddNode(lab)
		}
		for i := 0; i < 4; i++ {
			addNode()
		}
		tm := int64(0)
		minTime := int64(0)
		for step := 0; step < 40; step++ {
			switch {
			case step%17 == 13:
				addNode()
			case step%11 == 7:
				// Evict a random prefix of the timeline. Eviction is
				// monotonic (an earlier cutoff than a previous one is a
				// no-op), so the oracle tracks the high-water mark.
				if cut := tm - int64(rng.Intn(20)); cut > minTime {
					minTime = cut
				}
				live.EvictBefore(minTime)
			case step%13 == 5:
				live.Compact()
			default:
				src := tgraph.NodeID(rng.Intn(len(labels)))
				dst := tgraph.NodeID(rng.Intn(len(labels)))
				tm += int64(1 + rng.Intn(3))
				if err := live.Append(src, dst, tm); err != nil {
					t.Logf("seed=%d: append: %v", seed, err)
					return false
				}
				edges = append(edges, tgraph.Edge{Src: src, Dst: dst, Time: tm})
			}
			if step%9 != 0 {
				continue
			}
			static := staticEquivalent(t, labels, edges, minTime)
			for q := 0; q < 3; q++ {
				p := randomQuery(rng, 3, numLabels)
				opts := Options{}
				if rng.Intn(2) == 0 {
					opts.Window = int64(2 + rng.Intn(10))
				}
				if rng.Intn(4) == 0 {
					opts.Limit = 1 + rng.Intn(3)
				}
				got := live.FindTemporal(p, opts)
				want := static.FindTemporal(p, opts)
				if err := sameResult(got, want); err != nil {
					t.Logf("seed=%d step=%d (compactEvery=%d, evictBefore=%d): %v\n p=%v",
						seed, step, compactEvery, minTime, err, p)
					return false
				}
				np := collapseQuery(p)
				if err := sameResult(live.FindNonTemporal(np, opts), static.FindNonTemporal(np, opts)); err != nil {
					t.Logf("seed=%d step=%d: non-temporal: %v\n np=%+v", seed, step, err, np)
					return false
				}
				lq := []tgraph.Label{tgraph.Label(rng.Intn(numLabels)), tgraph.Label(rng.Intn(numLabels))}
				lopts := Options{Window: int64(2 + rng.Intn(10)), Limit: opts.Limit}
				if err := sameResult(live.FindLabelSet(lq, lopts), static.FindLabelSet(lq, lopts)); err != nil {
					t.Logf("seed=%d step=%d: label-set: %v\n lq=%v", seed, step, err, lq)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLiveAppendOutOfOrder(t *testing.T) {
	l := NewLive(LiveOptions{})
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a, b, 5); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if err := l.Append(a, b, 4); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
	if err := l.Append(a, b, 6); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a, tgraph.NodeID(99), 7); err == nil {
		t.Fatal("unknown node accepted")
	}
	if n := l.NumEdges(); n != 2 {
		t.Fatalf("NumEdges = %d, want 2", n)
	}
}

func TestLiveEvictAndCounts(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 4})
	a := l.AddNode(0)
	b := l.AddNode(1)
	for i := 0; i < 10; i++ {
		if err := l.Append(a, b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.NumEdges(); n != 10 {
		t.Fatalf("NumEdges = %d, want 10", n)
	}
	l.EvictBefore(6)
	if n := l.NumEdges(); n != 4 {
		t.Fatalf("NumEdges after evict = %d, want 4", n)
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != 4 {
		t.Fatalf("matches after evict = %v, want 4", res.Matches)
	}
	for _, m := range res.Matches {
		if m.Start < 6 {
			t.Fatalf("evicted edge matched: %v", m)
		}
	}
	// Compaction after eviction reclaims and must not change answers.
	l.Compact()
	if n := l.NumEdges(); n != 4 {
		t.Fatalf("NumEdges after compact = %d, want 4", n)
	}
	res2 := l.FindTemporal(p, Options{})
	if err := sameResult(res, res2); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSnapshotConsistent(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 3})
	a := l.AddNode(0)
	b := l.AddNode(1)
	c := l.AddNode(2)
	for i, pair := range [][2]tgraph.NodeID{{a, b}, {b, c}, {a, b}, {b, c}, {a, c}} {
		if err := l.Append(pair[0], pair[1], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if err := sameResult(l.FindTemporal(p, Options{}), snap.FindTemporal(p, Options{})); err != nil {
		t.Fatal(err)
	}
}

// TestLiveAppendDuringPausedStream is the acceptance test for lock-free
// reads: a consumer pauses mid-iteration holding a live StreamTemporal
// open, and Append / EvictBefore / Compact must all complete anyway
// (impossible with the PR 2 read-lock design, where the paused consumer
// held the engine's RLock and Append deadlocked until it resumed). It also
// pins generation semantics: the paused stream still sees exactly the edge
// set current at its start, no matter what the writers did meanwhile.
func TestLiveAppendDuringPausedStream(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 8})
	a := l.AddNode(0)
	b := l.AddNode(1)
	const pre = 20
	for i := 1; i <= pre; i++ {
		if err := l.Append(a, b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	firstMatch := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan []Match, 1)
	go func() {
		var got []Match
		first := true
		for m, serr := range l.StreamTemporal(context.Background(), p, Options{}) {
			if serr != nil {
				t.Error(serr)
				break
			}
			got = append(got, m)
			if first {
				first = false
				close(firstMatch)
				<-resume // paused mid-iteration, stream held open
			}
		}
		done <- got
	}()
	<-firstMatch
	appended := make(chan error, 1)
	go func() { appended <- l.Append(a, b, 1000) }()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked by a paused StreamTemporal consumer")
	}
	// Eviction and compaction must go through as well.
	l.EvictBefore(10)
	l.Compact()
	if n := l.NumEdges(); n != pre-9+1 {
		t.Fatalf("NumEdges after concurrent evict+append = %d, want %d", n, pre-9+1)
	}
	close(resume)
	got := <-done
	// The stream's generation predates the append and the eviction: it must
	// see exactly the 20 pre-existing matches.
	if len(got) != pre {
		t.Fatalf("paused stream saw %d matches, want its generation's %d", len(got), pre)
	}
	for i, m := range got {
		if m.Start != int64(i+1) || m.End != int64(i+1) {
			t.Fatalf("match %d = %v, want [%d,%d]", i, m, i+1, i+1)
		}
	}
	// A query started after the mutations sees them.
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) == 0 || res.Matches[len(res.Matches)-1].End != 1000 {
		t.Fatalf("post-mutation query missed the new edge: %v", res.Matches)
	}
	for _, m := range res.Matches {
		if m.Start < 10 {
			t.Fatalf("post-eviction query returned evicted match %v", m)
		}
	}
}

// TestLiveStressPrefixConsistency is the race-mode stress test: one writer
// appends a->b edges at consecutive timestamps (with periodic evictions and
// compactions through tiny CompactEvery) while N readers continuously run
// all three query families. Every stream must observe a prefix-consistent
// edge set: with all edges on one pair at times 1,2,3,..., any consistent
// generation yields matches at consecutive timestamps — a gap or
// duplicate would mean a torn read.
func TestLiveStressPrefixConsistency(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 16})
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 1); err != nil {
		t.Fatal(err)
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1}, E: []gspan.Edge{{Src: 0, Dst: 1}}}
	const appends = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		for i := 2; i <= appends; i++ {
			if err := l.Append(a, b, int64(i)); err != nil {
				t.Error(err)
				return
			}
			if i%97 == 0 {
				l.EvictBefore(int64(i - 50))
			}
			if i%131 == 0 {
				l.Compact()
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0: // temporal stream
					last := int64(-1)
					for m, serr := range l.StreamTemporal(context.Background(), p, Options{}) {
						if serr != nil {
							t.Error(serr)
							return
						}
						if m.Start != m.End {
							t.Errorf("single-edge match with span: %v", m)
							return
						}
						if last >= 0 && m.Start != last+1 {
							t.Errorf("non-contiguous stream: %d after %d (torn read)", m.Start, last)
							return
						}
						last = m.Start
					}
				case 1: // non-temporal
					res := l.FindNonTemporal(np, Options{})
					for i := 1; i < len(res.Matches); i++ {
						if res.Matches[i].Start != res.Matches[i-1].Start+1 {
							t.Errorf("non-contiguous non-temporal result: %v then %v",
								res.Matches[i-1], res.Matches[i])
							return
						}
					}
				default: // label-set
					res := l.FindLabelSet([]tgraph.Label{0, 1}, Options{Window: 8})
					for _, m := range res.Matches {
						if m.End-m.Start+1 > 8 {
							t.Errorf("label-set window exceeded: %v", m)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestLiveConcurrentAppendQuery exercises appenders racing streaming
// queriers; run under -race in CI. Results are not asserted beyond "no
// panic, valid intervals": the interleaving is nondeterministic by design.
func TestLiveConcurrentAppendQuery(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 16})
	a := l.AddNode(0)
	b := l.AddNode(1)
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := l.Append(a, b, int64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for m, err := range l.StreamTemporal(context.Background(), p, Options{}) {
				if err != nil {
					t.Error(err)
					return
				}
				if m.Start != m.End {
					t.Errorf("single-edge match with span: %v", m)
					return
				}
			}
		}
	}()
	wg.Wait()
}
