package search

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestLiveStatsJSONRoundTrip pins the stable JSON representation of
// LiveStats shared by tgminerd's /v1/statsz and examples/monitor: every
// field carries an explicit lowerCamel tag, the wire names are frozen
// (scrapers depend on them — renaming one must break this test), and
// marshal/unmarshal round-trips exactly.
func TestLiveStatsJSONRoundTrip(t *testing.T) {
	in := LiveStats{
		Nodes: 1, BaseEdges: 2, TailLen: 3, Floor: 4, LiveEdges: 5,
		FirstTime: 6, LastTime: 7, Compactions: 8, Merges: 9,
		LastCompactTail: 10, RetainedBytes: 11, ActiveReaders: 12,
		OldestReaderLag: 13,
	}
	wantNames := []string{
		"nodes", "baseEdges", "tailLen", "floor", "liveEdges",
		"firstTime", "lastTime", "compactions", "merges",
		"lastCompactTail", "retainedBytes", "activeReaders",
		"oldestReaderLag",
	}

	// Every field must be populated above and explicitly tagged, so adding
	// a field without a tag — or without extending this test — fails here.
	rv := reflect.ValueOf(in)
	if rv.NumField() != len(wantNames) {
		t.Fatalf("LiveStats has %d fields but the test pins %d wire names — update both", rv.NumField(), len(wantNames))
	}
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Type().Field(i)
		if rv.Field(i).IsZero() {
			t.Errorf("field %s not exercised — assign it a distinct value above", f.Name)
		}
		if tag := f.Tag.Get("json"); tag == "" || tag == "-" {
			t.Errorf("field %s lacks a stable json tag", f.Name)
		}
	}

	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var names map[string]any
	if err := json.Unmarshal(b, &names); err != nil {
		t.Fatal(err)
	}
	for _, n := range wantNames {
		if _, ok := names[n]; !ok {
			t.Errorf("wire name %q missing from %s", n, b)
		}
		delete(names, n)
	}
	for n := range names {
		t.Errorf("unexpected wire name %q in %s", n, b)
	}

	var out LiveStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the value:\n in %+v\nout %+v", in, out)
	}
}
