package search

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

// collectAll drains a stream into (matches, truncated, err) without sorting.
func collectAll(t *testing.T, seq func(func(Match, error) bool)) ([]Match, bool, error) {
	t.Helper()
	var out []Match
	var truncated bool
	var err error
	for m, serr := range seq {
		switch {
		case serr == nil:
			out = append(out, m)
		case errors.Is(serr, ErrTruncated):
			truncated = true
		default:
			err = serr
		}
	}
	return out, truncated, err
}

// TestStreamMatchesFindTemporal is the acceptance property for the v2
// streaming API: collecting Engine.StreamTemporal and sorting must be
// byte-identical to FindTemporal, across random hosts, patterns, windows,
// and limits.
func TestStreamMatchesFindTemporal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomHost(rng, 4+rng.Intn(4), 8+rng.Intn(8), 3)
		p := randomQuery(rng, 3, 3)
		opts := Options{}
		if rng.Intn(2) == 0 {
			opts.Window = int64(3 + rng.Intn(12))
		}
		if rng.Intn(3) == 0 {
			opts.Limit = 1 + rng.Intn(4)
		}
		eng := NewEngine(g)
		want := eng.FindTemporal(p, opts)
		got, truncated, err := collectAll(t, eng.StreamTemporal(context.Background(), p, opts))
		if err != nil {
			t.Logf("seed=%d: stream error %v", seed, err)
			return false
		}
		sortMatches(got)
		if len(got) != len(want.Matches) {
			t.Logf("seed=%d: stream %d matches, FindTemporal %d", seed, len(got), len(want.Matches))
			return false
		}
		for i := range got {
			if got[i] != want.Matches[i] {
				t.Logf("seed=%d: match %d stream %v != find %v", seed, i, got[i], want.Matches[i])
				return false
			}
		}
		if truncated != want.Truncated {
			t.Logf("seed=%d: truncated stream %v != find %v", seed, truncated, want.Truncated)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStreamDiscoveryOrder asserts the documented ordering: yielded Start
// values are non-decreasing (roots are visited in position = time order).
func TestStreamDiscoveryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomHost(rng, 5, 14, 2)
	p := randomQuery(rng, 2, 2)
	var last int64 = -1 << 62
	for m, err := range NewEngine(g).StreamTemporal(context.Background(), p, Options{}) {
		if err != nil {
			t.Fatal(err)
		}
		if m.Start < last {
			t.Fatalf("Start went backwards: %d after %d", m.Start, last)
		}
		last = m.Start
	}
}

// TestStreamEarlyBreak breaks out of the range after the first match; the
// engine's pooled scratch must be released so later queries on the same
// engine still work (corruption would surface here and under -race).
func TestStreamEarlyBreak(t *testing.T) {
	g := hostGraph(t, []tgraph.Label{0, 1, 2},
		[][2]tgraph.NodeID{{0, 1}, {1, 2}, {0, 1}, {1, 2}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	for i := 0; i < 10; i++ {
		n := 0
		for _, err := range e.StreamTemporal(context.Background(), p, Options{}) {
			if err != nil {
				t.Fatal(err)
			}
			n++
			if n == 1 {
				break
			}
		}
		if n != 1 {
			t.Fatalf("broke after %d matches", n)
		}
		// A full query after the break must still be correct.
		if res := e.FindTemporal(p, Options{}); len(res.Matches) != 3 {
			t.Fatalf("post-break query returned %v", res.Matches)
		}
	}
}

// TestStreamContextCancelled verifies a dead context surfaces as the final
// stream element and that FindTemporalContext propagates it.
func TestStreamContextCancelled(t *testing.T) {
	g := hostGraph(t, []tgraph.Label{0, 1},
		[][2]tgraph.NodeID{{0, 1}, {0, 1}, {0, 1}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	matches, truncated, err := collectAll(t, e.StreamTemporal(ctx, p, Options{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if truncated {
		t.Fatal("cancelled stream reported truncation")
	}
	if len(matches) != 0 {
		t.Fatalf("pre-cancelled context yielded %d matches", len(matches))
	}
	res, err := e.FindTemporalContext(ctx, p, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FindTemporalContext err = %v", err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("FindTemporalContext partial = %v", res.Matches)
	}
}

// TestStreamCancelMidway cancels the context from inside the consumer loop;
// the stream must terminate with ctx.Err() and FindTemporalContext must
// return the partial prefix.
func TestStreamCancelMidway(t *testing.T) {
	labels := []tgraph.Label{0, 1}
	var edges [][2]tgraph.NodeID
	for i := 0; i < 50; i++ {
		edges = append(edges, [2]tgraph.NodeID{0, 1})
	}
	g := hostGraph(t, labels, edges)
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []Match
	var finalErr error
	for m, err := range e.StreamTemporal(ctx, p, Options{}) {
		if err != nil {
			finalErr = err
			continue
		}
		got = append(got, m)
		if len(got) == 3 {
			cancel()
		}
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final err = %v, want context.Canceled", finalErr)
	}
	if len(got) < 3 || len(got) >= 50 {
		t.Fatalf("got %d matches, want partial prefix >= 3", len(got))
	}
}

// TestStreamLimitTerminal asserts the ErrTruncated terminal element and that
// exactly Limit matches precede it.
func TestStreamLimitTerminal(t *testing.T) {
	labels := []tgraph.Label{0, 1}
	var edges [][2]tgraph.NodeID
	for i := 0; i < 20; i++ {
		edges = append(edges, [2]tgraph.NodeID{0, 1})
	}
	g := hostGraph(t, labels, edges)
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	matches, truncated, err := collectAll(t, e.StreamTemporal(context.Background(), p, Options{Limit: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 || !truncated {
		t.Fatalf("got %d matches truncated=%v, want 5/true", len(matches), truncated)
	}
}

// TestStreamExactLimitNotTruncated pins the rootDedup dup-check-first fix:
// when exactly Limit distinct intervals exist, duplicate candidates
// arriving after the limit-th distinct match must not flag truncation.
//
// Host: a->d@0, a->b1@1, a->b2@2, a->c@3. Pattern A->D, A->B, A->C has one
// distinct interval (0,3) reached through two middle bindings (b1 and b2),
// so with Limit=1 the duplicate (0,3) arrives after the cap is full.
func TestStreamExactLimitNotTruncated(t *testing.T) {
	// Labels: A=0, D=1, B=2, C=3. Nodes: a, d, b1, b2, c.
	g := hostGraph(t, []tgraph.Label{0, 1, 2, 2, 3},
		[][2]tgraph.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	e := NewEngine(g)
	p := pat(t, []tgraph.Label{0, 1, 2, 3},
		[]tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}})
	// Sanity: unlimited search sees exactly one distinct interval.
	res := e.FindTemporal(p, Options{})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{0, 3}) || res.Truncated {
		t.Fatalf("fixture: %+v, want exactly [{0 3}] untruncated", res)
	}
	res = e.FindTemporal(p, Options{Limit: 1})
	if len(res.Matches) != 1 || res.Truncated {
		t.Fatalf("limit==distinct count: %+v, want 1 match with Truncated=false", res)
	}
	matches, truncated, err := collectAll(t, e.StreamTemporal(context.Background(), p, Options{Limit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || truncated {
		t.Fatalf("stream at exact limit: %d matches truncated=%v, want 1/false", len(matches), truncated)
	}
	// A genuinely missed distinct interval still reports truncation: a
	// second C edge adds the distinct interval (0,4).
	g2 := hostGraph(t, []tgraph.Label{0, 1, 2, 2, 3},
		[][2]tgraph.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 4}})
	res2 := NewEngine(g2).FindTemporal(p, Options{Limit: 1})
	if len(res2.Matches) != 1 || !res2.Truncated {
		t.Fatalf("distinct match beyond cap: %+v, want Truncated=true", res2)
	}
}
