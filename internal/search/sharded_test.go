package search

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

func TestNodeShardRangeAndSpread(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		counts := make([]int, shards)
		for v := tgraph.NodeID(0); v < 1024; v++ {
			s := tgraph.NodeShard(v, shards)
			if s < 0 || s >= shards {
				t.Fatalf("NodeShard(%d, %d) = %d out of range", v, shards, s)
			}
			counts[s]++
			if again := tgraph.NodeShard(v, shards); again != s {
				t.Fatalf("NodeShard not deterministic: %d vs %d", s, again)
			}
		}
		// The mixer must not stripe dense IDs onto one shard: every shard
		// should own a reasonable share of 1024 consecutive IDs.
		for s, c := range counts {
			if c < 1024/shards/2 {
				t.Fatalf("shard %d/%d owns only %d of 1024 dense IDs", s, shards, c)
			}
		}
	}
}

// TestShardedMatchesLiveDifferential is the tentpole's acceptance
// property: after any interleaving of appends, node additions, evictions,
// and compactions (automatic ones included, via tiny CompactEvery),
// ShardedLive(n) answers every query of all three families identically to
// a single Live engine and to a static Engine over the equivalent edge
// set — including Truncated bits under small Limits, which exercises the
// planner's cross-shard merge order and exact-truncation accounting.
func TestShardedMatchesLiveDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		compactEvery := []int{-1, 2, 3, 7}[rng.Intn(4)]
		shards := []int{2, 3, 4}[rng.Intn(3)]
		sharded := NewSharded(LiveOptions{CompactEvery: compactEvery, Shards: shards})
		single := NewLive(LiveOptions{CompactEvery: compactEvery})
		numLabels := 3
		var labels []tgraph.Label
		var edges []tgraph.Edge
		apply := func(op liveOp) {
			replayOp(t, sharded, op)
			replayOp(t, single, op)
		}
		for i := 0; i < 4; i++ {
			lab := tgraph.Label(rng.Intn(numLabels))
			labels = append(labels, lab)
			apply(liveOp{kind: 'n', label: lab})
		}
		tm := int64(0)
		minTime := int64(0)
		for step := 0; step < 40; step++ {
			switch {
			case step%17 == 13:
				lab := tgraph.Label(rng.Intn(numLabels))
				labels = append(labels, lab)
				apply(liveOp{kind: 'n', label: lab})
			case step%11 == 7:
				if cut := tm - int64(rng.Intn(20)); cut > minTime {
					minTime = cut
				}
				apply(liveOp{kind: 'v', t: minTime})
			case step%13 == 5:
				apply(liveOp{kind: 'c'})
			default:
				src := tgraph.NodeID(rng.Intn(len(labels)))
				dst := tgraph.NodeID(rng.Intn(len(labels)))
				tm += int64(1 + rng.Intn(3))
				apply(liveOp{kind: 'e', src: src, dst: dst, t: tm})
				edges = append(edges, tgraph.Edge{Src: src, Dst: dst, Time: tm})
			}
			if step%9 != 0 {
				continue
			}
			if sharded.NumNodes() != single.NumNodes() || sharded.NumEdges() != single.NumEdges() {
				t.Logf("seed=%d step=%d: sharded %d/%d nodes/edges, single %d/%d",
					seed, step, sharded.NumNodes(), sharded.NumEdges(), single.NumNodes(), single.NumEdges())
				return false
			}
			static := staticEquivalent(t, labels, edges, minTime)
			if err := checkAllFamilies(t, rand.New(rand.NewSource(seed^int64(step))), sharded, static, numLabels); err != nil {
				t.Logf("seed=%d step=%d (shards=%d compactEvery=%d): sharded vs static: %v",
					seed, step, shards, compactEvery, err)
				return false
			}
			if err := checkAllFamilies(t, rand.New(rand.NewSource(seed^int64(step))), single, static, numLabels); err != nil {
				t.Logf("seed=%d step=%d: single vs static: %v", seed, step, err)
				return false
			}
			// Snapshot must materialize the same cut.
			p := randomQuery(rand.New(rand.NewSource(seed+int64(step))), 3, numLabels)
			if err := sameResult(sharded.Snapshot().FindTemporal(p, Options{}), static.FindTemporal(p, Options{})); err != nil {
				t.Logf("seed=%d step=%d: snapshot: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestShardedAdversarialInterleavings mirrors TestLiveAdversarialInterleavings
// for the sharded engine: the same deterministic mutation scripts around
// compaction boundaries, replayed into ShardedLive at several shard counts,
// checked against the static oracle after every op.
func TestShardedAdversarialInterleavings(t *testing.T) {
	for _, sc := range adversarialScripts() {
		t.Run(sc.name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 3} {
				l := NewSharded(LiveOptions{CompactEvery: -1, Shards: shards})
				var labels []tgraph.Label
				var edges []tgraph.Edge
				minTime := int64(0)
				for i, op := range sc.ops {
					replayOp(t, l, op)
					switch op.kind {
					case 'n':
						labels = append(labels, op.label)
					case 'e':
						edges = append(edges, tgraph.Edge{Src: op.src, Dst: op.dst, Time: op.t})
					case 'v':
						if op.t > minTime {
							minTime = op.t
						}
					}
					static := staticEquivalent(t, labels, edges, minTime)
					if l.NumNodes() != static.g.NumNodes() || l.NumEdges() != static.g.NumEdges() {
						t.Fatalf("op %d (shards=%d): sharded %d nodes/%d edges, static %d/%d",
							i, shards, l.NumNodes(), l.NumEdges(), static.g.NumNodes(), static.g.NumEdges())
					}
					rng := rand.New(rand.NewSource(int64(i) + 1))
					if err := checkAllFamilies(t, rng, l, static, 2); err != nil {
						t.Fatalf("op %d (shards=%d): %v", i, shards, err)
					}
				}
			}
		})
	}
}

// shardedWriterNodes picks one source node per shard (plus one shared
// destination), adding nodes until every shard owns exactly one source.
func shardedWriterNodes(t testing.TB, l *ShardedLive, shards int) (srcs []tgraph.NodeID, dst tgraph.NodeID) {
	t.Helper()
	srcs = make([]tgraph.NodeID, shards)
	owned := make([]bool, shards)
	found := 0
	for guard := 0; found < shards; guard++ {
		if guard > 1024 {
			t.Fatal("could not find one source node per shard")
		}
		v := l.AddNode(0)
		s := tgraph.NodeShard(v, shards)
		if !owned[s] {
			owned[s] = true
			srcs[s] = v
			found++
		}
	}
	return srcs, l.AddNode(1)
}

// TestShardedLiveStress is the race-mode multi-writer stress test: one
// writer per shard appends edges from its own source node (timestamps
// w, w+K, w+2K, ... so each shard's stream is strictly increasing and the
// writer owning a timestamp is its residue mod K) while readers
// continuously run all three query families. Prefix consistency per shard:
// within any query snapshot, each residue class's match times must form a
// contiguous step-K run — a gap would mean a torn read inside one shard's
// stream — and the merged temporal stream must be globally ascending.
func TestShardedLiveStress(t *testing.T) {
	const shards = 4
	const perWriter = 300
	l := NewSharded(LiveOptions{CompactEvery: 16, Shards: shards})
	srcs, dst := shardedWriterNodes(t, l, shards)
	// Seed one edge per shard so every reader sees matches immediately.
	for w, src := range srcs {
		if err := l.Append(src, dst, int64(w)+1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	np := &gspan.Pattern{Labels: []tgraph.Label{0, 1}, E: []gspan.Edge{{Src: 0, Dst: 1}}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		writers.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writers.Done()
			src := srcs[w]
			for i := 1; i <= perWriter; i++ {
				tm := int64(w) + 1 + int64(i)*shards
				if err := l.Append(src, dst, tm); err != nil {
					t.Error(err)
					return
				}
				if w == 0 && i%97 == 0 {
					l.EvictBefore(tm - 64)
				}
				if w == 1 && i%131 == 0 {
					l.Compact()
				}
			}
		}(w)
	}
	go func() { writers.Wait(); close(stop) }()
	checkResidues := func(times []int64) {
		lastByRes := map[int64]int64{}
		for _, tm := range times {
			res := tm % shards
			if last, ok := lastByRes[res]; ok && tm != last+shards {
				t.Errorf("residue %d: non-contiguous times %d then %d (torn shard prefix)", res, last, tm)
				return
			}
			lastByRes[res] = tm
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0: // merged temporal stream: globally ascending + per-shard contiguous
					var times []int64
					last := int64(-1)
					for m, serr := range l.StreamTemporal(context.Background(), p, Options{}) {
						if serr != nil {
							t.Error(serr)
							return
						}
						if m.Start != m.End {
							t.Errorf("single-edge match with span: %v", m)
							return
						}
						if m.Start <= last {
							t.Errorf("merged stream not ascending: %d after %d", m.Start, last)
							return
						}
						last = m.Start
						times = append(times, m.Start)
					}
					checkResidues(times)
				case 1: // non-temporal
					res := l.FindNonTemporal(np, Options{})
					times := make([]int64, 0, len(res.Matches))
					for _, m := range res.Matches {
						times = append(times, m.Start)
					}
					checkResidues(times)
				default: // label-set
					res := l.FindLabelSet([]tgraph.Label{0, 1}, Options{Window: 8})
					for _, m := range res.Matches {
						if m.End-m.Start+1 > 8 {
							t.Errorf("label-set window exceeded: %v", m)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestShardedStatsAggregation pins the facade-visible stats surface:
// per-shard stats sum into the aggregate, the node table is global, and
// the reader-accounting fields surface a paused cross-shard stream.
func TestShardedStatsAggregation(t *testing.T) {
	const shards = 4
	l := NewSharded(LiveOptions{CompactEvery: 8, Shards: shards})
	srcs, dst := shardedWriterNodes(t, l, shards)
	tm := int64(0)
	for i := 0; i < 64; i++ {
		tm++
		if err := l.Append(srcs[i%shards], dst, tm); err != nil {
			t.Fatal(err)
		}
	}
	agg := l.Stats()
	per := l.ShardStats()
	if len(per) != shards {
		t.Fatalf("ShardStats returned %d entries, want %d", len(per), shards)
	}
	sumLive, sumBase, sumTail := 0, 0, 0
	for _, s := range per {
		sumLive += s.LiveEdges
		sumBase += s.BaseEdges
		sumTail += s.TailLen
		if s.Nodes != l.NumNodes() {
			t.Fatalf("shard node table %d != global %d (identity contract)", s.Nodes, l.NumNodes())
		}
	}
	if agg.LiveEdges != 64 || sumLive != 64 {
		t.Fatalf("aggregate LiveEdges = %d (sum %d), want 64", agg.LiveEdges, sumLive)
	}
	if agg.BaseEdges != sumBase || agg.TailLen != sumTail {
		t.Fatalf("aggregate base/tail %d/%d != sums %d/%d", agg.BaseEdges, agg.TailLen, sumBase, sumTail)
	}
	if agg.LastTime != tm {
		t.Fatalf("aggregate LastTime = %d, want %d", agg.LastTime, tm)
	}
	if agg.RetainedBytes <= 0 {
		t.Fatal("aggregate RetainedBytes not reported")
	}

	// A paused stream pins its per-shard cut: ActiveReaders and, once more
	// edges arrive, OldestReaderLag must surface it.
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	paused := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		first := true
		for _, serr := range l.StreamTemporal(context.Background(), p, Options{}) {
			if serr != nil {
				t.Error(serr)
				return
			}
			if first {
				first = false
				close(paused)
				<-resume
			}
		}
	}()
	<-paused
	for i := 0; i < 2*shards; i++ {
		tm++
		if err := l.Append(srcs[i%shards], dst, tm); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		agg = l.Stats()
		if agg.ActiveReaders >= 1 && agg.OldestReaderLag >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("paused stream not visible in stats: %+v", agg)
		}
		time.Sleep(time.Millisecond)
	}
	close(resume)
	<-done
	if s := l.Stats(); s.ActiveReaders != 0 {
		t.Fatalf("finished stream still counted: %+v", s)
	}
}

// TestShardedSingleShardDelegates pins that a one-shard engine behaves as
// the plain Live engine (the planner fast path) and that shard counts
// resolve (0 -> GOMAXPROCS).
func TestShardedSingleShardDelegates(t *testing.T) {
	l := NewSharded(LiveOptions{Shards: 1})
	if l.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", l.Shards())
	}
	if NewSharded(LiveOptions{}).Shards() < 1 {
		t.Fatal("default shard count must be >= 1")
	}
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a, tgraph.NodeID(99), 2); err == nil {
		t.Fatal("unknown node accepted")
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 1}) {
		t.Fatalf("unexpected matches %v", res.Matches)
	}
}

// TestShardedAppendDuplicateTimestamp pins the best-effort global
// uniqueness guard: a sequential caller reusing a tick gets an error even
// when the two edges route to different shards (the single-engine engine
// would have errored too), while out-of-order-but-unique cross-shard
// timestamps — the legitimate independent-writer pattern — stay accepted.
func TestShardedAppendDuplicateTimestamp(t *testing.T) {
	const shards = 4
	l := NewSharded(LiveOptions{Shards: shards})
	srcs, dst := shardedWriterNodes(t, l, shards)
	if err := l.Append(srcs[0], dst, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(srcs[1], dst, 5); err == nil {
		t.Fatal("duplicate timestamp on a foreign shard accepted")
	}
	// Below the global maximum but unique and per-shard increasing: legal.
	if err := l.Append(srcs[1], dst, 3); err != nil {
		t.Fatalf("unique out-of-arrival-order timestamp rejected: %v", err)
	}
	if err := l.Append(srcs[1], dst, 3); err == nil {
		t.Fatal("per-shard duplicate accepted")
	}
	if n := l.NumEdges(); n != 2 {
		t.Fatalf("NumEdges = %d, want 2", n)
	}
	// t=0 must be accepted as a first tick (the guard's empty sentinel is
	// -1, not 0).
	l0 := NewSharded(LiveOptions{Shards: shards})
	s0, d0 := shardedWriterNodes(t, l0, shards)
	if err := l0.Append(s0[0], d0, 0); err != nil {
		t.Fatalf("t=0 first append rejected: %v", err)
	}
}

// TestShardedDisconnectedPatternWindow pins the defensive pair-index
// branch of the cross-shard temporal matcher: a non-T-connected pattern
// (legal per tgraph.NewPattern) reaches it with both endpoints unmapped,
// and the Window deadline must prune there exactly as the single-host
// twins do.
func TestShardedDisconnectedPatternWindow(t *testing.T) {
	// Pattern: A->B then C->D, disconnected.
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2, 3},
		[]tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	build := func(l liveLike) {
		a := l.AddNode(0)
		b := l.AddNode(1)
		c := l.AddNode(2)
		d := l.AddNode(3)
		if err := l.Append(a, b, 1); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(c, d, 100); err != nil { // far outside any small window
			t.Fatal(err)
		}
	}
	single := NewLive(LiveOptions{})
	build(single)
	for _, shards := range []int{2, 3, 4} {
		sharded := NewSharded(LiveOptions{Shards: shards})
		build(sharded)
		for _, window := range []int64{0, 5} {
			opts := Options{Window: window}
			if err := sameResult(sharded.FindTemporal(p, opts), single.FindTemporal(p, opts)); err != nil {
				t.Fatalf("shards=%d window=%d: %v", shards, window, err)
			}
		}
	}
}

// TestShardedAppendDuringPausedStream mirrors the single-engine lock-free
// acceptance test: a consumer pauses mid-iteration holding a cross-shard
// stream open, and appends on every shard must complete anyway; the paused
// stream still sees exactly its pinned cut.
func TestShardedAppendDuringPausedStream(t *testing.T) {
	const shards = 3
	l := NewSharded(LiveOptions{CompactEvery: 8, Shards: shards})
	srcs, dst := shardedWriterNodes(t, l, shards)
	tm := int64(0)
	const pre = 12
	for i := 0; i < pre; i++ {
		tm++
		if err := l.Append(srcs[i%shards], dst, tm); err != nil {
			t.Fatal(err)
		}
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	firstMatch := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan []Match, 1)
	go func() {
		var got []Match
		first := true
		for m, serr := range l.StreamTemporal(context.Background(), p, Options{}) {
			if serr != nil {
				t.Error(serr)
				break
			}
			got = append(got, m)
			if first {
				first = false
				close(firstMatch)
				<-resume
			}
		}
		done <- got
	}()
	<-firstMatch
	appended := make(chan error, 1)
	go func() {
		for i := 0; i < shards; i++ {
			tm++
			if err := l.Append(srcs[i], dst, tm); err != nil {
				appended <- err
				return
			}
		}
		appended <- nil
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked by a paused cross-shard stream consumer")
	}
	close(resume)
	got := <-done
	if len(got) != pre {
		t.Fatalf("paused stream saw %d matches, want its cut's %d", len(got), pre)
	}
	for i, m := range got {
		if m.Start != int64(i+1) {
			t.Fatalf("match %d = %v, want start %d (merged ascending order)", i, m, i+1)
		}
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != pre+shards {
		t.Fatalf("post-append query saw %d matches, want %d", len(res.Matches), pre+shards)
	}
}
