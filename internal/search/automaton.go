package search

// This file compiles a temporal pattern plus its optional TemporalConstraints
// into the step program every temporal matcher executes. The three engines
// (static tState in stream.go, live liveState in live.go, cross-shard
// shardedState in sharded.go) are drivers of the same compiled program: each
// step carries the pattern edge, its endpoint labels, a guard interval
// derived from the hop's gap/window constraints, and repetition bounds. An
// unconstrained pattern compiles to steps with minRep == maxRep == 1 and
// open guards, and the drivers then reproduce the historical fixed-sequence
// walk exactly — same candidate order, same emission order, same Truncated
// accounting (pinned by TestZeroConstraintsIdentical).
//
// Guards are monotone in edge time (Aghasadeghi, Van den Bussche &
// Stoyanovich 2022: timed-automaton clock guards over a time-ordered edge
// stream), and global position order equals time order in every engine, so
// the drivers turn them into index pruning rather than post-filtering: the
// lower bound skips ahead by binary search on edge time, and the upper bound
// early-exits the candidate scan (BenchmarkConstrainedTemporal measures the
// win over match-then-filter).

import (
	"fmt"

	"tgminer/internal/tgraph"
)

// HopConstraint constrains how pattern edge i ("hop i") may be matched in
// time, relative to the previous matched edge occurrence and to the match
// start (the root edge's timestamp). The zero value is unconstrained: the
// hop matches exactly once, anywhere after the previous hop.
//
// All bounds are inclusive and in the host graph's time units:
//
//   - MinGap/MaxGap bound the gap to the PREVIOUS matched occurrence:
//     prev + MinGap <= t <= prev + MaxGap (0 = unbounded). The paper's
//     cybersecurity rule "B follows A within 30s" is MaxGap: 30 on B's hop.
//   - After/Within bound the hop relative to the MATCH START:
//     start + After <= t <= start + Within (0 = unbounded). Options.Window
//     composes as a Within applied to every hop.
//   - Optional allows the hop to be skipped entirely (zero occurrences).
//   - MinRepeat/MaxRepeat allow bounded Kleene repetition: the hop may match
//     MinRepeat..MaxRepeat consecutive occurrences (each a distinct host
//     edge, later in time than the previous, re-binding the same pattern
//     endpoints — parallel edges in time order). 0 means "unset": an unset
//     MaxRepeat equals max(MinRepeat, 1), so MinRepeat: 3 alone means
//     exactly 3. Optional composes with MaxRepeat (0..MaxRepeat occurrences)
//     but contradicts MinRepeat > 0.
//
// Gap and start-window guards apply to every repeated occurrence of the hop
// (each occurrence's "previous" is the one before it). Hop 0 anchors the
// match: it must not be Optional and must have After == 0 (its first
// occurrence IS the match start); its other guards constrain repeats only.
type HopConstraint struct {
	MinGap    int64 `json:"minGap,omitempty"`
	MaxGap    int64 `json:"maxGap,omitempty"`
	After     int64 `json:"after,omitempty"`
	Within    int64 `json:"within,omitempty"`
	Optional  bool  `json:"optional,omitempty"`
	MinRepeat int   `json:"minRepeat,omitempty"`
	MaxRepeat int   `json:"maxRepeat,omitempty"`
}

// bounds resolves the hop's effective occurrence-count interval
// [minRep, maxRep] from the Optional/MinRepeat/MaxRepeat encoding.
func (h HopConstraint) bounds() (minRep, maxRep int) {
	minRep = 1
	if h.Optional {
		minRep = 0
	}
	if h.MinRepeat > 0 {
		minRep = h.MinRepeat
	}
	maxRep = h.MaxRepeat
	if maxRep == 0 {
		maxRep = minRep
		if maxRep < 1 {
			maxRep = 1
		}
	}
	return minRep, maxRep
}

// Constraints attaches per-hop temporal constraints to a pattern: Hops[i]
// constrains pattern edge i. A slice shorter than the pattern's edge count
// leaves the remaining hops unconstrained; nil Constraints (or an empty
// slice) is the fully unconstrained program, which matches exactly like the
// plain order-preserving search. See HopConstraint for the per-hop fields.
type Constraints struct {
	Hops []HopConstraint `json:"hops,omitempty"`
}

// Validate checks the constraint set against a pattern with numEdges edges,
// returning a descriptive error for the first violation. It is what the
// compile step enforces; servers can call it up front to reject a bad
// request before any search runs.
func (c *Constraints) Validate(numEdges int) error {
	if c == nil {
		return nil
	}
	if len(c.Hops) > numEdges {
		return fmt.Errorf("search: constraints name %d hops but the pattern has %d edges", len(c.Hops), numEdges)
	}
	for i, h := range c.Hops {
		if h.MinGap < 0 || h.MaxGap < 0 || h.After < 0 || h.Within < 0 || h.MinRepeat < 0 || h.MaxRepeat < 0 {
			return fmt.Errorf("search: hop %d has a negative constraint field", i)
		}
		if h.MaxGap > 0 && h.MinGap > h.MaxGap {
			return fmt.Errorf("search: hop %d minGap %d exceeds maxGap %d", i, h.MinGap, h.MaxGap)
		}
		if h.Within > 0 && h.After > h.Within {
			return fmt.Errorf("search: hop %d after %d exceeds within %d", i, h.After, h.Within)
		}
		if h.Optional && h.MinRepeat > 0 {
			return fmt.Errorf("search: hop %d is optional but requires minRepeat %d", i, h.MinRepeat)
		}
		minRep, maxRep := h.bounds()
		if h.MaxRepeat > 0 && maxRep < minRep {
			return fmt.Errorf("search: hop %d maxRepeat %d is below its minimum repetition %d", i, h.MaxRepeat, minRep)
		}
		if i == 0 {
			if h.Optional {
				return fmt.Errorf("search: hop 0 must not be optional (the first hop anchors the match start)")
			}
			if h.After > 0 {
				return fmt.Errorf("search: hop 0 must have after == 0 (its first occurrence is the match start)")
			}
		}
	}
	return nil
}

// step is one compiled program step: pattern edge i with its endpoint
// labels, guard bounds, and repetition interval. Zero guard fields mean
// unbounded, matching the HopConstraint encoding.
type step struct {
	pe             tgraph.PEdge
	srcLab, dstLab tgraph.Label
	minGap, maxGap int64
	after, within  int64
	minRep, maxRep int
}

// loTime returns the earliest admissible occurrence time for this step given
// the match start and the previous matched occurrence's time. Always at
// least last+1: the global strict time order is itself a guard.
func (s *step) loTime(start, last int64) int64 {
	lo := last + 1
	if s.minGap > 0 && last+s.minGap > lo {
		lo = last + s.minGap
	}
	if s.after > 0 && start+s.after > lo {
		lo = start + s.after
	}
	return lo
}

// hiTime returns the latest admissible occurrence time, or -1 for
// unbounded. window is Options.Window, folded in with its historical
// deadline semantics (last admissible time is start+window-1).
func (s *step) hiTime(start, last, window int64) int64 {
	hi := int64(-1)
	if window > 0 {
		hi = start + window - 1
	}
	if s.maxGap > 0 {
		if h := last + s.maxGap; hi < 0 || h < hi {
			hi = h
		}
	}
	if s.within > 0 {
		if h := start + s.within; hi < 0 || h < hi {
			hi = h
		}
	}
	return hi
}

// program is a compiled temporal query: the automaton the matchers drive.
// Immutable after compile and safe to share across the sharded planner's
// worker goroutines.
type program struct {
	steps []step
}

// maxOccurrences is the most host edges any single match can bind: the sum
// of the steps' repetition maxima. It bounds the driver recursion depth, so
// per-depth scratch (the sharded planner's cursor table) sizes by it.
func (p *program) maxOccurrences() int {
	n := 0
	for i := range p.steps {
		n += p.steps[i].maxRep
	}
	return n
}

// compileProgram compiles pattern + constraints into a step program,
// validating the constraints against the pattern. nil constraints compile to
// the unconstrained program (every step minRep == maxRep == 1, open guards).
func compileProgram(p *tgraph.Pattern, c *Constraints) (*program, error) {
	if err := c.Validate(p.NumEdges()); err != nil {
		return nil, err
	}
	steps := make([]step, p.NumEdges())
	for i := range steps {
		pe := p.EdgeAt(i)
		st := &steps[i]
		st.pe = pe
		st.srcLab = p.LabelOf(pe.Src)
		st.dstLab = p.LabelOf(pe.Dst)
		st.minRep, st.maxRep = 1, 1
		if c != nil && i < len(c.Hops) {
			h := c.Hops[i]
			st.minGap, st.maxGap = h.MinGap, h.MaxGap
			st.after, st.within = h.After, h.Within
			st.minRep, st.maxRep = h.bounds()
		}
	}
	return &program{steps: steps}, nil
}
