package search

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// liveOp is one mutation in a replayable live-engine script, so the same
// sequence can drive a merge-compacting engine, a rebuild-only engine, a
// sharded engine, and a static oracle.
type liveOp struct {
	kind  byte // 'n' AddNode, 'e' Append, 'v' EvictBefore, 'c' Compact
	label tgraph.Label
	src   tgraph.NodeID
	dst   tgraph.NodeID
	t     int64
}

// liveLike is the mutation-and-query surface shared by Live and
// ShardedLive, so the differential tests replay one script into both.
type liveLike interface {
	AddNode(tgraph.Label) tgraph.NodeID
	Append(src, dst tgraph.NodeID, t int64) error
	EvictBefore(int64)
	Compact()
	NumNodes() int
	NumEdges() int
	FindTemporal(*tgraph.Pattern, Options) Result
	FindNonTemporal(*gspan.Pattern, Options) Result
	FindLabelSet([]tgraph.Label, Options) Result
}

// replayOp applies one op to a live engine.
func replayOp(t *testing.T, l liveLike, op liveOp) {
	t.Helper()
	switch op.kind {
	case 'n':
		l.AddNode(op.label)
	case 'e':
		if err := l.Append(op.src, op.dst, op.t); err != nil {
			t.Fatalf("append %+v: %v", op, err)
		}
	case 'v':
		l.EvictBefore(op.t)
	case 'c':
		l.Compact()
	}
}

// checkAllFamilies compares a live engine against the static oracle over
// the same edge set, across all three query families.
func checkAllFamilies(t *testing.T, rng *rand.Rand, live liveLike, static *Engine, numLabels int) error {
	t.Helper()
	for q := 0; q < 3; q++ {
		p := randomQuery(rng, 3, numLabels)
		opts := Options{}
		if rng.Intn(2) == 0 {
			opts.Window = int64(2 + rng.Intn(10))
		}
		if rng.Intn(4) == 0 {
			opts.Limit = 1 + rng.Intn(3)
		}
		if err := sameResult(live.FindTemporal(p, opts), static.FindTemporal(p, opts)); err != nil {
			return err
		}
		// The same query under a random temporal-constraint set must stay
		// pinned equal too: the engines drive one compiled program.
		copts := opts
		copts.Constraints = randomConstraints(rng, p.NumEdges())
		if err := sameResult(live.FindTemporal(p, copts), static.FindTemporal(p, copts)); err != nil {
			return fmt.Errorf("constrained (%+v): %w", copts.Constraints, err)
		}
		np := collapseQuery(p)
		if err := sameResult(live.FindNonTemporal(np, opts), static.FindNonTemporal(np, opts)); err != nil {
			return err
		}
		lq := []tgraph.Label{tgraph.Label(rng.Intn(numLabels)), tgraph.Label(rng.Intn(numLabels))}
		lopts := Options{Window: int64(2 + rng.Intn(10)), Limit: opts.Limit}
		if err := sameResult(live.FindLabelSet(lq, lopts), static.FindLabelSet(lq, lopts)); err != nil {
			return err
		}
	}
	return nil
}

// TestLiveMergeMatchesRebuild is the tentpole's acceptance property: one
// operation sequence — appends, node additions, evictions, explicit and
// automatic compactions — replayed into a merge-compacting engine, a
// rebuild-only engine (disableMerge), and the static oracle must yield
// identical answers for every query of all three families at every
// checkpoint. This proves the incremental tail-merge equivalent to the
// rebuild it replaces, across eviction and AddNode interleavings.
func TestLiveMergeMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		compactEvery := []int{2, 3, 5, 8}[rng.Intn(4)]
		merging := NewLive(LiveOptions{CompactEvery: compactEvery})
		rebuilding := NewLive(LiveOptions{CompactEvery: compactEvery, disableMerge: true})
		numLabels := 3
		var labels []tgraph.Label
		var edges []tgraph.Edge
		var ops []liveOp
		apply := func(op liveOp) {
			ops = append(ops, op)
			replayOp(t, merging, op)
			replayOp(t, rebuilding, op)
		}
		for i := 0; i < 4; i++ {
			lab := tgraph.Label(rng.Intn(numLabels))
			labels = append(labels, lab)
			apply(liveOp{kind: 'n', label: lab})
		}
		tm := int64(0)
		minTime := int64(0)
		for step := 0; step < 48; step++ {
			switch {
			case step%19 == 11:
				lab := tgraph.Label(rng.Intn(numLabels))
				labels = append(labels, lab)
				apply(liveOp{kind: 'n', label: lab})
			case step%11 == 7:
				cut := tm - int64(rng.Intn(12))
				if rng.Intn(8) == 0 {
					cut = tm + 1 // adversarial: evict everything
				}
				if cut > minTime {
					minTime = cut
				}
				apply(liveOp{kind: 'v', t: minTime})
			case step%13 == 5:
				apply(liveOp{kind: 'c'})
				if rng.Intn(2) == 0 {
					apply(liveOp{kind: 'c'}) // adversarial: compact twice
				}
			default:
				src := tgraph.NodeID(rng.Intn(len(labels)))
				dst := tgraph.NodeID(rng.Intn(len(labels)))
				tm += int64(1 + rng.Intn(3))
				apply(liveOp{kind: 'e', src: src, dst: dst, t: tm})
				edges = append(edges, tgraph.Edge{Src: src, Dst: dst, Time: tm})
			}
			if step%7 != 0 {
				continue
			}
			if merging.NumNodes() != rebuilding.NumNodes() || merging.NumEdges() != rebuilding.NumEdges() {
				t.Logf("seed=%d step=%d: merged %d/%d nodes/edges, rebuilt %d/%d",
					seed, step, merging.NumNodes(), merging.NumEdges(), rebuilding.NumNodes(), rebuilding.NumEdges())
				return false
			}
			static := staticEquivalent(t, labels, edges, minTime)
			if err := checkAllFamilies(t, rand.New(rand.NewSource(seed^int64(step))), merging, static, numLabels); err != nil {
				t.Logf("seed=%d step=%d (compactEvery=%d): merged vs static: %v\n ops=%v", seed, step, compactEvery, err, ops)
				return false
			}
			if err := checkAllFamilies(t, rand.New(rand.NewSource(seed^int64(step))), rebuilding, static, numLabels); err != nil {
				t.Logf("seed=%d step=%d (compactEvery=%d): rebuilt vs static: %v", seed, step, compactEvery, err)
				return false
			}
		}
		if s := rebuilding.Stats(); s.Merges != 0 {
			t.Logf("seed=%d: disableMerge engine took %d merges", seed, s.Merges)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// advScript is one deterministic adversarial mutation sequence, shared by
// the live and sharded interleaving tests.
type advScript struct {
	name string
	ops  []liveOp
}

// adversarialScripts pins deterministic mutation sequences around
// compaction boundaries that the random tests only hit by luck:
// evict-everything-then-compact, compact-twice, AddNode straddling a
// compaction, and eviction cutting into the tail.
func adversarialScripts() []advScript {
	// Nodes: 0:A 1:B 2:A; later additions noted per script.
	base := []liveOp{{kind: 'n', label: 0}, {kind: 'n', label: 1}, {kind: 'n', label: 0}}
	return []advScript{
		{"evict-everything-then-compact", append(append([]liveOp{}, base...),
			liveOp{kind: 'e', src: 0, dst: 1, t: 1},
			liveOp{kind: 'e', src: 1, dst: 2, t: 2},
			liveOp{kind: 'c'},
			liveOp{kind: 'e', src: 0, dst: 2, t: 3},
			liveOp{kind: 'v', t: 4}, // everything gone, floor == end
			liveOp{kind: 'c'},       // reclaiming rebuild of an empty live set
			liveOp{kind: 'e', src: 2, dst: 1, t: 5},
			liveOp{kind: 'e', src: 1, dst: 0, t: 6},
			liveOp{kind: 'c'},
		)},
		{"compact-twice", append(append([]liveOp{}, base...),
			liveOp{kind: 'e', src: 0, dst: 1, t: 1},
			liveOp{kind: 'e', src: 1, dst: 2, t: 2},
			liveOp{kind: 'c'},
			liveOp{kind: 'c'}, // idempotent: nothing to fold
			liveOp{kind: 'e', src: 0, dst: 1, t: 3},
			liveOp{kind: 'c'},
			liveOp{kind: 'c'},
		)},
		{"addnode-straddles-compactions", append(append([]liveOp{}, base...),
			liveOp{kind: 'e', src: 0, dst: 1, t: 1},
			liveOp{kind: 'c'},
			liveOp{kind: 'n', label: 1}, // node 3
			liveOp{kind: 'c'},           // folds the node, no edges
			liveOp{kind: 'e', src: 3, dst: 0, t: 2},
			liveOp{kind: 'n', label: 0}, // node 4
			liveOp{kind: 'e', src: 2, dst: 4, t: 3},
			liveOp{kind: 'c'},
			liveOp{kind: 'e', src: 4, dst: 3, t: 4},
		)},
		{"evict-into-tail-then-compact", append(append([]liveOp{}, base...),
			liveOp{kind: 'e', src: 0, dst: 1, t: 1},
			liveOp{kind: 'e', src: 1, dst: 2, t: 2},
			liveOp{kind: 'c'},
			liveOp{kind: 'e', src: 0, dst: 2, t: 3},
			liveOp{kind: 'e', src: 2, dst: 1, t: 4},
			liveOp{kind: 'v', t: 4}, // floor lands inside the tail
			liveOp{kind: 'c'},
			liveOp{kind: 'e', src: 1, dst: 1, t: 5}, // self-loop for FindLabelSet parity
			liveOp{kind: 'v', t: 5},
			liveOp{kind: 'c'},
			liveOp{kind: 'c'},
		)},
	}
}

// TestLiveAdversarialInterleavings replays the adversarial scripts into
// merge-compacting and rebuild-only engines, comparing all three query
// families against the static oracle after every op.
func TestLiveAdversarialInterleavings(t *testing.T) {
	for _, sc := range adversarialScripts() {
		t.Run(sc.name, func(t *testing.T) {
			for _, disableMerge := range []bool{false, true} {
				l := NewLive(LiveOptions{CompactEvery: -1, disableMerge: disableMerge})
				var labels []tgraph.Label
				var edges []tgraph.Edge
				minTime := int64(0)
				for i, op := range sc.ops {
					replayOp(t, l, op)
					switch op.kind {
					case 'n':
						labels = append(labels, op.label)
					case 'e':
						edges = append(edges, tgraph.Edge{Src: op.src, Dst: op.dst, Time: op.t})
					case 'v':
						if op.t > minTime {
							minTime = op.t
						}
					}
					static := staticEquivalent(t, labels, edges, minTime)
					if l.NumNodes() != static.g.NumNodes() || l.NumEdges() != static.g.NumEdges() {
						t.Fatalf("op %d (disableMerge=%v): live %d nodes/%d edges, static %d/%d",
							i, disableMerge, l.NumNodes(), l.NumEdges(), static.g.NumNodes(), static.g.NumEdges())
					}
					rng := rand.New(rand.NewSource(int64(i) + 1))
					if err := checkAllFamilies(t, rng, l, static, 2); err != nil {
						t.Fatalf("op %d (disableMerge=%v): %v", i, disableMerge, err)
					}
				}
			}
		})
	}
}

// TestLiveMergePathTaken pins that steady-state compaction actually takes
// the merge path (no NewEngine(buildGraph()) rebuild) and that eviction
// past half the edge array falls back to the reclaiming rebuild.
func TestLiveMergePathTaken(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 8})
	a := l.AddNode(0)
	b := l.AddNode(1)
	tm := int64(0)
	for i := 0; i < 64; i++ {
		tm++
		if err := l.Append(a, b, tm); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Compactions < 2 {
		t.Fatalf("expected repeated auto-compactions, got %+v", s)
	}
	// First compaction has no base to extend (rebuild); every later one
	// must merge.
	if s.Merges != s.Compactions-1 {
		t.Fatalf("expected all but the first compaction to merge, got %+v", s)
	}
	if s.TailLen != 0 || s.Floor != 0 || s.BaseEdges != 64 || s.LiveEdges != 64 {
		t.Fatalf("unexpected post-merge stats %+v", s)
	}
	if s.LastCompactTail != 8 {
		t.Fatalf("LastCompactTail = %d, want 8", s.LastCompactTail)
	}

	// Evict well past half the edge array: the next compaction must
	// rebuild, reclaiming the dead prefix and rebasing the floor to zero.
	mergesBefore := s.Merges
	l.EvictBefore(tm - 3)
	l.Compact()
	s = l.Stats()
	if s.Merges != mergesBefore {
		t.Fatalf("reclaiming compaction took the merge path: %+v", s)
	}
	if s.Floor != 0 || s.BaseEdges != 4 || s.LiveEdges != 4 {
		t.Fatalf("rebuild did not reclaim the evicted prefix: %+v", s)
	}

	// A small eviction, by contrast, is carried through the merge.
	for i := 0; i < 3; i++ {
		tm++
		if err := l.Append(a, b, tm); err != nil {
			t.Fatal(err)
		}
	}
	l.EvictBefore(tm - 5) // 1 of 7 live edges dead: far below half
	l.Compact()
	s = l.Stats()
	if s.Merges != mergesBefore+1 {
		t.Fatalf("small-floor compaction did not merge: %+v", s)
	}
	if s.Floor != 1 || s.BaseEdges != 7 || s.LiveEdges != 6 || s.TailLen != 0 {
		t.Fatalf("merge did not carry the floor: %+v", s)
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != 6 {
		t.Fatalf("post-merge query returned %v, want 6 matches", res.Matches)
	}
	for _, m := range res.Matches {
		if m.Start < tm-5 {
			t.Fatalf("merged engine returned evicted match %v", m)
		}
	}
}

// TestLiveSnapshotSeesAddedNodes is the regression test for the Snapshot
// fast path returning the stale compacted base when AddNode ran after the
// last compaction with an empty tail: the snapshot silently dropped the
// new nodes.
func TestLiveSnapshotSeesAddedNodes(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: -1})
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 1); err != nil {
		t.Fatal(err)
	}
	l.Compact()
	l.AddNode(2) // tail stays empty: the buggy fast path triggered here
	snap := l.Snapshot()
	if got, want := snap.g.NumNodes(), 3; got != want {
		t.Fatalf("Snapshot dropped nodes added after compaction: %d nodes, want %d", got, want)
	}
	if got := snap.g.LabelOf(2); got != 2 {
		t.Fatalf("snapshot node 2 has label %d, want 2", got)
	}
	// A label-set query touching the new node's label must answer from the
	// full node set (empty here — the node has no edges yet — but against
	// the stale snapshot the label would not exist at all).
	if res := snap.FindLabelSet([]tgraph.Label{2}, Options{Window: 4}); len(res.Matches) != 0 {
		t.Fatalf("unexpected matches %v", res.Matches)
	}
	// Once the node gains an edge, snapshot queries must see it.
	c := tgraph.NodeID(2)
	if err := l.Append(b, c, 2); err != nil {
		t.Fatal(err)
	}
	snap = l.Snapshot()
	res := snap.FindLabelSet([]tgraph.Label{1, 2}, Options{Window: 4})
	if len(res.Matches) != 1 {
		t.Fatalf("snapshot query missed the new node's edge: %v", res.Matches)
	}
	// And the fast path itself stays correct: after a compaction folds the
	// node in, Snapshot may share the base directly but must include it.
	l.Compact()
	snap = l.Snapshot()
	if got := snap.g.NumNodes(); got != 3 {
		t.Fatalf("post-compaction snapshot has %d nodes, want 3", got)
	}
}

// TestLiveAppendPositionsExhausted exercises the int32 global-position
// overflow guard via a synthetically advanced baseEdges: without the
// guard, the 2^31-th edge position wraps negative and corrupts every
// posList.
func TestLiveAppendPositionsExhausted(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: -1})
	a := l.AddNode(0)
	b := l.AddNode(1)
	if err := l.Append(a, b, 1); err != nil {
		t.Fatal(err)
	}
	// Pretend the base already holds all but one of the int32 positions
	// (actually accumulating 2^31 edges needs ~32 GiB; the guard must not).
	g := l.gen()
	ng := *g
	ng.baseEdges = math.MaxInt32 - ng.tailN.Load() - 1
	l.cur.Store(&ng)
	if err := l.Append(a, b, 2); err != nil {
		t.Fatalf("append at position 2^31-2 must still fit: %v", err)
	}
	err := l.Append(a, b, 3)
	if !errors.Is(err, ErrPositionsExhausted) {
		t.Fatalf("append past the position space returned %v, want ErrPositionsExhausted", err)
	}
	if n := int(l.gen().tailN.Load()); n != 2 {
		t.Fatalf("failed append mutated the tail: %d entries, want 2", n)
	}
	if lt := l.LastTime(); lt != 2 {
		t.Fatalf("failed append advanced lastTime to %d", lt)
	}
}

// TestLiveAppendReclaimsPositionsAfterEvict pins the recovery path at the
// position bound: when eviction has freed positions, Append forces a
// rebasing rebuild instead of erroring, so a sliding-window stream never
// observes ErrPositionsExhausted.
func TestLiveAppendReclaimsPositionsAfterEvict(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: -1})
	a := l.AddNode(0)
	b := l.AddNode(1)
	for i := 1; i <= 4; i++ {
		if err := l.Append(a, b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Compact()      // base of 4 edges, positions 0..3
	l.EvictBefore(3) // floor 2: two positions reclaimable
	if err := l.Append(a, b, 5); err != nil {
		t.Fatal(err)
	}
	// Pretend the base sits at the edge of the position space (the floor
	// stays a real, in-bounds position so the rebuild path is exercised
	// for real).
	g := l.gen()
	ng := *g
	ng.baseEdges = math.MaxInt32 - 1
	l.cur.Store(&ng)
	if err := l.Append(a, b, 6); err != nil {
		t.Fatalf("append at the bound with evicted positions available: %v", err)
	}
	s := l.Stats()
	if s.Floor != 0 || s.BaseEdges != 3 || s.TailLen != 1 || s.LiveEdges != 4 {
		t.Fatalf("reclaiming rebuild did not rebase: %+v", s)
	}
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := l.FindTemporal(p, Options{})
	if len(res.Matches) != 4 || res.Matches[0].Start != 3 || res.Matches[3].End != 6 {
		t.Fatalf("post-reclaim query returned %v, want times 3..6", res.Matches)
	}
}

// TestLiveAutoRebuildReclaimsAfterMassEviction pins the auto-compaction
// reclaim schedule: once the evicted prefix dominates, the rebuild trigger
// compares the tail to the LIVE base (the dead prefix is free to drop), so
// a burst-then-quiet stream releases the burst's memory after one
// CompactEvery of further appends instead of retaining it until the tail
// grows to half the dead-inflated base.
func TestLiveAutoRebuildReclaimsAfterMassEviction(t *testing.T) {
	l := NewLive(LiveOptions{CompactEvery: 4})
	a := l.AddNode(0)
	b := l.AddNode(1)
	tm := int64(0)
	for i := 0; i < 64; i++ { // the burst, fully compacted into the base
		tm++
		if err := l.Append(a, b, tm); err != nil {
			t.Fatal(err)
		}
	}
	l.EvictBefore(tm - 3) // window slides: 4 live edges, 60 dead
	for i := 0; i < 4; i++ {
		tm++
		if err := l.Append(a, b, tm); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Floor != 0 || s.BaseEdges != 8 || s.TailLen != 0 || s.LiveEdges != 8 {
		t.Fatalf("auto-compaction retained the dead prefix: %+v", s)
	}
}
