package search

import (
	"sort"

	"tgminer/internal/tgraph"
)

// FindLabelSet implements the NodeSet baseline's matcher: find minimal time
// windows (span ≤ opts.Window) containing distinct nodes whose labels cover
// the query multiset. Each minimal satisfying window yields one match.
//
// Per the paper, a NodeSet match is a set of k nodes whose label multiset
// equals the query's, spanning no longer than the longest observed behavior
// lifetime. Matching minimal windows (rather than every k-subset) keeps the
// match count comparable to the pattern-query semantics.
func (e *Engine) FindLabelSet(labels []tgraph.Label, opts Options) Result {
	opts = opts.normalize()
	if len(labels) == 0 {
		return Result{}
	}
	need := map[tgraph.Label]int{}
	for _, l := range labels {
		need[l]++
	}

	// Label events: each node's occurrences on the edge stream, restricted
	// to queried labels. A node may appear many times; it may only be
	// counted once per window, tracked via per-node first occurrence within
	// the sliding range.
	type ev struct {
		time  int64
		node  tgraph.NodeID
		label tgraph.Label
	}
	var evs []ev
	for pos, ed := range e.g.Edges() {
		_ = pos
		for _, v := range []tgraph.NodeID{ed.Src, ed.Dst} {
			l := e.g.LabelOf(v)
			if _, ok := need[l]; ok {
				evs = append(evs, ev{time: ed.Time, node: v, label: l})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].time < evs[j].time })

	res := &resultSet{limit: opts.Limit}
	// Sliding window over events: count distinct nodes per label.
	nodeCount := map[tgraph.NodeID]int{} // occurrences of node in window
	labelHave := map[tgraph.Label]int{}  // distinct nodes per label in window
	satisfied := 0
	left := 0
	push := func(x ev) {
		if nodeCount[x.node] == 0 {
			labelHave[x.label]++
			if labelHave[x.label] == need[x.label] {
				satisfied++
			}
		}
		nodeCount[x.node]++
	}
	pop := func(x ev) {
		nodeCount[x.node]--
		if nodeCount[x.node] == 0 {
			delete(nodeCount, x.node)
			if labelHave[x.label] == need[x.label] {
				satisfied--
			}
			labelHave[x.label]--
		}
	}
	for right := 0; right < len(evs); right++ {
		push(evs[right])
		if opts.Window > 0 {
			for evs[right].time-evs[left].time+1 > opts.Window {
				pop(evs[left])
				left++
			}
		}
		if satisfied == len(need) {
			// Shrink to minimal window.
			for left < right {
				trial := evs[left]
				pop(trial)
				if satisfied == len(need) {
					left++
					continue
				}
				push(trial)
				break
			}
			res.add(Match{Start: evs[left].time, End: evs[right].time})
			if res.full() {
				break
			}
		}
	}
	return res.finish()
}
