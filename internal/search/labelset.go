package search

import (
	"context"
	"sort"

	"tgminer/internal/tgraph"
)

// This file implements the NodeSet baseline's matcher: find minimal time
// windows (span ≤ opts.Window) containing distinct nodes whose labels cover
// the query multiset. Each minimal satisfying window yields one match.
//
// Per the paper, a NodeSet match is a set of k nodes whose label multiset
// equals the query's, spanning no longer than the longest observed behavior
// lifetime. Matching minimal windows (rather than every k-subset) keeps the
// match count comparable to the pattern-query semantics.
//
// The event builder and sliding-window sweep are host-independent so the
// static Engine and the live generation host (live.go) share them; only the
// edge iteration differs per host.

// lsEvent is one occurrence of a queried label on the edge stream.
type lsEvent struct {
	time  int64
	node  tgraph.NodeID
	label tgraph.Label
}

// labelNeed counts the query label multiset.
func labelNeed(labels []tgraph.Label) map[tgraph.Label]int {
	need := make(map[tgraph.Label]int, len(labels))
	for _, l := range labels {
		need[l]++
	}
	return need
}

// labelSetEvents builds the label events — each node's occurrences on the
// edge stream, restricted to queried labels — from a host's edge iteration.
// A self-loop edge has one distinct endpoint and contributes exactly one
// event. numEdges only sizes the allocation.
func labelSetEvents(need map[tgraph.Label]int, numEdges int, forEach func(func(tgraph.Edge) bool), labelOf func(tgraph.NodeID) tgraph.Label) []lsEvent {
	evs := make([]lsEvent, 0, numEdges)
	forEach(func(ed tgraph.Edge) bool {
		if l := labelOf(ed.Src); need[l] > 0 {
			evs = append(evs, lsEvent{time: ed.Time, node: ed.Src, label: l})
		}
		if ed.Dst != ed.Src {
			if l := labelOf(ed.Dst); need[l] > 0 {
				evs = append(evs, lsEvent{time: ed.Time, node: ed.Dst, label: l})
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].time < evs[j].time })
	return evs
}

// labelSetSweep runs the sliding-window scan over the label events,
// counting distinct nodes per label and reporting each minimal satisfying
// window. The context is polled every ctxCheckMask+1 events; on
// cancellation the matches found so far return together with ctx.Err().
func labelSetSweep(ctx context.Context, evs []lsEvent, need map[tgraph.Label]int, opts Options) (Result, error) {
	res := &resultSet{limit: opts.Limit}
	nodeCount := map[tgraph.NodeID]int{} // occurrences of node in window
	labelHave := map[tgraph.Label]int{}  // distinct nodes per label in window
	satisfied := 0
	left := 0
	push := func(x lsEvent) {
		if nodeCount[x.node] == 0 {
			labelHave[x.label]++
			if labelHave[x.label] == need[x.label] {
				satisfied++
			}
		}
		nodeCount[x.node]++
	}
	pop := func(x lsEvent) {
		nodeCount[x.node]--
		if nodeCount[x.node] == 0 {
			delete(nodeCount, x.node)
			if labelHave[x.label] == need[x.label] {
				satisfied--
			}
			labelHave[x.label]--
		}
	}
	for right := 0; right < len(evs); right++ {
		if right&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return res.finish(), err
			}
		}
		push(evs[right])
		if opts.Window > 0 {
			for evs[right].time-evs[left].time+1 > opts.Window {
				pop(evs[left])
				left++
			}
		}
		if satisfied == len(need) {
			// Shrink to minimal window.
			for left < right {
				trial := evs[left]
				pop(trial)
				if satisfied == len(need) {
					left++
					continue
				}
				push(trial)
				break
			}
			res.add(Match{Start: evs[left].time, End: evs[right].time})
			if res.full() {
				break
			}
		}
	}
	return res.finish(), nil
}

// FindLabelSet reports the minimal windows covering the query label
// multiset. It is the background-context compatibility form of
// FindLabelSetContext.
func (e *Engine) FindLabelSet(labels []tgraph.Label, opts Options) Result {
	r, _ := e.FindLabelSetContext(context.Background(), labels, opts)
	return r
}

// FindLabelSetContext evaluates a NodeSet query under a context: the sweep
// polls the context cooperatively and on cancellation returns the matches
// found so far together with ctx.Err().
func (e *Engine) FindLabelSetContext(ctx context.Context, labels []tgraph.Label, opts Options) (Result, error) {
	opts = opts.normalize()
	if len(labels) == 0 {
		return Result{}, nil
	}
	// Up-front poll: with no label events the sweep never polls, and a
	// dead context would be silently swallowed.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	need := labelNeed(labels)
	forEach := func(fn func(tgraph.Edge) bool) {
		for _, ed := range e.g.Edges() {
			if !fn(ed) {
				return
			}
		}
	}
	evs := labelSetEvents(need, e.g.NumEdges(), forEach, e.g.LabelOf)
	return labelSetSweep(ctx, evs, need, opts)
}
