package search

// Checked arithmetic for the int32 global position space. Positions are
// capped at 2^31-1 (Append returns ErrPositionsExhausted before the space
// can wrap), so any arithmetic that could leave the space must flow through
// these helpers rather than raw int32 operations — enforced by the
// poschecked analyzer (cmd/tglint). A wrapped position silently corrupts
// every posList it lands in; panicking here turns that into a loud bug.

import "math"

// addPos returns a+b, panicking if the sum leaves the int32 position
// space. Both operands must already be in-space (non-negative).
//
// tglint:ignore poschecked this is the checked helper the analyzer points raw arithmetic at
func addPos(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s < 0 || s > math.MaxInt32 {
		panic("search: position arithmetic overflow (addPos)")
	}
	return int32(s)
}

// pos32 converts an int index to an in-space int32 position, panicking if
// it does not fit.
//
// tglint:ignore poschecked this is the checked helper the analyzer points raw arithmetic at
func pos32(n int) int32 {
	if n < 0 || n > math.MaxInt32 {
		panic("search: position out of int32 space (pos32)")
	}
	return int32(n)
}
