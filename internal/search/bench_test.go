package search

import (
	"fmt"
	"sync"
	"testing"

	"tgminer/internal/tgraph"
)

// BenchmarkShardedAppend measures aggregate multi-writer append throughput
// at several shard counts: K = shards concurrent writers, each appending
// edges whose source node hashes to its own shard (the intended
// multi-producer deployment: one producer per entity partition), with a
// sliding eviction window so memory stays bounded. ns/op is wall time per
// appended edge ACROSS all writers, so on a K-core host K shards should
// approach a K-fold improvement over shards=1 (every writer serializes on
// the same mutex there); on a single core the sweep is flat and only
// measures sharding overhead. Recorded in BENCH_PR5.json; the acceptance
// target (>=4x aggregate at 8 shards) is a multi-core number.
func BenchmarkShardedAppend(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			l := NewSharded(LiveOptions{Shards: shards})
			srcs, dst := shardedWriterNodes(b, l, shards)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := srcs[w]
					// Writer w owns timestamps congruent to w mod shards:
					// strictly increasing per shard, globally unique.
					for i := w; i < b.N; i += shards {
						if err := l.Append(src, dst, int64(i)+1); err != nil {
							b.Error(err)
							return
						}
						if w == 0 && i%8192 == 0 {
							l.EvictBefore(int64(i) - 65536)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkLiveCompact measures the cost of one live compaction at several
// base:tail ratios, comparing the incremental tail-merge (merge.go, the
// default path) against the full rebuild it replaced (still the reclaiming
// fallback). Each iteration appends one tail of fresh edges untimed and
// then times folding it into the base, so the base grows by the tail size
// every iteration in both modes: a merge whose per-compaction cost stays
// flat while the base grows demonstrates O(tail + touched lists)
// compaction, while the rebuild's cost tracks O(base+tail). Recorded in
// BENCH_PR4.json.
func BenchmarkLiveCompact(b *testing.B) {
	const tailN = 1024
	const numNodes = 64
	for _, mult := range []int{4, 16, 64} {
		for _, mode := range []string{"merge", "rebuild"} {
			b.Run(fmt.Sprintf("%s/base=%dxtail", mode, mult), func(b *testing.B) {
				l := NewLive(LiveOptions{CompactEvery: -1})
				nodes := make([]tgraph.NodeID, numNodes)
				for i := range nodes {
					nodes[i] = l.AddNode(tgraph.Label(i % 8))
				}
				tm := int64(0)
				appendEdges := func(n int) {
					for i := 0; i < n; i++ {
						tm++
						src := nodes[int(tm)%numNodes]
						dst := nodes[(int(tm)*7+1)%numNodes]
						if err := l.Append(src, dst, tm); err != nil {
							b.Fatal(err)
						}
					}
				}
				appendEdges(tailN * mult)
				l.Compact() // establish a flat CSR base at the target ratio
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					appendEdges(tailN)
					b.StartTimer()
					// Single-goroutine bench: drive the two compaction
					// strategies directly, bypassing the writer mutex.
					v := l.snap()
					if mode == "merge" {
						l.cur.Store(mergeGen(v))
					} else {
						l.cur.Store(rebuildGen(v))
					}
				}
			})
		}
	}
}

// BenchmarkLiveStats pins the O(1) Stats read path against the O(nodes +
// pairs) retained-bytes walk it replaced, over a node-count sweep. The
// "stats" series must stay flat from 1e3 to 1e6 nodes (an atomic counter
// load plus a snapshot capture, independent of engine size), while the
// "walk" series — the recomputation the differential tests still run, and
// what every Stats call used to cost — grows linearly. This is what makes
// per-batch exact admission control in tgminerd affordable. Recorded in
// BENCH_PR10.json.
func BenchmarkLiveStats(b *testing.B) {
	for _, n := range []int{1e3, 1e4, 1e5, 1e6} {
		l := NewLive(LiveOptions{CompactEvery: -1})
		nodes := make([]tgraph.NodeID, n)
		for i := range nodes {
			nodes[i] = l.AddNode(tgraph.Label(i % 4))
		}
		for i := 0; i < n; i++ {
			if err := l.Append(nodes[i], nodes[(i+1)%n], int64(i)+1); err != nil {
				b.Fatal(err)
			}
		}
		l.Compact()
		b.Run(fmt.Sprintf("stats/nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if st := l.Stats(); st.Nodes != n {
					b.Fatal("wrong node count")
				}
			}
		})
		b.Run(fmt.Sprintf("walk/nodes=%d", n), func(b *testing.B) {
			v := l.snap()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v.retainedBytes() <= 0 {
					b.Fatal("empty walk")
				}
			}
		})
	}
}

// BenchmarkConstrainedTemporal measures what the compiled guards buy over
// match-then-filter. The host is a set of hubs: one proc->file anchor edge,
// then a wide fan of file->sock continuations spread over time, of which a
// MaxGap guard admits only the first few. "guard" pushes the bound into the
// candidate scan (upper-bound early exit per hub); "postfilter" runs the
// unconstrained matcher and drops wide spans afterwards — the semantics are
// identical for this two-hop pattern (span == gap), which the benchmark
// asserts once outside the timed loop. Recorded in BENCH_PR8.json.
func BenchmarkConstrainedTemporal(b *testing.B) {
	const hubs = 64
	const fanout = 256
	const gap = 8
	var bld tgraph.Builder
	tm := int64(0)
	for h := 0; h < hubs; h++ {
		a := bld.AddNode(0)
		hub := bld.AddNode(1)
		tm++
		if err := bld.AddEdge(a, hub, tm); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < fanout; i++ {
			c := bld.AddNode(2)
			tm++
			if err := bld.AddEdge(hub, c, tm); err != nil {
				b.Fatal(err)
			}
		}
	}
	g, err := bld.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(g)
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		b.Fatal(err)
	}
	cons := &Constraints{Hops: []HopConstraint{{}, {MaxGap: gap}}}
	postFilter := func(res Result) []Match {
		out := res.Matches[:0:0]
		for _, m := range res.Matches {
			if m.End-m.Start <= gap {
				out = append(out, m)
			}
		}
		return out
	}
	guarded := eng.FindTemporal(p, Options{Constraints: cons})
	filtered := postFilter(eng.FindTemporal(p, Options{}))
	if len(guarded.Matches) != hubs*gap || len(filtered) != len(guarded.Matches) {
		b.Fatalf("guard/postfilter disagree: %d vs %d matches (want %d)",
			len(guarded.Matches), len(filtered), hubs*gap)
	}
	for i := range filtered {
		if filtered[i] != guarded.Matches[i] {
			b.Fatalf("match %d: guard %v != postfilter %v", i, guarded.Matches[i], filtered[i])
		}
	}

	b.Run("guard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := eng.FindTemporal(p, Options{Constraints: cons}); len(res.Matches) != hubs*gap {
				b.Fatal("wrong match count")
			}
		}
	})
	b.Run("postfilter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := postFilter(eng.FindTemporal(p, Options{})); len(out) != hubs*gap {
				b.Fatal("wrong match count")
			}
		}
	})
}
