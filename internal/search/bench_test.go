package search

import (
	"fmt"
	"sync"
	"testing"

	"tgminer/internal/tgraph"
)

// BenchmarkShardedAppend measures aggregate multi-writer append throughput
// at several shard counts: K = shards concurrent writers, each appending
// edges whose source node hashes to its own shard (the intended
// multi-producer deployment: one producer per entity partition), with a
// sliding eviction window so memory stays bounded. ns/op is wall time per
// appended edge ACROSS all writers, so on a K-core host K shards should
// approach a K-fold improvement over shards=1 (every writer serializes on
// the same mutex there); on a single core the sweep is flat and only
// measures sharding overhead. Recorded in BENCH_PR5.json; the acceptance
// target (>=4x aggregate at 8 shards) is a multi-core number.
func BenchmarkShardedAppend(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			l := NewSharded(LiveOptions{Shards: shards})
			srcs, dst := shardedWriterNodes(b, l, shards)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := srcs[w]
					// Writer w owns timestamps congruent to w mod shards:
					// strictly increasing per shard, globally unique.
					for i := w; i < b.N; i += shards {
						if err := l.Append(src, dst, int64(i)+1); err != nil {
							b.Error(err)
							return
						}
						if w == 0 && i%8192 == 0 {
							l.EvictBefore(int64(i) - 65536)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkLiveCompact measures the cost of one live compaction at several
// base:tail ratios, comparing the incremental tail-merge (merge.go, the
// default path) against the full rebuild it replaced (still the reclaiming
// fallback). Each iteration appends one tail of fresh edges untimed and
// then times folding it into the base, so the base grows by the tail size
// every iteration in both modes: a merge whose per-compaction cost stays
// flat while the base grows demonstrates O(tail + touched lists)
// compaction, while the rebuild's cost tracks O(base+tail). Recorded in
// BENCH_PR4.json.
func BenchmarkLiveCompact(b *testing.B) {
	const tailN = 1024
	const numNodes = 64
	for _, mult := range []int{4, 16, 64} {
		for _, mode := range []string{"merge", "rebuild"} {
			b.Run(fmt.Sprintf("%s/base=%dxtail", mode, mult), func(b *testing.B) {
				l := NewLive(LiveOptions{CompactEvery: -1})
				nodes := make([]tgraph.NodeID, numNodes)
				for i := range nodes {
					nodes[i] = l.AddNode(tgraph.Label(i % 8))
				}
				tm := int64(0)
				appendEdges := func(n int) {
					for i := 0; i < n; i++ {
						tm++
						src := nodes[int(tm)%numNodes]
						dst := nodes[(int(tm)*7+1)%numNodes]
						if err := l.Append(src, dst, tm); err != nil {
							b.Fatal(err)
						}
					}
				}
				appendEdges(tailN * mult)
				l.Compact() // establish a flat CSR base at the target ratio
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					appendEdges(tailN)
					b.StartTimer()
					// Single-goroutine bench: drive the two compaction
					// strategies directly, bypassing the writer mutex.
					v := l.snap()
					if mode == "merge" {
						l.cur.Store(mergeGen(v))
					} else {
						l.cur.Store(rebuildGen(v))
					}
				}
			})
		}
	}
}
