package search

import (
	"fmt"
	"testing"

	"tgminer/internal/tgraph"
)

// BenchmarkLiveCompact measures the cost of one live compaction at several
// base:tail ratios, comparing the incremental tail-merge (merge.go, the
// default path) against the full rebuild it replaced (still the reclaiming
// fallback). Each iteration appends one tail of fresh edges untimed and
// then times folding it into the base, so the base grows by the tail size
// every iteration in both modes: a merge whose per-compaction cost stays
// flat while the base grows demonstrates O(tail + touched lists)
// compaction, while the rebuild's cost tracks O(base+tail). Recorded in
// BENCH_PR4.json.
func BenchmarkLiveCompact(b *testing.B) {
	const tailN = 1024
	const numNodes = 64
	for _, mult := range []int{4, 16, 64} {
		for _, mode := range []string{"merge", "rebuild"} {
			b.Run(fmt.Sprintf("%s/base=%dxtail", mode, mult), func(b *testing.B) {
				l := NewLive(LiveOptions{CompactEvery: -1})
				nodes := make([]tgraph.NodeID, numNodes)
				for i := range nodes {
					nodes[i] = l.AddNode(tgraph.Label(i % 8))
				}
				tm := int64(0)
				appendEdges := func(n int) {
					for i := 0; i < n; i++ {
						tm++
						src := nodes[int(tm)%numNodes]
						dst := nodes[(int(tm)*7+1)%numNodes]
						if err := l.Append(src, dst, tm); err != nil {
							b.Fatal(err)
						}
					}
				}
				appendEdges(tailN * mult)
				l.Compact() // establish a flat CSR base at the target ratio
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					appendEdges(tailN)
					b.StartTimer()
					// Single-goroutine bench: drive the two compaction
					// strategies directly, bypassing the writer mutex.
					g := l.gen()
					if mode == "merge" {
						l.cur.Store(mergeGen(g))
					} else {
						l.cur.Store(rebuildGen(g))
					}
				}
			})
		}
	}
}
