package search

// This file implements ShardedLive, the multi-writer form of the live
// engine: N independent Live shards, each with its own writer mutex,
// generation chain, compaction schedule, and eviction floor, behind a
// cross-shard query planner. Edges are partitioned by their SOURCE node
// (tgraph.NodeShard over the global NodeID), so K producers whose entities
// hash to different shards append fully in parallel — the single-Live
// design serializes every writer on one mutex and caps ingest at one core
// no matter how many producers exist (BenchmarkShardedAppend).
//
// Identity. NodeIDs are global: AddNode registers every node on every
// shard under the same ID, so an edge owned by shard(src) can name a
// destination that "belongs" to any other shard and every shard resolves
// it to the same label without remapping. Only edge ownership is sharded.
//
// Ordering and consistency. Within a shard, Append enforces the usual
// strictly-increasing-timestamp total order. Across shards nothing is
// enforced at append time — that independence is the whole point — and the
// planner instead treats TIMESTAMPS as the global total order (position
// order equals time order inside each shard, so the time-merged union is
// exactly the edge sequence a single engine would hold). For queries to
// answer exactly as a single Live — the differential property tests pin
// ShardedLive(n) == Live == static Engine for all three families —
// timestamps must be globally unique, the same contract the single-writer
// engines already document ("strictly increasing across appends");
// sequentialize concurrent clocks upstream. If the contract is violated,
// cross-shard ties break deterministically by shard index and each answer
// is still well-defined, just not equal to any single-engine history.
//
// The cut. A query pins one generation per shard atomically (one atomic
// load each) — a "consistent-enough" cut: each shard contributes a prefix
// of its own append history (per-shard prefix consistency), but the cut
// carries no cross-shard barrier, so a query may observe shard A's edge at
// t=100 while missing shard B's at t=99 that was appended concurrently.
// Per-shard prefixes are exactly what independent producers can promise;
// anything stronger would reintroduce the cross-shard synchronization
// sharding exists to remove.
//
// The planner. Root candidates of a query live where their first edge
// lives, so the root loop fans out across shards — one worker per shard,
// the same one-worker-per-core shape as the PR 1 seed-level mining pool —
// and every worker matches CONTINUATION edges against the full cross-shard
// view: out-edges of a bound node live only on its own shard (ownership is
// by source), while in-edges and label-pair candidates merge across all
// shards in time order through posCursor/minCursor. Workers emit
// key-ordered match streams that the planner merges back into the exact
// sequential discovery order, deduplicating (temporal dedup is free:
// cross-shard roots have distinct start times; non-temporal intervals
// dedup in the merger) and enforcing Options.Limit globally with the same
// exact-Truncated semantics as the single-host engines.

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tgminer/internal/gspan"
	"tgminer/internal/tgraph"
)

// ShardedLive is a Live engine sharded by source node for multi-writer
// ingestion. Appends to different shards proceed in parallel (per-shard
// writer mutexes); queries run lock-free against a pinned per-shard
// generation cut and answer exactly as a single Live over the time-merged
// union would, for all three query families. See the file comment for the
// consistency model.
type ShardedLive struct {
	shards []*Live

	mu sync.Mutex // serializes AddNode's cross-shard registration

	// lastGlobal tracks the maximum timestamp ever offered to Append, for
	// best-effort duplicate detection (see Append). -1 when empty.
	lastGlobal atomic.Int64

	used sync.Pool // *usedSet per-query scratch, sized for the global node table
}

// NewSharded returns an empty sharded live engine with opts.Shards shards
// (0 = GOMAXPROCS; 1 yields a single shard, making every query a direct
// delegate to the one Live). Each shard gets its own LiveOptions copy, so
// compaction schedules run independently.
func NewSharded(opts LiveOptions) *ShardedLive {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	l := &ShardedLive{shards: make([]*Live, n)}
	l.lastGlobal.Store(-1) // timestamps are non-negative; 0 is a legal first tick
	for i := range l.shards {
		l.shards[i] = NewLive(opts)
	}
	l.used.New = func() any { return new(usedSet) }
	return l
}

// Shards reports the number of shards.
func (l *ShardedLive) Shards() int { return len(l.shards) }

// shardOf routes a source node to its owning shard.
func (l *ShardedLive) shardOf(src tgraph.NodeID) *Live {
	return l.shards[tgraph.NodeShard(src, len(l.shards))]
}

// AddNode appends a node with the given label and returns its global
// NodeID. The node registers on every shard under the same ID (the
// cross-shard identity contract), so node creation serializes across
// shards; edge appends do not.
func (l *ShardedLive) AddNode(label tgraph.Label) tgraph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.shards[0].AddNode(label)
	for _, sh := range l.shards[1:] {
		if got := sh.AddNode(label); got != id {
			// Unreachable: AddNode holds the registration mutex and every
			// shard appends nodes in the same order.
			panic(fmt.Sprintf("search: sharded node table diverged (%d vs %d)", got, id))
		}
	}
	return id
}

// Append records a directed edge src -> dst at time t on src's shard.
// Appends to different shards run fully in parallel; timestamps must be
// strictly increasing per shard (enforced) and globally unique for exact
// single-engine query equivalence (the caller's clock contract — see the
// file comment). Cross-shard arrival order is deliberately free: writers
// with independent clocks interleave, so t may be below another shard's
// latest. Duplicates are rejected best-effort against the global maximum —
// exact for a sequential caller (restoring the out-of-order error a
// single Live would have returned for a reused tick), while racing
// writers that offer the same timestamp concurrently may both land and
// surface later (deterministic shard-index tie-breaks in queries, panic
// in Snapshot). Both endpoints must already be registered via AddNode.
func (l *ShardedLive) Append(src, dst tgraph.NodeID, t int64) error {
	if len(l.shards) > 1 { // one shard: the Live engine's own check is exact
		for {
			last := l.lastGlobal.Load()
			if t == last {
				return fmt.Errorf("search: sharded append duplicate timestamp t=%d (timestamps must be globally unique across shards)", t)
			}
			if t < last || l.lastGlobal.CompareAndSwap(last, t) {
				break
			}
		}
	}
	return l.shardOf(src).Append(src, dst, t)
}

// EvictBefore drops every edge with timestamp < t on all shards
// (sliding-window retention).
func (l *ShardedLive) EvictBefore(t int64) {
	for _, sh := range l.shards {
		sh.EvictBefore(t)
	}
}

// Compact folds every shard's tail into its CSR base now.
func (l *ShardedLive) Compact() {
	for _, sh := range l.shards {
		sh.Compact()
	}
}

// NumNodes reports the number of nodes ever added.
func (l *ShardedLive) NumNodes() int { return l.shards[0].NumNodes() }

// NumEdges reports the number of live (non-evicted) edges across shards.
func (l *ShardedLive) NumEdges() int {
	n := 0
	for _, sh := range l.shards {
		n += sh.NumEdges()
	}
	return n
}

// LastTime reports the largest appended timestamp across shards (-1 when
// empty).
func (l *ShardedLive) LastTime() int64 {
	last := int64(-1)
	for _, sh := range l.shards {
		if t := sh.LastTime(); t > last {
			last = t
		}
	}
	return last
}

// ShardStats reports each shard's retention and compaction state
// (per-shard views, pinned independently).
func (l *ShardedLive) ShardStats() []LiveStats {
	out := make([]LiveStats, len(l.shards))
	for i, sh := range l.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Stats aggregates the per-shard stats: edge counts, floors (total
// evicted-but-unreclaimed edges), compaction counters, and retained bytes
// sum across shards (the node table is replicated per shard, and
// RetainedBytes honestly includes that); Nodes is the global node count,
// LastTime the global maximum. ActiveReaders and OldestReaderLag take the
// per-shard MAXIMUM, since one cross-shard query registers on every shard.
// O(shards): per-shard Stats is O(1), so aggregation is cheap enough to
// run on every ingest batch (tgminerd's admission control does).
func (l *ShardedLive) Stats() LiveStats {
	var agg LiveStats
	agg.FirstTime = -1
	agg.LastTime = -1
	for i, sh := range l.shards {
		s := sh.Stats()
		if i == 0 {
			agg.Nodes = s.Nodes
		}
		agg.BaseEdges += s.BaseEdges
		agg.TailLen += s.TailLen
		agg.Floor += s.Floor
		agg.LiveEdges += s.LiveEdges
		if s.FirstTime >= 0 && (agg.FirstTime < 0 || s.FirstTime < agg.FirstTime) {
			agg.FirstTime = s.FirstTime
		}
		if s.LastTime > agg.LastTime {
			agg.LastTime = s.LastTime
		}
		agg.Compactions += s.Compactions
		agg.Merges += s.Merges
		agg.LastCompactTail += s.LastCompactTail
		agg.RetainedBytes += s.RetainedBytes
		if s.ActiveReaders > agg.ActiveReaders {
			agg.ActiveReaders = s.ActiveReaders
		}
		if s.OldestReaderLag > agg.OldestReaderLag {
			agg.OldestReaderLag = s.OldestReaderLag
		}
	}
	return agg
}

// CutKey reports one generation-cut key per shard (see Live.CutKey): two
// equal key slices read from the same engine denote byte-identical live
// edge sets on every shard, and therefore identical answers to every query
// — the foundation of tgminerd's generation-keyed result cache. Each
// shard's key is one atomic view capture; the slice as a whole carries the
// same per-shard prefix consistency as a query's pinned cut.
func (l *ShardedLive) CutKey() []CutKey {
	out := make([]CutKey, len(l.shards))
	for i, sh := range l.shards {
		out[i] = sh.CutKey()
	}
	return out
}

// shardedView is a query's pinned cross-shard cut: one genView per shard
// (each a per-shard prefix-consistent snapshot) plus the widest global node
// label table among them. A node present in labels may be missing from an
// individual shard's view (its AddNode had not reached that shard when the
// view was pinned); per-shard iteration guards on the shard view's own
// node count.
type shardedView struct {
	views  []genView
	labels []tgraph.Label
	slots  []int // per-shard reader-accounting slots
}

// pin captures one generation per shard (an atomic load each) and
// registers the query with every shard's reader accounting.
func (l *ShardedLive) pin() *shardedView {
	sv := &shardedView{
		views: make([]genView, len(l.shards)),
		slots: make([]int, len(l.shards)),
	}
	for i, sh := range l.shards {
		v := sh.snap()
		sv.views[i] = v
		sv.slots[i] = sh.readers.acquire(v.end())
		if len(v.g.labels) > len(sv.labels) {
			sv.labels = v.g.labels
		}
	}
	return sv
}

// unpin releases the reader-accounting slots taken by pin.
func (l *ShardedLive) unpin(sv *shardedView) {
	for i, sh := range l.shards {
		sh.readers.release(sv.slots[i])
	}
}

// hasNode reports whether shard i's pinned view knows node n.
func (sv *shardedView) hasNode(i int, n tgraph.NodeID) bool {
	return int(n) < len(sv.views[i].g.labels)
}

// capPositions trims a tail posList view to positions below end.
func capPositions(list []int32, end int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= end })
	return list[:i]
}

// outSegs returns the two position segments (base CSR, capped tail) of
// node n's out-edges in this view. Caller guarantees n is in range.
func (v genView) outSegs(n tgraph.NodeID) (base, tail []int32) {
	if v.g.base != nil && int(n) < v.g.base.g.NumNodes() {
		base = v.g.base.outAt(n)
	}
	if pl := v.g.tailOut[n]; pl != nil {
		tail = capPositions(pl.view(), v.end())
	}
	return base, tail
}

// inSegs returns the two position segments of node n's in-edges.
func (v genView) inSegs(n tgraph.NodeID) (base, tail []int32) {
	if v.g.base != nil && int(n) < v.g.base.g.NumNodes() {
		base = v.g.base.inAt(n)
	}
	if pl := v.g.tailIn[n]; pl != nil {
		tail = capPositions(pl.view(), v.end())
	}
	return base, tail
}

// pairSegs returns the two position segments of edges with endpoint labels
// (src, dst).
func (v genView) pairSegs(src, dst tgraph.Label) (base, tail []int32) {
	if v.g.base != nil {
		base = v.g.base.pairPositions(src, dst)
	}
	if pl := v.g.pair[pairKey{src, dst}]; pl != nil {
		tail = capPositions(pl.view(), v.end())
	}
	return base, tail
}

// posCursor pulls the live positions of one per-shard index list (out, in,
// or label pair) in increasing position order: the base CSR segment
// chained with the capped tail segment (every tail position exceeds every
// base position). The head's timestamp is cached so minCursor can merge
// cursors across shards in global time order.
type posCursor struct {
	v          genView
	base, tail []int32
	bi, ti     int
	pos        int32
	time       int64
	ok         bool
}

// init points the cursor at the first position strictly greater than
// afterPos (clamped to the view's eviction floor).
func (c *posCursor) init(v genView, base, tail []int32, afterPos int32) {
	c.v = v
	c.base, c.tail = base, tail
	if afterPos < v.g.floor-1 {
		afterPos = v.g.floor - 1
	}
	c.bi = sort.Search(len(base), func(i int) bool { return base[i] > afterPos })
	c.ti = sort.Search(len(tail), func(i int) bool { return tail[i] > afterPos })
	c.settle()
}

// initAfterTime points the cursor at the first position whose edge time is
// strictly greater than afterTime — the cross-shard ordering key (position
// order equals time order within a shard).
func (c *posCursor) initAfterTime(v genView, base, tail []int32, afterTime int64) {
	c.init(v, base, tail, v.cutBefore(afterTime+1)-1)
}

func (c *posCursor) settle() {
	switch {
	case c.bi < len(c.base):
		c.pos = c.base[c.bi]
	case c.ti < len(c.tail):
		c.pos = c.tail[c.ti]
	default:
		c.ok = false
		return
	}
	c.ok = true
	c.time = c.v.edgeAt(c.pos).Time
}

func (c *posCursor) advance() {
	if c.bi < len(c.base) {
		c.bi++
	} else {
		c.ti++
	}
	c.settle()
}

// minCursor returns the index of the live cursor with the smallest head
// timestamp, or -1 when all are exhausted. Ties (a violation of the
// global-uniqueness clock contract) break deterministically toward the
// lowest shard index.
func minCursor(cs []posCursor) int {
	best := -1
	var bt int64
	for i := range cs {
		if cs[i].ok && (best == -1 || cs[i].time < bt) {
			best = i
			bt = cs[i].time
		}
	}
	return best
}

// shardPos is the cross-shard edge identity key: per-shard position spaces
// overlap, so the non-temporal matcher's used-edge bookkeeping keys on
// (shard, position).
func shardPos(shard int, pos int32) int64 {
	return int64(shard)<<32 | int64(uint32(pos))
}

// shardedState is the temporal matcher over a cross-shard cut: the same
// compiled step-program driver as tState (stream.go) and liveState
// (live.go) — the third deliberate twin; a semantic change to any MUST be
// mirrored in the others — with timestamps as the "position after" total
// order and continuation candidates drawn from all shards. Out-edges of a
// bound source live only on its shard; in-edge and label-pair candidates
// merge across shards in time order. Guard lower bounds fold into the
// cursors' time-keyed seeks; upper bounds early-exit the merged scan. See
// tState for the (k, rep) recursion contract.
type shardedState struct {
	matchCore
	sv *shardedView
	// cur[d] holds one cursor per shard for recursion depth d — the number
	// of host edges bound so far, NOT the step index: a repeated step scans
	// at successive depths, so its nested scans never clobber an enclosing
	// scan's cursors. Sized by the program's maximum occurrence count.
	cur [][]posCursor
}

func newShardedCursors(depths, shards int) [][]posCursor {
	flat := make([]posCursor, depths*shards)
	out := make([][]posCursor, depths)
	for i := range out {
		out[i] = flat[i*shards : (i+1)*shards]
	}
	return out
}

func (s *shardedState) match(k, rep, depth int, lastTime int64) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.prog.steps) {
		s.emit(Match{Start: s.startTime, End: lastTime})
		return
	}
	st := &s.prog.steps[k]
	if rep >= st.minRep {
		s.match(k+1, 0, depth, lastTime)
		if s.done {
			return
		}
	}
	if rep >= st.maxRep {
		return
	}
	lo := st.loTime(s.startTime, lastTime)
	hi := st.hiTime(s.startTime, lastTime, s.opts.Window)
	if hi >= 0 && lo > hi {
		return
	}
	// The cursors seek to the first position with time > afterT: the
	// guard's lower bound folds directly into the cross-shard ordering key
	// (initAfterTime is a per-shard time binary search).
	afterT := lastTime
	if lo-1 > afterT {
		afterT = lo - 1
	}
	pe := st.pe
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(v genView, ge tgraph.Edge, t int64) {
		if (pe.Src == pe.Dst) != (ge.Src == ge.Dst) {
			return
		}
		if s.sv.labels[ge.Src] != st.srcLab || s.sv.labels[ge.Dst] != st.dstLab {
			return
		}
		s.bindEdge(pe, ge, func() { s.match(k, rep+1, depth+1, t) })
	}
	switch {
	case ms != -1:
		// Ownership: every edge with source ms lives on ms's shard.
		shard := tgraph.NodeShard(ms, len(s.sv.views))
		if !s.sv.hasNode(shard, ms) {
			return
		}
		v := s.sv.views[shard]
		c := &s.cur[depth][0]
		base, tail := v.outSegs(ms)
		c.initAfterTime(v, base, tail, afterT)
		for c.ok && !s.done {
			if hi >= 0 && c.time > hi {
				break
			}
			ge := v.edgeAt(c.pos)
			if md == -1 || ge.Dst == md {
				try(v, ge, c.time)
			}
			c.advance()
		}
	case md != -1:
		cs := s.cur[depth]
		for i := range s.sv.views {
			if s.sv.hasNode(i, md) {
				base, tail := s.sv.views[i].inSegs(md)
				cs[i].initAfterTime(s.sv.views[i], base, tail, afterT)
			} else {
				cs[i].ok = false
			}
		}
		for !s.done {
			i := minCursor(cs)
			if i < 0 {
				break
			}
			c := &cs[i]
			if hi >= 0 && c.time > hi {
				break // merged order is global time order: nothing later fits
			}
			try(s.sv.views[i], s.sv.views[i].edgeAt(c.pos), c.time)
			c.advance()
		}
	default:
		// Reached when neither endpoint is bound: the first step, and any
		// step whose predecessors were all skipped optional hops.
		cs := s.cur[depth]
		for i := range s.sv.views {
			base, tail := s.sv.views[i].pairSegs(st.srcLab, st.dstLab)
			cs[i].initAfterTime(s.sv.views[i], base, tail, afterT)
		}
		for !s.done {
			i := minCursor(cs)
			if i < 0 {
				break
			}
			c := &cs[i]
			if hi >= 0 && c.time > hi {
				break // merged order is global time order: nothing later fits
			}
			try(s.sv.views[i], s.sv.views[i].edgeAt(c.pos), c.time)
			c.advance()
		}
	}
}

// taggedMatch is one worker-emitted match plus its merge key: the time of
// the root (first-edge) candidate it was found under, which is the
// sequential engine's discovery order across shards.
type taggedMatch struct {
	key int64
	m   Match
}

// shardStream carries one worker's key-ordered match stream to the
// planner's merger. truncated and err are valid only after ch closes.
type shardStream struct {
	ch        chan taggedMatch
	truncated bool
	err       error
}

// temporalWorker mines the temporal roots owned by one shard: it scans the
// shard's pair index for first-edge candidates in time order and matches
// continuations against the full cross-shard view, emitting each root's
// matches tagged with the root time. Per-worker rootDedup is globally
// sufficient: roots on different shards have distinct timestamps, and all
// matches under one root share its start time.
func (l *ShardedLive) temporalWorker(ctx context.Context, sv *shardedView, shard int, p *tgraph.Pattern, prog *program, opts Options, out *shardStream) {
	defer close(out.ch)
	res := newRootDedup(opts.Limit, func(m Match) bool {
		select {
		case out.ch <- taggedMatch{key: m.Start, m: m}:
			return true
		case <-ctx.Done():
			return false
		}
	})
	defer res.release()
	st := &shardedState{sv: sv}
	st.p = p
	st.prog = prog
	st.opts = opts
	st.res = res
	st.ctx = ctx
	st.cur = newShardedCursors(prog.maxOccurrences()+1, len(sv.views))
	u := l.used.Get().(*usedSet)
	u.reset(len(sv.labels))
	defer l.used.Put(u)
	st.init(p.NumNodes(), u)
	first := &prog.steps[0]
	v := sv.views[shard]
	var c posCursor
	base, tail := v.pairSegs(first.srcLab, first.dstLab)
	c.init(v, base, tail, -1)
	for c.ok {
		if st.rootCancelled() {
			break
		}
		res.nextRoot()
		ge := v.edgeAt(c.pos)
		if (first.pe.Src == first.pe.Dst) == (ge.Src == ge.Dst) {
			st.bindEdge(first.pe, ge, func() {
				st.startTime = ge.Time
				st.match(0, 1, 1, ge.Time)
			})
		}
		if st.done {
			break
		}
		c.advance()
	}
	out.truncated = res.truncated
	out.err = st.ctxErr
	if out.err == nil && ctx.Err() != nil {
		// The worker may have stopped via the emit-select's ctx.Done arm
		// (blocked on a full channel) before the throttled in-search probe
		// observed the cancellation; the contract is still partial results
		// plus ctx.Err().
		out.err = ctx.Err()
	}
}

// mergePlan is the planner's reduce step: a K-way merge of the workers'
// key-ordered streams back into the exact sequential discovery order.
// emit returns false to stop the merge (consumer break, or the caller's
// limit logic proved truncation — counting distinct matches against
// Options.Limit is the caller's job, since only the caller knows whether
// merged matches can still be cross-worker duplicates). mergePlan reports
// whether emit stopped it, the OR of the drained workers' truncated flags,
// and the first error a drained worker reported.
func mergePlan(outs []*shardStream, emit func(Match) bool) (stopped, truncated bool, err error) {
	heads := make([]*taggedMatch, len(outs))
	open := make([]bool, len(outs))
	for i := range outs {
		open[i] = true
	}
	for {
		// Refill every missing head; record final status as streams close.
		best := -1
		for i := range outs {
			if heads[i] == nil && open[i] {
				if tm, ok := <-outs[i].ch; ok {
					t := tm
					heads[i] = &t
				} else {
					open[i] = false
					if outs[i].truncated {
						truncated = true
					}
					if outs[i].err != nil && err == nil {
						err = outs[i].err
					}
				}
			}
			if heads[i] != nil && (best == -1 || heads[i].key < heads[best].key) {
				best = i
			}
		}
		if best == -1 {
			return false, truncated, err
		}
		m := heads[best].m
		heads[best] = nil
		if !emit(m) {
			return true, truncated, err
		}
	}
}

// StreamTemporal yields the distinct intervals where the temporal pattern
// embeds in the cross-shard edge set, with the same semantics and yield
// order as Live.StreamTemporal over the time-merged union: the planner
// fans the root loop out across shards (one worker per shard) and merges
// the workers' streams back into ascending-start order. The stream runs
// against the per-shard generation cut pinned when it started and never
// blocks any shard's writers.
func (l *ShardedLive) StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error] {
	if len(l.shards) == 1 {
		return l.shards[0].StreamTemporal(ctx, p, opts)
	}
	opts = opts.normalize()
	return func(yield func(Match, error) bool) {
		if p.NumEdges() == 0 {
			return
		}
		prog, err := compileProgram(p, opts.Constraints)
		if err != nil {
			yield(Match{}, err)
			return
		}
		sv := l.pin()
		defer l.unpin(sv)
		// The derived context stops abandoned workers (consumer break,
		// truncation proof) promptly, even mid-search with nothing to emit.
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()
		outs := make([]*shardStream, len(sv.views))
		for i := range outs {
			outs[i] = &shardStream{ch: make(chan taggedMatch, 64)}
			go l.temporalWorker(wctx, sv, i, p, prog, opts, outs[i])
		}
		// Worker streams are globally distinct already (per-worker root
		// dedup; cross-shard roots have distinct start times), so counting
		// emissions against the cap is exact: the Limit+1-th merged match
		// proves truncation, mirroring rootDedup's run-on discipline.
		emitted, halted, truncated := 0, false, false
		_, wtrunc, err := mergePlan(outs, func(m Match) bool {
			if emitted >= opts.Limit {
				truncated = true
				return false
			}
			emitted++
			if !yield(m, nil) {
				halted = true
				return false
			}
			return true
		})
		truncated = truncated || wtrunc
		switch {
		case halted: // consumer broke out; say nothing more
		case err != nil:
			yield(Match{}, err)
		case truncated:
			yield(Match{}, ErrTruncated)
		}
	}
}

// FindTemporalContext collects StreamTemporal into a deduplicated Result
// in (Start, End) order, returning partial matches plus ctx.Err() on
// cancellation.
func (l *ShardedLive) FindTemporalContext(ctx context.Context, p *tgraph.Pattern, opts Options) (Result, error) {
	return collectStream(l.StreamTemporal(ctx, p, opts))
}

// FindTemporal is the background-context compatibility form of
// FindTemporalContext.
func (l *ShardedLive) FindTemporal(p *tgraph.Pattern, opts Options) Result {
	r, _ := l.FindTemporalContext(context.Background(), p, opts)
	return r
}

// ntSink is a worker-side resultSet twin that streams instead of
// collecting: locally deduplicated matches flow to the merger tagged with
// the current root's time, with the same exact-truncation discipline (run
// on at the cap until a distinct over-limit match proves truncation).
// Local dedup plus merger dedup compose: dropping a worker's later
// duplicate never changes the merged first-occurrence order.
type ntSink struct {
	emit      func(taggedMatch) bool
	limit     int
	rootKey   int64
	seen      map[Match]struct{}
	count     int
	truncated bool
	halted    bool
}

func (s *ntSink) add(m Match) {
	if _, dup := s.seen[m]; dup {
		return
	}
	if s.count >= s.limit {
		s.truncated = true
		return
	}
	s.seen[m] = struct{}{}
	s.count++
	if !s.emit(taggedMatch{key: s.rootKey, m: m}) {
		s.halted = true
	}
}

func (s *ntSink) full() bool { return s.halted || s.truncated }

// ntShardedState is the non-temporal matcher over a cross-shard cut, the
// third twin of ntState (search.go) and ntLiveState (live.go) — a semantic
// change to any MUST be mirrored in the others. Candidates at every level
// iterate in global time order (the single-engine position order);
// level 0 restricts to the worker's own shard and tags the sink with each
// root candidate's time. Matches land in the worker's ntSink, not the
// embedded ntCore resultSet.
type ntShardedState struct {
	ntCore
	sv    *shardedView
	shard int
	sink  *ntSink
	cur   [][]posCursor
}

func (s *ntShardedState) match(k int) {
	if s.stepCancelled() {
		return
	}
	if k == len(s.order) {
		s.sink.add(Match{Start: s.minT, End: s.maxT})
		if s.sink.full() {
			s.done = true
		}
		return
	}
	pe := s.order[k]
	ms, md := s.mapping[pe.Src], s.mapping[pe.Dst]
	try := func(shard int, pos int32) bool {
		v := s.sv.views[shard]
		ge := v.edgeAt(pos)
		ok := s.tryEdge(k, pe, ge, shardPos(shard, pos), s.sv.labels[ge.Src], s.sv.labels[ge.Dst], func() { s.match(k + 1) })
		return ok && !s.done
	}
	switch {
	case ms != -1:
		shard := tgraph.NodeShard(ms, len(s.sv.views))
		if !s.sv.hasNode(shard, ms) {
			return
		}
		v := s.sv.views[shard]
		c := &s.cur[k][0]
		base, tail := v.outSegs(ms)
		c.init(v, base, tail, -1)
		for c.ok {
			ge := v.edgeAt(c.pos)
			if md == -1 || ge.Dst == md {
				if !try(shard, c.pos) {
					break
				}
			}
			c.advance()
		}
	case md != -1:
		cs := s.cur[k]
		for i := range s.sv.views {
			if s.sv.hasNode(i, md) {
				base, tail := s.sv.views[i].inSegs(md)
				cs[i].init(s.sv.views[i], base, tail, -1)
			} else {
				cs[i].ok = false
			}
		}
		for {
			i := minCursor(cs)
			if i < 0 {
				break
			}
			if !try(i, cs[i].pos) {
				break
			}
			cs[i].advance()
		}
	default:
		cs := s.cur[k]
		rootLevel := k == 0
		for i := range s.sv.views {
			if rootLevel && i != s.shard {
				cs[i].ok = false // roots are owned per worker
				continue
			}
			base, tail := s.sv.views[i].pairSegs(s.p.Labels[pe.Src], s.p.Labels[pe.Dst])
			cs[i].init(s.sv.views[i], base, tail, -1)
		}
		for {
			i := minCursor(cs)
			if i < 0 {
				break
			}
			if rootLevel {
				s.sink.rootKey = cs[i].time
				// Per-root context poll, as matchCore.rootCancelled does.
				if err := s.ctx.Err(); err != nil {
					s.ctxErr = err
					s.done = true
					break
				}
			}
			if !try(i, cs[i].pos) {
				break
			}
			cs[i].advance()
		}
	}
}

// ntWorker mines the non-temporal roots owned by one shard, emitting its
// locally-deduplicated matches tagged with their root time.
func (l *ShardedLive) ntWorker(ctx context.Context, sv *shardedView, shard int, p *gspan.Pattern, opts Options, out *shardStream) {
	defer close(out.ch)
	sink := &ntSink{
		limit: opts.Limit,
		seen:  make(map[Match]struct{}),
		emit: func(tm taggedMatch) bool {
			select {
			case out.ch <- tm:
				return true
			case <-ctx.Done():
				return false
			}
		},
	}
	st := &ntShardedState{sv: sv, shard: shard, sink: sink}
	st.cur = newShardedCursors(p.NumEdges()+1, len(sv.views))
	u := l.used.Get().(*usedSet)
	u.reset(len(sv.labels))
	defer l.used.Put(u)
	st.initNT(ctx, p, opts, u)
	st.match(0)
	out.truncated = sink.truncated
	out.err = st.ctxErr
	if out.err == nil && ctx.Err() != nil {
		// As in temporalWorker: a cancellation observed only by the
		// emit-select must still surface as ctx.Err().
		out.err = ctx.Err()
	}
}

// FindNonTemporalContext reports the distinct intervals where the
// collapsed (non-temporal) pattern embeds in the cross-shard edge set,
// with Live.FindNonTemporalContext semantics over the time-merged union:
// per-shard root workers, merged back in root-time order with global
// interval dedup and the exact-Truncated discipline.
func (l *ShardedLive) FindNonTemporalContext(ctx context.Context, p *gspan.Pattern, opts Options) (Result, error) {
	if len(l.shards) == 1 {
		return l.shards[0].FindNonTemporalContext(ctx, p, opts)
	}
	opts = opts.normalize()
	if p.NumEdges() == 0 {
		return Result{}, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	sv := l.pin()
	defer l.unpin(sv)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]*shardStream, len(sv.views))
	for i := range outs {
		outs[i] = &shardStream{ch: make(chan taggedMatch, 64)}
		go l.ntWorker(wctx, sv, i, p, opts, outs[i])
	}
	// The merger re-deduplicates globally — the same interval can be
	// discovered under roots on different shards — so the cap counts
	// distinct intervals only; resultSet carries the exact-Truncated
	// run-on discipline (full() fires only once a distinct over-cap match
	// arrived).
	rs := &resultSet{limit: opts.Limit}
	_, truncated, err := mergePlan(outs, func(m Match) bool {
		rs.add(m)
		return !rs.full()
	})
	res := rs.finish()
	res.Truncated = res.Truncated || truncated
	return res, err
}

// FindNonTemporal is the background-context compatibility form of
// FindNonTemporalContext.
func (l *ShardedLive) FindNonTemporal(p *gspan.Pattern, opts Options) Result {
	r, _ := l.FindNonTemporalContext(context.Background(), p, opts)
	return r
}

// FindLabelSetContext finds minimal time windows in the cross-shard edge
// set covering the query label multiset, with Live.FindLabelSetContext
// semantics over the time-merged union: per-shard event extraction runs in
// parallel, the planner merges the per-shard event lists in time order,
// and the shared sliding-window sweep runs over the merged stream.
func (l *ShardedLive) FindLabelSetContext(ctx context.Context, labels []tgraph.Label, opts Options) (Result, error) {
	if len(l.shards) == 1 {
		return l.shards[0].FindLabelSetContext(ctx, labels, opts)
	}
	opts = opts.normalize()
	if len(labels) == 0 {
		return Result{}, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	sv := l.pin()
	defer l.unpin(sv)
	need := labelNeed(labels)
	perShard := make([][]lsEvent, len(sv.views))
	var wg sync.WaitGroup
	for i := range sv.views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := sv.views[i]
			perShard[i] = labelSetEvents(need, v.numEdges(), v.forEachEdge,
				func(n tgraph.NodeID) tgraph.Label { return sv.labels[n] })
		}(i)
	}
	wg.Wait()
	return labelSetSweep(ctx, mergeEvents(perShard), need, opts)
}

// mergeEvents merges per-shard time-sorted label-event lists into one
// time-sorted stream (ties toward the lower shard, deterministically; a
// single edge's src-then-dst event order is preserved because both events
// sit adjacent in one shard's list).
func mergeEvents(perShard [][]lsEvent) []lsEvent {
	total := 0
	for _, evs := range perShard {
		total += len(evs)
	}
	out := make([]lsEvent, 0, total)
	idx := make([]int, len(perShard))
	for len(out) < total {
		best := -1
		for i, evs := range perShard {
			if idx[i] >= len(evs) {
				continue
			}
			if best == -1 || evs[idx[i]].time < perShard[best][idx[best]].time {
				best = i
			}
		}
		out = append(out, perShard[best][idx[best]])
		idx[best]++
	}
	return out
}

// FindLabelSet is the background-context compatibility form of
// FindLabelSetContext.
func (l *ShardedLive) FindLabelSet(labels []tgraph.Label, opts Options) Result {
	r, _ := l.FindLabelSetContext(context.Background(), labels, opts)
	return r
}

// Snapshot materializes an immutable Engine over the pinned cross-shard
// edge set (the time-merged union of every shard's live edges), for
// running many queries against one consistent cut. Panics if the
// global-uniqueness clock contract was violated (two shards holding the
// same timestamp cannot form the strict total order a static Engine
// requires).
func (l *ShardedLive) Snapshot() *Engine {
	if len(l.shards) == 1 {
		return l.shards[0].Snapshot()
	}
	sv := l.pin()
	defer l.unpin(sv)
	var b tgraph.Builder
	for _, lab := range sv.labels {
		b.AddNode(lab)
	}
	perShard := make([][]tgraph.Edge, len(sv.views))
	for i, v := range sv.views {
		es := make([]tgraph.Edge, 0, v.numEdges())
		v.forEachEdge(func(e tgraph.Edge) bool {
			es = append(es, e)
			return true
		})
		perShard[i] = es
	}
	idx := make([]int, len(perShard))
	for {
		best := -1
		for i, es := range perShard {
			if idx[i] >= len(es) {
				continue
			}
			if best == -1 || es[idx[i]].Time < perShard[best][idx[best]].Time {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := perShard[best][idx[best]]
		idx[best]++
		if err := b.AddEdge(e.Src, e.Dst, e.Time); err != nil {
			panic("search: sharded snapshot lost total time order (timestamps must be globally unique across shards): " + err.Error())
		}
	}
	g, err := b.Finalize()
	if err != nil {
		panic("search: sharded snapshot failed to finalize: " + err.Error())
	}
	return NewEngine(g)
}
